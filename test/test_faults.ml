(* Fault tolerance across the IPC/RPC stack: the four fragile-loop /
   right-bookkeeping regressions, deadline + bounded-retry clients, the
   supervisor's crash-restart-rebind cycle, deterministic fault-plan
   replay, and a smoke run of the fault-sweep experiment. *)

open Mach.Ktypes
module F = Fileserver

let kr : kern_return Alcotest.testable =
  Alcotest.testable
    (fun ppf r -> Format.pp_print_string ppf (kern_return_to_string r))
    ( = )

let ok = Test_util.check_fs_ok

(* --- Ipc.serve survives a dead client reply port --------------------------- *)

let test_ipc_serve_dead_reply_port () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let server = Mach.Kernel.task_create k ~name:"server" () in
  let port = Mach.Port.allocate sys ~receiver:server ~name:"svc" in
  let served = ref 0 in
  Test_util.spawn k server "srv" (fun () ->
      Mach.Ipc.serve sys port (fun _msg ->
          incr served;
          simple_message ()));
  let b_result = ref None in
  Test_util.run_in_thread k (fun () ->
      let th = Mach.Sched.self () in
      let a_task = th.t_task in
      (* client A: request sent, then its reply port dies before the
         server answers — the reply send must not kill the server *)
      let rp = Mach.Port.allocate sys ~receiver:a_task ~name:"a-reply" in
      Alcotest.check kr "A send" Kern_success
        (Mach.Ipc.send sys port ~reply_to:rp (simple_message ()));
      Mach.Port.destroy sys rp;
      (* client B: a full round trip through the same server *)
      let b = Mach.Kernel.task_create k ~name:"clientB" () in
      Test_util.spawn k b "B" (fun () ->
          b_result := Some (Mach.Ipc.call sys port (simple_message ()))));
  (match !b_result with
  | Some (Ok _) -> ()
  | Some (Error e) ->
      Alcotest.failf "B's call failed: %s" (kern_return_to_string e)
  | None -> Alcotest.fail "B's call never completed: dead client killed server");
  Alcotest.(check int) "server handled both requests" 2 !served

(* --- Rpc.serve survives one aborted client --------------------------------- *)

let test_rpc_serve_survives_abort () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let server = Mach.Kernel.task_create k ~name:"server" () in
  let port = Mach.Port.allocate sys ~receiver:server ~name:"svc" in
  let srv =
    Mach.Kernel.thread_spawn k server ~name:"srv" (fun () ->
        Mach.Rpc.serve sys port (fun _msg -> simple_message ()))
  in
  let result = ref None in
  Test_util.run_in_thread k (fun () ->
      (* the server ran first and is parked in its receive *)
      Alcotest.(check bool) "server is waiting" true
        (srv.state = Th_blocked "rpc-receive");
      (* a per-call failure surfaces in the loop as an abort *)
      Mach.Sched.wake sys ~result:Kern_aborted srv;
      let client = Mach.Kernel.task_create k ~name:"client" () in
      Test_util.spawn k client "C" (fun () ->
          result := Some (Mach.Rpc.call sys port (simple_message ()))));
  match !result with
  | Some (Ok _) -> ()
  | Some (Error e) ->
      Alcotest.failf "call after abort failed: %s" (kern_return_to_string e)
  | None -> Alcotest.fail "call never completed: abort killed the server loop"

(* --- insert_right never downgrades a held right ----------------------------- *)

let test_insert_right_no_downgrade () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let owner = Mach.Kernel.task_create k ~name:"owner" () in
  let user = Mach.Kernel.task_create k ~name:"user" () in
  let port = Mach.Port.allocate sys ~receiver:owner ~name:"p" in
  let right_of name task =
    match Mach.Port.lookup task name with
    | Some e -> e.re_right
    | None -> Alcotest.fail "right entry vanished"
  in
  (* send-once must not weaken an existing send right *)
  let name = Mach.Port.insert_right sys user port Send_right in
  let name' = Mach.Port.insert_right sys user port Send_once_right in
  Alcotest.(check int) "same entry reused" name name';
  Alcotest.(check bool) "send right preserved" true
    (right_of name user = Send_right);
  (* upgrades still apply *)
  let user2 = Mach.Kernel.task_create k ~name:"user2" () in
  let n2 = Mach.Port.insert_right sys user2 port Send_once_right in
  ignore (Mach.Port.insert_right sys user2 port Send_right : int);
  Alcotest.(check bool) "send-once upgraded to send" true
    (right_of n2 user2 = Send_right);
  (* the receive right stays untouchable *)
  ignore (Mach.Port.insert_right sys owner port Send_once_right : int);
  let oname = Option.get (Mach.Port.lookup_port owner port) in
  Alcotest.(check bool) "receive right preserved" true
    (right_of oname owner = Receive_right)

(* --- wait_for_room enqueues a blocked sender exactly once ------------------- *)

let test_sender_queued_once () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let recv = Mach.Kernel.task_create k ~name:"recv" () in
  let port = Mach.Port.allocate sys ~receiver:recv ~name:"full" in
  let sender_task = Mach.Kernel.task_create k ~name:"sender" () in
  let sender = ref None in
  Test_util.run_in_thread k (fun () ->
      let th =
        Mach.Kernel.thread_spawn k sender_task ~name:"s" (fun () ->
            (* queue limit is 5: the sixth send blocks *)
            for _ = 1 to 6 do
              ignore (Mach.Ipc.send sys port (simple_message ()) : kern_return)
            done)
      in
      sender := Some th;
      let rec wait_blocked n =
        if th.state = Th_blocked "msg-send-queue-full" then ()
        else if n = 0 then Alcotest.fail "sender never blocked on full queue"
        else begin
          Mach.Sched.yield ();
          wait_blocked (n - 1)
        end
      in
      wait_blocked 20;
      Alcotest.(check int) "one queued waiter" 1
        (Queue.length port.waiting_senders);
      (* spurious wake: the queue is still full, so the sender re-blocks —
         and must not enqueue itself a second time *)
      Mach.Sched.wake sys th;
      wait_blocked 20;
      Alcotest.(check int) "still one queued waiter after spurious wake" 1
        (Queue.length port.waiting_senders);
      Mach.Port.destroy sys port)

(* --- deadlines and bounded retry -------------------------------------------- *)

let test_rpc_deadline_times_out () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let server = Mach.Kernel.task_create k ~name:"server" () in
  (* a service port nobody ever serves *)
  let port = Mach.Port.allocate sys ~receiver:server ~name:"mute" in
  Test_util.run_in_thread k (fun () ->
      match Mach.Rpc.call sys port ~deadline:5_000 (simple_message ()) with
      | Error Kern_timed_out -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (kern_return_to_string e)
      | Ok _ -> Alcotest.fail "call to an unserved port succeeded")

let test_call_retry_gives_up () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  Test_util.run_in_thread k (fun () ->
      let th = Mach.Sched.self () in
      let p = Mach.Port.allocate sys ~receiver:th.t_task ~name:"corpse" in
      Mach.Port.destroy sys p;
      let resolve () = Some p in
      (match
         Mach.Rpc.call_retry sys ~attempts:3 ~deadline:5_000 ~backoff:50
           ~resolve (simple_message ())
       with
      | Error Kern_port_dead -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (kern_return_to_string e)
      | Ok _ -> Alcotest.fail "call to a dead port succeeded");
      Alcotest.(check int) "two re-issues for three attempts" 2
        sys.Mach.Sched.retry_attempts;
      (match
         Mach.Ipc.call_retry sys ~attempts:2 ~deadline:5_000 ~backoff:50
           ~resolve (simple_message ())
       with
      | Error Kern_port_dead -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (kern_return_to_string e)
      | Ok _ -> Alcotest.fail "call to a dead port succeeded");
      Alcotest.(check int) "ipc re-issues accumulate" 3
        sys.Mach.Sched.retry_attempts;
      (* a resolver that never finds the name reports that, not port-dead *)
      match
        Mach.Rpc.call_retry sys ~attempts:2 ~deadline:5_000 ~backoff:50
          ~resolve:(fun () -> None)
          (simple_message ())
      with
      | Error Kern_invalid_name -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (kern_return_to_string e)
      | Ok _ -> Alcotest.fail "unresolvable name succeeded")

(* --- supervisor: crash, restart, rebind, carry on ---------------------------- *)

let test_supervisor_restarts_file_server () =
  let m = Machine.create Machine.Config.pentium_133 in
  let boot = Mk_services.Bootstrap.boot m in
  let k = boot.Mk_services.Bootstrap.kernel in
  let sys = k.Mach.Kernel.sys in
  let runtime = boot.Mk_services.Bootstrap.runtime in
  let ns = Mk_services.Bootstrap.name_service_exn boot in
  let disk = m.Machine.disk in
  F.Hpfs.mkfs disk ();
  let vfs = F.Vfs.create () in
  let cache = F.Block_cache.create k disk () in
  (match F.Hpfs.mount cache () with
  | Ok pfs -> (
      match F.Vfs.mount vfs ~at:"/os2" pfs with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail (F.Fs_types.fs_error_to_string e));
  let fs = F.File_server.start k runtime vfs () in
  let sup = Mk_services.Supervisor.create k runtime ns in
  (* scripted crash on the 4th file-service request *)
  let plan = Mach.Fault.create ~seed:5 () in
  Mach.Fault.at_request plan ~port:"file-service" ~n:4 Mach.Fault.Crash_server;
  sys.Mach.Sched.faults <- Some plan;
  let old_port = F.File_server.port fs in
  let cached = ref (Some old_port) in
  let resolve () =
    match !cached with
    | Some p when not p.dead -> Some p
    | Some _ | None ->
        let p = Mk_services.Name_service.resolve_port ns ~path:"/services/file" in
        cached := p;
        p
  in
  (* restart now runs crash recovery (journal replay + fsck scan) before
     the replacement is rebound, so the retry budget must span tens of
     millions of simulated cycles, not thousands *)
  F.File_server.set_retry fs ~attempts:8 ~deadline:1_000_000
    ~backoff:1_000_000 ~resolve ();
  let sem = F.Vfs.os2_semantics in
  Test_util.run_in_thread k (fun () ->
      Mk_services.Supervisor.supervise sup ~path:"/services/file"
        ~port:old_port
        ~restart:(fun () -> F.File_server.restart fs)
        ();
      (* requests 1-3: a full session against the original instance *)
      let h = ok "open" (F.File_server.Client.open_ fs sem ~path:"/os2/a.txt" ~create:true ()) in
      let n = ok "write" (F.File_server.Client.write fs h (Bytes.make 64 'x')) in
      Alcotest.(check int) "wrote" 64 n;
      F.File_server.Client.close fs h;
      (* request 4 crashes the server mid-call; the retry must find the
         supervisor's replacement and complete *)
      let h2 = ok "open after crash" (F.File_server.Client.open_ fs sem ~path:"/os2/a.txt" ()) in
      let data = ok "read after restart" (F.File_server.Client.read fs h2 ~bytes:64) in
      Alcotest.(check int) "read survived the crash" 64 (Bytes.length data);
      F.File_server.Client.close fs h2);
  Alcotest.(check int) "one restart" 1 (Mk_services.Supervisor.restarts sup);
  Alcotest.(check bool) "did not give up" false (Mk_services.Supervisor.gave_up sup);
  Alcotest.(check int) "one injected crash" 1 (Mach.Fault.injected_crashes plan);
  (* the name service now resolves to the replacement, not the corpse *)
  Test_util.run_in_thread k (fun () ->
      match Mk_services.Name_service.resolve_port ns ~path:"/services/file" with
      | Some p ->
          Alcotest.(check bool) "rebound to a live port" true (not p.dead);
          Alcotest.(check bool) "a fresh port" true (p.port_id <> old_port.port_id)
      | None -> Alcotest.fail "service name lost after restart")

(* --- seeded plans replay identically ------------------------------------------ *)

let drive_plan plan =
  Mach.Fault.at_request plan ~port:"svc" ~n:3 Mach.Fault.Kill_port;
  Mach.Fault.at_send plan ~port:"svc" ~n:7 Mach.Fault.Drop_message;
  Mach.Fault.set_rates plan ~port:"svc" ~crash_ppm:50_000 ~drop_ppm:50_000
    ~delay_ppm:50_000 ();
  let log = Buffer.create 400 in
  for _ = 1 to 200 do
    (match Mach.Fault.on_request plan ~port:"svc" with
    | Mach.Fault.S_continue -> Buffer.add_char log '.'
    | Mach.Fault.S_kill -> Buffer.add_char log 'K'
    | Mach.Fault.S_crash -> Buffer.add_char log 'C'
    | Mach.Fault.S_wedge _ -> Buffer.add_char log 'W');
    match Mach.Fault.on_send plan ~port:"svc" with
    | Mach.Fault.M_pass -> Buffer.add_char log '-'
    | Mach.Fault.M_drop -> Buffer.add_char log 'D'
    | Mach.Fault.M_delay _ -> Buffer.add_char log 'd'
  done;
  Buffer.contents log

let test_fault_replay_deterministic () =
  let a = drive_plan (Mach.Fault.create ~seed:99 ()) in
  let b = drive_plan (Mach.Fault.create ~seed:99 ()) in
  Alcotest.(check string) "same seed, same faults" a b;
  Alcotest.(check bool) "scripted kill fired" true (String.contains a 'K');
  Alcotest.(check bool) "random crashes fired" true (String.contains a 'C');
  let pa = Mach.Fault.create ~seed:99 () and pb = Mach.Fault.create ~seed:99 () in
  ignore (drive_plan pa : string);
  ignore (drive_plan pb : string);
  Alcotest.(check bool) "traces replay event for event" true
    (Mach.Fault.trace pa = Mach.Fault.trace pb);
  let c = drive_plan (Mach.Fault.create ~seed:100 ()) in
  Alcotest.(check bool) "different seed diverges" true (a <> c)

(* --- fault-sweep smoke: the bench output parses -------------------------------- *)

let test_fault_sweep_smoke () =
  let r =
    Workloads.Fault_sweep.run ~seed:7 ~clients:2 ~sessions:2
      ~rates:[ 20_000 ] ()
  in
  let json = Workloads.Fault_sweep.to_json r in
  let module J = Workloads.Ipc_stress.Json in
  match J.parse json with
  | Error e -> Alcotest.failf "BENCH_faults.json does not parse: %s" e
  | Ok v -> (
      (match J.member "experiment" v with
      | Some (J.Str "fault-sweep") -> ()
      | _ -> Alcotest.fail "wrong experiment tag");
      (match J.member "baseline_cycles_per_op" v with
      | Some (J.Num n) ->
          Alcotest.(check bool) "baseline positive" true (n > 0.0)
      | _ -> Alcotest.fail "missing baseline_cycles_per_op");
      match J.member "results" v with
      | Some (J.Arr [ point ]) ->
          (match J.member "crash_ppm" point with
          | Some (J.Num n) -> Alcotest.(check int) "rate" 20_000 (int_of_float n)
          | _ -> Alcotest.fail "missing crash_ppm");
          (match (J.member "completed" point, J.member "ops" point) with
          | Some (J.Num c), Some (J.Num o) ->
              Alcotest.(check bool) "completed within ops" true
                (c >= 0.0 && c <= o)
          | _ -> Alcotest.fail "missing completed/ops");
          (match J.member "completion_rate" point with
          | Some (J.Num f) ->
              Alcotest.(check bool) "rate in [0,1]" true (f >= 0.0 && f <= 1.0)
          | _ -> Alcotest.fail "missing completion_rate");
          (match J.member "disk_faults" point with
          | Some (J.Num n) ->
              Alcotest.(check bool) "disk faults counted" true (n >= 0.0)
          | _ -> Alcotest.fail "missing disk_faults")
      | _ -> Alcotest.fail "expected exactly one result point")

let suite =
  [
    Alcotest.test_case "ipc serve survives dead reply port" `Quick
      test_ipc_serve_dead_reply_port;
    Alcotest.test_case "rpc serve survives aborted client" `Quick
      test_rpc_serve_survives_abort;
    Alcotest.test_case "insert_right never downgrades" `Quick
      test_insert_right_no_downgrade;
    Alcotest.test_case "blocked sender queued once" `Quick
      test_sender_queued_once;
    Alcotest.test_case "rpc deadline times out" `Quick
      test_rpc_deadline_times_out;
    Alcotest.test_case "call_retry bounded give-up" `Quick
      test_call_retry_gives_up;
    Alcotest.test_case "supervisor restarts crashed file server" `Quick
      test_supervisor_restarts_file_server;
    Alcotest.test_case "fault plans replay identically" `Quick
      test_fault_replay_deterministic;
    Alcotest.test_case "fault-sweep smoke + json" `Quick
      test_fault_sweep_smoke;
  ]
