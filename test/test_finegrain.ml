(* Tests for the object-runtime simulation and the networking service
   built on it. *)

let kernel () = Test_util.kernel_on ()

let test_class_hierarchy_and_dispatch () =
  let k = kernel () in
  let rt = Finegrain.create k ~style:Finegrain.Fine_grained ~name:"t" in
  let base = Finegrain.define_class rt ~name:"TObject" () in
  let mid = Finegrain.define_class rt ~name:"TStream" ~super:base () in
  let leaf = Finegrain.define_class rt ~name:"TSocket" ~super:mid () in
  Alcotest.(check int) "depth" 3 (Finegrain.class_depth leaf);
  let o = Finegrain.new_object rt leaf in
  Finegrain.vcall rt o ~slot:1;
  Alcotest.(check int) "one dispatch counted" 1 (Finegrain.vcalls rt);
  Alcotest.(check int) "one live object" 1 (Finegrain.live_objects rt);
  Finegrain.delete_object rt o;
  Alcotest.(check int) "deleted" 0 (Finegrain.live_objects rt)

let test_fine_vs_coarse_costs () =
  let measure style =
    let k = kernel () in
    let m = k.Mach.Kernel.machine in
    let rt = Finegrain.create k ~style ~name:"t" in
    let base = Finegrain.define_class rt ~name:"A" () in
    let c1 = Finegrain.define_class rt ~name:"B" ~super:base () in
    let c2 = Finegrain.define_class rt ~name:"C" ~super:c1 () in
    let o = Finegrain.new_object rt c2 in
    (* warm *)
    Finegrain.invoke rt o ~work_units:64;
    let t0 = Machine.now m in
    Finegrain.invoke rt o ~work_units:256;
    (Machine.now m - t0, Finegrain.memory_footprint_bytes rt)
  in
  let fine_cycles, fine_mem = measure Finegrain.Fine_grained in
  let coarse_cycles, coarse_mem = measure Finegrain.Coarse in
  Alcotest.(check bool) "fine-grained slower" true (fine_cycles > coarse_cycles);
  Alcotest.(check bool) "fine-grained bigger" true (fine_mem > coarse_mem)

let test_udp_echo () =
  let k = kernel () in
  let net = Netserver.create k ~style:Finegrain.Coarse in
  let t = Mach.Kernel.task_create k ~name:"t" () in
  let echoed = ref (-1, -1) in
  Test_util.spawn k t "server" (fun () ->
      match Netserver.udp_socket net ~port:53 with
      | Error e -> Alcotest.fail e
      | Ok s ->
          let src, n = Netserver.udp_recv net s in
          Netserver.udp_send net s ~dst_port:src ~bytes:n);
  Test_util.spawn k t "client" (fun () ->
      match Netserver.udp_socket net ~port:5353 with
      | Error e -> Alcotest.fail e
      | Ok s ->
          Netserver.udp_send net s ~dst_port:53 ~bytes:99;
          echoed := Netserver.udp_recv net s);
  Mach.Kernel.run k;
  Alcotest.(check (pair int int)) "echo round trip" (53, 99) !echoed;
  Alcotest.(check int) "four packets walked the stack" 4
    (Netserver.packets_processed net)

let test_udp_port_conflict () =
  let k = kernel () in
  let net = Netserver.create k ~style:Finegrain.Coarse in
  (match Netserver.udp_socket net ~port:80 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Netserver.udp_socket net ~port:80 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate bind succeeded"

let test_tcp_connection () =
  let k = kernel () in
  let net = Netserver.create k ~style:Finegrain.Fine_grained in
  let t = Mach.Kernel.task_create k ~name:"t" () in
  let got = ref [] in
  Test_util.spawn k t "server" (fun () ->
      match Netserver.tcp_listen net ~port:8080 with
      | Error e -> Alcotest.fail e
      | Ok listener ->
          let c = Netserver.tcp_accept net listener in
          for _ = 1 to 3 do
            got := Netserver.tcp_recv net c :: !got
          done);
  Test_util.spawn k t "client" (fun () ->
      match Netserver.tcp_connect net ~dst_port:8080 with
      | Error e -> Alcotest.fail e
      | Ok c ->
          Alcotest.(check bool) "established" true (Netserver.established c);
          Netserver.tcp_send net c ~bytes:100;
          Netserver.tcp_send net c ~bytes:200;
          Netserver.tcp_send net c ~bytes:300);
  Mach.Kernel.run k;
  Alcotest.(check (list int)) "segments in order" [ 300; 200; 100 ] !got

let test_zero_copy_send () =
  let k = kernel () in
  let net = Netserver.create k ~style:Finegrain.Coarse in
  let t = Mach.Kernel.task_create k ~name:"t" () in
  let got = ref [] in
  Test_util.spawn k t "server" (fun () ->
      match Netserver.tcp_listen net ~port:80 with
      | Error e -> Alcotest.fail e
      | Ok l ->
          let c = Netserver.tcp_accept net l in
          for _ = 1 to 3 do
            got := Netserver.tcp_recv net c :: !got
          done);
  Test_util.spawn k t "client" (fun () ->
      match Netserver.tcp_connect net ~dst_port:80 with
      | Error e -> Alcotest.fail e
      | Ok c ->
          Netserver.tcp_send net c ~bytes:100;  (* below a page: copied *)
          Netserver.tcp_send net c ~bytes:8192;  (* page-sized: remapped *)
          Netserver.tcp_send_vec net c ~iov:[ 4096; 4096; 512 ]);
  Mach.Kernel.run k;
  Alcotest.(check (list int)) "all payloads arrive" [ 8704; 8192; 100 ] !got;
  Alcotest.(check int) "page-sized sends went zero-copy" 2
    (Netserver.zero_copy_sends net);
  (* remapped payloads are never checksummed byte by byte: of ~17 KB of
     payload only the copied 100-byte send plus per-layer headers ever
     cross the checksum loop *)
  Alcotest.(check bool) "payload bytes skipped the checksum"
    true
    (Netserver.checksum_bytes net < 4096)

let test_checksum_accounting () =
  let k = kernel () in
  let net = Netserver.create k ~style:Finegrain.Coarse in
  let t = Mach.Kernel.task_create k ~name:"t" () in
  Test_util.spawn k t "client" (fun () ->
      match Netserver.udp_socket net ~port:1000 with
      | Error e -> Alcotest.fail e
      | Ok s -> Netserver.udp_send net s ~dst_port:9 ~bytes:446);
  Mach.Kernel.run k;
  (* tx walk + rx walk of one 446-byte datagram + headers *)
  Alcotest.(check int) "checksummed bytes" 1000 (Netserver.checksum_bytes net)

let suite =
  [
    Alcotest.test_case "class hierarchy+dispatch" `Quick
      test_class_hierarchy_and_dispatch;
    Alcotest.test_case "fine vs coarse costs" `Quick test_fine_vs_coarse_costs;
    Alcotest.test_case "udp echo" `Quick test_udp_echo;
    Alcotest.test_case "udp port conflict" `Quick test_udp_port_conflict;
    Alcotest.test_case "tcp connection" `Quick test_tcp_connection;
    Alcotest.test_case "checksum accounting" `Quick test_checksum_accounting;
    Alcotest.test_case "zero-copy send" `Quick test_zero_copy_send;
  ]
