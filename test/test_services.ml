(* Tests for Microkernel Services: runtime, naming, loader, pager. *)

open Mach.Ktypes
module S = Mk_services

let boot () = S.Bootstrap.boot (Machine.create Machine.Config.pentium_133)

let run_in b body = Test_util.run_in_thread b.S.Bootstrap.kernel body

(* --- runtime -------------------------------------------------------------- *)

let test_malloc_free () =
  let b = boot () in
  let k = b.S.Bootstrap.kernel in
  let rt = b.S.Bootstrap.runtime in
  let task = Mach.Kernel.task_create k ~name:"app" () in
  let a1 = S.Runtime.malloc rt task ~bytes:100 in
  let a2 = S.Runtime.malloc rt task ~bytes:100 in
  Alcotest.(check bool) "distinct blocks" true (a2 >= a1 + 112);
  Alcotest.(check int) "usage tracked" 224 (S.Runtime.heap_bytes_in_use rt task);
  S.Runtime.free rt task a1;
  let a3 = S.Runtime.malloc rt task ~bytes:64 in
  Alcotest.(check int) "first fit reuses the hole" a1 a3;
  (match S.Runtime.free rt task 0xdead with
  | () -> Alcotest.fail "bad free succeeded"
  | exception Kern_error Kern_invalid_argument -> ());
  Alcotest.(check int) "usage after reuse" 176 (S.Runtime.heap_bytes_in_use rt task)

let test_umutex_contention () =
  let b = boot () in
  let k = b.S.Bootstrap.kernel in
  let rt = b.S.Bootstrap.runtime in
  let task = Mach.Kernel.task_create k ~name:"app" () in
  let mu = S.Runtime.umutex_create rt ~name:"m" in
  (* uncontended lock/unlock never touches the kernel *)
  Test_util.spawn k task "solo" (fun () ->
      S.Runtime.umutex_lock rt mu;
      S.Runtime.umutex_unlock rt mu);
  Mach.Kernel.run k;
  Alcotest.(check int) "no contention yet" 0 (S.Runtime.umutex_contentions mu);
  let order = ref [] in
  Test_util.spawn k task "w1" (fun () ->
      S.Runtime.umutex_lock rt mu;
      Mach.Sched.yield ();
      order := "w1" :: !order;
      S.Runtime.umutex_unlock rt mu);
  Test_util.spawn k task "w2" (fun () ->
      S.Runtime.umutex_lock rt mu;
      order := "w2" :: !order;
      S.Runtime.umutex_unlock rt mu);
  Mach.Kernel.run k;
  Alcotest.(check bool) "contended path used" true
    (S.Runtime.umutex_contentions mu >= 1);
  Alcotest.(check (list string)) "both critical sections ran" [ "w2"; "w1" ] !order

(* --- name database --------------------------------------------------------- *)

let test_name_db_basics () =
  let db = S.Name_db.create () in
  (match S.Name_db.bind db ~path:"/servers/files" ~attributes:[ ("type", "fs") ] () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "duplicate bind fails" true
    (Result.is_error (S.Name_db.bind db ~path:"/servers/files" ()));
  (match S.Name_db.resolve db ~path:"/servers/files" with
  | Some e ->
      Alcotest.(check (list (pair string string)))
        "attributes stored" [ ("type", "fs") ] e.S.Name_db.attributes
  | None -> Alcotest.fail "resolve failed");
  Alcotest.(check (list string)) "children" [ "files" ]
    (S.Name_db.list_children db ~path:"/servers");
  Alcotest.(check bool) "unbind" true (S.Name_db.unbind db ~path:"/servers/files");
  Alcotest.(check bool) "gone" true (S.Name_db.resolve db ~path:"/servers/files" = None)

let test_name_db_search_and_notify () =
  let db = S.Name_db.create () in
  let changes = ref [] in
  S.Name_db.subscribe db ~prefix:"servers" (fun c -> changes := c :: !changes);
  ignore (S.Name_db.bind db ~path:"/servers/a" ~attributes:[ ("class", "disk") ] ());
  ignore (S.Name_db.bind db ~path:"/servers/b" ~attributes:[ ("class", "net") ] ());
  ignore (S.Name_db.bind db ~path:"/other/c" ~attributes:[ ("class", "disk") ] ());
  let hits = S.Name_db.search_attribute db ~key:"class" ~value:"disk" in
  Alcotest.(check int) "attribute search spans the tree" 2 (List.length hits);
  Alcotest.(check int) "notifications only under prefix" 2 (List.length !changes)

(* --- name service over RPC -------------------------------------------------- *)

let test_name_service_rpc () =
  let b = boot () in
  let ns = S.Bootstrap.name_service_exn b in
  let k = b.S.Bootstrap.kernel in
  let sys = k.Mach.Kernel.sys in
  let client = Mach.Kernel.task_create k ~name:"client" () in
  let target = Mach.Port.allocate sys ~receiver:client ~name:"me" in
  let ok, resolved, listed =
    Test_util.run_in_thread k (fun () ->
        let ok =
          S.Name_service.bind ns ~path:"/servers/me"
            ~attributes:[ ("kind", "test") ] ~target ()
        in
        let resolved = S.Name_service.resolve_port ns ~path:"/servers/me" in
        let listed = S.Name_service.list_children ns ~path:"/servers" in
        (ok, resolved, listed))
  in
  Alcotest.(check bool) "bind ok" true ok;
  Alcotest.(check bool) "port round-tripped" true
    (match resolved with Some p -> p == target | None -> false);
  Alcotest.(check (list string)) "listing" [ "me" ] listed;
  Alcotest.(check bool) "server actually served" true
    (S.Name_service.requests_served ns >= 3)

let test_simple_naming_mode () =
  let b =
    S.Bootstrap.boot ~naming:S.Bootstrap.Simple_naming
      (Machine.create Machine.Config.pentium_133)
  in
  (match b.S.Bootstrap.simple_names with
  | Some names ->
      let k = b.S.Bootstrap.kernel in
      let sys = k.Mach.Kernel.sys in
      let t = Mach.Kernel.task_create k ~name:"t" () in
      let p = Mach.Port.allocate sys ~receiver:t ~name:"p" in
      Alcotest.(check bool) "register" true (S.Name_simple.register names ~name:"svc" p);
      Alcotest.(check bool) "duplicate refused" false
        (S.Name_simple.register names ~name:"svc" p);
      Alcotest.(check bool) "lookup" true
        (match S.Name_simple.lookup names ~name:"svc" with
        | Some q -> q == p
        | None -> false);
      Alcotest.(check bool) "remove" true (S.Name_simple.remove names ~name:"svc")
  | None -> Alcotest.fail "simple naming not installed");
  match b.S.Bootstrap.name_service with
  | None -> ()
  | Some _ -> Alcotest.fail "full naming should be absent"

(* --- loader ----------------------------------------------------------------- *)

let images =
  S.Loader.
    [
      {
        img_name = "libc.so";
        img_format = Elf_coerced;
        img_text_bytes = 8192;
        img_data_bytes = 0;
        img_symbols = 40;
        img_needs = [];
      };
      {
        img_name = "libnet.so";
        img_format = Elf_svr4;
        img_text_bytes = 8192;
        img_data_bytes = 0;
        img_symbols = 24;
        img_needs = [ "libc.so" ];
      };
      {
        img_name = "app";
        img_format = Elf_svr4;
        img_text_bytes = 4096;
        img_data_bytes = 8192;
        img_symbols = 4;
        img_needs = [ "libnet.so" ];
      };
    ]

let test_loader () =
  let b = boot () in
  let k = b.S.Bootstrap.kernel in
  let ld = b.S.Bootstrap.loader in
  List.iter (S.Loader.register ld) images;
  Alcotest.(check (list string)) "registry" [ "app"; "libc.so"; "libnet.so" ]
    (S.Loader.registered ld);
  let task = Mach.Kernel.task_create k ~name:"app" () in
  let ran = ref false in
  (match S.Loader.load_program ld task "app" ~entry:(fun () -> ran := true) with
  | Ok (_ : thread) -> ()
  | Error e -> Alcotest.fail e);
  Mach.Kernel.run k;
  Alcotest.(check bool) "entry ran" true !ran;
  Alcotest.(check (list string)) "needs attached transitively"
    [ "libc.so"; "libnet.so" ]
    (S.Loader.libraries_of task);
  (* coerced libraries share one region across tasks *)
  let task2 = Mach.Kernel.task_create k ~name:"app2" () in
  (match S.Loader.load_library ld task2 "libc.so" with
  | Ok r2 ->
      let r1 = List.assoc "libc.so" task.libraries in
      Alcotest.(check bool) "same region (address coercion)" true (r1 == r2)
  | Error e -> Alcotest.fail e);
  (match S.Loader.load_program ld task "nope" ~entry:(fun () -> ()) with
  | Ok _ -> Alcotest.fail "loading a missing image succeeded"
  | Error _ -> ());
  Alcotest.check_raises "duplicate registration"
    (Invalid_argument "Loader.register: duplicate image \"app\"") (fun () ->
      S.Loader.register ld (List.nth images 2))

(* --- default pager / paging pressure ---------------------------------------- *)

let test_paging_under_pressure () =
  (* a machine with very little memory: touching a large buffer twice
     must page out and back in through the default pager *)
  let config =
    Machine.Config.with_memory Machine.Config.pentium_133
      ~bytes:(3 * 1024 * 1024)
  in
  let b = S.Bootstrap.boot (Machine.create config) in
  let k = b.S.Bootstrap.kernel in
  let sys = k.Mach.Kernel.sys in
  let task = Mach.Kernel.task_create k ~name:"hog" () in
  let m = k.Mach.Kernel.machine in
  let t_start = Machine.now m in
  Test_util.run_in_thread k (fun () ->
      let bytes = 4 * 1024 * 1024 in
      let addr = Mach.Vm.allocate sys task ~bytes () in
      (* two passes: the second cannot be all-resident *)
      for pass = 1 to 2 do
        ignore pass;
        let rec walk off =
          if off < bytes then begin
            Mach.Vm.touch sys task ~addr:(addr + off) ~write:true ~bytes:64 ();
            walk (off + 4096)
          end
        in
        walk 0
      done);
  Alcotest.(check bool) "pageouts happened" true (S.Default_pager.pageouts b.S.Bootstrap.pager > 0);
  Alcotest.(check bool) "pageins happened" true (S.Default_pager.pageins b.S.Bootstrap.pager > 0);
  Alcotest.(check bool) "disk time elapsed" true
    (Machine.now m - t_start > 1_000_000);
  Alcotest.(check bool) "residency bounded" true
    (Mach.Vm.resident_pages sys <= sys.Mach.Sched.page_limit + 1)

(* --- reincarnation service ---------------------------------------------------- *)

(* A minimal supervised server: an echo loop with a heartbeat, plus a
   restart closure that brings up a fresh incarnation (fresh port, fresh
   health port, fresh beat — a stale wedged thread must not be able to
   stamp the new incarnation's beat). *)
let spawn_echo_server b ~name =
  let k = b.S.Bootstrap.kernel in
  let sys = k.Mach.Kernel.sys in
  let task = Mach.Kernel.task_create k ~name () in
  let port = ref (Mach.Port.allocate sys ~receiver:task ~name:(name ^ "-port")) in
  let health =
    ref (Mach.Port.allocate sys ~receiver:task ~name:(name ^ "-health"))
  in
  let spawn_threads () =
    let p = !port and hp = !health in
    let beat = Mach.Health.beat () in
    Test_util.spawn k task (name ^ "-serve") (fun () ->
        Mach.Rpc.serve sys ~beat p (fun _req ->
            simple_message ~payload:P_unit ()));
    Test_util.spawn k task (name ^ "-beat") (fun () ->
        Mach.Rpc.serve sys hp (Mach.Health.handler beat))
  in
  spawn_threads ();
  let restart () =
    port := Mach.Port.allocate sys ~receiver:task ~name:(name ^ "-port");
    health := Mach.Port.allocate sys ~receiver:task ~name:(name ^ "-health");
    spawn_threads ();
    !port
  in
  (port, health, restart)

(* The per-request watchdog: a scripted wedge holds the serve loop far
   past the watchdog with the service port still alive.  Only the
   heartbeat can see it; the supervisor must kill and reincarnate while
   the client completes every operation.  This also pins the missed-arm
   regression: the health config is registered against a supervisor that
   is already parked in its idle wait, and with no ordinary death to
   wake it the heartbeat timer is only ever armed because [supervise]
   pokes the loop — without that poke this test times out with zero
   wedge kills. *)
let test_sup_wedge_watchdog () =
  let b = boot () in
  let k = b.S.Bootstrap.kernel in
  let sys = k.Mach.Kernel.sys in
  let ns = S.Bootstrap.name_service_exn b in
  let sup = S.Supervisor.create k b.S.Bootstrap.runtime ns in
  let port, health, restart = spawn_echo_server b ~name:"svc" in
  let plan = Mach.Fault.create ~seed:7 () in
  Mach.Fault.at_request plan ~port:"svc-port" ~n:3
    (Mach.Fault.Wedge_server 500_000);
  sys.Mach.Sched.faults <- Some plan;
  let done_ops = ref 0 in
  let driver = Mach.Kernel.task_create k ~name:"drv" () in
  Test_util.spawn k driver "main" (fun () ->
      S.Supervisor.supervise sup ~path:"/services/svc"
        ~health:
          {
            S.Supervisor.hc_interval = 20_000;
            hc_deadline = 10_000;
            hc_watchdog = 100_000;
            hc_port = (fun () -> Some !health);
          }
        ~port:!port ~restart ();
      Test_util.spawn k driver "client" (fun () ->
          for _ = 1 to 6 do
            let rec attempt n =
              if n = 0 then Alcotest.fail "client could not reach the service";
              let retry () =
                ignore (Mach.Clock.sleep_for sys ~cycles:20_000 : kern_return);
                attempt (n - 1)
              in
              match S.Name_service.resolve_port ns ~path:"/services/svc" with
              | None -> retry ()
              | Some p -> (
                  match
                    Mach.Rpc.call sys p ~deadline:50_000
                      (simple_message ~payload:P_unit ())
                  with
                  | Ok _ -> incr done_ops
                  | Error _ -> retry ())
            in
            attempt 30
          done);
      (* the heartbeat timer keeps the machine awake: stand the
         supervisor down once the client is through *)
      while !done_ops < 6 do
        ignore (Mach.Clock.sleep_for sys ~cycles:20_000 : kern_return)
      done;
      S.Supervisor.stop sup);
  Mach.Kernel.run k;
  sys.Mach.Sched.faults <- None;
  Alcotest.(check int) "one wedge injected" 1 (Mach.Fault.injected_wedges plan);
  Alcotest.(check int) "one wedge kill" 1 (S.Supervisor.wedge_kills sup);
  Alcotest.(check int) "per-path wedge kill" 1
    (S.Supervisor.path_wedge_kills sup ~path:"/services/svc");
  Alcotest.(check int) "one restart" 1 (S.Supervisor.restarts sup);
  Alcotest.(check int) "every op completed" 6 !done_ops;
  Alcotest.(check bool) "mttr recorded" true
    (S.Supervisor.mttr sup ~path:"/services/svc" <> None)

(* Budget exhaustion: a crash-looping server burns its windowed restart
   budget, is demoted to degraded mode (surfaced to Machcheck as a
   budget-exhausted finding that does NOT count as a failure), and
   clients get [Kern_unavailable] back fast instead of hanging. *)
let test_sup_budget_degraded () =
  let chk = Check.create () in
  Check.install chk;
  Fun.protect ~finally:Check.uninstall @@ fun () ->
  let b = boot () in
  let k = b.S.Bootstrap.kernel in
  let sys = k.Mach.Kernel.sys in
  let m = k.Mach.Kernel.machine in
  let ns = S.Bootstrap.name_service_exn b in
  let sup = S.Supervisor.create k b.S.Bootstrap.runtime ns in
  let path = "/services/flaky" in
  let task = Mach.Kernel.task_create k ~name:"flaky" () in
  let make_port () = Mach.Port.allocate sys ~receiver:task ~name:"flaky" in
  let fastfail = ref (-1) in
  let driver = Mach.Kernel.task_create k ~name:"drv" () in
  Test_util.spawn k driver "main" (fun () ->
      S.Supervisor.supervise sup ~path ~budget:3 ~backoff:2_000
        ~port:(make_port ()) ~restart:make_port ();
      Test_util.spawn k driver "crasher" (fun () ->
          let rec crash () =
            if not (S.Supervisor.is_degraded sup ~path) then begin
              (match S.Supervisor.current_port sup ~path with
              | Some p when not p.dead -> Mach.Port.destroy sys p
              | Some _ | None -> ());
              ignore (Mach.Clock.sleep_for sys ~cycles:4_000 : kern_return);
              crash ()
            end
          in
          crash ());
      Test_util.spawn k driver "client" (fun () ->
          while not (S.Supervisor.is_degraded sup ~path) do
            ignore (Mach.Clock.sleep_for sys ~cycles:3_000 : kern_return)
          done;
          ignore (Mach.Clock.sleep_for sys ~cycles:2_000 : kern_return);
          match S.Name_service.resolve_port ns ~path with
          | None -> Alcotest.fail "degraded path resolves to nothing"
          | Some p -> (
              let t0 = Machine.now m in
              match Mach.Rpc.call sys p (simple_message ~payload:P_unit ()) with
              | Ok { msg_payload = P_error Kern_unavailable; _ } ->
                  fastfail := Machine.now m - t0
              | Ok _ -> Alcotest.fail "degraded responder answered success"
              | Error e ->
                  Alcotest.failf "degraded call failed with %s"
                    (kern_return_to_string e))));
  Mach.Kernel.run k;
  Alcotest.(check int) "restarts capped at the budget" 3
    (S.Supervisor.restarts sup);
  Alcotest.(check int) "demoted once" 1 (S.Supervisor.degraded_count sup);
  Alcotest.(check bool) "path is degraded" true (S.Supervisor.is_degraded sup ~path);
  Alcotest.(check bool) "gave up" true (S.Supervisor.gave_up sup);
  Alcotest.(check bool) "degraded port hidden from current_port" true
    (S.Supervisor.current_port sup ~path = None);
  Alcotest.(check bool) "fast fail under 100k cycles" true
    (!fastfail >= 0 && !fastfail < 100_000);
  let rep = Check.report chk in
  Alcotest.(check int) "budget-exhausted finding recorded" 1
    rep.Check.rep_reinc_budget_exhausted;
  Alcotest.(check int) "demotion by policy is not a failure" 0
    (Check.total_findings rep)

(* Dependency-ordered drain: when a driver and the server above it die
   together, the driver must be reincarnated first even though the
   server's death was queued first. *)
let test_sup_dependency_order () =
  let b = boot () in
  let k = b.S.Bootstrap.kernel in
  let sys = k.Mach.Kernel.sys in
  let ns = S.Bootstrap.name_service_exn b in
  let sup = S.Supervisor.create k b.S.Bootstrap.runtime ns in
  let task = Mach.Kernel.task_create k ~name:"pair" () in
  let mk name = Mach.Port.allocate sys ~receiver:task ~name in
  let order = ref [] in
  Test_util.run_in_thread k (fun () ->
      let pa = mk "drv" and pb = mk "srv" in
      S.Supervisor.supervise sup ~path:"/services/drv" ~port:pa
        ~restart:(fun () ->
          order := "drv" :: !order;
          mk "drv")
        ();
      S.Supervisor.supervise sup ~path:"/services/srv"
        ~deps:[ "/services/drv" ] ~port:pb
        ~restart:(fun () ->
          order := "srv" :: !order;
          mk "srv")
        ();
      (* the dependent dies FIRST, so arrival order alone would restart
         it first; both are pending together when the drain runs *)
      Mach.Port.destroy sys pb;
      Mach.Port.destroy sys pa);
  Mach.Kernel.run k;
  Alcotest.(check (list string)) "driver reincarnated before its dependent"
    [ "srv"; "drv" ] !order

(* The missed-wake regression, heartbeat edition: with a huge heartbeat
   interval armed, a death must still be drained promptly via the
   dead-name poke — not after the 10M-cycle tick expires. *)
let test_sup_prompt_restart_under_heartbeat () =
  let b = boot () in
  let k = b.S.Bootstrap.kernel in
  let sys = k.Mach.Kernel.sys in
  let m = k.Mach.Kernel.machine in
  let ns = S.Bootstrap.name_service_exn b in
  let sup = S.Supervisor.create k b.S.Bootstrap.runtime ns in
  let port, health, restart = spawn_echo_server b ~name:"hb" in
  let died_at = ref (-1) and rebound_at = ref (-1) in
  let driver = Mach.Kernel.task_create k ~name:"drv" () in
  Test_util.spawn k driver "main" (fun () ->
      S.Supervisor.supervise sup ~path:"/services/hb"
        ~health:
          {
            S.Supervisor.hc_interval = 10_000_000;
            hc_deadline = 50_000;
            hc_watchdog = 5_000_000;
            hc_port = (fun () -> Some !health);
          }
        ~port:!port
        ~restart:(fun () ->
          let p = restart () in
          rebound_at := Machine.now m;
          p)
        ();
      Test_util.spawn k driver "killer" (fun () ->
          ignore (Mach.Clock.sleep_for sys ~cycles:30_000 : kern_return);
          died_at := Machine.now m;
          Mach.Port.destroy sys !port);
      while !rebound_at < 0 do
        ignore (Mach.Clock.sleep_for sys ~cycles:10_000 : kern_return)
      done;
      S.Supervisor.stop sup);
  Mach.Kernel.run k;
  Alcotest.(check int) "one restart" 1 (S.Supervisor.restarts sup);
  Alcotest.(check bool) "death seen" true (!died_at >= 0);
  Alcotest.(check bool) "restart prompt, not at the heartbeat tick" true
    (!rebound_at - !died_at < 1_000_000)

let test_components () =
  let b = boot () in
  Alcotest.(check (list string)) "inventory"
    [ "pn-runtime"; "default-pager"; "loader"; "name-service(x500)" ]
    (S.Bootstrap.components b)

let suite =
  [
    Alcotest.test_case "malloc/free" `Quick test_malloc_free;
    Alcotest.test_case "umutex contention" `Quick test_umutex_contention;
    Alcotest.test_case "name db basics" `Quick test_name_db_basics;
    Alcotest.test_case "name db search+notify" `Quick test_name_db_search_and_notify;
    Alcotest.test_case "name service over RPC" `Quick test_name_service_rpc;
    Alcotest.test_case "simple naming mode" `Quick test_simple_naming_mode;
    Alcotest.test_case "loader" `Quick test_loader;
    Alcotest.test_case "paging under pressure" `Slow test_paging_under_pressure;
    Alcotest.test_case "bootstrap components" `Quick test_components;
    Alcotest.test_case "supervisor wedge watchdog" `Quick test_sup_wedge_watchdog;
    Alcotest.test_case "supervisor budget exhaustion" `Quick
      test_sup_budget_degraded;
    Alcotest.test_case "supervisor dependency order" `Quick
      test_sup_dependency_order;
    Alcotest.test_case "supervisor prompt restart" `Quick
      test_sup_prompt_restart_under_heartbeat;
  ]
