(* The VFS path-walk layer: the synthetic root, the uniform E_not_dir
   walk check, compromise counting, vnode identity and lifecycle, and
   the name cache — correctness under invalidation, equivalence with
   the cache off, and the Machcheck vnode/name-cache checker firing on
   seeded misuse and staying silent on clean runs. *)

open Fileserver.Fs_types
module F = Fileserver
module Vfs = F.Vfs
module Vnode = F.Vnode

let err = Test_util.fs_error
let ok = Test_util.check_fs_ok
let sem = Vfs.unix_semantics

(* Boot a kernel, mkfs+mount [formats] at the given points into one VFS,
   run [body] in a simulated thread. *)
let with_vfs ?(namecache = true) formats body =
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  let vfs = Vfs.create ~kernel:k ~namecache () in
  let cache = F.Block_cache.create k disk () in
  List.iteri
    (fun i (point, mk, mount) ->
      mk disk ~start:(i * 4096);
      match mount cache ~start:(i * 4096) with
      | Ok pfs -> (
          match Vfs.mount vfs ~at:point pfs with
          | Ok () -> ()
          | Error e -> Alcotest.fail e)
      | Error e -> Alcotest.fail (fs_error_to_string e))
    formats;
  Test_util.run_in_thread k (fun () -> body vfs)

let fat =
  ( "/fat",
    (fun d ~start -> F.Fat.mkfs d ~start ()),
    fun c ~start -> F.Fat.mount c ~start () )

let hpfs =
  ( "/hpfs",
    (fun d ~start -> F.Hpfs.mkfs d ~start ()),
    fun c ~start -> F.Hpfs.mount c ~start () )

let jfs =
  ( "/jfs",
    (fun d ~start -> F.Jfs.mkfs d ~start ()),
    fun c ~start -> F.Jfs.mount c ~start () )

let ext =
  let cfg =
    {
      F.Extfs.cfg_format = "ext";
      cfg_max_name = 60;
      cfg_case_sensitive = true;
      cfg_journalled = false;
    }
  in
  ( "/ext",
    (fun d ~start -> F.Extfs.mkfs d cfg ~start ()),
    fun c ~start -> F.Extfs.mount c cfg ~start () )

(* --- bug 1: the root path resolves ---------------------------------------- *)

let test_root_path () =
  with_vfs [ hpfs; fat ] (fun vfs ->
      (match Vfs.resolve vfs sem ~path:"/" with
      | Ok Vfs.Root -> ()
      | Ok (Vfs.File _) -> Alcotest.fail "/ resolved to a file"
      | Error e -> Alcotest.failf "/ failed: %s" (fs_error_to_string e));
      let st = ok "stat /" (Vfs.stat vfs sem ~path:"/") in
      Alcotest.(check bool) "/ is a directory" true st.st_is_dir;
      Alcotest.(check (list string))
        "readdir / lists the mount points" [ "fat"; "hpfs" ]
        (ok "readdir /" (Vfs.readdir vfs sem ~path:"/"));
      (* the empty path is the same object *)
      Alcotest.(check bool) "stat \"\" is root" true
        (ok "stat \"\"" (Vfs.stat vfs sem ~path:"")).st_is_dir;
      (* the root is not a file: it cannot be created over or removed *)
      Alcotest.(check (result unit err))
        "unlink / rejected" (Error E_bad_name)
        (Vfs.unlink vfs sem ~path:"/"))

(* --- bug 3: walking through a non-directory ------------------------------- *)

let test_walk_through_file () =
  with_vfs [ fat; hpfs; jfs; ext ] (fun vfs ->
      List.iter
        (fun root ->
          let file = root ^ "/plain.txt" in
          ignore (ok "create" (Vfs.create_file vfs sem ~path:file));
          (* resolving *through* the file is E_not_dir on every format *)
          Alcotest.(check (result unit err))
            (file ^ "/x stats E_not_dir")
            (Error E_not_dir)
            (Result.map (fun _ -> ()) (Vfs.stat vfs sem ~path:(file ^ "/x")));
          Alcotest.(check (result unit err))
            (file ^ "/x/y stats E_not_dir")
            (Error E_not_dir)
            (Result.map
               (fun _ -> ())
               (Vfs.stat vfs sem ~path:(file ^ "/x/y")));
          (* ... and so is creating under it *)
          Alcotest.(check (result unit err))
            (file ^ "/sub mkdir E_not_dir")
            (Error E_not_dir)
            (Result.map
               (fun _ -> ())
               (Vfs.mkdir vfs sem ~path:(file ^ "/sub/d")));
          (* the file itself still resolves *)
          ignore (ok "file still stats" (Vfs.stat vfs sem ~path:file)))
        [ "/fat"; "/hpfs"; "/jfs"; "/ext" ])

(* --- bug 2: compromise counting ------------------------------------------- *)

let test_compromise_counting () =
  with_vfs [ hpfs ] (fun vfs ->
      (* a name with nothing to fold is no compromise, however often
         it is walked by a case-sensitive client *)
      ignore (ok "create" (Vfs.create_file vfs sem ~path:"/hpfs/plain.txt"));
      for _ = 1 to 5 do
        ignore (ok "stat" (Vfs.stat vfs sem ~path:"/hpfs/plain.txt"))
      done;
      Alcotest.(check int) "no letters folded: no compromise" 0
        (Vfs.compromises vfs);
      (* a folding name counts once per distinct name, not once per walk *)
      ignore (ok "create" (Vfs.create_file vfs sem ~path:"/hpfs/Mixed.txt"));
      for _ = 1 to 5 do
        ignore (ok "stat" (Vfs.stat vfs sem ~path:"/hpfs/Mixed.txt"))
      done;
      Alcotest.(check int) "one distinct folded name" 1 (Vfs.compromises vfs);
      ignore (ok "create" (Vfs.create_file vfs sem ~path:"/hpfs/Other.txt"));
      Alcotest.(check int) "two distinct folded names" 2 (Vfs.compromises vfs);
      (* a case-folding client never compromises *)
      ignore
        (ok "os2 stat"
           (Vfs.stat vfs Vfs.os2_semantics ~path:"/hpfs/MIXED.TXT"));
      Alcotest.(check int) "os2 client adds none" 2 (Vfs.compromises vfs);
      (* a case-sensitive format never compromises *)
      with_vfs [ jfs ] (fun vfs2 ->
          ignore
            (ok "create" (Vfs.create_file vfs2 sem ~path:"/jfs/Mixed.txt"));
          ignore (ok "stat" (Vfs.stat vfs2 sem ~path:"/jfs/Mixed.txt"));
          Alcotest.(check int) "case-sensitive format: none" 0
            (Vfs.compromises vfs2)))

(* --- vnode identity -------------------------------------------------------- *)

let file_vnode vfs path =
  match Vfs.resolve vfs sem ~path with
  | Ok (Vfs.File v) -> v
  | Ok Vfs.Root -> Alcotest.fail (path ^ ": resolved to root")
  | Error e -> Alcotest.failf "%s: %s" path (fs_error_to_string e)

let test_vnode_identity () =
  with_vfs [ hpfs ] (fun vfs ->
      ignore (ok "create" (Vfs.create_file vfs sem ~path:"/hpfs/a.dat"));
      let v1 = file_vnode vfs "/hpfs/a.dat" in
      let v2 = file_vnode vfs "/hpfs/a.dat" in
      Alcotest.(check bool) "same path, same vnode" true (v1 == v2);
      ok "unlink" (Vfs.unlink vfs sem ~path:"/hpfs/a.dat");
      Alcotest.(check bool) "unlink reclaims" true (Vnode.reclaimed v1);
      Alcotest.(check (result unit err))
        "stat through reclaimed vnode" (Error E_bad_handle)
        (Result.map (fun _ -> ()) (Vnode.stat v1));
      (* id reuse after recreation yields a fresh, live vnode *)
      ignore (ok "recreate" (Vfs.create_file vfs sem ~path:"/hpfs/a.dat"));
      let v3 = file_vnode vfs "/hpfs/a.dat" in
      Alcotest.(check bool) "fresh vnode" true (v3 != v1);
      Alcotest.(check bool) "and live" false (Vnode.reclaimed v3))

(* --- name-cache invalidation ----------------------------------------------- *)

let neg_hits vfs = (Vfs.cache_stats vfs).F.Namecache.cs_neg_hits
let pos_hits vfs = (Vfs.cache_stats vfs).F.Namecache.cs_hits

let test_cache_hit_then_unlink () =
  with_vfs [ hpfs ] (fun vfs ->
      ignore (ok "create" (Vfs.create_file vfs sem ~path:"/hpfs/x.dat"));
      ignore (ok "stat" (Vfs.stat vfs sem ~path:"/hpfs/x.dat"));
      let h0 = pos_hits vfs in
      ignore (ok "stat again" (Vfs.stat vfs sem ~path:"/hpfs/x.dat"));
      Alcotest.(check bool) "second walk hits the cache" true
        (pos_hits vfs > h0);
      ok "unlink" (Vfs.unlink vfs sem ~path:"/hpfs/x.dat");
      Alcotest.(check (result unit err))
        "after unlink: not found" (Error E_not_found)
        (Result.map (fun _ -> ()) (Vfs.stat vfs sem ~path:"/hpfs/x.dat")))

let test_cache_rename_moves_entry () =
  with_vfs [ hpfs ] (fun vfs ->
      ignore (ok "create" (Vfs.create_file vfs sem ~path:"/hpfs/old.dat"));
      ignore (ok "stat" (Vfs.stat vfs sem ~path:"/hpfs/old.dat"));
      ok "rename" (Vfs.rename vfs sem ~src:"/hpfs/old.dat" ~dst:"/hpfs/new.dat");
      Alcotest.(check (result unit err))
        "old name gone" (Error E_not_found)
        (Result.map (fun _ -> ()) (Vfs.stat vfs sem ~path:"/hpfs/old.dat"));
      ignore (ok "new name resolves" (Vfs.stat vfs sem ~path:"/hpfs/new.dat")))

let test_cache_negative_cleared_by_create () =
  with_vfs [ hpfs ] (fun vfs ->
      Alcotest.(check (result unit err))
        "missing" (Error E_not_found)
        (Result.map (fun _ -> ()) (Vfs.stat vfs sem ~path:"/hpfs/ghost.dat"));
      let n0 = neg_hits vfs in
      Alcotest.(check (result unit err))
        "still missing" (Error E_not_found)
        (Result.map (fun _ -> ()) (Vfs.stat vfs sem ~path:"/hpfs/ghost.dat"));
      Alcotest.(check bool) "second miss served negatively" true
        (neg_hits vfs > n0);
      ignore (ok "create" (Vfs.create_file vfs sem ~path:"/hpfs/ghost.dat"));
      ignore (ok "created name resolves" (Vfs.stat vfs sem ~path:"/hpfs/ghost.dat")))

(* --- qcheck: cache-on and cache-off resolve identically --------------------- *)

(* A random script over a fixed name pool, run twice on identical fresh
   volumes — once with the name cache, once without.  Every operation's
   (normalized) outcome must agree.  Mount, create, unlink, rename and
   mkdir interleave so the scripts hit the invalidation paths. *)

type script_op =
  | S_create of string
  | S_mkdir of string
  | S_unlink of string
  | S_rename of string * string
  | S_stat of string
  | S_readdir of string
  | S_mount  (* attach a second volume mid-script *)

let script_paths =
  [ "/a/x"; "/a/y"; "/a/sub"; "/a/sub/x"; "/b/x"; "/nowhere/x" ]

let op_gen =
  QCheck.Gen.(
    let path = oneofl script_paths in
    frequency
      [
        (3, map (fun p -> S_create p) path);
        (2, map (fun p -> S_mkdir p) path);
        (2, map (fun p -> S_unlink p) path);
        (2, map2 (fun a b -> S_rename (a, b)) path path);
        (4, map (fun p -> S_stat p) path);
        (2, map (fun p -> S_readdir p) path);
        (1, return S_mount);
      ])

let op_print = function
  | S_create p -> "create " ^ p
  | S_mkdir p -> "mkdir " ^ p
  | S_unlink p -> "unlink " ^ p
  | S_rename (a, b) -> Printf.sprintf "rename %s %s" a b
  | S_stat p -> "stat " ^ p
  | S_readdir p -> "readdir " ^ p
  | S_mount -> "mount /b"

let run_script ~namecache ops =
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  let vfs = Vfs.create ~kernel:k ~namecache () in
  let cache = F.Block_cache.create k disk () in
  F.Hpfs.mkfs disk ();
  F.Fat.mkfs disk ~start:4096 ();
  (match F.Hpfs.mount cache () with
  | Ok pfs -> (
      match Vfs.mount vfs ~at:"/a" pfs with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail (fs_error_to_string e));
  let spare =
    match F.Fat.mount cache ~start:4096 () with
    | Ok pfs -> pfs
    | Error e -> Alcotest.fail (fs_error_to_string e)
  in
  Test_util.run_in_thread k (fun () ->
      List.map
        (fun op ->
          let show label = function
            | Ok s -> label ^ ":ok:" ^ s
            | Error e -> label ^ ":" ^ fs_error_to_string e
          in
          match op with
          | S_create p ->
              show "create"
                (Result.map (fun (_ : file_id) -> "") (Vfs.create_file vfs sem ~path:p))
          | S_mkdir p ->
              show "mkdir"
                (Result.map (fun (_ : file_id) -> "") (Vfs.mkdir vfs sem ~path:p))
          | S_unlink p ->
              show "unlink" (Result.map (fun () -> "") (Vfs.unlink vfs sem ~path:p))
          | S_rename (a, b) ->
              show "rename"
                (Result.map (fun () -> "") (Vfs.rename vfs sem ~src:a ~dst:b))
          | S_stat p ->
              show "stat"
                (Result.map
                   (fun st ->
                     Printf.sprintf "%b:%d" st.st_is_dir st.st_size)
                   (Vfs.stat vfs sem ~path:p))
          | S_readdir p ->
              show "readdir"
                (Result.map
                   (fun names -> String.concat "," (List.sort compare names))
                   (Vfs.readdir vfs sem ~path:p))
          | S_mount ->
              show "mount"
                (match Vfs.mount vfs ~at:"/b" spare with
                | Ok () -> Ok ""
                | Error e -> Ok ("rejected:" ^ e)))
        ops)

let cache_equivalence =
  QCheck.Test.make ~name:"cache-on and cache-off scripts agree" ~count:30
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map op_print ops))
       QCheck.Gen.(list_size (5 -- 40) op_gen))
    (fun ops ->
      run_script ~namecache:true ops = run_script ~namecache:false ops)

(* --- the vnode checker ------------------------------------------------------ *)

let test_checker_use_after_reclaim () =
  let chk = Check.create () in
  Check.install chk;
  Fun.protect ~finally:Check.uninstall @@ fun () ->
  with_vfs [ hpfs ] (fun vfs ->
      ignore (ok "create" (Vfs.create_file vfs sem ~path:"/hpfs/v.dat"));
      let v = file_vnode vfs "/hpfs/v.dat" in
      ok "unlink" (Vfs.unlink vfs sem ~path:"/hpfs/v.dat");
      (* seeded misuse: dispatch through the dead vnode *)
      Alcotest.(check (result unit err))
        "op fails" (Error E_bad_handle)
        (Result.map (fun _ -> ()) (Vnode.stat v)));
  let rep = Check.report chk in
  Alcotest.(check int) "one use-after-reclaim" 1
    rep.Check.rep_vnode_use_after_reclaim;
  Alcotest.(check bool) "finding names the vnode checker" true
    (List.exists (fun f -> f.Check.f_checker = "vnode") rep.Check.rep_findings)

let test_checker_leaked_refs () =
  let chk = Check.create () in
  Check.install chk;
  Fun.protect ~finally:Check.uninstall @@ fun () ->
  with_vfs [ hpfs ] (fun vfs ->
      ignore (ok "create" (Vfs.create_file vfs sem ~path:"/hpfs/held.dat"));
      let v = file_vnode vfs "/hpfs/held.dat" in
      Vnode.ref_ v;
      (* crash recovery sweeps: the reference was never dropped *)
      ignore (Vfs.recover vfs : recover_report));
  let rep = Check.report chk in
  Alcotest.(check int) "one leaked reference" 1 rep.Check.rep_vnode_leaks

let test_checker_clean_lifecycle () =
  let chk = Check.create () in
  Check.install chk;
  Fun.protect ~finally:Check.uninstall @@ fun () ->
  with_vfs [ hpfs ] (fun vfs ->
      ignore (ok "create" (Vfs.create_file vfs sem ~path:"/hpfs/c.dat"));
      let v = file_vnode vfs "/hpfs/c.dat" in
      Vnode.ref_ v;
      ignore (ok "stat" (Vfs.stat vfs sem ~path:"/hpfs/c.dat"));
      Vnode.unref v;
      ok "unlink" (Vfs.unlink vfs sem ~path:"/hpfs/c.dat");
      ignore (Vfs.recover vfs : recover_report);
      (* post-recovery, the volume works and refills the cache *)
      ignore (ok "recreate" (Vfs.create_file vfs sem ~path:"/hpfs/c.dat"));
      ignore (ok "stat" (Vfs.stat vfs sem ~path:"/hpfs/c.dat")));
  let rep = Check.report chk in
  Alcotest.(check int) "no findings" 0 (Check.total_findings rep)

(* --- the vfs-walk workload under the checker -------------------------------- *)

let test_vfs_walk_workload () =
  let r =
    Workloads.Vfs_walk.run ~depth:6 ~files:8 ~repeats:3 ~cpus:2 ~checks:true ()
  in
  let open Workloads.Vfs_walk in
  Alcotest.(check bool)
    (Printf.sprintf "hot hit rate %.2f >= 0.9" r.r_hot_hit_rate)
    true (r.r_hot_hit_rate >= 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "deep speedup %.2f >= 2" r.r_deep_speedup)
    true (r.r_deep_speedup >= 2.0);
  Alcotest.(check int) "all concurrent lookups ok" r.r_concurrent_expected
    r.r_concurrent_ok;
  match r.r_check with
  | Some rep -> Alcotest.(check int) "clean" 0 (Check.total_findings rep)
  | None -> Alcotest.fail "no checker report"

let suite =
  [
    Alcotest.test_case "root path resolves, readdir lists mounts" `Quick
      test_root_path;
    Alcotest.test_case "walk through a file is E_not_dir on all formats"
      `Quick test_walk_through_file;
    Alcotest.test_case "compromises count distinct folded names once" `Quick
      test_compromise_counting;
    Alcotest.test_case "vnodes are interned per (mount, id)" `Quick
      test_vnode_identity;
    Alcotest.test_case "cache: hit, unlink, miss" `Quick
      test_cache_hit_then_unlink;
    Alcotest.test_case "cache: rename moves the entry" `Quick
      test_cache_rename_moves_entry;
    Alcotest.test_case "cache: create clears a negative entry" `Quick
      test_cache_negative_cleared_by_create;
    QCheck_alcotest.to_alcotest cache_equivalence;
    Alcotest.test_case "checker: seeded use-after-reclaim fires" `Quick
      test_checker_use_after_reclaim;
    Alcotest.test_case "checker: leaked ref at recovery fires" `Quick
      test_checker_leaked_refs;
    Alcotest.test_case "checker: clean lifecycle stays silent" `Quick
      test_checker_clean_lifecycle;
    Alcotest.test_case "vfs-walk workload meets acceptance" `Slow
      test_vfs_walk_workload;
  ]
