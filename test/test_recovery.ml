(* Crash-consistency tests: disk-level fault injection, the write-ahead
   journal's durability and rollback guarantees, recovery after power
   cuts, and the exhaustive crash-point sweep at a small bound. *)

open Fileserver.Fs_types
module F = Fileserver

let ok label = Test_util.check_fs_ok label

(* Block until every submitted disk request (including reorder-held
   writes) has been applied. *)
let barrier_wait k disk =
  let sys = k.Mach.Kernel.sys in
  let th = Mach.Sched.self () in
  let arrived = ref false in
  Machine.Disk.barrier disk (fun () ->
      arrived := true;
      Mach.Sched.wake sys th);
  while not !arrived do
    ignore (Mach.Sched.block "test-barrier" : Mach.Ktypes.kern_return)
  done

(* --- disk-level fault primitives ------------------------------------------- *)

let test_torn_write_lands_prefix () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  Drivers.Disk_driver.arm_faults k disk;
  let plan = Mach.Fault.create ~seed:5 () in
  Mach.Fault.at_disk_write plan ~disk:(Machine.Disk.name disk) ~n:1
    Mach.Fault.Torn_write;
  sys.Mach.Sched.faults <- Some plan;
  let data = Bytes.init 512 (fun i -> Char.chr (65 + (i mod 26))) in
  Test_util.run_in_thread k (fun () ->
      Machine.Disk.write disk ~block:100 data (fun () -> ());
      barrier_wait k disk);
  Alcotest.(check int) "the tear was injected" 1
    (Mach.Fault.injected_torn_writes plan);
  let got = Machine.Disk.read_now disk ~block:100 ~count:1 in
  (* some 4-byte-aligned prefix landed, never the whole sector *)
  let keep = ref 0 in
  while !keep < 512 && Bytes.get got !keep = Bytes.get data !keep do incr keep done;
  Alcotest.(check bool) "not the whole sector" true (!keep < 512);
  Alcotest.(check int) "tear at a word boundary" 0 (!keep mod 4);
  for i = !keep to 511 do
    Alcotest.(check char) (Printf.sprintf "byte %d untouched" i) '\000'
      (Bytes.get got i)
  done

let drive_seeded_disk_faults ~seed =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  Drivers.Disk_driver.arm_faults k disk;
  let plan = Mach.Fault.create ~seed () in
  Mach.Fault.set_disk_rates plan ~disk:(Machine.Disk.name disk)
    ~torn_ppm:120_000 ~bit_rot_ppm:120_000 ~reorder_ppm:120_000 ();
  sys.Mach.Sched.faults <- Some plan;
  Test_util.run_in_thread k (fun () ->
      for i = 0 to 39 do
        Machine.Disk.write disk ~block:(100 + i)
          (Bytes.make 512 (Char.chr (33 + i)))
          (fun () -> ())
      done;
      barrier_wait k disk);
  let image = Buffer.create (40 * 512) in
  for i = 0 to 39 do
    Buffer.add_bytes image (Machine.Disk.read_now disk ~block:(100 + i) ~count:1)
  done;
  (Buffer.contents image, Mach.Fault.injected_disk_faults plan)

let test_disk_faults_replay_deterministically () =
  let image_a, faults_a = drive_seeded_disk_faults ~seed:9 in
  let image_b, faults_b = drive_seeded_disk_faults ~seed:9 in
  Alcotest.(check bool) "faults were injected" true (faults_a >= 1);
  Alcotest.(check int) "same fault count" faults_a faults_b;
  Alcotest.(check string) "bit-identical disk image" image_a image_b

(* --- journal durability ------------------------------------------------------ *)

let test_jfs_commit_durable_without_sync () =
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  F.Jfs.mkfs disk ();
  Test_util.run_in_thread k (fun () ->
      let cache = F.Block_cache.create k disk () in
      let pfs = ok "mount" (F.Jfs.mount cache ()) in
      let id =
        ok "create" (pfs.pfs_create ~dir:pfs.pfs_root "durable" ~is_dir:false)
      in
      let data = Bytes.of_string "journalled, never synced" in
      ignore (ok "write" (pfs.pfs_write id ~off:0 data));
      (* no sync: the home blocks exist only in the doomed cache.  A
         recovery mount against a cold cache must replay the journal. *)
      let cache2 = F.Block_cache.create k disk () in
      let pfs2 = ok "recovery mount" (F.Jfs.mount cache2 ()) in
      (match F.Jfs.last_recovery cache2 with
      | Some rv ->
          Alcotest.(check bool) "transactions replayed" true
            (rv.F.Journal.rv_replayed_txns > 0)
      | None -> Alcotest.fail "no recovery report");
      let id2 = ok "lookup" (pfs2.pfs_lookup ~dir:pfs2.pfs_root "durable") in
      Alcotest.(check bytes) "content survived" data
        (ok "read" (pfs2.pfs_read id2 ~off:0 ~len:(Bytes.length data))))

let test_power_cut_recovery () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  F.Jfs.mkfs disk ();
  Drivers.Disk_driver.arm_faults k disk;
  Test_util.run_in_thread k (fun () ->
      let cache = F.Block_cache.create k disk () in
      let pfs = ok "mount" (F.Jfs.mount cache ()) in
      let plan = Mach.Fault.create ~seed:11 () in
      Mach.Fault.at_disk_write plan ~disk:(Machine.Disk.name disk) ~n:12
        Mach.Fault.Power_cut;
      sys.Mach.Sched.faults <- Some plan;
      let acked = ref [] in
      for i = 1 to 4 do
        let name = Printf.sprintf "f%d" i in
        let data = Bytes.make (200 * i) (Char.chr (64 + i)) in
        match pfs.pfs_create ~dir:pfs.pfs_root name ~is_dir:false with
        | Ok id -> (
            match pfs.pfs_write id ~off:0 data with
            | Ok _ when Machine.Disk.powered_on disk ->
                acked := (name, data) :: !acked
            | _ -> ())
        | Error _ -> ()
      done;
      Alcotest.(check bool) "the cut landed" false (Machine.Disk.powered_on disk);
      sys.Mach.Sched.faults <- None;
      Machine.Disk.power_restore disk;
      let cache2 = F.Block_cache.create k disk () in
      let pfs2 = ok "recovery mount" (F.Jfs.mount cache2 ()) in
      Alcotest.(check (list string)) "fsck clean" [] (F.Jfs.fsck cache2 ());
      List.iter
        (fun (name, data) ->
          let id =
            ok (name ^ " present") (pfs2.pfs_lookup ~dir:pfs2.pfs_root name)
          in
          Alcotest.(check bytes) (name ^ " byte-exact") data
            (ok "read" (pfs2.pfs_read id ~off:0 ~len:(Bytes.length data))))
        !acked)

(* --- corrupted journal records ----------------------------------------------- *)

(* Mirrors of the record layout, for finding a record to damage. *)
let get32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let cksum b off len =
  let h = ref 0x811C9DC5 in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (Bytes.get b i)) * 0x01000193 land 0xFFFFFFFF
  done;
  !h

let find_newest_journal_header disk =
  let best = ref None in
  for block = 0 to 4095 do
    let raw = Machine.Disk.read_now disk ~block ~count:1 in
    if
      Bytes.length raw >= 24
      && Bytes.sub_string raw 0 4 = "WJH1"
      && get32 raw 20 = cksum raw 0 20
    then
      let seq = get32 raw 4 in
      match !best with
      | Some (s, _) when s >= seq -> ()
      | _ -> best := Some (seq, block)
  done;
  !best

let test_torn_journal_record_discarded () =
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  F.Jfs.mkfs disk ();
  Test_util.run_in_thread k (fun () ->
      let cache = F.Block_cache.create k disk () in
      let pfs = ok "mount" (F.Jfs.mount cache ()) in
      for i = 1 to 3 do
        let id =
          ok "create"
            (pfs.pfs_create ~dir:pfs.pfs_root (Printf.sprintf "t%d" i)
               ~is_dir:false)
        in
        ignore (ok "write" (pfs.pfs_write id ~off:0 (Bytes.make 600 'j')))
      done);
  Mach.Kernel.run k;
  (* damage the newest header record — a torn write inside the journal
     itself.  Recovery must notice (checksums, slot discipline) and
     discard that transaction rather than replay garbage. *)
  (match find_newest_journal_header disk with
  | Some (_, block) ->
      Machine.Disk.write_now disk ~block (Bytes.make 512 '\xAB')
  | None -> Alcotest.fail "no journal header found on disk");
  Test_util.run_in_thread k (fun () ->
      let cache2 = F.Block_cache.create k disk () in
      ignore (ok "recovery mount" (F.Jfs.mount cache2 ()) : pfs);
      (match F.Jfs.last_recovery cache2 with
      | Some rv ->
          Alcotest.(check bool) "damaged txn discarded" true
            (rv.F.Journal.rv_discarded >= 1)
      | None -> Alcotest.fail "no recovery report");
      Alcotest.(check (list string)) "volume still consistent" []
        (F.Jfs.fsck cache2 ()))

(* --- fsck --------------------------------------------------------------------- *)

let find_block_containing disk ~needle =
  let n = String.length needle in
  let found = ref None in
  for block = 0 to 8191 do
    if !found = None then begin
      let raw = Bytes.to_string (Machine.Disk.read_now disk ~block ~count:1) in
      let limit = String.length raw - n in
      let i = ref 0 in
      while !found = None && !i <= limit do
        if String.sub raw !i n = needle then found := Some block;
        incr i
      done
    end
  done;
  !found

let test_fsck_detects_corruption () =
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  F.Hpfs.mkfs disk ();
  Test_util.run_in_thread k (fun () ->
      let cache = F.Block_cache.create k disk () in
      let pfs = ok "mount" (F.Hpfs.mount cache ()) in
      let id =
        ok "create"
          (pfs.pfs_create ~dir:pfs.pfs_root "zzcorrupt.me" ~is_dir:false)
      in
      ignore (ok "write" (pfs.pfs_write id ~off:0 (Bytes.make 900 'c')));
      pfs.pfs_sync ();
      Alcotest.(check (list string)) "clean before the damage" []
        (F.Hpfs.fsck cache ()));
  Mach.Kernel.run k;
  (* clobber the directory block holding the entry *)
  (match find_block_containing disk ~needle:"zzcorrupt.me" with
  | Some block -> Machine.Disk.write_now disk ~block (Bytes.make 512 '\xFF')
  | None -> Alcotest.fail "directory entry not found on disk");
  Test_util.run_in_thread k (fun () ->
      let cache2 = F.Block_cache.create k disk () in
      Alcotest.(check bool) "fsck reports the damage" true
        (F.Hpfs.fsck cache2 () <> []))

(* --- transaction rollback ------------------------------------------------------ *)

let test_jfs_rollback_on_no_space () =
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  F.Jfs.mkfs disk ~blocks:512 ();
  Test_util.run_in_thread k (fun () ->
      let cache = F.Block_cache.create k disk () in
      let pfs = ok "mount" (F.Jfs.mount cache ()) in
      let id =
        ok "create" (pfs.pfs_create ~dir:pfs.pfs_root "filler" ~is_dir:false)
      in
      let chunk = Bytes.make 4096 'z' in
      let rec fill off =
        if off > 512 * 512 then Alcotest.fail "volume never filled up"
        else begin
          let free = pfs.pfs_free_blocks () in
          match pfs.pfs_write id ~off chunk with
          | Ok _ -> fill (off + 4096)
          | Error E_no_space ->
              (* the failed operation's transaction overlay was dropped:
                 no allocation it attempted may stick *)
              Alcotest.(check int) "failed op fully rolled back" free
                (pfs.pfs_free_blocks ())
          | Error e -> Alcotest.fail (fs_error_to_string e)
        end
      in
      fill 0;
      Alcotest.(check (list string)) "fsck clean after rollback" []
        (F.Jfs.fsck cache ()))

(* --- supervised restart reclaims pool pins -------------------------------------- *)

let test_restart_reclaims_pins () =
  let k = Test_util.kernel_on () in
  let runtime = Mk_services.Runtime.install k in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  F.Hpfs.mkfs disk ();
  let vfs = F.Vfs.create () in
  let cache = F.Block_cache.create k disk () in
  (match F.Hpfs.mount cache () with
  | Ok pfs -> (
      match F.Vfs.mount vfs ~at:"/os2" pfs with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail (fs_error_to_string e));
  let fs = F.File_server.start k runtime vfs () in
  Test_util.run_in_thread k (fun () ->
      let sem = F.Vfs.os2_semantics in
      let h =
        ok "open"
          (F.File_server.Client.open_ fs sem ~path:"/os2/zc" ~create:true ())
      in
      ignore (ok "write" (F.File_server.Client.write fs h (Bytes.make 8192 'p')));
      F.File_server.Client.seek fs h ~pos:0;
      ignore (ok "read_zc" (F.File_server.Client.read_zc fs h ~bytes:8192));
      Alcotest.(check bool) "zero-copy reply pinned pool pages" true
        (F.Block_cache.pool_pinned cache > 0);
      (* crash-and-restart with the reply still outstanding: the dead
         incarnation's pins must not leak into the next one *)
      ignore (F.File_server.restart fs : Mach.Ktypes.port);
      Alcotest.(check int) "restart reclaimed every pin" 0
        (F.Block_cache.pool_pinned cache);
      match F.File_server.last_recovery fs with
      | Some rep ->
          Alcotest.(check (list string)) "recovery scan clean" []
            rep.rr_fsck_findings
      | None -> Alcotest.fail "no recovery report after restart")

(* --- the sweep at a small bound -------------------------------------------------- *)

let test_crash_enumeration_small_bound () =
  let open Workloads.Recovery_sweep in
  let r = run ~ops:2 ~max_points:32 ~series:[ 4 ] ~checks:true () in
  Alcotest.(check bool) "every point enumerated" true r.r_exhaustive;
  Alcotest.(check bool) "points were checked" true (r.r_points_checked > 0);
  Alcotest.(check int) "no acknowledged write lost" 0 r.r_lost_writes;
  Alcotest.(check int) "no torn recovered state" 0 r.r_torn_states;
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "crash@%d fsck clean" p.cp_write)
        0 p.cp_fsck_findings)
    r.r_points;
  (* acknowledged-op counts never decrease along the write axis *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "acked monotone" true (a.cp_acked <= b.cp_acked);
        monotone rest
    | _ -> ()
  in
  monotone r.r_points;
  match r.r_check with
  | Some rep ->
      Alcotest.(check int) "checker saw every point" r.r_points_checked
        rep.Check.rep_crash_points;
      Alcotest.(check int) "no machcheck findings" 0 (Check.total_findings rep)
  | None -> Alcotest.fail "expected a machcheck report"

let suite =
  [
    Alcotest.test_case "torn write lands an aligned prefix" `Quick
      test_torn_write_lands_prefix;
    Alcotest.test_case "disk faults replay deterministically" `Quick
      test_disk_faults_replay_deterministically;
    Alcotest.test_case "jfs commit durable without sync" `Quick
      test_jfs_commit_durable_without_sync;
    Alcotest.test_case "power-cut recovery keeps acked writes" `Quick
      test_power_cut_recovery;
    Alcotest.test_case "damaged journal record discarded" `Quick
      test_torn_journal_record_discarded;
    Alcotest.test_case "fsck detects deliberate corruption" `Quick
      test_fsck_detects_corruption;
    Alcotest.test_case "jfs rolls back a failed operation" `Quick
      test_jfs_rollback_on_no_space;
    Alcotest.test_case "restart reclaims zero-copy pins" `Quick
      test_restart_reclaims_pins;
    Alcotest.test_case "crash-point enumeration (small bound)" `Quick
      test_crash_enumeration_small_bound;
  ]
