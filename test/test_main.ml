let () =
  Alcotest.run "wpos-repro"
    [
      ("machine", Test_machine.suite);
      ("mach", Test_mach.suite);
      ("services", Test_services.suite);
      ("fileserver", Test_fileserver.suite);
      ("monolithic", Test_monolithic.suite);
      ("finegrain-net", Test_finegrain.suite);
      ("drivers", Test_drivers.suite);
      ("personalities", Test_personalities.suite);
      ("wpos", Test_wpos.suite);
      ("workloads", Test_workloads.suite);
      ("perf-paths", Test_perf_paths.suite);
      ("properties", Test_properties.suite);
      ("edge-cases", Test_more.suite);
      ("faults", Test_faults.suite);
      ("machcheck", Test_check.suite);
      ("recovery", Test_recovery.suite);
      ("smp", Test_smp.suite);
      ("vfs", Test_vfs.suite);
      ("net", Test_net.suite);
    ]
