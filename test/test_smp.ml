(* The SMP machine and the per-CPU scheduler: deterministic N-CPU
   interleaving, work stealing, affinity, cross-CPU wakeups over the
   scheduler message queues, the Machcheck cross-CPU cycle annotation,
   and the per-CPU machine-state accounting. *)

open Mach.Ktypes

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let smp_config n = Machine.Config.with_ncpus Machine.Config.pentium_133 ~n

(* --- determinism --------------------------------------------------------- *)

let test_deterministic_interleaving () =
  (* the whole scaling sweep, twice: every simulated number must agree
     run to run — N-CPU dispatch order is a pure function of the clocks *)
  let run () =
    let r =
      Workloads.Smp_scaling.run ~cpus:[ 2; 4 ] ~pairs:3 ~iters:8 ~bytes:128
        ~clients:2 ~sessions:1 ()
    in
    List.map
      (fun (p : Workloads.Smp_scaling.point) ->
        ( p.Workloads.Smp_scaling.sp_wall_cycles,
          p.Workloads.Smp_scaling.sp_ipis,
          p.Workloads.Smp_scaling.sp_xmsgs,
          p.Workloads.Smp_scaling.sp_steals,
          p.Workloads.Smp_scaling.sp_coherence_misses,
          p.Workloads.Smp_scaling.sp_bus_stall_cycles ))
      r.Workloads.Smp_scaling.r_points
  in
  let a = run () and b = run () in
  checki "same number of points" (List.length a) (List.length b);
  List.iteri
    (fun i (pa, pb) ->
      Alcotest.check
        (Alcotest.pair
           (Alcotest.pair Alcotest.int Alcotest.int)
           (Alcotest.pair (Alcotest.pair Alcotest.int Alcotest.int)
              (Alcotest.pair Alcotest.int Alcotest.int)))
        (Printf.sprintf "point %d identical" i)
        (let w, ip, xm, st, co, bs = pa in
         ((w, ip), ((xm, st), (co, bs))))
        (let w, ip, xm, st, co, bs = pb in
         ((w, ip), ((xm, st), (co, bs)))))
    (List.combine a b)

(* --- work stealing ------------------------------------------------------- *)

let test_work_stealing_balances () =
  (* every thread starts on CPU 0 unbound; idle CPUs must pull work over *)
  let k = Test_util.kernel_on ~config:(smp_config 4) () in
  let sys = k.Mach.Kernel.sys in
  let task = Mach.Kernel.task_create k ~name:"mill" () in
  let ran = Array.make 8 false in
  for i = 0 to 7 do
    ignore
      (Mach.Kernel.thread_spawn k task ~name:(Printf.sprintf "w%d" i)
         ~affinity:0
         (fun () ->
           for _ = 1 to 3 do
             Machine.execute k.Mach.Kernel.machine
               [ Machine.Footprint.Stall 2000 ];
             Mach.Sched.yield ()
           done;
           ran.(i) <- true)
        : thread)
  done;
  Mach.Kernel.run k;
  Array.iteri (fun i r -> checkb (Printf.sprintf "w%d ran" i) true r) ran;
  checkb "idle CPUs stole work" true (Mach.Sched.total_steals sys > 0)

(* --- affinity ------------------------------------------------------------ *)

let test_bound_threads_stay_put () =
  (* bound threads on CPUs 1 and 3; CPU 2 gets nothing and must never
     dispatch, and nothing may be stolen off a bound queue *)
  let k = Test_util.kernel_on ~config:(smp_config 4) () in
  let sys = k.Mach.Kernel.sys in
  let task = Mach.Kernel.task_create k ~name:"pinned" () in
  let body () =
    for _ = 1 to 4 do
      Machine.execute k.Mach.Kernel.machine [ Machine.Footprint.Stall 1500 ];
      Mach.Sched.yield ()
    done
  in
  ignore
    (Mach.Kernel.thread_spawn k task ~name:"p1" ~affinity:1 ~bound:true body
      : thread);
  ignore
    (Mach.Kernel.thread_spawn k task ~name:"p3" ~affinity:3 ~bound:true body
      : thread);
  Mach.Kernel.run k;
  let switches i = sys.Mach.Sched.percpu.(i).Mach.Sched.pc_switches in
  checkb "cpu1 dispatched its thread" true (switches 1 > 0);
  checkb "cpu3 dispatched its thread" true (switches 3 > 0);
  checki "cpu2 never dispatched" 0 (switches 2);
  checki "bound threads never stolen" 0 (Mach.Sched.total_steals sys)

(* --- cross-CPU wakeup ---------------------------------------------------- *)

let test_ipi_wakes_remote_cpu () =
  (* sleeper blocks on CPU 1; waker on CPU 0 posts X_wake + IPI.  The
     empty->nonempty queue transition must send exactly one IPI, and the
     message must actually restart the sleeper. *)
  let k = Test_util.kernel_on ~config:(smp_config 2) () in
  let sys = k.Mach.Kernel.sys in
  let m = k.Mach.Kernel.machine in
  let task = Mach.Kernel.task_create k ~name:"xw" () in
  let woken = ref false in
  let sleeper =
    Mach.Kernel.thread_spawn k task ~name:"sleeper" ~affinity:1 (fun () ->
        let r = Mach.Sched.block "waiting for cpu0" in
        woken := r = Kern_success)
  in
  ignore
    (Mach.Kernel.thread_spawn k task ~name:"waker" ~affinity:0 (fun () ->
         (* don't wake until the sleeper has really blocked *)
         while
           match sleeper.state with Th_blocked _ -> false | _ -> true
         do
           Mach.Sched.yield ()
         done;
         Machine.execute m [ Machine.Footprint.Stall 500 ];
         Mach.Sched.wake sys sleeper)
      : thread);
  Mach.Kernel.run k;
  let perf i = Machine.Cpu.perf (Machine.nth_cpu m i) in
  checkb "sleeper woken" true !woken;
  checki "one IPI sent by cpu0" 1 (Machine.Perf.ipis_sent (perf 0));
  checki "one IPI received by cpu1" 1 (Machine.Perf.ipis_received (perf 1));
  checki "one scheduler message" 1 (Mach.Sched.total_xmsgs sys)

(* --- Machcheck: cross-CPU deadlock --------------------------------------- *)

let[@machlint.allow "lock-order"] test_cross_cpu_deadlock_annotated () =
  (* the classic AB-BA cycle, except the two threads live on different
     CPUs: the wait-cycle finding must name the CPUs involved *)
  let k = Test_util.kernel_on ~config:(smp_config 2) () in
  let sys = k.Mach.Kernel.sys in
  let chk = Check.create () in
  Mach.Sched.enable_checks sys chk;
  let t = Mach.Sched.task_create sys ~name:"app" () in
  let m1 = Mach.Sync.mutex_create sys ~name:"m1" in
  let m2 = Mach.Sync.mutex_create sys ~name:"m2" in
  let got1 = ref false and got2 = ref false in
  ignore
    (Mach.Kernel.thread_spawn k t ~name:"t1" ~affinity:0 ~bound:true (fun () ->
         ignore (Mach.Sync.mutex_lock sys m1 : kern_return);
         got1 := true;
         while not !got2 do
           Mach.Sched.yield ()
         done;
         ignore (Mach.Sync.mutex_lock sys m2 : kern_return))
      : thread);
  ignore
    (Mach.Kernel.thread_spawn k t ~name:"t2" ~affinity:1 ~bound:true (fun () ->
         ignore (Mach.Sync.mutex_lock sys m2 : kern_return);
         got2 := true;
         while not !got1 do
           Mach.Sched.yield ()
         done;
         ignore (Mach.Sync.mutex_lock sys m1 : kern_return))
      : thread);
  Mach.Kernel.run k;
  let rep = Check.report chk in
  checki "one wait cycle" 1 rep.Check.rep_wait_cycles;
  match
    List.filter
      (fun f -> f.Check.f_kind = "wait-cycle")
      rep.Check.rep_findings
  with
  | [ f ] ->
      checkb "cycle flagged as cross-CPU" true
        (contains f.Check.f_detail "cross-CPU");
      checkb "both CPUs named" true
        (contains f.Check.f_detail "0" && contains f.Check.f_detail "1")
  | fs ->
      Alcotest.failf "expected exactly one cycle finding, got %d"
        (List.length fs)

(* --- machine-state accounting -------------------------------------------- *)

let test_machine_state_scales_per_cpu () =
  let s1 = Machine.Footprint.machine_state (smp_config 1) in
  let s4 = Machine.Footprint.machine_state (smp_config 4) in
  let open Machine.Footprint in
  checki "uniprocessor has no directory" 0 s1.ms_bus_directory_bytes;
  checki "uniprocessor total = one copy"
    (s1.ms_cache_bytes_per_cpu + s1.ms_tlb_bytes_per_cpu)
    s1.ms_total_bytes;
  checki "per-CPU state replicated 4x plus the shared directory"
    ((4 * (s4.ms_cache_bytes_per_cpu + s4.ms_tlb_bytes_per_cpu))
    + s4.ms_bus_directory_bytes)
    s4.ms_total_bytes;
  checkb "SMP machine carries a directory" true (s4.ms_bus_directory_bytes > 0);
  checki "per-CPU byte counts are CPU-count independent"
    s1.ms_cache_bytes_per_cpu s4.ms_cache_bytes_per_cpu

let suite =
  [
    Alcotest.test_case "N-CPU interleaving is deterministic" `Slow
      test_deterministic_interleaving;
    Alcotest.test_case "work stealing drains a starved queue" `Quick
      test_work_stealing_balances;
    Alcotest.test_case "bound threads honor affinity" `Quick
      test_bound_threads_stay_put;
    Alcotest.test_case "IPI wakes a remote idle CPU" `Quick
      test_ipi_wakes_remote_cpu;
    Alcotest.test_case "cross-CPU deadlock cycle annotated" `Quick
      test_cross_cpu_deadlock_annotated;
    Alcotest.test_case "machine state scales per CPU" `Quick
      test_machine_state_scales_per_cpu;
  ]
