(* The netisr-sharded netserver: single-loop golden identity, shard
   equivalence (qcheck), SYN-flood backpressure, slowloris reaping,
   O(1) ephemeral-port reuse, cross-shard accept steering, and the
   Machcheck shard-crossing assertion. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let qtest = QCheck_alcotest.to_alcotest

let smp_config n = Machine.Config.with_ncpus Machine.Config.pentium_133 ~n

(* --- golden: ncpus=1 is byte-identical to the pre-shard server ----------- *)

(* The exact script the pre-netisr single-loop implementation was run
   under before the refactor; the expected numbers below are captures
   from that build.  Any cycle-level deviation at one shard fails. *)
let golden_script style =
  let m = Machine.create Machine.Config.pentium_133 in
  let k = Mach.Kernel.boot m in
  let net = Netserver.create k ~style in
  let task = Mach.Kernel.task_create k ~name:"app" () in
  Test_util.spawn k task "udp-echo" (fun () ->
      match Netserver.udp_socket net ~port:7 with
      | Error e -> failwith e
      | Ok s ->
          for _ = 1 to 20 do
            let src, bytes = Netserver.udp_recv net s in
            Netserver.udp_send net s ~dst_port:src ~bytes
          done);
  Test_util.spawn k task "udp-client" (fun () ->
      match Netserver.udp_socket net ~port:2000 with
      | Error e -> failwith e
      | Ok s ->
          for i = 1 to 20 do
            Netserver.udp_send net s ~dst_port:7 ~bytes:(64 + (i * 13));
            ignore (Netserver.udp_recv net s)
          done;
          (* vectored + zero-copy datagrams *)
          Netserver.udp_send_vec net s ~dst_port:7 ~iov:[ 100; 200; 44 ];
          Netserver.udp_send net s ~dst_port:9999 ~bytes:512 (* dropped *);
          Netserver.udp_send net s ~dst_port:7 ~bytes:8192;
          Netserver.udp_send_vec net s ~dst_port:7 ~iov:[ 4096; 4096; 512 ]);
  Test_util.spawn k task "tcp-server" (fun () ->
      match Netserver.tcp_listen net ~port:80 with
      | Error e -> failwith e
      | Ok l ->
          for _ = 1 to 4 do
            let c = Netserver.tcp_accept net l in
            let n = Netserver.tcp_recv net c in
            Netserver.tcp_send net c ~bytes:n;
            ignore (Netserver.tcp_recv net c);
            Netserver.close net c
          done);
  Test_util.spawn k task "tcp-client" (fun () ->
      for i = 1 to 4 do
        match Netserver.tcp_connect net ~dst_port:80 with
        | Error e -> failwith e
        | Ok c ->
            Netserver.tcp_send net c ~bytes:(256 * i);
            ignore (Netserver.tcp_recv net c);
            Netserver.tcp_send_vec net c ~iov:[ 4096; 1024 ];
            Netserver.close net c
      done);
  Mach.Kernel.run k;
  ( Netserver.packets_processed net,
    Netserver.checksum_bytes net,
    Netserver.zero_copy_sends net,
    Machine.now m,
    Finegrain.vcalls (Netserver.objects net),
    Finegrain.memory_footprint_bytes (Netserver.objects net) )

let test_golden_coarse () =
  let packets, checksummed, zc, now, vcalls, footprint =
    golden_script Finegrain.Coarse
  in
  checki "packets" 136 packets;
  checki "checksummed" 35336 checksummed;
  checki "zc sends" 6 zc;
  checki "cycles" 394308 now;
  checki "vcalls" 616 vcalls;
  checki "footprint" 49632 footprint

let test_golden_fine () =
  let packets, checksummed, zc, now, vcalls, footprint =
    golden_script Finegrain.Fine_grained
  in
  checki "packets" 136 packets;
  checki "checksummed" 35336 checksummed;
  checki "zc sends" 6 zc;
  checki "cycles" 1401958 now;
  checki "vcalls" 2960 vcalls;
  checki "footprint" 266240 footprint

(* --- shard equivalence (qcheck) ------------------------------------------ *)

(* A random packet script delivered through the 4-shard netisr path must
   produce exactly the per-socket (src, bytes) sequences the one-shard
   direct path produces: steering may reorder *across* sockets but a
   socket's own arrival order is the wire order, shards or not. *)
let run_script ~shards script =
  let m = Machine.create (smp_config 4) in
  let k = Mach.Kernel.boot m in
  let net = Netserver.create ~shards k ~style:Finegrain.Coarse in
  let nsocks = 6 in
  let socks = Array.make nsocks None in
  let task = Mach.Kernel.task_create k ~name:"script" () in
  Test_util.spawn k task "driver" (fun () ->
      for i = 0 to nsocks - 1 do
        match Netserver.udp_socket net ~port:(100 + i) with
        | Error e -> failwith e
        | Ok s -> socks.(i) <- Some s
      done;
      List.iter
        (fun (src, dst, bytes) ->
          Netserver.inject_udp net ~src_port:(10_000 + src)
            ~dst_port:(100 + (dst mod nsocks))
            ~bytes:(1 + bytes))
        script);
  Mach.Kernel.run k;
  Array.map
    (fun s ->
      match s with
      | None -> []
      | Some s ->
          let rec drain acc =
            match Netserver.try_recv net s with
            | Some hit -> drain (hit :: acc)
            | None -> List.rev acc
          in
          drain [])
    socks

let prop_shard_equivalence =
  QCheck.Test.make ~name:"sharded delivery == single-loop delivery" ~count:30
    QCheck.(
      list_of_size Gen.(1 -- 120)
        (triple (int_bound 500) (int_bound 31) (int_bound 9000)))
    (fun script ->
      let single = run_script ~shards:1 script in
      let sharded = run_script ~shards:4 script in
      single = sharded)

(* --- SYN-flood backpressure ---------------------------------------------- *)

let test_syn_flood_backpressure () =
  let m = Machine.create Machine.Config.pentium_133 in
  let k = Mach.Kernel.boot m in
  let net = Netserver.create ~backlog:8 k ~style:Finegrain.Coarse in
  let task = Mach.Kernel.task_create k ~name:"flood" () in
  Test_util.spawn k task "listener" (fun () ->
      match Netserver.tcp_listen net ~port:443 with
      | Error e -> failwith e
      | Ok _ -> ());
  Test_util.spawn k task "attacker" (fun () ->
      for i = 1 to 40 do
        Netserver.inject_syn net ~src_port:(50_000 + i) ~dst_port:443
          ~conn:(1_000_000 + i)
      done);
  Mach.Kernel.run k;
  (* nobody accepts: the backlog holds 8 SYNs, the other 32 are refused
     instead of growing server state without bound *)
  checki "refused beyond the backlog" 32 (Netserver.syn_drops net);
  checki "no half-open children (never accepted)" 0 (Netserver.half_open net)

(* --- slowloris half-open reaping ----------------------------------------- *)

let test_slowloris_reaping () =
  let m = Machine.create Machine.Config.pentium_133 in
  let k = Mach.Kernel.boot m in
  let net = Netserver.create k ~style:Finegrain.Coarse in
  let task = Mach.Kernel.task_create k ~name:"loris" () in
  Test_util.spawn k task "server" (fun () ->
      match Netserver.tcp_listen net ~port:80 with
      | Error e -> failwith e
      | Ok l ->
          for _ = 1 to 6 do
            (* the accepted children SYNACK into the void: the clients
               never complete the handshake *)
            ignore (Netserver.tcp_accept net l : Netserver.socket)
          done);
  Test_util.spawn k task "slowloris" (fun () ->
      for i = 1 to 6 do
        Netserver.inject_syn net ~src_port:(60_000 + i) ~dst_port:80
          ~conn:(2_000_000 + i)
      done);
  Mach.Kernel.run k;
  checki "six connections wedged half-open" 6 (Netserver.half_open net);
  (* young connections survive a generous cutoff... *)
  checki "nothing young reaped" 0
    (Netserver.reap_half_open net ~older_than:100_000_000);
  (* ...and the reaper claims every stale one *)
  checki "all six reaped" 6 (Netserver.reap_half_open net ~older_than:0);
  checki "table clean" 0 (Netserver.half_open net);
  checki "reap counter" 6 (Netserver.reaped_half_open net)

(* --- O(1) ephemeral ports under churn ------------------------------------ *)

let test_port_reuse_under_churn () =
  let m = Machine.create Machine.Config.pentium_133 in
  let k = Mach.Kernel.boot m in
  let net = Netserver.create k ~style:Finegrain.Coarse in
  let task = Mach.Kernel.task_create k ~name:"churn" () in
  let max_port = ref 0 in
  Test_util.spawn k task "server" (fun () ->
      match Netserver.tcp_listen net ~port:80 with
      | Error e -> failwith e
      | Ok l ->
          for _ = 1 to 50 do
            let c = Netserver.tcp_accept net l in
            ignore (Netserver.tcp_recv net c);
            Netserver.close net c
          done);
  Test_util.spawn k task "client" (fun () ->
      for _ = 1 to 50 do
        match Netserver.tcp_connect net ~dst_port:80 with
        | Error e -> failwith e
        | Ok c ->
            max_port := max !max_port (Netserver.local_port c);
            Netserver.tcp_send net c ~bytes:32;
            Netserver.close net c
      done);
  Mach.Kernel.run k;
  (* 50 open/close cycles, at most one connection live at a time: the
     free lists recycle the same handful of ports instead of marching
     through the ephemeral range *)
  checkb "ports recycled, not burned"
    true
    (!max_port < 32768 + 8)

(* --- cross-shard accept steering + shard-crossing checker ---------------- *)

let test_sharded_tcp_and_checker_clean () =
  let chk = Check.create () in
  Check.install chk;
  Fun.protect ~finally:Check.uninstall (fun () ->
      let m = Machine.create (smp_config 4) in
      let k = Mach.Kernel.boot m in
      let net = Netserver.create k ~style:Finegrain.Coarse in
      checki "one shard per cpu" 4 (Netserver.shard_count net);
      let task = Mach.Kernel.task_create k ~name:"web" () in
      let served = ref 0 in
      Test_util.spawn k task "server" (fun () ->
          match Netserver.tcp_listen net ~port:80 with
          | Error e -> failwith e
          | Ok l ->
              for _ = 1 to 8 do
                let c = Netserver.tcp_accept net l in
                let n = Netserver.tcp_recv net c in
                Netserver.tcp_send net c ~bytes:n;
                Netserver.close net c
              done);
      Test_util.spawn k task "client" (fun () ->
          for i = 1 to 8 do
            match Netserver.tcp_connect net ~dst_port:80 with
            | Error e -> failwith e
            | Ok c ->
                Netserver.tcp_send net c ~bytes:(64 * i);
                ignore (Netserver.tcp_recv net c);
                incr served;
                Netserver.close net c
          done);
      Mach.Kernel.run k;
      checki "all sessions served" 8 !served;
      (* with 8 connections hashed over 4 shards some children must land
         off the listener's shard, exercising the accept protocol *)
      checkb "cross-shard accepts occurred" true
        (Netserver.cross_shard_accepts net > 0);
      checkb "registry protocol exercised" true
        (Netserver.registry_messages net > 0);
      let sum = Array.fold_left ( + ) 0 (Netserver.shard_delivered net) in
      checkb "work spread over more than one shard" true
        (Array.fold_left
           (fun n d -> if d > 0 then n + 1 else n)
           0 (Netserver.shard_delivered net)
         > 1);
      checkb "every packet processed by some shard" true (sum > 0);
      let r = Check.report chk in
      checkb "touches observed" true (r.Check.rep_net_touches > 0);
      checki "no shard crossings" 0 r.Check.rep_net_crossings;
      checki "no findings at all" 0 (Check.total_findings r))

let test_seeded_shard_crossing_fires () =
  (* known-bad: a socket homed on shard 0 touched from shard 2 must be a
     finding — proves the assertion actually bites *)
  let chk = Check.create () in
  let sp = Check.new_space chk in
  Check.net_socket_home chk ~space:sp ~sock:1 ~shard:0;
  Check.net_touched chk ~space:sp ~sock:1 ~home:0 ~shard:0;
  Check.net_touched chk ~space:sp ~sock:1 ~home:0 ~shard:2;
  let r = Check.report chk in
  checki "one crossing" 1 r.Check.rep_net_crossings;
  checki "one finding" 1 (Check.total_findings r);
  match r.Check.rep_findings with
  | [ f ] ->
      Alcotest.(check string) "checker" "net" f.Check.f_checker;
      Alcotest.(check string) "kind" "shard-crossing" f.Check.f_kind
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

(* --- shard micro-reboot --------------------------------------------------- *)

(* Kill and reincarnate the listener's shard in the middle of a SYN
   flood.  The listener must come back from the registry with its
   backlog intact — the second wave is refused entirely, not absorbed —
   and acked data (datagrams already delivered to a socket's rx queue
   on the same shard) survives the reboot byte for byte. *)
let test_reboot_during_syn_flood () =
  let m = Machine.create (smp_config 4) in
  let k = Mach.Kernel.boot m in
  let sys = k.Mach.Kernel.sys in
  let net = Netserver.create ~backlog:8 k ~style:Finegrain.Coarse in
  let victim = Netserver.port_shard net ~port:443 in
  (* a udp port steered to the same shard as the listener *)
  let udp_port =
    let rec find p =
      if Netserver.port_shard net ~port:p = victim then p else find (p + 1)
    in
    find 100
  in
  let task = Mach.Kernel.task_create k ~name:"flood" () in
  let acked = ref None in
  Test_util.spawn k task "driver" (fun () ->
      (match Netserver.tcp_listen net ~port:443 with
      | Error e -> failwith e
      | Ok _ -> ());
      let s =
        match Netserver.udp_socket net ~port:udp_port with
        | Error e -> failwith e
        | Ok s -> s
      in
      acked := Some s;
      for i = 1 to 5 do
        Netserver.inject_udp net ~src_port:(40_000 + i) ~dst_port:udp_port
          ~bytes:(100 + i)
      done;
      for i = 1 to 20 do
        Netserver.inject_syn net ~src_port:(50_000 + i) ~dst_port:443
          ~conn:(1_000_000 + i)
      done;
      (* quiesce so the rings drain: everything below is table state *)
      ignore (Mach.Clock.sleep_for sys ~cycles:300_000 : Mach.Ktypes.kern_return);
      checki "first wave refused beyond the backlog" 12 (Netserver.syn_drops net);
      Netserver.kill_shard net ~shard:victim;
      checkb "shard down" true (Netserver.shard_dead net ~shard:victim);
      Netserver.reincarnate_shard net ~shard:victim;
      for i = 21 to 40 do
        Netserver.inject_syn net ~src_port:(50_000 + i) ~dst_port:443
          ~conn:(1_000_000 + i)
      done;
      ignore (Mach.Clock.sleep_for sys ~cycles:300_000 : Mach.Ktypes.kern_return));
  Mach.Kernel.run k;
  (* the rebuilt listener still holds its 8 backlogged SYNs: the whole
     second wave bounces — backpressure is preserved across the reboot *)
  checki "second wave refused entirely" 32 (Netserver.syn_drops net);
  checki "no half-open children (never accepted)" 0 (Netserver.half_open net);
  checki "one micro-reboot" 1 (Netserver.shard_reincarnations net);
  checki "generation bumped" 1 (Netserver.shard_generation net ~shard:victim);
  checkb "shard back up" true (not (Netserver.shard_dead net ~shard:victim));
  (* acked data: the five delivered datagrams are on the endpoint record,
     not in shard tables, and survive the reboot *)
  let drained =
    match !acked with
    | None -> []
    | Some s ->
        let rec drain acc =
          match Netserver.try_recv net s with
          | Some hit -> drain (hit :: acc)
          | None -> List.rev acc
        in
        drain []
  in
  Alcotest.(check (list (pair int int)))
    "acked datagrams survive the reboot"
    [ (40_001, 101); (40_002, 102); (40_003, 103); (40_004, 104); (40_005, 105) ]
    drained

(* Slowloris half-opens must survive micro-reboots of every shard in
   turn: the embryonic table is rederived from the rebuilt sockets, so
   the reaper keeps its prey.  Cycle every shard to hit whichever ones
   the children actually homed on. *)
let test_reboot_preserves_embryonic () =
  let m = Machine.create (smp_config 4) in
  let k = Mach.Kernel.boot m in
  let sys = k.Mach.Kernel.sys in
  let net = Netserver.create k ~style:Finegrain.Coarse in
  let task = Mach.Kernel.task_create k ~name:"loris" () in
  let accepted = ref 0 in
  Test_util.spawn k task "server" (fun () ->
      match Netserver.tcp_listen net ~port:80 with
      | Error e -> failwith e
      | Ok l ->
          for _ = 1 to 6 do
            ignore (Netserver.tcp_accept net l : Netserver.socket);
            incr accepted
          done);
  Test_util.spawn k task "driver" (fun () ->
      for i = 1 to 6 do
        Netserver.inject_syn net ~src_port:(60_000 + i) ~dst_port:80
          ~conn:(2_000_000 + i)
      done;
      while !accepted < 6 do
        ignore (Mach.Clock.sleep_for sys ~cycles:50_000 : Mach.Ktypes.kern_return)
      done;
      checki "six wedged half-open" 6 (Netserver.half_open net);
      for s = 0 to Netserver.shard_count net - 1 do
        Netserver.kill_shard net ~shard:s;
        Netserver.reincarnate_shard net ~shard:s;
        checki "embryonic table rebuilt" 6 (Netserver.half_open net)
      done;
      (* the reaper still sees every half-open across all the reboots *)
      checki "nothing young reaped" 0
        (Netserver.reap_half_open net ~older_than:100_000_000);
      checki "all six reaped after rebuild" 6
        (Netserver.reap_half_open net ~older_than:0);
      checki "table clean" 0 (Netserver.half_open net));
  Mach.Kernel.run k;
  checki "one reboot per shard" (Netserver.shard_count net)
    (Netserver.shard_reincarnations net)

(* A second kill/reincarnate immediately after the first must be a
   no-op on server state: rebirth is idempotent.  Deliveries after one
   reboot cycle and after two are compared socket by socket. *)
let run_reboot_script ~cycles script =
  let m = Machine.create (smp_config 4) in
  let k = Mach.Kernel.boot m in
  let sys = k.Mach.Kernel.sys in
  let net = Netserver.create k ~style:Finegrain.Coarse in
  let nsocks = 6 in
  let socks = Array.make nsocks None in
  let task = Mach.Kernel.task_create k ~name:"script" () in
  let inject (src, dst, bytes) =
    Netserver.inject_udp net ~src_port:(10_000 + src)
      ~dst_port:(100 + (dst mod nsocks))
      ~bytes:(1 + bytes)
  in
  Test_util.spawn k task "driver" (fun () ->
      for i = 0 to nsocks - 1 do
        match Netserver.udp_socket net ~port:(100 + i) with
        | Error e -> failwith e
        | Ok s -> socks.(i) <- Some s
      done;
      let first, second =
        let rec split n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: rest -> split (n - 1) (x :: acc) rest
        in
        split (List.length script / 2) [] script
      in
      List.iter inject first;
      ignore (Mach.Clock.sleep_for sys ~cycles:500_000 : Mach.Ktypes.kern_return);
      let victim = Netserver.port_shard net ~port:100 in
      for _ = 1 to cycles do
        Netserver.kill_shard net ~shard:victim;
        Netserver.reincarnate_shard net ~shard:victim
      done;
      List.iter inject second;
      ignore (Mach.Clock.sleep_for sys ~cycles:500_000 : Mach.Ktypes.kern_return));
  Mach.Kernel.run k;
  ( Array.map
      (fun s ->
        match s with
        | None -> []
        | Some s ->
            let rec drain acc =
              match Netserver.try_recv net s with
              | Some hit -> drain (hit :: acc)
              | None -> List.rev acc
            in
            drain [])
      socks,
    Netserver.reboot_drops net,
    Netserver.half_open net )

let prop_reboot_idempotent =
  QCheck.Test.make ~name:"kill/reincarnate twice == once" ~count:15
    QCheck.(
      list_of_size Gen.(2 -- 60)
        (triple (int_bound 500) (int_bound 31) (int_bound 9000)))
    (fun script ->
      run_reboot_script ~cycles:1 script = run_reboot_script ~cycles:2 script)

let suite =
  [
    Alcotest.test_case "golden: single-loop identity (coarse)" `Quick
      test_golden_coarse;
    Alcotest.test_case "golden: single-loop identity (fine)" `Quick
      test_golden_fine;
    qtest prop_shard_equivalence;
    Alcotest.test_case "syn flood hits backlog backpressure" `Quick
      test_syn_flood_backpressure;
    Alcotest.test_case "slowloris half-opens are reaped" `Quick
      test_slowloris_reaping;
    Alcotest.test_case "ephemeral ports recycle O(1) under churn" `Quick
      test_port_reuse_under_churn;
    Alcotest.test_case "sharded tcp: cross-shard accepts, checker clean" `Quick
      test_sharded_tcp_and_checker_clean;
    Alcotest.test_case "seeded shard crossing is a finding" `Quick
      test_seeded_shard_crossing_fires;
    Alcotest.test_case "micro-reboot during syn flood" `Quick
      test_reboot_during_syn_flood;
    Alcotest.test_case "micro-reboot preserves embryonic table" `Quick
      test_reboot_preserves_embryonic;
    qtest prop_reboot_idempotent;
  ]
