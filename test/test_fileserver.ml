(* Tests for the file-server stack: block cache, the three physical file
   systems, the vnode/union layer and the RPC file server. *)

open Fileserver.Fs_types
module F = Fileserver

let err = Test_util.fs_error

let with_fs mk ~f =
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  let cache = F.Block_cache.create k disk () in
  mk disk;
  Test_util.run_in_thread k (fun () ->
      match
        (match mk with _ -> ());
        f k cache
      with
      | x -> x)

(* helper: build kernel + cache + one mounted pfs; run body in a thread *)
let run_pfs ~mkfs ~mount body =
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  mkfs disk;
  let cache = F.Block_cache.create k disk () in
  Test_util.run_in_thread k (fun () ->
      match mount cache with
      | Ok pfs -> body k pfs
      | Error e -> Alcotest.fail (fs_error_to_string e))

let run_fat body =
  run_pfs
    ~mkfs:(fun d -> F.Fat.mkfs d ())
    ~mount:(fun c -> F.Fat.mount c ())
    body

let run_hpfs body =
  run_pfs
    ~mkfs:(fun d -> F.Hpfs.mkfs d ())
    ~mount:(fun c -> F.Hpfs.mount c ())
    body

let run_jfs body =
  run_pfs
    ~mkfs:(fun d -> F.Jfs.mkfs d ())
    ~mount:(fun c -> F.Jfs.mount c ())
    body

let ok label = Test_util.check_fs_ok label

(* --- the shared physical-FS matrix -------------------------------------------- *)

(* One operation battery every format must pass identically: create,
   write, read back, grow, truncate, subdirectory, rename, remove.
   Names stay within FAT's 8.3 rules so the same script runs verbatim on
   all three formats; the journalled and HPFS variants additionally run
   their invariant scan over the final image. *)
let pfs_battery _k (pfs : pfs) =
  let root = pfs.pfs_root in
  let f = ok "create" (pfs.pfs_create ~dir:root "MATRIX.TXT" ~is_dir:false) in
  let data = Bytes.init 1500 (fun i -> Char.chr (32 + (i mod 90))) in
  Alcotest.(check int) "wrote all" 1500 (ok "write" (pfs.pfs_write f ~off:0 data));
  Alcotest.(check bytes) "round trip" data (ok "read" (pfs.pfs_read f ~off:0 ~len:1500));
  ignore (ok "overwrite" (pfs.pfs_write f ~off:700 (Bytes.make 100 '!')));
  Alcotest.(check bytes) "overwrite visible" (Bytes.make 100 '!')
    (ok "read back" (pfs.pfs_read f ~off:700 ~len:100));
  ok "truncate" (pfs.pfs_truncate f ~len:400);
  Alcotest.(check int) "shrunk" 400 (ok "stat" (pfs.pfs_stat f)).st_size;
  let d = ok "mkdir" (pfs.pfs_create ~dir:root "SUB" ~is_dir:true) in
  let g = ok "create nested" (pfs.pfs_create ~dir:d "INNER.DAT" ~is_dir:false) in
  ignore (ok "write nested" (pfs.pfs_write g ~off:0 (Bytes.of_string "inner")));
  Alcotest.(check (list string)) "nested listing" [ "INNER.DAT" ]
    (ok "readdir" (pfs.pfs_readdir ~dir:d));
  ok "rename" (pfs.pfs_rename ~src_dir:root "MATRIX.TXT" ~dst_dir:d "MOVED.TXT");
  (match pfs.pfs_lookup ~dir:root "MATRIX.TXT" with
  | Error E_not_found -> ()
  | _ -> Alcotest.fail "source name survived rename");
  let f' = ok "lookup moved" (pfs.pfs_lookup ~dir:d "MOVED.TXT") in
  Alcotest.(check int) "rename kept inode" f f';
  ok "remove nested" (pfs.pfs_remove ~dir:d "INNER.DAT");
  ok "remove moved" (pfs.pfs_remove ~dir:d "MOVED.TXT");
  ok "remove dir" (pfs.pfs_remove ~dir:root "SUB");
  Alcotest.(check (list string)) "root empty again" []
    (ok "readdir root" (pfs.pfs_readdir ~dir:root));
  pfs.pfs_sync ()

let run_matrix ~mkfs ~mount ~fsck () =
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  mkfs disk;
  let cache = F.Block_cache.create k disk () in
  Test_util.run_in_thread k (fun () ->
      (match mount cache with
      | Ok pfs -> pfs_battery k pfs
      | Error e -> Alcotest.fail (fs_error_to_string e));
      match fsck with
      | Some scan ->
          Alcotest.(check (list string)) "invariant scan clean" [] (scan cache)
      | None -> ())

let test_matrix_fat () =
  run_matrix
    ~mkfs:(fun d -> F.Fat.mkfs d ())
    ~mount:(fun c -> F.Fat.mount c ())
    ~fsck:None ()

let test_matrix_hpfs () =
  run_matrix
    ~mkfs:(fun d -> F.Hpfs.mkfs d ())
    ~mount:(fun c -> F.Hpfs.mount c ())
    ~fsck:(Some (fun c -> F.Hpfs.fsck c ())) ()

let test_matrix_jfs () =
  run_matrix
    ~mkfs:(fun d -> F.Jfs.mkfs d ())
    ~mount:(fun c -> F.Jfs.mount c ())
    ~fsck:(Some (fun c -> F.Jfs.fsck c ())) ()

(* --- block cache ------------------------------------------------------------ *)

let test_block_cache () =
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  let cache = F.Block_cache.create k disk ~capacity:4 () in
  Test_util.run_in_thread k (fun () ->
      let b = Bytes.make 512 'a' in
      F.Block_cache.write cache 3 b;
      Alcotest.(check bytes) "read back" b (F.Block_cache.read cache 3);
      Alcotest.(check bool) "hits counted" true (F.Block_cache.hits cache >= 1);
      (* overflow the capacity to force write-back of the dirty block *)
      for i = 10 to 16 do
        F.Block_cache.write cache i (Bytes.make 512 (Char.chr (i + 48)))
      done;
      Alcotest.(check bool) "write-back happened" true
        (F.Block_cache.writebacks cache >= 1));
  (* after the run, the evicted dirty block must be on disk *)
  Mach.Kernel.run k;
  let on_disk = Machine.Disk.read_now disk ~block:3 ~count:1 in
  Alcotest.(check bytes) "persisted through eviction" (Bytes.make 512 'a') on_disk

(* --- FAT --------------------------------------------------------------------- *)

let test_fat_names () =
  Alcotest.(check (result string err)) "simple" (Ok "README.TXT")
    (F.Fat.valid_name "readme.txt");
  Alcotest.(check (result string err)) "no extension" (Ok "MAKEFILE")
    (F.Fat.valid_name "Makefile");
  Alcotest.(check (result string err)) "too long" (Error E_name_too_long)
    (F.Fat.valid_name "averylongfilename.txt");
  Alcotest.(check (result string err)) "long extension" (Error E_name_too_long)
    (F.Fat.valid_name "a.conf");
  Alcotest.(check (result string err)) "bad chars" (Error E_bad_name)
    (F.Fat.valid_name "a b.txt")

let test_fat_create_read_write () =
  run_fat (fun _k pfs ->
      let id = ok "create" (pfs.pfs_create ~dir:pfs.pfs_root "HELLO.TXT" ~is_dir:false) in
      let data = Bytes.of_string "hello, workplace os" in
      let n = ok "write" (pfs.pfs_write id ~off:0 data) in
      Alcotest.(check int) "wrote all" (Bytes.length data) n;
      let got = ok "read" (pfs.pfs_read id ~off:0 ~len:100) in
      Alcotest.(check bytes) "round trip" data got;
      let got = ok "read middle" (pfs.pfs_read id ~off:7 ~len:9) in
      Alcotest.(check string) "offset read" "workplace" (Bytes.to_string got);
      let st = ok "stat" (pfs.pfs_stat id) in
      Alcotest.(check int) "size" (Bytes.length data) st.st_size;
      Alcotest.(check bool) "not dir" false st.st_is_dir)

let test_fat_case_folding () =
  run_fat (fun _k pfs ->
      let id = ok "create" (pfs.pfs_create ~dir:pfs.pfs_root "Mixed.Txt" ~is_dir:false) in
      let found = ok "lookup other case" (pfs.pfs_lookup ~dir:pfs.pfs_root "MIXED.TXT") in
      Alcotest.(check int) "same file" id found;
      let names = ok "readdir" (pfs.pfs_readdir ~dir:pfs.pfs_root) in
      Alcotest.(check (list string)) "stored upper-cased" [ "MIXED.TXT" ] names)

let test_fat_long_name_rejected () =
  run_fat (fun _k pfs ->
      match pfs.pfs_create ~dir:pfs.pfs_root "longfilename.text" ~is_dir:false with
      | Error E_name_too_long -> ()
      | Error e -> Alcotest.fail (fs_error_to_string e)
      | Ok _ -> Alcotest.fail "FAT accepted a long name")

let test_fat_subdirs_and_remove () =
  run_fat (fun _k pfs ->
      let d = ok "mkdir" (pfs.pfs_create ~dir:pfs.pfs_root "SUB" ~is_dir:true) in
      let f = ok "create in sub" (pfs.pfs_create ~dir:d "A.TXT" ~is_dir:false) in
      Alcotest.(check (list string)) "listing" [ "A.TXT" ]
        (ok "readdir" (pfs.pfs_readdir ~dir:d));
      (match pfs.pfs_remove ~dir:pfs.pfs_root "SUB" with
      | Error E_dir_not_empty -> ()
      | _ -> Alcotest.fail "removed a non-empty directory");
      ignore f;
      ok "remove file" (pfs.pfs_remove ~dir:d "A.TXT");
      ok "remove dir" (pfs.pfs_remove ~dir:pfs.pfs_root "SUB");
      Alcotest.(check (list string)) "root empty" []
        (ok "readdir" (pfs.pfs_readdir ~dir:pfs.pfs_root)))

let test_fat_grows_across_clusters () =
  run_fat (fun _k pfs ->
      let id = ok "create" (pfs.pfs_create ~dir:pfs.pfs_root "BIG.BIN" ~is_dir:false) in
      let chunk = Bytes.make 700 'q' in
      for i = 0 to 9 do
        ignore (ok "write chunk" (pfs.pfs_write id ~off:(i * 700) chunk))
      done;
      let st = ok "stat" (pfs.pfs_stat id) in
      Alcotest.(check int) "size" 7000 st.st_size;
      Alcotest.(check bool) "many clusters" true (st.st_blocks >= 14);
      let got = ok "read tail" (pfs.pfs_read id ~off:6500 ~len:1000) in
      Alcotest.(check int) "clamped at EOF" 500 (Bytes.length got))

let test_fat_persistence () =
  (* write through one mount, re-mount with a fresh cache, read back *)
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  F.Fat.mkfs disk ();
  Test_util.run_in_thread k (fun () ->
      let cache = F.Block_cache.create k disk () in
      let pfs = ok "mount" (F.Fat.mount cache ()) in
      let id = ok "create" (pfs.pfs_create ~dir:pfs.pfs_root "KEEP.DAT" ~is_dir:false) in
      ignore (ok "write" (pfs.pfs_write id ~off:0 (Bytes.of_string "persistent!")));
      pfs.pfs_sync ());
  (* drain the flush I/O *)
  Mach.Kernel.run k;
  let k2 = Test_util.kernel_on () in
  ignore k2;
  Test_util.run_in_thread k (fun () ->
      let cache2 = F.Block_cache.create k disk ~capacity:64 () in
      let pfs2 = ok "re-mount" (F.Fat.mount cache2 ()) in
      let id = ok "lookup" (pfs2.pfs_lookup ~dir:pfs2.pfs_root "KEEP.DAT") in
      let got = ok "read" (pfs2.pfs_read id ~off:0 ~len:64) in
      Alcotest.(check string) "survived remount" "persistent!" (Bytes.to_string got))

(* --- HPFS / JFS --------------------------------------------------------------- *)

let test_hpfs_long_names_case_insensitive () =
  run_hpfs (fun _k pfs ->
      let name = "A Rather Long HPFS File Name.document" in
      let id = ok "create" (pfs.pfs_create ~dir:pfs.pfs_root name ~is_dir:false) in
      let found = ok "case-insensitive lookup"
          (pfs.pfs_lookup ~dir:pfs.pfs_root (String.uppercase_ascii name))
      in
      Alcotest.(check int) "same file" id found;
      let names = ok "readdir" (pfs.pfs_readdir ~dir:pfs.pfs_root) in
      Alcotest.(check (list string)) "case preserved" [ name ] names)

let test_jfs_case_sensitive () =
  run_jfs (fun _k pfs ->
      let a = ok "create lower" (pfs.pfs_create ~dir:pfs.pfs_root "name" ~is_dir:false) in
      let b = ok "create upper" (pfs.pfs_create ~dir:pfs.pfs_root "NAME" ~is_dir:false) in
      Alcotest.(check bool) "distinct files" true (a <> b);
      match pfs.pfs_lookup ~dir:pfs.pfs_root "NaMe" with
      | Error E_not_found -> ()
      | _ -> Alcotest.fail "case-sensitive lookup matched wrong case")

let test_jfs_journal_writes () =
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  F.Jfs.mkfs disk ();
  F.Hpfs.mkfs disk ~start:9000 ();
  let cache = F.Block_cache.create k disk ~capacity:512 () in
  Test_util.run_in_thread k (fun () ->
      let jfs = ok "mount jfs" (F.Jfs.mount cache ()) in
      let hpfs = ok "mount hpfs" (F.Hpfs.mount cache ~start:9000 ()) in
      let j0 = F.Extfs.journal_writes cache in
      ignore (ok "jfs create" (jfs.pfs_create ~dir:jfs.pfs_root "j" ~is_dir:false));
      let j_delta = F.Extfs.journal_writes cache - j0 in
      Alcotest.(check bool) "jfs journals metadata" true (j_delta > 0);
      let j1 = F.Extfs.journal_writes cache in
      ignore (ok "hpfs create" (hpfs.pfs_create ~dir:hpfs.pfs_root "h" ~is_dir:false));
      Alcotest.(check int) "hpfs does not journal" j1 (F.Extfs.journal_writes cache))

let test_extfs_rename_and_truncate () =
  run_jfs (fun _k pfs ->
      let id = ok "create" (pfs.pfs_create ~dir:pfs.pfs_root "old" ~is_dir:false) in
      ignore (ok "write" (pfs.pfs_write id ~off:0 (Bytes.make 2000 'x')));
      ok "rename" (pfs.pfs_rename ~src_dir:pfs.pfs_root "old" ~dst_dir:pfs.pfs_root "new");
      (match pfs.pfs_lookup ~dir:pfs.pfs_root "old" with
      | Error E_not_found -> ()
      | _ -> Alcotest.fail "old name survived rename");
      let id2 = ok "lookup new" (pfs.pfs_lookup ~dir:pfs.pfs_root "new") in
      Alcotest.(check int) "same inode" id id2;
      ok "truncate" (pfs.pfs_truncate id2 ~len:100);
      let st = ok "stat" (pfs.pfs_stat id2) in
      Alcotest.(check int) "shrunk" 100 st.st_size)

let test_extfs_sparse_and_holes () =
  run_hpfs (fun _k pfs ->
      let id = ok "create" (pfs.pfs_create ~dir:pfs.pfs_root "gap" ~is_dir:false) in
      ignore (ok "write at offset" (pfs.pfs_write id ~off:3000 (Bytes.of_string "end")));
      let st = ok "stat" (pfs.pfs_stat id) in
      Alcotest.(check int) "size extends" 3003 st.st_size;
      let got = ok "read hole" (pfs.pfs_read id ~off:0 ~len:4) in
      Alcotest.(check bytes) "holes read as zero" (Bytes.make 4 '\000') got)

(* --- VFS / union semantics ------------------------------------------------------ *)

let setup_vfs k =
  let disk = k.Mach.Kernel.machine.Machine.disk in
  F.Fat.mkfs disk ~start:0 ~blocks:4096 ();
  F.Hpfs.mkfs disk ~start:8192 ~blocks:4096 ();
  F.Jfs.mkfs disk ~start:16384 ~blocks:4096 ();
  let cache = F.Block_cache.create k disk ~capacity:512 () in
  let vfs = F.Vfs.create () in
  let mnt label r =
    match r with
    | Ok pfs -> (
        match F.Vfs.mount vfs ~at:label pfs with
        | Ok () -> ()
        | Error e -> Alcotest.fail e)
    | Error e -> Alcotest.fail (fs_error_to_string e)
  in
  mnt "/c" (F.Fat.mount cache ~start:0 ());
  mnt "/os2" (F.Hpfs.mount cache ~start:8192 ());
  mnt "/aix" (F.Jfs.mount cache ~start:16384 ());
  vfs

let test_vfs_union_semantics () =
  let k = Test_util.kernel_on () in
  Test_util.run_in_thread k (fun () ->
      let vfs = setup_vfs k in
      Alcotest.(check (list (pair string string))) "mount table"
        [ ("/c", "fat"); ("/os2", "hpfs"); ("/aix", "jfs") ]
        (F.Vfs.mounts vfs);
      (* a UNIX client on FAT: long names cannot be stored *)
      (match F.Vfs.create_file vfs F.Vfs.unix_semantics ~path:"/c/long-name.file" with
      | Error E_name_too_long -> ()
      | _ -> Alcotest.fail "long name on FAT should fail");
      (* a UNIX client on HPFS: case folding is a counted compromise *)
      let c0 = F.Vfs.compromises vfs in
      ignore (ok "create" (F.Vfs.create_file vfs F.Vfs.unix_semantics ~path:"/os2/File"));
      let (_ : F.Fs_types.stat) =
        ok "stat folds case" (F.Vfs.stat vfs F.Vfs.unix_semantics ~path:"/os2/FILE")
      in
      Alcotest.(check bool) "compromise counted" true (F.Vfs.compromises vfs > c0);
      (* the same path on JFS is honestly case-sensitive: no compromise,
         and the lookup fails *)
      ignore (ok "create aix" (F.Vfs.create_file vfs F.Vfs.unix_semantics ~path:"/aix/File"));
      (match F.Vfs.stat vfs F.Vfs.unix_semantics ~path:"/aix/FILE" with
      | Error E_not_found -> ()
      | _ -> Alcotest.fail "JFS should be case-sensitive");
      (* OS/2 semantics work across all three *)
      ignore (ok "os2 on fat" (F.Vfs.create_file vfs F.Vfs.os2_semantics ~path:"/c/CONFIG.SYS"));
      let (_ : F.Fs_types.stat) =
        ok "os2 stat" (F.Vfs.stat vfs F.Vfs.os2_semantics ~path:"/c/config.sys")
      in
      ())

let test_vfs_paths () =
  let k = Test_util.kernel_on () in
  Test_util.run_in_thread k (fun () ->
      let vfs = setup_vfs k in
      let sem = F.Vfs.os2_semantics in
      ignore (ok "mkdir" (F.Vfs.mkdir vfs sem ~path:"/os2/dir"));
      ignore (ok "nested" (F.Vfs.create_file vfs sem ~path:"/os2/dir/inner.txt"));
      Alcotest.(check (list string)) "readdir" [ "inner.txt" ]
        (ok "readdir" (F.Vfs.readdir vfs sem ~path:"/os2/dir"));
      ok "rename" (F.Vfs.rename vfs sem ~src:"/os2/dir/inner.txt" ~dst:"/os2/dir/renamed.txt");
      ok "unlink" (F.Vfs.unlink vfs sem ~path:"/os2/dir/renamed.txt");
      (match F.Vfs.rename vfs sem ~src:"/os2/dir" ~dst:"/aix/dir" with
      | Error (E_io _) -> ()
      | _ -> Alcotest.fail "cross-mount rename should fail");
      match F.Vfs.stat vfs sem ~path:"/nosuch/file" with
      | Error E_not_found -> ()
      | _ -> Alcotest.fail "unknown mount resolved")

(* --- the file server over RPC ---------------------------------------------------- *)

let with_file_server f =
  let k = Test_util.kernel_on () in
  let runtime = Mk_services.Runtime.install k in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  F.Hpfs.mkfs disk ();
  let vfs = F.Vfs.create () in
  let cache = F.Block_cache.create k disk () in
  (match F.Hpfs.mount cache () with
  | Ok pfs -> (
      match F.Vfs.mount vfs ~at:"/os2" pfs with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail (fs_error_to_string e));
  let fs = F.File_server.start k runtime vfs () in
  let result = Test_util.run_in_thread k (fun () -> f k fs) in
  result

let test_file_server_client () =
  with_file_server (fun _k fs ->
      let sem = F.Vfs.os2_semantics in
      let h =
        ok "open+create"
          (F.File_server.Client.open_ fs sem ~path:"/os2/report.txt" ~create:true ())
      in
      Alcotest.(check int) "port per open file" 1 (F.File_server.open_files fs);
      let n = ok "write" (F.File_server.Client.write fs h (Bytes.of_string "data data")) in
      Alcotest.(check int) "wrote" 9 n;
      F.File_server.Client.seek fs h ~pos:5;
      let got = ok "read" (F.File_server.Client.read fs h ~bytes:4) in
      Alcotest.(check string) "positioned read" "data" (Bytes.to_string got);
      F.File_server.Client.close fs h;
      Alcotest.(check int) "closed" 0 (F.File_server.open_files fs);
      (* path ops *)
      ok "mkdir" (F.File_server.Client.mkdir fs sem ~path:"/os2/work");
      let names = ok "readdir" (F.File_server.Client.readdir fs sem ~path:"/os2") in
      Alcotest.(check (list string)) "listing" [ "report.txt"; "work" ] names;
      let st = ok "stat" (F.File_server.Client.stat fs sem ~path:"/os2/report.txt") in
      Alcotest.(check int) "size" 9 st.st_size;
      ok "rename" (F.File_server.Client.rename fs sem ~src:"/os2/report.txt"
                      ~dst:"/os2/work/report.txt");
      ok "unlink" (F.File_server.Client.unlink fs sem ~path:"/os2/work/report.txt");
      match F.File_server.Client.open_ fs sem ~path:"/os2/nope" () with
      | Error E_not_found -> ()
      | _ -> Alcotest.fail "open of missing file succeeded")

let test_file_server_mapped_read () =
  with_file_server (fun k fs ->
      let sem = F.Vfs.os2_semantics in
      let h =
        ok "open" (F.File_server.Client.open_ fs sem ~path:"/os2/big" ~create:true ())
      in
      ignore (ok "write" (F.File_server.Client.write fs h (Bytes.make 4096 'm')));
      F.File_server.Client.seek fs h ~pos:0;
      let self = Mach.Sched.self () in
      let entries0 = Mach.Vm.entry_count self.Mach.Ktypes.t_task in
      let n1 = ok "mapped read 1" (F.File_server.Client.read_mapped fs h ~bytes:2048) in
      Alcotest.(check int) "bytes available" 2048 n1;
      Alcotest.(check int) "buffer mapped into client" (entries0 + 1)
        (Mach.Vm.entry_count self.Mach.Ktypes.t_task);
      let n2 = ok "mapped read 2" (F.File_server.Client.read_mapped fs h ~bytes:2048) in
      Alcotest.(check int) "second read" 2048 n2;
      Alcotest.(check int) "no second mapping" (entries0 + 1)
        (Mach.Vm.entry_count self.Mach.Ktypes.t_task);
      ignore k;
      F.File_server.Client.close fs h)

let test_file_server_zero_copy () =
  with_file_server (fun _k fs ->
      let sem = F.Vfs.os2_semantics in
      let h =
        ok "open" (F.File_server.Client.open_ fs sem ~path:"/os2/zc" ~create:true ())
      in
      let data = Bytes.init 8192 (fun i -> Char.chr (i land 0x7f)) in
      let self = (Mach.Sched.self ()).Mach.Ktypes.t_task in
      let entries0 = Mach.Vm.entry_count self in
      let n = ok "write_zc" (F.File_server.Client.write_zc fs h data) in
      Alcotest.(check int) "donated write" 8192 n;
      Alcotest.(check int) "donated buffer torn down" entries0
        (Mach.Vm.entry_count self);
      F.File_server.Client.seek fs h ~pos:0;
      let got = ok "read_zc" (F.File_server.Client.read_zc fs h ~bytes:8192) in
      Alcotest.(check bytes) "round trip" data got;
      Alcotest.(check int) "reply mapping torn down" entries0
        (Mach.Vm.entry_count self);
      (* the next request drops the previous reply's pin, so the pool
         can be reused for a second read *)
      F.File_server.Client.seek fs h ~pos:0;
      let got2 = ok "read_zc again" (F.File_server.Client.read_zc fs h ~bytes:4096) in
      Alcotest.(check bytes) "prefix" (Bytes.sub data 0 4096) got2;
      F.File_server.Client.close fs h)

let test_stale_handle () =
  with_file_server (fun _k fs ->
      let sem = F.Vfs.os2_semantics in
      let h = ok "open" (F.File_server.Client.open_ fs sem ~path:"/os2/f" ~create:true ()) in
      F.File_server.Client.close fs h;
      match F.File_server.Client.read fs h ~bytes:10 with
      | Error E_bad_handle -> ()
      | _ -> Alcotest.fail "stale handle accepted")

let test_map_file () =
  with_file_server (fun k fs ->
      let sem = F.Vfs.os2_semantics in
      (* create a 3-page file *)
      let h = ok "open" (F.File_server.Client.open_ fs sem ~path:"/os2/img" ~create:true ()) in
      ignore (ok "write" (F.File_server.Client.write fs h (Bytes.make 12288 'i')));
      F.File_server.Client.close fs h;
      let self = (Mach.Sched.self ()).Mach.Ktypes.t_task in
      let addr, size =
        ok "map" (F.File_server.map_file fs sem self ~path:"/os2/img")
      in
      Alcotest.(check int) "mapped size" 12288 size;
      let sys = k.Mach.Kernel.sys in
      Mach.Vm.touch sys self ~addr ~bytes:12288 ();
      Alcotest.(check int) "one pager read per page" 3
        (F.File_server.mapped_pageins fs);
      (* warm: no further pager traffic *)
      Mach.Vm.touch sys self ~addr ~bytes:12288 ();
      Alcotest.(check int) "warm" 3 (F.File_server.mapped_pageins fs);
      match F.File_server.map_file fs sem self ~path:"/os2/nosuch" with
      | Error E_not_found -> ()
      | _ -> Alcotest.fail "mapped a missing file")

let suite =
  [
    Alcotest.test_case "block cache" `Quick test_block_cache;
    Alcotest.test_case "map file (external pager)" `Quick test_map_file;
    Alcotest.test_case "pfs matrix: fat" `Quick test_matrix_fat;
    Alcotest.test_case "pfs matrix: hpfs" `Quick test_matrix_hpfs;
    Alcotest.test_case "pfs matrix: jfs" `Quick test_matrix_jfs;
    Alcotest.test_case "fat name rules" `Quick test_fat_names;
    Alcotest.test_case "fat create/read/write" `Quick test_fat_create_read_write;
    Alcotest.test_case "fat case folding" `Quick test_fat_case_folding;
    Alcotest.test_case "fat rejects long names" `Quick test_fat_long_name_rejected;
    Alcotest.test_case "fat subdirs+remove" `Quick test_fat_subdirs_and_remove;
    Alcotest.test_case "fat cluster growth" `Quick test_fat_grows_across_clusters;
    Alcotest.test_case "fat persistence" `Quick test_fat_persistence;
    Alcotest.test_case "hpfs long names" `Quick test_hpfs_long_names_case_insensitive;
    Alcotest.test_case "jfs case sensitivity" `Quick test_jfs_case_sensitive;
    Alcotest.test_case "jfs journal writes" `Quick test_jfs_journal_writes;
    Alcotest.test_case "extfs rename+truncate" `Quick test_extfs_rename_and_truncate;
    Alcotest.test_case "extfs sparse files" `Quick test_extfs_sparse_and_holes;
    Alcotest.test_case "vfs union semantics" `Quick test_vfs_union_semantics;
    Alcotest.test_case "vfs paths" `Quick test_vfs_paths;
    Alcotest.test_case "file server client" `Quick test_file_server_client;
    Alcotest.test_case "file server mapped read" `Quick test_file_server_mapped_read;
    Alcotest.test_case "file server zero-copy read/write" `Quick
      test_file_server_zero_copy;
    Alcotest.test_case "stale handle" `Quick test_stale_handle;
  ]

let _ = with_fs
