(* Machlint's own test suite: the known-bad fixtures must each trip
   exactly the rule they are named for, the known-clean twins must stay
   silent, and the allow-annotation must suppress findings.

   Fixtures live in test/lint_fixtures/ (a directory the tree scan
   skips) and only need to parse — they are linted file by file through
   the library entry point, same code path as bin/machlint. *)

(* dune runtest runs us in test/; dune exec from the root does not *)
let fixture_dir =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

let fixture name = Filename.concat fixture_dir name

let lint_file name =
  let r = Lint.run ~roots:[ fixture name ] () in
  r.Lint.r_findings

let rules_of findings =
  List.map (fun f -> f.Lint.Report.f_rule) findings
  |> List.sort_uniq compare

let check_bad name rule () =
  let fs = lint_file name in
  Alcotest.(check bool)
    (Printf.sprintf "%s trips %s" name rule)
    true
    (List.mem rule (rules_of fs));
  (* a known-bad must never be reported as anything-goes noise: every
     finding carries the fixture's path and a real line *)
  List.iter
    (fun f ->
      Alcotest.(check string) "finding names the fixture" (fixture name)
        f.Lint.Report.f_file;
      Alcotest.(check bool) "finding has a line" true (f.Lint.Report.f_line > 0))
    fs

let check_clean name () =
  match lint_file name with
  | [] -> ()
  | fs ->
      Alcotest.failf "%s should be clean, got: %s" name
        (String.concat "; " (List.map Lint.Report.to_line fs))

(* The per-rule pairing: each rule has one fixture built to trip it and
   one twin built to skate as close as possible without tripping. *)
let pairs =
  [
    ("bad_linearity.ml", "clean_linearity.ml", Lint.Report.rule_linearity);
    ("bad_lockorder.ml", "clean_lockorder.ml", Lint.Report.rule_lockorder);
    ("bad_noblock.ml", "clean_noblock.ml", Lint.Report.rule_noblock);
    ("bad_heartbeat.ml", "clean_heartbeat.ml", Lint.Report.rule_noblock);
    ("bad_interface.ml", "clean_interface.ml", Lint.Report.rule_interface);
    ("bad_provenance.ml", "clean_provenance.ml", Lint.Report.rule_provenance);
  ]

(* Each bad fixture packs several shapes of its violation (use-after-
   remap AND ool-Move AND double-move, say): assert multiplicity so a
   regression that keeps one detector but loses another still fails. *)
let test_bad_counts () =
  List.iter
    (fun (bad, expected_min) ->
      let n = List.length (lint_file bad) in
      if n < expected_min then
        Alcotest.failf "%s: expected >= %d findings, got %d" bad expected_min n)
    [
      ("bad_linearity.ml", 3);
      ("bad_lockorder.ml", 2);
      ("bad_noblock.ml", 3);
      ("bad_heartbeat.ml", 3);
      ("bad_interface.ml", 3);
      ("bad_provenance.ml", 3);
    ]

(* Findings are deterministic: two runs over the same corpus agree. *)
let test_deterministic () =
  let once () =
    List.concat_map (fun (b, _, _) -> lint_file b) pairs
    |> List.map Lint.Report.to_line
  in
  Alcotest.(check (list string)) "stable across runs" (once ()) (once ())

(* The real-tree violations machlint's first run reported (unanswered
   DD_r_done/OS2_r_ok acks, P_error replies silently dropped by client
   stubs) were fixed in these four files: pin each one individually so
   a revert resurfaces as a named failure here, not only as a generic
   @lint break.  Tree-relative paths: resolved from wherever the test
   runs; when the sources are not visible at all (a fully sandboxed
   run) the @lint alias still covers the tree. *)
let test_fixed_files_stay_clean () =
  let root =
    List.find_opt
      (fun d -> Sys.file_exists (Filename.concat d "lib"))
      [ ".."; "../.."; "." ]
  in
  match root with
  | None -> ()
  | Some root ->
      List.iter
        (fun rel ->
          let path = Filename.concat root rel in
          if Sys.file_exists path then
            match (Lint.run ~roots:[ path ] ()).Lint.r_findings with
            | [] -> ()
            | fs ->
                Alcotest.failf "%s regressed: %s" rel
                  (String.concat "; " (List.map Lint.Report.to_line fs)))
        [
          "lib/drivers/disk_driver.ml";
          "lib/personalities/os2.ml";
          "lib/services/name_service.ml";
          "lib/workloads/micro.ml";
        ]

(* A syntactically broken file is a finding, not a crash. *)
let test_syntax_error_is_finding () =
  let path = Filename.temp_file "machlint_fixture" ".ml" in
  let oc = open_out path in
  output_string oc "let broken = (\n";
  close_out oc;
  let r = Lint.run ~roots:[ path ] () in
  Sys.remove path;
  match r.Lint.r_findings with
  | [ f ] ->
      Alcotest.(check string) "syntax rule" Lint.Report.rule_syntax
        f.Lint.Report.f_rule
  | fs -> Alcotest.failf "expected one syntax finding, got %d" (List.length fs)

let suite =
  List.concat_map
    (fun (bad, clean, rule) ->
      [
        Alcotest.test_case (rule ^ " known-bad") `Quick (check_bad bad rule);
        Alcotest.test_case (rule ^ " known-clean") `Quick (check_clean clean);
      ])
    pairs
  @ [
      Alcotest.test_case "known-bads keep all their shapes" `Quick
        test_bad_counts;
      Alcotest.test_case "findings are deterministic" `Quick test_deterministic;
      Alcotest.test_case "fixed real-tree files stay clean" `Quick
        test_fixed_files_stay_clean;
      Alcotest.test_case "syntax error is a finding" `Quick
        test_syntax_error_is_finding;
    ]

let () = Alcotest.run "machlint" [ ("machlint", suite) ]
