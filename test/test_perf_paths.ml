(* The perf-path work: the kernel message-buffer free list, the
   per-thread reply-port cache, the O(1) block-cache LRU, the sub-cycle
   clock, and the ipc-stress benchmark's machine-readable output. *)

open Mach.Ktypes

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* --- kernel message buffers --------------------------------------------- *)

let test_kbuf_bounds () =
  let k = Test_util.kernel_on () in
  let kt = k.Mach.Kernel.ktext in
  let region = Mach.Ktext.buffer_region kt in
  let base = region.Machine.Layout.base in
  let limit = base + region.Machine.Layout.size in
  (* sizes from degenerate to larger-than-the-arena; every returned
     buffer must lie inside the region *)
  for i = 0 to 9_999 do
    let bytes = [| 0; 1; 31; 32; 33; 512; 4096; 100_000 |].(i mod 8) in
    let addr = Mach.Ktext.buffer_alloc kt ~bytes in
    let reserved = min (max 32 bytes) region.Machine.Layout.size in
    checkb "addr >= base" true (addr >= base);
    checkb "addr+reserved <= limit" true (addr + reserved <= limit);
    Mach.Ktext.buffer_free kt addr
  done;
  let s = Mach.Ktext.buffer_stats kt in
  checki "nothing left in use" 0 s.Mach.Ktext.bs_in_use_bytes;
  checki "allocs" 10_000 s.Mach.Ktext.bs_allocs;
  checki "frees" 10_000 s.Mach.Ktext.bs_frees

let test_kbuf_free_realloc_round_trip () =
  let k = Test_util.kernel_on () in
  let kt = k.Mach.Kernel.ktext in
  let region = Mach.Ktext.buffer_region kt in
  let granules = region.Machine.Layout.size / 32 in
  (* fill the arena exactly, release it all, and fill it again: the free
     list must hand every granule back without an arena recycle *)
  let fill () =
    List.init granules (fun _ -> Mach.Ktext.buffer_alloc kt ~bytes:32)
  in
  let first = fill () in
  checki "arena full" region.Machine.Layout.size
    (Mach.Ktext.buffer_stats kt).Mach.Ktext.bs_in_use_bytes;
  List.iter (Mach.Ktext.buffer_free kt) first;
  checki "arena empty" 0
    (Mach.Ktext.buffer_stats kt).Mach.Ktext.bs_in_use_bytes;
  let second = fill () in
  checki "all addresses reissued" granules
    (List.length (List.sort_uniq compare second));
  let s = Mach.Ktext.buffer_stats kt in
  checki "second fill served from the quick lists" granules
    s.Mach.Ktext.bs_recycles;
  checki "no arena reset needed" 0 s.Mach.Ktext.bs_resets;
  List.iter (Mach.Ktext.buffer_free kt) second;
  (* double free of a stale address is ignored, not corrupting *)
  Mach.Ktext.buffer_free kt (List.hd second);
  checki "still empty" 0 (Mach.Ktext.buffer_stats kt).Mach.Ktext.bs_in_use_bytes

let test_kbuf_recycle_on_exhaustion () =
  let k = Test_util.kernel_on () in
  let kt = k.Mach.Kernel.ktext in
  let region = Mach.Ktext.buffer_region kt in
  let base = region.Machine.Layout.base in
  let limit = base + region.Machine.Layout.size in
  (* leak allocations past the arena size: the allocator must recycle
     the arena (counted) rather than walk out of bounds *)
  let granules = region.Machine.Layout.size / 32 in
  for _ = 1 to granules + 100 do
    let addr = Mach.Ktext.buffer_alloc kt ~bytes:32 in
    checkb "in bounds under pressure" true (addr >= base && addr + 32 <= limit)
  done;
  let s = Mach.Ktext.buffer_stats kt in
  checkb "exhaustion was counted" true (s.Mach.Ktext.bs_resets >= 1);
  checki "peak capped at capacity" region.Machine.Layout.size
    s.Mach.Ktext.bs_peak_bytes

(* --- reply-port cache ---------------------------------------------------- *)

(* Boot, run a server on [port], and run [body] in a client thread. *)
let with_client_server body =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let server = Mach.Kernel.task_create k ~name:"server" () in
  let port = Mach.Port.allocate sys ~receiver:server ~name:"svc" in
  ignore
    (Mach.Kernel.thread_spawn k server ~name:"srv" (fun () ->
         Mach.Ipc.serve sys port (fun _ -> simple_message ()))
      : thread);
  let result = ref None in
  let client = Mach.Kernel.task_create k ~name:"client" () in
  ignore
    (Mach.Kernel.thread_spawn k client ~name:"cl" (fun () ->
         result := Some (body k sys port);
         Mach.Port.destroy sys port)
      : thread);
  Mach.Kernel.run k;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "client thread did not complete"

let call_ok sys port =
  match Mach.Ipc.call sys port (simple_message ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (kern_return_to_string e)

let test_reply_port_reuse () =
  with_client_server (fun _k sys port ->
      call_ok sys port;
      let th = Mach.Sched.self () in
      let first =
        match th.reply_port_cache with
        | Some p -> p
        | None -> Alcotest.fail "no reply port cached after a call"
      in
      call_ok sys port;
      call_ok sys port;
      (match th.reply_port_cache with
      | Some p -> checkb "same physical reply port reused" true (p == first)
      | None -> Alcotest.fail "cache emptied by reuse");
      checki "one miss (first call)" 1 (Mach.Ipc.reply_cache_misses sys);
      checki "two hits" 2 (Mach.Ipc.reply_cache_hits sys))

let test_reply_port_invalidation_on_death () =
  with_client_server (fun _k sys port ->
      call_ok sys port;
      let th = Mach.Sched.self () in
      let first = Option.get th.reply_port_cache in
      (* the cached port dies (e.g. the task's name space was torn down);
         the next call must notice and allocate a fresh one *)
      Mach.Port.destroy sys first;
      call_ok sys port;
      let second = Option.get th.reply_port_cache in
      checkb "dead port not reused" true (first != second);
      checkb "replacement is live" false second.dead;
      checki "two misses" 2 (Mach.Ipc.reply_cache_misses sys))

let test_ipc_soak_buffers_bounded () =
  with_client_server (fun k sys port ->
      for _ = 1 to 10_000 do
        call_ok sys port
      done;
      let s = Mach.Ktext.buffer_stats k.Mach.Kernel.ktext in
      checki "soak forced no arena reset" 0 s.Mach.Ktext.bs_resets;
      checkb "message buffers are being recycled" true
        (s.Mach.Ktext.bs_recycles > 0);
      checkb "buffers are being freed" true
        (s.Mach.Ktext.bs_in_use_bytes < 4096);
      checkb "allocs matched by frees" true
        (s.Mach.Ktext.bs_allocs - s.Mach.Ktext.bs_frees < 64))

(* --- block-cache LRU ------------------------------------------------------ *)

let test_lru_eviction_order () =
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  let cache = Fileserver.Block_cache.create k disk ~capacity:2 () in
  let lru () = Fileserver.Block_cache.lru_block cache in
  ignore (Fileserver.Block_cache.read cache 1 : bytes);
  ignore (Fileserver.Block_cache.read cache 2 : bytes);
  check (Alcotest.option Alcotest.int) "oldest is 1" (Some 1) (lru ());
  (* touching 1 moves it to the front: 2 becomes the victim *)
  ignore (Fileserver.Block_cache.read cache 1 : bytes);
  check (Alcotest.option Alcotest.int) "touch reorders" (Some 2) (lru ());
  let misses_before = Fileserver.Block_cache.misses cache in
  ignore (Fileserver.Block_cache.read cache 3 : bytes);
  (* 2 was evicted; 1 survived because it was touched *)
  let hits_before = Fileserver.Block_cache.hits cache in
  ignore (Fileserver.Block_cache.read cache 1 : bytes);
  checki "1 still cached" (hits_before + 1) (Fileserver.Block_cache.hits cache);
  checki "3 was a miss" (misses_before + 1) (Fileserver.Block_cache.misses cache);
  ignore (Fileserver.Block_cache.read cache 2 : bytes);
  checki "2 re-misses after eviction" (misses_before + 2)
    (Fileserver.Block_cache.misses cache)

let test_lru_dirty_writeback () =
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  let cache = Fileserver.Block_cache.create k disk ~capacity:2 () in
  let bs = Fileserver.Block_cache.block_size cache in
  Fileserver.Block_cache.write cache 10 (Bytes.make bs 'a');
  ignore (Fileserver.Block_cache.read cache 11 : bytes);
  checki "no writeback yet" 0 (Fileserver.Block_cache.writebacks cache);
  (* fault in a third block: dirty block 10 is the LRU victim *)
  ignore (Fileserver.Block_cache.read cache 12 : bytes);
  checki "dirty victim written back" 1
    (Fileserver.Block_cache.writebacks cache);
  (* its data survived the round trip through the disk *)
  let back = Fileserver.Block_cache.read cache 10 in
  check Alcotest.char "contents persisted" 'a' (Bytes.get back 0)

(* --- clock precision ------------------------------------------------------ *)

let test_store_penalty_not_truncated () =
  let m = Test_util.pentium () in
  let cpu = m.Machine.cpu in
  let addr = 0x10000 in
  (* warm the line and the TLB so only the 0.5-cycle write penalty moves
     the clock *)
  Machine.Cpu.store cpu ~addr ~bytes:4;
  let t0 = Machine.Cpu.now_exact cpu in
  for _ = 1 to 101 do
    Machine.Cpu.store cpu ~addr ~bytes:4
  done;
  let dt = Machine.Cpu.now_exact cpu -. t0 in
  check (Alcotest.float 1e-9) "101 stores charge exactly 50.5 cycles" 50.5 dt;
  (* the integer clock rounds to nearest instead of truncating *)
  let diff =
    Float.abs (float_of_int (Machine.Cpu.now cpu) -. Machine.Cpu.now_exact cpu)
  in
  checkb "now is within half a cycle of the exact clock" true (diff <= 0.5)

(* --- ipc-stress output ---------------------------------------------------- *)

let test_ipc_stress_smoke () =
  let open Workloads.Ipc_stress in
  let r = run ~workers:1 ~iters:5 ~sizes:[ 0; 32 ] () in
  checki "two systems x two sizes" 4 (List.length r.r_points);
  List.iter
    (fun p ->
      checkb (p.pt_system ^ " cycles positive") true
        (p.pt_sim_cycles_per_op > 0.))
    r.r_points;
  (* write the JSON out and read it back, as the benchmark harness does *)
  let path = Filename.temp_file "bench_ipc" ".json" in
  let oc = open_out path in
  output_string oc (to_json r);
  close_out oc;
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match Json.parse text with
  | Error e -> Alcotest.fail ("BENCH_ipc.json does not parse: " ^ e)
  | Ok doc ->
      (match Json.member "experiment" doc with
      | Some (Json.Str s) -> check Alcotest.string "experiment" "ipc-stress" s
      | _ -> Alcotest.fail "missing experiment field");
      (match Json.member "results" doc with
      | Some (Json.Arr rows) ->
          checki "result rows" 4 (List.length rows);
          List.iter
            (fun row ->
              List.iter
                (fun field ->
                  checkb (field ^ " present") true
                    (Json.member field row <> None))
                [ "system"; "bytes"; "sim_cycles_per_op"; "host_ns_per_op" ])
            rows
      | _ -> Alcotest.fail "missing results array");
      List.iter
        (fun field ->
          checkb (field ^ " present") true (Json.member field doc <> None))
        [ "schema_version"; "run"; "workers"; "iters"; "reply_cache"; "kbuf" ]

(* --- the uniprocessor cost model must survive SMP ------------------------ *)

let test_ncpus1_numbers_unchanged () =
  (* ncpus defaults to 1, which keeps every SMP path inert — no bus
     bookings, no coherence directory, the single-queue dispatch order.
     These golden numbers were captured before the SMP machine landed;
     any drift here means a multiprocessor change leaked into the
     uniprocessor cost model. *)
  let checkf = Alcotest.check (Alcotest.float 0.001) in
  let trap, rpc = Workloads.Micro.table2 () in
  checkf "table2 trap cycles" 964.0 trap.Workloads.Micro.t2_cycles;
  checkf "table2 rpc cycles" 5000.0 rpc.Workloads.Micro.t2_cycles;
  let r = Workloads.Ipc_stress.run ~workers:2 ~iters:20 ~sizes:[ 0; 512; 4096 ] () in
  let golden =
    [
      (("mach_msg", 0), 41005.10); (("ibm_rpc", 0), 5791.55);
      (("mach_msg", 512), 42721.90); (("ibm_rpc", 512), 7004.20);
      (("mach_msg", 4096), 71812.25); (("ibm_rpc", 4096), 7395.50);
      (("rpc_copy", 4096), 15948.50); (("rpc_remap", 4096), 7395.50);
    ]
  in
  List.iter
    (fun p ->
      let open Workloads.Ipc_stress in
      match List.assoc_opt (p.pt_system, p.pt_bytes) golden with
      | Some cycles ->
          checkf
            (Printf.sprintf "%s/%d cycles per op" p.pt_system p.pt_bytes)
            cycles p.pt_sim_cycles_per_op
      | None ->
          Alcotest.failf "unexpected ipc-stress point %s/%d" p.pt_system
            p.pt_bytes)
    r.Workloads.Ipc_stress.r_points;
  checki "every golden point measured"
    (List.length golden)
    (List.length r.Workloads.Ipc_stress.r_points)

let suite =
  [
    Alcotest.test_case "kbuf alloc stays in bounds" `Quick test_kbuf_bounds;
    Alcotest.test_case "kbuf free/realloc round trip" `Quick
      test_kbuf_free_realloc_round_trip;
    Alcotest.test_case "kbuf recycle on exhaustion" `Quick
      test_kbuf_recycle_on_exhaustion;
    Alcotest.test_case "reply port reused across calls" `Quick
      test_reply_port_reuse;
    Alcotest.test_case "reply cache invalidated on death" `Quick
      test_reply_port_invalidation_on_death;
    Alcotest.test_case "10k-call soak keeps buffers bounded" `Quick
      test_ipc_soak_buffers_bounded;
    Alcotest.test_case "block-cache LRU order" `Quick test_lru_eviction_order;
    Alcotest.test_case "block-cache dirty writeback" `Quick
      test_lru_dirty_writeback;
    Alcotest.test_case "store penalty not truncated" `Quick
      test_store_penalty_not_truncated;
    Alcotest.test_case "ipc-stress smoke + JSON" `Quick test_ipc_stress_smoke;
    Alcotest.test_case "ncpus=1 numbers byte-identical to pre-SMP" `Slow
      test_ncpus1_numbers_unchanged;
  ]
