(* Known-clean fixture: bench provenance.
   The experiment header carries schema_version and the Run_meta
   envelope in the same builder, and the raw writer routes its contents
   through a to_json builder. *)

let full_header oc name =
  Printf.fprintf oc "{ \"experiment\": %S,\n" name;
  Printf.fprintf oc "  \"schema_version\": 2,\n";
  Printf.fprintf oc "  \"run_meta\": %s }\n" (Run_meta.json ())

let routed_writer result =
  let oc = open_out "BENCH_fixture.json" in
  output_string oc (result_to_json result);
  close_out oc
