(* Known-bad fixture: lock-order.
   Two functions acquire the same pair of locks in opposite orders —
   the classic ABBA cycle — and one re-acquires a lock it still holds. *)

let ab sys a b =
  ignore (Sync.mutex_lock sys a);
  ignore (Sync.mutex_lock sys b);
  Sync.mutex_unlock sys b;
  Sync.mutex_unlock sys a

let ba sys a b =
  ignore (Sync.mutex_lock sys b);
  ignore (Sync.mutex_lock sys a);
  Sync.mutex_unlock sys a;
  Sync.mutex_unlock sys b

let self_deadlock sys a =
  ignore (Sync.mutex_lock sys a);
  ignore (Sync.mutex_lock sys a);
  Sync.mutex_unlock sys a
