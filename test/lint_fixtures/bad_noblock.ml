(* Known-bad fixture: no-block.
   Blocking primitives reached from contexts that run with the world
   stopped: an annotated interrupt path, an event-queue callback, and a
   txn body that parks on IPC. *)

let[@machlint.no_block] isr sys =
  (* interrupt delivery must never sleep *)
  Sched.block sys Wait_forever

let completion_blocks eq port =
  Event_queue.schedule eq 5 (fun () ->
      (* the event loop has no thread to put to sleep *)
      ignore (Ipc.receive port ~timeout:None))

let txn_waits_on_rpc fs port =
  { txn_run = (fun () -> ignore (Rpc.call port Q_sync)) }
