(* Known-bad fixture: interface completeness.
   A payload constructor that is sent but never handled, a payload
   match without a catch-all, and a format registering a txn wrapper
   with no recovery entry. *)

type payload += Fx_ping of int | Fx_pong of int

let client port =
  (* Fx_ping is really sendable... *)
  ignore (Ipc.send port (Fx_ping 1))

let server port =
  (* ...but the only handler matches Fx_pong, with no catch-all: an
     Fx_ping (or any fault-injected message) raises Match_failure *)
  match Ipc.receive port ~timeout:None with
  | Fx_pong n -> n

let format_table =
  { vp_lookup = None;
    vp_txn = Some run_in_txn;
    vp_recover = None }
