(* Known-clean fixture: no-block.
   The same contexts doing only legal work: queue math in the ISR,
   non-blocking sends from the callback, and a txn body that waits on
   the disk (a journal barrier) but never on IPC. *)

let[@machlint.no_block] isr pc =
  Queue.add Wake pc.pc_ipiq;
  pc.pc_xmsgs <- pc.pc_xmsgs + 1

let completion_posts eq sem =
  Event_queue.schedule eq 5 (fun () ->
      (* posting a semaphore never sleeps *)
      Sync.semaphore_post sem)

let txn_waits_on_disk d =
  { txn_run = (fun () -> Disk.barrier d (fun () -> ())) }

let thread_body_may_block sys port =
  (* thread-spawn closures are ordinary thread bodies: free to block *)
  thread_spawn sys (fun () -> ignore (Ipc.receive port ~timeout:None))
