(* Known-clean fixture: interface completeness.
   Every sendable constructor has a handler, the payload match carries a
   catch-all, and the txn-registering format also registers recovery. *)

type payload += Fx_ping of int | Fx_pong of int

let client port =
  ignore (Ipc.send port (Fx_ping 1));
  ignore (Ipc.send port (Fx_pong 2))

let server port =
  match Ipc.receive port ~timeout:None with
  | Fx_ping n -> n
  | Fx_pong n -> n
  | _ ->
      (* unknown vocabulary bounces as a generic error *)
      0

let format_table =
  { vp_lookup = None;
    vp_txn = Some run_in_txn;
    vp_recover = Some replay_journal }
