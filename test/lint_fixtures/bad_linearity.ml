(* Known-bad fixture: port-linearity.
   Fixtures only need to PARSE — they are never compiled; machlint's
   fixture tests lint them file by file and expect the named rule. *)

let use_after_remap sys buf =
  ignore (Vm.remap_move sys ~src_task:t ~dst_task:t ~addr:buf ~bytes:4096);
  (* [buf]'s pages are zero-fill now: this read is a use-after-donation *)
  Bytes.get buf 0

let use_after_ool_move port buf =
  ignore (Ipc.send port ~ool:(buf, 64, Move));
  (* the Move descriptor donated [buf] with the message *)
  Bytes.length buf

let double_move sys buf =
  ignore (Vm.remap_move sys ~src_task:t ~dst_task:t ~addr:buf ~bytes:4096);
  ignore (Vm.remap_move sys ~src_task:t ~dst_task:t ~addr:buf ~bytes:4096)
