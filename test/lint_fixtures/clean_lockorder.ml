(* Known-clean fixture: lock-order.
   The same lock pairs, always in one global order; scoped combinators
   and spawned-thread closures do not leak held state to siblings. *)

let ab sys a b =
  ignore (Sync.mutex_lock sys a);
  ignore (Sync.mutex_lock sys b);
  Sync.mutex_unlock sys b;
  Sync.mutex_unlock sys a

let also_ab sys a b =
  ignore (Sync.mutex_lock sys a);
  ignore (Sync.mutex_lock sys b);
  Sync.mutex_unlock sys b;
  Sync.mutex_unlock sys a

let scoped sys a b =
  cache_with_lock a (fun () -> work ());
  cache_with_lock b (fun () -> work ())

let sibling_threads k t sys a =
  (* two spawned bodies each take [a]; neither holds it while the other
     starts, so this is not a self-deadlock *)
  Test_util.spawn k t "t1" (fun () ->
      ignore (Sync.mutex_lock sys a);
      Sync.mutex_unlock sys a);
  Test_util.spawn k t "t2" (fun () ->
      ignore (Sync.mutex_lock sys a);
      Sync.mutex_unlock sys a)
