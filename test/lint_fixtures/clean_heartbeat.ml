(* Known-clean fixture: heartbeat/watchdog handlers.
   The legal shape: the annotated handler reads the two beat words and
   builds the pong — no waits, no locks, nothing that could make the
   health thread as unresponsive as the wedge it exists to detect.  The
   serve loops themselves block, but they are ordinary thread bodies. *)

let read_beat b =
  (* two mutable words stamped by the main loop: safe to read racily *)
  (b.hb_served, b.hb_busy_since)

let[@machlint.no_block] handler b _req =
  let served, busy_since = read_beat b in
  pong ~hp_served:served ~hp_busy_since:busy_since

let[@machlint.no_block] watchdog_probe now beat =
  (* age of the request in hand, from stamps already taken: pure math *)
  if beat.hb_busy_since < 0 then 0 else now - beat.hb_busy_since

let health_thread sys hp beat =
  (* the health loop itself parks in receive: a plain thread body *)
  thread_spawn sys (fun () -> Rpc.serve sys hp (handler beat))
