(* Known-bad fixture: bench provenance.
   A BENCH writer that emits the experiment header with no
   schema_version and no Run_meta block, and a raw open_out of a
   BENCH_*.json that routes through no builder. *)

let bare_header oc name =
  Printf.fprintf oc "{ \"experiment\": %S }\n" name

let raw_writer rows =
  let oc = open_out "BENCH_fixture.json" in
  List.iter (fun r -> Printf.fprintf oc "%d\n" r) rows;
  close_out oc
