(* Known-clean fixture: port-linearity.
   Donations followed only by the sanctioned cleanup, branch-local
   moves, and shadowing — none of these may fire. *)

let donate_then_drop sys buf =
  ignore (Vm.remap_move sys ~src_task:t ~dst_task:t ~addr:buf ~bytes:4096);
  (* deallocate is the one sanctioned touch of a dead name *)
  Vm.deallocate sys buf

let branch_local_move sys mode buf =
  match mode with
  | Move_mode ->
      ignore (Vm.remap_move sys ~src_task:t ~dst_task:t ~addr:buf ~bytes:4096)
  | Cow_mode ->
      (* sibling arm: [buf] was not donated on this path *)
      Bytes.get buf 0

let shadowed sys buf =
  ignore (Vm.remap_move sys ~src_task:t ~dst_task:t ~addr:buf ~bytes:4096);
  let buf = Bytes.create 64 in
  (* a fresh [buf]: the donation applied to the outer binding *)
  Bytes.get buf 0
