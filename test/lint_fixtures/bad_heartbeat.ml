(* Known-bad fixture: heartbeat/watchdog handlers.
   A health handler answers pings while the main loop may be wedged; it
   runs between a dequeue and a reply on the dedicated health thread and
   is annotated [@machlint.no_block].  This twin blocks three ways: a
   direct RPC out of the handler, a sleep in the watchdog probe, and a
   transitive wait through a helper that parks on the beat mutex. *)

let read_beat_locked b =
  (* helper that parks: taints every annotated caller *)
  Sync.mutex_lock b.hb_lock;
  b.hb_served

let[@machlint.no_block] handler b req =
  (* pinging the supervisor back from inside the pong path deadlocks
     the very watchdog that is waiting on us *)
  ignore (Rpc.call b.hb_sup_port (H_pong { hp_served = b.hb_served }));
  pong (read_beat_locked b)

let[@machlint.no_block] watchdog_probe sys beat =
  (* a watchdog that sleeps cannot tell a wedge from its own nap *)
  ignore (Clock.sleep_for sys ~cycles:10_000);
  beat.hb_busy_since
