(* Property-based tests (qcheck) on core data structures and invariants. *)

let qtest = QCheck_alcotest.to_alcotest

(* --- cache: resident never exceeds capacity; hits imply residence ------- *)

let cache_capacity =
  QCheck.Test.make ~name:"cache residency bounded by capacity" ~count:100
    QCheck.(list (int_bound 0xffff))
    (fun addrs ->
      let c =
        Machine.Cache.create { Machine.Config.size = 512; line = 32; assoc = 2 }
      in
      List.iter (fun a -> ignore (Machine.Cache.access c a : bool)) addrs;
      Machine.Cache.resident c <= Machine.Cache.lines c)

let cache_hit_after_access =
  QCheck.Test.make ~name:"probe hits immediately after access" ~count:100
    QCheck.(int_bound 0xfffff)
    (fun addr ->
      let c =
        Machine.Cache.create
          { Machine.Config.size = 4096; line = 32; assoc = 2 }
      in
      ignore (Machine.Cache.access c addr : bool);
      Machine.Cache.probe c addr)

(* --- layout: allocations never overlap ----------------------------------- *)

let layout_no_overlap =
  QCheck.Test.make ~name:"layout allocations never overlap" ~count:50
    QCheck.(list_of_size Gen.(1 -- 20) (int_range 1 20000))
    (fun sizes ->
      let l = Machine.Layout.create Machine.Config.ppc604_133 in
      List.iteri
        (fun i size ->
          ignore
            (Machine.Layout.alloc l
               ~name:(Printf.sprintf "r%d" i)
               ~kind:Machine.Layout.Data ~size
              : Machine.Layout.region))
        sizes;
      let regions = Machine.Layout.regions l in
      List.for_all
        (fun (a : Machine.Layout.region) ->
          List.for_all
            (fun (b : Machine.Layout.region) ->
              a == b
              || a.Machine.Layout.base + a.Machine.Layout.size
                 <= b.Machine.Layout.base
              || b.Machine.Layout.base + b.Machine.Layout.size
                 <= a.Machine.Layout.base)
            regions)
        regions)

(* --- event queue: delivery respects time order ---------------------------- *)

let event_queue_ordered =
  QCheck.Test.make ~name:"event queue fires in time order" ~count:100
    QCheck.(list (int_bound 10000))
    (fun times ->
      let q = Machine.Event_queue.create () in
      let fired = ref [] in
      List.iter
        (fun t -> Machine.Event_queue.schedule q ~at:t (fun () -> fired := t :: !fired))
        times;
      ignore (Machine.Event_queue.run_due q ~now:20000 : int);
      let order = List.rev !fired in
      List.sort compare order = order
      && List.length order = List.length times)

(* --- name db: bind/resolve round trip; unbind removes ---------------------- *)

let path_gen =
  QCheck.Gen.(
    map
      (fun parts -> "/" ^ String.concat "/" parts)
      (list_size (1 -- 4)
         (oneofl [ "a"; "b"; "srv"; "dev"; "x1"; "files"; "net" ])))

let name_db_roundtrip =
  QCheck.Test.make ~name:"name db bind/resolve round trip" ~count:100
    (QCheck.make path_gen) (fun path ->
      let db = Mk_services.Name_db.create () in
      match Mk_services.Name_db.bind db ~path ~attributes:[ ("k", "v") ] () with
      | Error _ -> true  (* duplicate path components collapsing: skip *)
      | Ok () -> (
          match Mk_services.Name_db.resolve db ~path with
          | Some e ->
              e.Mk_services.Name_db.attributes = [ ("k", "v") ]
              && Mk_services.Name_db.unbind db ~path
              && Mk_services.Name_db.resolve db ~path = None
          | None -> false))

(* --- FAT name validation: accepted names round-trip through the format ---- *)

let fat_name_gen =
  QCheck.Gen.(
    map2
      (fun base ext ->
        if ext = "" then base else base ^ "." ^ ext)
      (string_size (1 -- 10) ~gen:(oneofl [ 'a'; 'B'; '3'; '_'; '-'; '%' ]))
      (string_size (0 -- 4) ~gen:(oneofl [ 'x'; 'Y'; '9' ])))

let fat_names_consistent =
  QCheck.Test.make ~name:"fat validation is idempotent and length-correct"
    ~count:200 (QCheck.make fat_name_gen) (fun name ->
      match Fileserver.Fat.valid_name name with
      | Ok canonical ->
          String.length canonical <= 12
          && Fileserver.Fat.valid_name canonical = Ok canonical
      | Error _ -> true)

(* --- file systems: write/read round trip at random offsets ----------------- *)

let fs_roundtrip mkfs mount name =
  QCheck.Test.make ~name ~count:20
    QCheck.(pair (int_bound 6000) (int_range 1 3000))
    (fun (off, len) ->
      let k = Test_util.kernel_on () in
      let disk = k.Mach.Kernel.machine.Machine.disk in
      mkfs disk;
      let cache = Fileserver.Block_cache.create k disk ~capacity:512 () in
      let result = ref false in
      let t = Mach.Kernel.task_create k ~name:"t" () in
      ignore
        (Mach.Kernel.thread_spawn k t ~name:"t" (fun () ->
             match mount cache with
             | Error _ -> ()
             | Ok pfs ->
                 let open Fileserver.Fs_types in
                 (match pfs.pfs_create ~dir:pfs.pfs_root "F" ~is_dir:false with
                 | Error _ -> ()
                 | Ok id -> (
                     let payload =
                       Bytes.init len (fun i -> Char.chr (33 + ((off + i) mod 90)))
                     in
                     match pfs.pfs_write id ~off payload with
                     | Error _ -> ()
                     | Ok n -> (
                         if n <> len then ()
                         else
                           match pfs.pfs_read id ~off ~len with
                           | Ok back -> result := Bytes.equal back payload
                           | Error _ -> ()))))
          : Mach.Ktypes.thread);
      Mach.Kernel.run k;
      !result)

let hpfs_roundtrip =
  fs_roundtrip
    (fun d -> Fileserver.Hpfs.mkfs d ())
    (fun c -> Fileserver.Hpfs.mount c ())
    "hpfs write/read round trip at random offsets"

let jfs_roundtrip =
  fs_roundtrip
    (fun d -> Fileserver.Jfs.mkfs d ())
    (fun c -> Fileserver.Jfs.mount c ())
    "jfs write/read round trip at random offsets"

(* --- VM: resident pages never exceed the pool; faults are idempotent ------- *)

let vm_residency_bounded =
  QCheck.Test.make ~name:"vm residency never exceeds the page pool" ~count:20
    QCheck.(list_of_size Gen.(1 -- 30) (pair (int_bound 60) bool))
    (fun touches ->
      let config =
        Machine.Config.with_memory Machine.Config.pentium_133
          ~bytes:(2 * 1024 * 1024)
      in
      let k = Mach.Kernel.boot (Machine.create config) in
      let sys = k.Mach.Kernel.sys in
      let t = Mach.Kernel.task_create k ~name:"t" () in
      let holds = ref true in
      ignore
        (Mach.Kernel.thread_spawn k t ~name:"t" (fun () ->
             let bytes = 64 * 4096 in
             let addr = Mach.Vm.allocate sys t ~bytes () in
             List.iter
               (fun (page, write) ->
                 Mach.Vm.touch sys t
                   ~addr:(addr + (page * 4096))
                   ~write ~bytes:8 ();
                 if Mach.Vm.resident_pages sys > sys.Mach.Sched.page_limit + 1
                 then holds := false)
               touches)
          : Mach.Ktypes.thread);
      Mach.Kernel.run k;
      !holds)

(* --- runtime malloc: distinct live blocks never overlap --------------------- *)

let malloc_no_overlap =
  QCheck.Test.make ~name:"runtime malloc blocks never overlap" ~count:50
    QCheck.(list_of_size Gen.(1 -- 25) (int_range 1 2000))
    (fun sizes ->
      let k = Test_util.kernel_on () in
      let rt = Mk_services.Runtime.install k in
      let task = Mach.Kernel.task_create k ~name:"t" () in
      let blocks =
        List.map (fun b -> (Mk_services.Runtime.malloc rt task ~bytes:b, b)) sizes
      in
      List.for_all
        (fun (a, sa) ->
          List.for_all
            (fun (b, sb) -> a = b || a + sa <= b || b + sb <= a)
            blocks)
        blocks)

(* --- machcheck: rights are conserved under random churn and faults -------- *)

let rights_op_gen =
  (* (op, port index, task index, name selector) *)
  QCheck.(
    quad (int_bound 5) (int_bound 3) (int_bound 1) (int_bound 7))

let rights_conservation =
  QCheck.Test.make
    ~name:"machcheck shadow rights mirror the namespaces under churn" ~count:30
    QCheck.(pair small_nat (list_of_size Gen.(5 -- 40) rights_op_gen))
    (fun (seed, ops) ->
      let k = Test_util.kernel_on () in
      let sys = k.Mach.Kernel.sys in
      let chk = Check.create () in
      Mach.Sched.enable_checks sys chk;
      (* seeded faults: drop a fifth of the echo traffic in transit so the
         timeout/error paths churn reply ports too *)
      let plan = Mach.Fault.create ~seed () in
      Mach.Fault.set_rates plan ~port:"echo" ~drop_ppm:200_000 ();
      sys.Mach.Sched.faults <- Some plan;
      let owner = Mach.Kernel.task_create k ~name:"owner" () in
      let ta = Mach.Kernel.task_create k ~name:"ta" () in
      let tb = Mach.Kernel.task_create k ~name:"tb" () in
      let tasks = [| ta; tb |] in
      let ports =
        Array.init 4 (fun i ->
            Mach.Port.allocate sys ~receiver:owner
              ~name:(Printf.sprintf "pool%d" i))
      in
      let srv = Mach.Kernel.task_create k ~name:"echo-srv" () in
      let echo = Mach.Port.allocate sys ~receiver:srv ~name:"echo" in
      ignore
        (Mach.Kernel.thread_spawn k srv ~name:"echo" (fun () ->
             Mach.Ipc.serve sys echo (fun _ -> Mach.Ktypes.simple_message ()))
          : Mach.Ktypes.thread);
      let pick_name (task : Mach.Ktypes.task) sel =
        let names =
          Hashtbl.fold (fun n _ acc -> n :: acc) task.Mach.Ktypes.namespace []
          |> List.sort compare
        in
        match names with
        | [] -> None
        | l -> Some (List.nth l (sel mod List.length l))
      in
      Test_util.run_in_thread k (fun () ->
          List.iter
            (fun (op, pi, ti, sel) ->
              let p = ports.(pi) and t = tasks.(ti) in
              match op with
              | 0 when not p.Mach.Ktypes.dead ->
                  ignore (Mach.Port.insert_right sys t p Mach.Ktypes.Send_right : int)
              | 1 when not p.Mach.Ktypes.dead ->
                  ignore
                    (Mach.Port.insert_right sys t p Mach.Ktypes.Send_once_right : int)
              | 2 ->
                  ignore
                    (Mach.Port.move_right sys ~from:t ~into:tasks.(1 - ti) p
                      : Mach.Ktypes.kern_return)
              | 3 -> (
                  match pick_name t sel with
                  | Some name ->
                      ignore
                        (Mach.Port.deallocate_right sys t name
                          : Mach.Ktypes.kern_return)
                  | None -> ())
              | 4 when not p.Mach.Ktypes.dead -> Mach.Port.destroy sys p
              | _ ->
                  ignore
                    (Mach.Ipc.call sys echo ~deadline:20_000
                       (Mach.Ktypes.simple_message ())))
            ops);
      Mach.Kernel.run k;
      let rep = Check.report chk in
      (* conservation: the shadow agrees with every namespace exactly, and
         nothing was freed twice or weakened *)
      List.for_all
        (fun (t : Mach.Ktypes.task) ->
          Mach.Mcheck.live_rights sys t
          = Hashtbl.length t.Mach.Ktypes.namespace)
        [ owner; ta; tb; srv ]
      && rep.Check.rep_right_double_frees = 0
      && rep.Check.rep_right_downgrades = 0)

(* --- zero-copy transfers: stamps arrive intact and never alias ------------- *)

(* Random sequences of the three out-of-line transfer shapes (donate,
   snapshot-share, lazy Mach copy).  After any of them the receiver must
   read the stamp the sender wrote, a move must leave the sender with
   zero-fill memory, and post-transfer writes on either side must stay
   private — page remapping is an optimization, never a channel. *)
let[@machlint.allow "port-linearity"] remap_transfer_correct =
  QCheck.Test.make ~name:"remap transfers deliver stamps and never alias"
    ~count:30
    QCheck.(
      list_of_size Gen.(1 -- 12) (pair (int_bound 2) (int_range 1 10_000)))
    (fun ops ->
      let k = Test_util.kernel_on () in
      let sys = k.Mach.Kernel.sys in
      let src = Mach.Kernel.task_create k ~name:"sender" () in
      let dst = Mach.Kernel.task_create k ~name:"receiver" () in
      let holds = ref true in
      let expect cond = if not cond then holds := false in
      ignore
        (Mach.Kernel.thread_spawn k src ~name:"sender" (fun () ->
             List.iter
               (fun (mode, stamp) ->
                 let bytes = Mach.Ktypes.page_size in
                 let a = Mach.Vm.allocate sys src ~bytes () in
                 Mach.Vm.write_stamp sys src ~addr:a stamp;
                 let b =
                   match mode with
                   | 0 ->
                       Mach.Vm.remap_move sys ~src_task:src ~addr:a ~bytes
                         ~dst_task:dst
                   | 1 ->
                       Mach.Vm.remap_cow sys ~src_task:src ~addr:a ~bytes
                         ~dst_task:dst
                   | _ ->
                       Mach.Vm.virtual_copy sys ~src_task:src ~addr:a ~bytes
                         ~dst_task:dst
                 in
                 expect (Mach.Vm.read_stamp sys dst ~addr:b = stamp);
                 if mode = 0 then
                   (* donation leaves the sender fresh zero-fill *)
                   expect (Mach.Vm.read_stamp sys src ~addr:a = 0);
                 Mach.Vm.write_stamp sys src ~addr:a (stamp + 1);
                 expect (Mach.Vm.read_stamp sys dst ~addr:b = stamp);
                 Mach.Vm.write_stamp sys dst ~addr:b (stamp + 2);
                 expect (Mach.Vm.read_stamp sys src ~addr:a = stamp + 1);
                 Mach.Vm.deallocate sys src ~addr:a;
                 Mach.Vm.deallocate sys dst ~addr:b)
               ops)
          : Mach.Ktypes.thread);
      Mach.Kernel.run k;
      !holds)

let suite =
  List.map qtest
    [
      cache_capacity;
      cache_hit_after_access;
      layout_no_overlap;
      event_queue_ordered;
      name_db_roundtrip;
      fat_names_consistent;
      hpfs_roundtrip;
      jfs_roundtrip;
      vm_residency_bounded;
      malloc_no_overlap;
      rights_conservation;
      remap_transfer_correct;
    ]
