(* Machcheck: the rights sanitizer, deadlock detector and
   buffer-lifetime sanitizer.

   Each checker gets seeded known-bad scenarios proving it fires and
   names the offender, plus clean-path tests proving it stays silent —
   including all four existing workloads (Table1, Micro, Ipc_stress,
   Fault_sweep) run end to end under an installed checker. *)

open Mach.Ktypes
module F = Fileserver

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let find_kind rep kind =
  List.filter (fun f -> f.Check.f_kind = kind) rep.Check.rep_findings

let checked_kernel () =
  let k = Test_util.kernel_on () in
  let chk = Check.create () in
  Mach.Sched.enable_checks k.Mach.Kernel.sys chk;
  (k, k.Mach.Kernel.sys, chk)

(* --- rights sanitizer: seeded known-bads -------------------------------- *)

let test_leaked_right () =
  let _k, sys, chk = checked_kernel () in
  let owner = Mach.Sched.task_create sys ~name:"owner" () in
  let user = Mach.Sched.task_create sys ~name:"user" () in
  let p = Mach.Port.allocate sys ~receiver:owner ~name:"leaky" in
  ignore (Mach.Port.insert_right sys user p Send_right : int);
  Mach.Port.destroy sys p;
  (* the receive right died with the port; [user]'s send right dangles *)
  let rep = Check.report chk in
  Alcotest.(check int) "one leak" 1 rep.Check.rep_leaked_rights;
  Alcotest.(check int) "user still shadows one right" 1
    (Mach.Mcheck.dead_rights sys user);
  Alcotest.(check int) "owner's receive right was reclaimed" 0
    (Mach.Mcheck.live_rights sys owner);
  Alcotest.(check int) "and really left the namespace" 0
    (Mach.Port.rights_held owner);
  match find_kind rep "leak" with
  | [ f ] ->
      Alcotest.(check bool) "names the task" true (contains f.Check.f_detail "user");
      Alcotest.(check bool) "names the port" true (contains f.Check.f_detail "leaky")
  | fs -> Alcotest.failf "expected exactly one leak finding, got %d" (List.length fs)

let test_double_free () =
  let _k, sys, chk = checked_kernel () in
  let owner = Mach.Sched.task_create sys ~name:"owner" () in
  let user = Mach.Sched.task_create sys ~name:"clumsy" () in
  let p = Mach.Port.allocate sys ~receiver:owner ~name:"p" in
  let name = Mach.Port.insert_right sys user p Send_right in
  Alcotest.(check bool) "first dealloc ok" true
    (Mach.Port.deallocate_right sys user name = Kern_success);
  Alcotest.(check bool) "second dealloc rejected" true
    (Mach.Port.deallocate_right sys user name = Kern_invalid_name);
  let rep = Check.report chk in
  Alcotest.(check int) "one double-free" 1 rep.Check.rep_right_double_frees;
  match find_kind rep "double-free" with
  | [ f ] ->
      Alcotest.(check bool) "names the task" true
        (contains f.Check.f_detail "clumsy")
  | fs ->
      Alcotest.failf "expected exactly one double-free finding, got %d"
        (List.length fs)

let test_downgrade () =
  (* The kernel itself never weakens a held right (PR 2's fix), so the
     kernel-driven path must stay silent... *)
  let _k, sys, chk = checked_kernel () in
  let owner = Mach.Sched.task_create sys ~name:"owner" () in
  let p = Mach.Port.allocate sys ~receiver:owner ~name:"p" in
  ignore (Mach.Port.insert_right sys owner p Send_once_right : int);
  Alcotest.(check int) "kernel upgrade-only insert is clean" 0
    (Check.report chk).Check.rep_right_downgrades;
  (* ...and the checker is what would catch a kernel regressing it:
     shadow a port space whose second insert records a weaker right. *)
  let bad = Check.create () in
  let space = Check.new_space bad in
  Check.right_inserted bad ~space ~task:7 ~tname:"victim" ~port:9 ~pname:"cap"
    ~right:Check.R_receive ~now:Check.R_receive;
  Check.right_inserted bad ~space ~task:7 ~tname:"victim" ~port:9 ~pname:"cap"
    ~right:Check.R_send_once ~now:Check.R_send_once;
  let rep = Check.report bad in
  Alcotest.(check int) "downgrade detected" 1 rep.Check.rep_right_downgrades;
  match find_kind rep "downgrade" with
  | [ f ] ->
      Alcotest.(check bool) "names the port" true (contains f.Check.f_detail "cap")
  | fs ->
      Alcotest.failf "expected exactly one downgrade finding, got %d"
        (List.length fs)

(* --- deadlock detector: seeded known-bads ------------------------------- *)

let[@machlint.allow "lock-order"] test_mutex_abba_cycle () =
  let k, sys, chk = checked_kernel () in
  let t = Mach.Sched.task_create sys ~name:"app" () in
  let m1 = Mach.Sync.mutex_create sys ~name:"m1" in
  let m2 = Mach.Sync.mutex_create sys ~name:"m2" in
  Test_util.spawn k t "t1" (fun () ->
      ignore (Mach.Sync.mutex_lock sys m1 : kern_return);
      Mach.Sched.yield ();
      ignore (Mach.Sync.mutex_lock sys m2 : kern_return));
  Test_util.spawn k t "t2" (fun () ->
      ignore (Mach.Sync.mutex_lock sys m2 : kern_return);
      Mach.Sched.yield ();
      ignore (Mach.Sync.mutex_lock sys m1 : kern_return));
  Mach.Kernel.run k;
  let rep = Check.report chk in
  Alcotest.(check int) "one wait cycle" 1 rep.Check.rep_wait_cycles;
  Alcotest.(check int) "both threads still in the graph" 2
    (Check.blocked_count chk);
  match find_kind rep "wait-cycle" with
  | [ f ] ->
      Alcotest.(check bool) "dumps both mutexes" true
        (contains f.Check.f_detail "sem(m1)"
        && contains f.Check.f_detail "sem(m2)");
      Alcotest.(check bool) "dumps the task/thread names" true
        (contains f.Check.f_detail "app.t1" && contains f.Check.f_detail "app.t2")
  | fs ->
      Alcotest.failf "expected exactly one cycle finding, got %d"
        (List.length fs)

let test_self_rpc_cycle () =
  let k, sys, chk = checked_kernel () in
  let srv = Mach.Sched.task_create sys ~name:"srv" () in
  let cl = Mach.Sched.task_create sys ~name:"cl" () in
  let p = Mach.Port.allocate sys ~receiver:srv ~name:"loopback" in
  Test_util.spawn k srv "serve" (fun () ->
      Mach.Rpc.serve sys p (fun _msg ->
          (* the handler calls its own service: it waits on itself *)
          ignore (Mach.Rpc.call sys p (simple_message ()));
          simple_message ()));
  Test_util.spawn k cl "caller" (fun () ->
      ignore (Mach.Rpc.call sys p (simple_message ())));
  Mach.Kernel.run k;
  let rep = Check.report chk in
  Alcotest.(check int) "self-call cycle" 1 rep.Check.rep_wait_cycles;
  match find_kind rep "wait-cycle" with
  | [ f ] ->
      Alcotest.(check bool) "names the service port" true
        (contains f.Check.f_detail "rpc-call(loopback)");
      Alcotest.(check bool) "names the server thread" true
        (contains f.Check.f_detail "srv.serve")
  | fs ->
      Alcotest.failf "expected exactly one cycle finding, got %d"
        (List.length fs)

(* --- deadlock detector: wakes must leave no stale edges ------------------ *)

let test_port_death_clears_edges () =
  let k, sys, chk = checked_kernel () in
  let t = Mach.Sched.task_create sys ~name:"rcv" () in
  let t2 = Mach.Sched.task_create sys ~name:"killer" () in
  let p = Mach.Port.allocate sys ~receiver:t ~name:"doomed" in
  let woken = ref false in
  Test_util.spawn k t "rcv" (fun () ->
      match Mach.Ipc.receive sys p with
      | Error Kern_port_dead -> woken := true
      | _ -> ());
  Test_util.spawn k t2 "killer" (fun () -> Mach.Port.destroy sys p);
  Mach.Kernel.run k;
  Alcotest.(check bool) "receiver woken by the dying port" true !woken;
  Alcotest.(check int) "no stale wait-for edges" 0 (Check.blocked_count chk);
  Alcotest.(check int) "and no findings" 0
    (Check.total_findings (Check.report chk))

let test_fault_kill_clears_edges () =
  (* a server crash injected mid-run wakes the blocked client with
     port-death; its wait-for edge must go with it *)
  let k, sys, chk = checked_kernel () in
  let plan = Mach.Fault.create ~seed:3 () in
  Mach.Fault.at_request plan ~port:"svc" ~n:1 Mach.Fault.Crash_server;
  sys.Mach.Sched.faults <- Some plan;
  let srv = Mach.Sched.task_create sys ~name:"srv" () in
  let cl = Mach.Sched.task_create sys ~name:"cl" () in
  let p = Mach.Port.allocate sys ~receiver:srv ~name:"svc" in
  Test_util.spawn k srv "serve" (fun () ->
      Mach.Rpc.serve sys p (fun _ -> simple_message ()));
  let got = ref None in
  Test_util.spawn k cl "caller" (fun () ->
      got :=
        Some (Mach.Rpc.call sys p ~deadline:50_000 (simple_message ())));
  Mach.Kernel.run k;
  (match !got with
  | Some (Error (Kern_port_dead | Kern_timed_out | Kern_aborted)) -> ()
  | Some (Ok _) -> Alcotest.fail "call to a crashed server succeeded"
  | Some (Error e) -> Alcotest.failf "odd error: %s" (kern_return_to_string e)
  | None -> Alcotest.fail "client never returned");
  Alcotest.(check int) "no stale wait-for edges after the kill" 0
    (Check.blocked_count chk);
  Alcotest.(check int) "no cycle findings" 0
    (Check.report chk).Check.rep_wait_cycles

let test_wrong_holder_unlock_audited () =
  let k, sys, chk = checked_kernel () in
  let t = Mach.Sched.task_create sys ~name:"app" () in
  let m = Mach.Sync.mutex_create sys ~name:"m" in
  let order = Buffer.create 8 in
  Test_util.spawn k t "holder" (fun () ->
      ignore (Mach.Sync.mutex_lock sys m : kern_return);
      Buffer.add_char order 'a';
      Mach.Sched.yield ();
      Mach.Sched.yield ();
      Mach.Sync.mutex_unlock sys m;
      Buffer.add_char order 'r');
  Test_util.spawn k t "thief" (fun () ->
      (* wrong-holder unlock: rejected before any state change, so the
         owner edge stays with the true holder *)
      (try
         Mach.Sync.mutex_unlock sys m;
         Alcotest.fail "wrong-holder unlock succeeded"
       with Kern_error Kern_invalid_argument -> Buffer.add_char order 'x');
      ignore (Mach.Sync.mutex_lock sys m : kern_return);
      Buffer.add_char order 'l';
      Mach.Sync.mutex_unlock sys m);
  Mach.Kernel.run k;
  Alcotest.(check string) "thief acquires only after the real unlock" "axrl"
    (Buffer.contents order);
  Alcotest.(check int) "graph drained" 0 (Check.blocked_count chk);
  Alcotest.(check int) "no findings" 0 (Check.total_findings (Check.report chk))

(* --- buffer-lifetime sanitizer: seeded known-bads ------------------------ *)

let test_buffer_double_release () =
  let k, _sys, chk = checked_kernel () in
  let kt = k.Mach.Kernel.ktext in
  let a = Mach.Ktext.buffer_alloc kt ~bytes:128 in
  Mach.Ktext.buffer_free kt a;
  Mach.Ktext.buffer_free kt a;
  let rep = Check.report chk in
  Alcotest.(check int) "double release detected" 1
    rep.Check.rep_buf_double_releases;
  match find_kind rep "double-release" with
  | [ f ] ->
      Alcotest.(check bool) "names the buffer" true
        (contains f.Check.f_detail (Printf.sprintf "0x%x" a))
  | fs ->
      Alcotest.failf "expected exactly one double-release finding, got %d"
        (List.length fs)

let test_buffer_use_after_release () =
  let k, _sys, chk = checked_kernel () in
  let kt = k.Mach.Kernel.ktext in
  let a = Mach.Ktext.buffer_alloc kt ~bytes:256 in
  Mach.Ktext.buffer_use kt a;  (* live: fine *)
  Mach.Ktext.buffer_free kt a;
  Mach.Ktext.buffer_use kt a;  (* retired: a kernel path on a stale handle *)
  let rep = Check.report chk in
  Alcotest.(check int) "use-after-release detected" 1
    rep.Check.rep_buf_use_after_release;
  Alcotest.(check int) "no double release" 0 rep.Check.rep_buf_double_releases

let test_buffer_clean_traffic () =
  (* sustained mach_msg traffic allocates and retires buffers constantly;
     none of it may trip the sanitizer *)
  let k, sys, chk = checked_kernel () in
  let srv = Mach.Sched.task_create sys ~name:"srv" () in
  let cl = Mach.Sched.task_create sys ~name:"cl" () in
  let p = Mach.Port.allocate sys ~receiver:srv ~name:"svc" in
  Test_util.spawn k srv "serve" (fun () ->
      Mach.Ipc.serve sys p (fun _ -> simple_message ()));
  Test_util.spawn k cl "cl" (fun () ->
      for _ = 1 to 50 do
        ignore (Mach.Ipc.call sys p (simple_message ~inline_bytes:256 ()))
      done;
      Mach.Port.destroy sys p);
  Mach.Kernel.run k;
  let rep = Check.report chk in
  Alcotest.(check bool) "buffers were shadowed" true
    (rep.Check.rep_buf_shadowed > 50);
  Alcotest.(check int) "no buffer findings" 0
    (rep.Check.rep_buf_double_releases + rep.Check.rep_buf_use_after_release);
  Alcotest.(check int) "no findings at all" 0
    (Check.total_findings rep)

(* --- remap checker: seeded known-bads ------------------------------------ *)

let[@machlint.allow "port-linearity"] test_remap_double_move () =
  let k, sys, chk = checked_kernel () in
  let src = Mach.Sched.task_create sys ~name:"donor" () in
  let dst = Mach.Sched.task_create sys ~name:"dst" () in
  let bytes = page_size in
  Test_util.run_in_thread k (fun () ->
      let a = Mach.Vm.allocate sys src ~bytes () in
      ignore (Mach.Vm.remap_move sys ~src_task:src ~addr:a ~bytes ~dst_task:dst : int);
      (* the range was donated; moving it again ships pages the task no
         longer owns *)
      ignore (Mach.Vm.remap_move sys ~src_task:src ~addr:a ~bytes ~dst_task:dst : int));
  let rep = Check.report chk in
  Alcotest.(check int) "two moves recorded" 2 rep.Check.rep_remap_moves;
  Alcotest.(check int) "one double move" 1 rep.Check.rep_double_moves;
  match find_kind rep "double-move" with
  | [ f ] ->
      Alcotest.(check bool) "names the task" true (contains f.Check.f_detail "donor")
  | fs ->
      Alcotest.failf "expected exactly one double-move finding, got %d"
        (List.length fs)

let[@machlint.allow "port-linearity"] test_remap_write_after_move () =
  let k, sys, chk = checked_kernel () in
  let src = Mach.Sched.task_create sys ~name:"scribbler" () in
  let dst = Mach.Sched.task_create sys ~name:"dst" () in
  let bytes = page_size in
  Test_util.run_in_thread k (fun () ->
      let a = Mach.Vm.allocate sys src ~bytes () in
      Mach.Vm.touch sys src ~addr:a ~write:true ~bytes ();
      ignore (Mach.Vm.remap_move sys ~src_task:src ~addr:a ~bytes ~dst_task:dst : int);
      (* the sender scribbles on the range it just donated *)
      Mach.Vm.touch sys src ~addr:a ~write:true ~bytes:8 ());
  let rep = Check.report chk in
  Alcotest.(check int) "one write-after-move" 1 rep.Check.rep_write_after_move;
  (match find_kind rep "write-after-move" with
  | [ f ] ->
      Alcotest.(check bool) "names the task" true
        (contains f.Check.f_detail "scribbler")
  | fs ->
      Alcotest.failf "expected exactly one write-after-move finding, got %d"
        (List.length fs));
  (* deallocating the range clears the tracking: a fresh allocation at
     the same address is innocent *)
  let k2, sys2, chk2 = checked_kernel () in
  Test_util.run_in_thread k2 (fun () ->
      let src2 = Mach.Sched.task_create sys2 ~name:"clean" () in
      let dst2 = Mach.Sched.task_create sys2 ~name:"dst" () in
      let a = Mach.Vm.allocate sys2 src2 ~bytes () in
      ignore (Mach.Vm.remap_move sys2 ~src_task:src2 ~addr:a ~bytes ~dst_task:dst2 : int);
      Mach.Vm.deallocate sys2 src2 ~addr:a;
      let b = Mach.Vm.allocate sys2 src2 ~bytes () in
      Mach.Vm.touch sys2 src2 ~addr:b ~write:true ~bytes ());
  Alcotest.(check int) "cleared range is silent" 0
    (Check.report chk2).Check.rep_write_after_move

let test_remap_mapout_eviction () =
  let k, sys, chk = checked_kernel () in
  let t = Mach.Sched.task_create sys ~name:"fs" () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  let cache = F.Block_cache.create k disk () in
  F.Block_cache.map_pool cache t;
  Test_util.run_in_thread k (fun () ->
      (* a page mapped out WITHOUT a pin, then the ring wraps over it *)
      (match F.Block_cache.pool_acquire cache ~pages:1 ~pin:false with
      | Some _ -> ()
      | None -> Alcotest.fail "pool acquire failed");
      match F.Block_cache.pool_acquire cache ~pages:16 ~pin:false with
      | Some _ -> ()
      | None -> Alcotest.fail "wrapping acquire failed");
  let rep = Check.report chk in
  Alcotest.(check int) "one unpinned eviction" 1 rep.Check.rep_mapout_evictions;
  (match find_kind rep "mapout-eviction" with
  | [ f ] ->
      Alcotest.(check bool) "without a pin" true
        (contains f.Check.f_detail "without a pin")
  | fs ->
      Alcotest.failf "expected exactly one mapout-eviction finding, got %d"
        (List.length fs));
  (* a pinned page blocks the ring instead of being stolen *)
  let k2, sys2, chk2 = checked_kernel () in
  let t2 = Mach.Sched.task_create sys2 ~name:"fs" () in
  let disk2 = k2.Mach.Kernel.machine.Machine.disk in
  let cache2 = F.Block_cache.create k2 disk2 () in
  F.Block_cache.map_pool cache2 t2;
  Test_util.run_in_thread k2 (fun () ->
      (match F.Block_cache.pool_acquire cache2 ~pages:1 ~pin:true with
      | Some _ -> ()
      | None -> Alcotest.fail "pinned acquire failed");
      match F.Block_cache.pool_acquire cache2 ~pages:16 ~pin:false with
      | Some _ -> Alcotest.fail "whole-ring acquire stole a pinned page"
      | None -> ());
  Alcotest.(check int) "pin held: no finding" 0
    (Check.report chk2).Check.rep_mapout_evictions;
  Alcotest.(check int) "one page still pinned" 1 (F.Block_cache.pool_pinned cache2)

let test_remap_zero_copy_clean () =
  (* the file server's zero-copy read/write protocol, end to end under
     the checker: donations recorded, nothing flagged *)
  let k, sys, chk = checked_kernel () in
  let runtime = Mk_services.Runtime.install k in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  F.Hpfs.mkfs disk ();
  let vfs = F.Vfs.create () in
  let cache = F.Block_cache.create k disk () in
  (match F.Hpfs.mount cache () with
  | Ok pfs -> (
      match F.Vfs.mount vfs ~at:"/os2" pfs with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail (F.Fs_types.fs_error_to_string e));
  let fs = F.File_server.start k runtime vfs () in
  let sem = F.Vfs.os2_semantics in
  let ok label = function
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: %s" label (F.Fs_types.fs_error_to_string e)
  in
  Test_util.run_in_thread k (fun () ->
      let h =
        ok "open" (F.File_server.Client.open_ fs sem ~path:"/os2/zc" ~create:true ())
      in
      let data = Bytes.init 8192 (fun i -> Char.chr (i land 0x7f)) in
      ignore (ok "write_zc" (F.File_server.Client.write_zc fs h data) : int);
      F.File_server.Client.seek fs h ~pos:0;
      let got = ok "read_zc" (F.File_server.Client.read_zc fs h ~bytes:8192) in
      Alcotest.(check int) "round trip length" 8192 (Bytes.length got);
      F.File_server.Client.close fs h);
  ignore sys;
  let rep = Check.report chk in
  Alcotest.(check bool) "donation observed" true (rep.Check.rep_remap_moves >= 1);
  Alcotest.(check int) "zero findings" 0 (Check.total_findings rep)

(* --- supervised restart: the dead incarnation holds nothing -------------- *)

let test_restart_zero_residual_rights () =
  let m = Machine.create Machine.Config.pentium_133 in
  let chk = Check.create () in
  Check.install chk;
  Fun.protect ~finally:Check.uninstall @@ fun () ->
  let boot = Mk_services.Bootstrap.boot m in
  let k = boot.Mk_services.Bootstrap.kernel in
  let sys = k.Mach.Kernel.sys in
  let runtime = boot.Mk_services.Bootstrap.runtime in
  let ns = Mk_services.Bootstrap.name_service_exn boot in
  let disk = m.Machine.disk in
  F.Hpfs.mkfs disk ();
  let vfs = F.Vfs.create () in
  let cache = F.Block_cache.create k disk () in
  (match F.Hpfs.mount cache () with
  | Ok pfs -> (
      match F.Vfs.mount vfs ~at:"/os2" pfs with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail (F.Fs_types.fs_error_to_string e));
  let fs = F.File_server.start k runtime vfs () in
  let sup = Mk_services.Supervisor.create k runtime ns in
  let plan = Mach.Fault.create ~seed:5 () in
  Mach.Fault.at_request plan ~port:"file-service" ~n:4 Mach.Fault.Crash_server;
  sys.Mach.Sched.faults <- Some plan;
  let old_port = F.File_server.port fs in
  let cached = ref (Some old_port) in
  let resolve () =
    match !cached with
    | Some p when not p.dead -> Some p
    | Some _ | None ->
        let p = Mk_services.Name_service.resolve_port ns ~path:"/services/file" in
        cached := p;
        p
  in
  (* the retry schedule must span a supervised restart, which includes
     crash recovery (fsck scan over the volume) *)
  F.File_server.set_retry fs ~attempts:8 ~deadline:1_000_000
    ~backoff:1_000_000 ~resolve ();
  let sem = F.Vfs.os2_semantics in
  let ok label = function
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: %s" label (F.Fs_types.fs_error_to_string e)
  in
  Test_util.run_in_thread k (fun () ->
      Mk_services.Supervisor.supervise sup ~path:"/services/file"
        ~port:old_port
        ~restart:(fun () -> F.File_server.restart fs)
        ();
      let h = ok "open" (F.File_server.Client.open_ fs sem ~path:"/os2/a.txt" ~create:true ()) in
      ignore (ok "write" (F.File_server.Client.write fs h (Bytes.make 64 'x')) : int);
      F.File_server.Client.close fs h;
      (* request 4 crashes the server; retry finds the restarted one *)
      let h2 = ok "open after crash" (F.File_server.Client.open_ fs sem ~path:"/os2/a.txt" ()) in
      ignore (ok "read after restart" (F.File_server.Client.read fs h2 ~bytes:64) : bytes);
      F.File_server.Client.close fs h2);
  Alcotest.(check int) "one supervised restart" 1
    (Mk_services.Supervisor.restarts sup);
  let fs_task =
    match (F.File_server.port fs).receiver with
    | Some t -> t
    | None -> Alcotest.fail "restarted file server has no receiver task"
  in
  (* the regression: the dead incarnation's rights must be gone — the
     only entries the server task still shadows name live ports *)
  Alcotest.(check int) "dead incarnation holds zero rights" 0
    (Mach.Mcheck.dead_rights sys fs_task);
  let rep = Check.report chk in
  Alcotest.(check int) "no leaks anywhere after crash+restart" 0
    rep.Check.rep_leaked_rights;
  Alcotest.(check int) "no findings at all" 0 (Check.total_findings rep);
  Alcotest.(check bool) "the run actually exercised the sanitizers" true
    (rep.Check.rep_right_transitions > 0 && rep.Check.rep_blocks_tracked > 0)

(* --- all four workloads under Machcheck ---------------------------------- *)

let test_table1_micro_clean () =
  let chk = Check.create () in
  Check.install chk;
  Fun.protect ~finally:Check.uninstall (fun () ->
      let spec = List.nth Workloads.Table1.all 0 in
      let native =
        let m = Machine.create Machine.Config.pentium_133 in
        Workloads.Api.of_monolithic (Monolithic.boot m ~fs_format:`Hpfs ())
      in
      ignore
        (Workloads.Table1.compare_systems
           ~wpos:(Workloads.Api.of_wpos (Wpos.boot ()))
           ~native spec
          : Workloads.Table1.row);
      ignore (Workloads.Micro.table2 ~iters:20 ()));
  let rep = Check.report chk in
  Alcotest.(check int) "table1+micro: zero findings" 0
    (Check.total_findings rep);
  Alcotest.(check bool) "rights traffic was watched" true
    (rep.Check.rep_right_transitions > 0)

let test_stress_workloads_clean_and_json () =
  (* the CI smoke: ipc-stress and fault-sweep under Machcheck, failing
     on any finding, with the machine-readable BENCH_check.json shape *)
  let ipc =
    Workloads.Ipc_stress.run ~workers:2 ~iters:40 ~sizes:[ 0; 512 ]
      ~checks:true ()
  in
  let flt =
    Workloads.Fault_sweep.run ~seed:7 ~clients:2 ~sessions:2
      ~rates:[ 20_000 ] ~checks:true ()
  in
  let rep_ipc =
    match ipc.Workloads.Ipc_stress.r_check with
    | Some r -> r
    | None -> Alcotest.fail "ipc-stress ran without a checker"
  in
  let rep_flt =
    match flt.Workloads.Fault_sweep.r_check with
    | Some r -> r
    | None -> Alcotest.fail "fault-sweep ran without a checker"
  in
  Alcotest.(check int) "ipc-stress: zero findings" 0
    (Check.total_findings rep_ipc);
  Alcotest.(check int) "fault-sweep: zero findings" 0
    (Check.total_findings rep_flt);
  Alcotest.(check bool) "fault-sweep tracked restarts' rights traffic" true
    (rep_flt.Check.rep_right_transitions > 0);
  (* the JSON the bench writes to BENCH_check.json parses and carries
     per-checker counts *)
  let module J = Workloads.Ipc_stress.Json in
  List.iter
    (fun rep ->
      match J.parse (Check.to_json rep) with
      | Error e -> Alcotest.failf "machcheck json does not parse: %s" e
      | Ok j ->
          List.iter
            (fun field ->
              match J.member field j with
              | Some (J.Num n) ->
                  Alcotest.(check (float 0.0)) (field ^ " is zero") 0.0 n
              | _ -> Alcotest.failf "missing numeric %s" field)
            [ "total_findings"; "leaked_rights"; "right_double_frees";
              "right_downgrades"; "wait_cycles"; "buf_double_releases";
              "buf_use_after_release" ];
          (match J.member "findings" j with
          | Some (J.Arr []) -> ()
          | _ -> Alcotest.fail "findings array not empty"))
    [ rep_ipc; rep_flt ];
  (* workload JSON embeds the same report *)
  match J.parse (Workloads.Ipc_stress.to_json ipc) with
  | Error e -> Alcotest.failf "ipc-stress json does not parse: %s" e
  | Ok j -> (
      match J.member "machcheck" j with
      | Some (J.Obj _) -> ()
      | _ -> Alcotest.fail "ipc-stress json lacks the machcheck section")

let suite =
  [
    Alcotest.test_case "rights: leaked right detected+named" `Quick
      test_leaked_right;
    Alcotest.test_case "rights: double free detected" `Quick test_double_free;
    Alcotest.test_case "rights: downgrade detected" `Quick test_downgrade;
    Alcotest.test_case "deadlock: AB-BA mutex cycle dumped" `Quick
      test_mutex_abba_cycle;
    Alcotest.test_case "deadlock: self-RPC cycle dumped" `Quick
      test_self_rpc_cycle;
    Alcotest.test_case "deadlock: port death leaves no stale edges" `Quick
      test_port_death_clears_edges;
    Alcotest.test_case "deadlock: fault kill leaves no stale edges" `Quick
      test_fault_kill_clears_edges;
    Alcotest.test_case "deadlock: wrong-holder unlock audited" `Quick
      test_wrong_holder_unlock_audited;
    Alcotest.test_case "buffers: double release detected" `Quick
      test_buffer_double_release;
    Alcotest.test_case "buffers: use after release detected" `Quick
      test_buffer_use_after_release;
    Alcotest.test_case "buffers: sustained traffic clean" `Quick
      test_buffer_clean_traffic;
    Alcotest.test_case "remap: double move detected" `Quick
      test_remap_double_move;
    Alcotest.test_case "remap: write after move detected" `Quick
      test_remap_write_after_move;
    Alcotest.test_case "remap: unpinned mapout eviction detected" `Quick
      test_remap_mapout_eviction;
    Alcotest.test_case "remap: zero-copy file protocol clean" `Quick
      test_remap_zero_copy_clean;
    Alcotest.test_case "restart leaves zero residual rights" `Quick
      test_restart_zero_residual_rights;
    Alcotest.test_case "table1+micro clean under machcheck" `Quick
      test_table1_micro_clean;
    Alcotest.test_case "stress workloads clean + BENCH_check json" `Quick
      test_stress_workloads_clean_and_json;
  ]
