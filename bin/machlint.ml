(* machlint — build-time static analysis for the multi-server tree.

   Usage: machlint [--quiet] [--bench [FILE]] [DIR|FILE]...
                                        (default roots: lib bin bench test)

   Findings print one per line as `file:line rule message`; exit status
   is 1 if anything was found.  `dune build @lint` runs this over the
   whole tree and is wired into `dune runtest`.

   --bench additionally writes BENCH_lint.json (or FILE): scan size,
   findings by rule and the deterministic analysis-cycle model, under
   the same provenance envelope as every other BENCH writer — so the
   A/B harness can regression-gate the analyzer like any experiment. *)

let bench_json r roots =
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n";
  Printf.bprintf b "  \"experiment\": \"machlint\",\n";
  Printf.bprintf b "  \"schema_version\": 2,\n";
  Printf.bprintf b "  \"run\": %s,\n" (Run_meta.json ());
  Printf.bprintf b "  \"roots\": [ %s ],\n"
    (String.concat ", " (List.map (Printf.sprintf "%S") roots));
  Printf.bprintf b "  \"files\": %d,\n" r.Lint.r_files;
  Printf.bprintf b "  \"definitions\": %d,\n" r.Lint.r_defs;
  Printf.bprintf b "  \"ast_nodes\": %d,\n" r.Lint.r_nodes;
  Printf.bprintf b "  \"analysis_cycles\": %d,\n" r.Lint.r_cycles;
  Printf.bprintf b "  \"findings\": {\n";
  let counts = Lint.Report.by_rule r.Lint.r_findings in
  List.iteri
    (fun i (rule, n) ->
      Printf.bprintf b "    %S: %d%s\n" rule n
        (if i = List.length counts - 1 then "" else ","))
    counts;
  Printf.bprintf b "  },\n";
  Printf.bprintf b "  \"findings_total\": %d\n"
    (List.length r.Lint.r_findings);
  Printf.bprintf b "}\n";
  Buffer.contents b

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quiet = List.mem "--quiet" args in
  let rec split_bench acc = function
    | "--bench" :: rest -> (
        match rest with
        | file :: rest' when Filename.check_suffix file ".json" ->
            (Some file, List.rev_append acc rest')
        | _ -> (Some "BENCH_lint.json", List.rev_append acc rest))
    | a :: rest -> split_bench (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let bench, args = split_bench [] args in
  let roots =
    match List.filter (fun a -> a <> "--quiet") args with
    | [] -> [ "lib"; "bin"; "bench"; "test" ]
    | l -> l
  in
  let r = Lint.run ~roots () in
  List.iter
    (fun f -> print_endline (Lint.Report.to_line f))
    r.Lint.r_findings;
  (match bench with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (bench_json r roots);
      close_out oc;
      if not quiet then
        Printf.eprintf "machlint: wrote %s\n%!" path);
  if not quiet then
    Printf.eprintf
      "machlint: %d files, %d definitions, %d AST nodes, %d findings\n%!"
      r.Lint.r_files r.Lint.r_defs r.Lint.r_nodes
      (List.length r.Lint.r_findings);
  exit (if r.Lint.r_findings = [] then 0 else 1)
