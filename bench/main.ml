(* The benchmark harness: one experiment per table/figure of the paper
   plus the ablations called out in DESIGN.md §8.

     dune exec bench/main.exe               — run everything
     dune exec bench/main.exe -- table2     — one experiment
     dune exec bench/main.exe -- --bechamel — host-time Bechamel suite

   Paper reference values are printed beside every measurement; absolute
   agreement is not expected (the substrate is a simulator, not the
   authors' testbed), the shape is what must hold. *)

let hr title =
  Printf.printf "\n==== %s %s\n" title
    (String.make (max 1 (66 - String.length title)) '=')

(* --- E1: Table 1 ----------------------------------------------------------- *)

let paper_table1 =
  [
    ("File Intensive 1", 2.96); ("File Intensive 2", 2.97);
    ("Graphics Low", 0.91); ("Graphics Medium", 0.87);
    ("Graphics High", 0.71); ("PM Tasking Medium", 0.82);
    ("PM Tasking High", 1.02);
  ]

let fresh_wpos_api () = Workloads.Api.of_wpos (Wpos.boot ())

let fresh_native_api () =
  (* OS/2 Warp on a 16 MB Pentium *)
  let m = Machine.create Machine.Config.pentium_133 in
  Workloads.Api.of_monolithic (Monolithic.boot m ~fs_format:`Hpfs ())

let table1 () =
  hr "E1 / Table 1: OS/2 performance, WPOS-to-native elapsed-time ratio";
  Printf.printf "%-20s %-24s %14s %14s %7s %7s\n" "Test" "Application content"
    "WPOS cycles" "native cycles" "ratio" "paper";
  let rows =
    List.map
      (fun spec ->
        let row =
          Workloads.Table1.compare_systems ~wpos:(fresh_wpos_api ())
            ~native:(fresh_native_api ()) spec
        in
        let paper = List.assoc spec.Workloads.Table1.id paper_table1 in
        Printf.printf "%-20s %-24s %14d %14d %7.2f %7.2f\n%!"
          row.Workloads.Table1.row_id spec.Workloads.Table1.app
          row.Workloads.Table1.wpos_cycles row.Workloads.Table1.native_cycles
          row.Workloads.Table1.ratio paper;
        row)
      Workloads.Table1.all
  in
  Printf.printf "%-20s %-24s %14s %14s %7.2f %7.2f\n" "Overall" "" "" ""
    (Workloads.Table1.overall rows)
    1.21

(* --- E2: Table 2 ------------------------------------------------------------ *)

let table2 () =
  hr "E2 / Table 2: trap versus RPC (Pentium performance counters)";
  let trap, rpc = Workloads.Micro.table2 () in
  let open Workloads.Micro in
  Printf.printf "%-14s %12s %12s %12s %8s\n" "" "instructions" "cycles"
    "bus cycles" "CPI";
  let line (r : table2_row) =
    Printf.printf "%-14s %12.0f %12.0f %12.0f %8.2f\n" r.t2_label
      r.t2_instructions r.t2_cycles r.t2_bus_cycles r.t2_cpi
  in
  line trap;
  line rpc;
  Printf.printf "%-14s %12.2f %12.2f %12.2f %8.2f\n" "ratio"
    (rpc.t2_instructions /. trap.t2_instructions)
    (rpc.t2_cycles /. trap.t2_cycles)
    (rpc.t2_bus_cycles /. trap.t2_bus_cycles)
    (rpc.t2_cpi /. trap.t2_cpi);
  Printf.printf
    "paper:         trap 465 / 970 / 218 / 2.0; RPC 1317 / 5163 / 1849 / 3.9;\n\
    \               ratios 2.83 / 5.32 / 8.48 / 1.95\n"

(* --- E3: the 2-10x IPC improvement ------------------------------------------ *)

let figure_ipc () =
  hr "E3: message passing, Mach 3.0 mach_msg vs the IBM RPC rework";
  let sizes = [ 0; 32; 128; 512; 1024; 4096; 16384; 65536 ] in
  let points = Workloads.Micro.ipc_sweep ~sizes () in
  Printf.printf "%10s %18s %18s %12s %16s\n" "bytes" "mach_msg cycles"
    "IBM RPC cycles" "improvement" "reply-port cache";
  List.iter
    (fun p ->
      let open Workloads.Micro in
      Printf.printf "%10d %18.0f %18.0f %11.2fx %9d/%-6d\n" p.sw_bytes
        p.sw_mach_ipc_cycles p.sw_ibm_rpc_cycles p.sw_improvement
        p.sw_reply_hits p.sw_reply_misses)
    points;
  Printf.printf "(reply-port cache column: hits/misses on the mach_msg side)\n";
  Printf.printf
    "paper: \"a two to ten times improvement in message-passing performance\n\
    \       with the improvement's magnitude depending primarily on the\n\
    \       number of bytes transmitted\"\n"

(* --- ipc-stress: sustained throughput, machine-readable ----------------------- *)

let ipc_stress () =
  hr "ipc-stress: sustained round-trip throughput under worker load";
  let r = Workloads.Ipc_stress.run () in
  let open Workloads.Ipc_stress in
  Printf.printf "%d worker pairs x %d round trips per point\n\n" r.r_workers
    r.r_iters;
  Printf.printf "%-10s %8s %20s %18s\n" "system" "bytes" "sim cycles/op"
    "host ns/op";
  List.iter
    (fun p ->
      Printf.printf "%-10s %8d %20.1f %18.1f\n" p.pt_system p.pt_bytes
        p.pt_sim_cycles_per_op p.pt_host_ns_per_op)
    r.r_points;
  Printf.printf
    "\nreply-port cache: %d hits / %d misses\n\
     kernel msg buffers: %d allocs, %d frees, %d arena recycles, peak %d bytes\n"
    r.r_reply_hits r.r_reply_misses r.r_kbuf_allocs r.r_kbuf_frees
    r.r_kbuf_recycles r.r_kbuf_peak_bytes;
  let json = to_json r in
  let oc = open_out "BENCH_ipc.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_ipc.json\n"

(* --- fault-sweep: resilience under injected server crashes ------------------- *)

let fault_sweep () =
  hr "fault-sweep: E1-style file workload under injected file-server crashes";
  let r = Workloads.Fault_sweep.run () in
  let open Workloads.Fault_sweep in
  Printf.printf
    "%d clients x %d edit sessions per point; seed %d; baseline %.0f cycles/op\n\n"
    r.r_clients r.r_sessions r.r_seed r.r_baseline_cycles_per_op;
  Printf.printf "%10s %10s %10s %10s %8s %8s %9s %8s %14s %12s\n" "crash_ppm"
    "completed" "crashes" "disk_flts" "restarts" "retries" "reopens" "gave_up"
    "cycles/op" "added/op";
  List.iter
    (fun p ->
      Printf.printf "%10d %6d/%-3d %10d %10d %8d %8d %9d %8b %14.0f %12.0f\n"
        p.p_crash_ppm p.p_completed p.p_ops p.p_injected_crashes
        p.p_disk_faults p.p_restarts p.p_retries p.p_reopens p.p_gave_up
        p.p_cycles_per_op
        (p.p_cycles_per_op -. r.r_baseline_cycles_per_op))
    r.r_points;
  let json = to_json r in
  let oc = open_out "BENCH_faults.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote BENCH_faults.json\n"

(* --- recovery-sweep: crash-point enumeration over the journalled FS ----------- *)

let recovery_sweep () =
  hr "recovery-sweep: power cut at every disk write, recover, verify";
  (* exhaustive: the cap sits far above the script's write count, so
     every single crash point is enumerated, none sampled *)
  let r = Workloads.Recovery_sweep.run ~max_points:1024 () in
  let open Workloads.Recovery_sweep in
  Printf.printf
    "%d scripted ops issue %d disk writes; %d crash point(s) checked%s\n\
     lost acknowledged writes: %d   torn recovered states: %d   (expected 0/0)\n\n"
    r.r_ops r.r_total_writes r.r_points_checked
    (if r.r_exhaustive then " (exhaustive)" else " (sampled)")
    r.r_lost_writes r.r_torn_states;
  Printf.printf "%8s %8s %10s %10s %10s %6s %6s %14s\n" "write" "acked"
    "replayed" "blocks" "discarded" "lost" "torn" "recovery_cyc";
  List.iter
    (fun p ->
      Printf.printf "%8d %8d %10d %10d %10d %6d %6d %14d\n" p.cp_write
        p.cp_acked p.cp_replayed_txns p.cp_replayed_blocks p.cp_discarded
        p.cp_lost p.cp_torn p.cp_recovery_cycles)
    r.r_points;
  Printf.printf "\njournal overhead vs the same engine without a journal:\n";
  Printf.printf "%6s %16s %16s %10s %12s %12s %10s\n" "ops" "plain cyc/op"
    "jfs cyc/op" "overhead" "plain wr" "jfs wr" "jrecords";
  List.iter
    (fun p ->
      Printf.printf "%6d %16.0f %16.0f %9.1f%% %12d %12d %10d\n" p.ov_ops
        p.ov_plain_cycles_per_op p.ov_jfs_cycles_per_op
        (if p.ov_plain_cycles_per_op > 0.0 then
           (p.ov_jfs_cycles_per_op -. p.ov_plain_cycles_per_op)
           /. p.ov_plain_cycles_per_op *. 100.0
         else 0.0)
        p.ov_plain_disk_writes p.ov_jfs_disk_writes p.ov_journal_records)
    r.r_overhead;
  Printf.printf "\nrecovery latency vs journal fill:\n";
  Printf.printf "%6s %10s %10s %10s %14s\n" "ops" "jrecords" "replayed"
    "blocks" "recovery_cyc";
  List.iter
    (fun p ->
      Printf.printf "%6d %10d %10d %10d %14d\n" p.lt_ops p.lt_journal_records
        p.lt_replayed_txns p.lt_replayed_blocks p.lt_recovery_cycles)
    r.r_latency;
  let json = to_json r in
  let oc = open_out "BENCH_recovery.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote BENCH_recovery.json\n";
  if r.r_lost_writes > 0 || r.r_torn_states > 0 then exit 1

(* --- smp-scaling: throughput vs cores on the multi-CPU machine ---------------- *)

let smp_scaling () =
  hr "smp-scaling: ipc-stress and the file-server workload at 1/2/4/8 CPUs";
  let r = Workloads.Smp_scaling.run () in
  let open Workloads.Smp_scaling in
  Printf.printf
    "ipc: %d pairs x %d round trips of %d bytes; fileserver: %d clients x %d \
     sessions\n\n"
    r.r_pairs r.r_iters r.r_bytes r.r_clients r.r_sessions;
  Printf.printf "%-10s %-10s %5s %12s %12s %8s %7s %7s %7s %8s %12s\n"
    "workload" "placement" "ncpus" "wall cycles" "ops/Mcycle" "speedup"
    "ipis" "xmsgs" "steals" "coh" "bus stall";
  List.iter
    (fun p ->
      Printf.printf "%-10s %-10s %5d %12d %12.1f %7.2fx %7d %7d %7d %8d %12d\n"
        p.sp_workload p.sp_placement p.sp_ncpus p.sp_wall_cycles
        p.sp_throughput p.sp_speedup p.sp_ipis p.sp_xmsgs p.sp_steals
        p.sp_coherence_misses p.sp_bus_stall_cycles)
    r.r_points;
  Printf.printf "\nmachine state (per-CPU caches/TLBs plus shared directory):\n";
  List.iter
    (fun (s : Machine.Footprint.machine_state) ->
      Printf.printf
        "  %d cpu(s): %d B/cpu cache + %d B/cpu tlb + %d B directory = %d B\n"
        s.Machine.Footprint.ms_ncpus s.Machine.Footprint.ms_cache_bytes_per_cpu
        s.Machine.Footprint.ms_tlb_bytes_per_cpu
        s.Machine.Footprint.ms_bus_directory_bytes
        s.Machine.Footprint.ms_total_bytes)
    r.r_state;
  let headline = ipc_speedup r ~ncpus:4 in
  Printf.printf "\ncolocated ipc speedup at 4 CPUs: %.2fx (acceptance: > 1.50x)\n"
    headline;
  let json = to_json r in
  let oc = open_out "BENCH_smp.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_smp.json\n";
  if headline < 1.5 then exit 1

(* --- vfs-walk: path resolution through the vnode layer and name cache --------- *)

let vfs_walk () =
  hr "vfs-walk: path walks through the vnode layer and the name cache";
  let r = Workloads.Vfs_walk.run ~checks:true () in
  let open Workloads.Vfs_walk in
  Printf.printf
    "%d-deep chain, %d wide files, %d hot repeats, %d concurrent CPUs\n\n"
    r.r_depth r.r_files r.r_repeats r.r_cpus;
  Printf.printf "%-12s %8s %14s %14s %10s %10s %9s\n" "phase" "ops" "cycles"
    "cycles/op" "hits" "misses" "hit rate";
  List.iter
    (fun p ->
      Printf.printf "%-12s %8d %14d %14.1f %10d %10d %8.1f%%\n" p.ph_name
        p.ph_ops p.ph_cycles p.ph_cycles_per_op p.ph_hits p.ph_misses
        (p.ph_hit_rate *. 100.0))
    r.r_phases;
  Printf.printf
    "\nhot hit rate: %.1f%% (acceptance: >= 90%%)\n\
     deep path: %.0f cycles/op cached vs %.0f raw -> %.2fx (acceptance: >= 2x)\n\
     concurrent lookups: %d/%d ok; compromises: %d\n"
    (r.r_hot_hit_rate *. 100.0)
    r.r_deep_cached_cycles_per_op r.r_deep_raw_cycles_per_op r.r_deep_speedup
    r.r_concurrent_ok r.r_concurrent_expected r.r_compromises;
  (match r.r_check with
  | Some rep ->
      Printf.printf "\nmachcheck:\n%s\n"
        (Format.asprintf "%a" Check.pp_report rep)
  | None -> ());
  let json = to_json r in
  let oc = open_out "BENCH_vfs.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_vfs.json\n";
  let findings =
    match r.r_check with Some rep -> Check.total_findings rep | None -> 0
  in
  if
    r.r_hot_hit_rate < 0.9 || r.r_deep_speedup < 2.0
    || r.r_concurrent_ok < r.r_concurrent_expected
    || findings > 0
  then exit 1

(* --- net-storm: the C1M workload against the netisr-sharded netserver --------- *)

let net_storm () =
  hr "net-storm: sharded netserver under firehose, skew, churn and floods";
  let r = Workloads.Net_storm.run ~checks:true () in
  let open Workloads.Net_storm in
  Printf.printf
    "%d endpoints, %d simulated clients, %d packets/point of %d bytes; %d \
     sessions/CPU; %d flood SYNs\n\n"
    r.nr_endpoints r.nr_clients r.nr_packets r.nr_bytes r.nr_sessions
    r.nr_flood_syns;
  Printf.printf "%-10s %5s %9s %12s %12s %8s %9s %9s %9s %6s %6s %6s %7s %6s %5s %7s\n"
    "phase" "ncpus" "ops" "wall cycles" "ops/Mcycle" "speedup" "p50" "p99"
    "fairness" "syn" "wire" "reap" "peak" "retry" "lost" "xshard";
  List.iter
    (fun p ->
      Printf.printf
        "%-10s %5d %9d %12d %12.1f %7.2fx %9d %9d %9.2f %6d %6d %6d %7d %6d %5d %7d\n"
        p.np_phase p.np_ncpus p.np_ops p.np_wall_cycles p.np_throughput
        p.np_speedup p.np_p50_cycles p.np_p99_cycles p.np_fairness
        p.np_syn_drops p.np_wire_drops p.np_reaped p.np_half_open_peak
        p.np_retries p.np_lost_acked p.np_xshard_msgs)
    r.nr_points;
  (match r.nr_check with
  | Some rep ->
      Printf.printf "\nmachcheck:\n%s\n"
        (Format.asprintf "%a" Check.pp_report rep)
  | None -> ());
  let speedup = steady_speedup r ~ncpus:4 in
  let tail = skew_tail_ratio r in
  let lost = total_lost r in
  let findings =
    match r.nr_check with Some rep -> Check.total_findings rep | None -> 0
  in
  Printf.printf
    "\nsteady packets/sec at 4 CPUs: %.2fx of 1 CPU (acceptance: >= 2.50x)\n\
     worst skewed p99/p50: %.2f (acceptance: <= 3.00)\n\
     lost acknowledged operations: %d (acceptance: 0)\n\
     machcheck findings: %d (acceptance: 0)\n"
    speedup tail lost findings;
  let json = to_json r in
  let oc = open_out "BENCH_net.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_net.json\n";
  if
    (List.mem 4 r.nr_cpus && speedup < 2.5)
    || tail > 3.0 || lost > 0 || findings > 0
  then exit 1

(* --- fault-storm: availability under live kills, wedges and crash loops ------- *)

let fault_storm () =
  hr "fault-storm: shard micro-reboots, supervised crashes and wedges under load";
  let r = Workloads.Fault_storm.run ~checks:true () in
  let open Workloads.Fault_storm in
  Printf.printf "seed %d\n\n" r.fr_seed;
  Printf.printf
    "%-12s %6s %6s %5s %9s %9s %8s %8s %4s %12s %9s %6s %4s %6s %6s %7s %9s\n"
    "scenario" "ops" "done" "lost" "avail_in" "avail_out" "in" "out" "win"
    "mttr_cyc" "restarts" "wkill" "deg" "drops" "reinc" "golden" "fastfail";
  List.iter
    (fun p ->
      Printf.printf
        "%-12s %6d %6d %5d %9.3f %9.3f %4d/%-3d %4d/%-3d %4d %12.0f %9d %6d \
         %4d %6d %6d %7b %9d\n"
        p.fp_scenario p.fp_ops p.fp_completed p.fp_lost p.fp_avail_in
        p.fp_avail_out p.fp_in_ok p.fp_in_ops p.fp_out_ok p.fp_out_ops
        p.fp_windows p.fp_mttr p.fp_restarts p.fp_wedge_kills p.fp_degraded
        p.fp_reboot_drops p.fp_reincarnations p.fp_golden_ok
        p.fp_fastfail_cycles)
    r.fr_points;
  (match r.fr_check with
  | Some rep ->
      Printf.printf "\nmachcheck:\n%s\n"
        (Format.asprintf "%a" Check.pp_report rep)
  | None -> ());
  let lost = total_lost r in
  let avail = min_availability r in
  let golden = golden_ok r in
  let fastfail = degraded_fastfail r in
  let findings =
    match r.fr_check with Some rep -> Check.total_findings rep | None -> 0
  in
  Printf.printf
    "\nacked operations lost: %d (acceptance: 0)\n\
     worst availability: %.3f (acceptance: >= 0.90)\n\
     untouched shards golden: %b (acceptance: true)\n\
     degraded fast-fail: %d cycles (acceptance: 0 <= x <= 100000)\n\
     machcheck findings: %d (acceptance: 0)\n"
    lost avail golden fastfail findings;
  let json = to_json r in
  let oc = open_out "BENCH_storm.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_storm.json\n";
  if
    lost > 0 || avail < 0.9 || (not golden) || fastfail < 0
    || fastfail > 100_000 || findings > 0
  then exit 1

(* --- ab: regression diff between two BENCH_*.json runs ------------------------ *)

let bench_ab ~a ~b ~threshold =
  hr (Printf.sprintf "ab: %s -> %s" a b);
  match Workloads.Bench_ab.compare_files ~a ~b ~threshold with
  | Error e ->
      Printf.eprintf "ab: %s\n" e;
      exit 2
  | Ok v ->
      Format.printf "%a@?" Workloads.Bench_ab.pp_verdict v;
      if v.Workloads.Bench_ab.v_regressions > 0 then exit 1

(* --- machcheck: the analysis layer over the stress workloads ------------------ *)

let machcheck () =
  hr "machcheck: rights / deadlock / buffer sanitizers over the stress workloads";
  let ipc = Workloads.Ipc_stress.run ~checks:true () in
  let flt = Workloads.Fault_sweep.run ~checks:true () in
  let rcv = Workloads.Recovery_sweep.run ~ops:8 ~max_points:32 ~checks:true () in
  let vfw = Workloads.Vfs_walk.run ~checks:true () in
  let net =
    Workloads.Net_storm.run ~cpus:[ 1; 4 ] ~endpoints:8 ~clients:400
      ~packets:1_200 ~sessions:4 ~flood_syns:48 ~victim_ops:3 ~checks:true ()
  in
  let stm =
    Workloads.Fault_storm.run ~endpoints:6 ~rounds:16 ~victim_ops:4 ~clients:2
      ~sessions:2 ~checks:true ()
  in
  let print name = function
    | Some rep ->
        Printf.printf "%s:\n%s\n" name
          (Format.asprintf "%a" Check.pp_report rep)
    | None -> ()
  in
  print "ipc-stress" ipc.Workloads.Ipc_stress.r_check;
  print "fault-sweep" flt.Workloads.Fault_sweep.r_check;
  print "recovery-sweep" rcv.Workloads.Recovery_sweep.r_check;
  print "vfs-walk" vfw.Workloads.Vfs_walk.r_check;
  print "net-storm" net.Workloads.Net_storm.nr_check;
  print "fault-storm" stm.Workloads.Fault_storm.fr_check;
  let total =
    List.fold_left
      (fun acc -> function
        | Some rep -> acc + Check.total_findings rep
        | None -> acc)
      0
      [
        ipc.Workloads.Ipc_stress.r_check;
        flt.Workloads.Fault_sweep.r_check;
        rcv.Workloads.Recovery_sweep.r_check;
        vfw.Workloads.Vfs_walk.r_check;
        net.Workloads.Net_storm.nr_check;
        stm.Workloads.Fault_storm.fr_check;
      ]
  in
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"machcheck\",\n";
  Buffer.add_string b "  \"schema_version\": 2,\n";
  Printf.bprintf b "  \"run\": %s,\n" (Workloads.Run_meta.json ());
  Printf.bprintf b "  \"total_findings\": %d,\n" total;
  Buffer.add_string b "  \"workloads\": {\n";
  (match ipc.Workloads.Ipc_stress.r_check with
  | Some rep -> Printf.bprintf b "    \"ipc-stress\": %s,\n" (Check.to_json rep)
  | None -> ());
  (match flt.Workloads.Fault_sweep.r_check with
  | Some rep -> Printf.bprintf b "    \"fault-sweep\": %s,\n" (Check.to_json rep)
  | None -> ());
  (match rcv.Workloads.Recovery_sweep.r_check with
  | Some rep ->
      Printf.bprintf b "    \"recovery-sweep\": %s,\n" (Check.to_json rep)
  | None -> ());
  (match vfw.Workloads.Vfs_walk.r_check with
  | Some rep -> Printf.bprintf b "    \"vfs-walk\": %s,\n" (Check.to_json rep)
  | None -> ());
  (match net.Workloads.Net_storm.nr_check with
  | Some rep -> Printf.bprintf b "    \"net-storm\": %s,\n" (Check.to_json rep)
  | None -> ());
  (match stm.Workloads.Fault_storm.fr_check with
  | Some rep -> Printf.bprintf b "    \"fault-storm\": %s\n" (Check.to_json rep)
  | None -> ());
  Buffer.add_string b "  }\n}\n";
  let oc = open_out "BENCH_check.json" in
  Buffer.output_buffer oc b;
  close_out oc;
  Printf.printf "total findings: %d (expected 0)\nwrote BENCH_check.json\n" total;
  if total > 0 then exit 1

(* --- E4: Figure 1 ------------------------------------------------------------- *)

let figure1 () =
  hr "E4 / Figure 1: the IBM Microkernel and Workplace OS structure";
  let w = Wpos.boot () in
  (* put some personality applications on top so the top layer is live *)
  let api = Workloads.Api.of_wpos w in
  api.Workloads.Api.spawn ~name:"works.exe" (fun api ->
      api.Workloads.Api.compute ~units:10);
  api.Workloads.Api.spawn ~name:"klondike.exe" (fun api ->
      api.Workloads.Api.draw ~x:10 ~y:10 ~w:71 ~h:96);
  (match w.Wpos.mvm with
  | Some mvm ->
      let vdm = Personalities.Mvm.create_vdm mvm ~name:"dos-box" in
      Personalities.Mvm.spawn_program mvm vdm ~name:"autoexec"
        [ Personalities.Mvm.G_compute 2000; Personalities.Mvm.G_io_port 0x3f8 ]
  | None -> ());
  Wpos.run w;
  Format.printf "%a@." Wpos.pp_figure1 w;
  (* name-space view of the same structure *)
  let ns = Wpos.name_service w in
  let db = Mk_services.Name_service.db ns in
  Printf.printf "name space: /servers = %s; /volumes = %s\n"
    (String.concat ", " (Mk_services.Name_db.list_children db ~path:"/servers"))
    (String.concat ", " (Mk_services.Name_db.list_children db ~path:"/volumes"))

(* --- E5: the factor of 3 ------------------------------------------------------- *)

let fileserver_factor () =
  hr "E5: file service via RPC file server vs in-kernel (the 'factor of 3')";
  let f = Workloads.Micro.fileserver_factor () in
  let open Workloads.Micro in
  Printf.printf
    "file-server RPC : %8.0f cycles/op\n\
     in-kernel trap  : %8.0f cycles/op\n\
     factor          : %8.2fx   (paper: \"about a factor of 3\")\n"
    f.fx_rpc_cycles_per_op f.fx_trap_cycles_per_op f.fx_factor

(* --- E6: fine-grained objects ---------------------------------------------------- *)

let finegrain () =
  hr "E6: fine-grained (Taligent) vs coarse (MK++) object networking";
  let run style =
    let m = Machine.create Machine.Config.pentium_133 in
    let k = Mach.Kernel.boot m in
    let net = Netserver.create k ~style in
    let app = Mach.Kernel.task_create k ~name:"app" () in
    let echo = Mach.Kernel.task_create k ~name:"echo" () in
    let datagrams = 200 in
    let cycles = ref 0 in
    ignore
      (Mach.Kernel.thread_spawn k echo ~name:"echo" (fun () ->
           match Netserver.udp_socket net ~port:7 with
           | Error e -> failwith e
           | Ok s ->
               for _ = 1 to datagrams do
                 let src, bytes = Netserver.udp_recv net s in
                 Netserver.udp_send net s ~dst_port:src ~bytes
               done)
        : Mach.Ktypes.thread);
    ignore
      (Mach.Kernel.thread_spawn k app ~name:"client" (fun () ->
           match Netserver.udp_socket net ~port:2000 with
           | Error e -> failwith e
           | Ok s ->
               let t0 = Machine.now m in
               for _ = 1 to datagrams do
                 Netserver.udp_send net s ~dst_port:7 ~bytes:256;
                 ignore (Netserver.udp_recv net s)
               done;
               cycles := (Machine.now m - t0) / datagrams)
        : Mach.Ktypes.thread);
    Mach.Kernel.run k;
    ( !cycles,
      Finegrain.vcalls (Netserver.objects net),
      Finegrain.memory_footprint_bytes (Netserver.objects net) )
  in
  let fc, fv, fm = run Finegrain.Fine_grained in
  let cc, cv, cm = run Finegrain.Coarse in
  Printf.printf "%-22s %16s %12s %16s\n" "" "cycles/datagram" "dispatches"
    "runtime bytes";
  Printf.printf "%-22s %16d %12d %16d\n" "fine-grained (shipped)" fc fv fm;
  Printf.printf "%-22s %16d %12d %16d\n" "coarse (MK++ style)" cc cv cm;
  Printf.printf
    "slowdown %.2fx, dispatch inflation %.1fx, memory inflation %.1fx\n"
    (float_of_int fc /. float_of_int cc)
    (float_of_int fv /. float_of_int cv)
    (float_of_int fm /. float_of_int cm);
  Printf.printf
    "paper: \"a very large number of very short virtual methods ... slowed the\n\
    \       system down ... C++ runtimes ... consumed considerable amounts of memory\"\n"

(* --- E7: two memory managers ------------------------------------------------------ *)

let memfootprint () =
  hr "E7: OS/2 commitment-oriented memory over the page-oriented kernel VM";
  let m = Machine.create Machine.Config.ppc604_133 in
  let services = Mk_services.Bootstrap.boot m in
  let k = services.Mk_services.Bootstrap.kernel in
  let sys = k.Mach.Kernel.sys in
  (* the same allocation trace both ways: a spread of object sizes, only
     half of each object ever touched *)
  let trace = List.init 40 (fun i -> 700 + (i * 1337 mod 20000)) in
  let os2_task = Mach.Kernel.task_create k ~name:"os2app" () in
  let os2_mem = Personalities.Os2_memory.create k os2_task in
  let lazy_task = Mach.Kernel.task_create k ~name:"pnapp" () in
  let done_ = ref false in
  ignore
    (Mach.Kernel.thread_spawn k lazy_task ~name:"driver" (fun () ->
         List.iter
           (fun bytes ->
             (* OS/2 path: committed eagerly, byte bookkeeping on top *)
             (match Personalities.Os2_memory.dos_alloc_mem os2_mem ~bytes with
             | Ok addr ->
                 Mach.Vm.touch sys os2_task ~addr ~write:true
                   ~bytes:(max 1 (bytes / 2)) ()
             | Error _ -> ());
             (* kernel-lazy path: pages appear only when touched *)
             let addr = Mach.Vm.allocate sys lazy_task ~bytes () in
             Mach.Vm.touch sys lazy_task ~addr ~write:true
               ~bytes:(max 1 (bytes / 2)) ())
           trace;
         done_ := true)
      : Mach.Ktypes.thread);
  Mach.Kernel.run k;
  assert !done_;
  let os2_bytes =
    Personalities.Os2_memory.os2_committed_bytes os2_mem
    + Personalities.Os2_memory.bookkeeping_bytes os2_mem
  in
  let lazy_bytes = Mach.Vm.committed_bytes lazy_task in
  let requested = List.fold_left ( + ) 0 trace in
  Printf.printf
    "requested by the application : %8d bytes\n\
     kernel-lazy resident         : %8d bytes\n\
     OS/2 committed + bookkeeping : %8d bytes\n\
     footprint inflation          : %8.2fx  (paper: \"greatly increased the\n\
    \                                         memory footprint\")\n"
    requested lazy_bytes os2_bytes
    (float_of_int os2_bytes /. float_of_int lazy_bytes)

(* --- E8: driver architectures ------------------------------------------------------- *)

let drivers () =
  hr "E8 (ablation): the same disk work under three driver architectures";
  let run arch =
    let m = Machine.create Machine.Config.pentium_133 in
    let k = Mach.Kernel.boot m in
    let rm = Drivers.Resource_manager.create k in
    let d =
      match Drivers.Disk_driver.start k rm ~arch with
      | Ok d -> d
      | Error e -> failwith e
    in
    let app = Mach.Kernel.task_create k ~name:"app" () in
    let requests = 50 in
    let cycles = ref 0 in
    ignore
      (Mach.Kernel.thread_spawn k app ~name:"reader" (fun () ->
           ignore (Drivers.Disk_driver.read_blocks d ~block:0 ~count:4);
           let t0 = Machine.now m in
           for i = 1 to requests do
             ignore
               (Drivers.Disk_driver.read_blocks d ~block:(i * 8 mod 1024)
                  ~count:4)
           done;
           cycles := (Machine.now m - t0) / requests)
        : Mach.Ktypes.thread);
    Mach.Kernel.run k;
    (!cycles, Drivers.Disk_driver.interrupts_taken d)
  in
  let uc, ui = run Drivers.Disk_driver.User_level in
  let kc, ki = run Drivers.Disk_driver.Kernel_bsd in
  let oc, oi = run Drivers.Disk_driver.Ooddm in
  (* elapsed time is dominated by media time; the architecture shows in
     the CPU overhead beyond it *)
  let g = Machine.Disk.default_geometry in
  let media =
    g.Machine.Disk.seek_cycles + (4 * g.Machine.Disk.transfer_cycles_per_block)
  in
  Printf.printf "%-22s %16s %12s %14s\n" "" "cycles/request" "interrupts"
    "CPU overhead";
  Printf.printf "%-22s %16d %12d %14d\n" "user-level (initial)" uc ui (uc - media);
  Printf.printf "%-22s %16d %12d %14d\n" "in-kernel BSD-style" kc ki (kc - media);
  Printf.printf "%-22s %16d %12d %14d\n" "OODDM (fine objects)" oc oi (oc - media);
  Printf.printf
    "CPU overhead vs in-kernel: user-level %.2fx, OODDM %.2fx\n\
     (media time %d cycles/request dominates all three end to end)\n"
    (float_of_int (uc - media) /. float_of_int (kc - media))
    (float_of_int (oc - media) /. float_of_int (kc - media))
    media

(* --- E9: naming ---------------------------------------------------------------------- *)

let nameservice () =
  hr "E9 (ablation): X.500-style name service vs the Release 2 simple one";
  let ops = 200 in
  let x500 =
    let m = Machine.create Machine.Config.pentium_133 in
    let b = Mk_services.Bootstrap.boot m in
    let ns = Mk_services.Bootstrap.name_service_exn b in
    let k = b.Mk_services.Bootstrap.kernel in
    let app = Mach.Kernel.task_create k ~name:"app" () in
    let cycles = ref 0 in
    ignore
      (Mach.Kernel.thread_spawn k app ~name:"app" (fun () ->
           let sys = k.Mach.Kernel.sys in
           let p = Mach.Port.allocate sys ~receiver:app ~name:"p" in
           for i = 1 to 20 do
             ignore
               (Mk_services.Name_service.bind ns
                  ~path:(Printf.sprintf "/servers/devices/dev%02d" i)
                  ~attributes:[ ("class", "char") ]
                  ~target:p ())
           done;
           let t0 = Machine.now m in
           for i = 1 to ops do
             ignore
               (Mk_services.Name_service.resolve_port ns
                  ~path:
                    (Printf.sprintf "/servers/devices/dev%02d" ((i mod 20) + 1)))
           done;
           cycles := (Machine.now m - t0) / ops)
        : Mach.Ktypes.thread);
    Mach.Kernel.run k;
    !cycles
  in
  let simple =
    let m = Machine.create Machine.Config.pentium_133 in
    let b =
      Mk_services.Bootstrap.boot ~naming:Mk_services.Bootstrap.Simple_naming m
    in
    let names = Option.get b.Mk_services.Bootstrap.simple_names in
    let k = b.Mk_services.Bootstrap.kernel in
    let app = Mach.Kernel.task_create k ~name:"app" () in
    let cycles = ref 0 in
    ignore
      (Mach.Kernel.thread_spawn k app ~name:"app" (fun () ->
           let sys = k.Mach.Kernel.sys in
           let p = Mach.Port.allocate sys ~receiver:app ~name:"p" in
           for i = 1 to 20 do
             ignore
               (Mk_services.Name_simple.register names
                  ~name:(Printf.sprintf "dev%02d" i) p)
           done;
           let t0 = Machine.now m in
           for i = 1 to ops do
             ignore
               (Mk_services.Name_simple.lookup names
                  ~name:(Printf.sprintf "dev%02d" ((i mod 20) + 1)))
           done;
           cycles := (Machine.now m - t0) / ops)
        : Mach.Ktypes.thread);
    Mach.Kernel.run k;
    !cycles
  in
  Printf.printf
    "X.500-style : %7d cycles/lookup (RPC + parse + walk + attributes)\n\
     simple      : %7d cycles/lookup (in-library flat table)\n\
     ratio       : %7.1fx  (why Release 2 added the simple service)\n"
    x500 simple
    (float_of_int x500 /. float_of_int simple)

(* --- harness --------------------------------------------------------------------------- *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("figure-ipc", figure_ipc);
    ("ipc-stress", ipc_stress);
    ("fault-sweep", fault_sweep);
    ("recovery-sweep", recovery_sweep);
    ("smp-scaling", smp_scaling);
    ("vfs-walk", vfs_walk);
    ("net-storm", net_storm);
    ("fault-storm", fault_storm);
    ("machcheck", machcheck);
    ("figure1", figure1);
    ("fileserver-factor", fileserver_factor);
    ("finegrain", finegrain);
    ("memfootprint", memfootprint);
    ("drivers", drivers);
    ("nameservice", nameservice);
  ]

(* --- smoke: tiny-iteration pass over the JSON writers ------------------------- *)

(* Exercised by the [bench-smoke] dune alias under [dune runtest]: every
   BENCH_*.json writer runs end to end at throwaway iteration counts, so
   a broken experiment or malformed JSON fails CI without paying for a
   full sweep.  The files land in dune's sandbox, not the repo copies. *)
let smoke () =
  hr "smoke: tiny-iteration pass over every BENCH_*.json writer";
  let write name json =
    let oc = open_out name in
    output_string oc json;
    close_out oc;
    (match Workloads.Ipc_stress.Json.parse json with
    | Ok _ -> ()
    | Error e -> failwith (Printf.sprintf "%s: invalid JSON: %s" name e));
    Printf.printf "wrote %s (%d bytes)\n" name (String.length json)
  in
  let ipc =
    Workloads.Ipc_stress.run ~workers:1 ~iters:3 ~sizes:[ 0; 4096 ]
      ~checks:true ()
  in
  write "BENCH_ipc.json" (Workloads.Ipc_stress.to_json ipc);
  let flt =
    Workloads.Fault_sweep.run ~clients:1 ~sessions:2 ~rates:[ 10_000 ]
      ~checks:true ()
  in
  write "BENCH_faults.json" (Workloads.Fault_sweep.to_json flt);
  let rcv =
    Workloads.Recovery_sweep.run ~ops:4 ~max_points:12 ~series:[ 4 ]
      ~checks:true ()
  in
  write "BENCH_recovery.json" (Workloads.Recovery_sweep.to_json rcv);
  let smp =
    Workloads.Smp_scaling.run ~cpus:[ 1; 2 ] ~pairs:2 ~iters:5 ~bytes:256
      ~clients:2 ~sessions:1 ~checks:true ()
  in
  write "BENCH_smp.json" (Workloads.Smp_scaling.to_json smp);
  let vfw =
    Workloads.Vfs_walk.run ~depth:5 ~files:6 ~repeats:2 ~cpus:2 ~checks:true ()
  in
  write "BENCH_vfs.json" (Workloads.Vfs_walk.to_json vfw);
  let net =
    Workloads.Net_storm.run ~cpus:[ 1; 2 ] ~endpoints:6 ~clients:50
      ~packets:400 ~sessions:2 ~flood_syns:30 ~victim_ops:2 ~checks:true ()
  in
  write "BENCH_net.json" (Workloads.Net_storm.to_json net);
  if Workloads.Net_storm.total_lost net > 0 then begin
    Printf.printf "net smoke lost acknowledged operations\n";
    exit 1
  end;
  let stm =
    Workloads.Fault_storm.run ~endpoints:6 ~rounds:16 ~victim_ops:3 ~clients:1
      ~sessions:2 ~checks:true ()
  in
  write "BENCH_storm.json" (Workloads.Fault_storm.to_json stm);
  if Workloads.Fault_storm.total_lost stm > 0 then begin
    Printf.printf "fault storm smoke lost acked operations\n";
    exit 1
  end;
  if not (Workloads.Fault_storm.golden_ok stm) then begin
    Printf.printf "fault storm smoke: untouched shards diverged\n";
    exit 1
  end;
  if
    rcv.Workloads.Recovery_sweep.r_lost_writes > 0
    || rcv.Workloads.Recovery_sweep.r_torn_states > 0
  then begin
    Printf.printf "recovery smoke found lost/torn state\n";
    exit 1
  end;
  let findings =
    List.fold_left
      (fun acc -> function
        | Some rep -> acc + Check.total_findings rep
        | None -> acc)
      0
      [
        ipc.Workloads.Ipc_stress.r_check;
        flt.Workloads.Fault_sweep.r_check;
        rcv.Workloads.Recovery_sweep.r_check;
        smp.Workloads.Smp_scaling.r_check;
        vfw.Workloads.Vfs_walk.r_check;
        net.Workloads.Net_storm.nr_check;
        stm.Workloads.Fault_storm.fr_check;
      ]
  in
  Printf.printf "machcheck findings across smoke runs: %d (expected 0)\n"
    findings;
  if findings > 0 then exit 1

(* host-time measurements of the experiment cores, one Bechamel test per
   table/figure *)
let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let quick name f = Test.make ~name (Staged.stage f) in
  let test =
    Test.make_grouped ~name:"wpos-repro"
      [
        quick "table2" (fun () ->
            ignore (Workloads.Micro.table2 ~iters:200 ()));
        quick "figure-ipc:1k" (fun () ->
            ignore (Workloads.Micro.ipc_sweep ~iters:50 ~sizes:[ 1024 ] ()));
        quick "fileserver-factor" (fun () ->
            ignore (Workloads.Micro.fileserver_factor ~ops:50 ()));
        quick "table1:file-intensive-1" (fun () ->
            let spec = List.nth Workloads.Table1.all 0 in
            ignore (Workloads.Table1.run (fresh_native_api ()) spec));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ ns_per_run ] ->
          Printf.printf "%-32s %12.0f ns/run (host time)\n" name ns_per_run
      | Some _ | None -> Printf.printf "%-32s (no estimate)\n" name)
    results

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "--bechamel" :: _ -> bechamel ()
  | _ :: "--smoke" :: _ -> smoke ()
  | _ :: "ab" :: a :: b :: rest ->
      let threshold =
        match rest with
        | "--threshold" :: v :: _ -> (
            match float_of_string_opt v with
            | Some f when f >= 0.0 -> f
            | _ ->
                Printf.eprintf "ab: bad threshold %S\n" v;
                exit 2)
        | _ -> 0.05
      in
      bench_ab ~a ~b ~threshold
  | _ :: "ab" :: _ ->
      Printf.eprintf
        "usage: main.exe ab A.json B.json [--threshold 0.05]\n\
         exits 1 when B regresses against A past the threshold\n";
      exit 2
  | _ :: name :: _ -> (
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
  | _ -> List.iter (fun (_, f) -> f ()) experiments
