examples/driver_models.ml: Drivers List Mach Machine Option Printf
