examples/file_server_tour.mli:
