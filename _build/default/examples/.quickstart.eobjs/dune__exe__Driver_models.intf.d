examples/driver_models.mli:
