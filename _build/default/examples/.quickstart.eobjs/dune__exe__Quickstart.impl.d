examples/quickstart.ml: Bytes Fileserver Fmt Mach Machine Personalities Printf Wpos
