examples/quickstart.mli:
