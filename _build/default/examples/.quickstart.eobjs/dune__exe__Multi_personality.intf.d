examples/multi_personality.mli:
