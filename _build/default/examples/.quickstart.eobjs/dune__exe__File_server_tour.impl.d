examples/file_server_tour.ml: Bytes File_server Fileserver Fs_types List Mach Printf Result Vfs Wpos
