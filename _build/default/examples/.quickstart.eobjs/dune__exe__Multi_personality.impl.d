examples/multi_personality.ml: Bytes Fileserver Format List Mach Mk_services Netserver Personalities Printf String Wpos
