(* The three device-driver architectures the project went through, doing
   identical work, plus the hardware resource manager's request/yield/
   grant protocol.

     dune exec examples/driver_models.exe *)

let () =
  Printf.printf "%-24s %14s %14s %12s\n" "architecture" "cycles/req"
    "CPU overhead" "interrupts";
  let media =
    let g = Machine.Disk.default_geometry in
    g.Machine.Disk.seek_cycles + (4 * g.Machine.Disk.transfer_cycles_per_block)
  in
  List.iter
    (fun (label, arch) ->
      let m = Machine.create Machine.Config.pentium_133 in
      let k = Mach.Kernel.boot m in
      let rm = Drivers.Resource_manager.create k in
      let d =
        match Drivers.Disk_driver.start k rm ~arch with
        | Ok d -> d
        | Error e -> failwith e
      in
      let app = Mach.Kernel.task_create k ~name:"app" () in
      let per_req = ref 0 in
      ignore
        (Mach.Kernel.thread_spawn k app ~name:"reader" (fun () ->
             ignore (Drivers.Disk_driver.read_blocks d ~block:0 ~count:4);
             let t0 = Machine.now m in
             for i = 1 to 24 do
               ignore
                 (Drivers.Disk_driver.read_blocks d ~block:(i * 16) ~count:4)
             done;
             per_req := (Machine.now m - t0) / 24)
          : Mach.Ktypes.thread);
      Mach.Kernel.run k;
      Printf.printf "%-24s %14d %14d %12d\n" label !per_req (!per_req - media)
        (Drivers.Disk_driver.interrupts_taken d))
    [
      ("user-level + reflection", Drivers.Disk_driver.User_level);
      ("in-kernel BSD-style", Drivers.Disk_driver.Kernel_bsd);
      ("OODDM fine objects", Drivers.Disk_driver.Ooddm);
    ];

  (* the resource manager arbitrating a conflict *)
  print_newline ();
  let m = Machine.create Machine.Config.pentium_133 in
  let k = Mach.Kernel.boot m in
  let rm = Drivers.Resource_manager.create k in
  let sound_grant =
    Drivers.Resource_manager.request rm ~driver:"sound"
      (Drivers.Resource_manager.Irq_line 5)
      ~on_yield:(fun () -> true)  (* polite: yields when asked *)
      ()
  in
  (match sound_grant with
  | Ok _ -> Printf.printf "sound granted irq 5\n"
  | Error e -> Printf.printf "sound: %s\n" e);
  (match
     Drivers.Resource_manager.request rm ~driver:"scanner"
       (Drivers.Resource_manager.Irq_line 5)
       ()
   with
  | Ok _ ->
      Printf.printf "scanner requested irq 5: sound yielded, scanner granted\n"
  | Error e -> Printf.printf "scanner: %s\n" e);
  Printf.printf "irq 5 holder: %s; yields requested: %d; grants issued: %d\n"
    (Option.value ~default:"none"
       (Drivers.Resource_manager.holder rm (Drivers.Resource_manager.Irq_line 5)))
    (Drivers.Resource_manager.yields_requested rm)
    (Drivers.Resource_manager.grants_issued rm)
