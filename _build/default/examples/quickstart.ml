(* Quickstart: boot Workplace OS, run an OS/2 program that uses the file
   server and draws on the screen, and print what happened.

     dune exec examples/quickstart.exe *)

let () =
  (* the default configuration is the paper's WPOS machine: a 133 MHz
     PowerPC 604 with 64 MB *)
  let w = Wpos.boot () in
  Printf.printf "booted: %s\n"
    (Fmt.str "%a" Machine.Config.pp w.Wpos.machine.Machine.config);

  let os2 = w.Wpos.os2 in
  let fs = w.Wpos.file_server in
  let sem = Fileserver.Vfs.os2_semantics in

  (* an OS/2 process: a microkernel task + doscalls shared libraries *)
  let _process =
    Personalities.Os2.create_process os2 ~name:"hello.exe" ~entry:(fun p ->
        (* write a file through doscalls -> RPC -> file server -> HPFS *)
        (match
           Personalities.Os2.dos_open os2 p ~path:"/os2/hello.txt"
             ~create:true ()
         with
        | Ok h ->
            (match
               Personalities.Os2.dos_write os2 p h
                 (Bytes.of_string "hello from the OS/2 personality")
             with
            | Ok n -> Printf.printf "wrote %d bytes via the file server\n" n
            | Error e ->
                Printf.printf "write failed: %s\n"
                  (Fileserver.Fs_types.fs_error_to_string e));
            Personalities.Os2.dos_close os2 p h
        | Error e ->
            Printf.printf "open failed: %s\n"
              (Fileserver.Fs_types.fs_error_to_string e));
        (* draw through Presentation Manager: pure user level *)
        let pm = w.Wpos.pm in
        let win = Personalities.Pm.win_create pm p ~x:100 ~y:80 ~w:200 ~h:120 in
        Personalities.Pm.gpi_fill pm win ~pixel:'*')
  in
  Wpos.run w;

  (* verify through an independent path: a personality-neutral task using
     the client library directly *)
  let checker = Mach.Kernel.task_create w.Wpos.kernel ~name:"checker" () in
  ignore
    (Mach.Kernel.thread_spawn w.Wpos.kernel checker ~name:"check" (fun () ->
         match
           Fileserver.File_server.Client.stat fs sem ~path:"/os2/hello.txt"
         with
         | Ok st ->
             Printf.printf "file server reports %d bytes on disk\n"
               st.Fileserver.Fs_types.st_size
         | Error e ->
             Printf.printf "stat failed: %s\n"
               (Fileserver.Fs_types.fs_error_to_string e))
      : Mach.Ktypes.thread);
  Wpos.run w;
  Printf.printf "pixels drawn: %d\n"
    (Machine.Framebuffer.pixels_written
       w.Wpos.machine.Machine.framebuffer);
  Printf.printf "elapsed simulated time: %d cycles (%.2f ms at %d MHz)\n"
    (Machine.now w.Wpos.machine)
    (float_of_int (Machine.now w.Wpos.machine)
    /. float_of_int w.Wpos.machine.Machine.config.Machine.Config.cpu_mhz
    /. 1000.)
    w.Wpos.machine.Machine.config.Machine.Config.cpu_mhz
