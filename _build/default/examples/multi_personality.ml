(* Multiple operating-system personalities running concurrently on one
   microkernel — the project's headline goal.  An OS/2 program, a DOS
   box (MVM, with the PowerPC block translator), and a PN-native server
   all share the machine, the file server and the single rooted name
   space.

     dune exec examples/multi_personality.exe *)

let () =
  let w = Wpos.boot () in
  let kernel = w.Wpos.kernel in
  let os2 = w.Wpos.os2 in
  let fs = w.Wpos.file_server in
  let log = ref [] in
  let say fmt = Printf.ksprintf (fun s -> log := s :: !log) fmt in

  (* 1. an OS/2 process writing through doscalls *)
  let _p =
    Personalities.Os2.create_process os2 ~name:"report.exe" ~entry:(fun p ->
        match
          Personalities.Os2.dos_open os2 p ~path:"/os2/report.txt"
            ~create:true ()
        with
        | Ok h ->
            ignore
              (Personalities.Os2.dos_write os2 p h
                 (Bytes.of_string "quarterly numbers"));
            Personalities.Os2.dos_close os2 p h;
            say "os2: report.txt written"
        | Error _ -> say "os2: write failed")
  in

  (* 2. a DOS program in an MVM virtual machine: compute bursts hit the
     translator, INT 21h calls reach the same file server *)
  (match w.Wpos.mvm with
  | Some mvm ->
      let vdm = Personalities.Mvm.create_vdm mvm ~name:"dosbox" in
      Personalities.Mvm.spawn_program mvm vdm ~name:"lotus.exe"
        Personalities.Mvm.
          [
            G_compute 5000; G_int21_write 2048; G_compute 3000;
            G_io_port 0x3da; G_dpmi_switch; G_compute 2000;
            G_int21_read 2048;
          ];
      say "mvm: dos program queued"
  | None -> say "mvm: disabled");

  (* 3. a personality-neutral task talking to the networking service *)
  let pn_task = Mach.Kernel.task_create kernel ~name:"pn-daemon" () in
  ignore
    (Mach.Kernel.thread_spawn kernel pn_task ~name:"udp-echo" (fun () ->
         let net = w.Wpos.net in
         match Netserver.udp_socket net ~port:7 with
         | Error e -> say "pn: %s" e
         | Ok s ->
             let src, n = Netserver.udp_recv net s in
             Netserver.udp_send net s ~dst_port:src ~bytes:n;
             say "pn: echoed %d bytes" n)
      : Mach.Ktypes.thread);
  ignore
    (Mach.Kernel.thread_spawn kernel pn_task ~name:"udp-client" (fun () ->
         let net = w.Wpos.net in
         match Netserver.udp_socket net ~port:9000 with
         | Error e -> say "pn: %s" e
         | Ok s ->
             Netserver.udp_send net s ~dst_port:7 ~bytes:128;
             ignore (Netserver.udp_recv net s))
      : Mach.Ktypes.thread);

  Wpos.run w;

  List.iter print_endline (List.rev !log);
  (match w.Wpos.mvm with
  | Some mvm -> Printf.printf "mvm: %d traps reflected to the VDM libraries\n"
                  (Personalities.Mvm.traps_reflected mvm)
  | None -> ());

  (* one rooted tree of names spanning everything *)
  let db = Mk_services.Name_service.db (Wpos.name_service w) in
  Printf.printf "name space under /servers: %s\n"
    (String.concat ", " (Mk_services.Name_db.list_children db ~path:"/servers"));
  Printf.printf "file server served %d requests across personalities\n"
    (Fileserver.File_server.requests_served fs);
  Format.printf "%a@." Wpos.pp_figure1 w
