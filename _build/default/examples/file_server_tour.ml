(* A tour of the personality-neutral file server: three on-disk formats
   under one vnode layer, the union-semantics compromises the paper
   describes, port-per-open-file, and mapped-buffer reads.

     dune exec examples/file_server_tour.exe *)

let pr fmt = Printf.printf fmt

let show label = function
  | Ok _ -> pr "  %-46s ok\n" label
  | Error e ->
      pr "  %-46s %s\n" label (Fileserver.Fs_types.fs_error_to_string e)

let () =
  let w = Wpos.boot () in
  let fs = w.Wpos.file_server in
  let vfs = w.Wpos.vfs in
  pr "mounted volumes:\n";
  List.iter
    (fun (at, format) -> pr "  %-8s %s\n" at format)
    (Fileserver.Vfs.mounts vfs);

  let app = Mach.Kernel.task_create w.Wpos.kernel ~name:"tour" () in
  ignore
    (Mach.Kernel.thread_spawn w.Wpos.kernel app ~name:"tour" (fun () ->
         let open Fileserver in
         let unixish = Vfs.unix_semantics in
         let os2ish = Vfs.os2_semantics in

         pr "\nFAT keeps its 1981 name rules (the paper's example):\n";
         show "os2 client creates /c/CONFIG.SYS"
           (File_server.Client.open_ fs os2ish ~path:"/c/CONFIG.SYS"
              ~create:true ()
           |> Result.map (fun h -> File_server.Client.close fs h));
         show "unix client wants /c/long-file-name.conf"
           (File_server.Client.open_ fs unixish ~path:"/c/long-file-name.conf"
              ~create:true ()
           |> Result.map (fun h -> File_server.Client.close fs h));

         pr "\nHPFS folds case (a counted compromise for UNIX clients):\n";
         let before = Vfs.compromises vfs in
         show "unix client creates /os2/Notes"
           (File_server.Client.open_ fs unixish ~path:"/os2/Notes"
              ~create:true ()
           |> Result.map (fun h -> File_server.Client.close fs h));
         show "unix client opens /os2/NOTES (folded!)"
           (File_server.Client.open_ fs unixish ~path:"/os2/NOTES" ()
           |> Result.map (fun h -> File_server.Client.close fs h));
         pr "  semantic compromises taken so far: %d (+%d here)\n"
           (Vfs.compromises vfs)
           (Vfs.compromises vfs - before);

         pr "\nJFS is honestly case-sensitive and journalled:\n";
         show "unix client creates /aix/Notes"
           (File_server.Client.open_ fs unixish ~path:"/aix/Notes"
              ~create:true ()
           |> Result.map (fun h -> File_server.Client.close fs h));
         (match File_server.Client.open_ fs unixish ~path:"/aix/NOTES" () with
         | Error Fs_types.E_not_found -> pr "  /aix/NOTES correctly not found\n"
         | Error e -> pr "  unexpected: %s\n" (Fs_types.fs_error_to_string e)
         | Ok h -> File_server.Client.close fs h; pr "  unexpectedly found!\n");

         pr "\nports manage open files:\n";
         (match
            File_server.Client.open_ fs os2ish ~path:"/os2/data" ~create:true ()
          with
         | Ok h ->
             pr "  open files (each holds a port): %d\n"
               (File_server.open_files fs);
             ignore (File_server.Client.write fs h (Bytes.make 8192 'd'));
             File_server.Client.seek fs h ~pos:0;
             (* mapped read: first call maps the shared buffer object *)
             (match File_server.Client.read_mapped fs h ~bytes:4096 with
             | Ok n -> pr "  mapped-buffer read returned %d bytes, no copy\n" n
             | Error e -> pr "  %s\n" (Fs_types.fs_error_to_string e));
             File_server.Client.close fs h
         | Error e -> pr "  %s\n" (Fs_types.fs_error_to_string e));
         pr "  open files after close: %d\n" (File_server.open_files fs))
      : Mach.Ktypes.thread);
  Wpos.run w;
  pr "\nfile server handled %d requests total\n"
    (Fileserver.File_server.requests_served fs)
