let () =
  let m = Machine.create Machine.Config.pentium_133 in
  let mono = Monolithic.boot m ~fs_format:`Hpfs () in
  let api = Workloads.Api.of_monolithic mono in
  let spec = List.nth Workloads.Table1.all 0 in
  let t0 = Machine.now m in
  let c = Workloads.Table1.run api spec in
  Printf.printf "elapsed %d (run says %d), disk served %d, disk busy %b\n"
    (Machine.now m - t0) c
    (Machine.Disk.requests_served m.Machine.disk)
    (Machine.Disk.busy m.Machine.disk);
  let p = Machine.Perf.snapshot (Machine.Cpu.perf m.Machine.cpu) in
  Format.printf "%a@." Machine.Perf.pp p
