(* Boot Workplace OS and print the Figure 1 system inventory, the
   physical layout and the name space.

     dune exec bin/wpos_boot.exe            -- the default (PPC/64MB) config
     dune exec bin/wpos_boot.exe -- pentium -- the Table 2 machine *)

let () =
  let config =
    match Array.to_list Sys.argv with
    | _ :: "pentium" :: _ ->
        { Wpos.default_config with
          Wpos.machine_config = Machine.Config.pentium_133 }
    | _ -> Wpos.default_config
  in
  let w = Wpos.boot ~config () in
  (* a touch of life in each personality *)
  let api = Workloads.Api.of_wpos w in
  api.Workloads.Api.spawn ~name:"works.exe" (fun api ->
      api.Workloads.Api.compute ~units:50);
  (match w.Wpos.mvm with
  | Some mvm ->
      let vdm = Personalities.Mvm.create_vdm mvm ~name:"dos-box" in
      Personalities.Mvm.spawn_program mvm vdm ~name:"command.com"
        [ Personalities.Mvm.G_compute 1000 ]
  | None -> ());
  Wpos.run w;
  Format.printf "%a@." Wpos.pp_figure1 w;
  print_newline ();
  Format.printf "%a@." Machine.pp_inventory w.Wpos.machine;
  print_newline ();
  let db = Mk_services.Name_service.db (Wpos.name_service w) in
  List.iter
    (fun top ->
      Printf.printf "/%s: %s\n" top
        (String.concat ", "
           (Mk_services.Name_db.list_children db ~path:("/" ^ top))))
    [ "servers"; "volumes" ]
