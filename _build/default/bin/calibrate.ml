(* Calibration probe for Table 2: measures the thread_self trap and a
   32-byte RPC in steady state and prints the counter readings next to
   the paper's numbers. *)

let () =
  let m = Machine.create Machine.Config.pentium_133 in
  let k = Mach.Kernel.boot m in
  let sys = k.Mach.Kernel.sys in
  let client =
    Mach.Kernel.task_create k ~name:"client" ~personality:"bench" ()
  in
  let server =
    Mach.Kernel.task_create k ~name:"server" ~personality:"bench" ()
  in
  let port = Mach.Port.allocate sys ~receiver:server ~name:"svc" in
  let _srv =
    Mach.Kernel.thread_spawn k server ~name:"srv" (fun () ->
        Mach.Rpc.serve sys port (fun _req -> Mach.Ktypes.simple_message ()))
  in
  let trap_result = ref Machine.Perf.zero in
  let rpc_result = ref Machine.Perf.zero in
  let iters = 2000 in
  let _cl =
    Mach.Kernel.thread_spawn k client ~name:"cl" (fun () ->
        (* warm *)
        for _ = 1 to 200 do
          ignore (Mach.Trap.thread_self sys)
        done;
        let t0 = Machine.Perf.snapshot (Machine.Cpu.perf m.Machine.cpu) in
        for _ = 1 to iters do
          ignore (Mach.Trap.thread_self sys)
        done;
        let t1 = Machine.Perf.snapshot (Machine.Cpu.perf m.Machine.cpu) in
        trap_result := Machine.Perf.diff t1 t0;
        (* warm RPC *)
        for _ = 1 to 200 do
          ignore
            (Mach.Rpc.call sys port
               (Mach.Ktypes.simple_message ~inline_bytes:32 ()))
        done;
        let r0 = Machine.Perf.snapshot (Machine.Cpu.perf m.Machine.cpu) in
        for _ = 1 to iters do
          ignore
            (Mach.Rpc.call sys port
               (Mach.Ktypes.simple_message ~inline_bytes:32 ()))
        done;
        let r1 = Machine.Perf.snapshot (Machine.Cpu.perf m.Machine.cpu) in
        rpc_result := Machine.Perf.diff r1 r0;
        Mach.Port.destroy sys port)
  in
  Mach.Kernel.run k;
  let per s =
    let open Machine.Perf in
    ( float_of_int s.instructions /. float_of_int iters,
      float_of_int s.cycles /. float_of_int iters,
      float_of_int s.bus_cycles /. float_of_int iters,
      cpi s,
      float_of_int s.icache_misses /. float_of_int iters,
      float_of_int s.tlb_misses /. float_of_int iters )
  in
  let ti, tc, tb, tcpi, tim, ttm = per !trap_result in
  let ri, rc, rb, rcpi, rim, rtm = per !rpc_result in
  Printf.printf "%-14s %10s %10s %10s %6s %8s %8s\n" "" "inst" "cycles"
    "bus" "CPI" "I$miss" "TLBmiss";
  Printf.printf "%-14s %10.0f %10.0f %10.0f %6.2f %8.1f %8.1f\n"
    "thread_self" ti tc tb tcpi tim ttm;
  Printf.printf "%-14s %10.0f %10.0f %10.0f %6.2f %8.1f %8.1f\n"
    "32-byte RPC" ri rc rb rcpi rim rtm;
  Printf.printf "%-14s %10.2f %10.2f %10.2f %6.2f\n" "ratio" (ri /. ti)
    (rc /. tc) (rb /. tb) (rcpi /. tcpi);
  Printf.printf "paper:  trap 465/970/218 cpi 2.0 ; rpc 1317/5163/1849 cpi 3.9 ; ratios 2.83/5.32/8.48/1.95\n"
