type proto = Udp | Tcp_syn | Tcp_synack | Tcp_ack | Tcp_data

type packet = {
  p_proto : proto;
  p_src : int;
  p_dst : int;
  p_bytes : int;
  p_conn : int;  (* TCP connection id *)
}

type sock_kind =
  | S_udp
  | S_listen of (int * int) Queue.t  (* pending (peer port, conn id) *)
  | S_tcp of int  (* connection id *)

type socket = {
  s_port : int;
  mutable s_kind : sock_kind;
  rx : (int * int) Queue.t;  (* (src port, bytes) *)
  mutable s_established : bool;
  mutable s_open : bool;
  mutable s_waiter : Mach.Ktypes.thread option;
}

type t = {
  kernel : Mach.Kernel.t;
  objrt : Finegrain.t;
  layers : Finegrain.obj array;  (* ethernet, ip, transport, socket *)
  sockets : (int, socket) Hashtbl.t;
  mutable next_conn : int;
  mutable packets : int;
  mutable checksummed : int;
}

let wire_latency = 2_000  (* cycles on the simulated segment *)
let header_bytes = 54  (* eth 14 + ip 20 + tcp 20 *)

let create kernel ~style =
  let objrt = Finegrain.create kernel ~style ~name:"net" in
  (* the framework hierarchy: deep for fine-grained reuse *)
  let base = Finegrain.define_class objrt ~name:"TObject" () in
  let stream = Finegrain.define_class objrt ~name:"TStream" ~super:base () in
  let proto_k =
    Finegrain.define_class objrt ~name:"TProtocolLayer" ~super:stream ()
  in
  let eth = Finegrain.define_class objrt ~name:"TEthernet" ~super:proto_k () in
  let ip = Finegrain.define_class objrt ~name:"TInternet" ~super:proto_k () in
  let transport =
    Finegrain.define_class objrt ~name:"TTransport" ~super:proto_k ()
  in
  let sock_k = Finegrain.define_class objrt ~name:"TSocket" ~super:stream () in
  {
    kernel;
    objrt;
    layers =
      [|
        Finegrain.new_object objrt eth;
        Finegrain.new_object objrt ip;
        Finegrain.new_object objrt transport;
        Finegrain.new_object objrt sock_k;
      |];
    sockets = Hashtbl.create 32;
    next_conn = 1;
    packets = 0;
    checksummed = 0;
  }

let objects t = t.objrt
let packets_processed t = t.packets
let checksum_bytes t = t.checksummed

(* walk the stack: one framework invocation per layer, work scaling with
   the bytes each layer handles; the IP layer also checksums *)
let walk_stack t ~bytes =
  t.packets <- t.packets + 1;
  t.checksummed <- t.checksummed + bytes + header_bytes;
  Array.iter
    (fun layer ->
      Finegrain.invoke t.objrt layer
        ~work_units:(2 + ((bytes + header_bytes) / 64)))
    t.layers

let sys t = t.kernel.Mach.Kernel.sys

let wake_sock t s =
  match s.s_waiter with
  | Some th ->
      s.s_waiter <- None;
      Mach.Sched.wake (sys t) th
  | None -> ()

let wait_on t s reason =
  s.s_waiter <- Some (Mach.Sched.self ());
  ignore (Mach.Sched.block reason : Mach.Ktypes.kern_return);
  ignore t

let rec deliver t (pkt : packet) =
  walk_stack t ~bytes:pkt.p_bytes;
  match Hashtbl.find_opt t.sockets pkt.p_dst with
  | None -> ()  (* dropped: no listener *)
  | Some s -> (
      match (pkt.p_proto, s.s_kind) with
      | Udp, S_udp ->
          Queue.add (pkt.p_src, pkt.p_bytes) s.rx;
          wake_sock t s
      | Tcp_syn, S_listen pending ->
          Queue.add (pkt.p_src, pkt.p_conn) pending;
          wake_sock t s
      | Tcp_synack, S_tcp conn when conn = pkt.p_conn ->
          s.s_established <- true;
          transmit t
            { p_proto = Tcp_ack; p_src = s.s_port; p_dst = pkt.p_src;
              p_bytes = 0; p_conn = conn };
          wake_sock t s
      | Tcp_ack, S_tcp conn when conn = pkt.p_conn ->
          s.s_established <- true;
          wake_sock t s
      | Tcp_data, S_tcp conn when conn = pkt.p_conn ->
          Queue.add (pkt.p_src, pkt.p_bytes) s.rx;
          wake_sock t s
      | (Udp | Tcp_syn | Tcp_synack | Tcp_ack | Tcp_data), _ -> ())

and transmit t pkt =
  walk_stack t ~bytes:pkt.p_bytes;
  let m = t.kernel.Mach.Kernel.machine in
  Machine.Event_queue.schedule m.Machine.events
    ~at:(Machine.now m + wire_latency)
    (fun () -> deliver t pkt)

let alloc_sock t ~port kind =
  if Hashtbl.mem t.sockets port then
    Error (Printf.sprintf "port %d in use" port)
  else begin
    let s =
      {
        s_port = port;
        s_kind = kind;
        rx = Queue.create ();
        s_established = false;
        s_open = true;
        s_waiter = None;
      }
    in
    Hashtbl.replace t.sockets port s;
    Ok s
  end

let udp_socket t ~port = alloc_sock t ~port S_udp

let udp_send t s ~dst_port ~bytes =
  transmit t
    { p_proto = Udp; p_src = s.s_port; p_dst = dst_port; p_bytes = bytes;
      p_conn = 0 }

let rec udp_recv t s =
  match Queue.take_opt s.rx with
  | Some hit -> hit
  | None ->
      wait_on t s "udp-recv";
      udp_recv t s

let pending s = Queue.length s.rx

(* ephemeral local ports from 32768 *)
let fresh_port t =
  let rec scan p = if Hashtbl.mem t.sockets p then scan (p + 1) else p in
  scan 32768

let tcp_listen t ~port = alloc_sock t ~port (S_listen (Queue.create ()))

let rec tcp_accept t s =
  match s.s_kind with
  | S_listen pending -> (
      match Queue.take_opt pending with
      | Some (peer, conn) ->
          let port = fresh_port t in
          let child =
            match alloc_sock t ~port (S_tcp conn) with
            | Ok c -> c
            | Error e -> failwith e
          in
          transmit t
            { p_proto = Tcp_synack; p_src = port; p_dst = peer;
              p_bytes = 0; p_conn = conn };
          child
      | None ->
          wait_on t s "tcp-accept";
          tcp_accept t s)
  | S_udp | S_tcp _ -> invalid_arg "tcp_accept: not a listening socket"

let tcp_connect t ~dst_port =
  let port = fresh_port t in
  let conn = t.next_conn in
  t.next_conn <- t.next_conn + 1;
  match alloc_sock t ~port (S_tcp conn) with
  | Error e -> Error e
  | Ok s ->
      transmit t
        { p_proto = Tcp_syn; p_src = port; p_dst = dst_port; p_bytes = 0;
          p_conn = conn };
      while not s.s_established do
        wait_on t s "tcp-connect"
      done;
      Ok s

let tcp_send t s ~bytes =
  match s.s_kind with
  | S_tcp conn -> (
      (* we do not model the peer port table per connection; data is
         addressed by the established peer recorded in the rx path, so
         send via broadcast-to-conn: find the other socket of the conn *)
      let peer = ref None in
      Hashtbl.iter
        (fun _ other ->
          match other.s_kind with
          | S_tcp c when c = conn && other != s -> peer := Some other.s_port
          | _ -> ())
        t.sockets;
      match !peer with
      | Some dst ->
          transmit t
            { p_proto = Tcp_data; p_src = s.s_port; p_dst = dst;
              p_bytes = bytes; p_conn = conn }
      | None -> ())
  | S_udp | S_listen _ -> invalid_arg "tcp_send: not a TCP socket"

let rec tcp_recv t s =
  match Queue.take_opt s.rx with
  | Some (_, bytes) -> bytes
  | None ->
      wait_on t s "tcp-recv";
      tcp_recv t s

let established s = s.s_established

let close t s =
  if s.s_open then begin
    s.s_open <- false;
    Hashtbl.remove t.sockets s.s_port
  end
