open Ktypes

let thread_self (sys : Sched.t) =
  let th = Sched.self () in
  let frame = th.stack_base in
  let k = sys.ktext in
  Ktext.exec_in k th.t_task.text ~offset:0x100 ~bytes:144;
  Ktext.exec k ~frame
    [ Ktext.trap_entry k; Ktext.syscall_dispatch k;
      Ktext.thread_self_service k; Ktext.trap_exit k ];
  th

let service (sys : Sched.t) ?(work = fun () -> ()) () =
  let th = Sched.self () in
  let frame = th.stack_base in
  let k = sys.ktext in
  Ktext.exec_in k th.t_task.text ~offset:0x100 ~bytes:144;
  Ktext.exec k ~frame
    [ Ktext.trap_entry k; Ktext.syscall_dispatch k; Ktext.generic_service k ];
  work ();
  Ktext.exec k ~frame [ Ktext.trap_exit k ]

let task_self_port (sys : Sched.t) task =
  match task.task_self with
  | Some p -> p
  | None ->
      let p = Port.allocate sys ~receiver:task ~name:(task.task_name ^ ".self") in
      task.task_self <- Some p;
      p
