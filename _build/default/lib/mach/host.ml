open Ktypes

type processor_set = { ps_name : string; mutable ps_tasks : task list }

type host_info = {
  host_name : string;
  processors : int;
  memory_bytes : int;
  cpu_mhz : int;
}

(* default sets are per scheduler instance, keyed physically *)
let default_sets : (Sched.t * processor_set) list ref = ref []

let host_info (sys : Sched.t) =
  let c = sys.machine.Machine.config in
  {
    host_name = c.Machine.Config.name;
    processors = 1;
    memory_bytes = c.Machine.Config.memory_bytes;
    cpu_mhz = c.Machine.Config.cpu_mhz;
  }

let default_pset (sys : Sched.t) =
  match List.find_opt (fun (s, _) -> s == sys) !default_sets with
  | Some (_, ps) -> ps
  | None ->
      let ps = { ps_name = "default"; ps_tasks = [] } in
      default_sets := (sys, ps) :: !default_sets;
      ps

let pset_create (sys : Sched.t) ~name =
  Ktext.exec sys.ktext [ Ktext.sync_fast sys.ktext ];
  { ps_name = name; ps_tasks = [] }

let pset_name ps = ps.ps_name

let assign_task (sys : Sched.t) ps task =
  Ktext.exec sys.ktext [ Ktext.sync_fast sys.ktext ];
  if not (List.memq task ps.ps_tasks) then ps.ps_tasks <- task :: ps.ps_tasks

let pset_tasks ps = ps.ps_tasks
