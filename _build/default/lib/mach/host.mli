(** Hosts and processor sets (inherited from Mach 3.0).

    The simulation is uniprocessor, but the interfaces — host info,
    default processor set, set creation and task assignment — are kept so
    that the system inventory and the scheduler-facing API match the
    paper's component list. *)

open Ktypes

type processor_set

type host_info = {
  host_name : string;
  processors : int;
  memory_bytes : int;
  cpu_mhz : int;
}

val host_info : Sched.t -> host_info

val default_pset : Sched.t -> processor_set
val pset_create : Sched.t -> name:string -> processor_set
val pset_name : processor_set -> string
val assign_task : Sched.t -> processor_set -> task -> unit
val pset_tasks : processor_set -> task list
