open Ktypes

type reflection = { mutable waiter : thread option; mutable pending : int }
type t = { sys : Sched.t; tbl : (int, reflection) Hashtbl.t }
type dma_channel = { ch_id : int; mutable ch_busy : bool }

let create sys = { sys; tbl = Hashtbl.create 8 }

let map_device_memory t task region =
  let sys = t.sys in
  ignore
    (Vm.map_object sys task
       (Vm.object_create sys ~tag:("dev:" ^ region.Machine.Layout.name)
          ~bytes:region.Machine.Layout.size ())
       ~at:region.Machine.Layout.base ~bytes:region.Machine.Layout.size
       ~coerced:true ()
      : int)

let device_mapped task region =
  List.exists
    (fun e -> e.ent_start = region.Machine.Layout.base)
    task.vm.entries

let attach_kernel_handler t ~line ~name f =
  let sys = t.sys in
  Machine.Irq.register sys.machine.Machine.irq ~line ~name (fun () ->
      Ktext.exec sys.ktext [ Ktext.irq_entry sys.ktext ];
      f ())

let next_interrupt t ~line =
  let th = Sched.self () in
  match Hashtbl.find_opt t.tbl line with
  | None -> Kern_invalid_argument
  | Some r ->
      if r.pending > 0 then begin
        r.pending <- r.pending - 1;
        Kern_success
      end
      else begin
        r.waiter <- Some th;
        Sched.block "user-interrupt"
      end

let attach_user_handler t ~line ~name =
  let sys = t.sys in
  let r = { waiter = None; pending = 0 } in
  Hashtbl.replace t.tbl line r;
  Machine.Irq.register sys.machine.Machine.irq ~line ~name (fun () ->
      Ktext.exec sys.ktext
        [ Ktext.irq_entry sys.ktext; Ktext.irq_reflect sys.ktext ];
      match r.waiter with
      | Some th ->
          r.waiter <- None;
          Sched.wake sys th
      | None -> r.pending <- r.pending + 1)

let detach t ~line =
  Machine.Irq.unregister t.sys.machine.Machine.irq ~line;
  Hashtbl.remove t.tbl line

let dma_open t ~channel =
  Ktext.exec t.sys.ktext [ Ktext.dma_setup t.sys.ktext ];
  { ch_id = channel; ch_busy = false }

let dma_transfer t ch ~bytes k =
  let sys = t.sys in
  Ktext.exec sys.ktext [ Ktext.dma_setup sys.ktext ];
  ch.ch_busy <- true;
  (* ~4 bytes per bus cycle, and the bus traffic lands on completion *)
  let cycles = max 1 (bytes / 4) in
  Machine.Event_queue.schedule sys.machine.Machine.events
    ~at:(Machine.now sys.machine + cycles)
    (fun () ->
      Machine.Perf.add_bus_cycles
        (Machine.Cpu.perf sys.machine.Machine.cpu)
        (bytes / 4);
      ch.ch_busy <- false;
      k ())

let pending_reflections t ~line =
  match Hashtbl.find_opt t.tbl line with
  | Some r -> r.pending
  | None -> 0
