open Ktypes

type semaphore = {
  s_name : string;
  mutable s_value : int;
  s_waiters : thread Queue.t;
}

type mutex = { m_sem : semaphore; mutable m_owner : thread option }
type event = { e_name : string; e_waiters : thread Queue.t }

let trap_around (sys : Sched.t) inner =
  let th = Sched.self () in
  let frame = th.stack_base in
  let k = sys.ktext in
  Ktext.exec_in k th.t_task.text ~offset:0x100 ~bytes:144;
  Ktext.exec k ~frame [ Ktext.trap_entry k; Ktext.syscall_dispatch k ];
  let r = inner th frame in
  Ktext.exec k ~frame [ Ktext.trap_exit k ];
  r

let wake_one (sys : Sched.t) q =
  let rec loop () =
    match Queue.take_opt q with
    | None -> false
    | Some th -> (
        match th.state with
        | Th_blocked _ ->
            Sched.wake sys th;
            true
        | Th_runnable | Th_running | Th_terminated -> loop ())
  in
  loop ()

let semaphore_create (sys : Sched.t) ~name ~value =
  Ktext.exec sys.ktext [ Ktext.sync_fast sys.ktext ];
  { s_name = name; s_value = value; s_waiters = Queue.create () }

let semaphore_wait (sys : Sched.t) s =
  trap_around sys (fun th frame ->
      let k = sys.ktext in
      Ktext.exec k ~frame [ Ktext.sync_fast k ];
      let rec wait () =
        if s.s_value > 0 then begin
          s.s_value <- s.s_value - 1;
          Kern_success
        end
        else begin
          Ktext.exec k ~frame [ Ktext.sync_block k ];
          Queue.add th s.s_waiters;
          match Sched.block ("sem-wait:" ^ s.s_name) with
          | Kern_success -> wait ()
          | err -> err
        end
      in
      wait ())

let semaphore_wait_timeout (sys : Sched.t) s ~timeout =
  trap_around sys (fun th frame ->
      let k = sys.ktext in
      Ktext.exec k ~frame [ Ktext.sync_fast k ];
      if s.s_value > 0 then begin
        s.s_value <- s.s_value - 1;
        Kern_success
      end
      else begin
        let settled = ref false in
        Machine.Event_queue.schedule sys.machine.Machine.events
          ~at:(Machine.now sys.machine + max 1 timeout)
          (fun () ->
            if not !settled then begin
              Ktext.exec sys.ktext
                [ Ktext.irq_entry sys.ktext; Ktext.timer_service sys.ktext ];
              Sched.wake sys ~result:Kern_timed_out th
            end);
        let rec wait () =
          if s.s_value > 0 then begin
            s.s_value <- s.s_value - 1;
            settled := true;
            Kern_success
          end
          else begin
            Ktext.exec k ~frame [ Ktext.sync_block k ];
            Queue.add th s.s_waiters;
            match Sched.block ("sem-wait-deadline:" ^ s.s_name) with
            | Kern_success -> wait ()
            | err ->
                settled := true;
                err
          end
        in
        wait ()
      end)

let semaphore_signal (sys : Sched.t) s =
  trap_around sys (fun _th frame ->
      let k = sys.ktext in
      Ktext.exec k ~frame [ Ktext.sync_fast k ];
      s.s_value <- s.s_value + 1;
      ignore (wake_one sys s.s_waiters : bool))

let semaphore_value s = s.s_value
let semaphore_waiters s = Queue.length s.s_waiters

let mutex_create sys ~name =
  { m_sem = semaphore_create sys ~name ~value:1; m_owner = None }

let mutex_lock (sys : Sched.t) m =
  let r = semaphore_wait sys m.m_sem in
  if r = Kern_success then m.m_owner <- Some (Sched.self ());
  r

let mutex_unlock (sys : Sched.t) m =
  let th = Sched.self () in
  (match m.m_owner with
  | Some owner when owner.tid = th.tid -> m.m_owner <- None
  | Some _ | None -> raise (Kern_error Kern_invalid_argument));
  semaphore_signal sys m.m_sem

let mutex_locked m = Option.is_some m.m_owner

let event_create (sys : Sched.t) ~name =
  Ktext.exec sys.ktext [ Ktext.sync_fast sys.ktext ];
  { e_name = name; e_waiters = Queue.create () }

let event_wait (sys : Sched.t) e =
  trap_around sys (fun th frame ->
      Ktext.exec sys.ktext ~frame [ Ktext.sync_block sys.ktext ];
      Queue.add th e.e_waiters;
      Sched.block ("event-wait:" ^ e.e_name))

let event_signal (sys : Sched.t) e =
  trap_around sys (fun _th frame ->
      Ktext.exec sys.ktext ~frame [ Ktext.sync_fast sys.ktext ];
      ignore (wake_one sys e.e_waiters : bool))

let event_broadcast (sys : Sched.t) e =
  trap_around sys (fun _th frame ->
      Ktext.exec sys.ktext ~frame [ Ktext.sync_fast sys.ktext ];
      while wake_one sys e.e_waiters do
        ()
      done)

let event_waiters e = Queue.length e.e_waiters

let uncontended_cost (sys : Sched.t) =
  Ktext.exec sys.ktext [ Ktext.sync_fast sys.ktext ]
