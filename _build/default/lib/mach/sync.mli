(** Kernel synchronizers.

    Mach 3.0 had no synchronization primitive other than IPC, which the
    paper calls "too expensive and too hard to program for many uses";
    the IBM Microkernel added kernel-based locks and semaphores (these)
    and memory-based ones (in the personality-neutral runtime, built on
    these for the contended path). *)

open Ktypes

type semaphore
type mutex
type event

val semaphore_create : Sched.t -> name:string -> value:int -> semaphore
val semaphore_wait : Sched.t -> semaphore -> kern_return
(** P: traps into the kernel; blocks when the count is exhausted. *)

val semaphore_signal : Sched.t -> semaphore -> unit
(** V: traps; wakes the longest-waiting thread if any. *)

val semaphore_wait_timeout :
  Sched.t -> semaphore -> timeout:int -> kern_return
(** P with a deadline: [Kern_timed_out] if no signal arrives within
    [timeout] cycles. *)

val semaphore_value : semaphore -> int
val semaphore_waiters : semaphore -> int

val mutex_create : Sched.t -> name:string -> mutex
val mutex_lock : Sched.t -> mutex -> kern_return
val mutex_unlock : Sched.t -> mutex -> unit
(** @raise Kern_error [Kern_invalid_argument] when unlocked by a thread
    that does not hold it. *)

val mutex_locked : mutex -> bool

val event_create : Sched.t -> name:string -> event
val event_wait : Sched.t -> event -> kern_return
(** Block until the next signal/broadcast (no memory of past signals). *)

val event_signal : Sched.t -> event -> unit
val event_broadcast : Sched.t -> event -> unit
val event_waiters : event -> int

val uncontended_cost : Sched.t -> unit
(** Charge just the fast path (used by the memory-based user-level
    synchronizers when no kernel interaction is needed). *)
