lib/mach/ktext.ml: List Machine Option
