lib/mach/sync.mli: Ktypes Sched
