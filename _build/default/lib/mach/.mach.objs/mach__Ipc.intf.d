lib/mach/ipc.mli: Ktypes Sched
