lib/mach/host.ml: Ktext Ktypes List Machine Sched
