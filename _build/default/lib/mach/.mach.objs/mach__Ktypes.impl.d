lib/mach/ktypes.ml: Effect Hashtbl Machine Queue
