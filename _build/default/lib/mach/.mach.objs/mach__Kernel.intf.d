lib/mach/kernel.mli: Format Io Ktext Ktypes Machine Sched
