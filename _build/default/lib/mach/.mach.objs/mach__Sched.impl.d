lib/mach/sched.ml: Effect Fun Hashtbl Ktext Ktypes List Machine Queue
