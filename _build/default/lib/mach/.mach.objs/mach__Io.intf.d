lib/mach/io.mli: Ktypes Machine Sched
