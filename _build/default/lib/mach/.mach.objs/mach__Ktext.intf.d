lib/mach/ktext.mli: Machine
