lib/mach/sync.ml: Ktext Ktypes Machine Option Queue Sched
