lib/mach/io.ml: Hashtbl Ktext Ktypes List Machine Sched Vm
