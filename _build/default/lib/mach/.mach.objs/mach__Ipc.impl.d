lib/mach/ipc.ml: Ktext Ktypes List Machine Option Port Queue Sched Vm
