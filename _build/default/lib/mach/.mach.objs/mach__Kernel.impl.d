lib/mach/kernel.ml: Format Io Ktext Ktypes List Machine Sched Vm
