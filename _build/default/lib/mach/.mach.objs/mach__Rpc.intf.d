lib/mach/rpc.mli: Ktypes Sched
