lib/mach/trap.ml: Ktext Ktypes Port Sched
