lib/mach/sched.mli: Ktext Ktypes Machine Queue
