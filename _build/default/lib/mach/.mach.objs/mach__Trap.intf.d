lib/mach/trap.mli: Ktypes Sched
