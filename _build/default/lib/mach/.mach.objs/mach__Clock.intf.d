lib/mach/clock.mli: Ktypes Sched
