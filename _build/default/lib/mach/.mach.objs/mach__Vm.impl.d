lib/mach/vm.ml: Hashtbl Ktext Ktypes List Machine Queue Sched
