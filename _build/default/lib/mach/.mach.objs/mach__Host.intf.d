lib/mach/host.mli: Ktypes Sched
