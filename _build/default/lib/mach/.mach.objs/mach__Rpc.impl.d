lib/mach/rpc.ml: Ktext Ktypes List Machine Option Queue Sched
