lib/mach/vm.mli: Ktypes Sched
