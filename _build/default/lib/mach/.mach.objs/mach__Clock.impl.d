lib/mach/clock.ml: Ktext Ktypes Machine Sched
