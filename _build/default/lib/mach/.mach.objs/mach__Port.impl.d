lib/mach/port.ml: Hashtbl Ktext Ktypes Option Queue Sched
