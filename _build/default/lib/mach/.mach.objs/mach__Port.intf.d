lib/mach/port.mli: Ktypes Sched
