lib/mach/mach.ml: Clock Host Io Ipc Kernel Ktext Ktypes Port Rpc Sched Sync Trap Vm
