type dloc =
  | Kdata of int  (* offset into the kernel data region *)
  | Frame of int  (* offset from the current kernel stack frame *)

type chunk = {
  ck_region : [ `Core | `Ipc ];
  ck_offset : int;
  ck_bytes : int;
  ck_loads : (dloc * int) list;
  ck_stores : (dloc * int) list;
}

type t = {
  machine : Machine.t;
  text : Machine.Layout.region;
  ipc_text : Machine.Layout.region;
  data : Machine.Layout.region;
  buffers : Machine.Layout.region;
  scratch_frame : int;
  mutable buf_next : int;
}

let create (m : Machine.t) =
  let alloc name kind size = Machine.Layout.alloc m.layout ~name ~kind ~size in
  let text = alloc "kernel.text" Machine.Layout.Code (64 * 1024) in
  let ipc_text = alloc "kernel.ipc-text" Machine.Layout.Code (48 * 1024) in
  let data = alloc "kernel.data" Machine.Layout.Data (64 * 1024) in
  let buffers = alloc "kernel.msg-buffers" Machine.Layout.Data (64 * 1024) in
  {
    machine = m;
    text;
    ipc_text;
    data;
    buffers;
    scratch_frame = data.Machine.Layout.base + (60 * 1024);
    buf_next = 0;
  }

let machine t = t.machine
let text t = t.text
let ipc_text t = t.ipc_text
let data t = t.data

let chunk ?(region = `Core) ~offset ~bytes ?(loads = []) ?(stores = []) () =
  { ck_region = region; ck_offset = offset; ck_bytes = bytes;
    ck_loads = loads; ck_stores = stores }

let chunk_bytes c = c.ck_bytes

(* --- Chunk table ------------------------------------------------------ *)
(* Offsets are within the owning text region; the core region and the
   ipc region are page-aligned, so (offset mod 4096) determines I-cache
   set placement on the 8 KB 2-way Pentium cache. *)

(* Trap path: chosen so its pieces occupy disjoint set ranges — the hot
   trap path of a tuned kernel stays cache-resident. *)
let c_trap_entry =
  chunk ~offset:0x0100 ~bytes:560
    ~stores:[ (Frame 0, 128) ]  (* push register frame *)
    ~loads:[ (Kdata 0x040, 16) ] ()

let c_syscall_dispatch =
  chunk ~offset:0x0c00 ~bytes:192 ~loads:[ (Kdata 0x080, 32) ] ()

let c_thread_self_service =
  chunk ~offset:0x0800 ~bytes:560
    ~loads:[ (Kdata 0x100, 32) ]
    ~stores:[ (Frame 128, 96) ] ()

let c_generic_service =
  chunk ~offset:0x0a30 ~bytes:448
    ~loads:[ (Kdata 0x140, 64) ]
    ~stores:[ (Frame 128, 32) ] ()

let c_trap_exit =
  chunk ~offset:0x0400 ~bytes:416 ~loads:[ (Frame 0, 128) ] ()

(* IBM RPC path: the rework's lighter kernel entry plus send/reply
   bodies.  Offsets deliberately alias user stubs and each other mod
   4 KB (0x1100 = 0x100, 0x1400/0x1500 = 0x400/0x500, 0x2400 = 0x400),
   the way an unlaid-out kernel link map falls out; this is the source
   of the RPC path's steady-state I-cache misses. *)
let c_rpc_entry =
  chunk ~offset:0x1100 ~bytes:384 ~stores:[ (Frame 0, 96) ]
    ~loads:[ (Kdata 0x040, 16) ] ()

let c_rpc_send =
  chunk ~offset:0x1500 ~bytes:512
    ~loads:[ (Kdata 0x200, 96) ]
    ~stores:[ (Kdata 0x240, 256); (Frame 160, 64) ] ()

let c_rpc_reply =
  chunk ~offset:0x1400 ~bytes:448
    ~loads:[ (Kdata 0x240, 96) ]
    ~stores:[ (Kdata 0x280, 192) ] ()

let c_cap_translate =
  chunk ~offset:0x1f00 ~bytes:160 ~loads:[ (Kdata 0x300, 64) ] ()

let c_rpc_handoff =
  chunk ~offset:0x1c00 ~bytes:288
    ~loads:[ (Kdata 0x340, 32) ]
    ~stores:[ (Kdata 0x360, 96) ] ()

(* Scheduler and switch machinery. *)
let c_sched_pick =
  chunk ~offset:0x2100 ~bytes:192 ~loads:[ (Kdata 0x400, 96) ] ()

let c_context_switch =
  chunk ~offset:0x2400 ~bytes:288
    ~stores:[ (Frame 0, 224) ]  (* save outgoing register state *)
    ~loads:[ (Frame 256, 224) ]  (* load incoming state *) ()

let c_pmap_switch =
  chunk ~offset:0x2900 ~bytes:160 ~loads:[ (Kdata 0x480, 32) ] ()

(* VM paths. *)
let c_vm_fault =
  chunk ~offset:0x3000 ~bytes:1280
    ~loads:[ (Kdata 0x500, 128) ]
    ~stores:[ (Kdata 0x580, 64); (Frame 0, 64) ] ()

let c_vm_map_enter =
  chunk ~offset:0x3800 ~bytes:512
    ~loads:[ (Kdata 0x600, 64) ]
    ~stores:[ (Kdata 0x640, 64) ] ()

let c_vm_page_insert =
  chunk ~offset:0x3a00 ~bytes:256 ~stores:[ (Kdata 0x680, 32) ] ()

let c_pageout =
  chunk ~offset:0x3e00 ~bytes:640
    ~loads:[ (Kdata 0x6c0, 96) ]
    ~stores:[ (Kdata 0x700, 64) ] ()

(* Interrupts, I/O, timers, synchronizers. *)
let c_irq_entry =
  chunk ~offset:0x4100 ~bytes:384 ~stores:[ (Frame 0, 96) ] ()

let c_irq_reflect =
  chunk ~offset:0x4300 ~bytes:512
    ~loads:[ (Kdata 0x740, 32) ]
    ~stores:[ (Kdata 0x760, 32) ] ()

let c_dma_setup =
  chunk ~offset:0x4600 ~bytes:448
    ~loads:[ (Kdata 0x7a0, 32) ]
    ~stores:[ (Kdata 0x7c0, 48) ] ()

let c_timer_service =
  chunk ~offset:0x4900 ~bytes:384
    ~loads:[ (Kdata 0x800, 48) ]
    ~stores:[ (Kdata 0x820, 16) ] ()

let c_sync_fast =
  chunk ~offset:0x4b00 ~bytes:224
    ~loads:[ (Kdata 0x840, 16) ]
    ~stores:[ (Kdata 0x850, 16) ] ()

let c_sync_block =
  chunk ~offset:0x4d00 ~bytes:320
    ~loads:[ (Kdata 0x860, 32) ]
    ~stores:[ (Kdata 0x880, 32) ] ()

(* The copy loop: one fetch of the loop body per 32-byte line moved. *)
let c_copy_loop = chunk ~offset:0x2300 ~bytes:32 ()

(* The user-level system-call stub shape (lives in each task's text; the
   offset here is within *that* region). *)
let c_user_stub =
  chunk ~offset:0x0100 ~bytes:128 ~stores:[ (Frame 512, 64) ] ()

(* --- Mach 3.0 mach_msg path (the code the rework deleted) ------------- *)
(* Substantially larger text, heavier queue manipulation, and reply-port
   management on every interaction. *)

let ipc ~offset ~bytes ?(loads = []) ?(stores = []) () =
  chunk ~region:`Ipc ~offset ~bytes ~loads ~stores ()

let c_mach_msg_entry =
  ipc ~offset:0x0100 ~bytes:2304
    ~loads:[ (Kdata 0x900, 192) ]
    ~stores:[ (Frame 0, 192); (Kdata 0x940, 96) ] ()

let c_msg_copyin =
  ipc ~offset:0x0c00 ~bytes:1536
    ~loads:[ (Kdata 0x980, 96) ]
    ~stores:[ (Kdata 0x9c0, 96) ] ()

let c_right_transfer =
  ipc ~offset:0x1400 ~bytes:1024
    ~loads:[ (Kdata 0xa00, 96) ]
    ~stores:[ (Kdata 0xa40, 96) ] ()

let c_msg_enqueue =
  ipc ~offset:0x1900 ~bytes:1280
    ~loads:[ (Kdata 0xa80, 128) ]
    ~stores:[ (Kdata 0xac0, 192) ] ()

let c_reply_port_setup =
  ipc ~offset:0x1f00 ~bytes:1152
    ~loads:[ (Kdata 0xb00, 64) ]
    ~stores:[ (Kdata 0xb40, 64) ] ()

let c_msg_dequeue =
  ipc ~offset:0x2500 ~bytes:1280
    ~loads:[ (Kdata 0xac0, 128) ]
    ~stores:[ (Kdata 0xa80, 64) ] ()

let c_msg_copyout =
  ipc ~offset:0x2b00 ~bytes:1536
    ~loads:[ (Kdata 0x9c0, 96) ]
    ~stores:[ (Kdata 0x980, 96) ] ()

let c_receive_path =
  ipc ~offset:0x3200 ~bytes:2048
    ~loads:[ (Kdata 0xb80, 192) ]
    ~stores:[ (Frame 0, 160); (Kdata 0xbc0, 96) ] ()

let c_mach_msg_exit =
  ipc ~offset:0x3b00 ~bytes:896 ~loads:[ (Frame 0, 192) ] ()

let c_port_alloc =
  ipc ~offset:0x4000 ~bytes:2048
    ~loads:[ (Kdata 0xc00, 128) ]
    ~stores:[ (Kdata 0xc40, 192) ] ()

let c_port_dealloc =
  ipc ~offset:0x4900 ~bytes:1536
    ~loads:[ (Kdata 0xc40, 128) ]
    ~stores:[ (Kdata 0xc00, 96) ] ()

let c_virtual_copy_per_page =
  ipc ~offset:0x4f00 ~bytes:1216
    ~loads:[ (Kdata 0xc80, 96) ]
    ~stores:[ (Kdata 0xcc0, 96) ] ()

(* --- Execution --------------------------------------------------------- *)

let region_of t = function `Core -> t.text | `Ipc -> t.ipc_text

let resolve t ~frame = function
  | Kdata off -> t.data.Machine.Layout.base + off
  | Frame off -> frame + off

let footprint_of_chunk t ~frame c =
  let region = region_of t c.ck_region in
  let data_ops f locs =
    List.map (fun (loc, bytes) -> f ~addr:(resolve t ~frame loc) ~bytes) locs
  in
  Machine.Footprint.fetch region ~offset:c.ck_offset ~bytes:c.ck_bytes ()
  :: (data_ops Machine.Footprint.load c.ck_loads
     @ data_ops Machine.Footprint.store c.ck_stores)

let exec t ?frame chunks =
  let frame = Option.value ~default:t.scratch_frame frame in
  List.iter
    (fun c -> Machine.execute t.machine (footprint_of_chunk t ~frame c))
    chunks

let exec_n t ?frame n c =
  for _ = 1 to max 0 n do
    exec t ?frame [ c ]
  done

let copy t ~src ~dst ~bytes =
  if bytes > 0 then begin
    let lines = (bytes + 31) / 32 in
    let loop_region = t.text in
    let rec build i acc =
      if i >= lines then List.rev acc
      else
        let off = i * 32 in
        let n = min 32 (bytes - off) in
        build (i + 1)
          (Machine.Footprint.store ~addr:(dst + off) ~bytes:n
          :: Machine.Footprint.load ~addr:(src + off) ~bytes:n
          :: Machine.Footprint.fetch loop_region ~offset:c_copy_loop.ck_offset
               ~bytes:c_copy_loop.ck_bytes ()
          :: acc)
    in
    Machine.execute t.machine (build 0 [])
  end

let buffer_alloc t ~bytes =
  let size = t.buffers.Machine.Layout.size in
  let bytes = max 32 bytes in
  if t.buf_next + bytes > size then t.buf_next <- 0;
  let addr = t.buffers.Machine.Layout.base + t.buf_next in
  t.buf_next <- t.buf_next + ((bytes + 31) / 32 * 32);
  addr

let exec_in t region ~offset ~bytes =
  Machine.execute t.machine
    [ Machine.Footprint.fetch region ~offset ~bytes () ]

(* --- Accessors --------------------------------------------------------- *)

let user_stub _ = c_user_stub
let trap_entry _ = c_trap_entry
let syscall_dispatch _ = c_syscall_dispatch
let thread_self_service _ = c_thread_self_service
let generic_service _ = c_generic_service
let trap_exit _ = c_trap_exit
let rpc_send _ = c_rpc_send
let rpc_reply _ = c_rpc_reply
let cap_translate _ = c_cap_translate
let rpc_entry _ = c_rpc_entry
let rpc_handoff _ = c_rpc_handoff
let mach_msg_entry _ = c_mach_msg_entry
let msg_copyin _ = c_msg_copyin
let msg_copyout _ = c_msg_copyout
let right_transfer _ = c_right_transfer
let msg_enqueue _ = c_msg_enqueue
let msg_dequeue _ = c_msg_dequeue
let receive_path _ = c_receive_path
let reply_port_setup _ = c_reply_port_setup
let mach_msg_exit _ = c_mach_msg_exit
let port_alloc_path _ = c_port_alloc
let port_dealloc_path _ = c_port_dealloc
let virtual_copy_per_page _ = c_virtual_copy_per_page
let sched_pick _ = c_sched_pick
let context_switch _ = c_context_switch
let pmap_switch _ = c_pmap_switch
let vm_fault_path _ = c_vm_fault
let vm_map_enter _ = c_vm_map_enter
let vm_page_insert _ = c_vm_page_insert
let pageout_path _ = c_pageout
let irq_entry _ = c_irq_entry
let irq_reflect _ = c_irq_reflect
let dma_setup _ = c_dma_setup
let timer_service _ = c_timer_service
let sync_fast _ = c_sync_fast
let sync_block _ = c_sync_block
