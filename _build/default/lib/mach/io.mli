(** I/O support — the component Mach 3.0 lacked entirely.

    Provides what the paper lists: mapping of I/O ports and memory into a
    driver's address space, loading of interrupt handlers, interrupt
    vectoring/revectoring and reflection to user-level device drivers, and
    DMA channel management. *)

open Ktypes

type t
type dma_channel

val create : Sched.t -> t

val map_device_memory : t -> task -> Machine.Layout.region -> unit
(** Make a device aperture accessible to a (driver) task. *)

val device_mapped : task -> Machine.Layout.region -> bool

val attach_kernel_handler :
  t -> line:int -> name:string -> (unit -> unit) -> unit
(** In-kernel interrupt handler: charges the interrupt-entry path, then
    runs the handler in interrupt context. *)

val attach_user_handler : t -> line:int -> name:string -> unit
(** User-level driver model: interrupts on [line] are reflected out of
    the kernel (entry + reflection cost) and wake whichever driver thread
    is parked in {!next_interrupt}; interrupts arriving with no thread
    parked are counted pending so none are lost. *)

val next_interrupt : t -> line:int -> kern_return
(** Called by a user-level driver thread: block until the next interrupt
    on [line] is reflected.  [Kern_invalid_argument] if the line has no
    user handler attached. *)

val detach : t -> line:int -> unit

val dma_open : t -> channel:int -> dma_channel
val dma_transfer : t -> dma_channel -> bytes:int -> (unit -> unit) -> unit
(** Program a transfer; the completion callback fires from the event
    queue after the simulated transfer time, charging setup now and the
    bus traffic on completion. *)

val pending_reflections : t -> line:int -> int
