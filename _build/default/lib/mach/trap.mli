(** Kernel traps — the service-access mechanism Table 2 compares RPC
    against.

    [thread_self] is the exact trap the paper measured: it returns the
    current thread's port and does nothing else.  [service] is the
    generic shape of an in-kernel service call (used by the monolithic
    comparator for its file and device system calls). *)

open Ktypes

val thread_self : Sched.t -> thread
(** The Table 2 trap: user stub, kernel entry, dispatch, the
    [thread_self] service body, kernel exit. *)

val service : Sched.t -> ?work:(unit -> unit) -> unit -> unit
(** A generic trap into the kernel running [work] (cost of the service
    body itself) between entry and exit. *)

val task_self_port : Sched.t -> task -> port
(** The task's self port, created on first use. *)
