(** MVM: multiple DOS and Windows 3.1 environments on the microkernel.

    Each virtual DOS machine (VDM) is a microkernel task loaded with
    shared libraries that field the traps the guest generates and talk
    to real drivers through virtual device drivers.  On PowerPC
    configurations MVM also contains the block instruction translator
    that turns Intel code into native code, block by block, caching the
    result.

    Guest binaries are synthetic {!guest_op} programs (the real DOS and
    Windows binaries the project reused are not available — see
    DESIGN.md §5); they exercise the same structure: compute bursts, I/O
    port traps, INT 21h service calls and DPMI mode switches. *)

open Mach.Ktypes

type t
type vdm

type guest_op =
  | G_compute of int  (** straight-line guest instructions *)
  | G_io_port of int  (** an I/O port access: trapped and reflected *)
  | G_int21_read of int  (** DOS file read of [n] bytes *)
  | G_int21_write of int
  | G_dpmi_switch  (** protected-mode switch *)

val start :
  Mach.Kernel.t -> Mk_services.Runtime.t ->
  ?file_server:Fileserver.File_server.t -> translate:bool -> unit -> t
(** [translate:true] models the PowerPC configuration (block translator
    active); [false] models native x86 execution. *)

val create_vdm : t -> name:string -> vdm
val vdm_task : vdm -> task
val vdm_count : t -> int

val spawn_program : t -> vdm -> name:string -> guest_op list -> unit
(** Run the guest program on a fresh thread of the VDM task. *)

val run_program : t -> vdm -> guest_op list -> unit
(** Run from the current thread (must belong to the VDM's task). *)

val guest_instructions : vdm -> int
val blocks_translated : vdm -> int
val translation_hits : vdm -> int
val traps_reflected : t -> int
