lib/personalities/talos.mli: Fileserver Finegrain Mach Mk_services
