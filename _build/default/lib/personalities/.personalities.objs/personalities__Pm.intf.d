lib/personalities/pm.mli: Mach Machine Os2
