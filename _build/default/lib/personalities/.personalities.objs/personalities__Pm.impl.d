lib/personalities/pm.ml: Mach Machine Os2 Printf Queue String
