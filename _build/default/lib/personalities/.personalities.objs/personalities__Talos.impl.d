lib/personalities/talos.ml: Fileserver Finegrain List Mach Mk_services
