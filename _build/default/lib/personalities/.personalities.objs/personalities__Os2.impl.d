lib/personalities/os2.ml: Fileserver List Mach Machine Mk_services Os2_memory String
