lib/personalities/os2.mli: Fileserver Mach Machine Mk_services Os2_memory
