lib/personalities/mvm.ml: Bytes Fileserver Hashtbl List Mach Machine Mk_services Option Printf
