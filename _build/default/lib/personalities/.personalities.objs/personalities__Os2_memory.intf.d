lib/personalities/os2_memory.mli: Mach
