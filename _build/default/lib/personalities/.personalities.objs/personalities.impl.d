lib/personalities/personalities.ml: Mvm Os2 Os2_memory Pm Talos
