lib/personalities/os2_memory.ml: List Mach Machine
