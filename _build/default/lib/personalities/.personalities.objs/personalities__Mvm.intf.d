lib/personalities/mvm.mli: Fileserver Mach Mk_services
