(** The TalOS personality — faithfully unfinished.

    "Initially, the key operating system personality for Workplace OS was
    Taligent's operating system, TalOS … based on … fine-grained objects,
    a C++ implementation, and the same C++ microkernel wrappers.  The
    implementation of the TalOS personality was never finished."

    What exists here is what the project had: the CommonPoint-style
    framework layer (on the fine-grained object runtime, including the
    stateful kernel wrappers the paper blames for extra size and
    complexity), file-system access through the shared file server with
    TalOS semantics, and access to the networking frameworks.  The parts
    that were never finished raise {!Not_finished} — by design. *)

exception Not_finished of string

type t
type application

val start :
  Mach.Kernel.t -> Mk_services.Runtime.t -> Fileserver.File_server.t ->
  unit -> t

val server_task : t -> Mach.Ktypes.task
val frameworks : t -> Finegrain.t
(** The CommonPoint framework runtime (fine-grained, always). *)

val wrapper_state_bytes : t -> int
(** State held by the C++ microkernel wrappers — the paper: "rather than
    being a simple, stateless representation of the kernel interfaces …
    forced them to maintain state". *)

val launch :
  t -> name:string -> (application -> unit) -> application
(** Run a CommonPoint application (a task + framework objects). *)

val app_task : application -> Mach.Ktypes.task

val file_write :
  t -> application -> path:string -> bytes ->
  (int, Fileserver.Fs_types.fs_error) result
(** TFile-style access: framework dispatch + the shared file server under
    TalOS semantics. *)

val file_read :
  t -> application -> path:string -> bytes:int ->
  (bytes, Fileserver.Fs_types.fs_error) result

val compound_document : t -> 'a
(** @raise Not_finished always. *)

val user_interface : t -> 'a
(** @raise Not_finished always. *)
