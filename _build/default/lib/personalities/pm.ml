open Mach.Ktypes

type message = { msg_code : int; msg_param : int }

type window = {
  w_id : int;
  w_owner : Os2.process;
  w_x : int;
  w_y : int;
  w_w : int;
  w_h : int;
  w_queue : message Queue.t;
  w_sem : Mach.Sync.semaphore;
  w_shared_slot : int;  (* address of this window's record in the arena *)
}

type t = {
  kernel : Mach.Kernel.t;
  os2 : Os2.t;
  pmlib : Machine.Layout.region;
  shared_arena : int;  (* coerced shared memory for queues and state *)
  mutable window_count : int;
  mutable delivered : int;
}

let arena_bytes = 128 * 1024

let create (kernel : Mach.Kernel.t) os2 =
  let layout = kernel.Mach.Kernel.machine.Machine.layout in
  let pmlib =
    match Machine.Layout.find layout "lib:pmwin" with
    | Some r -> r
    | None ->
        Machine.Layout.alloc layout ~name:"lib:pmwin"
          ~kind:Machine.Layout.Code ~size:(32 * 1024)
  in
  let shared_arena =
    Mach.Vm.allocate_coerced kernel.Mach.Kernel.sys
      [ Os2.server_task os2 ]
      ~bytes:arena_bytes
  in
  { kernel; os2; pmlib; shared_arena; window_count = 0; delivered = 0 }

let pmlib_region t = t.pmlib

let charge_pm t ?(bytes = 224) () =
  Mach.Ktext.exec_in t.kernel.Mach.Kernel.ktext t.pmlib ~offset:0x300 ~bytes

(* queue traffic goes through the shared arena *)
let charge_shared t slot ~write =
  let op =
    if write then Machine.Footprint.store ~addr:slot ~bytes:32
    else Machine.Footprint.load ~addr:slot ~bytes:32
  in
  Machine.execute t.kernel.Mach.Kernel.machine [ op ]

let win_create t owner ~x ~y ~w ~h =
  charge_pm t ~bytes:512 ();
  let sys = t.kernel.Mach.Kernel.sys in
  (* the owner maps the shared arena (same address everywhere) and the
     frame buffer on its first window *)
  let task = Os2.process_task owner in
  (match Mach.Vm.find_entry task.vm t.shared_arena with
  | Some (_ : vm_entry) -> ()
  | None -> (
      match Mach.Vm.find_entry (Os2.server_task t.os2).vm t.shared_arena with
      | Some entry ->
          ignore
            (Mach.Vm.map_object sys task entry.ent_obj ~at:t.shared_arena
               ~bytes:arena_bytes ~coerced:true ()
              : int)
      | None -> ()));
  let fb = t.kernel.Mach.Kernel.machine.Machine.framebuffer in
  let fb_region = Machine.Framebuffer.region fb in
  if not (Mach.Io.device_mapped task fb_region) then
    Mach.Io.map_device_memory t.kernel.Mach.Kernel.io task fb_region;
  t.window_count <- t.window_count + 1;
  let id = t.window_count in
  {
    w_id = id;
    w_owner = owner;
    w_x = x;
    w_y = y;
    w_w = w;
    w_h = h;
    w_queue = Queue.create ();
    w_sem =
      Mach.Sync.semaphore_create sys ~name:(Printf.sprintf "pm-q%d" id)
        ~value:0;
    w_shared_slot = t.shared_arena + (id * 256 mod arena_bytes);
  }

let win_post_msg t w ~code ~param =
  charge_pm t ();
  charge_shared t w.w_shared_slot ~write:true;
  Queue.add { msg_code = code; msg_param = param } w.w_queue;
  t.delivered <- t.delivered + 1;
  Mach.Sync.semaphore_signal t.kernel.Mach.Kernel.sys w.w_sem

let win_get_msg t w =
  charge_pm t ();
  ignore (Mach.Sync.semaphore_wait t.kernel.Mach.Kernel.sys w.w_sem : kern_return);
  charge_shared t w.w_shared_slot ~write:false;
  match Queue.take_opt w.w_queue with
  | Some m -> m
  | None -> { msg_code = 0; msg_param = 0 }  (* spurious wake *)

let win_send_msg t w ~code ~param ~reply =
  win_post_msg t w ~code ~param;
  win_get_msg t reply

let clip_dims w =
  (max 1 (min w.w_w (639 - w.w_x)), max 1 (min w.w_h (479 - w.w_y)))

let gpi_fill t w ~pixel =
  let fb = t.kernel.Mach.Kernel.machine.Machine.framebuffer in
  let cw, ch = clip_dims w in
  (* user-level rasterization loop: library code per scan line *)
  charge_pm t ~bytes:(64 + (ch * 16)) ();
  Machine.Framebuffer.fill_rect fb ~x:w.w_x ~y:w.w_y ~w:cw ~h:ch ~pixel

let gpi_bitblt t w ~src_bytes =
  let fb = t.kernel.Mach.Kernel.machine.Machine.framebuffer in
  let cw, ch = clip_dims w in
  let rows = min ch (max 1 (src_bytes / max 1 cw)) in
  charge_pm t ~bytes:(64 + (rows * 24)) ();
  (* source pixels stream through the cache, then out to the aperture *)
  Machine.execute t.kernel.Mach.Kernel.machine
    [ Machine.Footprint.load ~addr:w.w_shared_slot ~bytes:(min src_bytes 4096) ];
  for row = 0 to rows - 1 do
    Machine.Framebuffer.blit_row fb ~x:w.w_x ~y:(w.w_y + row)
      (String.make cw 'b')
  done

let windows t = t.window_count
let messages_delivered t = t.delivered
