(** The OS/2 personality.

    Structure per the paper: an OS/2 {e server} provides the kernel
    implementation (process table, exec, system queries); each OS/2
    process is a microkernel task whose program is loaded together with
    shared libraries holding the RPC stubs — and, "wherever possible,
    some of the function was actually implemented in the libraries
    themselves to reduce the amount of interaction with the microkernel
    and other servers".  Concretely: file calls go straight from the
    doscalls library to the file server (OS/2 semantics), memory calls
    run entirely in-library on {!Os2_memory}, and only process-lifetime
    calls cross to the OS/2 server. *)

open Mach.Ktypes

type t
type process

val start :
  Mach.Kernel.t -> Mk_services.Runtime.t -> Fileserver.File_server.t ->
  ?name_service:Mk_services.Name_service.t -> unit -> t
(** Create the OS/2 server task and register it with the name service
    when one is given. *)

val server_task : t -> task
val server_port : t -> port

val create_process :
  t -> name:string -> entry:(process -> unit) -> process
(** [DosExecPgm]: an RPC to the OS/2 server, which builds the task, the
    shared-library mappings and the main thread. *)

val process_task : process -> task
val process_count : t -> int
val memory_of : process -> Os2_memory.t

(** {1 Doscalls (the in-library API)} *)

val dos_open :
  t -> process -> path:string -> ?create:bool -> unit ->
  (Fileserver.File_server.Client.handle, Fileserver.Fs_types.fs_error) result

val dos_read :
  t -> process -> Fileserver.File_server.Client.handle -> bytes:int ->
  (bytes, Fileserver.Fs_types.fs_error) result

val dos_write :
  t -> process -> Fileserver.File_server.Client.handle -> bytes ->
  (int, Fileserver.Fs_types.fs_error) result

val dos_close : t -> process -> Fileserver.File_server.Client.handle -> unit

val dos_delete :
  t -> process -> path:string -> (unit, Fileserver.Fs_types.fs_error) result

val dos_alloc_mem : t -> process -> bytes:int -> (int, kern_return) result
val dos_sub_alloc : t -> process -> bytes:int -> (int, kern_return) result
val dos_create_thread : t -> process -> name:string -> (unit -> unit) -> thread
val dos_sleep : t -> process -> cycles:int -> unit
val dos_exit : t -> process -> unit
(** Terminate the process's task and drop it from the process table
    (an RPC to the server). *)

val doscalls_region : t -> Machine.Layout.region
(** The shared doscalls library text (one region, coerced into every
    process). *)
