open Mach.Ktypes

type arena = {
  a_base : int;
  a_size : int;
  mutable a_blocks : (int * int) list;  (* allocated (addr, bytes) *)
  mutable a_next : int;  (* bump pointer within the arena *)
}

type t = {
  kernel : Mach.Kernel.t;
  task : task;
  mutable objects : (int * int) list;  (* DosAllocMem (addr, bytes) *)
  mutable arena_list : arena list;
  mutable requested : int;
  mutable committed : int;
}

let arena_bytes = 64 * 1024

let create kernel task =
  { kernel; task; objects = []; arena_list = []; requested = 0; committed = 0 }

(* the second memory manager's own work: bookkeeping loads/stores in the
   process's data segment *)
let charge t =
  let addr = t.task.data.Machine.Layout.base + 0x700 in
  Machine.execute t.kernel.Mach.Kernel.machine
    [
      Machine.Footprint.load ~addr ~bytes:64;
      Machine.Footprint.store ~addr:(addr + 64) ~bytes:32;
    ]

let dos_alloc_mem t ~bytes =
  charge t;
  if bytes <= 0 then Error Kern_invalid_argument
  else begin
    let size = pages_of_bytes bytes * page_size in
    (* commitment semantics: eager allocation underneath *)
    let addr =
      Mach.Vm.allocate t.kernel.Mach.Kernel.sys t.task ~bytes:size ~eager:true ()
    in
    t.objects <- (addr, size) :: t.objects;
    t.requested <- t.requested + bytes;
    t.committed <- t.committed + size;
    Ok addr
  end

let dos_free_mem t addr =
  charge t;
  match List.assoc_opt addr t.objects with
  | None -> ()
  | Some size ->
      t.objects <- List.remove_assoc addr t.objects;
      t.committed <- t.committed - size;
      Mach.Vm.deallocate t.kernel.Mach.Kernel.sys t.task ~addr

let fresh_arena t =
  match dos_alloc_mem t ~bytes:arena_bytes with
  | Error e -> Error e
  | Ok base ->
      let a = { a_base = base; a_size = arena_bytes; a_blocks = []; a_next = 0 } in
      t.arena_list <- a :: t.arena_list;
      (* arena allocation is not a user request; undo the double count *)
      t.requested <- t.requested - arena_bytes;
      Ok a

let dos_sub_alloc t ~bytes =
  charge t;
  if bytes <= 0 then Error Kern_invalid_argument
  else begin
    let grain = (bytes + 7) / 8 * 8 in
    let rec find = function
      | [] -> (
          match fresh_arena t with
          | Error e -> Error e
          | Ok a -> find [ a ])
      | a :: rest ->
          if a.a_next + grain <= a.a_size then begin
            let addr = a.a_base + a.a_next in
            a.a_next <- a.a_next + grain;
            a.a_blocks <- (addr, grain) :: a.a_blocks;
            t.requested <- t.requested + bytes;
            Ok addr
          end
          else find rest
    in
    find t.arena_list
  end

let dos_sub_free t addr =
  charge t;
  List.iter
    (fun a ->
      match List.assoc_opt addr a.a_blocks with
      | Some grain ->
          a.a_blocks <- List.remove_assoc addr a.a_blocks;
          t.requested <- t.requested - grain
      | None -> ())
    t.arena_list

let os2_committed_bytes t = t.committed
let user_requested_bytes t = max 0 t.requested

(* byte-granularity bookkeeping: a header per block and per object, plus
   arena tables — the concrete cost of the second manager *)
let bookkeeping_bytes t =
  let per_block = 16 in
  List.fold_left
    (fun acc a -> acc + 64 + (per_block * List.length a.a_blocks))
    (64 * List.length t.objects)
    t.arena_list

let arenas t = List.length t.arena_list
