(** Presentation Manager and the desktop: user-space shared libraries.

    Per the paper, PM was not in the OS/2 server — it stayed in
    "user-space programs implemented as shared libraries", converted to
    32-bit C.  Window state and message queues live in coerced shared
    memory (same address in every process); drawing drives the screen
    buffer directly from user level.  This is why the paper's graphics
    benchmarks were competitive on WPOS: they hardly touch the kernel. *)


type t
type window

type message = { msg_code : int; msg_param : int }

val create : Mach.Kernel.t -> Os2.t -> t

val pmlib_region : t -> Machine.Layout.region

val win_create :
  t -> Os2.process -> x:int -> y:int -> w:int -> h:int -> window
(** Allocates the window record in the coerced shared arena and maps the
    frame buffer into the owner. *)

val win_post_msg : t -> window -> code:int -> param:int -> unit
(** Asynchronous post: enqueue in shared memory, signal the window's
    semaphore. *)

val win_get_msg : t -> window -> message
(** Block until a message arrives. *)

val win_send_msg : t -> window -> code:int -> param:int -> reply:window -> message
(** Synchronous send: post to [window], then wait on [reply] for the
    answer (the receiving thread must post it). *)

val gpi_fill : t -> window -> pixel:char -> unit
(** Fill the window's rectangle: user-level compute plus direct frame
    buffer stores — no kernel involvement. *)

val gpi_bitblt : t -> window -> src_bytes:int -> unit
(** Blit [src_bytes] of pixel data through the window (clipped to its
    area). *)

val windows : t -> int
val messages_delivered : t -> int
