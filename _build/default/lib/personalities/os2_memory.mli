(** OS/2's commitment-oriented, byte-granularity memory manager, layered
    on the microkernel's page-oriented lazy VM.

    The paper: "The result was essentially two memory management systems,
    with OS/2's built on the microkernel's, which, while workable,
    greatly increased the memory footprint."  This module is that second
    system: it eagerly commits page-rounded arenas underneath (because
    OS/2 programs assume commitment), then sub-allocates at byte
    granularity with its own bookkeeping on top.  Experiment E7 compares
    {!os2_committed_bytes} against what the kernel would have kept
    resident for the same allocation trace under its own lazy rules. *)

type t

val create : Mach.Kernel.t -> Mach.Ktypes.task -> t

val dos_alloc_mem : t -> bytes:int -> (int, Mach.Ktypes.kern_return) result
(** An OS/2 memory object: page-rounded and committed immediately. *)

val dos_free_mem : t -> int -> unit

val dos_sub_alloc : t -> bytes:int -> (int, Mach.Ktypes.kern_return) result
(** Byte-granularity allocation inside a committed arena (grabbing a new
    arena when full). *)

val dos_sub_free : t -> int -> unit

val os2_committed_bytes : t -> int
(** Bytes OS/2's bookkeeping holds committed (page-rounded arenas plus
    object rounding). *)

val user_requested_bytes : t -> int
(** Bytes the application actually asked for. *)

val bookkeeping_bytes : t -> int
(** The second memory manager's own tables — pure overhead over the
    kernel's. *)

val arenas : t -> int
