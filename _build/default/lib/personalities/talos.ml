open Mach.Ktypes

exception Not_finished of string

type application = {
  a_task : task;
  a_file_obj : Finegrain.obj;  (* the TFile framework instance *)
}

type t = {
  kernel : Mach.Kernel.t;
  fs : Fileserver.File_server.t;
  talos_task : task;
  frameworks : Finegrain.t;
  file_class : Finegrain.klass;
  wrapper_class : Finegrain.klass;
  mutable wrappers : Finegrain.obj list;  (* stateful kernel wrappers *)
}

let sem = Fileserver.Vfs.talos_semantics

let start (kernel : Mach.Kernel.t) runtime fs () =
  let sys = kernel.Mach.Kernel.sys in
  Mach.Sched.with_uncharged sys (fun () ->
      let talos_task =
        Mach.Kernel.task_create kernel ~name:"talos-server"
          ~personality:"talos" ~text_bytes:(32 * 1024) ()
      in
      Mk_services.Runtime.attach runtime talos_task;
      let frameworks =
        Finegrain.create kernel ~style:Finegrain.Fine_grained ~name:"talos"
      in
      (* the CommonPoint hierarchy, deep for reuse *)
      let tobject = Finegrain.define_class frameworks ~name:"TObject" () in
      let tstream =
        Finegrain.define_class frameworks ~name:"TStream" ~super:tobject ()
      in
      let tfile =
        Finegrain.define_class frameworks ~name:"TFileStream" ~super:tstream ()
      in
      let twrapper =
        Finegrain.define_class frameworks ~name:"TKernelWrapper"
          ~super:tobject ()
      in
      {
        kernel;
        fs;
        talos_task;
        frameworks;
        file_class = tfile;
        wrapper_class = twrapper;
        wrappers = [];
      })

let server_task t = t.talos_task
let frameworks t = t.frameworks

(* every kernel interaction from TalOS code goes through a stateful C++
   wrapper object; one accumulates per interface used *)
let via_wrapper t =
  let w = Finegrain.new_object t.frameworks t.wrapper_class in
  t.wrappers <- w :: t.wrappers;
  Finegrain.invoke t.frameworks w ~work_units:4

let wrapper_state_bytes t = 96 * List.length t.wrappers

let launch t ~name entry =
  let a_task =
    Mach.Kernel.task_create t.kernel ~name ~personality:"talos" ()
  in
  let app =
    { a_task; a_file_obj = Finegrain.new_object t.frameworks t.file_class }
  in
  ignore
    (Mach.Kernel.thread_spawn t.kernel a_task ~name:(name ^ ".main")
       (fun () -> entry app)
      : thread);
  app

let app_task a = a.a_task

let file_write t app ~path data =
  Finegrain.invoke t.frameworks app.a_file_obj ~work_units:6;
  via_wrapper t;
  match
    Fileserver.File_server.Client.open_ t.fs sem ~path ~create:true ()
  with
  | Error e -> Error e
  | Ok h ->
      let r = Fileserver.File_server.Client.write t.fs h data in
      Fileserver.File_server.Client.close t.fs h;
      r

let file_read t app ~path ~bytes =
  Finegrain.invoke t.frameworks app.a_file_obj ~work_units:6;
  via_wrapper t;
  match Fileserver.File_server.Client.open_ t.fs sem ~path () with
  | Error e -> Error e
  | Ok h ->
      let r = Fileserver.File_server.Client.read t.fs h ~bytes in
      Fileserver.File_server.Client.close t.fs h;
      r

let compound_document _ =
  raise (Not_finished "TalOS compound documents were never finished")

let user_interface _ =
  raise (Not_finished "the TalOS user interface was never finished")
