open Mach.Ktypes

type guest_op =
  | G_compute of int
  | G_io_port of int
  | G_int21_read of int
  | G_int21_write of int
  | G_dpmi_switch

type vdm = {
  v_task : task;
  v_code : Machine.Layout.region;  (* guest code image *)
  v_tcache : (int, unit) Hashtbl.t;  (* translated block cache, by pc *)
  v_trans : Machine.Layout.region option;  (* translated-code arena *)
  mutable v_pc : int;
  mutable v_instrs : int;
  mutable v_translated : int;
  mutable v_hits : int;
}

type t = {
  kernel : Mach.Kernel.t;
  runtime : Mk_services.Runtime.t;
  fs : Fileserver.File_server.t option;
  mvm_task : task;
  vdm_lib : Machine.Layout.region;  (* trap-handling shared libraries *)
  translator : Machine.Layout.region option;
  mutable vdms : vdm list;
  mutable reflected : int;
}

let block_instrs = 64
let guest_bytes_per_instr = 3  (* x86 average *)
let native_bytes_per_instr = 4

let start (kernel : Mach.Kernel.t) runtime ?file_server ~translate () =
  let sys = kernel.Mach.Kernel.sys in
  Mach.Sched.with_uncharged sys (fun () ->
      let mvm_task =
        Mach.Kernel.task_create kernel ~name:"mvm-server" ~personality:"mvm"
          ~text_bytes:(24 * 1024) ()
      in
      Mk_services.Runtime.attach runtime mvm_task;
      let layout = kernel.Mach.Kernel.machine.Machine.layout in
      let vdm_lib =
        match Machine.Layout.find layout "lib:vdm" with
        | Some r -> r
        | None ->
            Machine.Layout.alloc layout ~name:"lib:vdm"
              ~kind:Machine.Layout.Code ~size:(24 * 1024)
      in
      let translator =
        if translate then
          Some
            (match Machine.Layout.find layout "mvm.translator" with
            | Some r -> r
            | None ->
                Machine.Layout.alloc layout ~name:"mvm.translator"
                  ~kind:Machine.Layout.Code ~size:(32 * 1024))
        else None
      in
      {
        kernel;
        runtime;
        fs = file_server;
        mvm_task;
        vdm_lib;
        translator;
        vdms = [];
        reflected = 0;
      })

let create_vdm t ~name =
  let sys = t.kernel.Mach.Kernel.sys in
  Mach.Sched.with_uncharged sys (fun () ->
      let v_task =
        Mach.Kernel.task_create t.kernel ~name ~personality:"mvm" ()
      in
      v_task.libraries <- ("vdm", t.vdm_lib) :: v_task.libraries;
      let layout = t.kernel.Mach.Kernel.machine.Machine.layout in
      let v_code =
        Machine.Layout.alloc layout ~name:(name ^ ".guest")
          ~kind:Machine.Layout.Code ~size:(16 * 1024)
      in
      let v_trans =
        Option.map
          (fun (_ : Machine.Layout.region) ->
            Machine.Layout.alloc layout ~name:(name ^ ".translated")
              ~kind:Machine.Layout.Code ~size:(32 * 1024))
          t.translator
      in
      let v =
        {
          v_task;
          v_code;
          v_tcache = Hashtbl.create 64;
          v_trans;
          v_pc = 0;
          v_instrs = 0;
          v_translated = 0;
          v_hits = 0;
        }
      in
      t.vdms <- v :: t.vdms;
      v)

let vdm_task v = v.v_task
let vdm_count t = List.length t.vdms

let machine t = t.kernel.Mach.Kernel.machine

(* execute [n] guest instructions starting at the VDM's pc *)
let compute t v n =
  v.v_instrs <- v.v_instrs + n;
  let rec blocks remaining =
    if remaining > 0 then begin
      let this = min block_instrs remaining in
      let pc = v.v_pc in
      v.v_pc <- (v.v_pc + this) mod 4096;  (* guest working set wraps *)
      (match (t.translator, v.v_trans) with
      | Some translator, Some trans ->
          if Hashtbl.mem v.v_tcache pc then v.v_hits <- v.v_hits + 1
          else begin
            (* translate the block: walk the translator over the guest
               bytes and emit native code *)
            Hashtbl.replace v.v_tcache pc ();
            v.v_translated <- v.v_translated + 1;
            Machine.execute (machine t)
              [
                Machine.Footprint.fetch translator ~offset:0x100
                  ~bytes:(this * 20) ();
                Machine.Footprint.load
                  ~addr:(v.v_code.Machine.Layout.base
                         + (pc * guest_bytes_per_instr mod 8192))
                  ~bytes:(this * guest_bytes_per_instr);
                Machine.Footprint.store
                  ~addr:(trans.Machine.Layout.base
                         + (pc * native_bytes_per_instr mod 16384))
                  ~bytes:(this * native_bytes_per_instr);
              ]
          end;
          (* run the translated code: ~1.3 native instructions per guest
             instruction *)
          Machine.execute (machine t)
            [
              Machine.Footprint.fetch trans
                ~offset:(pc * native_bytes_per_instr mod 16384)
                ~bytes:(this * native_bytes_per_instr * 13 / 10) ();
            ]
      | _ ->
          (* native x86: fetch the guest bytes directly *)
          Machine.execute (machine t)
            [
              Machine.Footprint.fetch v.v_code
                ~offset:(pc * guest_bytes_per_instr mod 8192)
                ~bytes:(this * guest_bytes_per_instr) ();
            ]);
      blocks (remaining - this)
    end
  in
  blocks n

(* a trapped guest operation: kernel entry, reflection to the in-task
   shared library, the library's handler *)
let reflect t ?(handler_bytes = 256) () =
  t.reflected <- t.reflected + 1;
  let sys = t.kernel.Mach.Kernel.sys in
  let k = sys.Mach.Sched.ktext in
  Mach.Ktext.exec k
    [ Mach.Ktext.trap_entry k; Mach.Ktext.irq_reflect k; Mach.Ktext.trap_exit k ];
  Mach.Ktext.exec_in k t.vdm_lib ~offset:0x400 ~bytes:handler_bytes

let vdm_file t v rw bytes =
  ignore v;
  reflect t ~handler_bytes:384 ();
  match t.fs with
  | None -> ()
  | Some fs -> (
      let sem = Fileserver.Vfs.os2_semantics in
      (* the virtual device driver keeps one scratch file per VDM *)
      let path = Printf.sprintf "/c/VDM.SWP" in
      match Fileserver.File_server.Client.open_ fs sem ~path ~create:true () with
      | Error _ -> ()
      | Ok h ->
          (match rw with
          | `Read ->
              ignore (Fileserver.File_server.Client.read fs h ~bytes)
          | `Write ->
              ignore
                (Fileserver.File_server.Client.write fs h
                   (Bytes.make (min bytes 4096) 'v')));
          Fileserver.File_server.Client.close fs h)

let run_op t v = function
  | G_compute n -> compute t v n
  | G_io_port _port ->
      reflect t ();
      (* virtual device driver touches the real aperture *)
      let fb = (machine t).Machine.framebuffer in
      Machine.Framebuffer.fill_rect fb ~x:0 ~y:0 ~w:16 ~h:1 ~pixel:'m'
  | G_int21_read n -> vdm_file t v `Read n
  | G_int21_write n -> vdm_file t v `Write n
  | G_dpmi_switch ->
      reflect t ~handler_bytes:512 ();
      Machine.execute (machine t) [ Machine.Footprint.Stall 200 ]

let run_program t v ops =
  (* programs start at the image base; re-running one reuses the
     translation cache *)
  v.v_pc <- 0;
  List.iter (run_op t v) ops

let spawn_program t v ~name ops =
  ignore
    (Mach.Kernel.thread_spawn t.kernel v.v_task ~name (fun () ->
         run_program t v ops)
      : thread)

let guest_instructions v = v.v_instrs
let blocks_translated v = v.v_translated
let translation_hits v = v.v_hits
let traps_reflected t = t.reflected
