(** Operating-system personalities on the IBM Microkernel: OS/2 (server,
    doscalls libraries, the second byte-granularity memory manager,
    Presentation Manager) and MVM (DOS/Windows virtual machines with the
    block instruction translator). *)

module Os2_memory = Os2_memory
module Os2 = Os2
module Pm = Pm
module Mvm = Mvm
module Talos = Talos
