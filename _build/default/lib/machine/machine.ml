module Config = Config
module Perf = Perf
module Cache = Cache
module Tlb = Tlb
module Layout = Layout
module Footprint = Footprint
module Cpu = Cpu
module Event_queue = Event_queue
module Irq = Irq
module Disk = Disk
module Framebuffer = Framebuffer

type t = {
  config : Config.t;
  cpu : Cpu.t;
  layout : Layout.t;
  events : Event_queue.t;
  irq : Irq.t;
  disk : Disk.t;
  framebuffer : Framebuffer.t;
}

let disk_irq_line = 14
let timer_irq_line = 0

let create ?(disk_geometry = Disk.default_geometry) config =
  let cpu = Cpu.create config in
  let layout = Layout.create config in
  let events = Event_queue.create () in
  let irq = Irq.create cpu ~lines:16 in
  let disk =
    Disk.create cpu events irq ~line:disk_irq_line ~name:"hd0" disk_geometry
  in
  let framebuffer = Framebuffer.create cpu layout ~width:640 ~height:480 in
  { config; cpu; layout; events; irq; disk; framebuffer }

let now t = Cpu.now t.cpu
let execute t fp = Cpu.execute t.cpu fp

let advance_to_next_event t =
  match Event_queue.next_time t.events with
  | None -> false
  | Some time ->
      Cpu.advance_to t.cpu time;
      let (_ : int) = Event_queue.run_due t.events ~now:(Cpu.now t.cpu) in
      true

let run_events t =
  let (_ : int) = Event_queue.run_due t.events ~now:(Cpu.now t.cpu) in
  ()

let pp_inventory ppf t =
  Format.fprintf ppf "@[<v>machine: %a@ %a@]" Config.pp t.config
    (Format.pp_print_list Layout.pp_region)
    (Layout.regions t.layout)
