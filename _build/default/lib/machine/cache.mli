(** Set-associative cache model with LRU replacement.

    The cache is a tag store only: it tracks which physical line addresses
    are resident, not their contents.  That is all the cost model needs —
    hits and misses drive cycle and bus charges in {!Cpu}. *)

type t

val create : Config.cache_geometry -> t

val access : t -> int -> bool
(** [access t addr] looks up the line containing physical address [addr],
    inserting it (evicting LRU) on miss.  Returns [true] on hit. *)

val probe : t -> int -> bool
(** [probe t addr] is like {!access} but without side effects. *)

val flush : t -> unit
(** Invalidate every line. *)

val lines : t -> int
(** Total number of lines the cache can hold. *)

val resident : t -> int
(** Number of currently valid lines. *)
