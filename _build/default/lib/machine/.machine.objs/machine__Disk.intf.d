lib/machine/disk.mli: Cpu Event_queue Irq
