lib/machine/disk.ml: Bytes Cpu Event_queue Irq List Perf Printf
