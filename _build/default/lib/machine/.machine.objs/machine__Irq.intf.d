lib/machine/irq.mli: Cpu
