lib/machine/tlb.mli:
