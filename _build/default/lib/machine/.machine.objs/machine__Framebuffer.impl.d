lib/machine/framebuffer.ml: Bytes Cpu Footprint Layout Printf String
