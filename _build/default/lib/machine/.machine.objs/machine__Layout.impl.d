lib/machine/layout.ml: Config Format List Printf String
