lib/machine/event_queue.ml: Int List Map Option
