lib/machine/framebuffer.mli: Cpu Layout
