lib/machine/irq.ml: Array Cpu Option Perf Printf
