lib/machine/footprint.ml: Format Layout List Printf
