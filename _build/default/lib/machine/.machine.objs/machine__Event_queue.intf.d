lib/machine/event_queue.mli:
