lib/machine/cpu.ml: Cache Config Footprint Layout List Perf Tlb
