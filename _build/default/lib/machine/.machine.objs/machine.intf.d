lib/machine/machine.mli: Cache Config Cpu Disk Event_queue Footprint Format Framebuffer Irq Layout Perf Tlb
