lib/machine/layout.mli: Config Format
