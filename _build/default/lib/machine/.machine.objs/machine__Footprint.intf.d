lib/machine/footprint.mli: Format Layout
