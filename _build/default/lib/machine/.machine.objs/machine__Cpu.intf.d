lib/machine/cpu.mli: Cache Config Footprint Perf Tlb
