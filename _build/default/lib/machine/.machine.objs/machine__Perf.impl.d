lib/machine/perf.ml: Format
