type kind = Code | Data | Device

type region = { name : string; base : int; size : int; kind : kind }

type t = {
  page_size : int;
  memory_bytes : int;
  mutable next : int;
  mutable device_next : int;
  mutable allocated : region list;  (* reverse allocation order *)
}

let create (c : Config.t) =
  {
    page_size = c.page_size;
    memory_bytes = c.memory_bytes;
    next = c.page_size;  (* leave page 0 unmapped, as real systems do *)
    device_next = c.memory_bytes;
    allocated = [];
  }

let round_up t n = (n + t.page_size - 1) / t.page_size * t.page_size

let overlaps a b = a.base < b.base + b.size && b.base < a.base + a.size

let alloc t ~name ~kind ~size =
  let size = round_up t (max size 1) in
  match kind with
  | Device ->
      let r = { name; base = t.device_next; size; kind } in
      t.device_next <- t.device_next + size;
      t.allocated <- r :: t.allocated;
      r
  | Code | Data ->
      if t.next + size > t.memory_bytes then
        failwith
          (Printf.sprintf "Layout.alloc: out of physical memory for %S (%d + %d > %d)"
             name t.next size t.memory_bytes);
      let r = { name; base = t.next; size; kind } in
      t.next <- t.next + size;
      t.allocated <- r :: t.allocated;
      r

let alloc_at t ~name ~kind ~base ~size =
  let size = round_up t (max size 1) in
  let r = { name; base; size; kind } in
  if List.exists (overlaps r) t.allocated then
    invalid_arg
      (Printf.sprintf "Layout.alloc_at: %S overlaps an existing region" name);
  t.allocated <- r :: t.allocated;
  if kind <> Device && base + size > t.next && base < t.memory_bytes then
    t.next <- max t.next (base + size);
  r

let used_bytes t = t.next
let regions t = List.rev t.allocated

let find t name =
  List.find_opt (fun r -> String.equal r.name name) t.allocated

let end_of r = r.base + r.size

let pp_region ppf r =
  let kind = match r.kind with Code -> "code" | Data -> "data" | Device -> "dev " in
  Format.fprintf ppf "%s %-28s 0x%08x..0x%08x (%6d B)" kind r.name r.base
    (r.base + r.size) r.size
