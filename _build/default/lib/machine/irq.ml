type entry = { name : string; handler : unit -> unit }

type t = {
  cpu : Cpu.t;
  table : entry option array;
  mutable spurious : int;
}

let create cpu ~lines =
  assert (lines > 0);
  { cpu; table = Array.make lines None; spurious = 0 }

let check_line t line =
  if line < 0 || line >= Array.length t.table then
    invalid_arg (Printf.sprintf "Irq: line %d out of range" line)

let register t ~line ~name handler =
  check_line t line;
  match t.table.(line) with
  | Some e ->
      invalid_arg
        (Printf.sprintf "Irq: line %d already owned by %S" line e.name)
  | None -> t.table.(line) <- Some { name; handler }

let unregister t ~line =
  check_line t line;
  t.table.(line) <- None

let raise_line t line =
  check_line t line;
  Perf.interrupt (Cpu.perf t.cpu);
  match t.table.(line) with
  | Some e -> e.handler ()
  | None -> t.spurious <- t.spurious + 1

let handler_name t ~line =
  check_line t line;
  Option.map (fun e -> e.name) t.table.(line)

let spurious t = t.spurious
let lines t = Array.length t.table
