type geometry = {
  blocks : int;
  block_size : int;
  seek_cycles : int;
  transfer_cycles_per_block : int;
}

type request =
  | Read of { block : int; count : int; k : bytes -> unit }
  | Write of { block : int; data : bytes; k : unit -> unit }

type t = {
  cpu : Cpu.t;
  events : Event_queue.t;
  irq : Irq.t;
  line : int;
  name : string;
  geometry : geometry;
  store : bytes;
  mutable queue : request list;  (* reversed: newest first *)
  mutable busy : bool;
  mutable served : int;
  mutable pending_completion : (unit -> unit) option;
}

let default_geometry =
  {
    blocks = 40960;
    block_size = 512;
    (* ~3 ms positioning + ~60 us/block at 133 MHz *)
    seek_cycles = 400_000;
    transfer_cycles_per_block = 8_000;
  }

let create cpu events irq ~line ~name geometry =
  let t =
    {
      cpu;
      events;
      irq;
      line;
      name;
      geometry;
      store = Bytes.make (geometry.blocks * geometry.block_size) '\000';
      queue = [];
      busy = false;
      served = 0;
      pending_completion = None;
    }
  in
  Irq.register irq ~line ~name (fun () ->
      match t.pending_completion with
      | Some k ->
          t.pending_completion <- None;
          k ()
      | None -> ());
  t

let name t = t.name
let geometry t = t.geometry

let check t ~block ~count =
  if block < 0 || count <= 0 || block + count > t.geometry.blocks then
    invalid_arg
      (Printf.sprintf "Disk.%s: request %d+%d out of range (%d blocks)"
         t.name block count t.geometry.blocks)

let request_cycles t count =
  t.geometry.seek_cycles + (count * t.geometry.transfer_cycles_per_block)

let blocks_of_request = function
  | Read { count; _ } -> count
  | Write { data; _ } -> Bytes.length data

let rec start t req =
  t.busy <- true;
  let count =
    match req with
    | Read { count; _ } -> count
    | Write { data; _ } -> Bytes.length data / t.geometry.block_size
  in
  let done_at = Cpu.now t.cpu + request_cycles t count in
  Event_queue.schedule t.events ~at:done_at (fun () -> complete t req)

and complete t req =
  let bs = t.geometry.block_size in
  let finish k =
    t.served <- t.served + 1;
    (* DMA moved [blocks] of data across the bus during the transfer *)
    let words = blocks_of_request req * bs / 4 in
    Perf.add_bus_cycles (Cpu.perf t.cpu) (words / 8);
    t.pending_completion <- Some k;
    Irq.raise_line t.irq t.line;
    t.busy <- false;
    match List.rev t.queue with
    | [] -> ()
    | next :: rest ->
        t.queue <- List.rev rest;
        start t next
  in
  match req with
  | Read { block; count; k } ->
      let data = Bytes.sub t.store (block * bs) (count * bs) in
      finish (fun () -> k data)
  | Write { block; data; k } ->
      Bytes.blit data 0 t.store (block * bs) (Bytes.length data);
      finish k

let submit t req =
  if t.busy then t.queue <- req :: t.queue else start t req

let read t ~block ~count k =
  check t ~block ~count;
  submit t (Read { block; count; k })

let write t ~block data k =
  let bs = t.geometry.block_size in
  if Bytes.length data = 0 || Bytes.length data mod bs <> 0 then
    invalid_arg "Disk.write: data must be a whole number of blocks";
  check t ~block ~count:(Bytes.length data / bs);
  submit t (Write { block; data; k })

let read_now t ~block ~count =
  check t ~block ~count;
  Bytes.sub t.store (block * t.geometry.block_size)
    (count * t.geometry.block_size)

let write_now t ~block data =
  let bs = t.geometry.block_size in
  if Bytes.length data = 0 || Bytes.length data mod bs <> 0 then
    invalid_arg "Disk.write_now: data must be a whole number of blocks";
  check t ~block ~count:(Bytes.length data / bs);
  Bytes.blit data 0 t.store (block * bs) (Bytes.length data)

let requests_served t = t.served
let busy t = t.busy || t.queue <> []
