(** Interrupt controller.

    Handlers are registered per line; raising a line dispatches the
    handler immediately (the simulation has no instruction-granular
    preemption — the handler runs at the next simulation point, which is
    where the event fired).  The controller charges the interrupt-entry
    cost through the footprint its owner supplies at registration. *)

type t

val create : Cpu.t -> lines:int -> t

val register : t -> line:int -> name:string -> (unit -> unit) -> unit
(** @raise Invalid_argument if the line is out of range or taken. *)

val unregister : t -> line:int -> unit

val raise_line : t -> int -> unit
(** Dispatch the handler for [line]; counts as an interrupt in the perf
    counters.  A raise on an unhandled line counts as spurious and is
    otherwise ignored. *)

val handler_name : t -> line:int -> string option
val spurious : t -> int
val lines : t -> int
