(** Memory-mapped display adapter.

    The frame buffer lives in the uncacheable device aperture; stores to
    it are bus transactions.  Table 1's graphics workloads "ran primarily
    at user level in shared libraries and directly drove the screen
    buffer" — this device is what they drive, on both the monolithic and
    the WPOS machine. *)

type t

val create : Cpu.t -> Layout.t -> width:int -> height:int -> t

val region : t -> Layout.region
val width : t -> int
val height : t -> int

val fill_rect : t -> x:int -> y:int -> w:int -> h:int -> pixel:char -> unit
(** Executes the uncached stores for the rectangle and records the pixels
    (one byte per pixel). *)

val blit_row : t -> x:int -> y:int -> string -> unit

val pixel : t -> x:int -> y:int -> char
(** @raise Invalid_argument when out of bounds. *)

val pixels_written : t -> int
