(** Simulated hardware substrate.

    This library stands in for the 133 MHz Pentium / PowerPC 604 testbeds
    of the paper: a processor with a microarchitectural cost model
    (instruction retirement, set-associative I/D caches, TLB, write-through
    stores, bus-transaction accounting, Pentium-style performance
    counters), a physical address-space layout, a discrete-event queue, an
    interrupt controller and standard devices.  Everything above — the
    microkernel, the servers, the monolithic comparator — executes by
    submitting {!Footprint.t} values to the CPU. *)

module Config = Config
module Perf = Perf
module Cache = Cache
module Tlb = Tlb
module Layout = Layout
module Footprint = Footprint
module Cpu = Cpu
module Event_queue = Event_queue
module Irq = Irq
module Disk = Disk
module Framebuffer = Framebuffer

(** The assembled machine: processor, layout, event queue, interrupt
    controller, one disk and one frame buffer. *)
type t = {
  config : Config.t;
  cpu : Cpu.t;
  layout : Layout.t;
  events : Event_queue.t;
  irq : Irq.t;
  disk : Disk.t;
  framebuffer : Framebuffer.t;
}

val disk_irq_line : int
val timer_irq_line : int

val create : ?disk_geometry:Disk.geometry -> Config.t -> t

val now : t -> int
(** Current cycle time. *)

val execute : t -> Footprint.t -> unit

val advance_to_next_event : t -> bool
(** When the CPU is idle, jump the clock to the earliest pending event and
    fire everything due.  [false] when no event is pending (a deadlocked or
    finished system). *)

val run_events : t -> unit
(** Fire any events due at or before the current time. *)

val pp_inventory : Format.formatter -> t -> unit
(** Print the physical layout — the machine-level part of Figure 1. *)
