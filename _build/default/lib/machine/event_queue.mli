(** Discrete-event queue keyed on cycle time.

    Devices schedule completions here; the kernel scheduler advances the
    CPU clock to the next event when every thread is blocked. *)

type t

val create : unit -> t

val schedule : t -> at:int -> (unit -> unit) -> unit
(** Enqueue an event to fire at absolute cycle [at]. *)

val next_time : t -> int option
(** Earliest pending event time, if any. *)

val run_due : t -> now:int -> int
(** Fire every event with time <= [now], in time order (FIFO within a
    time).  Returns the number of events fired.  Events may schedule
    further events; those are honoured within the same call if due. *)

val pending : t -> int
