module Time_map = Map.Make (Int)

type t = {
  mutable events : (unit -> unit) list Time_map.t;  (* reversed lists *)
  mutable count : int;
}

let create () = { events = Time_map.empty; count = 0 }

let schedule t ~at f =
  let existing = Option.value ~default:[] (Time_map.find_opt at t.events) in
  t.events <- Time_map.add at (f :: existing) t.events;
  t.count <- t.count + 1

let next_time t =
  match Time_map.min_binding_opt t.events with
  | Some (time, _) -> Some time
  | None -> None

let run_due t ~now =
  let fired = ref 0 in
  let rec loop () =
    match Time_map.min_binding_opt t.events with
    | Some (time, fs) when time <= now ->
        t.events <- Time_map.remove time t.events;
        t.count <- t.count - List.length fs;
        List.iter
          (fun f ->
            incr fired;
            f ())
          (List.rev fs);
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  !fired

let pending t = t.count
