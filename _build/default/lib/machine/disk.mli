(** Simulated block storage device.

    Holds real block contents (so the file systems above it have genuine
    on-disk layouts) and models service time as seek + per-block transfer.
    Requests are serviced one at a time in FIFO order; completion raises
    the device's interrupt line and then invokes the request's
    continuation.  DMA transfer bus traffic is charged on completion. *)

type t

type geometry = {
  blocks : int;
  block_size : int;
  seek_cycles : int;  (** fixed positioning cost per request *)
  transfer_cycles_per_block : int;
}

val default_geometry : geometry
(** 20 MB at 512-byte blocks with early-1990s service times. *)

val create :
  Cpu.t -> Event_queue.t -> Irq.t -> line:int -> name:string -> geometry -> t

val name : t -> string
val geometry : t -> geometry

val read : t -> block:int -> count:int -> (bytes -> unit) -> unit
(** Asynchronous read of [count] blocks starting at [block]; the
    continuation receives the data when the simulated transfer completes.
    @raise Invalid_argument on out-of-range requests. *)

val write : t -> block:int -> bytes -> (unit -> unit) -> unit
(** Asynchronous write; [bytes] must be a whole number of blocks. *)

val read_now : t -> block:int -> count:int -> bytes
(** Synchronous, zero-cost peek for tests and mkfs-style tools. *)

val write_now : t -> block:int -> bytes -> unit

val requests_served : t -> int
val busy : t -> bool
