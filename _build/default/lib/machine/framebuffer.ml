type t = {
  cpu : Cpu.t;
  region : Layout.region;
  width : int;
  height : int;
  pixels : Bytes.t;
  mutable written : int;
}

let create cpu layout ~width ~height =
  let region =
    Layout.alloc layout ~name:"framebuffer" ~kind:Layout.Device
      ~size:(width * height)
  in
  { cpu; region; width; height; pixels = Bytes.make (width * height) '\000'; written = 0 }

let region t = t.region
let width t = t.width
let height t = t.height

let check t ~x ~y =
  if x < 0 || y < 0 || x >= t.width || y >= t.height then
    invalid_arg (Printf.sprintf "Framebuffer: (%d,%d) out of bounds" x y)

let store_span t ~x ~y ~len =
  let addr = t.region.Layout.base + (y * t.width) + x in
  Cpu.execute t.cpu [ Footprint.Uncached_write { addr; bytes = len } ]

let fill_rect t ~x ~y ~w ~h ~pixel =
  if w > 0 && h > 0 then begin
    check t ~x ~y;
    check t ~x:(x + w - 1) ~y:(y + h - 1);
    for row = y to y + h - 1 do
      store_span t ~x ~y:row ~len:w;
      Bytes.fill t.pixels ((row * t.width) + x) w pixel
    done;
    t.written <- t.written + (w * h)
  end

let blit_row t ~x ~y s =
  let len = String.length s in
  if len > 0 then begin
    check t ~x ~y;
    check t ~x:(x + len - 1) ~y;
    store_span t ~x ~y ~len;
    Bytes.blit_string s 0 t.pixels ((y * t.width) + x) len;
    t.written <- t.written + len
  end

let pixel t ~x ~y =
  check t ~x ~y;
  Bytes.get t.pixels ((y * t.width) + x)

let pixels_written t = t.written
