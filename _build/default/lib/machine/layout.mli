(** Physical address-space layout.

    Every piece of simulated code and data — kernel text, server text,
    stub libraries, stacks, heaps, device apertures — is a named [region]
    with a base address and size.  Regions give the cost model concrete
    addresses so that cache-set conflicts and TLB reach emerge from the
    layout rather than being postulated. *)

type kind = Code | Data | Device

type region = private {
  name : string;
  base : int;
  size : int;
  kind : kind;
}

type t

val create : Config.t -> t

val alloc : t -> name:string -> kind:kind -> size:int -> region
(** Page-aligned bump allocation.  Device regions are carved from the
    uncacheable aperture above physical memory.

    @raise Failure when physical memory is exhausted. *)

val alloc_at : t -> name:string -> kind:kind -> base:int -> size:int -> region
(** Place a region at a fixed address (used for coerced shared memory).
    The caller is responsible for avoiding overlap with bump-allocated
    regions; addresses already handed out are rejected.

    @raise Invalid_argument on overlap with an existing region. *)

val used_bytes : t -> int
(** Bytes of physical memory handed out so far. *)

val regions : t -> region list
(** All regions, in allocation order. *)

val find : t -> string -> region option

val end_of : region -> int
(** First address past the region. *)

val pp_region : Format.formatter -> region -> unit
