(** The FAT physical file system — OS/2's legacy on-disk format.

    A genuine FAT layout on the simulated disk: boot sector, a 16-bit
    file-allocation table, a fixed root directory of 32-byte entries and
    single-block clusters.  The format's constraints surface exactly as
    the paper describes: names are 8.3 only ([E_name_too_long] /
    [E_bad_name] otherwise — "no good way to jam long file names into the
    OS/2 FAT file format"), case is folded, and there is no journal. *)

open Fs_types

val mkfs : Machine.Disk.t -> ?start:int -> ?blocks:int -> unit -> unit
(** Write a fresh FAT structure over a disk extent (zero simulated cost:
    an offline tool). *)

val mount : Block_cache.t -> ?start:int -> unit -> (pfs, fs_error) result
(** Mount a previously {!mkfs}ed extent. *)

val valid_name : string -> (string, fs_error) result
(** 8.3 validation and upcasing, exposed for tests and for the vnode
    layer's semantic checks. *)
