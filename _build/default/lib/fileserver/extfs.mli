(** Extent/inode file-system core.

    The shared machinery behind the {!Hpfs} and {!Jfs} formats: a
    superblock, a data-block allocation bitmap, a fixed inode table whose
    inodes hold up to six extents, directories stored as ordinary file
    data, and (optionally) a metadata journal — every metadata block
    write is preceded by a journal-record write, which is the cost and
    robustness difference JFS brings.

    Format-specific behaviour (name length, case rules, journalling) is
    injected through {!config}; the two public formats are thin wrappers
    choosing a config. *)

open Fs_types

type config = {
  cfg_format : string;
  cfg_max_name : int;
  cfg_case_sensitive : bool;
  cfg_journalled : bool;
}

val mkfs :
  Machine.Disk.t -> config -> ?start:int -> ?blocks:int -> ?inodes:int ->
  unit -> unit

val mount : Block_cache.t -> config -> ?start:int -> unit -> (pfs, fs_error) result

val max_extents : int
(** Extents per inode — exceeding this under fragmentation yields
    [E_no_space], a genuine format constraint. *)

val journal_writes : Block_cache.t -> int
(** Journal-record writes observed through this cache (for tests and the
    driver ablation). *)
