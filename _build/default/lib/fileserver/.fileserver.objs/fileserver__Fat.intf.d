lib/fileserver/fat.mli: Block_cache Fs_types Machine
