lib/fileserver/fat.ml: Array Block_cache Bytes Char Fs_types Hashtbl List Machine String
