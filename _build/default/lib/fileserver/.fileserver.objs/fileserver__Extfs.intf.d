lib/fileserver/extfs.mli: Block_cache Fs_types Machine
