lib/fileserver/hpfs.ml: Extfs
