lib/fileserver/jfs.ml: Extfs
