lib/fileserver/vfs.mli: Fs_types
