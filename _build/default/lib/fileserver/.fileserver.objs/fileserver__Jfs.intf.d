lib/fileserver/jfs.mli: Block_cache Extfs Fs_types Machine
