lib/fileserver/fileserver.ml: Block_cache Extfs Fat File_server Fs_types Hpfs Jfs Vfs
