lib/fileserver/block_cache.mli: Mach Machine
