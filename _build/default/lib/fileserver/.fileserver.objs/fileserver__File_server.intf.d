lib/fileserver/file_server.mli: Fs_types Mach Mk_services Vfs
