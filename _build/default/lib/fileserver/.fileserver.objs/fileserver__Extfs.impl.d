lib/fileserver/extfs.ml: Block_cache Buffer Bytes Char Fs_types List Machine Option String
