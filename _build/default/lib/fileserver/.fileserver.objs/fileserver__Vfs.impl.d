lib/fileserver/vfs.ml: Fat Fs_types List Printf String
