lib/fileserver/hpfs.mli: Block_cache Extfs Fs_types Machine
