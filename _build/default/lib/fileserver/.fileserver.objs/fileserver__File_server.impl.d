lib/fileserver/file_server.ml: Bytes Fs_types Hashtbl Mach Mk_services Printf String Vfs
