lib/fileserver/block_cache.ml: Bytes Hashtbl Mach Machine Option Printf
