lib/fileserver/fs_types.ml: Result
