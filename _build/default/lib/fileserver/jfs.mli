(** The JFS-like physical file system (AIX's journalled format).

    Long names, case-sensitive, and a metadata journal: every metadata
    block write is preceded by a journal-record write, trading extra I/O
    for crash consistency. *)

open Fs_types

val config : Extfs.config
val mkfs : Machine.Disk.t -> ?start:int -> ?blocks:int -> unit -> unit
val mount : Block_cache.t -> ?start:int -> unit -> (pfs, fs_error) result
