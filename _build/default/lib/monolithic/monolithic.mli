(** The comparator: a traditional in-kernel operating system ("OS/2 Warp
    on Intel") running on the same simulated machine.

    Identical file-system and device code to the multi-server system —
    the same {!Fileserver.Vfs} over the same on-disk formats on the same
    disk model — but service access is a kernel {e trap}: no address-space
    crossing, no server stubs, no scheduler handoff, and exactly one
    kernel/user data copy.  The Table 1 and E5 comparisons are this
    system against the WPOS assembly. *)

open Fileserver.Fs_types

type t

type handle

val boot :
  Machine.t -> ?fs_format:[ `Fat | `Hpfs | `Jfs ] -> ?fs_blocks:int ->
  unit -> t
(** Boot the kernel, format and mount the root volume in-kernel, and
    install swap. *)

val kernel : t -> Mach.Kernel.t
val machine : t -> Machine.t
val vfs : t -> Fileserver.Vfs.t

val spawn_process :
  t -> name:string -> (unit -> unit) -> Mach.Ktypes.task
(** A process: one task, one initial thread running the body. *)

val spawn_thread : t -> Mach.Ktypes.task -> name:string -> (unit -> unit) -> unit

val run : t -> unit

(** {1 System calls}

    Each call charges the trap path plus the in-kernel service body, then
    runs the shared file-system code directly. *)

val sys_open : t -> path:string -> ?create:bool -> unit -> (handle, fs_error) result
val sys_close : t -> handle -> unit
val sys_read : t -> handle -> bytes:int -> (bytes, fs_error) result
val sys_write : t -> handle -> bytes -> (int, fs_error) result
val sys_seek : t -> handle -> pos:int -> unit
val sys_stat : t -> path:string -> (stat, fs_error) result
val sys_mkdir : t -> path:string -> (unit, fs_error) result
val sys_readdir : t -> path:string -> (string list, fs_error) result
val sys_unlink : t -> path:string -> (unit, fs_error) result
val sys_rename : t -> src:string -> dst:string -> (unit, fs_error) result
val sys_sync : t -> unit

val sys_alloc : t -> bytes:int -> int
(** Commitment-oriented allocation (OS/2 style: eager). *)

val sys_touch : t -> addr:int -> ?write:bool -> bytes:int -> unit -> unit

val sys_yield : t -> unit
(** Trap + scheduler yield (PM-tasking style context switch). *)

val open_handles : t -> int
