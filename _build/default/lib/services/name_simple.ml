open Mach.Ktypes

type t = {
  runtime : Runtime.t;
  table : (string, port) Hashtbl.t;
}

let create (_kernel : Mach.Kernel.t) runtime =
  { runtime; table = Hashtbl.create 32 }

(* one short library routine per operation — hash, probe, done *)
let charge t = Runtime.execute t.runtime ~offset:0x900 ~bytes:112 ()

let register t ~name port =
  charge t;
  if Hashtbl.mem t.table name then false
  else begin
    Hashtbl.replace t.table name port;
    true
  end

let lookup t ~name =
  charge t;
  Hashtbl.find_opt t.table name

let remove t ~name =
  charge t;
  if Hashtbl.mem t.table name then begin
    Hashtbl.remove t.table name;
    true
  end
  else false

let names t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.table [])
let size t = Hashtbl.length t.table
