open Mach.Ktypes

let blocks_per_page = page_size / 512

type t = {
  kernel : Mach.Kernel.t;
  text : Machine.Layout.region;
  swap_start : int;
  swap_blocks : int;
  slots : (int * int, int) Hashtbl.t;  (* (obj_id, page idx) -> block *)
  mutable next_block : int;
  mutable pageins : int;
  mutable pageouts : int;
  mutable wraps : int;
}

let charge t = Mach.Ktext.exec_in t.kernel.Mach.Kernel.ktext t.text ~offset:0x100 ~bytes:384

let slot_for t key =
  match Hashtbl.find_opt t.slots key with
  | Some b -> b
  | None ->
      if t.next_block + blocks_per_page > t.swap_start + t.swap_blocks then begin
        t.next_block <- t.swap_start;
        t.wraps <- t.wraps + 1
      end;
      let b = t.next_block in
      t.next_block <- t.next_block + blocks_per_page;
      Hashtbl.replace t.slots key b;
      b

let start (kernel : Mach.Kernel.t) ?(swap_blocks = 16384) ?(swap_start = 24576)
    () =
  let layout = kernel.Mach.Kernel.machine.Machine.layout in
  let text =
    match Machine.Layout.find layout "default-pager.text" with
    | Some r -> r
    | None ->
        Machine.Layout.alloc layout ~name:"default-pager.text"
          ~kind:Machine.Layout.Code ~size:(8 * 1024)
  in
  let t =
    {
      kernel;
      text;
      swap_start;
      swap_blocks;
      slots = Hashtbl.create 64;
      next_block = swap_start;
      pageins = 0;
      pageouts = 0;
      wraps = 0;
    }
  in
  let disk = kernel.Mach.Kernel.machine.Machine.disk in
  let backing =
    {
      bs_name = "default-pager";
      bs_page_in =
        (fun obj idx k ->
          t.pageins <- t.pageins + 1;
          charge t;
          let block = slot_for t (obj.obj_id, idx) in
          Machine.Disk.read disk ~block ~count:blocks_per_page (fun (_ : bytes) ->
              k ()));
      bs_page_out =
        (fun obj idx k ->
          t.pageouts <- t.pageouts + 1;
          charge t;
          let block = slot_for t (obj.obj_id, idx) in
          Machine.Disk.write disk ~block
            (Bytes.make page_size '\000')
            (fun () -> k ()));
    }
  in
  Mach.Vm.set_default_backing kernel.Mach.Kernel.sys backing;
  t

let pageins t = t.pageins
let pageouts t = t.pageouts
let swap_blocks_used t = Hashtbl.length t.slots * blocks_per_page
let swap_full_events t = t.wraps
