open Mach.Ktypes

type entry = {
  path : string;
  attributes : (string * string) list;
  bound_port : port option;
}

type change = Added of string | Removed of string | Modified of string

type node = {
  mutable n_attributes : (string * string) list;
  mutable n_port : port option;
  children : (string, node) Hashtbl.t;
}

type t = {
  root : node;
  mutable subscriptions : (string * (change -> unit)) list;
  mutable count : int;
}

let fresh_node () =
  { n_attributes = []; n_port = None; children = Hashtbl.create 4 }

let create () = { root = fresh_node (); subscriptions = []; count = 0 }

let components path =
  List.filter (fun c -> c <> "") (String.split_on_char '/' path)

let steps ~path = List.length (components path)

let rec is_prefix short long =
  match (short, long) with
  | [], _ -> true
  | _, [] -> false
  | a :: short, b :: long -> String.equal a b && is_prefix short long

let notify t path change =
  let path_c = components path in
  List.iter
    (fun (prefix, f) -> if is_prefix (components prefix) path_c then f change)
    t.subscriptions

let rec descend node = function
  | [] -> Some node
  | c :: rest -> (
      match Hashtbl.find_opt node.children c with
      | Some child -> descend child rest
      | None -> None)

let rec descend_create t node = function
  | [] -> node
  | c :: rest ->
      let child =
        match Hashtbl.find_opt node.children c with
        | Some child -> child
        | None ->
            let child = fresh_node () in
            Hashtbl.replace node.children c child;
            t.count <- t.count + 1;
            child
      in
      descend_create t child rest

let bind t ~path ?(attributes = []) ?port () =
  match List.rev (components path) with
  | [] -> Error "empty path"
  | leaf :: rev_parents ->
      let parent = descend_create t t.root (List.rev rev_parents) in
      if Hashtbl.mem parent.children leaf then
        Error (Printf.sprintf "%S already bound" path)
      else begin
        let node = fresh_node () in
        node.n_attributes <- attributes;
        node.n_port <- port;
        Hashtbl.replace parent.children leaf node;
        t.count <- t.count + 1;
        notify t path (Added path);
        Ok ()
      end

let rebind t ~path ?(attributes = []) ?port () =
  match descend t.root (components path) with
  | Some node ->
      node.n_attributes <- attributes;
      node.n_port <- port;
      notify t path (Modified path)
  | None -> (
      match bind t ~path ~attributes ?port () with
      | Ok () -> ()
      | Error _ -> ())

let unbind t ~path =
  match List.rev (components path) with
  | [] -> false
  | leaf :: rev_parents -> (
      match descend t.root (List.rev rev_parents) with
      | None -> false
      | Some parent ->
          if Hashtbl.mem parent.children leaf then begin
            Hashtbl.remove parent.children leaf;
            t.count <- t.count - 1;
            notify t path (Removed path);
            true
          end
          else false)

let entry_of path node =
  { path; attributes = node.n_attributes; bound_port = node.n_port }

let resolve t ~path =
  Option.map (entry_of path) (descend t.root (components path))

let resolve_port t ~path =
  match resolve t ~path with Some e -> e.bound_port | None -> None

let list_children t ~path =
  match descend t.root (components path) with
  | None -> []
  | Some node ->
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) node.children [])

let search t ?(root = "/") ~filter () =
  match descend t.root (components root) with
  | None -> []
  | Some start ->
      let prefix = String.concat "/" (components root) in
      let results = ref [] in
      let rec walk path node =
        let e = entry_of path node in
        if path <> "" && filter e then results := e :: !results;
        let names =
          List.sort compare
            (Hashtbl.fold (fun k _ acc -> k :: acc) node.children [])
        in
        List.iter
          (fun name ->
            let child = Hashtbl.find node.children name in
            let child_path = if path = "" then name else path ^ "/" ^ name in
            walk child_path child)
          names
      in
      walk prefix start;
      List.rev !results

let search_attribute t ~key ~value =
  search t
    ~filter:(fun e ->
      match List.assoc_opt key e.attributes with
      | Some v -> v = value
      | None -> false)
    ()

let subscribe t ~prefix f = t.subscriptions <- (prefix, f) :: t.subscriptions
let size t = t.count
