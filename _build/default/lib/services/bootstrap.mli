(** Microkernel Services bootstrap.

    Brings up the personality-neutral base in paper order: the
    personality-neutral runtime, the default pager, the name service
    (full X.500 flavour, or the Release-2 simple service for embedded
    configurations), and the loader — the components Figure 1 draws
    inside the "IBM Microkernel" box above the privileged kernel. *)

type naming = Full_naming | Simple_naming

type t = {
  kernel : Mach.Kernel.t;
  runtime : Runtime.t;
  pager : Default_pager.t;
  naming : naming;
  name_service : Name_service.t option;  (** present under [Full_naming] *)
  simple_names : Name_simple.t option;  (** present under [Simple_naming] *)
  loader : Loader.t;
}

val boot : ?naming:naming -> Machine.t -> t
(** Boot the kernel and every Microkernel Services component on the given
    machine (default [Full_naming]). *)

val name_service_exn : t -> Name_service.t
(** @raise Invalid_argument under [Simple_naming]. *)

val components : t -> string list
(** Names of the running service components, for the Figure 1
    inventory. *)
