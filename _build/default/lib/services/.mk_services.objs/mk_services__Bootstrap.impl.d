lib/services/bootstrap.ml: Default_pager Loader Mach Name_service Name_simple Runtime
