lib/services/name_service.ml: List Mach Name_db Runtime String
