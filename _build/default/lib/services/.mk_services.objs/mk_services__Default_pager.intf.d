lib/services/default_pager.mli: Mach
