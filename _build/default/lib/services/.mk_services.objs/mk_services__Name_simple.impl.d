lib/services/name_simple.ml: Hashtbl List Mach Runtime
