lib/services/loader.ml: List Mach Machine Printf Runtime
