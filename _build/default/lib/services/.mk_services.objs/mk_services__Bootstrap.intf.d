lib/services/bootstrap.mli: Default_pager Loader Mach Machine Name_service Name_simple Runtime
