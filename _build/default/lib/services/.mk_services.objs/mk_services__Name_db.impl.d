lib/services/name_db.ml: Hashtbl List Mach Option Printf String
