lib/services/default_pager.ml: Bytes Hashtbl Mach Machine
