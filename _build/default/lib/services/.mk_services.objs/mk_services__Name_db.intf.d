lib/services/name_db.mli: Mach
