lib/services/runtime.ml: Hashtbl List Mach Machine
