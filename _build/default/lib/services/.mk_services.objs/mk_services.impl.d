lib/services/mk_services.ml: Bootstrap Default_pager Loader Name_db Name_service Name_simple Runtime
