lib/services/name_service.mli: Mach Name_db Runtime
