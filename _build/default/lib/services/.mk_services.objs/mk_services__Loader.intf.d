lib/services/loader.mli: Mach Machine Runtime
