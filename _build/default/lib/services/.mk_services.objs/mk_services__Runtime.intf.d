lib/services/runtime.mli: Mach Machine
