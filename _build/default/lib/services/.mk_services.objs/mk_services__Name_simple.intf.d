lib/services/name_simple.mli: Mach Runtime
