open Mach.Ktypes

type format = Elf_svr4 | Elf_coerced

type image = {
  img_name : string;
  img_format : format;
  img_text_bytes : int;
  img_data_bytes : int;
  img_symbols : int;
  img_needs : string list;
}

type t = {
  kernel : Mach.Kernel.t;
  runtime : Runtime.t;
  text : Machine.Layout.region;  (* the loader's own code *)
  mutable images : (string * image) list;
  mutable lib_regions : (string * Machine.Layout.region) list;
  mutable loads : int;
}

let create (kernel : Mach.Kernel.t) runtime =
  let layout = kernel.Mach.Kernel.machine.Machine.layout in
  let text =
    match Machine.Layout.find layout "loader.text" with
    | Some r -> r
    | None ->
        Machine.Layout.alloc layout ~name:"loader.text"
          ~kind:Machine.Layout.Code ~size:(16 * 1024)
  in
  { kernel; runtime; text; images = []; lib_regions = []; loads = 0 }

let register t image =
  if List.mem_assoc image.img_name t.images then
    invalid_arg (Printf.sprintf "Loader.register: duplicate image %S" image.img_name);
  t.images <- (image.img_name, image) :: t.images

let registered t = List.sort compare (List.map fst t.images)

let charge t ~offset ~bytes =
  Mach.Ktext.exec_in t.kernel.Mach.Kernel.ktext t.text ~offset ~bytes

(* header parse + section setup *)
let charge_open t = charge t ~offset:0x100 ~bytes:512

(* one relocation/lookup per symbol *)
let charge_symbols t n =
  for _ = 1 to n do
    charge t ~offset:0x500 ~bytes:96
  done

let region_for_library t image =
  match List.assoc_opt image.img_name t.lib_regions with
  | Some r -> (r, false)
  | None ->
      let layout = t.kernel.Mach.Kernel.machine.Machine.layout in
      let r =
        Machine.Layout.alloc layout
          ~name:("lib:" ^ image.img_name)
          ~kind:Machine.Layout.Code ~size:image.img_text_bytes
      in
      t.lib_regions <- (image.img_name, r) :: t.lib_regions;
      (r, true)

let rec load_library t task name =
  match List.assoc_opt name t.images with
  | None -> Error (Printf.sprintf "no such image %S" name)
  | Some image ->
      if List.mem_assoc name task.libraries then
        Ok (List.assoc name task.libraries)
      else begin
        charge_open t;
        let rec load_needs = function
          | [] -> Ok ()
          | need :: rest -> (
              match load_library t task need with
              | Ok (_ : Machine.Layout.region) -> load_needs rest
              | Error e -> Error e)
        in
        match load_needs image.img_needs with
        | Error e -> Error e
        | Ok () ->
            let region, fresh = region_for_library t image in
            (match image.img_format with
            | Elf_svr4 ->
                (* full resolution against this task's bindings *)
                charge_symbols t image.img_symbols
            | Elf_coerced ->
                (* coerced: resolved once, when first materialised *)
                if fresh then charge_symbols t (image.img_symbols / 4));
            task.libraries <- (name, region) :: task.libraries;
            t.loads <- t.loads + 1;
            Ok region
      end

let load_program t task name ~entry =
  match List.assoc_opt name t.images with
  | None -> Error (Printf.sprintf "no such image %S" name)
  | Some image ->
      charge_open t;
      let rec load_needs = function
        | [] -> Ok ()
        | need :: rest -> (
            match load_library t task need with
            | Ok (_ : Machine.Layout.region) -> load_needs rest
            | Error e -> Error e)
      in
      (match load_needs image.img_needs with
      | Error e -> Error e
      | Ok () ->
          charge_symbols t image.img_symbols;
          (* the program's data segment: lazy anonymous memory *)
          if image.img_data_bytes > 0 then
            ignore
              (Mach.Vm.allocate t.kernel.Mach.Kernel.sys task
                 ~bytes:image.img_data_bytes ()
                : int);
          t.loads <- t.loads + 1;
          Ok
            (Mach.Kernel.thread_spawn t.kernel task
               ~name:(name ^ ".main") entry))

let libraries_of task = List.sort compare (List.map fst task.libraries)
let loads_performed t = t.loads
