(** The Release-2 simplified name service for embedded configurations.

    A flat name→port table with none of the X.500 machinery: no
    attributes, no hierarchy, no search, no notifications — and an order
    of magnitude cheaper per operation (experiment E9).  It is a library,
    not a server: callers link it into their own task. *)

open Mach.Ktypes

type t

val create : Mach.Kernel.t -> Runtime.t -> t

val register : t -> name:string -> port -> bool
(** [false] when the name is taken. *)

val lookup : t -> name:string -> port option
val remove : t -> name:string -> bool
val names : t -> string list
val size : t -> int
