open Mach.Ktypes

type heap = {
  base : int;
  size : int;
  mutable blocks : (int * int) list;  (* (addr, bytes), allocated, sorted *)
  mutable in_use : int;
}

type t = {
  kernel : Mach.Kernel.t;
  lib_text : Machine.Layout.region;
  heaps : (int, heap) Hashtbl.t;  (* task_id -> heap *)
}

type umutex = {
  um_owner_lib : t;
  um_kernel : Mach.Sync.semaphore;
  mutable um_locked : bool;
  mutable um_contentions : int;
}

let install (kernel : Mach.Kernel.t) =
  let layout = kernel.Mach.Kernel.machine.Machine.layout in
  let lib_text =
    match Machine.Layout.find layout "libpn.text" with
    | Some r -> r
    | None ->
        Machine.Layout.alloc layout ~name:"libpn.text" ~kind:Machine.Layout.Code
          ~size:(24 * 1024)
  in
  { kernel; lib_text; heaps = Hashtbl.create 8 }

let text t = t.lib_text

let attach t task =
  if not (List.mem_assoc "libpn" task.libraries) then
    task.libraries <- ("libpn", t.lib_text) :: task.libraries

let execute t ?(offset = 0) ~bytes () =
  Mach.Ktext.exec_in t.kernel.Mach.Kernel.ktext t.lib_text ~offset ~bytes

let heap_for t task =
  match Hashtbl.find_opt t.heaps task.task_id with
  | Some h -> h
  | None ->
      let sys = t.kernel.Mach.Kernel.sys in
      let size = 256 * 1024 in
      let base = Mach.Vm.allocate sys task ~bytes:size () in
      let h = { base; size; blocks = []; in_use = 0 } in
      Hashtbl.replace t.heaps task.task_id h;
      h

(* First-fit with a 16-byte grain: simple, and fragmentation behaviour is
   observable in tests. *)
let malloc t task ~bytes =
  execute t ~offset:0x200 ~bytes:96 ();
  let h = heap_for t task in
  let bytes = max 16 ((bytes + 15) / 16 * 16) in
  let rec fit prev rest =
    let candidate =
      match prev with None -> h.base | Some (a, s) -> a + s
    in
    match rest with
    | [] ->
        if candidate + bytes <= h.base + h.size then candidate
        else raise (Kern_error Kern_resource_shortage)
    | (a, s) :: tl ->
        if candidate + bytes <= a then candidate else fit (Some (a, s)) tl
  in
  let addr = fit None h.blocks in
  h.blocks <-
    List.sort (fun (a, _) (b, _) -> compare a b) ((addr, bytes) :: h.blocks);
  h.in_use <- h.in_use + bytes;
  addr

let free t task addr =
  execute t ~offset:0x200 ~bytes:64 ();
  let h = heap_for t task in
  match List.assoc_opt addr h.blocks with
  | None -> raise (Kern_error Kern_invalid_argument)
  | Some bytes ->
      h.blocks <- List.remove_assoc addr h.blocks;
      h.in_use <- h.in_use - bytes

let heap_bytes_in_use t task = (heap_for t task).in_use

let cthread_fork t task ~name body =
  execute t ~offset:0x400 ~bytes:160 ();
  Mach.Sched.thread_spawn t.kernel.Mach.Kernel.sys task ~name body

let cthread_yield t =
  execute t ~offset:0x400 ~bytes:48 ();
  Mach.Sched.yield ()

let umutex_create t ~name =
  {
    um_owner_lib = t;
    um_kernel =
      Mach.Sync.semaphore_create t.kernel.Mach.Kernel.sys ~name ~value:0;
    um_locked = false;
    um_contentions = 0;
  }

let umutex_lock u =
  let t = u.um_owner_lib in
  execute t ~offset:0x500 ~bytes:48 ();
  let rec acquire () =
    if not u.um_locked then u.um_locked <- true
    else begin
      (* contended: fall into the kernel and sleep on the semaphore *)
      u.um_contentions <- u.um_contentions + 1;
      ignore
        (Mach.Sync.semaphore_wait t.kernel.Mach.Kernel.sys u.um_kernel
          : kern_return);
      acquire ()
    end
  in
  acquire ()

let umutex_unlock u =
  let t = u.um_owner_lib in
  execute t ~offset:0x500 ~bytes:40 ();
  u.um_locked <- false;
  if Mach.Sync.semaphore_waiters u.um_kernel > 0 then
    Mach.Sync.semaphore_signal t.kernel.Mach.Kernel.sys u.um_kernel

let umutex_lock t u =
  ignore t;
  umutex_lock u

let umutex_unlock t u =
  ignore t;
  umutex_unlock u

let umutex_contentions u = u.um_contentions

let memcpy t ~dst ~src ~bytes =
  let machine = t.kernel.Mach.Kernel.machine in
  let rec loop off =
    if off < bytes then begin
      let n = min 32 (bytes - off) in
      Machine.execute machine
        [
          Machine.Footprint.fetch t.lib_text ~offset:0x600 ~bytes:64 ();
          Machine.Footprint.load ~addr:(src + off) ~bytes:n;
          Machine.Footprint.store ~addr:(dst + off) ~bytes:n;
        ];
      loop (off + 32)
    end
  in
  if bytes > 0 then loop 0

let format_cost t ~chars =
  (* formatting is branchy scalar code: ~12 bytes of code per character;
     re-fetching the same loop body models the (cache-resident) iteration *)
  let total = max 64 (chars * 12) in
  let cap = t.lib_text.Machine.Layout.size - 0x700 in
  let rec loop rem =
    if rem > 0 then begin
      execute t ~offset:0x700 ~bytes:(min rem cap) ();
      loop (rem - cap)
    end
  in
  loop total
