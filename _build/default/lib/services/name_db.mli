(** The name database: an X.500-flavoured hierarchical directory.

    Pure data structure (no simulated cost — the {!Name_service} wrapper
    charges).  Entries live at slash-separated paths, carry attribute
    lists and optionally a port, and changes fire registered
    notifications, matching the paper's description: "storing attribute
    information with names, complex naming formats, sophisticated search
    mechanisms and notifications on name space alteration". *)

open Mach.Ktypes

type t

type entry = {
  path : string;
  attributes : (string * string) list;
  bound_port : port option;
}

type change = Added of string | Removed of string | Modified of string

val create : unit -> t

val bind :
  t -> path:string -> ?attributes:(string * string) list -> ?port:port ->
  unit -> (unit, string) result
(** Create the entry (and any missing intermediate directories).  Fails
    when the leaf already exists. *)

val rebind :
  t -> path:string -> ?attributes:(string * string) list -> ?port:port ->
  unit -> unit
(** Like {!bind} but replaces an existing entry. *)

val unbind : t -> path:string -> bool

val resolve : t -> path:string -> entry option
val resolve_port : t -> path:string -> port option

val list_children : t -> path:string -> string list
(** Immediate child names, sorted. *)

val search :
  t -> ?root:string -> filter:(entry -> bool) -> unit -> entry list
(** Depth-first filtered search of a subtree. *)

val search_attribute : t -> key:string -> value:string -> entry list

val subscribe : t -> prefix:string -> (change -> unit) -> unit
(** Notification on any alteration under [prefix]. *)

val size : t -> int
(** Number of entries (directories included). *)

val steps : path:string -> int
(** Number of components in a path — the walk length a cost model needs. *)
