(** The X.500-flavoured name service, as a user-level server task.

    Port rights only have meaning inside a port space, and the kernel
    offers no name→port resolution, so every client and server finds the
    other through this service.  The interface supports attributes on
    names, hierarchical paths, attribute search and change notification —
    and is correspondingly expensive, which is why Release 2 added the
    {!Name_simple} alternative for embedded configurations (experiment
    E9 measures the difference).

    All client operations run over {!Mach.Rpc} from the calling thread's
    task. *)

open Mach.Ktypes

type t

val start : Mach.Kernel.t -> Runtime.t -> t
(** Create the name-server task and its service thread. *)

val port : t -> port
val task : t -> task
val db : t -> Name_db.t
(** Direct database access for tests and for the boot task (which runs
    before RPC plumbing exists). *)

(** {1 Client operations (RPC)} *)

val bind :
  t -> path:string -> ?attributes:(string * string) list ->
  ?target:port -> unit -> bool

val resolve : t -> path:string -> Name_db.entry option
val resolve_port : t -> path:string -> port option
val unbind : t -> path:string -> bool
val list_children : t -> path:string -> string list
val search_attribute : t -> key:string -> value:string -> Name_db.entry list

val requests_served : t -> int
