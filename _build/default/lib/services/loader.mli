(** The Microkernel Services program loader.

    Loads (synthetic) ELF images — programs and shared libraries — into
    address spaces.  Follows the design trajectory the paper describes:
    one load-module format per address space originally, later support
    for mixing personality-neutral and personality-specific code, shared
    libraries with {e address coercion} (one text region, the same
    address everywhere, restricted symbol-resolution semantics) versus
    SVR4-style per-task binding. *)

open Mach.Ktypes

type format =
  | Elf_svr4  (** full SVR4 symbol resolution at load time *)
  | Elf_coerced
      (** coerced shared library: same address in every space, restricted
          resolution — much cheaper to attach *)

type image = {
  img_name : string;
  img_format : format;
  img_text_bytes : int;
  img_data_bytes : int;
  img_symbols : int;  (** exported symbols: drives resolution cost *)
  img_needs : string list;  (** shared-library dependencies *)
}

type t

val create : Mach.Kernel.t -> Runtime.t -> t

val register : t -> image -> unit
(** Add an image to the (simulated) file-system-visible set.
    @raise Invalid_argument on duplicate names. *)

val registered : t -> string list

val load_library : t -> task -> string -> (Machine.Layout.region, string) result
(** Attach a shared library (and, recursively, its needs) to the task.
    The library text is allocated once, system-wide; SVR4 images charge
    per-symbol resolution on every attach, coerced images only on the
    first. *)

val load_program :
  t -> task -> string -> entry:(unit -> unit) -> (thread, string) result
(** Load a program image into the task: attach its needs, charge the
    segment setup, and start a thread at [entry]. *)

val libraries_of : task -> string list
val loads_performed : t -> int
