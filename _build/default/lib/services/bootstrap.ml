type naming = Full_naming | Simple_naming

type t = {
  kernel : Mach.Kernel.t;
  runtime : Runtime.t;
  pager : Default_pager.t;
  naming : naming;
  name_service : Name_service.t option;
  simple_names : Name_simple.t option;
  loader : Loader.t;
}

let boot ?(naming = Full_naming) machine =
  let kernel = Mach.Kernel.boot machine in
  let runtime = Runtime.install kernel in
  let pager = Default_pager.start kernel () in
  let name_service, simple_names =
    match naming with
    | Full_naming -> (Some (Name_service.start kernel runtime), None)
    | Simple_naming -> (None, Some (Name_simple.create kernel runtime))
  in
  let loader = Loader.create kernel runtime in
  { kernel; runtime; pager; naming; name_service; simple_names; loader }

let name_service_exn t =
  match t.name_service with
  | Some ns -> ns
  | None -> invalid_arg "Bootstrap: booted with Simple_naming"

let components t =
  [ "pn-runtime"; "default-pager"; "loader" ]
  @ (match t.naming with
    | Full_naming -> [ "name-service(x500)" ]
    | Simple_naming -> [ "name-service(simple)" ])
