(** The personality-neutral runtime.

    The IBM Microkernel shipped user-level libraries giving
    personality-neutral code an ANSI-C-style runtime, a C-threads-style
    threading package and memory-based synchronizers — essential to
    running servers without a UNIX environment underneath (Mach 3.0 could
    not).  One shared text region backs the library in every task, like a
    real shared library. *)

open Mach.Ktypes

type t

val install : Mach.Kernel.t -> t
(** Lay out the shared library text; idempotent per kernel. *)

val text : t -> Machine.Layout.region

val attach : t -> task -> unit
(** Record the library mapping in the task (shows up in the Figure 1
    inventory). *)

val execute : t -> ?offset:int -> bytes:int -> unit -> unit
(** Charge a stretch of library code (the building block for service
    implementations' user-level work). *)

(** {1 Heap} *)

val malloc : t -> task -> bytes:int -> int
(** Sub-page allocator over a per-task [Vm] heap; returns an address. *)

val free : t -> task -> int -> unit
(** @raise Kern_error [Kern_invalid_argument] on a bad address. *)

val heap_bytes_in_use : t -> task -> int

(** {1 C threads} *)

val cthread_fork : t -> task -> name:string -> (unit -> unit) -> thread
val cthread_yield : t -> unit

(** {1 Memory-based synchronizers}

    Fast path entirely in user space; kernel involvement only under
    contention — the cheap complement to {!Mach.Sync}. *)

type umutex

val umutex_create : t -> name:string -> umutex
val umutex_lock : t -> umutex -> unit
val umutex_unlock : t -> umutex -> unit
val umutex_contentions : umutex -> int

(** {1 ANSI C odds and ends} *)

val memcpy : t -> dst:int -> src:int -> bytes:int -> unit
(** User-level copy loop (distinct from the kernel's copy path). *)

val format_cost : t -> chars:int -> unit
(** The cost of printf-style formatting of [chars] output characters. *)
