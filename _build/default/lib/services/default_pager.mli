(** The default pager: backing store for anonymous memory.

    Owns a swap extent on the system disk; installs itself as the
    kernel's default backing store.  Page-ins are synchronous for the
    faulting thread (it sleeps on the disk), page-outs are
    fire-and-forget but occupy the disk head — the mechanism behind
    visible thrashing on the 16 MB Table 1 configuration. *)

type t

val start : Mach.Kernel.t -> ?swap_blocks:int -> ?swap_start:int -> unit -> t
(** Claims [swap_blocks] disk blocks from [swap_start] and installs the
    backing store. *)

val pageins : t -> int
val pageouts : t -> int
val swap_blocks_used : t -> int
val swap_full_events : t -> int
(** Times the swap allocator wrapped (old slots reclaimed). *)
