(** Object-runtime simulation: Taligent-style fine-grained C++ objects
    versus MK++-style coarse objects.

    The paper's finding: "fine-grained objects in C++ are not appropriate
    for operating systems" — deep class hierarchies maximizing reuse
    produce a very large number of very short virtual methods, stateful
    wrapper objects, big runtimes in kernel and user space, and I-cache
    unfriendly execution.  This module makes those properties measurable:

    - a {e fine-grained} runtime executes work as many short virtual
      method bodies scattered through a large framework text region, each
      preceded by a vtable load and an indirect-branch stall, walking
      superclass chains;
    - a {e coarse} runtime (the MK++ discipline: restricted virtuals,
      extensive inlining) executes the same work as few long straight-line
      bodies with direct calls.

    Experiment E6 runs the same protocol workload through both. *)

type style = Fine_grained | Coarse

type t
type klass
type obj

val create : Mach.Kernel.t -> style:style -> name:string -> t
val style : t -> style

val define_class :
  t -> name:string -> ?super:klass -> ?method_bytes:int -> unit -> klass
(** [method_bytes] defaults by style: short (96 B) bodies for
    fine-grained, long (768 B) for coarse. *)

val class_depth : klass -> int

val new_object : t -> klass -> obj
(** Allocates the object: header + per-object wrapper state (fine-grained
    wrappers are stateful, so they are big). *)

val delete_object : t -> obj -> unit

val vcall : t -> obj -> slot:int -> unit
(** One method invocation.  Fine-grained: vtable load, indirect-branch
    stall, short body at a class/slot-specific text offset, plus a
    super-chain call per inheritance level.  Coarse: direct call into a
    long body. *)

val invoke : t -> obj -> work_units:int -> unit
(** Run [work_units] of framework work against the object: fine-grained
    turns every unit into a {!vcall}; coarse batches units into one call
    per eight, as inlining would. *)

val vcalls : t -> int
val live_objects : t -> int

val memory_footprint_bytes : t -> int
(** Object headers + wrapper state + vtables + the language runtime
    itself (which the paper found "consumed considerable amounts of
    memory"). *)

val text_region : t -> Machine.Layout.region
