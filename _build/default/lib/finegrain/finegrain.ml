type style = Fine_grained | Coarse

type klass = {
  k_name : string;
  k_super : klass option;
  k_method_bytes : int;
  k_offset_seed : int;  (* where this class's methods land in the text *)
}

type obj = { o_class : klass; mutable o_live : bool; o_state_bytes : int }

type t = {
  kernel : Mach.Kernel.t;
  st : style;
  text : Machine.Layout.region;
  vtables : Machine.Layout.region;
  mutable classes : klass list;
  mutable vcall_count : int;
  mutable live : int;
  mutable object_bytes : int;
}

(* Region sizes reflect the paper's complaint: the fine-grained framework
   text and its runtime dwarf the disciplined coarse equivalent. *)
let text_bytes = function Fine_grained -> 192 * 1024 | Coarse -> 48 * 1024
let runtime_bytes = function Fine_grained -> 256 * 1024 | Coarse -> 48 * 1024
let header_bytes = function Fine_grained -> 32 | Coarse -> 8
let wrapper_state_bytes = function Fine_grained -> 96 | Coarse -> 0

let default_method_bytes = function Fine_grained -> 96 | Coarse -> 768

let create kernel ~style ~name =
  let layout = kernel.Mach.Kernel.machine.Machine.layout in
  let style_tag =
    match style with Fine_grained -> "fine" | Coarse -> "coarse"
  in
  let text =
    Machine.Layout.alloc layout
      ~name:(Printf.sprintf "objrt:%s:%s.text" style_tag name)
      ~kind:Machine.Layout.Code ~size:(text_bytes style)
  in
  let vtables =
    Machine.Layout.alloc layout
      ~name:(Printf.sprintf "objrt:%s:%s.vtables" style_tag name)
      ~kind:Machine.Layout.Data ~size:(16 * 1024)
  in
  {
    kernel;
    st = style;
    text;
    vtables;
    classes = [];
    vcall_count = 0;
    live = 0;
    object_bytes = 0;
  }

let style t = t.st

let define_class t ~name ?super ?method_bytes () =
  let k =
    {
      k_name = name;
      k_super = super;
      k_method_bytes =
        Option.value ~default:(default_method_bytes t.st) method_bytes;
      k_offset_seed = Hashtbl.hash name land 0xffff;
    }
  in
  t.classes <- k :: t.classes;
  k

let rec class_depth k =
  match k.k_super with None -> 1 | Some s -> 1 + class_depth s

let new_object t k =
  let state = header_bytes t.st + wrapper_state_bytes t.st in
  t.live <- t.live + 1;
  t.object_bytes <- t.object_bytes + state;
  (* constructor: runs the allocation path plus one vcall-shaped setup
     per inheritance level *)
  let machine = t.kernel.Mach.Kernel.machine in
  Machine.execute machine
    [
      Machine.Footprint.fetch t.text ~offset:0 ~bytes:160 ();
      Machine.Footprint.store
        ~addr:(t.vtables.Machine.Layout.base + 256) ~bytes:state;
    ];
  { o_class = k; o_live = true; o_state_bytes = state }

let delete_object t o =
  if o.o_live then begin
    o.o_live <- false;
    t.live <- t.live - 1;
    t.object_bytes <- t.object_bytes - o.o_state_bytes
  end

let method_offset t k slot =
  (* scatter method bodies through the framework text *)
  let span = t.text.Machine.Layout.size - 1024 in
  (k.k_offset_seed * 37 + slot * 193) * 61 mod span

let vcall t o ~slot =
  t.vcall_count <- t.vcall_count + 1;
  let machine = t.kernel.Mach.Kernel.machine in
  match t.st with
  | Fine_grained ->
      (* vtable pointer load + indirect branch stall + the short body,
         then a super-chain delegation per inheritance level *)
      let rec chain k slot =
        let off = method_offset t k slot in
        Machine.execute machine
          [
            Machine.Footprint.load
              ~addr:(t.vtables.Machine.Layout.base
                     + (k.k_offset_seed mod 8192))
              ~bytes:8;
            Machine.Footprint.Stall 5;
            Machine.Footprint.fetch t.text ~offset:off
              ~bytes:(k.k_method_bytes + 32) ();
          ];
        match k.k_super with
        | Some s -> chain s (slot + 1)
        | None -> ()
      in
      chain o.o_class slot
  | Coarse ->
      let off = method_offset t o.o_class slot in
      Machine.execute machine
        [ Machine.Footprint.fetch t.text ~offset:off
            ~bytes:o.o_class.k_method_bytes () ]

let invoke t o ~work_units =
  match t.st with
  | Fine_grained ->
      for u = 1 to work_units do
        vcall t o ~slot:(u mod 16)
      done
  | Coarse ->
      let calls = max 1 ((work_units + 7) / 8) in
      for u = 1 to calls do
        vcall t o ~slot:(u mod 4)
      done

let vcalls t = t.vcall_count
let live_objects t = t.live

let memory_footprint_bytes t =
  runtime_bytes t.st + t.object_bytes
  + (List.length t.classes
     * match t.st with Fine_grained -> 512 | Coarse -> 64)

let text_region t = t.text
