(** The seven Table 1 application benchmarks.

    Synthetic stand-ins for the paper's OS/2 test programs, generating
    the operation mixes the paper attributes to each (see DESIGN.md §5):
    IBM Works file traffic for the File Intensive rows, Klondike-style
    user-level drawing with growing working sets for the Graphics rows,
    and window-message ping-pong (Swp32/Wind32) for the PM Tasking
    rows. *)

type spec = {
  id : string;  (** paper row name *)
  app : string;  (** paper "application content" *)
  scale : int;  (** iteration count knob *)
  body : Api.t -> unit;  (** spawns the workload's processes *)
}

val all : spec list
(** The seven rows, in Table 1 order. *)

val find : string -> spec option

val run : Api.t -> spec -> int
(** Elapsed simulated cycles for the workload on the given system. *)

type row = { row_id : string; wpos_cycles : int; native_cycles : int; ratio : float }

val compare_systems : wpos:Api.t -> native:Api.t -> spec -> row

val overall : row list -> float
(** Geometric mean of the ratios (the paper's "Overall" row). *)
