type spec = {
  id : string;
  app : string;
  scale : int;
  body : Api.t -> unit;
}

let open_or_fail (api : Api.t) ~path ~create =
  match api.Api.f_open ~path ~create with
  | Ok h -> h
  | Error e -> failwith (Printf.sprintf "%s: open %s: %s" api.Api.api_name path e)

(* --- File Intensive 1: document-style traffic (IBM Works applications) --- *)

let file_intensive_1 scale (api : Api.t) =
  api.Api.spawn ~name:"works" (fun api ->
      let path = api.Api.root ^ "/works.doc" in
      for i = 1 to scale do
        let h = open_or_fail api ~path ~create:true in
        (* edit session: read the document, append, rewrite a section *)
        api.Api.f_seek h ~pos:0;
        for _ = 1 to 10 do
          ignore (api.Api.f_read h ~bytes:512)
        done;
        api.Api.f_seek h ~pos:(i * 128 mod 2048);
        for _ = 1 to 3 do
          ignore (api.Api.f_write h ~bytes:512)
        done;
        api.Api.f_close h;
        api.Api.compute ~units:12
      done)

(* --- File Intensive 2: many small records (IBM Works ToDo) ---------------- *)

let file_intensive_2 scale (api : Api.t) =
  api.Api.spawn ~name:"todo" (fun api ->
      for i = 1 to scale do
        let path = Printf.sprintf "%s/todo%03d.rec" api.Api.root (i mod 50) in
        let h = open_or_fail api ~path ~create:true in
        ignore (api.Api.f_write h ~bytes:128);
        api.Api.f_close h;
        let h = open_or_fail api ~path ~create:false in
        ignore (api.Api.f_read h ~bytes:128);
        api.Api.f_seek h ~pos:0;
        ignore (api.Api.f_read h ~bytes:64);
        ignore (api.Api.f_read h ~bytes:64);
        api.Api.f_close h;
        if i mod 2 = 0 then api.Api.f_unlink ~path;
        api.Api.compute ~units:6
      done)

(* --- Graphics: Klondike at three intensities ------------------------------ *)

(* mostly user-level: compute + direct screen-buffer stores, with a
   working set of card images that grows with intensity *)
let graphics ~frames ~ws_bytes ~rects (api : Api.t) =
  api.Api.spawn ~name:"klondike" (fun api ->
      let ws = if ws_bytes > 0 then api.Api.alloc ~bytes:ws_bytes else 0 in
      for frame = 1 to frames do
        (* walk a slice of the card images *)
        if ws_bytes > 0 then begin
          let slice = ws_bytes / 8 in
          let off = (frame * slice) mod (ws_bytes - slice + 1) in
          let rec touch_slice pos =
            if pos < off + slice then begin
              api.Api.touch ~addr:(ws + pos) ~write:(frame mod 4 = 0)
                ~bytes:2048;
              touch_slice (pos + 4096)
            end
          in
          touch_slice off
        end;
        api.Api.compute ~units:40;
        for r = 1 to rects do
          api.Api.draw
            ~x:(r * 37 mod 560)
            ~y:(r * 53 mod 370)
            ~w:71 ~h:96  (* a card *)
        done
      done)

(* --- PM Tasking: window-message ping-pong (Swp32 / Wind32) ---------------- *)

let pm_tasking ~processes ~messages ~draw_every (api : Api.t) =
  (* the hub process owns a reply queue; each peer echoes *)
  let hub_q = ref None in
  let peer_qs = Array.make processes None in
  api.Api.spawn ~name:"pm-hub" (fun api ->
      let q = api.Api.make_queue ~name:"hub" in
      hub_q := Some q;
      (* wait for the peers to come up *)
      let rec wait_peers () =
        if Array.exists Option.is_none peer_qs then begin
          api.Api.yield ();
          wait_peers ()
        end
      in
      wait_peers ();
      for m = 1 to messages do
        let peer = Option.get peer_qs.(m mod processes) in
        api.Api.q_post peer m;
        ignore (api.Api.q_wait q);
        api.Api.compute ~units:4;
        if m mod draw_every = 0 then
          api.Api.draw ~x:(m mod 500) ~y:(m mod 380) ~w:40 ~h:30
      done;
      (* shut the peers down *)
      Array.iter (fun q -> api.Api.q_post (Option.get q) 0) peer_qs);
  for p = 0 to processes - 1 do
    api.Api.spawn ~name:(Printf.sprintf "pm-peer%d" p) (fun api ->
        let q = api.Api.make_queue ~name:(Printf.sprintf "peer%d" p) in
        peer_qs.(p) <- Some q;
        let rec serve () =
          let v = api.Api.q_wait q in
          if v <> 0 then begin
            api.Api.compute ~units:3;
            (match !hub_q with
            | Some hq -> api.Api.q_post hq v
            | None -> ());
            serve ()
          end
        in
        serve ())
  done

(* --- the seven rows -------------------------------------------------------- *)

let mib n = n * 1024 * 1024

let all =
  [
    {
      id = "File Intensive 1";
      app = "IBM Works Applications";
      scale = 800;
      body = (fun api -> file_intensive_1 800 api);
    };
    {
      id = "File Intensive 2";
      app = "IBM Works ToDo";
      scale = 800;
      body = (fun api -> file_intensive_2 800 api);
    };
    {
      id = "Graphics Low";
      app = "Klondike";
      scale = 30;
      body = graphics ~frames:30 ~ws_bytes:(mib 1) ~rects:12;
    };
    {
      id = "Graphics Medium";
      app = "Klondike";
      scale = 45;
      body = graphics ~frames:45 ~ws_bytes:(mib 4) ~rects:20;
    };
    {
      id = "Graphics High";
      app = "Klondike";
      scale = 60;
      body = graphics ~frames:60 ~ws_bytes:(mib 16) ~rects:28;
    };
    {
      id = "PM Tasking Medium";
      app = "Swp32";
      scale = 150;
      body = pm_tasking ~processes:1 ~messages:150 ~draw_every:10;
    };
    {
      id = "PM Tasking High";
      app = "Wind32";
      scale = 300;
      body = pm_tasking ~processes:3 ~messages:300 ~draw_every:6;
    };
  ]

let find id = List.find_opt (fun s -> s.id = id) all

(* Elapsed time of the application, as the paper's benchmarks measured
   it: start to the last workload thread's completion.  Background disk
   write-back continuing after the application exits is not billed. *)
let run (api : Api.t) spec =
  let t0 = Machine.now api.Api.machine in
  let finish = ref t0 in
  let wrapped =
    {
      api with
      Api.spawn =
        (fun ~name body ->
          api.Api.spawn ~name (fun inner ->
              body { inner with Api.spawn = api.Api.spawn };
              finish := max !finish (Machine.now api.Api.machine)));
    }
  in
  spec.body wrapped;
  api.Api.go ();
  !finish - t0

type row = {
  row_id : string;
  wpos_cycles : int;
  native_cycles : int;
  ratio : float;
}

let compare_systems ~wpos ~native spec =
  let wpos_cycles = run wpos spec in
  let native_cycles = run native spec in
  {
    row_id = spec.id;
    wpos_cycles;
    native_cycles;
    ratio = float_of_int wpos_cycles /. float_of_int native_cycles;
  }

let overall rows =
  let logs = List.map (fun r -> log r.ratio) rows in
  exp (List.fold_left ( +. ) 0. logs /. float_of_int (List.length rows))
