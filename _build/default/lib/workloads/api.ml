type handle = Obj.t
type queue = Obj.t

type t = {
  api_name : string;
  machine : Machine.t;
  spawn : name:string -> (t -> unit) -> unit;
  go : unit -> unit;
  root : string;
  f_open : path:string -> create:bool -> (handle, string) result;
  f_read : handle -> bytes:int -> int;
  f_write : handle -> bytes:int -> int;
  f_seek : handle -> pos:int -> unit;
  f_close : handle -> unit;
  f_unlink : path:string -> unit;
  alloc : bytes:int -> int;
  touch : addr:int -> write:bool -> bytes:int -> unit;
  compute : units:int -> unit;
  draw : x:int -> y:int -> w:int -> h:int -> unit;
  make_queue : name:string -> queue;
  q_post : queue -> int -> unit;
  q_wait : queue -> int;
  yield : unit -> unit;
}

(* user-level computation: the application's hot loop — a 2 KB inner
   loop in its own text, cache-resident on either machine once warm *)
let compute_in_current_task (kernel : Mach.Kernel.t) ~units =
  let th = Mach.Sched.self () in
  let text = th.Mach.Ktypes.t_task.Mach.Ktypes.text in
  let base = 0x400 and window = 2048 in
  let rec loop remaining off =
    if remaining > 0 then begin
      let bytes = min 1024 (remaining * 64) in
      let off = if off + bytes > base + window then base else off in
      Mach.Ktext.exec_in kernel.Mach.Kernel.ktext text ~offset:off ~bytes;
      loop (remaining - ((bytes + 63) / 64)) (off + bytes)
    end
  in
  loop units base

let fs_err e = Fileserver.Fs_types.fs_error_to_string e

(* ---- WPOS: through the OS/2 personality --------------------------------- *)

let of_wpos (w : Wpos.t) =
  let kernel = w.Wpos.kernel in
  let os2 = w.Wpos.os2 in
  let pm = w.Wpos.pm in
  (* current thread's process *)
  let procs : (int, Personalities.Os2.process) Hashtbl.t = Hashtbl.create 8 in
  let current_process () =
    let th = Mach.Sched.self () in
    Hashtbl.find procs th.Mach.Ktypes.t_task.Mach.Ktypes.task_id
  in
  let windows :
      (int * int * int * int * int, Personalities.Pm.window) Hashtbl.t =
    Hashtbl.create 8
  in
  let window_for p ~x ~y ~w:ww ~h =
    let task = Personalities.Os2.process_task p in
    let key = (task.Mach.Ktypes.task_id, x, y, ww, h) in
    match Hashtbl.find_opt windows key with
    | Some win -> win
    | None ->
        let win = Personalities.Pm.win_create pm p ~x ~y ~w:ww ~h in
        Hashtbl.replace windows key win;
        win
  in
  let rec api =
    {
      api_name = "wpos-os2";
      machine = w.Wpos.machine;
      spawn =
        (fun ~name body ->
          let p =
            Personalities.Os2.create_process os2 ~name ~entry:(fun _p ->
                body api)
          in
          Hashtbl.replace procs
            (Personalities.Os2.process_task p).Mach.Ktypes.task_id p);
      go = (fun () -> Wpos.run w);
      root = "/os2";
      f_open =
        (fun ~path ~create ->
          match
            Personalities.Os2.dos_open os2 (current_process ()) ~path ~create
              ()
          with
          | Ok h -> Ok (Obj.repr h)
          | Error e -> Error (fs_err e));
      f_read =
        (fun h ~bytes ->
          match
            Personalities.Os2.dos_read os2 (current_process ()) (Obj.obj h)
              ~bytes
          with
          | Ok data -> Bytes.length data
          | Error _ -> 0);
      f_write =
        (fun h ~bytes ->
          match
            Personalities.Os2.dos_write os2 (current_process ()) (Obj.obj h)
              (Bytes.make bytes 'w')
          with
          | Ok n -> n
          | Error _ -> 0);
      f_seek =
        (fun h ~pos ->
          Fileserver.File_server.Client.seek w.Wpos.file_server (Obj.obj h)
            ~pos);
      f_close =
        (fun h -> Personalities.Os2.dos_close os2 (current_process ()) (Obj.obj h));
      f_unlink =
        (fun ~path ->
          ignore
            (Personalities.Os2.dos_delete os2 (current_process ()) ~path));
      alloc =
        (fun ~bytes ->
          match
            Personalities.Os2.dos_alloc_mem os2 (current_process ()) ~bytes
          with
          | Ok addr -> addr
          | Error e -> failwith (Mach.Ktypes.kern_return_to_string e));
      touch =
        (fun ~addr ~write ~bytes ->
          let th = Mach.Sched.self () in
          Mach.Vm.touch kernel.Mach.Kernel.sys th.Mach.Ktypes.t_task ~addr
            ~write ~bytes ());
      compute = (fun ~units -> compute_in_current_task kernel ~units);
      draw =
        (fun ~x ~y ~w:ww ~h ->
          (* Klondike style: user-level library drives the screen buffer *)
          let p = current_process () in
          let win = window_for p ~x ~y ~w:ww ~h in
          Personalities.Pm.gpi_fill pm win ~pixel:'k');
      make_queue =
        (fun ~name ->
          ignore name;
          let p = current_process () in
          Obj.repr (Personalities.Pm.win_create pm p ~x:0 ~y:0 ~w:64 ~h:64));
      q_post =
        (fun q v ->
          Personalities.Pm.win_post_msg pm (Obj.obj q) ~code:v ~param:0);
      q_wait =
        (fun q ->
          (Personalities.Pm.win_get_msg pm (Obj.obj q)).Personalities.Pm.msg_code);
      yield = (fun () -> Mach.Sched.yield ());
    }
  in
  api

(* ---- monolithic --------------------------------------------------------- *)

let of_monolithic (m : Monolithic.t) =
  let kernel = Monolithic.kernel m in
  let fb = (Monolithic.machine m).Machine.framebuffer in
  let queues : (int, int Queue.t * Mach.Sync.semaphore) Hashtbl.t =
    Hashtbl.create 8
  in
  let next_q = ref 0 in
  let rec api =
    {
      api_name = "native-os2";
      machine = Monolithic.machine m;
      spawn =
        (fun ~name body ->
          ignore (Monolithic.spawn_process m ~name (fun () -> body api)));
      go = (fun () -> Monolithic.run m);
      root = "/c";
      f_open =
        (fun ~path ~create ->
          match Monolithic.sys_open m ~path ~create () with
          | Ok h -> Ok (Obj.repr h)
          | Error e -> Error (fs_err e));
      f_read =
        (fun h ~bytes ->
          match Monolithic.sys_read m (Obj.obj h) ~bytes with
          | Ok data -> Bytes.length data
          | Error _ -> 0);
      f_write =
        (fun h ~bytes ->
          match Monolithic.sys_write m (Obj.obj h) (Bytes.make bytes 'w') with
          | Ok n -> n
          | Error _ -> 0);
      f_seek = (fun h ~pos -> Monolithic.sys_seek m (Obj.obj h) ~pos);
      f_close = (fun h -> Monolithic.sys_close m (Obj.obj h));
      f_unlink = (fun ~path -> ignore (Monolithic.sys_unlink m ~path));
      alloc = (fun ~bytes -> Monolithic.sys_alloc m ~bytes);
      touch =
        (fun ~addr ~write ~bytes -> Monolithic.sys_touch m ~addr ~write ~bytes ());
      compute = (fun ~units -> compute_in_current_task kernel ~units);
      draw =
        (fun ~x ~y ~w ~h ->
          (* native PM: also a user-level library over the frame buffer *)
          compute_in_current_task kernel ~units:(2 + (h / 4));
          let w = max 1 (min w (639 - x)) and h = max 1 (min h (479 - y)) in
          Machine.Framebuffer.fill_rect fb ~x ~y ~w ~h ~pixel:'n');
      make_queue =
        (fun ~name ->
          ignore name;
          incr next_q;
          let q = Queue.create () in
          let sem =
            Mach.Sync.semaphore_create kernel.Mach.Kernel.sys
              ~name:(Printf.sprintf "pmq%d" !next_q)
              ~value:0
          in
          Hashtbl.replace queues !next_q (q, sem);
          Obj.repr !next_q);
      q_post =
        (fun qr v ->
          let q, sem = Hashtbl.find queues (Obj.obj qr) in
          compute_in_current_task kernel ~units:2;
          Queue.add v q;
          Mach.Sync.semaphore_signal kernel.Mach.Kernel.sys sem);
      q_wait =
        (fun qr ->
          let q, sem = Hashtbl.find queues (Obj.obj qr) in
          ignore
            (Mach.Sync.semaphore_wait kernel.Mach.Kernel.sys sem
              : Mach.Ktypes.kern_return);
          match Queue.take_opt q with Some v -> v | None -> 0);
      yield = (fun () -> Monolithic.sys_yield m);
    }
  in
  api

let elapsed t f =
  let t0 = Machine.now t.machine in
  f ();
  Machine.now t.machine - t0
