(** The OS-facing surface the Table 1 workloads run against.

    Both systems — the WPOS multi-server assembly (through the OS/2
    personality: doscalls → file server RPC, PM message queues, the
    byte-granularity memory manager) and the monolithic comparator
    (traps into in-kernel services) — implement this one record, so a
    workload is written once and measured on both. *)

type handle

type queue
(** A PM-style message queue (window queue on WPOS, an equivalent
    semaphore-backed queue on the monolithic system). *)

type t = {
  api_name : string;
  machine : Machine.t;
  spawn : name:string -> (t -> unit) -> unit;
      (** Start an application process running the body. *)
  go : unit -> unit;  (** Drive the system until everything finishes. *)
  root : string;  (** Directory prefix for workload files. *)
  f_open : path:string -> create:bool -> (handle, string) result;
  f_read : handle -> bytes:int -> int;
  f_write : handle -> bytes:int -> int;
  f_seek : handle -> pos:int -> unit;
  f_close : handle -> unit;
  f_unlink : path:string -> unit;
  alloc : bytes:int -> int;
  touch : addr:int -> write:bool -> bytes:int -> unit;
  compute : units:int -> unit;
      (** User-level computation in the application's own text. *)
  draw : x:int -> y:int -> w:int -> h:int -> unit;
      (** Direct-to-framebuffer drawing from user level. *)
  make_queue : name:string -> queue;
  q_post : queue -> int -> unit;
  q_wait : queue -> int;
  yield : unit -> unit;
}

val of_wpos : Wpos.t -> t
val of_monolithic : Monolithic.t -> t

val elapsed : t -> (unit -> unit) -> int
(** Cycles consumed by running the action (usually [spawn]s + [go]). *)
