lib/workloads/micro.mli:
