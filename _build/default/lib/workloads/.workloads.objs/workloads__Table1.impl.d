lib/workloads/table1.ml: Api Array List Machine Option Printf
