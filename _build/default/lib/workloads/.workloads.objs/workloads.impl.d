lib/workloads/workloads.ml: Api Micro Table1
