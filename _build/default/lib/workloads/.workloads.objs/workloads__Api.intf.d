lib/workloads/api.mli: Machine Monolithic Wpos
