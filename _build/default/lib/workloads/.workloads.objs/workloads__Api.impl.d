lib/workloads/api.ml: Bytes Fileserver Hashtbl Mach Machine Monolithic Obj Personalities Printf Queue Wpos
