lib/workloads/micro.ml: Bytes Fileserver List Mach Machine Mk_services Monolithic
