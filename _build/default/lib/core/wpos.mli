(** Workplace OS: the multi-server assembly — the paper's primary
    artifact.

    [boot] brings up, in order: the IBM Microkernel (on the simulated
    machine), Microkernel Services (personality-neutral runtime, default
    pager, name service, loader), the device drivers under the chosen
    architecture, the shared services (file server over FAT/HPFS/JFS
    volumes, the fine-grained-object networking frameworks), and the
    operating-system personalities (OS/2 with Presentation Manager,
    and optionally MVM) — the full Figure 1 stack, with every server
    findable through the name service. *)

type config = {
  machine_config : Machine.Config.t;
  naming : Mk_services.Bootstrap.naming;
  driver_arch : Drivers.Disk_driver.arch;
  net_style : Finegrain.style;
  with_mvm : bool;
  mvm_translate : bool;  (** PowerPC-style block translation in MVM *)
  with_talos : bool;  (** the (unfinished) TalOS personality *)
  fs_blocks : int;  (** per-volume size *)
}

val default_config : config
(** The Table 1 WPOS machine: a 133 MHz PowerPC 604 with 64 MB, full
    naming, user-level disk driver, fine-grained networking, MVM with the
    translator on. *)

type t = {
  config : config;
  machine : Machine.t;
  kernel : Mach.Kernel.t;
  services : Mk_services.Bootstrap.t;
  resource_manager : Drivers.Resource_manager.t;
  disk_driver : Drivers.Disk_driver.t;
  display_driver : Drivers.Display_driver.t;
  vfs : Fileserver.Vfs.t;
  file_server : Fileserver.File_server.t;
  net : Netserver.t;
  os2 : Personalities.Os2.t;
  pm : Personalities.Pm.t;
  mvm : Personalities.Mvm.t option;
  talos : Personalities.Talos.t option;
}

val boot : ?config:config -> unit -> t

val run : t -> unit
(** Drive the system until idle. *)

val run_until : t -> (unit -> bool) -> bool

val name_service : t -> Mk_services.Name_service.t
(** @raise Invalid_argument when booted with [Simple_naming]. *)

val inventory : t -> (string * string list) list
(** Figure 1 as data: layer name -> components, bottom up. *)

val pp_figure1 : Format.formatter -> t -> unit
