type config = {
  machine_config : Machine.Config.t;
  naming : Mk_services.Bootstrap.naming;
  driver_arch : Drivers.Disk_driver.arch;
  net_style : Finegrain.style;
  with_mvm : bool;
  mvm_translate : bool;
  with_talos : bool;
  fs_blocks : int;
}

let default_config =
  {
    machine_config = Machine.Config.ppc604_133;
    naming = Mk_services.Bootstrap.Full_naming;
    driver_arch = Drivers.Disk_driver.User_level;
    net_style = Finegrain.Fine_grained;
    with_mvm = true;
    mvm_translate = true;
    with_talos = true;
    fs_blocks = 4096;
  }

type t = {
  config : config;
  machine : Machine.t;
  kernel : Mach.Kernel.t;
  services : Mk_services.Bootstrap.t;
  resource_manager : Drivers.Resource_manager.t;
  disk_driver : Drivers.Disk_driver.t;
  display_driver : Drivers.Display_driver.t;
  vfs : Fileserver.Vfs.t;
  file_server : Fileserver.File_server.t;
  net : Netserver.t;
  os2 : Personalities.Os2.t;
  pm : Personalities.Pm.t;
  mvm : Personalities.Mvm.t option;
  talos : Personalities.Talos.t option;
}

let mount_volumes kernel vfs ~fs_blocks =
  let disk = kernel.Mach.Kernel.machine.Machine.disk in
  Fileserver.Fat.mkfs disk ~start:0 ~blocks:fs_blocks ();
  Fileserver.Hpfs.mkfs disk ~start:fs_blocks ~blocks:fs_blocks ();
  Fileserver.Jfs.mkfs disk ~start:(2 * fs_blocks) ~blocks:fs_blocks ();
  let cache = Fileserver.Block_cache.create kernel disk () in
  let mnt at mount =
    match mount cache with
    | Ok pfs -> (
        match Fileserver.Vfs.mount vfs ~at pfs with
        | Ok () -> ()
        | Error e -> failwith e)
    | Error e -> failwith (Fileserver.Fs_types.fs_error_to_string e)
  in
  mnt "/c" (fun c -> Fileserver.Fat.mount c ~start:0 ());
  mnt "/os2" (fun c -> Fileserver.Hpfs.mount c ~start:fs_blocks ());
  mnt "/aix" (fun c -> Fileserver.Jfs.mount c ~start:(2 * fs_blocks) ())

let register_servers t =
  match t.services.Mk_services.Bootstrap.name_service with
  | None -> ()
  | Some ns ->
      let db = Mk_services.Name_service.db ns in
      let bind path ?port attrs =
        Mk_services.Name_db.rebind db ~path ~attributes:attrs ?port ()
      in
      bind "/servers/files"
        ~port:(Fileserver.File_server.port t.file_server)
        [ ("kind", "shared-service"); ("service", "file") ];
      bind "/servers/os2"
        ~port:(Personalities.Os2.server_port t.os2)
        [ ("kind", "personality"); ("service", "os2") ];
      bind "/servers/net" [ ("kind", "shared-service"); ("service", "network") ];
      List.iter
        (fun (mount, format) ->
          bind
            (Printf.sprintf "/volumes%s" mount)
            [ ("format", format) ])
        (Fileserver.Vfs.mounts t.vfs)

let boot ?(config = default_config) () =
  let machine = Machine.create config.machine_config in
  let services = Mk_services.Bootstrap.boot ~naming:config.naming machine in
  let kernel = services.Mk_services.Bootstrap.kernel in
  let runtime = services.Mk_services.Bootstrap.runtime in
  let resource_manager = Drivers.Resource_manager.create kernel in
  let disk_driver =
    match
      Drivers.Disk_driver.start kernel resource_manager
        ~arch:config.driver_arch
    with
    | Ok d -> d
    | Error e -> failwith ("wpos boot: disk driver: " ^ e)
  in
  let display_driver =
    match Drivers.Display_driver.start kernel resource_manager with
    | Ok d -> d
    | Error e -> failwith ("wpos boot: display driver: " ^ e)
  in
  let vfs = Fileserver.Vfs.create () in
  mount_volumes kernel vfs ~fs_blocks:config.fs_blocks;
  let file_server = Fileserver.File_server.start kernel runtime vfs () in
  let net = Netserver.create kernel ~style:config.net_style in
  let name_service = services.Mk_services.Bootstrap.name_service in
  let os2 =
    Personalities.Os2.start kernel runtime file_server ?name_service ()
  in
  let pm = Personalities.Pm.create kernel os2 in
  let mvm =
    if config.with_mvm then
      Some
        (Personalities.Mvm.start kernel runtime ~file_server
           ~translate:config.mvm_translate ())
    else None
  in
  let talos =
    if config.with_talos then
      Some (Personalities.Talos.start kernel runtime file_server ())
    else None
  in
  let t =
    {
      config;
      machine;
      kernel;
      services;
      resource_manager;
      disk_driver;
      display_driver;
      vfs;
      file_server;
      net;
      os2;
      pm;
      mvm;
      talos;
    }
  in
  register_servers t;
  t

let run t = Mach.Kernel.run t.kernel
let run_until t pred = Mach.Kernel.run_until t.kernel pred

let name_service t = Mk_services.Bootstrap.name_service_exn t.services

let inventory t =
  let microkernel =
    [
      "IPC/RPC"; "virtual memory"; "tasks and threads";
      "hosts and processor sets"; "I/O support"; "clocks and timers";
      "kernel synchronizers";
    ]
  in
  let mk_services = Mk_services.Bootstrap.components t.services in
  let drivers =
    [
      Printf.sprintf "disk (%s)"
        (match Drivers.Disk_driver.arch t.disk_driver with
        | Drivers.Disk_driver.User_level -> "user-level"
        | Drivers.Disk_driver.Kernel_bsd -> "in-kernel BSD-style"
        | Drivers.Disk_driver.Ooddm -> "OODDM");
      "display";
    ]
  in
  let shared =
    ("file server ("
    ^ String.concat ", " (List.map snd (Fileserver.Vfs.mounts t.vfs))
    ^ ")")
    :: [
         (match Finegrain.style (Netserver.objects t.net) with
         | Finegrain.Fine_grained -> "networking (fine-grained frameworks)"
         | Finegrain.Coarse -> "networking (coarse objects)");
       ]
  in
  let personalities =
    ("OS/2 server + doscalls + PM"
    :: (match t.mvm with Some _ -> [ "MVM (DOS/Windows)" ] | None -> []))
    @ (match t.talos with
      | Some _ -> [ "TalOS (frameworks only; never finished)" ]
      | None -> [])
  in
  let is_server_task name = Filename.check_suffix name "-server" in
  let apps =
    List.filter_map
      (fun (task : Mach.Ktypes.task) ->
        match task.Mach.Ktypes.personality with
        | "os2" | "mvm" | "talos"
          when not (is_server_task task.Mach.Ktypes.task_name) ->
            Some task.Mach.Ktypes.task_name
        | _ -> None)
      (Mach.Kernel.tasks t.kernel)
  in
  [
    ("microkernel (privileged)", microkernel);
    ("microkernel services", mk_services);
    ("device drivers", drivers);
    ("shared services", shared);
    ("personality servers", personalities);
    ("applications", apps);
  ]

let pp_figure1 ppf t =
  Format.fprintf ppf "@[<v>Workplace OS on %a@,@,"
    Machine.Config.pp t.machine.Machine.config;
  List.iter
    (fun (layer, components) ->
      Format.fprintf ppf "%-26s | %s@," layer (String.concat "; " components))
    (List.rev (inventory t));
  Format.fprintf ppf "@]"
