(** Device-driver architectures: the hardware resource manager with its
    request/yield/grant protocol, and the same disk/display drivers under
    the user-level, in-kernel BSD-style and Taligent OODDM models. *)

module Resource_manager = Resource_manager
module Disk_driver = Disk_driver
module Display_driver = Display_driver
