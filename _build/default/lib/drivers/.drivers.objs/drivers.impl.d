lib/drivers/drivers.ml: Disk_driver Display_driver Resource_manager
