lib/drivers/disk_driver.ml: Bytes Finegrain Mach Machine Resource_manager Result
