lib/drivers/display_driver.ml: Mach Machine Resource_manager
