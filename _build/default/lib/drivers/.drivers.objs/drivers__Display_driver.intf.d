lib/drivers/display_driver.mli: Mach Machine Resource_manager
