lib/drivers/disk_driver.mli: Mach Resource_manager
