lib/drivers/resource_manager.mli: Format Mach
