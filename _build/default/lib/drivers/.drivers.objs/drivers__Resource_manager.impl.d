lib/drivers/resource_manager.ml: Format List Mach Printf
