type t = {
  kernel : Mach.Kernel.t;
  fb : Machine.Framebuffer.t;
  mutable fill_count : int;
}

let start (kernel : Mach.Kernel.t) rm =
  let fb = kernel.Mach.Kernel.machine.Machine.framebuffer in
  let region = Machine.Framebuffer.region fb in
  match
    Resource_manager.request rm ~driver:"display"
      (Resource_manager.Io_range
         { base = region.Machine.Layout.base; len = region.Machine.Layout.size })
      ()
  with
  | Error e -> Error e
  | Ok (_ : Resource_manager.grant) -> Ok { kernel; fb; fill_count = 0 }

let map_into t task =
  Mach.Io.map_device_memory t.kernel.Mach.Kernel.io task
    (Machine.Framebuffer.region t.fb)

let fill t ~x ~y ~w ~h ~pixel =
  t.fill_count <- t.fill_count + 1;
  Mach.Trap.service t.kernel.Mach.Kernel.sys ();
  Machine.Framebuffer.fill_rect t.fb ~x ~y ~w ~h ~pixel

let framebuffer t = t.fb
let fills t = t.fill_count
