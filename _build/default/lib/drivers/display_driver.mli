(** The display driver: owns the frame-buffer aperture and exposes
    drawing entry points.

    Applications in both systems drive the screen buffer directly from
    user-level shared libraries (the paper's graphics workloads), so this
    driver's job is aperture mapping, mode bookkeeping and accelerated
    fills — the rare kernel-mediated operations. *)

type t

val start :
  Mach.Kernel.t -> Resource_manager.t -> (t, string) result

val map_into : t -> Mach.Ktypes.task -> unit
(** Give a task direct access to the frame buffer (the user-level fast
    path). *)

val fill : t -> x:int -> y:int -> w:int -> h:int -> pixel:char -> unit
(** Driver-mediated fill (charges a trap plus the blit). *)

val framebuffer : t -> Machine.Framebuffer.t
val fills : t -> int
