type resource =
  | Irq_line of int
  | Io_range of { base : int; len : int }
  | Dma_channel of int

type holding = {
  h_driver : string;
  h_resource : resource;
  h_on_yield : unit -> bool;
  mutable h_live : bool;
}

type grant = holding

type t = {
  kernel : Mach.Kernel.t;
  mutable holdings : holding list;
  mutable yields : int;
  mutable grants : int;
}

let create kernel = { kernel; holdings = []; yields = 0; grants = 0 }

let overlaps a b =
  match (a, b) with
  | Irq_line x, Irq_line y -> x = y
  | Dma_channel x, Dma_channel y -> x = y
  | Io_range x, Io_range y -> x.base < y.base + y.len && y.base < x.base + x.len
  | (Irq_line _ | Io_range _ | Dma_channel _), _ -> false

let charge t =
  Mach.Ktext.exec t.kernel.Mach.Kernel.ktext
    [ Mach.Ktext.cap_translate t.kernel.Mach.Kernel.ktext ]

let resource_to_string = function
  | Irq_line n -> Printf.sprintf "irq:%d" n
  | Io_range { base; len } -> Printf.sprintf "io:0x%x+%d" base len
  | Dma_channel n -> Printf.sprintf "dma:%d" n

let request t ~driver resource ?(on_yield = fun () -> false) () =
  charge t;
  let conflicting =
    List.filter
      (fun h -> h.h_live && overlaps h.h_resource resource)
      t.holdings
  in
  let still_held =
    List.filter
      (fun h ->
        (* ask the holder to yield *)
        t.yields <- t.yields + 1;
        if h.h_on_yield () then begin
          h.h_live <- false;
          false
        end
        else true)
      conflicting
  in
  match still_held with
  | h :: _ ->
      Error
        (Printf.sprintf "%s held by %s (refused to yield)"
           (resource_to_string resource)
           h.h_driver)
  | [] ->
      let g =
        { h_driver = driver; h_resource = resource; h_on_yield = on_yield;
          h_live = true }
      in
      t.holdings <- g :: t.holdings;
      t.grants <- t.grants + 1;
      Ok g

let release t g =
  g.h_live <- false;
  t.holdings <- List.filter (fun h -> h != g) t.holdings

let holder t resource =
  match
    List.find_opt
      (fun h -> h.h_live && overlaps h.h_resource resource)
      t.holdings
  with
  | Some h -> Some h.h_driver
  | None -> None

let yields_requested t = t.yields
let grants_issued t = t.grants

let pp_assignments ppf t =
  List.iter
    (fun h ->
      if h.h_live then
        Format.fprintf ppf "%-12s -> %s@," h.h_driver
          (resource_to_string h.h_resource))
    t.holdings
