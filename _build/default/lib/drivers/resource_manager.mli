(** The hardware resource manager (Golub/Sotomayor/Rawson 1993).

    Assigns hardware resources — interrupt lines, I/O port ranges, DMA
    channels — to drivers under a request / yield / grant protocol: a
    driver requests a resource; if another driver holds it, the holder is
    asked to yield; the resource is granted when free.  Conflicting holds
    are impossible by construction and every transition is observable. *)

type t

type resource =
  | Irq_line of int
  | Io_range of { base : int; len : int }
  | Dma_channel of int

type grant

val create : Mach.Kernel.t -> t

val request :
  t -> driver:string -> resource -> ?on_yield:(unit -> bool) -> unit ->
  (grant, string) result
(** [on_yield] is installed as the driver's willingness to give the
    resource up later (default: refuses). *)

val release : t -> grant -> unit

val holder : t -> resource -> string option

val yields_requested : t -> int
val grants_issued : t -> int

val pp_assignments : Format.formatter -> t -> unit
