(* Tests for the monolithic comparator OS. *)

open Fileserver.Fs_types

let boot ?fs_format () =
  Monolithic.boot (Machine.create Machine.Config.pentium_133) ?fs_format ()

let ok = Test_util.check_fs_ok

let in_process mono body =
  let result = ref None in
  ignore
    (Monolithic.spawn_process mono ~name:"t" (fun () ->
         result := Some (body ()))
      : Mach.Ktypes.task);
  Monolithic.run mono;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "process did not complete"

let test_file_syscalls () =
  let mono = boot () in
  in_process mono (fun () ->
      let h = ok "open" (Monolithic.sys_open mono ~path:"/c/a.txt" ~create:true ()) in
      Alcotest.(check int) "handles" 1 (Monolithic.open_handles mono);
      let n = ok "write" (Monolithic.sys_write mono h (Bytes.of_string "0123456789")) in
      Alcotest.(check int) "wrote" 10 n;
      Monolithic.sys_seek mono h ~pos:2;
      let data = ok "read" (Monolithic.sys_read mono h ~bytes:4) in
      Alcotest.(check string) "positioned" "2345" (Bytes.to_string data);
      Monolithic.sys_close mono h;
      Alcotest.(check int) "closed" 0 (Monolithic.open_handles mono);
      (match Monolithic.sys_read mono h ~bytes:1 with
      | Error E_bad_handle -> ()
      | _ -> Alcotest.fail "stale handle accepted");
      ok "mkdir" (Monolithic.sys_mkdir mono ~path:"/c/d");
      ok "rename" (Monolithic.sys_rename mono ~src:"/c/a.txt" ~dst:"/c/d/b.txt");
      let names = ok "readdir" (Monolithic.sys_readdir mono ~path:"/c/d") in
      Alcotest.(check (list string)) "dir" [ "b.txt" ] names;
      ok "unlink" (Monolithic.sys_unlink mono ~path:"/c/d/b.txt"))

let test_fat_variant () =
  let mono = boot ~fs_format:`Fat () in
  in_process mono (fun () ->
      (match Monolithic.sys_open mono ~path:"/c/longname.file" ~create:true () with
      | Error E_name_too_long -> ()
      | _ -> Alcotest.fail "FAT root accepted a long name");
      let h = ok "8.3 ok" (Monolithic.sys_open mono ~path:"/c/OK.TXT" ~create:true ()) in
      Monolithic.sys_close mono h)

let test_trap_cost_vs_rpc () =
  (* the monolithic syscall must be substantially cheaper than the file
     server RPC for the same work: this is the paper's core comparison *)
  let f = Workloads.Micro.fileserver_factor ~ops:150 () in
  Alcotest.(check bool) "factor in the paper's band (2.5 .. 5)" true
    Workloads.Micro.(f.fx_factor > 2.5 && f.fx_factor < 5.0)

let test_memory_syscalls () =
  let mono = boot () in
  let k = Monolithic.kernel mono in
  in_process mono (fun () ->
      let before = Mach.Vm.resident_pages k.Mach.Kernel.sys in
      let addr = Monolithic.sys_alloc mono ~bytes:(8 * 4096) in
      Alcotest.(check int) "commitment-oriented: eager" (before + 8)
        (Mach.Vm.resident_pages k.Mach.Kernel.sys);
      Monolithic.sys_touch mono ~addr ~write:true ~bytes:4096 ())

let test_processes_and_yield () =
  let mono = boot () in
  let log = ref [] in
  ignore
    (Monolithic.spawn_process mono ~name:"p1" (fun () ->
         log := "a1" :: !log;
         Monolithic.sys_yield mono;
         log := "a2" :: !log)
      : Mach.Ktypes.task);
  ignore
    (Monolithic.spawn_process mono ~name:"p2" (fun () ->
         log := "b1" :: !log;
         Monolithic.sys_yield mono;
         log := "b2" :: !log)
      : Mach.Ktypes.task);
  Monolithic.run mono;
  Alcotest.(check (list string)) "interleaved" [ "b2"; "a2"; "b1"; "a1" ] !log

let suite =
  [
    Alcotest.test_case "file syscalls" `Quick test_file_syscalls;
    Alcotest.test_case "fat variant" `Quick test_fat_variant;
    Alcotest.test_case "trap vs rpc factor" `Slow test_trap_cost_vs_rpc;
    Alcotest.test_case "memory syscalls" `Quick test_memory_syscalls;
    Alcotest.test_case "processes+yield" `Quick test_processes_and_yield;
  ]
