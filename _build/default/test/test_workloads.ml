(* Tests for the workload layer: the API adapters drive both systems and
   the microbenchmarks land in the paper's bands. *)

let test_api_parity_monolithic () =
  let m = Machine.create Machine.Config.pentium_133 in
  let api = Workloads.Api.of_monolithic (Monolithic.boot m ~fs_format:`Hpfs ()) in
  let read_back = ref (-1) in
  api.Workloads.Api.spawn ~name:"t" (fun api ->
      let open Workloads.Api in
      match api.f_open ~path:"/c/x" ~create:true with
      | Error e -> Alcotest.fail e
      | Ok h ->
          ignore (api.f_write h ~bytes:100);
          api.f_seek h ~pos:0;
          read_back := api.f_read h ~bytes:100;
          api.f_close h;
          let a = api.alloc ~bytes:4096 in
          api.touch ~addr:a ~write:true ~bytes:4096;
          api.compute ~units:4;
          api.draw ~x:1 ~y:1 ~w:4 ~h:4);
  api.Workloads.Api.go ();
  Alcotest.(check int) "file ops work" 100 !read_back

let test_api_parity_wpos () =
  let w = Wpos.boot ~config:{ Wpos.default_config with Wpos.with_mvm = false;
                              Wpos.fs_blocks = 2048 } () in
  let api = Workloads.Api.of_wpos w in
  let read_back = ref (-1) in
  api.Workloads.Api.spawn ~name:"t" (fun api ->
      let open Workloads.Api in
      match api.f_open ~path:"/os2/x" ~create:true with
      | Error e -> Alcotest.fail e
      | Ok h ->
          ignore (api.f_write h ~bytes:100);
          api.f_seek h ~pos:0;
          read_back := api.f_read h ~bytes:100;
          api.f_close h;
          let a = api.alloc ~bytes:4096 in
          api.touch ~addr:a ~write:true ~bytes:4096;
          api.compute ~units:4;
          api.draw ~x:1 ~y:1 ~w:4 ~h:4);
  api.Workloads.Api.go ();
  Alcotest.(check int) "file ops work" 100 !read_back

let test_queues_ping_pong () =
  let m = Machine.create Machine.Config.pentium_133 in
  let api = Workloads.Api.of_monolithic (Monolithic.boot m ~fs_format:`Hpfs ()) in
  let got = ref 0 in
  let q1 = ref None in
  api.Workloads.Api.spawn ~name:"a" (fun api ->
      let open Workloads.Api in
      let q = api.make_queue ~name:"a" in
      q1 := Some q;
      got := api.q_wait q);
  api.Workloads.Api.spawn ~name:"b" (fun api ->
      let open Workloads.Api in
      let rec wait () =
        match !q1 with
        | Some q -> api.q_post q 17
        | None ->
            api.yield ();
            wait ()
      in
      wait ());
  api.Workloads.Api.go ();
  Alcotest.(check int) "message arrived" 17 !got

let test_table1_specs_complete () =
  Alcotest.(check int) "seven rows" 7 (List.length Workloads.Table1.all);
  List.iter
    (fun (s : Workloads.Table1.spec) ->
      Alcotest.(check bool)
        (s.Workloads.Table1.id ^ " findable")
        true
        (Workloads.Table1.find s.Workloads.Table1.id <> None))
    Workloads.Table1.all

let test_table2_bands () =
  let trap, rpc = Workloads.Micro.table2 ~iters:500 () in
  let open Workloads.Micro in
  (* the paper's ratios, within tolerance *)
  let r_inst = rpc.t2_instructions /. trap.t2_instructions in
  let r_cyc = rpc.t2_cycles /. trap.t2_cycles in
  let r_cpi = rpc.t2_cpi /. trap.t2_cpi in
  Alcotest.(check bool) "instruction ratio ~2.8" true
    (r_inst > 2.3 && r_inst < 3.4);
  Alcotest.(check bool) "cycle ratio ~5.3" true (r_cyc > 4.0 && r_cyc < 6.5);
  Alcotest.(check bool) "CPI ratio ~1.95" true (r_cpi > 1.5 && r_cpi < 2.4);
  Alcotest.(check bool) "trap CPI ~2" true
    (trap.t2_cpi > 1.7 && trap.t2_cpi < 2.4)

let test_ipc_sweep_band () =
  let points = Workloads.Micro.ipc_sweep ~iters:100 ~sizes:[ 0; 4096; 65536 ] () in
  List.iter
    (fun p ->
      let open Workloads.Micro in
      Alcotest.(check bool)
        (Printf.sprintf "improvement at %d bytes within 2-10x (got %.2f)"
           p.sw_bytes p.sw_improvement)
        true
        (p.sw_improvement >= 1.8 && p.sw_improvement <= 11.0))
    points;
  (* magnitude depends on bytes: the small and large ends differ *)
  match points with
  | [ small; _; large ] ->
      Alcotest.(check bool) "size-dependent" true
        Workloads.Micro.(small.sw_improvement > large.sw_improvement +. 1.0)
  | _ -> Alcotest.fail "unexpected sweep shape"

let suite =
  [
    Alcotest.test_case "api parity: monolithic" `Quick test_api_parity_monolithic;
    Alcotest.test_case "api parity: wpos" `Quick test_api_parity_wpos;
    Alcotest.test_case "queues ping-pong" `Quick test_queues_ping_pong;
    Alcotest.test_case "table1 specs complete" `Quick test_table1_specs_complete;
    Alcotest.test_case "table2 in paper bands" `Slow test_table2_bands;
    Alcotest.test_case "ipc sweep in paper band" `Slow test_ipc_sweep_band;
  ]
