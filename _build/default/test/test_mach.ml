(* Unit and integration tests for the microkernel. *)

open Mach.Ktypes

let kr : kern_return Alcotest.testable =
  Alcotest.testable
    (fun ppf k -> Format.pp_print_string ppf (kern_return_to_string k))
    ( = )

(* --- scheduler ---------------------------------------------------------- *)

let test_spawn_run () =
  let k = Test_util.kernel_on () in
  let hits = ref 0 in
  let task = Mach.Kernel.task_create k ~name:"t" () in
  Test_util.spawn k task "a" (fun () -> incr hits);
  Test_util.spawn k task "b" (fun () -> incr hits);
  Mach.Kernel.run k;
  Alcotest.(check int) "both ran" 2 !hits

let test_yield_interleaves () =
  let k = Test_util.kernel_on () in
  let log = ref [] in
  let task = Mach.Kernel.task_create k ~name:"t" () in
  Test_util.spawn k task "a" (fun () ->
      log := "a1" :: !log;
      Mach.Sched.yield ();
      log := "a2" :: !log);
  Test_util.spawn k task "b" (fun () ->
      log := "b1" :: !log;
      Mach.Sched.yield ();
      log := "b2" :: !log);
  Mach.Kernel.run k;
  Alcotest.(check (list string)) "round robin" [ "b2"; "a2"; "b1"; "a1" ] !log

let test_block_wake () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let task = Mach.Kernel.task_create k ~name:"t" () in
  let waiter = ref None in
  let result = ref Kern_aborted in
  Test_util.spawn k task "sleeper" (fun () ->
      waiter := Some (Mach.Sched.self ());
      result := Mach.Sched.block "test-wait");
  Test_util.spawn k task "waker" (fun () ->
      match !waiter with
      | Some th -> Mach.Sched.wake sys ~result:Kern_timed_out th
      | None -> Alcotest.fail "sleeper did not run first");
  Mach.Kernel.run k;
  Alcotest.check kr "wake result propagates" Kern_timed_out !result

let test_self () =
  let k = Test_util.kernel_on () in
  let name =
    Test_util.run_in_thread k (fun () -> (Mach.Sched.self ()).tname)
  in
  Alcotest.(check string) "self works" "test" name

let test_switch_charges_address_space () =
  let k = Test_util.kernel_on () in
  let m = k.Mach.Kernel.machine in
  let t1 = Mach.Kernel.task_create k ~name:"t1" () in
  let t2 = Mach.Kernel.task_create k ~name:"t2" () in
  Test_util.spawn k t1 "a" (fun () -> Mach.Sched.yield ());
  Test_util.spawn k t2 "b" (fun () -> Mach.Sched.yield ());
  let before = Machine.Perf.snapshot (Machine.Cpu.perf m.Machine.cpu) in
  Mach.Kernel.run k;
  let d =
    Machine.Perf.diff (Machine.Perf.snapshot (Machine.Cpu.perf m.Machine.cpu)) before
  in
  Alcotest.(check bool) "cross-task dispatches flush" true
    (d.Machine.Perf.address_space_switches >= 2)

(* --- ports -------------------------------------------------------------- *)

let test_port_rights () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let a = Mach.Kernel.task_create k ~name:"a" () in
  let b = Mach.Kernel.task_create k ~name:"b" () in
  let p = Mach.Port.allocate sys ~receiver:a ~name:"svc" in
  Alcotest.(check int) "receiver has the receive right" 1 (Mach.Port.rights_held a);
  let name = Mach.Port.insert_right sys b p Send_right in
  (match Mach.Port.lookup b name with
  | Some entry ->
      Alcotest.(check bool) "entry names the port" true (entry.re_port == p)
  | None -> Alcotest.fail "no entry");
  let name2 = Mach.Port.insert_right sys b p Send_right in
  Alcotest.(check int) "same name reused" name name2;
  Alcotest.check kr "dealloc" Kern_success (Mach.Port.deallocate_right sys b name);
  Alcotest.check kr "refcount survives one dealloc" Kern_success
    (Mach.Port.deallocate_right sys b name);
  Alcotest.check kr "gone" Kern_invalid_name (Mach.Port.deallocate_right sys b name)

let test_port_destroy_wakes () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let a = Mach.Kernel.task_create k ~name:"a" () in
  let p = Mach.Port.allocate sys ~receiver:a ~name:"svc" in
  let got = ref None in
  Test_util.spawn k a "server" (fun () ->
      got := Some (Mach.Rpc.receive sys p));
  Test_util.spawn k a "killer" (fun () -> Mach.Port.destroy sys p);
  Mach.Kernel.run k;
  match !got with
  | Some (Error e) -> Alcotest.check kr "dead port" Kern_port_dead e
  | Some (Ok _) -> Alcotest.fail "receive succeeded on dead port"
  | None -> Alcotest.fail "receive never returned"

(* --- RPC ---------------------------------------------------------------- *)

let test_rpc_roundtrip () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let server = Mach.Kernel.task_create k ~name:"server" () in
  let p = Mach.Port.allocate sys ~receiver:server ~name:"echo" in
  Test_util.spawn k server "srv" (fun () ->
      Mach.Rpc.serve sys p (fun req ->
          match req.msg_payload with
          | P_int n -> simple_message ~inline_bytes:8 ~payload:(P_int (n * 2)) ()
          | _ -> simple_message ~payload:(P_error Kern_invalid_argument) ()));
  let client = Mach.Kernel.task_create k ~name:"client" () in
  let results = ref [] in
  Test_util.spawn k client "cl" (fun () ->
      for i = 1 to 5 do
        match
          Mach.Rpc.call sys p
            (simple_message ~inline_bytes:8 ~payload:(P_int i) ())
        with
        | Ok reply -> (
            match reply.msg_payload with
            | P_int n -> results := n :: !results
            | _ -> Alcotest.fail "bad payload")
        | Error e -> Alcotest.fail (kern_return_to_string e)
      done;
      Mach.Port.destroy sys p);
  Mach.Kernel.run k;
  Alcotest.(check (list int)) "doubled" [ 10; 8; 6; 4; 2 ] !results

let test_rpc_call_dead_port () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let server = Mach.Kernel.task_create k ~name:"server" () in
  let p = Mach.Port.allocate sys ~receiver:server ~name:"x" in
  Mach.Port.destroy sys p;
  let r =
    Test_util.run_in_thread k (fun () -> Mach.Rpc.call sys p (simple_message ()))
  in
  match r with
  | Error e -> Alcotest.check kr "dead" Kern_port_dead e
  | Ok _ -> Alcotest.fail "call to dead port succeeded"

let test_rpc_queues_clients () =
  (* two clients calling before any server exists: calls pend as blocked
     threads (no message queue), then drain in order *)
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let server = Mach.Kernel.task_create k ~name:"server" () in
  let p = Mach.Port.allocate sys ~receiver:server ~name:"late" in
  let served = ref [] in
  let c1 = Mach.Kernel.task_create k ~name:"c1" () in
  let c2 = Mach.Kernel.task_create k ~name:"c2" () in
  let call tag () =
    match
      Mach.Rpc.call sys p (simple_message ~payload:(P_string tag) ())
    with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (kern_return_to_string e)
  in
  Test_util.spawn k c1 "c1" (call "one");
  Test_util.spawn k c2 "c2" (call "two");
  Test_util.spawn k server "srv" (fun () ->
      for _ = 1 to 2 do
        match Mach.Rpc.receive sys p with
        | Ok rx ->
            (match rx.rx_request.msg_payload with
            | P_string s -> served := s :: !served
            | _ -> ());
            Mach.Rpc.reply sys rx (simple_message ())
        | Error e -> Alcotest.fail (kern_return_to_string e)
      done);
  Mach.Kernel.run k;
  Alcotest.(check (list string)) "FIFO service" [ "two"; "one" ] !served

(* --- Mach 3.0 IPC ------------------------------------------------------- *)

let test_ipc_send_receive () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let a = Mach.Kernel.task_create k ~name:"a" () in
  let b = Mach.Kernel.task_create k ~name:"b" () in
  let p = Mach.Port.allocate sys ~receiver:b ~name:"q" in
  let got = ref [] in
  Test_util.spawn k a "sender" (fun () ->
      for i = 1 to 3 do
        Alcotest.check kr "send"
          Kern_success
          (Mach.Ipc.send sys p
             (simple_message ~inline_bytes:16 ~payload:(P_int i) ()))
      done);
  Test_util.spawn k b "receiver" (fun () ->
      for _ = 1 to 3 do
        match Mach.Ipc.receive sys p with
        | Ok msg -> (
            match msg.msg_payload with
            | P_int i -> got := i :: !got
            | _ -> ())
        | Error e -> Alcotest.fail (kern_return_to_string e)
      done);
  Mach.Kernel.run k;
  Alcotest.(check (list int)) "in order" [ 3; 2; 1 ] !got

let test_ipc_queue_limit_blocks_sender () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let a = Mach.Kernel.task_create k ~name:"a" () in
  let b = Mach.Kernel.task_create k ~name:"b" () in
  let p = Mach.Port.allocate sys ~receiver:b ~name:"q" in
  p.q_limit <- 2;
  let sent = ref 0 in
  let received = ref 0 in
  Test_util.spawn k a "sender" (fun () ->
      for _ = 1 to 4 do
        ignore (Mach.Ipc.send sys p (simple_message ()) : kern_return);
        incr sent
      done);
  Test_util.spawn k b "receiver" (fun () ->
      (* let the sender fill the queue first *)
      Mach.Sched.yield ();
      for _ = 1 to 4 do
        ignore (Mach.Ipc.receive sys p);
        incr received
      done);
  Mach.Kernel.run k;
  Alcotest.(check int) "all sent" 4 !sent;
  Alcotest.(check int) "all received" 4 !received

let test_ipc_call_via_reply_port () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let server = Mach.Kernel.task_create k ~name:"server" () in
  let p = Mach.Port.allocate sys ~receiver:server ~name:"svc" in
  Test_util.spawn k server "srv" (fun () ->
      for _ = 1 to 2 do
        ignore
          (Mach.Ipc.serve_one sys p (fun req ->
               match req.msg_payload with
               | P_int n -> simple_message ~payload:(P_int (n + 1)) ()
               | _ -> simple_message ())
            : kern_return)
      done);
  let client = Mach.Kernel.task_create k ~name:"client" () in
  let out = ref [] in
  Test_util.spawn k client "cl" (fun () ->
      for i = 0 to 1 do
        match Mach.Ipc.call sys p (simple_message ~payload:(P_int i) ()) with
        | Ok reply -> (
            match reply.msg_payload with
            | P_int n -> out := n :: !out
            | _ -> ())
        | Error e -> Alcotest.fail (kern_return_to_string e)
      done);
  Mach.Kernel.run k;
  Alcotest.(check (list int)) "incremented" [ 2; 1 ] !out

let test_ipc_ool_virtual_copy () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let a = Mach.Kernel.task_create k ~name:"a" () in
  let b = Mach.Kernel.task_create k ~name:"b" () in
  let p = Mach.Port.allocate sys ~receiver:b ~name:"q" in
  let entries_before = Mach.Vm.entry_count b in
  Test_util.spawn k a "sender" (fun () ->
      let buf = Mach.Vm.allocate sys a ~bytes:(16 * 1024) () in
      Mach.Vm.touch sys a ~addr:buf ~write:true ~bytes:(16 * 1024) ();
      ignore
        (Mach.Ipc.send sys p
           (simple_message ~ool:[ (buf, 16 * 1024) ] ())
          : kern_return));
  let faults_after_touch = ref 0 in
  Test_util.spawn k b "receiver" (fun () ->
      match Mach.Ipc.receive sys p with
      | Ok msg -> (
          match msg.msg_ool with
          | [ r ] ->
              (* reads go through the still-resident source pages; writes
                 must materialise private copies, one fault per page *)
              Mach.Vm.touch sys b ~addr:r.ool_addr ~bytes:r.ool_bytes ();
              let f0 = Mach.Vm.page_faults sys in
              Mach.Vm.touch sys b ~addr:r.ool_addr ~write:true
                ~bytes:r.ool_bytes ();
              faults_after_touch := Mach.Vm.page_faults sys - f0
          | _ -> Alcotest.fail "expected one OOL region")
      | Error e -> Alcotest.fail (kern_return_to_string e));
  Mach.Kernel.run k;
  Alcotest.(check int) "a mapping appeared" (entries_before + 1)
    (Mach.Vm.entry_count b);
  Alcotest.(check int) "COW write faults, one per page" 4 !faults_after_touch

(* --- VM ------------------------------------------------------------------ *)

let test_vm_alloc_touch () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let t = Mach.Kernel.task_create k ~name:"t" () in
  Test_util.run_in_thread k (fun () ->
      let addr = Mach.Vm.allocate sys t ~bytes:8192 () in
      let f0 = Mach.Vm.page_faults sys in
      Mach.Vm.touch sys t ~addr ~write:true ~bytes:8192 ();
      Alcotest.(check int) "two zero-fill faults" 2 (Mach.Vm.page_faults sys - f0);
      Mach.Vm.touch sys t ~addr ~bytes:8192 ();
      Alcotest.(check int) "warm: no more faults" 2 (Mach.Vm.page_faults sys - f0))

let test_vm_eager_commit () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let t = Mach.Kernel.task_create k ~name:"t" () in
  let r0 = Mach.Vm.resident_pages sys in
  let _addr = Mach.Vm.allocate sys t ~bytes:(8 * 4096) ~eager:true () in
  Alcotest.(check int) "committed up front" (r0 + 8) (Mach.Vm.resident_pages sys);
  Alcotest.(check bool) "counts as committed" true
    (Mach.Vm.committed_bytes t >= 8 * 4096)

let test_vm_protection () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let t = Mach.Kernel.task_create k ~name:"t" () in
  Test_util.run_in_thread k (fun () ->
      let obj = Mach.Vm.object_create sys ~bytes:4096 () in
      let addr = Mach.Vm.map_object sys t obj ~bytes:4096 ~prot:prot_ro () in
      Mach.Vm.touch sys t ~addr ~bytes:100 ();
      match Mach.Vm.touch sys t ~addr ~write:true ~bytes:100 () with
      | () -> Alcotest.fail "write to read-only memory succeeded"
      | exception Kern_error Kern_protection_failure -> ())

let test_vm_unmapped () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let t = Mach.Kernel.task_create k ~name:"t" () in
  Test_util.run_in_thread k (fun () ->
      match Mach.Vm.touch sys t ~addr:0x7000_0000 ~bytes:4 () with
      | () -> Alcotest.fail "unmapped touch succeeded"
      | exception Kern_error Kern_invalid_argument -> ())

let test_vm_coerced () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let a = Mach.Kernel.task_create k ~name:"a" () in
  let b = Mach.Kernel.task_create k ~name:"b" () in
  let addr = Mach.Vm.allocate_coerced sys [ a; b ] ~bytes:4096 in
  Test_util.run_in_thread k (fun () ->
      (* same address valid in both maps, backed by one object *)
      Mach.Vm.touch sys a ~addr ~write:true ~bytes:64 ();
      Mach.Vm.touch sys b ~addr ~bytes:64 ());
  match (Mach.Vm.find_entry a.vm addr, Mach.Vm.find_entry b.vm addr) with
  | Some ea, Some eb ->
      Alcotest.(check bool) "one object" true (ea.ent_obj == eb.ent_obj);
      Alcotest.(check bool) "coerced flag" true (ea.ent_coerced && eb.ent_coerced)
  | _ -> Alcotest.fail "mapping missing"

let test_vm_cow_write_fault () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let a = Mach.Kernel.task_create k ~name:"a" () in
  let b = Mach.Kernel.task_create k ~name:"b" () in
  Test_util.run_in_thread k (fun () ->
      let src = Mach.Vm.allocate sys a ~bytes:8192 () in
      Mach.Vm.touch sys a ~addr:src ~write:true ~bytes:8192 ();
      let dst = Mach.Vm.virtual_copy sys ~src_task:a ~addr:src ~bytes:8192 ~dst_task:b in
      let f0 = Mach.Vm.page_faults sys in
      (* writing the copy forces private page copies *)
      Mach.Vm.touch sys b ~addr:dst ~write:true ~bytes:8192 ();
      Alcotest.(check int) "one COW fault per page" 2 (Mach.Vm.page_faults sys - f0))

(* --- synchronizers, clocks, io ------------------------------------------- *)

let test_semaphore_producer_consumer () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let t = Mach.Kernel.task_create k ~name:"t" () in
  let sem = Mach.Sync.semaphore_create sys ~name:"items" ~value:0 in
  let consumed = ref 0 in
  Test_util.spawn k t "consumer" (fun () ->
      for _ = 1 to 3 do
        ignore (Mach.Sync.semaphore_wait sys sem : kern_return);
        incr consumed
      done);
  Test_util.spawn k t "producer" (fun () ->
      for _ = 1 to 3 do
        Mach.Sync.semaphore_signal sys sem;
        Mach.Sched.yield ()
      done);
  Mach.Kernel.run k;
  Alcotest.(check int) "all consumed" 3 !consumed

let test_mutex_exclusion () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let t = Mach.Kernel.task_create k ~name:"t" () in
  let m = Mach.Sync.mutex_create sys ~name:"m" in
  let in_section = ref 0 in
  let max_in_section = ref 0 in
  let worker () =
    for _ = 1 to 3 do
      ignore (Mach.Sync.mutex_lock sys m : kern_return);
      incr in_section;
      max_in_section := max !max_in_section !in_section;
      Mach.Sched.yield ();
      decr in_section;
      Mach.Sync.mutex_unlock sys m
    done
  in
  Test_util.spawn k t "w1" worker;
  Test_util.spawn k t "w2" worker;
  Mach.Kernel.run k;
  Alcotest.(check int) "mutual exclusion" 1 !max_in_section

let test_mutex_wrong_owner () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let m = Mach.Sync.mutex_create sys ~name:"m" in
  Test_util.run_in_thread k (fun () ->
      match Mach.Sync.mutex_unlock sys m with
      | () -> Alcotest.fail "unlock of unowned mutex succeeded"
      | exception Kern_error Kern_invalid_argument -> ())

let test_event_broadcast () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let t = Mach.Kernel.task_create k ~name:"t" () in
  let e = Mach.Sync.event_create sys ~name:"go" in
  let woken = ref 0 in
  for i = 1 to 3 do
    Test_util.spawn k t (Printf.sprintf "w%d" i) (fun () ->
        ignore (Mach.Sync.event_wait sys e : kern_return);
        incr woken)
  done;
  Test_util.spawn k t "bcast" (fun () ->
      Mach.Sched.yield ();
      Mach.Sync.event_broadcast sys e);
  Mach.Kernel.run k;
  Alcotest.(check int) "all woken" 3 !woken

let test_semaphore_timeout () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let task = Mach.Kernel.task_create k ~name:"t" () in
  let sem = Mach.Sync.semaphore_create sys ~name:"never" ~value:0 in
  let outcome = ref Kern_success in
  Test_util.spawn k task "waiter" (fun () ->
      outcome := Mach.Sync.semaphore_wait_timeout sys sem ~timeout:10_000);
  Mach.Kernel.run k;
  Alcotest.check kr "timed out" Kern_timed_out !outcome;
  (* and the signalled case beats the deadline *)
  let sem2 = Mach.Sync.semaphore_create sys ~name:"soon" ~value:0 in
  let outcome2 = ref Kern_timed_out in
  Test_util.spawn k task "waiter2" (fun () ->
      outcome2 := Mach.Sync.semaphore_wait_timeout sys sem2 ~timeout:1_000_000);
  Test_util.spawn k task "signaller" (fun () ->
      Mach.Sync.semaphore_signal sys sem2);
  Mach.Kernel.run k;
  Alcotest.check kr "signal wins" Kern_success !outcome2

let test_clock_sleep () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let m = k.Mach.Kernel.machine in
  let elapsed =
    Test_util.run_in_thread k (fun () ->
        let t0 = Machine.now m in
        ignore (Mach.Clock.sleep_for sys ~cycles:50_000 : kern_return);
        Machine.now m - t0)
  in
  Alcotest.(check bool) "slept at least the requested time" true
    (elapsed >= 50_000)

let test_periodic_timer () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let fired = ref 0 in
  let timer = Mach.Clock.arm_periodic sys ~every:10_000 ~count:5 (fun () -> incr fired) in
  Test_util.run_in_thread k (fun () ->
      ignore (Mach.Clock.sleep_for sys ~cycles:200_000 : kern_return));
  Alcotest.(check int) "five firings" 5 !fired;
  Alcotest.(check int) "counter matches" 5 (Mach.Clock.fired timer)

let test_user_level_interrupt_reflection () =
  let k = Test_util.kernel_on () in
  let io = k.Mach.Kernel.io in
  let m = k.Mach.Kernel.machine in
  let t = Mach.Kernel.task_create k ~name:"driver" () in
  Mach.Io.attach_user_handler io ~line:7 ~name:"dev7";
  let handled = ref 0 in
  Test_util.spawn k t "intr-thread" (fun () ->
      for _ = 1 to 2 do
        ignore (Mach.Io.next_interrupt io ~line:7 : kern_return);
        incr handled
      done);
  Machine.Event_queue.schedule m.Machine.events ~at:1000 (fun () ->
      Machine.Irq.raise_line m.Machine.irq 7);
  Machine.Event_queue.schedule m.Machine.events ~at:2000 (fun () ->
      Machine.Irq.raise_line m.Machine.irq 7);
  Mach.Kernel.run k;
  Alcotest.(check int) "both reflected" 2 !handled

let test_dma_transfer () =
  let k = Test_util.kernel_on () in
  let io = k.Mach.Kernel.io in
  let done_ = ref false in
  let ch = Mach.Io.dma_open io ~channel:1 in
  Mach.Io.dma_transfer io ch ~bytes:4096 (fun () -> done_ := true);
  Mach.Kernel.run k;
  Alcotest.(check bool) "completion fired" true !done_

let test_trap_thread_self () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let tid =
    Test_util.run_in_thread k (fun () -> (Mach.Trap.thread_self sys).tid)
  in
  Alcotest.(check bool) "returns the current thread" true (tid > 0)

let test_host_info () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let hi = Mach.Host.host_info sys in
  Alcotest.(check int) "uniprocessor" 1 hi.Mach.Host.processors;
  Alcotest.(check int) "16 MB" (16 * 1024 * 1024) hi.Mach.Host.memory_bytes

let suite =
  [
    Alcotest.test_case "spawn+run" `Quick test_spawn_run;
    Alcotest.test_case "yield interleaves" `Quick test_yield_interleaves;
    Alcotest.test_case "block/wake" `Quick test_block_wake;
    Alcotest.test_case "self" `Quick test_self;
    Alcotest.test_case "AS switch charged" `Quick test_switch_charges_address_space;
    Alcotest.test_case "port rights" `Quick test_port_rights;
    Alcotest.test_case "port destroy wakes" `Quick test_port_destroy_wakes;
    Alcotest.test_case "rpc roundtrip" `Quick test_rpc_roundtrip;
    Alcotest.test_case "rpc dead port" `Quick test_rpc_call_dead_port;
    Alcotest.test_case "rpc queues clients" `Quick test_rpc_queues_clients;
    Alcotest.test_case "ipc send/receive" `Quick test_ipc_send_receive;
    Alcotest.test_case "ipc queue limit" `Quick test_ipc_queue_limit_blocks_sender;
    Alcotest.test_case "ipc reply-port call" `Quick test_ipc_call_via_reply_port;
    Alcotest.test_case "ipc OOL virtual copy" `Quick test_ipc_ool_virtual_copy;
    Alcotest.test_case "vm alloc+touch" `Quick test_vm_alloc_touch;
    Alcotest.test_case "vm eager commit" `Quick test_vm_eager_commit;
    Alcotest.test_case "vm protection" `Quick test_vm_protection;
    Alcotest.test_case "vm unmapped" `Quick test_vm_unmapped;
    Alcotest.test_case "vm coerced" `Quick test_vm_coerced;
    Alcotest.test_case "vm COW write fault" `Quick test_vm_cow_write_fault;
    Alcotest.test_case "semaphore" `Quick test_semaphore_producer_consumer;
    Alcotest.test_case "mutex exclusion" `Quick test_mutex_exclusion;
    Alcotest.test_case "mutex wrong owner" `Quick test_mutex_wrong_owner;
    Alcotest.test_case "event broadcast" `Quick test_event_broadcast;
    Alcotest.test_case "semaphore timeout" `Quick test_semaphore_timeout;
    Alcotest.test_case "clock sleep" `Quick test_clock_sleep;
    Alcotest.test_case "periodic timer" `Quick test_periodic_timer;
    Alcotest.test_case "user interrupt reflection" `Quick
      test_user_level_interrupt_reflection;
    Alcotest.test_case "dma transfer" `Quick test_dma_transfer;
    Alcotest.test_case "trap thread_self" `Quick test_trap_thread_self;
    Alcotest.test_case "host info" `Quick test_host_info;
  ]
