(* Unit tests for the simulated-hardware substrate. *)

open Machine

let test_cache_hit_miss () =
  let c = Cache.create { Config.size = 1024; line = 32; assoc = 2 } in
  Alcotest.(check bool) "first access misses" false (Cache.access c 0x100);
  Alcotest.(check bool) "second access hits" true (Cache.access c 0x100);
  Alcotest.(check bool) "same line hits" true (Cache.access c 0x110);
  Alcotest.(check bool) "different line misses" false (Cache.access c 0x200)

let test_cache_conflict_lru () =
  (* 1 KiB, 32-byte lines, 2-way: 16 sets, set repeats every 512 bytes *)
  let c = Cache.create { Config.size = 1024; line = 32; assoc = 2 } in
  ignore (Cache.access c 0x000 : bool);
  ignore (Cache.access c 0x200 : bool);
  Alcotest.(check bool) "two ways hold both" true (Cache.access c 0x000);
  ignore (Cache.access c 0x400 : bool);  (* evicts LRU = 0x200 *)
  Alcotest.(check bool) "survivor stays" true (Cache.access c 0x000);
  Alcotest.(check bool) "victim evicted" false (Cache.access c 0x200)

let test_cache_flush () =
  let c = Cache.create { Config.size = 1024; line = 32; assoc = 2 } in
  ignore (Cache.access c 0x40 : bool);
  Alcotest.(check int) "one line resident" 1 (Cache.resident c);
  Cache.flush c;
  Alcotest.(check int) "flushed" 0 (Cache.resident c);
  Alcotest.(check bool) "miss after flush" false (Cache.access c 0x40)

let test_tlb () =
  let t = Tlb.create ~entries:2 ~page_size:4096 in
  Alcotest.(check bool) "cold miss" false (Tlb.access t 0x1000);
  Alcotest.(check bool) "hit" true (Tlb.access t 0x1fff);
  ignore (Tlb.access t 0x2000 : bool);
  ignore (Tlb.access t 0x3000 : bool);  (* evicts LRU page 1 *)
  Alcotest.(check bool) "LRU evicted" false (Tlb.access t 0x1000);
  Tlb.flush t;
  Alcotest.(check int) "flush empties" 0 (Tlb.resident t)

let test_layout () =
  let l = Layout.create Config.pentium_133 in
  let a = Layout.alloc l ~name:"a" ~kind:Layout.Code ~size:100 in
  let b = Layout.alloc l ~name:"b" ~kind:Layout.Data ~size:5000 in
  Alcotest.(check bool) "page aligned" true (a.Layout.base mod 4096 = 0);
  Alcotest.(check int) "size rounded" 4096 a.Layout.size;
  Alcotest.(check bool) "no overlap" true (b.Layout.base >= Layout.end_of a);
  Alcotest.(check bool) "find works" true (Layout.find l "b" = Some b);
  let d = Layout.alloc l ~name:"dev" ~kind:Layout.Device ~size:4096 in
  Alcotest.(check bool) "device above memory" true
    (d.Layout.base >= Config.pentium_133.Config.memory_bytes)

let test_layout_exhaustion () =
  let small = Config.with_memory Config.pentium_133 ~bytes:(64 * 1024) in
  let l = Layout.create small in
  Alcotest.check_raises "out of memory" (Failure "exhausted")
    (fun () ->
      try ignore (Layout.alloc l ~name:"big" ~kind:Layout.Data ~size:(1024 * 1024) : Layout.region)
      with Failure _ -> raise (Failure "exhausted"))

let test_event_queue () =
  let q = Event_queue.create () in
  let log = ref [] in
  Event_queue.schedule q ~at:200 (fun () -> log := 200 :: !log);
  Event_queue.schedule q ~at:100 (fun () -> log := 100 :: !log);
  Event_queue.schedule q ~at:100 (fun () -> log := 101 :: !log);
  Alcotest.(check (option int)) "next" (Some 100) (Event_queue.next_time q);
  let fired = Event_queue.run_due q ~now:150 in
  Alcotest.(check int) "two fired" 2 fired;
  Alcotest.(check (list int)) "FIFO within a time" [ 101; 100 ] !log;
  ignore (Event_queue.run_due q ~now:500 : int);
  Alcotest.(check (list int)) "all fired" [ 200; 101; 100 ] !log

let test_cpu_charges () =
  let m = create Config.pentium_133 in
  let r = Layout.alloc m.layout ~name:"code" ~kind:Layout.Code ~size:4096 in
  let before = Perf.snapshot (Cpu.perf m.cpu) in
  execute m [ Footprint.fetch r ~bytes:400 () ];
  let d = Perf.diff (Perf.snapshot (Cpu.perf m.cpu)) before in
  Alcotest.(check int) "instructions = bytes/4" 100 d.Perf.instructions;
  Alcotest.(check bool) "cycles charged" true (d.Perf.cycles > 0);
  Alcotest.(check bool) "cold misses" true (d.Perf.icache_misses > 0);
  (* steady state: same fetch again is all hits *)
  let before = Perf.snapshot (Cpu.perf m.cpu) in
  execute m [ Footprint.fetch r ~bytes:400 () ];
  let d2 = Perf.diff (Perf.snapshot (Cpu.perf m.cpu)) before in
  Alcotest.(check int) "warm: no misses" 0 d2.Perf.icache_misses;
  Alcotest.(check bool) "warm cheaper" true (d2.Perf.cycles < d.Perf.cycles)

let test_write_through_bus () =
  let m = create Config.pentium_133 in
  let before = Perf.snapshot (Cpu.perf m.cpu) in
  execute m [ Footprint.store ~addr:0x8000 ~bytes:64 ];
  let d = Perf.diff (Perf.snapshot (Cpu.perf m.cpu)) before in
  (* 16 words * write_bus_cycles(4) plus the line fills *)
  Alcotest.(check bool) "stores hit the bus" true (d.Perf.bus_cycles >= 64)

let test_as_switch_flushes_tlb () =
  let m = create Config.pentium_133 in
  execute m [ Footprint.load ~addr:0x9000 ~bytes:4 ];
  execute m [ Footprint.load ~addr:0x9000 ~bytes:4 ];
  let before = Perf.snapshot (Cpu.perf m.cpu) in
  execute m [ Footprint.Switch_address_space ];
  execute m [ Footprint.load ~addr:0x9000 ~bytes:4 ];
  let d = Perf.diff (Perf.snapshot (Cpu.perf m.cpu)) before in
  Alcotest.(check int) "switch counted" 1 d.Perf.address_space_switches;
  Alcotest.(check bool) "page walk after flush" true (d.Perf.tlb_misses >= 1)

let test_disk_roundtrip () =
  let m = create Config.pentium_133 in
  let data = Bytes.make 512 'x' in
  let done_ = ref false in
  Disk.write m.disk ~block:10 data (fun () -> done_ := true);
  while Machine.advance_to_next_event m do () done;
  Alcotest.(check bool) "write completed" true !done_;
  let got = ref Bytes.empty in
  Disk.read m.disk ~block:10 ~count:1 (fun b -> got := b);
  while Machine.advance_to_next_event m do () done;
  Alcotest.(check bytes) "data persisted" data !got

let test_disk_latency_and_interrupts () =
  let m = create Config.pentium_133 in
  let t0 = now m in
  let done_at = ref 0 in
  Disk.read m.disk ~block:0 ~count:4 (fun _ -> done_at := now m);
  while Machine.advance_to_next_event m do () done;
  let g = Disk.default_geometry in
  let expected = g.Disk.seek_cycles + (4 * g.Disk.transfer_cycles_per_block) in
  Alcotest.(check int) "service time" expected (!done_at - t0);
  let p = Perf.snapshot (Cpu.perf m.cpu) in
  Alcotest.(check int) "interrupt delivered" 1 p.Perf.interrupts

let test_disk_fifo_queue () =
  let m = create Config.pentium_133 in
  let order = ref [] in
  Disk.read m.disk ~block:0 ~count:1 (fun _ -> order := 1 :: !order);
  Disk.read m.disk ~block:100 ~count:1 (fun _ -> order := 2 :: !order);
  Disk.read m.disk ~block:200 ~count:1 (fun _ -> order := 3 :: !order);
  while Machine.advance_to_next_event m do () done;
  Alcotest.(check (list int)) "FIFO order" [ 3; 2; 1 ] !order

let test_disk_bounds () =
  let m = create Config.pentium_133 in
  Alcotest.check_raises "out of range" (Invalid_argument "range")
    (fun () ->
      try Disk.read m.disk ~block:(-1) ~count:1 (fun _ -> ())
      with Invalid_argument _ -> raise (Invalid_argument "range"))

let test_framebuffer () =
  let m = create Config.pentium_133 in
  let fb = m.framebuffer in
  let before = Perf.snapshot (Cpu.perf m.cpu) in
  Framebuffer.fill_rect fb ~x:10 ~y:10 ~w:20 ~h:5 ~pixel:'z';
  let d = Perf.diff (Perf.snapshot (Cpu.perf m.cpu)) before in
  Alcotest.(check char) "pixel set" 'z' (Framebuffer.pixel fb ~x:15 ~y:12);
  Alcotest.(check char) "outside untouched" '\000' (Framebuffer.pixel fb ~x:5 ~y:5);
  Alcotest.(check int) "pixels counted" 100 (Framebuffer.pixels_written fb);
  Alcotest.(check bool) "uncached stores cost bus" true (d.Perf.bus_cycles > 0)

let test_irq_spurious () =
  let m = create Config.pentium_133 in
  Irq.raise_line m.irq 5;
  Alcotest.(check int) "spurious counted" 1 (Irq.spurious m.irq);
  let hits = ref 0 in
  Irq.register m.irq ~line:5 ~name:"t" (fun () -> incr hits);
  Irq.raise_line m.irq 5;
  Alcotest.(check int) "handler ran" 1 !hits

let test_perf_diff () =
  let p = Perf.create () in
  Perf.add_instructions p 10;
  Perf.add_cycles p 25.0;
  let s1 = Perf.snapshot p in
  Perf.add_instructions p 5;
  Perf.add_cycles p 10.0;
  let d = Perf.diff (Perf.snapshot p) s1 in
  Alcotest.(check int) "inst delta" 5 d.Perf.instructions;
  Alcotest.(check int) "cycle delta" 10 d.Perf.cycles;
  Alcotest.(check (float 0.01)) "cpi" 2.0 (Perf.cpi d)

let suite =
  [
    Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache conflict LRU" `Quick test_cache_conflict_lru;
    Alcotest.test_case "cache flush" `Quick test_cache_flush;
    Alcotest.test_case "tlb" `Quick test_tlb;
    Alcotest.test_case "layout" `Quick test_layout;
    Alcotest.test_case "layout exhaustion" `Quick test_layout_exhaustion;
    Alcotest.test_case "event queue" `Quick test_event_queue;
    Alcotest.test_case "cpu charges" `Quick test_cpu_charges;
    Alcotest.test_case "write-through bus" `Quick test_write_through_bus;
    Alcotest.test_case "AS switch flushes TLB" `Quick test_as_switch_flushes_tlb;
    Alcotest.test_case "disk roundtrip" `Quick test_disk_roundtrip;
    Alcotest.test_case "disk latency+irq" `Quick test_disk_latency_and_interrupts;
    Alcotest.test_case "disk FIFO" `Quick test_disk_fifo_queue;
    Alcotest.test_case "disk bounds" `Quick test_disk_bounds;
    Alcotest.test_case "framebuffer" `Quick test_framebuffer;
    Alcotest.test_case "irq spurious" `Quick test_irq_spurious;
    Alcotest.test_case "perf diff" `Quick test_perf_diff;
  ]
