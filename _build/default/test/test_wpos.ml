(* Integration tests: the full Workplace OS assembly. *)

let small_config =
  { Wpos.default_config with Wpos.fs_blocks = 2048; Wpos.with_mvm = true }

let test_boot_inventory () =
  let w = Wpos.boot ~config:small_config () in
  let layers = List.map fst (Wpos.inventory w) in
  Alcotest.(check (list string)) "figure 1 layers"
    [
      "microkernel (privileged)"; "microkernel services"; "device drivers";
      "shared services"; "personality servers"; "applications";
    ]
    layers;
  let mk = List.assoc "microkernel (privileged)" (Wpos.inventory w) in
  Alcotest.(check int) "seven microkernel facilities" 7 (List.length mk);
  let servers = List.assoc "personality servers" (Wpos.inventory w) in
  Alcotest.(check int) "os2 + mvm + talos" 3 (List.length servers)

let test_name_space_registration () =
  let w = Wpos.boot ~config:small_config () in
  let db = Mk_services.Name_service.db (Wpos.name_service w) in
  Alcotest.(check (list string)) "servers registered"
    [ "files"; "net"; "os2" ]
    (Mk_services.Name_db.list_children db ~path:"/servers");
  Alcotest.(check (list string)) "volumes registered"
    [ "aix"; "c"; "os2" ]
    (Mk_services.Name_db.list_children db ~path:"/volumes");
  (* the registered file-server port is the live one *)
  match Mk_services.Name_db.resolve_port db ~path:"/servers/files" with
  | Some p ->
      Alcotest.(check bool) "correct port" true
        (p == Fileserver.File_server.port w.Wpos.file_server)
  | None -> Alcotest.fail "file server not resolvable"

let test_cross_personality_file_sharing () =
  (* an OS/2 process writes; a PN task reads the same file through the
     same server *)
  let w = Wpos.boot ~config:small_config () in
  let os2 = w.Wpos.os2 in
  let fs = w.Wpos.file_server in
  ignore
    (Personalities.Os2.create_process os2 ~name:"writer.exe"
       ~entry:(fun p ->
         match
           Personalities.Os2.dos_open os2 p ~path:"/os2/shared.txt"
             ~create:true ()
         with
         | Ok h ->
             ignore
               (Personalities.Os2.dos_write os2 p h
                  (Bytes.of_string "cross-personality"));
             Personalities.Os2.dos_close os2 p h
         | Error _ -> ()));
  Wpos.run w;
  let read_back = ref "" in
  let pn = Mach.Kernel.task_create w.Wpos.kernel ~name:"pn-reader" () in
  ignore
    (Mach.Kernel.thread_spawn w.Wpos.kernel pn ~name:"read" (fun () ->
         let sem = Fileserver.Vfs.unix_semantics in
         match
           Fileserver.File_server.Client.open_ fs sem ~path:"/os2/shared.txt" ()
         with
         | Ok h -> (
             match Fileserver.File_server.Client.read fs h ~bytes:64 with
             | Ok data -> read_back := Bytes.to_string data
             | Error _ -> ())
         | Error _ -> ())
      : Mach.Ktypes.thread);
  Wpos.run w;
  Alcotest.(check string) "shared through one server" "cross-personality"
    !read_back

let test_driver_arch_configurable () =
  let w =
    Wpos.boot
      ~config:
        { small_config with
          Wpos.driver_arch = Drivers.Disk_driver.Kernel_bsd;
          Wpos.with_mvm = false }
      ()
  in
  Alcotest.(check bool) "arch respected" true
    (Drivers.Disk_driver.arch w.Wpos.disk_driver = Drivers.Disk_driver.Kernel_bsd)

let test_simple_naming_boot () =
  let w =
    Wpos.boot
      ~config:
        { small_config with
          Wpos.naming = Mk_services.Bootstrap.Simple_naming;
          Wpos.with_mvm = false }
      ()
  in
  match Wpos.name_service w with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "full naming unexpectedly present"

let test_resource_assignments () =
  let w = Wpos.boot ~config:small_config () in
  let rm = w.Wpos.resource_manager in
  Alcotest.(check (option string)) "disk irq owner" (Some "disk.user")
    (Drivers.Resource_manager.holder rm
       (Drivers.Resource_manager.Irq_line Machine.disk_irq_line));
  Alcotest.(check bool) "grants issued" true
    (Drivers.Resource_manager.grants_issued rm >= 3)

let suite =
  [
    Alcotest.test_case "boot inventory (figure 1)" `Quick test_boot_inventory;
    Alcotest.test_case "name space registration" `Quick
      test_name_space_registration;
    Alcotest.test_case "cross-personality file sharing" `Quick
      test_cross_personality_file_sharing;
    Alcotest.test_case "driver arch configurable" `Quick
      test_driver_arch_configurable;
    Alcotest.test_case "simple naming boot" `Quick test_simple_naming_boot;
    Alcotest.test_case "resource assignments" `Quick test_resource_assignments;
  ]
