test/test_util.ml: Alcotest Fileserver Format Mach Machine
