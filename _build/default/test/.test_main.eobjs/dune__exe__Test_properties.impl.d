test/test_properties.ml: Bytes Char Fileserver Gen List Mach Machine Mk_services Printf QCheck QCheck_alcotest String Test_util
