test/test_workloads.ml: Alcotest List Machine Monolithic Printf Workloads Wpos
