test/test_wpos.ml: Alcotest Bytes Drivers Fileserver List Mach Machine Mk_services Personalities Wpos
