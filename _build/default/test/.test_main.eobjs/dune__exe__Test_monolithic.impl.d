test/test_monolithic.ml: Alcotest Bytes Fileserver Mach Machine Monolithic Test_util Workloads
