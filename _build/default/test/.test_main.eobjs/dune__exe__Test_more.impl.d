test/test_more.ml: Alcotest Bytes Fileserver Finegrain Float Format List Mach Machine Mk_services Netserver String Test_util
