test/test_fileserver.ml: Alcotest Bytes Char Fileserver Mach Machine Mk_services String Test_util
