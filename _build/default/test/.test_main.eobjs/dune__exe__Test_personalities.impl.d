test/test_personalities.ml: Alcotest Bytes Fileserver Finegrain List Mach Machine Mk_services Personalities Test_util Wpos
