test/test_mach.ml: Alcotest Format Mach Machine Printf Test_util
