test/test_services.ml: Alcotest List Mach Machine Mk_services Result Test_util
