test/test_finegrain.ml: Alcotest Finegrain Mach Machine Netserver Test_util
