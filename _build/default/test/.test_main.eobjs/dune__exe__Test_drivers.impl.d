test/test_drivers.ml: Alcotest Bytes Drivers List Mach Machine Option Test_util
