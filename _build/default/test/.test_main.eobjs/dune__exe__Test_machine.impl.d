test/test_machine.ml: Alcotest Bytes Cache Config Cpu Disk Event_queue Footprint Framebuffer Irq Layout Machine Perf Tlb
