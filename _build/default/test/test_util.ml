(* Shared helpers for the test suites: boot a system, run bodies inside
   simulated threads, and collect results. *)

let pentium () = Machine.create Machine.Config.pentium_133
let ppc () = Machine.create Machine.Config.ppc604_133

let kernel_on ?(config = Machine.Config.pentium_133) () =
  Mach.Kernel.boot (Machine.create config)

(* Run [body] inside a fresh thread of a fresh task and drive the system
   to completion; returns the body's result.  Fails the test if the body
   never finished (deadlock). *)
let run_in_thread ?(name = "test") kernel body =
  let task = Mach.Kernel.task_create kernel ~name () in
  let result = ref None in
  ignore
    (Mach.Kernel.thread_spawn kernel task ~name (fun () ->
         result := Some (body ()))
      : Mach.Ktypes.thread);
  Mach.Kernel.run kernel;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail (name ^ ": thread body did not complete")

(* Spawn a body in an existing task. *)
let spawn kernel task name body =
  ignore (Mach.Kernel.thread_spawn kernel task ~name body : Mach.Ktypes.thread)

let check_fs_ok label = function
  | Ok v -> v
  | Error e -> Alcotest.fail (label ^ ": " ^ Fileserver.Fs_types.fs_error_to_string e)

let fs_error : Fileserver.Fs_types.fs_error Alcotest.testable =
  Alcotest.testable
    (fun ppf e ->
      Format.pp_print_string ppf (Fileserver.Fs_types.fs_error_to_string e))
    ( = )
