(* Additional edge-case coverage across the stack. *)

open Mach.Ktypes

let kr = Alcotest.testable
    (fun ppf k -> Format.pp_print_string ppf (kern_return_to_string k))
    ( = )

(* --- machine edges -------------------------------------------------------- *)

let test_layout_alloc_at_overlap () =
  let l = Machine.Layout.create Machine.Config.pentium_133 in
  let r = Machine.Layout.alloc l ~name:"a" ~kind:Machine.Layout.Code ~size:8192 in
  Alcotest.check_raises "overlap rejected" (Invalid_argument "overlap")
    (fun () ->
      try
        ignore
          (Machine.Layout.alloc_at l ~name:"b" ~kind:Machine.Layout.Code
             ~base:(r.Machine.Layout.base + 4096) ~size:4096
            : Machine.Layout.region)
      with Invalid_argument _ -> raise (Invalid_argument "overlap"))

let test_layout_alloc_at_fixed () =
  let l = Machine.Layout.create Machine.Config.pentium_133 in
  let r =
    Machine.Layout.alloc_at l ~name:"fixed" ~kind:Machine.Layout.Data
      ~base:0x40000000 ~size:100
  in
  Alcotest.(check int) "placed exactly" 0x40000000 r.Machine.Layout.base;
  Alcotest.(check int) "page rounded" 4096 r.Machine.Layout.size

let test_config_with_memory () =
  let c = Machine.Config.with_memory Machine.Config.pentium_133 ~bytes:(8 * 1024 * 1024) in
  Alcotest.(check int) "pages" 2048 (Machine.Config.pages c);
  Alcotest.(check string) "name kept" "pentium-133" c.Machine.Config.name

let test_perf_cpi_nan () =
  Alcotest.(check bool) "cpi of empty window is nan" true
    (Float.is_nan (Machine.Perf.cpi Machine.Perf.zero))

let test_disk_write_bad_length () =
  let m = Test_util.pentium () in
  Alcotest.check_raises "partial block rejected" (Invalid_argument "len")
    (fun () ->
      try Machine.Disk.write m.Machine.disk ~block:0 (Bytes.make 100 'x') (fun () -> ())
      with Invalid_argument _ -> raise (Invalid_argument "len"))

let test_framebuffer_blit_row_bounds () =
  let m = Test_util.pentium () in
  let fb = m.Machine.framebuffer in
  Machine.Framebuffer.blit_row fb ~x:0 ~y:479 (String.make 640 'r');
  Alcotest.(check char) "last row" 'r' (Machine.Framebuffer.pixel fb ~x:639 ~y:479);
  Alcotest.check_raises "off screen" (Invalid_argument "oob") (fun () ->
      try Machine.Framebuffer.blit_row fb ~x:1 ~y:479 (String.make 640 'r')
      with Invalid_argument _ -> raise (Invalid_argument "oob"))

let test_cache_probe_pure () =
  let c = Machine.Cache.create { Machine.Config.size = 1024; line = 32; assoc = 2 } in
  Alcotest.(check bool) "probe misses" false (Machine.Cache.probe c 0x100);
  Alcotest.(check bool) "probe did not insert" false (Machine.Cache.probe c 0x100)

let test_footprint_copy_shape () =
  let fp = Machine.Footprint.copy ~src:0x1000 ~dst:0x2000 ~bytes:70 in
  (* 70 bytes = 3 chunks of (load, store) *)
  Alcotest.(check int) "six items" 6 (List.length fp);
  Alcotest.(check int) "no code" 0 (Machine.Footprint.code_bytes fp)

(* --- kernel edges ----------------------------------------------------------- *)

let test_task_halt_terminates () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let t = Mach.Kernel.task_create k ~name:"t" () in
  let progressed = ref 0 in
  Test_util.spawn k t "loop" (fun () ->
      for _ = 1 to 100 do
        incr progressed;
        Mach.Sched.yield ()
      done);
  Test_util.spawn k t "killer" (fun () -> Mach.Sched.task_halt sys t);
  Mach.Kernel.run k;
  Alcotest.(check bool) "loop interrupted" true (!progressed < 100);
  Alcotest.(check bool) "task halted" true t.halted;
  (* spawning into a halted task is rejected *)
  match Mach.Kernel.thread_spawn k t ~name:"late" (fun () -> ()) with
  | exception Kern_error Kern_invalid_argument -> ()
  | _ -> Alcotest.fail "spawn into halted task succeeded"

let test_virtual_alloc_distinct () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let a = Mach.Sched.virtual_alloc sys ~bytes:100 in
  let b = Mach.Sched.virtual_alloc sys ~bytes:100 in
  Alcotest.(check bool) "page aligned" true (a mod 4096 = 0);
  Alcotest.(check bool) "disjoint" true (b >= a + 4096)

let test_vm_deallocate_releases () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let t = Mach.Kernel.task_create k ~name:"t" () in
  Test_util.run_in_thread k (fun () ->
      let r0 = Mach.Vm.resident_pages sys in
      let addr = Mach.Vm.allocate sys t ~bytes:(4 * 4096) ~eager:true () in
      Alcotest.(check int) "committed" (r0 + 4) (Mach.Vm.resident_pages sys);
      Mach.Vm.deallocate sys t ~addr;
      Alcotest.(check int) "released" r0 (Mach.Vm.resident_pages sys);
      match Mach.Vm.deallocate sys t ~addr with
      | () -> Alcotest.fail "double deallocate succeeded"
      | exception Kern_error Kern_invalid_argument -> ())

let test_vm_map_at_conflict () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let t = Mach.Kernel.task_create k ~name:"t" () in
  let obj = Mach.Vm.object_create sys ~bytes:8192 () in
  let addr = Mach.Vm.map_object sys t obj ~bytes:8192 () in
  match Mach.Vm.map_object sys t obj ~at:addr ~bytes:4096 () with
  | exception Kern_error Kern_no_space -> ()
  | _ -> Alcotest.fail "overlapping fixed mapping succeeded"

let test_ipc_send_dead_port () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let t = Mach.Kernel.task_create k ~name:"t" () in
  let p = Mach.Port.allocate sys ~receiver:t ~name:"p" in
  Mach.Port.destroy sys p;
  let r = Test_util.run_in_thread k (fun () -> Mach.Ipc.send sys p (simple_message ())) in
  Alcotest.check kr "dead" Kern_port_dead r

let test_rpc_rights_transfer () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let client = Mach.Kernel.task_create k ~name:"client" () in
  let server = Mach.Kernel.task_create k ~name:"server" () in
  let svc = Mach.Port.allocate sys ~receiver:server ~name:"svc" in
  let callback = Mach.Port.allocate sys ~receiver:client ~name:"callback" in
  let received = ref None in
  Test_util.spawn k server "srv" (fun () ->
      match Mach.Rpc.receive sys svc with
      | Ok rx ->
          (match rx.rx_request.msg_rights with
          | [ (p, Send_right) ] ->
              received := Some p;
              (* deposit the right into the server's port space *)
              ignore (Mach.Port.insert_right sys server p Send_right : int)
          | _ -> ());
          Mach.Rpc.reply sys rx (simple_message ())
      | Error e -> Alcotest.fail (kern_return_to_string e));
  Test_util.spawn k client "cl" (fun () ->
      ignore
        (Mach.Rpc.call sys svc
           (simple_message ~rights:[ (callback, Send_right) ] ())));
  Mach.Kernel.run k;
  (match !received with
  | Some p -> Alcotest.(check bool) "same port" true (p == callback)
  | None -> Alcotest.fail "right not transferred");
  Alcotest.(check bool) "server holds the right" true
    (Mach.Port.lookup_port server callback <> None)

let test_oneshot_timer_cancel () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  let fired = ref false in
  let timer = Mach.Clock.arm_oneshot sys ~after:1000 (fun () -> fired := true) in
  Mach.Clock.cancel timer;
  Test_util.run_in_thread k (fun () ->
      ignore (Mach.Clock.sleep_for sys ~cycles:10_000 : kern_return));
  Alcotest.(check bool) "cancelled timer silent" false !fired;
  Alcotest.(check int) "never fired" 0 (Mach.Clock.fired timer)

let test_get_time_advances () =
  let k = Test_util.kernel_on () in
  let sys = k.Mach.Kernel.sys in
  Test_util.run_in_thread k (fun () ->
      let t1 = Mach.Clock.get_time sys in
      let t2 = Mach.Clock.get_time sys in
      Alcotest.(check bool) "time moves (the trap itself costs)" true (t2 > t1))

(* --- services edges ----------------------------------------------------------- *)

let test_runtime_memcpy_and_format () =
  let k = Test_util.kernel_on () in
  let rt = Mk_services.Runtime.install k in
  let m = k.Mach.Kernel.machine in
  let t0 = Machine.now m in
  Mk_services.Runtime.memcpy rt ~dst:0x9000 ~src:0x8000 ~bytes:1024;
  let t1 = Machine.now m in
  Alcotest.(check bool) "memcpy charged" true (t1 > t0);
  Mk_services.Runtime.format_cost rt ~chars:5000;
  Alcotest.(check bool) "format charged" true (Machine.now m > t1)

let test_loader_missing_dependency () =
  let b = Mk_services.Bootstrap.boot (Test_util.pentium ()) in
  let ld = b.Mk_services.Bootstrap.loader in
  Mk_services.Loader.register ld
    {
      Mk_services.Loader.img_name = "app";
      img_format = Mk_services.Loader.Elf_svr4;
      img_text_bytes = 4096;
      img_data_bytes = 0;
      img_symbols = 2;
      img_needs = [ "libmissing.so" ];
    };
  let task = Mach.Kernel.task_create b.Mk_services.Bootstrap.kernel ~name:"t" () in
  match Mk_services.Loader.load_program ld task "app" ~entry:(fun () -> ()) with
  | Error e -> Alcotest.(check bool) "names the need" true
                 (String.length e > 0)
  | Ok _ -> Alcotest.fail "loaded despite missing dependency"

let test_pager_swap_accounting () =
  let config =
    Machine.Config.with_memory Machine.Config.pentium_133 ~bytes:(3 * 1024 * 1024)
  in
  let b = Mk_services.Bootstrap.boot (Machine.create config) in
  let k = b.Mk_services.Bootstrap.kernel in
  let sys = k.Mach.Kernel.sys in
  let t = Mach.Kernel.task_create k ~name:"hog" () in
  Test_util.run_in_thread k (fun () ->
      let bytes = 4 * 1024 * 1024 in
      let addr = Mach.Vm.allocate sys t ~bytes () in
      let rec walk off =
        if off < bytes then begin
          Mach.Vm.touch sys t ~addr:(addr + off) ~write:true ~bytes:32 ();
          walk (off + 4096)
        end
      in
      walk 0;
      walk 0);
  let pager = b.Mk_services.Bootstrap.pager in
  Alcotest.(check bool) "swap slots allocated" true
    (Mk_services.Default_pager.swap_blocks_used pager > 0);
  Alcotest.(check bool) "pageouts recorded" true
    (Mk_services.Default_pager.pageouts pager > 0)

(* --- fileserver edges ------------------------------------------------------------ *)

let test_fat_free_blocks () =
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  Fileserver.Fat.mkfs disk ~blocks:2048 ();
  let cache = Fileserver.Block_cache.create k disk () in
  Test_util.run_in_thread k (fun () ->
      match Fileserver.Fat.mount cache () with
      | Error e -> Alcotest.fail (Fileserver.Fs_types.fs_error_to_string e)
      | Ok pfs ->
          let open Fileserver.Fs_types in
          let free0 = pfs.pfs_free_blocks () in
          let id = Test_util.check_fs_ok "create"
              (pfs.pfs_create ~dir:pfs.pfs_root "F.BIN" ~is_dir:false) in
          ignore (Test_util.check_fs_ok "write"
                    (pfs.pfs_write id ~off:0 (Bytes.make 2048 'x')));
          let free1 = pfs.pfs_free_blocks () in
          Alcotest.(check bool) "blocks consumed" true (free1 < free0);
          Test_util.check_fs_ok "remove" (pfs.pfs_remove ~dir:pfs.pfs_root "F.BIN");
          Alcotest.(check int) "blocks returned" free0 (pfs.pfs_free_blocks ()))

let test_extfs_inode_reuse () =
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  Fileserver.Jfs.mkfs disk ();
  let cache = Fileserver.Block_cache.create k disk () in
  Test_util.run_in_thread k (fun () ->
      match Fileserver.Jfs.mount cache () with
      | Error e -> Alcotest.fail (Fileserver.Fs_types.fs_error_to_string e)
      | Ok pfs ->
          let open Fileserver.Fs_types in
          let a = Test_util.check_fs_ok "create a"
              (pfs.pfs_create ~dir:pfs.pfs_root "a" ~is_dir:false) in
          Test_util.check_fs_ok "remove a" (pfs.pfs_remove ~dir:pfs.pfs_root "a");
          let b = Test_util.check_fs_ok "create b"
              (pfs.pfs_create ~dir:pfs.pfs_root "b" ~is_dir:false) in
          Alcotest.(check int) "inode reused" a b)

let test_vfs_mount_errors () =
  let vfs = Fileserver.Vfs.create () in
  let k = Test_util.kernel_on () in
  let disk = k.Mach.Kernel.machine.Machine.disk in
  Fileserver.Hpfs.mkfs disk ();
  let cache = Fileserver.Block_cache.create k disk () in
  Test_util.run_in_thread k (fun () ->
      match Fileserver.Hpfs.mount cache () with
      | Error e -> Alcotest.fail (Fileserver.Fs_types.fs_error_to_string e)
      | Ok pfs ->
          (match Fileserver.Vfs.mount vfs ~at:"/a/b" pfs with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "nested mount point accepted");
          (match Fileserver.Vfs.mount vfs ~at:"/x" pfs with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          match Fileserver.Vfs.mount vfs ~at:"/x" pfs with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "duplicate mount point accepted")

(* --- netserver edge --------------------------------------------------------------- *)

let test_socket_close_frees_port () =
  let k = Test_util.kernel_on () in
  let net = Netserver.create k ~style:Finegrain.Coarse in
  (match Netserver.udp_socket net ~port:4242 with
  | Ok s ->
      Netserver.close net s;
      (match Netserver.udp_socket net ~port:4242 with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e)

let suite =
  [
    Alcotest.test_case "layout alloc_at overlap" `Quick test_layout_alloc_at_overlap;
    Alcotest.test_case "layout alloc_at fixed" `Quick test_layout_alloc_at_fixed;
    Alcotest.test_case "config with_memory" `Quick test_config_with_memory;
    Alcotest.test_case "perf cpi nan" `Quick test_perf_cpi_nan;
    Alcotest.test_case "disk write bad length" `Quick test_disk_write_bad_length;
    Alcotest.test_case "framebuffer blit bounds" `Quick test_framebuffer_blit_row_bounds;
    Alcotest.test_case "cache probe pure" `Quick test_cache_probe_pure;
    Alcotest.test_case "footprint copy shape" `Quick test_footprint_copy_shape;
    Alcotest.test_case "task halt" `Quick test_task_halt_terminates;
    Alcotest.test_case "virtual alloc distinct" `Quick test_virtual_alloc_distinct;
    Alcotest.test_case "vm deallocate releases" `Quick test_vm_deallocate_releases;
    Alcotest.test_case "vm map at conflict" `Quick test_vm_map_at_conflict;
    Alcotest.test_case "ipc send dead port" `Quick test_ipc_send_dead_port;
    Alcotest.test_case "rpc rights transfer" `Quick test_rpc_rights_transfer;
    Alcotest.test_case "oneshot timer cancel" `Quick test_oneshot_timer_cancel;
    Alcotest.test_case "get_time advances" `Quick test_get_time_advances;
    Alcotest.test_case "runtime memcpy+format" `Quick test_runtime_memcpy_and_format;
    Alcotest.test_case "loader missing dependency" `Quick test_loader_missing_dependency;
    Alcotest.test_case "pager swap accounting" `Slow test_pager_swap_accounting;
    Alcotest.test_case "fat free blocks" `Quick test_fat_free_blocks;
    Alcotest.test_case "extfs inode reuse" `Quick test_extfs_inode_reuse;
    Alcotest.test_case "vfs mount errors" `Quick test_vfs_mount_errors;
    Alcotest.test_case "socket close frees port" `Quick test_socket_close_frees_port;
  ]
