(* Tests for the driver architectures and the resource manager. *)

module D = Drivers

let kernel () = Test_util.kernel_on ()

let test_resource_manager_grant_conflict () =
  let k = kernel () in
  let rm = D.Resource_manager.create k in
  (match D.Resource_manager.request rm ~driver:"a" (D.Resource_manager.Irq_line 9) () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* refusing holder blocks the request *)
  (match D.Resource_manager.request rm ~driver:"b" (D.Resource_manager.Irq_line 9) () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "conflicting grant issued");
  Alcotest.(check (option string)) "holder unchanged" (Some "a")
    (D.Resource_manager.holder rm (D.Resource_manager.Irq_line 9));
  Alcotest.(check int) "a yield was requested" 1
    (D.Resource_manager.yields_requested rm)

let test_resource_manager_yield () =
  let k = kernel () in
  let rm = D.Resource_manager.create k in
  (match
     D.Resource_manager.request rm ~driver:"polite"
       (D.Resource_manager.Dma_channel 3)
       ~on_yield:(fun () -> true)
       ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match D.Resource_manager.request rm ~driver:"greedy" (D.Resource_manager.Dma_channel 3) () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (option string)) "ownership moved" (Some "greedy")
    (D.Resource_manager.holder rm (D.Resource_manager.Dma_channel 3))

let test_io_range_overlap () =
  let k = kernel () in
  let rm = D.Resource_manager.create k in
  ignore
    (D.Resource_manager.request rm ~driver:"com1"
       (D.Resource_manager.Io_range { base = 0x3f8; len = 8 })
       ());
  match
    D.Resource_manager.request rm ~driver:"rogue"
      (D.Resource_manager.Io_range { base = 0x3fc; len = 8 })
      ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overlapping I/O range granted"

let read_via arch =
  let k = kernel () in
  let m = k.Mach.Kernel.machine in
  (* recognizable disk contents *)
  Machine.Disk.write_now m.Machine.disk ~block:7 (Bytes.make 512 'Q');
  let rm = D.Resource_manager.create k in
  let d =
    match D.Disk_driver.start k rm ~arch with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let t = Mach.Kernel.task_create k ~name:"app" () in
  let got = ref Bytes.empty in
  Test_util.spawn k t "reader" (fun () ->
      got := D.Disk_driver.read_blocks d ~block:7 ~count:1);
  Mach.Kernel.run k;
  (d, !got)

let test_drivers_deliver_data () =
  List.iter
    (fun arch ->
      let d, data = read_via arch in
      Alcotest.(check int) "512 bytes" 512 (Bytes.length data);
      Alcotest.(check char) "content" 'Q' (Bytes.get data 0);
      Alcotest.(check int) "one request" 1 (D.Disk_driver.requests d);
      Alcotest.(check int) "one interrupt" 1 (D.Disk_driver.interrupts_taken d))
    [ D.Disk_driver.User_level; D.Disk_driver.Kernel_bsd; D.Disk_driver.Ooddm ]

let test_user_level_has_task () =
  let d, _ = read_via D.Disk_driver.User_level in
  Alcotest.(check bool) "driver task exists" true
    (Option.is_some (D.Disk_driver.driver_task d));
  let d2, _ = read_via D.Disk_driver.Kernel_bsd in
  Alcotest.(check bool) "in-kernel: no task" true
    (Option.is_none (D.Disk_driver.driver_task d2))

let test_write_roundtrip () =
  let k = kernel () in
  let m = k.Mach.Kernel.machine in
  let rm = D.Resource_manager.create k in
  let d =
    match D.Disk_driver.start k rm ~arch:D.Disk_driver.Kernel_bsd with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let t = Mach.Kernel.task_create k ~name:"app" () in
  Test_util.spawn k t "writer" (fun () ->
      D.Disk_driver.write_blocks d ~block:20 (Bytes.make 1024 'W'));
  Mach.Kernel.run k;
  let back = Machine.Disk.read_now m.Machine.disk ~block:20 ~count:2 in
  Alcotest.(check char) "persisted" 'W' (Bytes.get back 1023)

let test_display_driver () =
  let k = kernel () in
  let rm = D.Resource_manager.create k in
  let d =
    match D.Display_driver.start k rm with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let t = Mach.Kernel.task_create k ~name:"gui" () in
  Test_util.spawn k t "draw" (fun () ->
      D.Display_driver.fill d ~x:0 ~y:0 ~w:10 ~h:10 ~pixel:'F');
  Mach.Kernel.run k;
  Alcotest.(check char) "pixel" 'F'
    (Machine.Framebuffer.pixel (D.Display_driver.framebuffer d) ~x:5 ~y:5);
  Alcotest.(check int) "fill count" 1 (D.Display_driver.fills d);
  (* the aperture is claimed in the resource manager *)
  let fb_region = Machine.Framebuffer.region (D.Display_driver.framebuffer d) in
  Alcotest.(check (option string)) "aperture held" (Some "display")
    (D.Resource_manager.holder rm
       (D.Resource_manager.Io_range
          { base = fb_region.Machine.Layout.base;
            len = fb_region.Machine.Layout.size }))

let suite =
  [
    Alcotest.test_case "rm grant conflict" `Quick
      test_resource_manager_grant_conflict;
    Alcotest.test_case "rm yield protocol" `Quick test_resource_manager_yield;
    Alcotest.test_case "rm io range overlap" `Quick test_io_range_overlap;
    Alcotest.test_case "drivers deliver data" `Quick test_drivers_deliver_data;
    Alcotest.test_case "user-level has a task" `Quick test_user_level_has_task;
    Alcotest.test_case "write roundtrip" `Quick test_write_roundtrip;
    Alcotest.test_case "display driver" `Quick test_display_driver;
  ]
