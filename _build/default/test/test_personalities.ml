(* Tests for the OS/2 personality (server, doscalls, memory manager, PM)
   and MVM. *)

module P = Personalities
open Fileserver.Fs_types

(* a minimal WPOS without MVM for speed *)
let small_wpos () =
  Wpos.boot
    ~config:
      { Wpos.default_config with Wpos.with_mvm = false; Wpos.fs_blocks = 2048 }
    ()

let test_os2_process_lifecycle () =
  let w = small_wpos () in
  let os2 = w.Wpos.os2 in
  let ran = ref false in
  let p =
    P.Os2.create_process os2 ~name:"app.exe" ~entry:(fun _ -> ran := true)
  in
  Wpos.run w;
  Alcotest.(check bool) "entry ran" true !ran;
  Alcotest.(check int) "in process table" 1 (P.Os2.process_count os2);
  Alcotest.(check bool) "doscalls mapped" true
    (List.mem_assoc "doscalls" (P.Os2.process_task p).Mach.Ktypes.libraries);
  (* exit drops the process *)
  let p2 = P.Os2.create_process os2 ~name:"short.exe" ~entry:(fun p2 ->
      P.Os2.dos_exit os2 p2)
  in
  ignore p2;
  Wpos.run w;
  Alcotest.(check int) "exited process dropped" 1 (P.Os2.process_count os2)

let test_os2_files_via_doscalls () =
  let w = small_wpos () in
  let os2 = w.Wpos.os2 in
  let result = ref "" in
  ignore
    (P.Os2.create_process os2 ~name:"filer.exe" ~entry:(fun p ->
         match P.Os2.dos_open os2 p ~path:"/os2/t.txt" ~create:true () with
         | Error e -> result := fs_error_to_string e
         | Ok h -> (
             ignore (P.Os2.dos_write os2 p h (Bytes.of_string "workplace"));
             P.Os2.dos_close os2 p h;
             match P.Os2.dos_open os2 p ~path:"/os2/t.txt" () with
             | Error e -> result := fs_error_to_string e
             | Ok h2 -> (
                 match P.Os2.dos_read os2 p h2 ~bytes:32 with
                 | Ok data -> result := Bytes.to_string data
                 | Error e -> result := fs_error_to_string e))));
  Wpos.run w;
  Alcotest.(check string) "read back through RPC" "workplace" !result

let test_os2_memory_double_bookkeeping () =
  let k = Test_util.kernel_on () in
  let task = Mach.Kernel.task_create k ~name:"os2app" () in
  let mem = P.Os2_memory.create k task in
  (* object allocation: page-rounded, eager *)
  (match P.Os2_memory.dos_alloc_mem mem ~bytes:5000 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Mach.Ktypes.kern_return_to_string e));
  Alcotest.(check int) "committed page-rounded" 8192
    (P.Os2_memory.os2_committed_bytes mem);
  Alcotest.(check int) "requested exact" 5000
    (P.Os2_memory.user_requested_bytes mem);
  (* sub-allocation: byte granularity inside an arena *)
  let a =
    match P.Os2_memory.dos_sub_alloc mem ~bytes:100 with
    | Ok a -> a
    | Error e -> Alcotest.fail (Mach.Ktypes.kern_return_to_string e)
  in
  Alcotest.(check int) "one arena" 1 (P.Os2_memory.arenas mem);
  Alcotest.(check bool) "bookkeeping overhead exists" true
    (P.Os2_memory.bookkeeping_bytes mem > 0);
  P.Os2_memory.dos_sub_free mem a;
  (match P.Os2_memory.dos_alloc_mem mem ~bytes:0 with
  | Error Mach.Ktypes.Kern_invalid_argument -> ()
  | _ -> Alcotest.fail "zero alloc accepted");
  (* commitment is eager even though nothing was touched *)
  Alcotest.(check bool) "arena committed underneath" true
    (P.Os2_memory.os2_committed_bytes mem >= 64 * 1024)

let test_pm_messages () =
  let w = small_wpos () in
  let os2 = w.Wpos.os2 in
  let pm = w.Wpos.pm in
  let log = ref [] in
  let win_a = ref None in
  ignore
    (P.Os2.create_process os2 ~name:"wina.exe" ~entry:(fun p ->
         let win = P.Pm.win_create pm p ~x:0 ~y:0 ~w:100 ~h:50 in
         win_a := Some win;
         let m = P.Pm.win_get_msg pm win in
         log := ("a-got", m.P.Pm.msg_code) :: !log));
  ignore
    (P.Os2.create_process os2 ~name:"winb.exe" ~entry:(fun _p ->
         let rec wait () =
           match !win_a with
           | Some win -> P.Pm.win_post_msg pm win ~code:42 ~param:7
           | None ->
               Mach.Sched.yield ();
               wait ()
         in
         wait ()));
  Wpos.run w;
  Alcotest.(check (list (pair string int))) "message crossed processes"
    [ ("a-got", 42) ] !log;
  Alcotest.(check int) "delivery counted" 1 (P.Pm.messages_delivered pm)

let test_pm_drawing () =
  let w = small_wpos () in
  let os2 = w.Wpos.os2 in
  let pm = w.Wpos.pm in
  let fb = w.Wpos.machine.Machine.framebuffer in
  ignore
    (P.Os2.create_process os2 ~name:"draw.exe" ~entry:(fun p ->
         let win = P.Pm.win_create pm p ~x:600 ~y:400 ~w:100 ~h:100 in
         (* window exceeds the screen: clipped, not crashed *)
         P.Pm.gpi_fill pm win ~pixel:'z';
         P.Pm.gpi_bitblt pm win ~src_bytes:512));
  Wpos.run w;
  Alcotest.(check char) "clipped fill landed" 'b'
    (Machine.Framebuffer.pixel fb ~x:605 ~y:400);
  Alcotest.(check bool) "pixels written" true
    (Machine.Framebuffer.pixels_written fb > 0)

let test_mvm_translation () =
  let w = Wpos.boot ~config:{ Wpos.default_config with Wpos.fs_blocks = 2048 } () in
  match w.Wpos.mvm with
  | None -> Alcotest.fail "mvm missing"
  | Some mvm ->
      let vdm = P.Mvm.create_vdm mvm ~name:"vdm1" in
      P.Mvm.spawn_program mvm vdm ~name:"prog" [ P.Mvm.G_compute 512 ];
      Wpos.run w;
      Alcotest.(check int) "guest instructions" 512 (P.Mvm.guest_instructions vdm);
      let translated = P.Mvm.blocks_translated vdm in
      Alcotest.(check bool) "blocks translated once" true (translated > 0);
      (* run the same program again: the translation cache serves it *)
      P.Mvm.spawn_program mvm vdm ~name:"prog2" [ P.Mvm.G_compute 512 ];
      Wpos.run w;
      Alcotest.(check int) "cache reused, nothing new" translated
        (P.Mvm.blocks_translated vdm);
      Alcotest.(check bool) "translation cache hits" true
        (P.Mvm.translation_hits vdm > 0)

let test_mvm_native_x86_no_translator () =
  let m = Machine.create Machine.Config.pentium_133 in
  let b = Mk_services.Bootstrap.boot m in
  let k = b.Mk_services.Bootstrap.kernel in
  let mvm =
    P.Mvm.start k b.Mk_services.Bootstrap.runtime ~translate:false ()
  in
  let vdm = P.Mvm.create_vdm mvm ~name:"vdm" in
  P.Mvm.spawn_program mvm vdm ~name:"p" [ P.Mvm.G_compute 128 ];
  Mach.Kernel.run k;
  Alcotest.(check int) "no translation on x86" 0 (P.Mvm.blocks_translated vdm)

let test_mvm_trap_reflection () =
  let w = Wpos.boot ~config:{ Wpos.default_config with Wpos.fs_blocks = 2048 } () in
  match w.Wpos.mvm with
  | None -> Alcotest.fail "mvm missing"
  | Some mvm ->
      let vdm = P.Mvm.create_vdm mvm ~name:"vdm" in
      P.Mvm.spawn_program mvm vdm ~name:"p"
        [ P.Mvm.G_io_port 0x3da; P.Mvm.G_dpmi_switch; P.Mvm.G_int21_write 512 ];
      Wpos.run w;
      Alcotest.(check int) "three traps reflected" 3 (P.Mvm.traps_reflected mvm)

let test_talos_unfinished_but_working () =
  let w = small_wpos () in
  (* small_wpos keeps MVM off; TalOS rides the default flag *)
  match w.Wpos.talos with
  | None -> Alcotest.fail "talos missing"
  | Some talos ->
      let read = ref "" in
      ignore
        (P.Talos.launch talos ~name:"notebook" (fun app ->
             (match
                P.Talos.file_write talos app ~path:"/aix/doc"
                  (Bytes.of_string "commonpoint")
              with
             | Ok (_ : int) -> ()
             | Error e -> Alcotest.fail (fs_error_to_string e));
             match P.Talos.file_read talos app ~path:"/aix/doc" ~bytes:32 with
             | Ok data -> read := Bytes.to_string data
             | Error e -> Alcotest.fail (fs_error_to_string e))
          : P.Talos.application);
      Wpos.run w;
      Alcotest.(check string) "framework file round trip" "commonpoint" !read;
      Alcotest.(check bool) "wrappers accumulated state" true
        (P.Talos.wrapper_state_bytes talos > 0);
      Alcotest.(check bool) "frameworks dispatched" true
        (Finegrain.vcalls (P.Talos.frameworks talos) > 0);
      (match P.Talos.compound_document talos with
      | exception P.Talos.Not_finished _ -> ()
      | _ -> Alcotest.fail "compound documents should be unfinished");
      match P.Talos.user_interface talos with
      | exception P.Talos.Not_finished _ -> ()
      | _ -> Alcotest.fail "the UI should be unfinished"

let suite =
  [
    Alcotest.test_case "talos: working frameworks, unfinished OS" `Quick
      test_talos_unfinished_but_working;
    Alcotest.test_case "os2 process lifecycle" `Quick test_os2_process_lifecycle;
    Alcotest.test_case "os2 files via doscalls" `Quick test_os2_files_via_doscalls;
    Alcotest.test_case "os2 memory double bookkeeping" `Quick
      test_os2_memory_double_bookkeeping;
    Alcotest.test_case "pm messages" `Quick test_pm_messages;
    Alcotest.test_case "pm drawing" `Quick test_pm_drawing;
    Alcotest.test_case "mvm translation" `Quick test_mvm_translation;
    Alcotest.test_case "mvm native x86" `Quick test_mvm_native_x86_no_translator;
    Alcotest.test_case "mvm trap reflection" `Quick test_mvm_trap_reflection;
  ]
