(** Shared provenance for the BENCH_*.json writers: git revision, seed
    and ISO-8601 timestamp, so the bench trajectory is comparable across
    commits.  All values are memoized per process — every writer in one
    run emits the same stamp, and re-running a workload with the checker
    toggled stays byte-identical. *)

val git_rev : unit -> string
(** The commit hash of HEAD, resolved by reading [.git] directly
    (searching upward from the working directory); ["unknown"] outside a
    work tree (e.g. the test sandbox). *)

val timestamp : unit -> string
(** UTC, [YYYY-MM-DDThh:mm:ssZ]; frozen at first use. *)

val json : ?seed:int -> unit -> string
(** The [{ "git_rev": ..., "seed": ..., "timestamp": ... }] object for a
    ["run"] field.  [seed] defaults to 0 for unseeded workloads. *)
