(* Provenance stamped into every BENCH_*.json: which commit produced the
   numbers, which seed drove the run, and when.  Memoized per process so
   every writer in one run agrees and so re-running a workload with the
   checker toggled emits byte-identical JSON (the determinism the tests
   assert). *)

let memo f =
  let cell = ref None in
  fun () ->
    match !cell with
    | Some v -> v
    | None ->
        let v = f () in
        cell := Some v;
        v

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  with Sys_error _ | End_of_file -> None

(* Resolve HEAD by hand ([.git/HEAD] -> ref file or packed-refs): the
   bench must not shell out, and the test sandbox has no .git at all —
   "unknown" is the honest answer there. *)
let git_rev =
  memo (fun () ->
      let rec find_git dir depth =
        if depth > 6 then None
        else
          let cand = Filename.concat dir ".git" in
          if Sys.file_exists cand && Sys.is_directory cand then Some cand
          else
            let parent = Filename.dirname dir in
            if parent = dir then None else find_git parent (depth + 1)
      in
      match find_git (Sys.getcwd ()) 0 with
      | None -> "unknown"
      | Some git -> (
          match read_file (Filename.concat git "HEAD") with
          | None -> "unknown"
          | Some head -> (
              let head = String.trim head in
              match String.index_opt head ' ' with
              | None -> head  (* detached: HEAD holds the hash *)
              | Some i -> (
                  let refname =
                    String.sub head (i + 1) (String.length head - i - 1)
                  in
                  match read_file (Filename.concat git refname) with
                  | Some hash -> String.trim hash
                  | None -> (
                      (* ref not loose: search packed-refs *)
                      match read_file (Filename.concat git "packed-refs") with
                      | None -> "unknown"
                      | Some packed ->
                          let hit =
                            List.find_opt
                              (fun line ->
                                match String.index_opt line ' ' with
                                | Some j ->
                                    String.sub line (j + 1)
                                      (String.length line - j - 1)
                                    = refname
                                | None -> false)
                              (String.split_on_char '\n' packed)
                          in
                          (match hit with
                          | Some line ->
                              String.sub line 0 (String.index line ' ')
                          | None -> "unknown"))))))

let timestamp =
  memo (fun () ->
      let tm = Unix.gmtime (Unix.gettimeofday ()) in
      Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
        tm.Unix.tm_sec)

let json ?(seed = 0) () =
  Printf.sprintf "{ \"git_rev\": %S, \"seed\": %d, \"timestamp\": %S }"
    (git_rev ()) seed (timestamp ())
