open Fileserver.Fs_types

type open_file = {
  of_vn : Fileserver.Vnode.t;
  mutable of_pos : int;
  mutable of_open : bool;
}

type handle = open_file

type t = {
  kernel : Mach.Kernel.t;
  vfs : Fileserver.Vfs.t;
  mutable handles : int;
}

let sem = Fileserver.Vfs.os2_semantics

(* Swap for the monolithic system: a flat extent at the end of the disk,
   written through an in-kernel path (no pager task). *)
let install_swap (kernel : Mach.Kernel.t) =
  let disk = kernel.Mach.Kernel.machine.Machine.disk in
  let geometry = Machine.Disk.geometry disk in
  let swap_start = geometry.Machine.Disk.blocks - 8192 in
  let blocks_per_page = Mach.Ktypes.page_size / geometry.Machine.Disk.block_size in
  let slots : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let next = ref swap_start in
  let slot_for key =
    match Hashtbl.find_opt slots key with
    | Some b -> b
    | None ->
        if !next + blocks_per_page > geometry.Machine.Disk.blocks then
          next := swap_start;
        let b = !next in
        next := !next + blocks_per_page;
        Hashtbl.replace slots key b;
        b
  in
  Mach.Vm.set_default_backing kernel.Mach.Kernel.sys
    {
      Mach.Ktypes.bs_name = "kernel-swap";
      bs_page_in =
        (fun obj idx k ->
          Machine.Disk.read disk
            ~block:(slot_for (obj.Mach.Ktypes.obj_id, idx))
            ~count:blocks_per_page
            (fun (_ : bytes) -> k ()));
      bs_page_out =
        (fun obj idx k ->
          Machine.Disk.write disk
            ~block:(slot_for (obj.Mach.Ktypes.obj_id, idx))
            (Bytes.make Mach.Ktypes.page_size '\000')
            (fun () -> k ()));
    }

let boot machine ?(fs_format = `Hpfs) ?(fs_blocks = 8192) () =
  let kernel = Mach.Kernel.boot machine in
  install_swap kernel;
  let disk = machine.Machine.disk in
  let vfs = Fileserver.Vfs.create () in
  let cache = Fileserver.Block_cache.create kernel disk () in
  let mounted =
    match fs_format with
    | `Fat ->
        Fileserver.Fat.mkfs disk ~blocks:fs_blocks ();
        Fileserver.Fat.mount cache ()
    | `Hpfs ->
        Fileserver.Hpfs.mkfs disk ~blocks:fs_blocks ();
        Fileserver.Hpfs.mount cache ()
    | `Jfs ->
        Fileserver.Jfs.mkfs disk ~blocks:fs_blocks ();
        Fileserver.Jfs.mount cache ()
  in
  (match mounted with
  | Ok pfs -> (
      match Fileserver.Vfs.mount vfs ~at:"/c" pfs with
      | Ok () -> ()
      | Error e -> failwith e)
  | Error e -> failwith (fs_error_to_string e));
  { kernel; vfs; handles = 0 }

let kernel t = t.kernel
let machine t = t.kernel.Mach.Kernel.machine
let vfs t = t.vfs

let spawn_process t ~name body =
  let task =
    Mach.Kernel.task_create t.kernel ~name ~personality:"mono" ()
  in
  ignore (Mach.Kernel.thread_spawn t.kernel task ~name body : Mach.Ktypes.thread);
  task

let spawn_thread t task ~name body =
  ignore (Mach.Kernel.thread_spawn t.kernel task ~name body : Mach.Ktypes.thread)

let run t = Mach.Kernel.run t.kernel

(* every system call traps; the service body then runs in-kernel *)
let syscall t f =
  let sys = t.kernel.Mach.Kernel.sys in
  let result = ref None in
  Mach.Trap.service sys ~work:(fun () -> result := Some (f ())) ();
  Option.get !result

(* one kernel->user copy for read data, user->kernel for writes *)
let copy_to_user t bytes =
  if bytes > 0 then begin
    let k = t.kernel.Mach.Kernel.ktext in
    (* reserve both halves of the bounce copy, and return the buffer so
       the syscall path can't drain the kernel msg-buffer region *)
    let buf = Mach.Ktext.buffer_alloc k ~bytes:(2 * bytes) in
    Mach.Ktext.copy k ~src:buf ~dst:(buf + bytes) ~bytes;
    Mach.Ktext.buffer_free k buf
  end

let sys_open t ~path ?(create = false) () =
  syscall t (fun () ->
      let resolved =
        match Fileserver.Vfs.resolve t.vfs sem ~path with
        | Ok x -> Ok x
        | Error E_not_found when create -> (
            match Fileserver.Vfs.create_file t.vfs sem ~path with
            | Ok (_ : file_id) -> Fileserver.Vfs.resolve t.vfs sem ~path
            | Error e -> Error e)
        | Error e -> Error e
      in
      match resolved with
      | Error e -> Error e
      | Ok Fileserver.Vfs.Root -> Error E_is_dir
      | Ok (Fileserver.Vfs.File vn) -> (
          match Fileserver.Vnode.stat vn with
          | Error e -> Error e
          | Ok st when st.st_is_dir -> Error E_is_dir
          | Ok _ ->
              t.handles <- t.handles + 1;
              Fileserver.Vnode.ref_ vn;
              Ok { of_vn = vn; of_pos = 0; of_open = true }))

let sys_close t h =
  syscall t (fun () ->
      if h.of_open then begin
        h.of_open <- false;
        Fileserver.Vnode.unref h.of_vn;
        t.handles <- t.handles - 1
      end)

let check_open h =
  if h.of_open && not (Fileserver.Vnode.reclaimed h.of_vn) then Ok ()
  else Error E_bad_handle

let sys_read t h ~bytes =
  syscall t (fun () ->
      let* () = check_open h in
      let* data = Fileserver.Vnode.read h.of_vn ~off:h.of_pos ~len:bytes in
      h.of_pos <- h.of_pos + Bytes.length data;
      copy_to_user t (Bytes.length data);
      Ok data)

let sys_write t h data =
  syscall t (fun () ->
      let* () = check_open h in
      copy_to_user t (Bytes.length data);
      let* n = Fileserver.Vnode.write h.of_vn ~off:h.of_pos data in
      h.of_pos <- h.of_pos + n;
      Ok n)

let sys_seek t h ~pos = syscall t (fun () -> h.of_pos <- max 0 pos)

let sys_stat t ~path = syscall t (fun () -> Fileserver.Vfs.stat t.vfs sem ~path)
let sys_mkdir t ~path =
  syscall t (fun () ->
      Result.map (fun (_ : file_id) -> ()) (Fileserver.Vfs.mkdir t.vfs sem ~path))

let sys_readdir t ~path = syscall t (fun () -> Fileserver.Vfs.readdir t.vfs sem ~path)
let sys_unlink t ~path = syscall t (fun () -> Fileserver.Vfs.unlink t.vfs sem ~path)
let sys_rename t ~src ~dst =
  syscall t (fun () -> Fileserver.Vfs.rename t.vfs sem ~src ~dst)

let sys_sync t = syscall t (fun () -> Fileserver.Vfs.sync t.vfs)

let sys_alloc t ~bytes =
  syscall t (fun () ->
      let th = Mach.Sched.self () in
      Mach.Vm.allocate t.kernel.Mach.Kernel.sys th.Mach.Ktypes.t_task ~bytes
        ~eager:true ())

let sys_touch t ~addr ?(write = false) ~bytes () =
  let th = Mach.Sched.self () in
  Mach.Vm.touch t.kernel.Mach.Kernel.sys th.Mach.Ktypes.t_task ~addr ~write
    ~bytes ()

let sys_yield t =
  let sys = t.kernel.Mach.Kernel.sys in
  Mach.Trap.service sys ();
  Mach.Sched.yield ()

let open_handles t = t.handles
