(** Microkernel Services: the user-level, personality-neutral base the
    IBM Microkernel shipped alongside the kernel proper — runtime, name
    services, loader, default pager, and the bootstrap that wires them
    together. *)

module Runtime = Runtime
module Name_db = Name_db
module Name_service = Name_service
module Name_simple = Name_simple
module Loader = Loader
module Default_pager = Default_pager
module Supervisor = Supervisor
module Bootstrap = Bootstrap
