open Mach.Ktypes

type payload +=
  | NS_bind of {
      ns_path : string;
      ns_attributes : (string * string) list;
      ns_target : port option;
    }
  | NS_resolve of string
  | NS_unbind of string
  | NS_list of string
  | NS_search_attr of string * string
  | NS_r_ok of bool
  | NS_r_entry of Name_db.entry option
  | NS_r_names of string list
  | NS_r_entries of Name_db.entry list

type t = {
  kernel : Mach.Kernel.t;
  runtime : Runtime.t;
  ns_task : task;
  ns_port : port;
  database : Name_db.t;
  mutable served : int;
}

let op_bind = 1
let op_resolve = 2
let op_unbind = 3
let op_list = 4
let op_search = 5

(* The X.500-style machinery is heavyweight: a fixed parse/ACL prologue
   plus a per-component walk and per-entry attribute evaluation. *)
let charge_prologue t =
  Mach.Ktext.exec_in t.kernel.Mach.Kernel.ktext t.ns_task.text ~offset:0x400
    ~bytes:1472

let charge_walk t ~path =
  let steps = Name_db.steps ~path in
  for _ = 1 to max 1 steps do
    Mach.Ktext.exec_in t.kernel.Mach.Kernel.ktext t.ns_task.text ~offset:0xa00
      ~bytes:224
  done

let charge_per_entry t n =
  for _ = 1 to n do
    Mach.Ktext.exec_in t.kernel.Mach.Kernel.ktext t.ns_task.text ~offset:0xb00
      ~bytes:160
  done

let handle t (msg : message) : message_builder =
  t.served <- t.served + 1;
  charge_prologue t;
  let reply payload = simple_message ~op:msg.msg_op ~inline_bytes:64 ~payload () in
  match msg.msg_payload with
  | NS_bind { ns_path; ns_attributes; ns_target } ->
      charge_walk t ~path:ns_path;
      let ok =
        match
          Name_db.bind t.database ~path:ns_path ~attributes:ns_attributes
            ?port:ns_target ()
        with
        | Ok () -> true
        | Error _ -> false
      in
      reply (NS_r_ok ok)
  | NS_resolve path ->
      charge_walk t ~path;
      reply (NS_r_entry (Name_db.resolve t.database ~path))
  | NS_unbind path ->
      charge_walk t ~path;
      reply (NS_r_ok (Name_db.unbind t.database ~path))
  | NS_list path ->
      charge_walk t ~path;
      let names = Name_db.list_children t.database ~path in
      charge_per_entry t (List.length names);
      reply (NS_r_names names)
  | NS_search_attr (key, value) ->
      charge_per_entry t (Name_db.size t.database);
      reply (NS_r_entries (Name_db.search_attribute t.database ~key ~value))
  | _ -> reply (NS_r_ok false)

let start kernel runtime =
  let sys = kernel.Mach.Kernel.sys in
  let ns_task =
    Mach.Sched.with_uncharged sys (fun () ->
        Mach.Kernel.task_create kernel ~name:"name-server" ~personality:"pn"
          ~text_bytes:(32 * 1024) ())
  in
  Runtime.attach runtime ns_task;
  let ns_port =
    Mach.Sched.with_uncharged sys (fun () ->
        Mach.Port.allocate sys ~receiver:ns_task ~name:"name-service")
  in
  let t =
    {
      kernel;
      runtime;
      ns_task;
      ns_port;
      database = Name_db.create ();
      served = 0;
    }
  in
  ignore
    (Mach.Kernel.thread_spawn kernel ns_task ~name:"ns-serve" (fun () ->
         Mach.Rpc.serve sys ns_port (handle t))
      : thread);
  t

let port t = t.ns_port
let task t = t.ns_task
let db t = t.database

let request_bytes ~path extra = 64 + String.length path + extra

let rpc t ~op ~path ~extra payload =
  let sys = t.kernel.Mach.Kernel.sys in
  match
    Mach.Rpc.call sys t.ns_port
      (simple_message ~op ~inline_bytes:(request_bytes ~path extra) ~payload ())
  with
  | Ok reply -> reply.msg_payload
  | Error err -> P_error err

let bind t ~path ?(attributes = []) ?target () =
  let extra =
    List.fold_left
      (fun acc (k, v) -> acc + String.length k + String.length v)
      0 attributes
  in
  match
    rpc t ~op:op_bind ~path ~extra
      (NS_bind { ns_path = path; ns_attributes = attributes; ns_target = target })
  with
  | NS_r_ok ok -> ok
  | P_error _ -> false  (* transport or server failure, surfaced explicitly *)
  | _ -> false

let resolve t ~path =
  match rpc t ~op:op_resolve ~path ~extra:0 (NS_resolve path) with
  | NS_r_entry e -> e
  | P_error _ -> None
  | _ -> None

let resolve_port t ~path =
  match resolve t ~path with Some e -> e.Name_db.bound_port | None -> None

let unbind t ~path =
  match rpc t ~op:op_unbind ~path ~extra:0 (NS_unbind path) with
  | NS_r_ok ok -> ok
  | P_error _ -> false
  | _ -> false

let list_children t ~path =
  match rpc t ~op:op_list ~path ~extra:0 (NS_list path) with
  | NS_r_names names -> names
  | _ -> []

let search_attribute t ~key ~value =
  match
    rpc t ~op:op_search ~path:key ~extra:(String.length value)
      (NS_search_attr (key, value))
  with
  | NS_r_entries es -> es
  | _ -> []

let requests_served t = t.served
