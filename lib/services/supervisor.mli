(** The reincarnation service.

    A multi-server system is only as robust as its weakest server loop:
    the paper's lesson is that one crashed server must not take the
    system down.  The supervisor watches each registered server's
    service port through a dead-name notification and, with a {!health}
    config, pings a dedicated health port on a period — so it catches
    both shapes of failure: dead (the port went away) and wedged (the
    server answers pings but its main loop has sat on one request past
    its watchdog).  A wedged server is killed and takes the ordinary
    death path.

    Each death is reincarnated under a windowed restart budget: restarts
    inside one window are paced by capped exponential backoff with
    per-entry jitter, and a server that burns the whole budget (a crash
    loop) is demoted to degraded mode — its path is re-bound to a
    fast-fail responder that answers [Kern_unavailable] immediately, and
    the demotion is surfaced to Machcheck as a "budget-exhausted"
    finding.  When several servers die together they are restarted in
    dependency order ([deps]): drivers before the servers above them,
    servers before personalities.  Clients that re-resolve the name
    (e.g. via [call_retry]'s [resolve]) find the replacement and carry
    on. *)

open Mach.Ktypes

type health = {
  hc_interval : int;  (* cycles between heartbeat pings *)
  hc_deadline : int;  (* RPC deadline on each ping *)
  hc_watchdog : int;  (* max cycles one request may sit in the main loop *)
  hc_port : unit -> port option;  (* the server's *current* health port *)
}
(** Heartbeat config for one supervised server.  The health port is a
    thunk because it changes on every restart. *)

type t

val create : Mach.Kernel.t -> Runtime.t -> Name_service.t -> t
(** Start the supervisor: its own task plus a thread that sleeps until a
    watched port dies (or, when heartbeats are configured, until the
    next scan tick). *)

val supervise :
  t -> path:string -> ?budget:int -> ?window:int -> ?backoff:int ->
  ?deps:string list -> ?health:health -> port:port ->
  restart:(unit -> port) -> unit -> unit
(** Watch a running server: bind [path] to [port] in the name service
    and restart via [restart] (which must return the replacement's
    service port) each time the current port dies.  At most [budget]
    restarts (default 8) may land inside any [window] cycles (default
    50M); rapid restarts are paced by [backoff]-based exponential delay
    (default 25k cycles, capped, jittered per entry).  Exhausting the
    budget demotes the entry to degraded mode.  [deps] lists paths that
    restart first when pending together.  Must be called from thread
    context (it performs name-service RPCs). *)

val stop : t -> unit
(** Shut the supervisor loop down (pending restarts are abandoned). *)

val restarts : t -> int
(** Total restarts performed across all supervised servers. *)

val wedge_kills : t -> int
(** Total wedged servers killed by the watchdog across all entries. *)

val degraded_count : t -> int
(** Servers demoted to degraded mode (restart budget exhausted). *)

val gave_up : t -> bool
(** Whether any supervised server was demoted to degraded mode. *)

val is_degraded : t -> path:string -> bool

val path_restarts : t -> path:string -> int
val path_wedge_kills : t -> path:string -> int

val mttr : t -> path:string -> int option
(** Mean time to repair in cycles — death notification to rebind —
    averaged over this entry's completed reincarnations, if any. *)

val current_port : t -> path:string -> port option
(** The currently live service port for a supervised path ([None] while
    dead or once degraded — the degraded responder is reachable only
    through the name service, as clients would find it). *)

val task : t -> task
