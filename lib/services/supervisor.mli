(** Server supervision.

    A multi-server system is only as robust as its weakest server loop:
    the paper's lesson is that one crashed server must not take the
    system down.  The supervisor watches each registered server's
    service port through a dead-name notification; when the port dies it
    restarts the server (bounded by [max_restarts]), re-registers the
    new port under the same name-service path, and re-arms the watch.
    Clients that re-resolve the name (e.g. via [call_retry]'s [resolve])
    find the replacement and carry on. *)

open Mach.Ktypes

type t

val create : Mach.Kernel.t -> Runtime.t -> Name_service.t -> t
(** Start the supervisor: its own task plus a thread that sleeps until a
    watched port dies. *)

val supervise :
  t -> path:string -> ?max_restarts:int -> port:port ->
  restart:(unit -> port) -> unit -> unit
(** Watch a running server: bind [path] to [port] in the name service
    and restart via [restart] (which must return the replacement's
    service port) each time the current port dies, up to [max_restarts]
    times (default 8).  After that the entry gives up and the stale
    binding is removed.  Must be called from thread context (it performs
    name-service RPCs). *)

val stop : t -> unit
(** Shut the supervisor loop down (pending restarts are abandoned). *)

val restarts : t -> int
(** Total restarts performed across all supervised servers. *)

val gave_up : t -> bool
(** Whether any supervised server exhausted its restart budget. *)

val current_port : t -> path:string -> port option
(** The currently live service port for a supervised path, if any. *)

val task : t -> task
