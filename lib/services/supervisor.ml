open Mach.Ktypes

(* Heartbeat monitoring for one supervised server: ping its health port
   every [hc_interval] cycles with an RPC deadline, and treat a pong
   whose busy-since stamp is older than [hc_watchdog] as a wedged main
   loop (the per-request watchdog). *)
type health = {
  hc_interval : int;
  hc_deadline : int;
  hc_watchdog : int;
  hc_port : unit -> port option;
}

(* A supervised server: how to restart it, where it is registered, its
   windowed restart budget, and what must come back before it. *)
type entry = {
  e_path : string;  (* name-service registration path *)
  e_restart : unit -> port;  (* recreate the server; new service port *)
  e_budget : int;  (* restarts allowed inside one window *)
  e_window : int;  (* cycles *)
  e_pace : Mach.Backoff.policy;  (* backoff between rapid restarts *)
  e_deps : string list;  (* paths that must restart before this one *)
  e_health : health option;
  mutable e_port : port;
  mutable e_restarts : int;
  mutable e_recent : int list;  (* restart stamps, newest first *)
  mutable e_degraded : bool;
  mutable e_wedge_kills : int;
  mutable e_last_ping : int;
  mutable e_died_at : int;  (* death stamp of the outage in hand; -1 idle *)
  mutable e_mttr_sum : int;
  mutable e_mttr_n : int;
}

type t = {
  kernel : Mach.Kernel.t;
  ns : Name_service.t;
  sup_task : task;
  mutable entries : entry list;
  pending : entry Queue.t;  (* dead servers awaiting restart *)
  mutable sup_thread : thread option;
  mutable running : bool;
  mutable total_restarts : int;
  mutable total_wedge_kills : int;
  mutable total_degraded : int;
  mutable degraded_port : port option;  (* shared fast-fail responder *)
}

let sys t = t.kernel.Mach.Kernel.sys
let now t = Machine.global_now t.kernel.Mach.Kernel.machine

(* Supervision bookkeeping runs as ordinary user code in the
   supervisor's task. *)
let charge t ~offset ~bytes =
  Mach.Ktext.exec_in t.kernel.Mach.Kernel.ktext t.sup_task.text ~offset ~bytes

let charge_scan t = charge t ~offset:0x200 ~bytes:192
let charge_restart t = charge t ~offset:0x400 ~bytes:512

(* Wake the supervisor thread, but only out of its own idle wait: if it
   is blocked inside one of its own RPCs (a name-service rebind) or a
   pacing sleep, a wake would corrupt that call — the pending queue is
   re-checked before the loop blocks again, so nothing is lost. *)
let poke t =
  match t.sup_thread with
  | Some th when th.state = Th_blocked "supervisor-wait" ->
      Mach.Sched.wake (sys t) th
  | Some _ | None -> ()

let rebind t path port =
  ignore (Name_service.unbind t.ns ~path : bool);
  ignore (Name_service.bind t.ns ~path ~target:port () : bool)

let watch t e =
  Mach.Port.request_notification (sys t) e.e_port (fun () ->
      if e.e_died_at < 0 then e.e_died_at <- now t;
      Queue.add e t.pending;
      poke t)

(* The shared fast-fail responder every degraded path is bound to: it
   answers [Kern_unavailable] immediately, so clients of a demoted
   server get a crisp error instead of hanging out a deadline. *)
let degraded_responder t =
  match t.degraded_port with
  | Some p when not p.dead -> p
  | Some _ | None ->
      let s = sys t in
      let port = Mach.Port.allocate s ~receiver:t.sup_task ~name:"degraded" in
      ignore
        (Mach.Kernel.thread_spawn t.kernel t.sup_task ~name:"sup-degraded"
           (fun () ->
             Mach.Rpc.serve s port (fun _req ->
                 simple_message ~payload:(P_error Kern_unavailable) ()))
          : thread);
      t.degraded_port <- Some port;
      port

let demote t e =
  e.e_degraded <- true;
  e.e_died_at <- -1;
  t.total_degraded <- t.total_degraded + 1;
  (match (sys t).Mach.Sched.checks with
  | Some c ->
      Check.reinc_budget_exhausted c ~space:(sys t).Mach.Sched.check_space
        ~path:e.e_path ~restarts:e.e_restarts
  | None -> ());
  rebind t e.e_path (degraded_responder t)

let handle_death t e =
  charge_scan t;
  if (not e.e_degraded) && e.e_port.dead then begin
    let t0 = now t in
    e.e_recent <- List.filter (fun ts -> t0 - ts < e.e_window) e.e_recent;
    if List.length e.e_recent >= e.e_budget then demote t e
    else begin
      let burst = List.length e.e_recent in
      e.e_recent <- t0 :: e.e_recent;
      e.e_restarts <- e.e_restarts + 1;
      t.total_restarts <- t.total_restarts + 1;
      (* crash-loop pacing: the second and later deaths inside one
         window back off exponentially, with per-entry jitter so a
         simultaneous wipe-out doesn't restart in lockstep *)
      if burst > 0 then
        ignore
          (Mach.Clock.sleep_for (sys t)
             ~cycles:(Mach.Backoff.delay e.e_pace ~attempt:burst)
            : kern_return);
      charge_restart t;
      let port = e.e_restart () in
      e.e_port <- port;
      rebind t e.e_path port;
      watch t e;
      if e.e_died_at >= 0 then begin
        e.e_mttr_sum <- e.e_mttr_sum + (now t - e.e_died_at);
        e.e_mttr_n <- e.e_mttr_n + 1;
        e.e_died_at <- -1
      end
    end
  end

(* Drain in dependency order: an entry whose [e_deps] names another
   pending entry waits for it — drivers come back before the servers on
   top of them, servers before the personalities.  A dependency cycle
   falls back to arrival order rather than deadlocking the drain. *)
let dequeue_ordered t =
  if Queue.is_empty t.pending then None
  else begin
    let all = List.of_seq (Queue.to_seq t.pending) in
    let blocked e =
      List.exists
        (fun dep -> List.exists (fun p -> p != e && p.e_path = dep) all)
        e.e_deps
    in
    let pick =
      match List.find_opt (fun e -> not (blocked e)) all with
      | Some e -> e
      | None -> List.hd all
    in
    Queue.clear t.pending;
    List.iter (fun e -> if e != pick then Queue.add e t.pending) all;
    Some pick
  end

let rec drain t =
  match dequeue_ordered t with
  | Some e ->
      handle_death t e;
      drain t
  | None -> ()

(* Kill a live-but-stuck server: tear down its health port (the health
   thread exits) and then the service port, which fires the dead-name
   watch — from there a wedge is just another death to reincarnate. *)
let wedge_kill t e =
  e.e_wedge_kills <- e.e_wedge_kills + 1;
  t.total_wedge_kills <- t.total_wedge_kills + 1;
  e.e_died_at <- now t;
  (match e.e_health with
  | Some hc -> (
      match hc.hc_port () with
      | Some hp when not hp.dead -> Mach.Port.destroy (sys t) hp
      | Some _ | None -> ())
  | None -> ());
  if not e.e_port.dead then Mach.Port.destroy (sys t) e.e_port

let ping t e hc =
  charge_scan t;
  match hc.hc_port () with
  | None -> ()
  | Some hp when hp.dead -> ()  (* a crash: the dead-name watch covers it *)
  | Some hp -> (
      match
        Mach.Rpc.call (sys t) hp ~deadline:hc.hc_deadline
          (Mach.Health.ping_msg ())
      with
      | Error _ -> wedge_kill t e  (* even the health thread is stuck *)
      | Ok reply -> (
          match reply.msg_payload with
          | Mach.Health.H_pong { hp_busy_since; _ }
            when hp_busy_since >= 0 && now t - hp_busy_since > hc.hc_watchdog
            ->
              (* alive but not making progress: the request in hand has
                 outlived its watchdog *)
              wedge_kill t e
          | _ -> ()))

let scan_health t =
  List.iter
    (fun e ->
      match e.e_health with
      | Some hc when (not e.e_degraded) && not e.e_port.dead ->
          if now t - e.e_last_ping >= hc.hc_interval then begin
            e.e_last_ping <- now t;
            ping t e hc
          end
      | Some _ | None -> ())
    t.entries

let has_health t =
  List.exists (fun e -> e.e_health <> None && not e.e_degraded) t.entries

let next_tick t =
  List.fold_left
    (fun acc e ->
      match e.e_health with
      | Some hc when not e.e_degraded -> min acc hc.hc_interval
      | Some _ | None -> acc)
    max_int t.entries

(* The idle wait.  [Clock.sleep_for] is off the table here: its timer
   wakes the thread unconditionally when it expires, so a poke arriving
   first would leave a stray wake to corrupt whatever the supervisor
   blocks on next.  A guarded one-shot (fired through [poke], cancelled
   on the way out) can only ever hit this exact wait — and it is armed
   at all only while some entry needs periodic heartbeat scans, so a
   purely notification-driven supervisor leaves the machine free to
   quiesce. *)
let idle_wait t =
  let timer =
    if has_health t then
      Some (Mach.Clock.arm_oneshot (sys t) ~after:(next_tick t) (fun () -> poke t))
    else None
  in
  ignore (Mach.Sched.block "supervisor-wait" : kern_return);
  Option.iter Mach.Clock.cancel timer

let rec loop t =
  if t.running then begin
    drain t;
    scan_health t;
    (* the missed-wake fix: a death that arrived while we were busy
       restarting (poke finds us unblocked and does nothing) must be
       drained now, not after an idle tick *)
    if Queue.is_empty t.pending && t.running then idle_wait t;
    loop t
  end

let create (kernel : Mach.Kernel.t) runtime ns =
  let s = kernel.Mach.Kernel.sys in
  Mach.Sched.with_uncharged s (fun () ->
      let sup_task =
        Mach.Kernel.task_create kernel ~name:"supervisor" ~personality:"pn" ()
      in
      Runtime.attach runtime sup_task;
      let t =
        {
          kernel;
          ns;
          sup_task;
          entries = [];
          pending = Queue.create ();
          sup_thread = None;
          running = true;
          total_restarts = 0;
          total_wedge_kills = 0;
          total_degraded = 0;
          degraded_port = None;
        }
      in
      let th =
        Mach.Kernel.thread_spawn kernel sup_task ~name:"supervisor" (fun () ->
            loop t)
      in
      t.sup_thread <- Some th;
      t)

let supervise t ~path ?(budget = 8) ?(window = 50_000_000) ?(backoff = 25_000)
    ?(deps = []) ?health ~port ~restart () =
  let e =
    {
      e_path = path;
      e_restart = restart;
      e_budget = max 1 budget;
      e_window = max 1 window;
      e_pace = Mach.Backoff.policy ~seed:(Hashtbl.hash path) ~base:backoff ();
      e_deps = deps;
      e_health = health;
      e_port = port;
      e_restarts = 0;
      e_recent = [];
      e_degraded = false;
      e_wedge_kills = 0;
      e_last_ping = now t;
      e_died_at = -1;
      e_mttr_sum = 0;
      e_mttr_n = 0;
    }
  in
  t.entries <- e :: t.entries;
  rebind t e.e_path port;
  watch t e;
  (* the supervisor may already be parked in an idle wait armed (or not)
     for the entry set as it was before this registration: kick it so
     the wait is re-entered with the new entry's heartbeat tick — a
     health config registered against a sleeping supervisor would
     otherwise never be scanned until some other server died *)
  poke t

let stop t =
  t.running <- false;
  poke t

let find t ~path = List.find_opt (fun e -> e.e_path = path) t.entries

let restarts t = t.total_restarts
let wedge_kills t = t.total_wedge_kills
let degraded_count t = t.total_degraded

let gave_up t = List.exists (fun e -> e.e_degraded) t.entries

let is_degraded t ~path =
  match find t ~path with Some e -> e.e_degraded | None -> false

let path_restarts t ~path =
  match find t ~path with Some e -> e.e_restarts | None -> 0

let path_wedge_kills t ~path =
  match find t ~path with Some e -> e.e_wedge_kills | None -> 0

let mttr t ~path =
  match find t ~path with
  | Some e when e.e_mttr_n > 0 -> Some (e.e_mttr_sum / e.e_mttr_n)
  | Some _ | None -> None

let current_port t ~path =
  match find t ~path with
  | Some e when (not e.e_degraded) && not e.e_port.dead -> Some e.e_port
  | Some _ | None -> None

let task t = t.sup_task
