open Mach.Ktypes

(* A supervised server: how to restart it, where it is registered, and
   how many lives it has left. *)
type entry = {
  e_path : string;  (* name-service registration path *)
  e_restart : unit -> port;  (* recreate the server; new service port *)
  e_max_restarts : int;
  mutable e_port : port;
  mutable e_restarts : int;
  mutable e_gave_up : bool;
}

type t = {
  kernel : Mach.Kernel.t;
  ns : Name_service.t;
  sup_task : task;
  mutable entries : entry list;
  pending : entry Queue.t;  (* dead servers awaiting restart *)
  mutable sup_thread : thread option;
  mutable running : bool;
  mutable total_restarts : int;
}

let sys t = t.kernel.Mach.Kernel.sys

(* Supervision bookkeeping runs as ordinary user code in the
   supervisor's task. *)
let charge t ~offset ~bytes =
  Mach.Ktext.exec_in t.kernel.Mach.Kernel.ktext t.sup_task.text ~offset ~bytes

let charge_scan t = charge t ~offset:0x200 ~bytes:192
let charge_restart t = charge t ~offset:0x400 ~bytes:512

(* Wake the supervisor thread, but only out of its own idle wait: if it
   is blocked inside one of its own RPCs (a name-service rebind), a wake
   would corrupt that call — the pending queue is drained when the loop
   comes back around anyway. *)
let poke t =
  match t.sup_thread with
  | Some th when th.state = Th_blocked "supervisor-wait" ->
      Mach.Sched.wake (sys t) th
  | Some _ | None -> ()

let rebind t e port =
  ignore (Name_service.unbind t.ns ~path:e.e_path : bool);
  ignore (Name_service.bind t.ns ~path:e.e_path ~target:port () : bool)

let rec watch t e =
  Mach.Port.request_notification (sys t) e.e_port (fun () ->
      Queue.add e t.pending;
      poke t)

and handle_death t e =
  charge_scan t;
  if not e.e_gave_up then begin
    if e.e_restarts >= e.e_max_restarts then begin
      e.e_gave_up <- true;
      (* the registration is stale: leave nothing pointing at the corpse *)
      ignore (Name_service.unbind t.ns ~path:e.e_path : bool)
    end
    else begin
      e.e_restarts <- e.e_restarts + 1;
      t.total_restarts <- t.total_restarts + 1;
      charge_restart t;
      let port = e.e_restart () in
      e.e_port <- port;
      rebind t e port;
      watch t e
    end
  end

let rec loop t =
  match Queue.take_opt t.pending with
  | Some e ->
      handle_death t e;
      loop t
  | None ->
      if t.running then begin
        ignore (Mach.Sched.block "supervisor-wait" : kern_return);
        loop t
      end

let create (kernel : Mach.Kernel.t) runtime ns =
  let s = kernel.Mach.Kernel.sys in
  Mach.Sched.with_uncharged s (fun () ->
      let sup_task =
        Mach.Kernel.task_create kernel ~name:"supervisor" ~personality:"pn" ()
      in
      Runtime.attach runtime sup_task;
      let t =
        {
          kernel;
          ns;
          sup_task;
          entries = [];
          pending = Queue.create ();
          sup_thread = None;
          running = true;
          total_restarts = 0;
        }
      in
      let th =
        Mach.Kernel.thread_spawn kernel sup_task ~name:"supervisor" (fun () ->
            loop t)
      in
      t.sup_thread <- Some th;
      t)

let supervise t ~path ?(max_restarts = 8) ~port ~restart () =
  let e =
    {
      e_path = path;
      e_restart = restart;
      e_max_restarts = max_restarts;
      e_port = port;
      e_restarts = 0;
      e_gave_up = false;
    }
  in
  t.entries <- e :: t.entries;
  rebind t e port;
  watch t e

let stop t =
  t.running <- false;
  poke t

let find t ~path = List.find_opt (fun e -> e.e_path = path) t.entries

let restarts t = t.total_restarts

let gave_up t = List.exists (fun e -> e.e_gave_up) t.entries

let current_port t ~path =
  match find t ~path with
  | Some e when not e.e_port.dead -> Some e.e_port
  | Some _ | None -> None

let task t = t.sup_task
