(* Rule: bench provenance.

   Every BENCH_*.json this repo emits carries the PR-4 provenance
   envelope: a "schema_version" field and the Run_meta block
   (git_rev/seed/timestamp).  The A/B harness refuses files without it,
   so a writer that forgets the envelope produces benchmarks that cannot
   be regression-gated.  Statically:

   - a JSON builder (any function whose body emits an "experiment"
     header key) must, in the same function, emit "schema_version" and
     call [Run_meta.json];
   - a function that opens a literal BENCH_*.json for writing must
     either call a [*to_json] builder for its contents or carry the
     envelope itself. *)

(* The trigger is the quote-and-colon form a JSON builder emits for the
   experiment header key — diagnostics that merely mention the quoted
   key (the A/B validator's error strings) must not trip it.  Built by
   concatenation so machlint does not flag its own source. *)
let experiment_needle = "\"" ^ "experiment" ^ "\":"
let schema_needle = "schema_version"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let run_meta_targets = [ "Run_meta.json" ]

let path_is_open_out head =
  match Lint_ast.path_of_expr head with
  | Some p -> Lint_ast.last_of p = "open_out"
  | None -> false

let bench_literal s =
  String.length s > 6
  && String.sub s 0 6 = "BENCH_"
  && Filename.check_suffix s ".json"

let check (g : Lint_graph.t) =
  let findings = ref [] in
  Lint_graph.iter_fns g (fun fn ->
      let strings = Lint_ast.strings_of_expr fn.Lint_graph.fn_body in
      let has_experiment =
        List.exists (fun (s, _) -> contains ~needle:experiment_needle s) strings
      and has_schema =
        List.exists (fun (s, _) -> contains ~needle:schema_needle s) strings
      in
      let calls_run_meta =
        List.exists
          (fun c -> Lint_graph.call_matches c run_meta_targets)
          fn.Lint_graph.fn_calls
      and calls_to_json =
        List.exists
          (fun c ->
            let name =
              match c.Lint_graph.c_key with
              | Some k -> k
              | None -> String.concat "." c.Lint_graph.c_path
            in
            let n = String.length name in
            n >= 7 && String.sub name (n - 7) 7 = "to_json")
          fn.Lint_graph.fn_calls
      in
      if has_experiment then (
        if not has_schema then
          findings :=
            Lint_report.make ~rule:Lint_report.rule_provenance
              ~loc:fn.Lint_graph.fn_loc
              (Printf.sprintf
                 "%s builds a BENCH experiment header without a \
                  schema_version field: bench ab will reject the file"
                 fn.Lint_graph.fn_key)
            :: !findings;
        if not calls_run_meta then
          findings :=
            Lint_report.make ~rule:Lint_report.rule_provenance
              ~loc:fn.Lint_graph.fn_loc
              (Printf.sprintf
                 "%s builds a BENCH experiment header without Run_meta.json \
                  provenance (git_rev/seed/timestamp)"
                 fn.Lint_graph.fn_key)
            :: !findings);
      (* open_out "BENCH_x.json" must route through a builder or carry
         the envelope inline *)
      let writes_bench =
        let found = ref None in
        let it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun it e ->
                (match e.Parsetree.pexp_desc with
                | Parsetree.Pexp_apply (head, (_, arg) :: _)
                  when path_is_open_out head -> (
                    match arg.Parsetree.pexp_desc with
                    | Parsetree.Pexp_constant
                        (Parsetree.Pconst_string (s, _, _))
                      when bench_literal s ->
                        if !found = None then
                          found := Some (s, e.Parsetree.pexp_loc)
                    | _ -> ())
                | _ -> ());
                Ast_iterator.default_iterator.expr it e);
          }
        in
        it.expr it fn.Lint_graph.fn_body;
        !found
      in
      match writes_bench with
      | Some (name, loc)
        when not (calls_to_json || (has_schema && calls_run_meta)) ->
          findings :=
            Lint_report.make ~rule:Lint_report.rule_provenance ~loc
              (Printf.sprintf
                 "%s is written without provenance: route the contents \
                  through a to_json builder carrying schema_version and \
                  Run_meta.json"
                 name)
            :: !findings
      | _ -> ());
  List.rev !findings
