(* Rule: port-right / page linearity.

   Mach's Move dispositions are linear: once a right or an OOL region is
   *moved* into a message, the sender's name for it is dead.  In this
   tree that shows up two ways:

   - [Vm.remap_move sys ~src_task ~addr ...] donates the pages at [addr]
     (the source range becomes zero-fill);
   - an OOL descriptor [(buf, len, Move)] in an [~ool]/[~ool_vec]
     argument donates [buf] when the message is sent.

   After either, any further use of the donated identifier on a
   syntactic path *after* the transfer is a use-after-donation —
   except [Vm.deallocate], which is the sanctioned way to drop the dead
   name (the file server's zero-copy write does exactly that).

   The walk is a small forward dataflow over the syntax: branches fork
   the donated set and their union flows out, so a Move in one match arm
   does not poison its *sibling* arms (the Cow arm of Rpc.transfer_ool
   legitimately reuses [addr]) but does poison everything downstream.

   Machcheck's rights sanitizer and buffer-lifetime checker catch the
   dynamic residue (double-free via aliases machlint cannot see). *)

open Parsetree

module Smap = Map.Make (String)

let donate_targets = [ "Vm.remap_move"; "remap_move" ]
let cleanup_targets = [ "Vm.deallocate"; "deallocate" ]

let simple_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> Some x
  | _ -> None

let path_matches e targets =
  match Lint_ast.path_of_expr e with
  | Some p -> Lint_ast.matches_any ~path:p targets
  | None -> false

let is_move_construct e =
  match e.pexp_desc with
  | Pexp_construct ({ txt; _ }, None) ->
      (match Lint_ast.flatten_lid txt with
      | Some p -> Lint_ast.last_of p = "Move"
      | None -> false)
  | _ -> false

let check_fn (fn : Lint_graph.fn) findings =
  (* donated : ident -> location of the transfer *)
  let env = ref Smap.empty in
  let report x loc =
    let donated_at = Smap.find x !env in
    findings :=
      Lint_report.make ~rule:Lint_report.rule_linearity ~loc
        (Printf.sprintf
           "%s used after its pages were donated by Move at line %d \
            (machcheck: rights sanitizer); a moved right/region is dead — \
            only Vm.deallocate may touch it"
           x donated_at.Location.loc_start.Lexing.pos_lnum)
      :: !findings
  in
  let donate_at x loc = env := Smap.add x loc !env in
  let shadow vars saved_env inner =
    (* names rebound inside keep their *outer* donation state from
       [saved_env]; everything else flows out of [inner]. *)
    Smap.merge
      (fun x outer inner_v ->
        if List.mem x vars then outer
        else match inner_v with Some _ -> inner_v | None -> outer)
      saved_env inner
  in
  let rec go e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } when Smap.mem x !env ->
        report x e.pexp_loc
    | Pexp_apply (head, args) when path_matches head cleanup_targets ->
        (* deallocate of a dead name is the sanctioned cleanup: walk the
           args only for nested donations, not for uses *)
        List.iter
          (fun (_, a) -> match simple_ident a with Some _ -> () | None -> go a)
          args
    | Pexp_apply (head, args) when path_matches head donate_targets ->
        let target =
          List.find_map
            (fun (lbl, a) ->
              match (lbl, simple_ident a) with
              | Asttypes.Labelled "addr", Some x -> Some x
              | _ -> None)
            args
        in
        List.iter
          (fun (lbl, a) ->
            match (lbl, simple_ident a) with
            | Asttypes.Labelled "addr", Some x when Smap.mem x !env ->
                (* a second Move of the same region *)
                report x a.pexp_loc
            | _ -> go a)
          args;
        Option.iter (fun x -> donate_at x e.pexp_loc) target
    | Pexp_tuple [ fst_e; snd_e; mode_e ] when is_move_construct mode_e -> (
        go snd_e;
        match simple_ident fst_e with
        | Some x ->
            if Smap.mem x !env then report x fst_e.pexp_loc;
            donate_at x e.pexp_loc
        | None -> go fst_e)
    | Pexp_let (_, vbs, body) ->
        List.iter (fun vb -> go vb.pvb_expr) vbs;
        let bound = List.concat_map (fun vb -> Lint_ast.pat_vars vb.pvb_pat) vbs in
        let saved = !env in
        env := List.fold_left (fun m x -> Smap.remove x m) !env bound;
        go body;
        env := shadow bound saved !env
    | Pexp_fun (_, default, pat, body) ->
        Option.iter go default;
        let bound = Lint_ast.pat_vars pat in
        let saved = !env in
        env := List.fold_left (fun m x -> Smap.remove x m) !env bound;
        go body;
        env := shadow bound saved !env
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        go scrut;
        branch cases
    | Pexp_function cases -> branch cases
    | Pexp_ifthenelse (c, t, f) ->
        go c;
        let base = !env in
        go t;
        let after_t = !env in
        env := base;
        Option.iter go f;
        env :=
          Smap.union (fun _ a _ -> Some a) after_t !env
    | _ ->
        let it =
          { Ast_iterator.default_iterator with expr = (fun _ e -> go e) }
        in
        Ast_iterator.default_iterator.expr it e
  and branch cases =
    let base = !env in
    let acc = ref base in
    List.iter
      (fun c ->
        let bound = Lint_ast.pat_vars c.pc_lhs in
        env := List.fold_left (fun m x -> Smap.remove x m) base bound;
        Option.iter go c.pc_guard;
        go c.pc_rhs;
        acc := Smap.union (fun _ a _ -> Some a) !acc (shadow bound base !env))
      cases;
    env := !acc
  in
  go fn.Lint_graph.fn_body

let check (g : Lint_graph.t) =
  let findings = ref [] in
  Lint_graph.iter_fns g (fun fn -> check_fn fn findings);
  List.rev !findings
