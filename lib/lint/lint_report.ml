(* Findings and their rendering.  One finding is one line of output,

     file:line rule message

   in the shape of a compiler diagnostic so editors can jump straight to
   it.  Rules are named so they cross-reference the *dynamic* Machcheck
   checker that covers the same failure class at runtime (see DESIGN.md
   section 14). *)

type finding = {
  f_rule : string;
  f_file : string;
  f_line : int;
  f_col : int;
  f_msg : string;
}

(* The five rule names, fixed here so the driver, the fixtures and the
   bench all agree on the spelling. *)
let rule_linearity = "port-linearity"
let rule_lockorder = "lock-order"
let rule_noblock = "no-block"
let rule_interface = "interface"
let rule_provenance = "provenance"
let rule_syntax = "syntax"

let all_rules =
  [
    rule_linearity;
    rule_lockorder;
    rule_noblock;
    rule_interface;
    rule_provenance;
    rule_syntax;
  ]

let make ~rule ~loc msg =
  let p = loc.Location.loc_start in
  {
    f_rule = rule;
    f_file = p.Lexing.pos_fname;
    f_line = p.Lexing.pos_lnum;
    f_col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    f_msg = msg;
  }

let to_line f = Printf.sprintf "%s:%d %s %s" f.f_file f.f_line f.f_rule f.f_msg

let compare a b =
  match
    Stdlib.compare (a.f_file, a.f_line, a.f_col) (b.f_file, b.f_line, b.f_col)
  with
  | 0 -> Stdlib.compare (a.f_rule, a.f_msg) (b.f_rule, b.f_msg)
  | c -> c

(* Counts per rule, every rule present (0 when clean) so BENCH_lint.json
   has a stable shape. *)
let by_rule findings =
  List.map
    (fun r ->
      (r, List.length (List.filter (fun f -> f.f_rule = r) findings)))
    all_rules
