(* Rule: static lock order.

   A WITNESS-style check at build time: walk every function body in
   syntactic order tracking which locks are held ([Sync.mutex_lock] /
   [Runtime.umutex_lock] push, the matching unlock pops, a [*_with_lock]
   combinator scopes its closure argument), emit an edge A -> B whenever
   B is acquired with A held — including transitively, via calls made
   while holding A to functions that acquire B — and fail on any cycle
   in the resulting acquisition graph.

   Locks are named by their syntactic key: the field name for [t.lock_x]
   (one class per field, shared across instances, which is exactly the
   lock-class granularity WITNESS uses), the identifier otherwise.

   Machcheck's wait-for-graph checker is the runtime complement: it sees
   actual waiters, this rule sees every syntactic path. *)

open Parsetree

let acquire_targets = [ "Sync.mutex_lock"; "umutex_lock" ]
let release_targets = [ "Sync.mutex_unlock"; "umutex_unlock" ]

type edge = { e_from : string; e_to : string; e_loc : Location.t }

(* The lock-class token of an acquire's lock argument. *)
let token_of_expr e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Lint_ast.flatten_lid txt with
      | Some p -> Some (Lint_ast.last_of p)
      | None -> None)
  | Pexp_field (_, { txt; _ }) -> (
      match Lint_ast.flatten_lid txt with
      | Some p -> Some (Lint_ast.last_of p)
      | None -> None)
  | _ -> None

(* Last positional (unlabelled) argument — the lock in
   [Sync.mutex_lock sys m] and [umutex_lock u] alike. *)
let lock_arg args =
  let positional =
    List.filter_map
      (fun (lbl, a) ->
        match lbl with Asttypes.Nolabel -> Some a | _ -> None)
      args
  in
  match List.rev positional with a :: _ -> Some a | [] -> None

type acquires = {
  aq_direct : (string * Location.t) list;  (* tokens this fn acquires *)
  aq_pending : (string * string * Location.t) list;
      (* (held token, callee key, loc): edges to expand transitively *)
}

let path_matches e targets =
  match Lint_ast.path_of_expr e with
  | Some p -> Lint_ast.matches_any ~path:p targets
  | None -> false

let is_with_lock e =
  match Lint_ast.path_of_expr e with
  | Some p ->
      let l = Lint_ast.last_of p in
      l = "with_lock"
      || String.length l > 10
         && String.sub l (String.length l - 10) 10 = "_with_lock"
  | None -> false

(* Walk a body in syntactic order with a held-lock stack; returns direct
   acquisitions, first-order edges and pending interprocedural ones. *)
let scan_fn resolve (fn : Lint_graph.fn) =
  let held = ref [] in
  let direct = ref [] and edges = ref [] and pending = ref [] in
  let acquire tok loc =
    List.iter
      (fun (h, _) -> edges := { e_from = h; e_to = tok; e_loc = loc } :: !edges)
      !held;
    direct := (tok, loc) :: !direct;
    held := (tok, loc) :: !held
  in
  let release tok = held := List.filter (fun (h, _) -> h <> tok) !held in
  let rec go e =
    match e.pexp_desc with
    | Pexp_apply (head, args) when path_matches head acquire_targets -> (
        List.iter (fun (_, a) -> go a) args;
        match Option.bind (lock_arg args) token_of_expr with
        | Some tok -> acquire tok e.pexp_loc
        | None -> ())
    | Pexp_apply (head, args) when path_matches head release_targets -> (
        List.iter (fun (_, a) -> go a) args;
        match Option.bind (lock_arg args) token_of_expr with
        | Some tok -> release tok
        | None -> ())
    | Pexp_apply (head, args) when is_with_lock head -> (
        (* with_lock l (fun () -> body): hold l around the closure *)
        let tok =
          match
            List.find_opt
              (fun (_, a) ->
                match a.pexp_desc with
                | Pexp_fun _ | Pexp_function _ -> false
                | _ -> token_of_expr a <> None)
              args
          with
          | Some (_, a) -> token_of_expr a
          | None -> None
        in
        match tok with
        | Some tok ->
            let saved = !held in
            acquire tok e.pexp_loc;
            List.iter
              (fun (_, a) ->
                match a.pexp_desc with
                | Pexp_fun _ | Pexp_function _ -> go a
                | _ -> ())
              args;
            held := saved
        | None -> List.iter (fun (_, a) -> go a) args)
    | Pexp_apply (head, args) -> (
        (match Lint_ast.path_of_expr head with
        | Some p when !held <> [] -> (
            match resolve p with
            | Some key ->
                List.iter
                  (fun (h, _) -> pending := (h, key, e.pexp_loc) :: !pending)
                  !held
            | None -> ())
        | _ -> ());
        go head;
        let sink =
          match Lint_ast.path_of_expr head with
          | Some p -> Lint_graph.sink_of p
          | None -> None
        in
        List.iter
          (fun (_, a) ->
            match (sink, a.pexp_desc) with
            | Some _, (Pexp_fun _ | Pexp_function _) ->
                (* spawned threads / deferred callbacks start with no
                   locks held — walking them inline would invent
                   self-deadlocks between sibling closures *)
                let saved = !held in
                held := [];
                go a;
                held := saved
            | _ -> go a)
          args)
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        go scrut;
        let saved = !held in
        List.iter
          (fun c ->
            held := saved;
            Option.iter go c.pc_guard;
            go c.pc_rhs)
          cases;
        held := saved
    | Pexp_ifthenelse (c, t, f) ->
        go c;
        let saved = !held in
        go t;
        held := saved;
        Option.iter go f;
        held := saved
    | _ ->
        let it =
          { Ast_iterator.default_iterator with expr = (fun _ e -> go e) } in
        Ast_iterator.default_iterator.expr it e
  in
  go fn.Lint_graph.fn_body;
  (List.rev !direct, List.rev !edges, List.rev !pending)

let check (g : Lint_graph.t) =
  (* Per-function scan. *)
  let per_fn = Hashtbl.create 64 in
  let all_edges = ref [] in
  Lint_graph.iter_fns g (fun fn ->
      let fc_resolve p =
        (* calls were already resolved during graph build; reuse them by
           position-independent lookup on the textual path *)
        List.find_map
          (fun c ->
            if c.Lint_graph.c_path = p then c.Lint_graph.c_key else None)
          fn.Lint_graph.fn_calls
      in
      let direct, edges, pending = scan_fn fc_resolve fn in
      Hashtbl.replace per_fn fn.Lint_graph.fn_key (direct, pending);
      all_edges := edges @ !all_edges);
  (* Transitive acquisitions: tokens a function may take, directly or via
     callees. *)
  let acq = Hashtbl.create 64 in
  Lint_graph.iter_fns g (fun fn ->
      let direct, _ =
        try Hashtbl.find per_fn fn.Lint_graph.fn_key with Not_found -> ([], [])
      in
      Hashtbl.replace acq fn.Lint_graph.fn_key
        (List.map fst direct |> List.sort_uniq compare));
  let changed = ref true in
  while !changed do
    changed := false;
    Lint_graph.iter_fns g (fun fn ->
        let mine =
          try Hashtbl.find acq fn.Lint_graph.fn_key with Not_found -> []
        in
        let extra =
          List.concat_map
            (fun c ->
              match c.Lint_graph.c_key with
              | Some k -> ( try Hashtbl.find acq k with Not_found -> [])
              | None -> [])
            fn.Lint_graph.fn_calls
        in
        let merged = List.sort_uniq compare (mine @ extra) in
        if merged <> mine then (
          Hashtbl.replace acq fn.Lint_graph.fn_key merged;
          changed := true))
  done;
  (* Expand pending (held, callee) pairs into edges. *)
  Hashtbl.iter
    (fun _ (_, pending) ->
      List.iter
        (fun (h, callee, loc) ->
          let toks = try Hashtbl.find acq callee with Not_found -> [] in
          List.iter
            (fun t ->
              all_edges := { e_from = h; e_to = t; e_loc = loc } :: !all_edges)
            toks)
        pending)
    per_fn;
  (* Cycle detection over the acquisition graph.  Edges are deduped per
     (from, to, file) and cycles reported per closing file, so a
     deliberately-seeded (and [@machlint.allow]ed) cycle in one file
     cannot mask the same-shaped cycle somewhere real. *)
  let file_of e = e.e_loc.Location.loc_start.Lexing.pos_fname in
  let edges =
    List.sort_uniq
      (fun a b ->
        compare (a.e_from, a.e_to, file_of a) (b.e_from, b.e_to, file_of b))
      !all_edges
  in
  let succs tok =
    List.filter (fun e -> e.e_from = tok && e.e_to <> e.e_from) edges
  in
  let findings = ref [] in
  let reported = ref [] in
  let report cycle loc =
    let canon =
      (List.sort_uniq compare cycle, loc.Location.loc_start.Lexing.pos_fname)
    in
    if not (List.mem canon !reported) then (
      reported := canon :: !reported;
      findings :=
        Lint_report.make ~rule:Lint_report.rule_lockorder ~loc
          (Printf.sprintf
             "lock acquisition cycle: %s (machcheck: wait-for-graph); pick \
              one order and stick to it"
             (String.concat " -> " (cycle @ [ List.hd cycle ])))
        :: !findings)
  in
  let nodes =
    List.sort_uniq compare
      (List.concat_map (fun e -> [ e.e_from; e.e_to ]) edges)
  in
  List.iter
    (fun start ->
      let rec dfs path e =
        if e.e_to = start then report (List.rev path) e.e_loc
        else if not (List.mem e.e_to path) then
          List.iter (dfs (e.e_to :: path)) (succs e.e_to)
      in
      List.iter (dfs [ start ]) (succs start))
    nodes;
  (* Self-cycles (re-acquiring a held lock) read better as their own
     message. *)
  List.iter
    (fun e ->
      if e.e_from = e.e_to then
        findings :=
          Lint_report.make ~rule:Lint_report.rule_lockorder ~loc:e.e_loc
            (Printf.sprintf
               "lock %s re-acquired while already held (self-deadlock)"
               e.e_from)
          :: !findings)
    edges;
  List.rev !findings
