(* Rule: interface completeness (MIG-style conformance).

   Two interface surfaces in this tree are invisible to the type
   checker:

   1. The IPC message vocabulary is one *open* extensible variant
      ([Mach.Ktypes.payload]) that every server extends with
      [type payload += ...].  OCaml cannot check exhaustiveness over an
      open type, so (a) a constructor that is declared but never matched
      anywhere is a message the registered interface accepts and no
      handler answers, and (b) a match over payload constructors without
      a terminal catch-all dies with [Match_failure] the first time a
      fault-injected or newer-interface message arrives.

   2. The VOP layer compiles per-format partial tables ([vop_partial])
      into full vectors.  A [vp_*] field that [vop_compile] never reads
      is a silently dead interface slot; a format that registers a
      journal wrapper ([vp_txn]) without a recovery entry ([vp_recover])
      replays nothing after a crash.

   Machcheck sees none of this — it only meets messages a workload
   happens to send — which is why this rule exists at build time. *)

open Parsetree

(* Constructors that belong to stdlib-ish closed types; never treat a
   match over these as a payload match even if a server names a payload
   constructor the same. *)
let builtin_ctors =
  [ "Some"; "None"; "Ok"; "Error"; "true"; "false"; "()"; "::"; "[]" ]

type payload_ctor = { pc_name : string; pc_loc : Location.t; pc_file : string }

let collect_payload_ctors (sources : Lint_ast.source list) =
  let ctors = ref [] in
  List.iter
    (fun (src : Lint_ast.source) ->
      let rec structure str =
        List.iter
          (fun item ->
            match item.pstr_desc with
            | Pstr_typext ext
              when Lint_ast.flatten_lid ext.ptyext_path.Location.txt
                   |> Option.map Lint_ast.last_of
                   = Some "payload" ->
                List.iter
                  (fun ec ->
                    ctors :=
                      {
                        pc_name = ec.pext_name.Location.txt;
                        pc_loc = ec.pext_loc;
                        pc_file = src.s_path;
                      }
                      :: !ctors)
                  ext.ptyext_constructors
            | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ }
              ->
                structure s
            | _ -> ())
          str
      in
      structure src.s_ast)
    sources;
  List.rev !ctors

(* Every constructor name appearing as a pattern head, anywhere — and
   every one appearing in expression position (i.e. actually sendable).
   Only a constructor that is *constructed* somewhere needs a handler:
   spare declared vocabulary is a lesser smell than a message that can
   really arrive and that nobody answers. *)
let collect_heads (sources : Lint_ast.source list) =
  let matched = Hashtbl.create 256 and built = Hashtbl.create 256 in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_construct ({ txt; _ }, _) -> (
              match Lint_ast.flatten_lid txt with
              | Some path ->
                  Hashtbl.replace matched (Lint_ast.last_of path) ()
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_construct ({ txt; _ }, _) -> (
              match Lint_ast.flatten_lid txt with
              | Some path -> Hashtbl.replace built (Lint_ast.last_of path) ()
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  List.iter (fun (s : Lint_ast.source) -> it.structure it s.s_ast) sources;
  (matched, built)

let rec pat_head p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) ->
      Option.map Lint_ast.last_of (Lint_ast.flatten_lid txt)
  | Ppat_alias (q, _) | Ppat_constraint (q, _) -> pat_head q
  | Ppat_or (a, _) -> pat_head a
  | _ -> None

(* (b) payload matches need a catch-all. *)
let check_catch_all (sources : Lint_ast.source list) payload_set findings =
  let is_payload_case c =
    match pat_head c.pc_lhs with
    | Some h -> Hashtbl.mem payload_set h && not (List.mem h builtin_ctors)
    | None -> false
  in
  let check_cases loc cases =
    if List.exists is_payload_case cases then
      let covered =
        List.exists
          (fun c -> Lint_ast.is_catch_all c.pc_lhs && c.pc_guard = None)
          cases
      in
      if not (covered) then
        findings :=
          Lint_report.make ~rule:Lint_report.rule_interface ~loc
            "match over the open payload type has no catch-all case: an \
             unknown or fault-injected message raises Match_failure and \
             kills the server loop; add a `| _ ->' reply"
          :: !findings
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_match (_, cases) | Pexp_function cases ->
              check_cases e.pexp_loc cases
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  List.iter (fun (s : Lint_ast.source) -> it.structure it s.s_ast) sources

(* (2) VOP table conformance. *)
let check_vop (sources : Lint_ast.source list) (g : Lint_graph.t) findings =
  (* fields of the vop_partial record type *)
  let fields = ref [] in
  List.iter
    (fun (src : Lint_ast.source) ->
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_type (_, decls) ->
              List.iter
                (fun d ->
                  if d.ptype_name.Location.txt = "vop_partial" then
                    match d.ptype_kind with
                    | Ptype_record lds ->
                        fields :=
                          List.map
                            (fun ld ->
                              (ld.pld_name.Location.txt, ld.pld_loc))
                            lds
                    | _ -> ())
                decls
          | _ -> ())
        src.s_ast)
    sources;
  (match !fields with
  | [] -> ()
  | fs -> (
      (* every field must be consulted by vop_compile *)
      match
        List.find_map
          (fun (k : string) -> Lint_graph.find g k)
          (List.filter
             (fun k ->
               String.length k >= 11
               && String.sub k (String.length k - 11) 11 = "vop_compile")
             g.Lint_graph.fn_order)
      with
      | None -> ()
      | Some fn ->
          let read = Hashtbl.create 32 in
          let it =
            {
              Ast_iterator.default_iterator with
              expr =
                (fun it e ->
                  (match e.pexp_desc with
                  | Pexp_field (_, { txt; _ }) -> (
                      match Lint_ast.flatten_lid txt with
                      | Some p -> Hashtbl.replace read (Lint_ast.last_of p) ()
                      | None -> ())
                  | _ -> ());
                  Ast_iterator.default_iterator.expr it e);
            }
          in
          it.expr it fn.Lint_graph.fn_body;
          List.iter
            (fun (f, loc) ->
              if not (Hashtbl.mem read f) then
                findings :=
                  Lint_report.make ~rule:Lint_report.rule_interface ~loc
                    (Printf.sprintf
                       "vop_partial field %s is never consulted by \
                        vop_compile: formats setting it are silently ignored"
                       f)
                  :: !findings)
            fs));
  (* a format that registers vp_txn must also register vp_recover *)
  let check_record loc fields_set =
    let has name is_some =
      List.exists
        (fun (n, v) ->
          n = name
          &&
          match v.pexp_desc with
          | Pexp_construct ({ txt = Longident.Lident "Some"; _ }, _) -> is_some
          | Pexp_construct ({ txt = Longident.Lident "None"; _ }, _) ->
              not is_some
          | _ -> is_some (* non-literal: assume set *))
        fields_set
    in
    if has "vp_txn" true && not (has "vp_recover" true) then
      findings :=
        Lint_report.make ~rule:Lint_report.rule_interface ~loc
          "format registers a journal txn wrapper (vp_txn) without a \
           recovery entry (vp_recover): nothing replays the journal after \
           a crash"
        :: !findings
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_record (fs, _) ->
              let named =
                List.filter_map
                  (fun ({ Location.txt; _ }, v) ->
                    match Lint_ast.flatten_lid txt with
                    | Some p ->
                        let n = Lint_ast.last_of p in
                        if String.length n > 3 && String.sub n 0 3 = "vp_"
                        then Some (n, v)
                        else None
                    | None -> None)
                  fs
              in
              if named <> [] then check_record e.pexp_loc named
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  List.iter (fun (s : Lint_ast.source) -> it.structure it s.s_ast) sources

let check (sources : Lint_ast.source list) (g : Lint_graph.t) =
  let findings = ref [] in
  let ctors = collect_payload_ctors sources in
  let matched, built = collect_heads sources in
  (* (a) sendable but never handled *)
  List.iter
    (fun c ->
      if Hashtbl.mem built c.pc_name && not (Hashtbl.mem matched c.pc_name)
      then
        findings :=
          Lint_report.make ~rule:Lint_report.rule_interface ~loc:c.pc_loc
            (Printf.sprintf
               "payload constructor %s is sent somewhere but no handler \
                ever matches it: the message arrives and is silently \
                dropped (or bounces as a generic error)"
               c.pc_name)
          :: !findings)
    ctors;
  let payload_set = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace payload_set c.pc_name ()) ctors;
  check_catch_all sources payload_set findings;
  check_vop sources g findings;
  List.rev !findings
