(* Parsing and small Parsetree helpers shared by every rule.

   Machlint works on the *untyped* AST (compiler-libs [Pparse] +
   [Ast_iterator]): it never needs the build to have succeeded, which is
   what lets it run over known-bad fixtures and over a tree that is
   mid-refactor.  The price is that resolution is syntactic — see
   [Lint_graph] for how module paths are canonicalized. *)

type source = {
  s_path : string;  (* path as given on the command line *)
  s_module : string;  (* capitalized basename: "ipc.ml" -> "Ipc" *)
  s_ast : Parsetree.structure;
}

let module_name path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let parse path : (source, Lint_report.finding) result =
  match Pparse.parse_implementation ~tool_name:"machlint" path with
  | ast -> Ok { s_path = path; s_module = module_name path; s_ast = ast }
  | exception exn ->
      let msg =
        match Location.error_of_exn exn with
        | Some (`Ok report) ->
            Format.asprintf "%a" Location.print_report report
            |> String.map (fun c -> if c = '\n' then ' ' else c)
        | _ -> Printexc.to_string exn
      in
      Error
        {
          Lint_report.f_rule = Lint_report.rule_syntax;
          f_file = path;
          f_line = 1;
          f_col = 0;
          f_msg = msg;
        }

(* [Longident.flatten] raises on functor applications; we just give up on
   those (none appear on any path machlint cares about). *)
let rec flatten_lid = function
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (t, s) -> Option.map (fun l -> l @ [ s ]) (flatten_lid t)
  | Longident.Lapply _ -> None

let path_of_expr e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> flatten_lid txt
  | _ -> None

let last_of = function [] -> "" | l -> List.nth l (List.length l - 1)

(* "Does [path] end in [target]?" where target is a dotted pattern like
   "Sched.block" — so ["Mach";"Sched";"block"] matches but
   ["Block_cache";"block"] does not. *)
let suffix_matches ~path target =
  let t = String.split_on_char '.' target in
  let lp = List.length path and lt = List.length t in
  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
  lp >= lt && drop (lp - lt) path = t

let matches_any ~path targets =
  List.exists (fun t -> suffix_matches ~path t) targets

let has_attr names attrs =
  List.exists
    (fun a -> List.mem a.Parsetree.attr_name.Location.txt names)
    attrs

(* Variables bound by a pattern (for shadowing in the linearity rule). *)
let pat_vars p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.Parsetree.ppat_desc with
          | Parsetree.Ppat_var { txt; _ } -> acc := txt :: !acc
          | Parsetree.Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it p;
  !acc

(* A pattern that catches everything (possibly through aliases or
   constraints): the terminal case an extensible-variant match needs. *)
let rec is_catch_all p =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_any | Parsetree.Ppat_var _ -> true
  | Parsetree.Ppat_alias (q, _) | Parsetree.Ppat_constraint (q, _) ->
      is_catch_all q
  | Parsetree.Ppat_or (a, b) -> is_catch_all a || is_catch_all b
  | _ -> false

(* All string literals in an expression, with their locations. *)
let strings_of_expr e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _)) ->
              acc := (s, e.Parsetree.pexp_loc) :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  List.rev !acc

(* AST size (expressions + patterns), the deterministic work counter the
   machlint bench reports instead of wall-clock time. *)
let count_nodes structures =
  let n = ref 0 in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          incr n;
          Ast_iterator.default_iterator.expr it e);
      pat =
        (fun it p ->
          incr n;
          Ast_iterator.default_iterator.pat it p);
    }
  in
  List.iter (it.structure it) structures;
  !n
