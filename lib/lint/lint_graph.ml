(* Call graph over the scanned tree, at top-level-binding granularity.

   Resolution is syntactic but path-aware: a call like
   [Mach.Sched.block] is canonicalized by trying ever-shorter suffixes of
   the module path until one names a binding we saw ("Sched.block"),
   which makes the library wrapper modules (Mach, Fileserver, Machine)
   transparent.  [module F = Fileserver] aliases and [open]s are expanded
   per file.  Unresolved calls keep their textual path so rules can still
   match primitives by suffix.

   Closures handed to the event queue, disk completion slots, thread
   spawn, or a [txn_run] field do NOT run in their enclosing function's
   context — they are split out as [deferred] contexts with their own
   call lists, and excluded from the enclosing function's edges.  The
   no-block rule roots its taint checks at exactly those contexts. *)

open Parsetree

type call = {
  c_path : string list;  (* alias-expanded textual path *)
  c_key : string option;  (* canonical key when the target is in the tree *)
  c_loc : Location.t;
}

type deferred = {
  d_sink : string;  (* "Event_queue.schedule", "Disk.read", ..., "txn_run" *)
  d_fn : string;  (* enclosing binding's key, for the message *)
  d_loc : Location.t;
  d_calls : call list;
}

type fn = {
  fn_key : string;  (* "Ipc.receive", "File_server.Client.read" *)
  fn_modpath : string list;  (* ["File_server"; "Client"] *)
  fn_loc : Location.t;
  fn_attrs : (string * string option) list;  (* name, string payload *)
  fn_body : expression;
  mutable fn_calls : call list;
}

type t = {
  fns : (string, fn) Hashtbl.t;
  fn_order : string list;  (* deterministic iteration order *)
  contexts : deferred list;
}

let find t key = Hashtbl.find_opt t.fns key

(* Closure arguments to these callees run later, in another context. *)
let sink_patterns =
  [
    "Event_queue.schedule";
    "Disk.read";
    "Disk.write";
    "Disk.barrier";
    "thread_spawn";
    "spawn";
    "txn_run";
  ]

let sink_of path =
  List.find_opt (fun s -> Lint_ast.suffix_matches ~path s) sink_patterns

(* ------------------------------------------------------------------ *)
(* Pass 1: register every top-level (and one-level-nested) binding.    *)

let binding_name vb =
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (q, _) -> go q
    | _ -> None
  in
  go vb.pvb_pat

let register_fns fns order (src : Lint_ast.source) =
  let add modpath vb =
    match binding_name vb with
    | None -> ()
    | Some name ->
        let key = String.concat "." (modpath @ [ name ]) in
        if not (Hashtbl.mem fns key) then (
          let attrs =
            List.map
              (fun a ->
                let payload =
                  match a.attr_payload with
                  | PStr
                      [
                        {
                          pstr_desc =
                            Pstr_eval
                              ( {
                                  pexp_desc =
                                    Pexp_constant (Pconst_string (s, _, _));
                                  _;
                                },
                                _ );
                          _;
                        };
                      ] ->
                      Some s
                  | _ -> None
                in
                (a.attr_name.Location.txt, payload))
              vb.pvb_attributes
          in
          Hashtbl.replace fns key
            {
              fn_key = key;
              fn_modpath = modpath;
              fn_loc = vb.pvb_loc;
              fn_attrs = attrs;
              fn_body = vb.pvb_expr;
              fn_calls = [];
            };
          order := key :: !order)
  in
  let rec structure modpath str =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) -> List.iter (add modpath) vbs
        | Pstr_module { pmb_name = { txt = Some sub; _ }; pmb_expr; _ } -> (
            match pmb_expr.pmod_desc with
            | Pmod_structure s -> structure (modpath @ [ sub ]) s
            | _ -> ())
        | _ -> ())
      str
  in
  structure [ src.Lint_ast.s_module ] src.Lint_ast.s_ast

(* ------------------------------------------------------------------ *)
(* Pass 2: per-file resolution context, then call collection.          *)

type file_ctx = {
  fc_aliases : (string * string list) list;  (* module F = Fileserver *)
  fc_opens : string list list;  (* open Fs_types, open Mach.Ktypes *)
}

let file_ctx (src : Lint_ast.source) =
  let aliases = ref [] and opens = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_module
          { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
          match pmb_expr.pmod_desc with
          | Pmod_ident { txt; _ } -> (
              match Lint_ast.flatten_lid txt with
              | Some p -> aliases := (name, p) :: !aliases
              | None -> ())
          | _ -> ())
      | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }
        -> (
          match Lint_ast.flatten_lid txt with
          | Some p -> opens := p :: !opens
          | None -> ())
      | _ -> ())
    src.Lint_ast.s_ast;
  { fc_aliases = !aliases; fc_opens = List.rev !opens }

let expand_alias fc = function
  | hd :: tl as path -> (
      match List.assoc_opt hd fc.fc_aliases with
      | Some p -> p @ tl
      | None -> path)
  | [] -> []

(* Canonicalize a dotted path by trying ever-shorter suffixes against the
   known bindings ("Mach.Sched.block" -> "Sched.block"). *)
let resolve_qualified fns path =
  let rec try_from p =
    match p with
    | [] | [ _ ] -> None
    | _ ->
        let key = String.concat "." p in
        if Hashtbl.mem fns key then Some key else try_from (List.tl p)
  in
  try_from path

let resolve fns fc ~modpath path =
  let path = expand_alias fc path in
  (* Innermost enclosing module first (locals and sibling submodules),
     then the path as written, then opens. *)
  let drop_last l = List.filteri (fun i _ -> i < List.length l - 1) l in
  let rec from_prefix = function
    | [] -> None
    | pre ->
        let key = String.concat "." (pre @ path) in
        if Hashtbl.mem fns key then Some key else from_prefix (drop_last pre)
  in
  match from_prefix modpath with
  | Some k -> Some k
  | None -> (
      match resolve_qualified fns path with
      | Some k -> Some k
      | None ->
          List.fold_left
            (fun acc o ->
              match acc with
              | Some _ -> acc
              | None -> resolve_qualified fns (o @ path))
            None fc.fc_opens)

(* Collect the calls of [body].  Closure args of sink calls are split out
   into [deferred] (recursively — a callback scheduling a callback yields
   two contexts). *)
let collect_calls fns fc ~modpath ~fn_key body =
  let all_deferred = ref [] in
  let rec collect expr0 =
    let calls = ref [] in
    let add_path p loc =
      let p = expand_alias fc p in
      calls :=
        { c_path = p; c_key = resolve fns fc ~modpath p; c_loc = loc }
        :: !calls
    in
    let rec go e =
      match e.pexp_desc with
      | Pexp_apply (head, args) -> (
          match Lint_ast.path_of_expr head with
          | Some p ->
              let p' = expand_alias fc p in
              add_path p head.pexp_loc;
              let sink =
                match sink_of p' with
                | Some s when s = "txn_run" -> None  (* field, not ident *)
                | s -> s
              in
              List.iter
                (fun (_, a) ->
                  match (sink, a.pexp_desc) with
                  | Some s, (Pexp_fun _ | Pexp_function _) ->
                      all_deferred :=
                        {
                          d_sink = s;
                          d_fn = fn_key;
                          d_loc = a.pexp_loc;
                          d_calls = collect a;
                        }
                        :: !all_deferred
                  | _ -> go a)
                args
          | None ->
              go head;
              List.iter (fun (_, a) -> go a) args)
      | Pexp_ident { txt; _ } -> (
          match Lint_ast.flatten_lid txt with
          | Some p -> add_path p e.pexp_loc
          | None -> ())
      | Pexp_record (fields, base) ->
          Option.iter go base;
          List.iter
            (fun ({ Location.txt; _ }, v) ->
              match Lint_ast.flatten_lid txt with
              | Some p when Lint_ast.last_of p = "txn_run" ->
                  all_deferred :=
                    {
                      d_sink = "txn_run";
                      d_fn = fn_key;
                      d_loc = v.pexp_loc;
                      d_calls = collect v;
                    }
                    :: !all_deferred
              | _ -> go v)
            fields
      | _ ->
          let it =
            {
              Ast_iterator.default_iterator with
              expr = (fun _ e -> go e);
            }
          in
          Ast_iterator.default_iterator.expr it e
    in
    go expr0;
    List.rev !calls
  in
  let calls = collect body in
  (calls, List.rev !all_deferred)

(* ------------------------------------------------------------------ *)

let build (sources : Lint_ast.source list) =
  let fns = Hashtbl.create 512 in
  let order = ref [] in
  List.iter (register_fns fns order) sources;
  let contexts = ref [] in
  List.iter
    (fun src ->
      let fc = file_ctx src in
      let rec structure modpath str =
        List.iter
          (fun item ->
            match item.pstr_desc with
            | Pstr_value (_, vbs) ->
                List.iter
                  (fun vb ->
                    match binding_name vb with
                    | None -> ()
                    | Some name ->
                        let key = String.concat "." (modpath @ [ name ]) in
                        let calls, deferred =
                          collect_calls fns fc ~modpath ~fn_key:key vb.pvb_expr
                        in
                        (match Hashtbl.find_opt fns key with
                        | Some fn -> fn.fn_calls <- calls
                        | None -> ());
                        contexts := deferred @ !contexts)
                  vbs
            | Pstr_module { pmb_name = { txt = Some sub; _ }; pmb_expr; _ }
              -> (
                match pmb_expr.pmod_desc with
                | Pmod_structure s -> structure (modpath @ [ sub ]) s
                | _ -> ())
            | _ -> ())
          str
      in
      structure [ src.Lint_ast.s_module ] src.Lint_ast.s_ast)
    sources;
  { fns; fn_order = List.rev !order; contexts = List.rev !contexts }

let iter_fns t f =
  List.iter
    (fun key -> match Hashtbl.find_opt t.fns key with
      | Some fn -> f fn
      | None -> ())
    t.fn_order

(* Does call [c] hit one of the [targets] (dotted suffix patterns)?  The
   canonical key is checked first so local calls ("block" inside sched.ml
   resolving to "Sched.block") match too. *)
let call_matches c targets =
  (match c.c_key with
  | Some k -> Lint_ast.matches_any ~path:(String.split_on_char '.' k) targets
  | None -> false)
  || Lint_ast.matches_any ~path:c.c_path targets
