(* Machlint driver: scan directories, parse every .ml with
   compiler-libs, build the call graph once, run the five rules.

   The rules and their dynamic Machcheck counterparts:

     port-linearity  use-after-Move of donated pages/rights
                     (machcheck: rights sanitizer, buffer lifetime)
     lock-order      cycles in the static lock acquisition graph
                     (machcheck: wait-for-graph, at runtime)
     no-block        blocking reachable from IPI/interrupt/txn contexts
                     (machcheck: wait-for-graph)
     interface       open-variant message vocabulary and VOP tables
                     complete (no dynamic counterpart — this is the gap
                     machlint exists to close)
     provenance      BENCH_*.json writers carry schema_version+Run_meta
                     (enforced dynamically by bench ab; here at build) *)

module Report = Lint_report
module Ast = Lint_ast
module Graph = Lint_graph

type report = {
  r_files : int;
  r_defs : int;  (* top-level bindings seen by the call graph *)
  r_nodes : int;  (* AST size: deterministic analysis-work counter *)
  r_cycles : int;  (* modeled analysis cost, see [analysis_passes] *)
  r_findings : Lint_report.finding list;
}

(* The deterministic cost model for BENCH_lint.json: every pass walks
   every AST node at unit cost — one parse pass, one call-graph pass and
   one per rule.  Host time is noise; this number moves exactly when the
   tree or the analyzer grows. *)
let analysis_passes = 2 + List.length Lint_report.all_rules

(* lint_fixtures is machlint's own known-bad corpus: it is linted file
   by file by the fixture tests, never as part of a tree scan. *)
let skip_dirs = [ "_build"; ".git"; "lint_fixtures" ]

let rec walk_files acc path =
  if Sys.file_exists path && Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc name ->
           if List.mem name skip_dirs then acc
           else walk_files acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

(* [let[@machlint.allow "rule ..."] f = ...] suppresses the named rules
   (or every rule, with no payload) inside that binding — for code that
   violates a discipline *on purpose*, like the tests that seed
   known-bad traffic to prove Machcheck's dynamic checkers catch it. *)
let allow_spans g =
  let spans = ref [] in
  Lint_graph.iter_fns g (fun fn ->
      List.iter
        (fun (name, payload) ->
          if name = "machlint.allow" || name = "allow_lint" then
            let rules =
              match payload with
              | None -> Lint_report.all_rules
              | Some s ->
                  String.split_on_char ' ' s
                  |> List.concat_map (String.split_on_char ',')
                  |> List.filter (fun r -> r <> "")
            in
            let loc = fn.Lint_graph.fn_loc in
            spans :=
              ( loc.Location.loc_start.Lexing.pos_fname,
                loc.Location.loc_start.Lexing.pos_lnum,
                loc.Location.loc_end.Lexing.pos_lnum,
                rules )
              :: !spans)
        fn.Lint_graph.fn_attrs);
  !spans

let allowed spans (f : Lint_report.finding) =
  List.exists
    (fun (file, l0, l1, rules) ->
      f.Lint_report.f_file = file
      && f.Lint_report.f_line >= l0
      && f.Lint_report.f_line <= l1
      && List.mem f.Lint_report.f_rule rules)
    spans

let run ~roots () =
  let files =
    List.concat_map (fun r -> List.rev (walk_files [] r)) roots
    |> List.sort_uniq compare
  in
  let sources, syntax_findings =
    List.fold_left
      (fun (srcs, errs) path ->
        match Lint_ast.parse path with
        | Ok s -> (s :: srcs, errs)
        | Error f -> (srcs, f :: errs))
      ([], []) files
  in
  let sources = List.rev sources in
  let g = Lint_graph.build sources in
  let findings =
    List.rev syntax_findings
    @ Lint_linearity.check g
    @ Lint_lockorder.check g
    @ Lint_noblock.check g
    @ Lint_interface.check sources g
    @ Lint_provenance.check g
  in
  let spans = allow_spans g in
  let findings = List.filter (fun f -> not (allowed spans f)) findings in
  let nodes =
    Lint_ast.count_nodes (List.map (fun s -> s.Lint_ast.s_ast) sources)
  in
  {
    r_files = List.length files;
    r_defs = List.length g.Lint_graph.fn_order;
    r_nodes = nodes;
    r_cycles = analysis_passes * nodes;
    r_findings = List.sort_uniq Lint_report.compare findings;
  }
