(* Rule: no-block contexts.

   [Sched.block] is the single primitive every wait in the tree funnels
   through (IPC receive, RPC call, semaphores, the block cache's disk
   waits).  We taint-propagate "may block" through the call graph and
   reject it in contexts that run with the world stopped:

   - functions annotated [@machlint.no_block] — IPI delivery, interrupt
     dispatch;
   - closures handed to the event queue or a disk completion slot (they
     run from the machine's event loop, where there is no thread to put
     to sleep);
   - [txn_run] bodies (the VOP-layer journal wrapper): these MAY wait on
     the disk (journal commit is a barrier) but must never wait on IPC,
     RPC or a semaphore — a transaction that parks mid-journal on a
     message from another server deadlocks recovery.

   Machcheck's wait-for-graph deadlock detector is the dynamic
   complement: it catches the blocked-entry cycles that this rule's
   static over-approximation intentionally leaves to runtime. *)

type policy = Deny_any | Deny_ipc

(* Waits that are acceptable inside a txn body (disk barriers) are in
   [any_sources] only; everything in [ipc_sources] is rejected by both
   policies. *)
let any_sources = [ "Sched.block"; "Clock.sleep_for" ]

let ipc_sources =
  [
    "Ipc.receive";
    "Ipc.send";
    "Ipc.call";
    "Ipc.serve";
    "Ipc.serve_one";
    "Rpc.call";
    "Rpc.call_retry";
    "Rpc.receive";
    "Rpc.reply_receive";
    "Rpc.serve";
    "Rpc.serve_one";
    "Sync.semaphore_wait";
    "Sync.semaphore_wait_timeout";
    "Sync.event_wait";
    "Sync.mutex_lock";
    "Runtime.umutex_lock";
  ]

let sources_of = function
  | Deny_any -> any_sources @ ipc_sources
  | Deny_ipc -> ipc_sources

let attr_names = [ "machlint.no_block"; "no_block" ]

(* Event-queue and disk-completion closures must not block at all;
   thread-spawn closures are ordinary thread bodies (free to block) and
   txn bodies get the weaker policy. *)
let policy_of_sink = function
  | "Event_queue.schedule" | "Disk.read" | "Disk.write" | "Disk.barrier" ->
      Some Deny_any
  | "txn_run" -> Some Deny_ipc
  | _ -> None

type taint = { mutable t_any : bool; mutable t_ipc : bool }

let compute_taint (g : Lint_graph.t) =
  let taint : (string, taint) Hashtbl.t = Hashtbl.create 512 in
  Lint_graph.iter_fns g (fun fn ->
      Hashtbl.replace taint fn.Lint_graph.fn_key
        { t_any = false; t_ipc = false });
  let get k = Hashtbl.find_opt taint k in
  let changed = ref true in
  while !changed do
    changed := false;
    Lint_graph.iter_fns g (fun fn ->
        match get fn.Lint_graph.fn_key with
        | None -> ()
        | Some t ->
            List.iter
              (fun c ->
                let hit_any =
                  Lint_graph.call_matches c any_sources
                  || Lint_graph.call_matches c ipc_sources
                and hit_ipc = Lint_graph.call_matches c ipc_sources in
                let callee =
                  Option.bind c.Lint_graph.c_key (fun k -> get k)
                in
                let any =
                  hit_any
                  || match callee with Some ct -> ct.t_any | None -> false
                and ipc =
                  hit_ipc
                  || match callee with Some ct -> ct.t_ipc | None -> false
                in
                if any && not t.t_any then (
                  t.t_any <- true;
                  changed := true);
                if ipc && not t.t_ipc then (
                  t.t_ipc <- true;
                  changed := true))
              fn.Lint_graph.fn_calls)
  done;
  taint

let render_call c =
  match c.Lint_graph.c_key with
  | Some k -> k
  | None -> String.concat "." c.Lint_graph.c_path

(* A witness chain "handle -> Rpc.serve -> Sched.block" for the finding
   message, so the report explains *why* the callee is tainted. *)
let trace g taint policy start_key =
  let sources = sources_of policy in
  let blocks k =
    match Hashtbl.find_opt taint k with
    | Some t -> ( match policy with Deny_any -> t.t_any | Deny_ipc -> t.t_ipc)
    | None -> false
  in
  let rec go seen k =
    if List.mem k seen || List.length seen > 8 then [ "..." ]
    else
      match Lint_graph.find g k with
      | None -> []
      | Some fn -> (
          let calls = fn.Lint_graph.fn_calls in
          match
            List.find_opt (fun c -> Lint_graph.call_matches c sources) calls
          with
          | Some c -> [ k; render_call c ]
          | None -> (
              match
                List.find_opt
                  (fun c ->
                    match c.Lint_graph.c_key with
                    | Some k2 -> blocks k2
                    | None -> false)
                  calls
              with
              | Some c ->
                  k :: go (k :: seen) (Option.get c.Lint_graph.c_key)
              | None -> [ k ]))
  in
  go [] start_key

let check_calls g taint ~policy ~where calls findings =
  let sources = sources_of policy in
  let blocks k =
    match Hashtbl.find_opt taint k with
    | Some t -> ( match policy with Deny_any -> t.t_any | Deny_ipc -> t.t_ipc)
    | None -> false
  in
  List.iter
    (fun c ->
      if Lint_graph.call_matches c sources then
        findings :=
          Lint_report.make ~rule:Lint_report.rule_noblock
            ~loc:c.Lint_graph.c_loc
            (Printf.sprintf
               "blocking primitive %s reached in %s (machcheck: \
                wait-for-graph)"
               (render_call c) where)
          :: !findings
      else
        match c.Lint_graph.c_key with
        | Some k when blocks k ->
            let chain = trace g taint policy k in
            findings :=
              Lint_report.make ~rule:Lint_report.rule_noblock
                ~loc:c.Lint_graph.c_loc
                (Printf.sprintf
                   "%s may block (%s) but is called in %s (machcheck: \
                    wait-for-graph)"
                   k
                   (String.concat " -> " chain)
                   where)
              :: !findings
        | _ -> ())
    calls

let check (g : Lint_graph.t) =
  let taint = compute_taint g in
  let findings = ref [] in
  (* Annotated functions. *)
  Lint_graph.iter_fns g (fun fn ->
      if
        List.exists
          (fun (a, _) -> List.mem a attr_names)
          fn.Lint_graph.fn_attrs
      then
        check_calls g taint ~policy:Deny_any
          ~where:
            (Printf.sprintf "%s [@machlint.no_block]" fn.Lint_graph.fn_key)
          fn.Lint_graph.fn_calls findings);
  (* Deferred contexts (event-queue / disk-completion / txn closures). *)
  List.iter
    (fun d ->
      match policy_of_sink d.Lint_graph.d_sink with
      | None -> ()
      | Some policy ->
          let where =
            match policy with
            | Deny_any ->
                Printf.sprintf "a %s callback (in %s)" d.Lint_graph.d_sink
                  d.Lint_graph.d_fn
            | Deny_ipc ->
                Printf.sprintf "a txn_run body (in %s)" d.Lint_graph.d_fn
          in
          check_calls g taint ~policy ~where d.Lint_graph.d_calls findings)
    g.Lint_graph.contexts;
  List.rev !findings
