(* Common file-system types shared by the physical file systems, the
   vnode layer and the file server: error vocabulary, per-format
   semantics profiles, the physical-operation record, and the VOP
   partial-vector layer that compiles per-format tables into it. *)

type fs_error =
  | E_not_found
  | E_exists
  | E_no_space
  | E_name_too_long
  | E_bad_name
  | E_not_dir
  | E_is_dir
  | E_dir_not_empty
  | E_bad_handle
  | E_read_only
  | E_io of string

val fs_error_to_string : fs_error -> string

type file_id = int

type stat = {
  st_id : file_id;
  st_size : int;
  st_is_dir : bool;
  st_blocks : int;
}

(* Semantics profile of a physical file system: the constraints the
   on-disk format imposes on the logical layer (the paper's point about
   FAT's 8.3 names). *)
type format_limits = {
  fl_format : string;
  fl_max_name : int;
  fl_case_sensitive : bool;
  fl_preserves_case : bool;
  fl_eight_dot_three : bool;
  fl_journalled : bool;
}

(* What a physical file system reports after crash recovery. *)
type recover_report = {
  rr_journal_txns : int;
  rr_journal_blocks : int;
  rr_fsck_findings : string list;
}

val clean_recovery : recover_report
val merge_recovery : recover_report -> recover_report -> recover_report

(* The physical-file-system operations record — the extended vnode
   architecture's per-format plug.  Produced by [vop_compile]; consumed
   by the vnode layer. *)
type pfs = {
  pfs_limits : format_limits;
  pfs_root : file_id;
  pfs_lookup : dir:file_id -> string -> (file_id, fs_error) result;
  pfs_create :
    dir:file_id -> string -> is_dir:bool -> (file_id, fs_error) result;
  pfs_remove : dir:file_id -> string -> (unit, fs_error) result;
  pfs_readdir : dir:file_id -> (string list, fs_error) result;
  pfs_stat : file_id -> (stat, fs_error) result;
  pfs_read : file_id -> off:int -> len:int -> (bytes, fs_error) result;
  pfs_map_pool : Mach.Ktypes.task -> unit;
  pfs_read_paged :
    file_id -> off:int -> len:int ->
    ((int * int * bytes) option, fs_error) result;
  pfs_release_paged : addr:int -> bytes:int -> unit;
  pfs_write : file_id -> off:int -> bytes -> (int, fs_error) result;
  pfs_truncate : file_id -> len:int -> (unit, fs_error) result;
  pfs_rename :
    src_dir:file_id -> string -> dst_dir:file_id -> string ->
    (unit, fs_error) result;
  pfs_sync : unit -> unit;
  pfs_free_blocks : unit -> int;
  pfs_recover : unit -> recover_report;
}

val ( let* ) :
  ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result

(* Journal transaction hook: begin / commit-or-rollback around the body.
   [vop_compile] wraps every mutating entry of the compiled vector in
   it. *)
type txn = {
  txn_run : 'a. (unit -> ('a, fs_error) result) -> ('a, fs_error) result;
}

val txn_none : txn

(* What a physical file system registers: a partial operation vector.
   [None] entries fall back to the defaults in [vop_compile]. *)
type vop_partial = {
  vp_limits : format_limits;
  vp_root : file_id;
  vp_lookup : (dir:file_id -> string -> (file_id, fs_error) result) option;
  vp_create :
    (dir:file_id -> string -> is_dir:bool -> (file_id, fs_error) result)
    option;
  vp_remove : (dir:file_id -> string -> (unit, fs_error) result) option;
  vp_readdir : (dir:file_id -> (string list, fs_error) result) option;
  vp_stat : (file_id -> (stat, fs_error) result) option;
  vp_read :
    (file_id -> off:int -> len:int -> (bytes, fs_error) result) option;
  vp_map_pool : (Mach.Ktypes.task -> unit) option;
  vp_read_paged :
    (file_id -> off:int -> len:int ->
     ((int * int * bytes) option, fs_error) result)
    option;
  vp_release_paged : (addr:int -> bytes:int -> unit) option;
  vp_write : (file_id -> off:int -> bytes -> (int, fs_error) result) option;
  vp_truncate : (file_id -> len:int -> (unit, fs_error) result) option;
  vp_rename :
    (src_dir:file_id -> string -> dst_dir:file_id -> string ->
     (unit, fs_error) result)
    option;
  vp_sync : (unit -> unit) option;
  vp_free_blocks : (unit -> int) option;
  vp_recover : (unit -> recover_report) option;
  vp_txn : txn option;
}

(* An all-[None] partial vector to build real ones from. *)
val vop_null : limits:format_limits -> root:file_id -> vop_partial

(* Compile a partial vector into the complete per-mount [pfs]: missing
   core operations become uniform E_io errors, missing optional ones
   become benign defaults, and when the format supplied a transaction
   hook every mutating entry is wrapped in it. *)
val vop_compile : vop_partial -> pfs
