let config =
  {
    Extfs.cfg_format = "hpfs";
    cfg_max_name = 254;
    cfg_case_sensitive = false;
    cfg_journalled = false;
  }

let mkfs disk ?start ?blocks () = Extfs.mkfs disk config ?start ?blocks ()
let mount cache ?start () = Extfs.mount cache config ?start ()
let fsck cache ?start () = Extfs.fsck cache config ?start ()
