(** The shared-service file server and its substrate: a write-back block
    cache, three physical file systems with genuine on-disk layouts
    (FAT, HPFS-like, journalled JFS-like), the vnode/union-semantics
    layer, and the RPC file server with port-per-open-file and
    mapped-buffer reads. *)

module Fs_types = Fs_types
module Block_cache = Block_cache
module Journal = Journal
module Fat = Fat
module Extfs = Extfs
module Hpfs = Hpfs
module Jfs = Jfs
module Vnode = Vnode
module Namecache = Namecache
module Vfs = Vfs
module File_server = File_server
