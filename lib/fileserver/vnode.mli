(* The vnode layer: per-mount file identity above the physical file
   systems.  A vnode names one (mount, file_id) incarnation; the VFS
   interns vnodes per mount so a file resolved twice is the same object,
   and every operation dispatches through the mount's compiled operation
   vector.  A reclaimed vnode rejects further operations with
   [E_bad_handle]; every lifecycle event is mirrored to Machcheck's
   vnode checker when one is installed. *)

(* One mounted file system: a compiled operation vector plus the vnode
   intern table for that mount. *)
type mount

(* One (mount, file_id) incarnation. *)
type t

(* [space] supplies the Machcheck handle (and the server's space id) to
   mirror lifecycle events into; [None] disables the mirroring. *)
val make_mount :
  id:int ->
  point:string ->
  space:(unit -> (Check.t * int) option) ->
  Fs_types.pfs ->
  mount

val mount_id : mount -> int
val mount_point : mount -> string
val limits : mount -> Fs_types.format_limits
val pfs : mount -> Fs_types.pfs

val mount : t -> mount
val id : t -> Fs_types.file_id
val is_dir : t -> bool
val refs : t -> int
val reclaimed : t -> bool

(* Intern the vnode for a file id, creating it on first sight.
   Directory-ness is fixed at intern time; id reuse after unlink goes
   through reclaim + re-intern. *)
val intern : mount -> Fs_types.file_id -> t
val find : mount -> Fs_types.file_id -> t option
val root : mount -> t
val interned : mount -> int

(* Union-semantics bookkeeping: true the first time this folded name is
   seen on the mount, so a compromise counts once per distinct name. *)
val note_folding : mount -> folded:string -> bool

val ref_ : t -> unit
val unref : t -> unit

(* The file behind the id is gone (unlink): its vnode dies.  Outstanding
   references are legitimate — the holder's next use fails. *)
val reclaim : mount -> Fs_types.file_id -> unit

(* Crash recovery: every vnode of the dead incarnation is reclaimed and
   the checker sweeps for references nobody dropped. *)
val reclaim_all : mount -> unit

(* Reclaim guard + checker mirror shared by every operation below. *)
val use : t -> op:string -> (unit, Fs_types.fs_error) result

val stat : t -> (Fs_types.stat, Fs_types.fs_error) result
val lookup : t -> string -> (Fs_types.file_id, Fs_types.fs_error) result

val create :
  t -> string -> is_dir:bool -> (Fs_types.file_id, Fs_types.fs_error) result

val remove : t -> string -> (unit, Fs_types.fs_error) result
val readdir : t -> (string list, Fs_types.fs_error) result
val read : t -> off:int -> len:int -> (bytes, Fs_types.fs_error) result

val read_paged :
  t -> off:int -> len:int ->
  ((int * int * bytes) option, Fs_types.fs_error) result

val write : t -> off:int -> bytes -> (int, Fs_types.fs_error) result
val truncate : t -> len:int -> (unit, Fs_types.fs_error) result

val rename :
  src:t -> dst:t -> string -> string -> (unit, Fs_types.fs_error) result

(* Pool plumbing is incarnation cleanup, not a file operation: no
   reclaim guard, must work during teardown. *)
val map_pool : t -> Mach.Ktypes.task -> unit
val release_paged : t -> addr:int -> bytes:int -> unit
