(** The HPFS-like physical file system (OS/2's native format).

    Long names (up to 254 characters), case-insensitive matching with
    case preservation, extent-based allocation, no journal. *)

open Fs_types

val config : Extfs.config
val mkfs : Machine.Disk.t -> ?start:int -> ?blocks:int -> unit -> unit
val mount : Block_cache.t -> ?start:int -> unit -> (pfs, fs_error) result

val fsck : Block_cache.t -> ?start:int -> unit -> string list
(** Invariant scan of the volume; [] when consistent. *)
