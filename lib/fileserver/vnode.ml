(* The vnode layer: per-mount file identity above the physical file
   systems.  A vnode names one (mount, file_id) incarnation; the VFS
   interns vnodes per mount so a file resolved twice is the same object,
   and every operation dispatches through the mount's compiled operation
   vector.  Unlink and crash recovery reclaim vnodes; a reclaimed vnode
   rejects further operations with [E_bad_handle], and every lifecycle
   event is mirrored to Machcheck's vnode checker when one is
   installed. *)

open Fs_types

type mount = {
  m_id : int;
  m_point : string;
  m_pfs : pfs;
  m_vnodes : (file_id, t) Hashtbl.t;
  (* distinct folded names already counted as union-semantics
     compromises on this mount *)
  m_folded : (string, unit) Hashtbl.t;
  m_space : unit -> (Check.t * int) option;
}

and t = {
  v_mount : mount;
  v_id : file_id;
  v_is_dir : bool;
  mutable v_refs : int;
  mutable v_reclaimed : bool;
}

let make_mount ~id ~point ~space pfs =
  {
    m_id = id;
    m_point = point;
    m_pfs = pfs;
    m_vnodes = Hashtbl.create 64;
    m_folded = Hashtbl.create 8;
    m_space = space;
  }

let mount_id m = m.m_id
let mount_point m = m.m_point
let limits m = m.m_pfs.pfs_limits
let pfs m = m.m_pfs

let mount v = v.v_mount
let id v = v.v_id
let is_dir v = v.v_is_dir
let refs v = v.v_refs
let reclaimed v = v.v_reclaimed

let chk m f =
  match m.m_space () with Some (c, sp) -> f c sp | None -> ()

(* Intern the vnode for [id], creating it on first sight.  Directory-ness
   is fixed at intern time from one stat — ids are never retyped in
   place; reuse after unlink goes through reclaim + re-intern. *)
let intern m fid =
  match Hashtbl.find_opt m.m_vnodes fid with
  | Some v -> v
  | None ->
      let is_dir =
        match m.m_pfs.pfs_stat fid with
        | Ok st -> st.st_is_dir
        | Error _ -> false
      in
      let v =
        { v_mount = m; v_id = fid; v_is_dir = is_dir; v_refs = 0;
          v_reclaimed = false }
      in
      Hashtbl.replace m.m_vnodes fid v;
      chk m (fun c sp -> Check.vnode_active c ~space:sp ~mount:m.m_id ~file:fid);
      v

let find m fid = Hashtbl.find_opt m.m_vnodes fid

(* Union-semantics bookkeeping: returns true the first time this folded
   name is seen on the mount, so a compromise counts once per distinct
   name rather than once per walk. *)
let note_folding m ~folded =
  if Hashtbl.mem m.m_folded folded then false
  else begin
    Hashtbl.add m.m_folded folded ();
    true
  end
let root m = intern m m.m_pfs.pfs_root
let interned m = Hashtbl.length m.m_vnodes

let ref_ v =
  v.v_refs <- v.v_refs + 1;
  chk v.v_mount (fun c sp ->
      Check.vnode_ref c ~space:sp ~mount:v.v_mount.m_id ~file:v.v_id)

let unref v =
  chk v.v_mount (fun c sp ->
      Check.vnode_unref c ~space:sp ~mount:v.v_mount.m_id ~file:v.v_id);
  v.v_refs <- max 0 (v.v_refs - 1)

(* The file behind [fid] is gone (unlink): its vnode dies.  Outstanding
   references are legitimate — the holder's next use fails. *)
let reclaim m fid =
  match Hashtbl.find_opt m.m_vnodes fid with
  | None -> ()
  | Some v ->
      v.v_reclaimed <- true;
      Hashtbl.remove m.m_vnodes fid;
      chk m (fun c sp ->
          Check.vnode_reclaimed c ~space:sp ~mount:m.m_id ~file:fid)

(* Crash recovery: every vnode of the dead incarnation is reclaimed and
   the checker sweeps for references nobody dropped. *)
let reclaim_all m =
  Hashtbl.iter
    (fun fid v ->
      v.v_reclaimed <- true;
      chk m (fun c sp ->
          Check.vnode_reclaimed c ~space:sp ~mount:m.m_id ~file:fid))
    m.m_vnodes;
  Hashtbl.reset m.m_vnodes;
  chk m (fun c sp -> Check.vnode_mount_recovered c ~space:sp ~mount:m.m_id)

let use v ~op : (unit, fs_error) result =
  chk v.v_mount (fun c sp ->
      Check.vnode_used c ~space:sp ~mount:v.v_mount.m_id ~file:v.v_id ~op);
  if v.v_reclaimed then Error E_bad_handle else Ok ()

(* --- operations, dispatched through the mount's vector ------------------- *)

let stat v =
  let* () = use v ~op:"stat" in
  v.v_mount.m_pfs.pfs_stat v.v_id

let lookup v name =
  let* () = use v ~op:"lookup" in
  v.v_mount.m_pfs.pfs_lookup ~dir:v.v_id name

let create v name ~is_dir =
  let* () = use v ~op:"create" in
  v.v_mount.m_pfs.pfs_create ~dir:v.v_id name ~is_dir

let remove v name =
  let* () = use v ~op:"remove" in
  v.v_mount.m_pfs.pfs_remove ~dir:v.v_id name

let readdir v =
  let* () = use v ~op:"readdir" in
  v.v_mount.m_pfs.pfs_readdir ~dir:v.v_id

let read v ~off ~len =
  let* () = use v ~op:"read" in
  v.v_mount.m_pfs.pfs_read v.v_id ~off ~len

let read_paged v ~off ~len =
  let* () = use v ~op:"read_paged" in
  v.v_mount.m_pfs.pfs_read_paged v.v_id ~off ~len

let write v ~off data =
  let* () = use v ~op:"write" in
  v.v_mount.m_pfs.pfs_write v.v_id ~off data

let truncate v ~len =
  let* () = use v ~op:"truncate" in
  v.v_mount.m_pfs.pfs_truncate v.v_id ~len

let rename ~src ~dst src_name dst_name =
  let* () = use src ~op:"rename" in
  let* () = use dst ~op:"rename" in
  src.v_mount.m_pfs.pfs_rename ~src_dir:src.v_id src_name ~dst_dir:dst.v_id
    dst_name

(* Pool plumbing is incarnation cleanup, not a file operation: it must
   work during teardown paths, so no reclaim guard. *)
let map_pool v task = v.v_mount.m_pfs.pfs_map_pool task
let release_paged v ~addr ~bytes =
  v.v_mount.m_pfs.pfs_release_paged ~addr ~bytes
