(** The JFS-like physical file system (AIX's journalled format).

    Long names, case-sensitive, and a write-ahead journal: every
    mutating operation commits its block images to a checksummed journal
    ring (with an ordered barrier) before touching home locations, so a
    power cut at any write loses no acknowledged operation.  Mounting
    replays committed-but-unapplied transactions. *)

open Fs_types

val config : Extfs.config
val mkfs : Machine.Disk.t -> ?start:int -> ?blocks:int -> unit -> unit
val mount : Block_cache.t -> ?start:int -> unit -> (pfs, fs_error) result

val fsck : Block_cache.t -> ?start:int -> unit -> string list
(** Invariant scan of the volume; [] when consistent. *)

val last_recovery : Block_cache.t -> Journal.recovery option
(** The most recent journal recovery scan against this cache. *)
