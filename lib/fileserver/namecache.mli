(* Name cache: path-component lookup results keyed by (mount, parent
   directory, case-folded component), after DragonFly's namecache.
   Positive entries short-circuit the per-format directory scan;
   negative entries short-circuit repeated lookups of absent names.
   Entries live on an intrusive LRU bounded by [capacity]; the VFS
   invalidates on create/unlink/rename and clears on recovery.

   Pure host-side data structure: hit/miss accounting only — the VFS
   charges the simulated probe cost and feeds Machcheck. *)

type value = Pos of Fs_types.file_id | Neg

type stats = {
  cs_capacity : int;
  cs_entries : int;
  cs_hits : int;
  cs_neg_hits : int;
  cs_misses : int;
  cs_insertions : int;
  cs_evictions : int;
  cs_invalidations : int;
}

type t

val create : ?capacity:int -> unit -> t

(* Called for each LRU victim, after removal — the VFS uses it to keep
   Machcheck's shadow of the cache in sync. *)
val set_on_evict :
  t -> (mount:int -> dir:Fs_types.file_id -> name:string -> unit) -> unit

(* A hit (positive or negative) refreshes the entry's LRU position. *)
val find :
  t -> mount:int -> dir:Fs_types.file_id -> name:string -> value option

(* Insert replaces any entry under the same key and may evict the least
   recently used entry to stay within capacity. *)
val insert :
  t -> mount:int -> dir:Fs_types.file_id -> name:string -> value -> unit

val invalidate : t -> mount:int -> dir:Fs_types.file_id -> name:string -> unit
val clear : t -> unit
val entries : t -> int
val stats : t -> stats
