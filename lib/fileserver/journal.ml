(* Write-ahead journal over a reserved ring of disk blocks.

   One transaction = the block images mutated by one file-system
   operation.  Committing writes, in FIFO disk order:

     [header][data] ... [header][data] [commit]  -- then a barrier

   and blocks the calling thread only on the barrier, so a transaction
   costs one synchronous wait however many blocks it carries.  Each
   header carries the target block number and a checksum of the data
   image that follows it; the commit record is the durability point —
   an operation is acknowledged only after its commit (and everything
   before it, by FIFO order plus the barrier) has reached the media.
   Home-location writes happen after that, through the write-back cache.

   The ring is reused under a checkpoint discipline.  Every record
   occupies exactly one slot and one sequence number, with
   slot = seq mod ring-size, so the ring always holds a contiguous
   suffix of record history.  Before a slot holding an un-checkpointed
   record would be overwritten, the engine durably flushes the home
   cache (so every committed transaction's effects are on the media)
   and writes a checkpoint record carrying "checkpointed through
   sequence S".  Recovery replays only committed transactions with
   sequence numbers above the newest checkpoint — anything older is
   already home, and replaying it could clobber newer durable state. *)

let magic_header = "WJH1"
let magic_commit = "WJC1"
let magic_checkpoint = "WJK1"

type recovery = {
  rv_scanned : int;  (* journal slots scanned *)
  rv_replayed_txns : int;
  rv_replayed_blocks : int;
  rv_discarded : int;  (* incomplete or checksum-invalid transactions *)
}

let clean_scan = {
  rv_scanned = 0; rv_replayed_txns = 0; rv_replayed_blocks = 0;
  rv_discarded = 0;
}

type t = {
  kernel : Mach.Kernel.t;
  disk : Machine.Disk.t;
  start : int;  (* first journal block on disk *)
  blocks : int;  (* ring size in blocks *)
  note_write : unit -> unit;  (* per journal-record write (stats) *)
  home_write : int -> bytes -> unit;  (* replay target: the block cache *)
  flush_home : unit -> unit;  (* durable cache flush, incl. barrier *)
  mutable seq : int;  (* next record sequence; slot = seq mod blocks *)
  mutable checkpointed : int;  (* highest seq covered by a checkpoint *)
  mutable txn_id : int;
  mutable records : int;
  mutable commits : int;
}

(* --- little-endian fields and checksums --------------------------------- *)

let get32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let set32 b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xFF))

(* FNV-1a, 32-bit *)
let cksum b off len =
  let h = ref 0x811C9DC5 in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (Bytes.get b i)) * 0x01000193 land 0xFFFFFFFF
  done;
  !h

(* Record layout within one block-sized slot:
     0..3   magic        4..7   seq          8..11  txn id
     12..15 field A      16..19 field B      20..23 checksum of 0..19
   A/B: header = target block / data checksum; commit = data-block
   count / 0; checkpoint = checkpointed-through seq / 0. *)
let encode t ~magic ~seq ~txn ~a ~b =
  let bs = (Machine.Disk.geometry t.disk).Machine.Disk.block_size in
  let r = Bytes.make bs '\000' in
  Bytes.blit_string magic 0 r 0 4;
  set32 r 4 seq;
  set32 r 8 txn;
  set32 r 12 a;
  set32 r 16 b;
  set32 r 20 (cksum r 0 20);
  r

type parsed =
  | P_header of { seq : int; txn : int; target : int; dsum : int }
  | P_commit of { seq : int; txn : int; count : int }
  | P_checkpoint of { seq : int; through : int }
  | P_raw

let parse_slot ~blocks ~slot raw =
  if Bytes.length raw < 24 then P_raw
  else
    let m = Bytes.sub_string raw 0 4 in
    if m <> magic_header && m <> magic_commit && m <> magic_checkpoint then
      P_raw
    else if get32 raw 20 <> cksum raw 0 20 then P_raw
    else
      let seq = get32 raw 4 in
      (* the slot discipline: a genuine record's seq names its slot *)
      if seq < 0 || seq mod blocks <> slot then P_raw
      else if m = magic_header then
        P_header { seq; txn = get32 raw 8; target = get32 raw 12;
                   dsum = get32 raw 16 }
      else if m = magic_commit then
        P_commit { seq; txn = get32 raw 8; count = get32 raw 12 }
      else P_checkpoint { seq; through = get32 raw 12 }

(* --- simulated I/O helpers ---------------------------------------------- *)

let in_thread (t : t) =
  Option.is_some t.kernel.Mach.Kernel.sys.Mach.Sched.current

let read_slot_blocking t block =
  if in_thread t then begin
    let sys = t.kernel.Mach.Kernel.sys in
    let th = Mach.Sched.self () in
    let result = ref None in
    Machine.Disk.read t.disk ~block ~count:1 (fun data ->
        result := Some data;
        Mach.Sched.wake sys th);
    let rec wait () =
      match !result with
      | Some data -> data
      | None ->
          ignore (Mach.Sched.block "journal-read" : Mach.Ktypes.kern_return);
          wait ()
    in
    wait ()
  end
  else Machine.Disk.read_now t.disk ~block ~count:1

let barrier_sync t =
  if in_thread t then begin
    let sys = t.kernel.Mach.Kernel.sys in
    let th = Mach.Sched.self () in
    let arrived = ref false in
    Machine.Disk.barrier t.disk (fun () ->
        arrived := true;
        Mach.Sched.wake sys th);
    while not !arrived do
      ignore (Mach.Sched.block "journal-barrier" : Mach.Ktypes.kern_return)
    done
  end
  else Machine.Disk.barrier t.disk (fun () -> ())

(* Write the next record slot (fire-and-forget; durability comes from
   the barrier that ends the commit or checkpoint). *)
let put t data =
  let block = t.start + (t.seq mod t.blocks) in
  if in_thread t then Machine.Disk.write t.disk ~block data (fun () -> ())
  else Machine.Disk.write_now t.disk ~block data;
  t.seq <- t.seq + 1;
  t.records <- t.records + 1;
  t.note_write ()

(* --- checkpoints and ring room ------------------------------------------ *)

let checkpoint t =
  (* every committed transaction's home effects become durable first,
     so records at or below [through] are dead weight from here on *)
  t.flush_home ();
  let through = t.seq - 1 in
  put t (encode t ~magic:magic_checkpoint ~seq:(t.seq) ~txn:0 ~a:through ~b:0);
  barrier_sync t;
  t.checkpointed <- through

(* Writing seq n reuses the slot that held seq n - blocks; that record
   must already be checkpointed or it could still be needed by replay. *)
let ensure_room t needed =
  while t.seq + needed - 1 - t.blocks > t.checkpointed do
    checkpoint t
  done

(* --- commit -------------------------------------------------------------- *)

let max_data_per_txn t = (t.blocks - 2) / 2

let rec take n = function
  | [] -> ([], [])
  | x :: rest when n > 0 ->
      let a, b = take (n - 1) rest in
      (x :: a, b)
  | rest -> ([], rest)

let rec commit t writes =
  match writes with
  | [] -> ()
  | _ when List.length writes > max_data_per_txn t ->
      (* An oversized operation cannot fit the ring as one transaction;
         commit it in bounded batches.  Each batch keeps the write-ahead
         ordering, at the cost of whole-operation atomicity. *)
      let batch, rest = take (max_data_per_txn t) writes in
      commit t batch;
      commit t rest
  | _ ->
      let k = List.length writes in
      ensure_room t (2 * k + 1);
      let txn = t.txn_id in
      t.txn_id <- t.txn_id + 1;
      List.iter
        (fun (target, data) ->
          let dsum = cksum data 0 (Bytes.length data) in
          put t (encode t ~magic:magic_header ~seq:t.seq ~txn ~a:target ~b:dsum);
          put t (Bytes.copy data))
        writes;
      put t (encode t ~magic:magic_commit ~seq:t.seq ~txn ~a:k ~b:0);
      (* durability point: everything above reached the media, in order *)
      barrier_sync t;
      t.commits <- t.commits + 1

(* --- recovery ------------------------------------------------------------ *)

(* Scan the ring, replay committed-but-uncheckpointed transactions into
   the home cache, and fence the result behind a fresh checkpoint so a
   second crash cannot replay twice over newer state. *)
let scan_and_replay t =
  let parsed = Array.make t.blocks P_raw in
  let raw = Array.make t.blocks Bytes.empty in
  for slot = 0 to t.blocks - 1 do
    let data = read_slot_blocking t (t.start + slot) in
    raw.(slot) <- data;
    parsed.(slot) <- parse_slot ~blocks:t.blocks ~slot data
  done;
  let max_seq = ref (-1) in
  let through = ref (-1) in
  Array.iter
    (function
      | P_header { seq; _ } -> max_seq := max !max_seq (seq + 1)
      | P_commit { seq; _ } -> max_seq := max !max_seq seq
      | P_checkpoint { seq; through = s } ->
          max_seq := max !max_seq seq;
          through := max !through s
      | P_raw -> ())
    parsed;
  let commits =
    Array.fold_left
      (fun acc p ->
        match p with
        | P_commit { seq; txn; count } when seq > !through ->
            (seq, txn, count) :: acc
        | _ -> acc)
      [] parsed
    |> List.sort compare
  in
  let replayed_txns = ref 0 in
  let replayed_blocks = ref 0 in
  let discarded = ref 0 in
  List.iter
    (fun (cseq, txn, count) ->
      let ok = ref (count > 0 && count <= max_data_per_txn t) in
      let writes = ref [] in
      if !ok then
        for i = count - 1 downto 0 do
          let hseq = cseq - (2 * (count - i)) in
          if hseq < 0 then ok := false
          else
            match parsed.(hseq mod t.blocks) with
            | P_header { seq; txn = htxn; target; dsum }
              when seq = hseq && htxn = txn ->
                let data = raw.((hseq + 1) mod t.blocks) in
                if cksum data 0 (Bytes.length data) = dsum then
                  writes := (target, data) :: !writes
                else ok := false
            | _ -> ok := false
        done;
      if !ok then begin
        incr replayed_txns;
        List.iter
          (fun (target, data) ->
            incr replayed_blocks;
            t.home_write target data)
          !writes
      end
      else incr discarded)
    commits;
  if !replayed_blocks > 0 then t.flush_home ();
  (* position the engine after everything the scan saw *)
  t.seq <- !max_seq + 1;
  t.checkpointed <- !through;
  if !max_seq >= 0 then checkpoint t;
  {
    rv_scanned = t.blocks;
    rv_replayed_txns = !replayed_txns;
    rv_replayed_blocks = !replayed_blocks;
    rv_discarded = !discarded;
  }

let attach kernel disk ~start ~blocks ~note_write ~home_write ~flush_home =
  if blocks < 8 then invalid_arg "Journal.attach: ring too small";
  let t =
    {
      kernel;
      disk;
      start;
      blocks;
      note_write;
      home_write;
      flush_home;
      seq = 0;
      checkpointed = -1;
      txn_id = 0;
      records = 0;
      commits = 0;
    }
  in
  let rv = scan_and_replay t in
  (t, rv)

let recover t = scan_and_replay t
let records_written t = t.records
let txns_committed t = t.commits
let ring_blocks t = t.blocks
