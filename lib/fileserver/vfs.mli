(** The VFS: mount table, vnode-based path walking, the DragonFly-style
    name cache, and the union-semantics checks.

    The personality-neutral file server "had to implement the union of
    the TalOS, the OS/2 and the UNIX file system semantics"; this module
    is where that union lives.  Each call carries the client
    personality's {!semantics}; the layer reconciles them with the
    mounted format's {!Fs_types.format_limits}, folding case, rejecting
    over-long names on FAT, and counting every {e compromise} — the
    places where no consistent answer exists and the implementation
    picks one (measured by tests and discussed in DESIGN.md §5).

    Paths resolve through interned {!Vnode.t}s and a name cache keyed by
    [(mount, directory vnode, folded component)] with negative entries;
    mutations and crash recovery invalidate what they falsify
    (DESIGN.md §13). *)

open Fs_types

type t

type semantics = {
  sem_name : string;
  sem_case_sensitive : bool;
  sem_long_names : bool;
}

val os2_semantics : semantics
val unix_semantics : semantics
val talos_semantics : semantics

type node = Root | File of Vnode.t
(** What a path resolves to: ["/"] is the synthetic root directory
    (its entries are the mount points), everything else a vnode. *)

val create :
  ?kernel:Mach.Kernel.t -> ?namecache:bool -> ?cache_capacity:int ->
  unit -> t
(** [?kernel] lets the walk charge simulated cycles for cache probes;
    [?namecache:false] disables the cache (A/B baseline). *)

val mount : t -> at:string -> pfs -> (unit, string) result
(** Mount points are single top-level components, e.g. ["/c"]. *)

val mounts : t -> (string * string) list
(** [(mount point, format)] pairs. *)

val resolve : t -> semantics -> path:string -> (node, fs_error) result
(** Walk the path through the mount table and directories.  [""] and
    ["/"] resolve to {!Root}. *)

val resolve_parent :
  t -> semantics -> path:string ->
  (Vnode.mount * Vnode.t * string, fs_error) result
(** Resolve all but the last component; returns the mount, the parent
    directory vnode and the leaf name (semantic checks applied to the
    leaf). *)

val compromises : t -> int
(** Number of semantic compromises taken so far: distinct names whose
    case a case-folding mount discarded under a case-sensitive client,
    counted once per name per mount. *)

val stat : t -> semantics -> path:string -> (stat, fs_error) result
val mkdir : t -> semantics -> path:string -> (file_id, fs_error) result
val create_file : t -> semantics -> path:string -> (file_id, fs_error) result
val unlink : t -> semantics -> path:string -> (unit, fs_error) result
val readdir : t -> semantics -> path:string -> (string list, fs_error) result
(** [readdir] of ["/"] lists the mount points. *)

val rename :
  t -> semantics -> src:string -> dst:string -> (unit, fs_error) result
(** Source and destination must be on the same mount. *)

val sync : t -> unit

val recover : t -> Fs_types.recover_report
(** Run every mount's crash recovery (journal replay + invariant scan
    where the format supports it) and merge the reports.  Every cached
    name and interned vnode of the dead incarnation is dropped.  Called
    by the file server when a supervised restart brings it back. *)

(** {2 Name-cache controls (A/B runs and tests)} *)

val namecache_on : t -> bool
val set_namecache : t -> bool -> unit
(** Disabling clears the cache. *)

val cache_stats : t -> Namecache.stats
