(** The vnode layer: mount table, path walking, and the union-semantics
    checks.

    The personality-neutral file server "had to implement the union of
    the TalOS, the OS/2 and the UNIX file system semantics"; this module
    is where that union lives.  Each call carries the client
    personality's {!semantics}; the layer reconciles them with the
    mounted format's {!Fs_types.format_limits}, folding case, rejecting
    over-long names on FAT, and counting every {e compromise} — the
    places where no consistent answer exists and the implementation
    picks one (measured by tests and discussed in DESIGN.md §5). *)

open Fs_types

type t

type semantics = {
  sem_name : string;
  sem_case_sensitive : bool;
  sem_long_names : bool;
}

val os2_semantics : semantics
val unix_semantics : semantics
val talos_semantics : semantics

val create : unit -> t

val mount : t -> at:string -> pfs -> (unit, string) result
(** Mount points are single top-level components, e.g. ["/c"]. *)

val mounts : t -> (string * string) list
(** [(mount point, format)] pairs. *)

val resolve :
  t -> semantics -> path:string -> (pfs * file_id, fs_error) result
(** Walk the path through the mount table and directories. *)

val resolve_parent :
  t -> semantics -> path:string ->
  (pfs * file_id * string, fs_error) result
(** Resolve all but the last component; returns the parent directory and
    the leaf name (semantic checks applied to the leaf). *)

val check_name :
  t -> semantics -> format_limits -> string -> (string, fs_error) result
(** Reconcile a leaf name with the target format under the client's
    semantics: may fold case (counting a compromise when the client is
    case-sensitive), and rejects names the format cannot store. *)

val compromises : t -> int
(** Number of semantic compromises taken so far. *)

val stat : t -> semantics -> path:string -> (stat, fs_error) result
val mkdir : t -> semantics -> path:string -> (file_id, fs_error) result
val create_file : t -> semantics -> path:string -> (file_id, fs_error) result
val unlink : t -> semantics -> path:string -> (unit, fs_error) result
val readdir : t -> semantics -> path:string -> (string list, fs_error) result
val rename :
  t -> semantics -> src:string -> dst:string -> (unit, fs_error) result
(** Source and destination must be on the same mount. *)

val sync : t -> unit

val recover : t -> Fs_types.recover_report
(** Run every mount's crash recovery (journal replay + invariant scan
    where the format supports it) and merge the reports.  Called by the
    file server when a supervised restart brings it back. *)
