(** Write-back block cache over the simulated disk.

    Hits charge a short code path plus the data traffic; misses submit a
    disk request and block the calling thread until the transfer
    completes.  Outside thread context (mkfs-style tools at boot) the
    cache falls through to zero-cost synchronous disk access. *)

type t

val create : Mach.Kernel.t -> Machine.Disk.t -> ?capacity:int -> unit -> t
(** [capacity] is in blocks (default 256 = 128 KiB). *)

val read : t -> int -> bytes
(** A fresh copy of the block's contents. *)

val write : t -> int -> bytes -> unit
(** Install new contents (dirty until evicted/flushed).
    @raise Invalid_argument unless exactly one block long. *)

val flush : t -> unit
(** Queue write-back of every dirty block (fire-and-forget: the disk
    services them in order, delaying subsequent misses). *)

val lru_block : t -> int option
(** The block that would be evicted next (least recently accessed), if
    the cache is non-empty. *)

val block_size : t -> int
val hits : t -> int
val misses : t -> int
val writebacks : t -> int
