(** Write-back block cache over the simulated disk.

    Hits charge a short code path plus the data traffic; misses submit a
    disk request and block the calling thread until the transfer
    completes.  Outside thread context (mkfs-style tools at boot) the
    cache falls through to zero-cost synchronous disk access. *)

type t

val create : Mach.Kernel.t -> Machine.Disk.t -> ?capacity:int -> unit -> t
(** [capacity] is in blocks (default 256 = 128 KiB). *)

val read : t -> int -> bytes
(** A fresh copy of the block's contents. *)

val write : t -> int -> bytes -> unit
(** Install new contents (dirty until evicted/flushed).
    @raise Invalid_argument unless exactly one block long. *)

val flush : t -> unit
(** Queue write-back of every dirty block (fire-and-forget: the disk
    services them in order, delaying subsequent misses). *)

val flush_wait : t -> unit
(** Durable flush: queue write-back of every dirty block, then block the
    calling thread on a disk barrier until all of it (and any
    reorder-held writes) has reached the media.  The journal checkpoints
    through this. *)

val barrier_wait : t -> unit
(** The barrier half of {!flush_wait} alone. *)

val invalidate : t -> unit
(** Drop every cached block {e without} write-back and reset the mapout
    pool.  Used when recovering a journalled file system: the journal is
    the truth, and dirty blocks from the dead incarnation must not mask
    replayed state. *)

val lru_block : t -> int option
(** The block that would be evicted next (least recently accessed), if
    the cache is non-empty. *)

val block_size : t -> int
val hits : t -> int
val misses : t -> int
val writebacks : t -> int

val dirty_blocks : t -> int
(** Currently dirty cached blocks (observability for tests). *)

val kernel : t -> Mach.Kernel.t
val disk : t -> Machine.Disk.t

(** {2 Mapout pool}

    A small ring of pages the cache lends to zero-copy replies: the file
    server assembles whole blocks into a pool page and COW-remaps that
    page into the client instead of copying the bytes through a message.
    Pages acquired with [pin:true] stay off-limits until released;
    acquiring over an unpinned page that is still mapped out reports a
    mapout-eviction finding through Machcheck. *)

val map_pool : t -> Mach.Ktypes.task -> unit
(** Allocate and map the pool into [task]'s address space (idempotent;
    the first caller wins). *)

val pool_acquire : t -> pages:int -> pin:bool -> int option
(** A run of [pages] consecutive pool pages, or [None] when the pool is
    unmapped or every candidate run holds a pinned page (callers fall
    back to the copy path). *)

val pool_fill : t -> dst:int -> int -> bytes
(** Read a block through the cache and charge the store that lands it at
    pool address [dst]; returns the block contents. *)

val pool_release : t -> addr:int -> pages:int -> unit
(** Unpin and forget a mapped-out run (the reply's pages, once the
    client is done with them). *)

val pool_pinned : t -> int
(** Currently pinned pool pages (observability for tests). *)

val pool_reset : t -> unit
(** Unpin and unmap every pool page — restart reclamation for a dead
    server incarnation whose replies can no longer be released by their
    clients. *)
