open Fs_types

type semantics = {
  sem_name : string;
  sem_case_sensitive : bool;
  sem_long_names : bool;
}

let os2_semantics =
  { sem_name = "os2"; sem_case_sensitive = false; sem_long_names = true }

let unix_semantics =
  { sem_name = "unix"; sem_case_sensitive = true; sem_long_names = true }

let talos_semantics =
  { sem_name = "talos"; sem_case_sensitive = true; sem_long_names = true }

type t = {
  mutable mount_table : (string * pfs) list;
  mutable compromise_count : int;
}

let create () = { mount_table = []; compromise_count = 0 }

let components path =
  List.filter (fun c -> c <> "") (String.split_on_char '/' path)

let mount t ~at pfs =
  match components at with
  | [ point ] ->
      if List.mem_assoc point t.mount_table then
        Error (Printf.sprintf "mount point %S in use" at)
      else begin
        t.mount_table <- (point, pfs) :: t.mount_table;
        Ok ()
      end
  | _ -> Error "mount point must be a single top-level component"

let mounts t =
  List.rev_map
    (fun (point, pfs) -> ("/" ^ point, pfs.pfs_limits.fl_format))
    t.mount_table

let compromise t = t.compromise_count <- t.compromise_count + 1
let compromises t = t.compromise_count

let check_name t sem (limits : format_limits) name =
  if String.length name > limits.fl_max_name then Error E_name_too_long
  else if limits.fl_eight_dot_three && not sem.sem_long_names then
    (* both sides speak 8.3: let the format validate *)
    Ok name
  else begin
    (* a case-sensitive client on a case-folding format loses case
       distinctions: a compromise with no consistent answer *)
    if sem.sem_case_sensitive && not limits.fl_case_sensitive then
      compromise t;
    (* a long-name client on FAT simply cannot store the name *)
    if limits.fl_eight_dot_three then
      match Fat.valid_name name with
      | Ok _ -> Ok name
      | Error e -> Error e
    else Ok name
  end

let find_mount t path =
  match components path with
  | [] -> Error E_not_found
  | point :: rest -> (
      match List.assoc_opt point t.mount_table with
      | Some pfs -> Ok (pfs, rest)
      | None -> Error E_not_found)

let walk t sem pfs parts =
  let rec go dir = function
    | [] -> Ok dir
    | name :: rest ->
        let* name = check_name t sem pfs.pfs_limits name in
        let* next = pfs.pfs_lookup ~dir name in
        go next rest
  in
  go pfs.pfs_root parts

let resolve t sem ~path =
  let* pfs, parts = find_mount t path in
  let* id = walk t sem pfs parts in
  Ok (pfs, id)

let resolve_parent t sem ~path =
  let* pfs, parts = find_mount t path in
  match List.rev parts with
  | [] -> Error E_bad_name
  | leaf :: rev_parents ->
      let* dir = walk t sem pfs (List.rev rev_parents) in
      let* leaf = check_name t sem pfs.pfs_limits leaf in
      Ok (pfs, dir, leaf)

let stat t sem ~path =
  let* pfs, id = resolve t sem ~path in
  pfs.pfs_stat id

let mkdir t sem ~path =
  let* pfs, dir, leaf = resolve_parent t sem ~path in
  pfs.pfs_create ~dir leaf ~is_dir:true

let create_file t sem ~path =
  let* pfs, dir, leaf = resolve_parent t sem ~path in
  pfs.pfs_create ~dir leaf ~is_dir:false

let unlink t sem ~path =
  let* pfs, dir, leaf = resolve_parent t sem ~path in
  pfs.pfs_remove ~dir leaf

let readdir t sem ~path =
  let* pfs, id = resolve t sem ~path in
  pfs.pfs_readdir ~dir:id

let rename t sem ~src ~dst =
  let* src_pfs, src_dir, src_leaf = resolve_parent t sem ~path:src in
  let* dst_pfs, dst_dir, dst_leaf = resolve_parent t sem ~path:dst in
  if src_pfs != dst_pfs then Error (E_io "cross-mount rename")
  else src_pfs.pfs_rename ~src_dir src_leaf ~dst_dir dst_leaf

let sync t = List.iter (fun (_, pfs) -> pfs.pfs_sync ()) t.mount_table

let recover t =
  List.fold_left
    (fun acc (_, pfs) -> merge_recovery acc (pfs.pfs_recover ()))
    clean_recovery t.mount_table
