(* The VFS: union semantics over per-format mounts, a vnode layer with
   interned identity, and a DragonFly-style name cache on the walk path.

   Path resolution walks component by component from a mount's root
   vnode.  Each step first checks the current vnode really is a
   directory (a uniform [E_not_dir] across all formats), folds the
   component to the mount's case rules, and probes the name cache;
   repeated lookups therefore cost O(components) hash probes instead of
   per-format directory scans.  Mutations (create / unlink / rename) and
   crash recovery invalidate exactly the entries they falsify.

   "/" resolves to a synthetic root node whose readdir enumerates the
   mount points — the mount table is the root directory. *)

open Fs_types

type semantics = {
  sem_name : string;
  sem_case_sensitive : bool;
  sem_long_names : bool;
}

let os2_semantics =
  { sem_name = "os2"; sem_case_sensitive = false; sem_long_names = true }

let unix_semantics =
  { sem_name = "unix"; sem_case_sensitive = true; sem_long_names = true }

let talos_semantics =
  { sem_name = "talos"; sem_case_sensitive = true; sem_long_names = true }

(* What a path resolves to: the synthetic root, or a vnode. *)
type node = Root | File of Vnode.t

type t = {
  mutable mount_table : (string * Vnode.mount) list;
  mutable next_mount_id : int;
  mutable compromise_count : int;
  cache : Namecache.t;
  mutable cache_on : bool;
  kernel : Mach.Kernel.t option;
  mutable space : (Check.t * int) option;  (* lazy Machcheck space *)
}

(* Resolve the Machcheck space lazily: a checker may be installed after
   the VFS was created (or replaced between workload points). *)
let chk t =
  match Check.installed () with
  | None -> None
  | Some c -> (
      match t.space with
      | Some (c', _) when c' == c -> t.space
      | _ ->
          let sp = Check.new_space c in
          t.space <- Some (c, sp);
          t.space)

let create ?kernel ?(namecache = true) ?(cache_capacity = 512) () =
  let t =
    {
      mount_table = [];
      next_mount_id = 0;
      compromise_count = 0;
      cache = Namecache.create ~capacity:cache_capacity ();
      cache_on = namecache;
      kernel;
      space = None;
    }
  in
  (* LRU evictions leave the shadow store too, or the checker would
     flag later legitimate reuse as stale *)
  Namecache.set_on_evict t.cache (fun ~mount ~dir ~name ->
      match chk t with
      | Some (c, sp) -> Check.ncache_invalidated c ~space:sp ~mount ~dir ~name
      | None -> ());
  t

let components path =
  List.filter (fun c -> c <> "") (String.split_on_char '/' path)

let mount t ~at pfs =
  match components at with
  | [ point ] ->
      if List.mem_assoc point t.mount_table then
        Error (Printf.sprintf "mount point %S in use" at)
      else begin
        let id = t.next_mount_id in
        t.next_mount_id <- id + 1;
        let m = Vnode.make_mount ~id ~point ~space:(fun () -> chk t) pfs in
        t.mount_table <- (point, m) :: t.mount_table;
        Ok ()
      end
  | _ -> Error "mount point must be a single top-level component"

let mounts t =
  List.rev_map
    (fun (point, m) -> ("/" ^ point, (Vnode.limits m).fl_format))
    t.mount_table

let compromise t = t.compromise_count <- t.compromise_count + 1
let compromises t = t.compromise_count

(* The name-cache probe: hash-and-compare instructions in kernel text
   plus one cache-line touch of the table (the block cache's
   charge_lookup idiom) — a cached walk has a real, measurable cost per
   component, it just skips the format's directory scan. *)
let charge_probe t =
  match t.kernel with
  | None -> ()
  | Some k ->
      if Option.is_some k.Mach.Kernel.sys.Mach.Sched.current then begin
        Mach.Ktext.exec_in k.Mach.Kernel.ktext
          (Mach.Ktext.text k.Mach.Kernel.ktext)
          ~offset:0x1400 ~bytes:48;
        let data = Mach.Ktext.data k.Mach.Kernel.ktext in
        Machine.execute k.Mach.Kernel.machine
          [
            Machine.Footprint.load ~addr:(data.Machine.Layout.base + 0x40)
              ~bytes:32;
          ]
      end

(* A raw component lookup is the format's directory scan: dispatch,
   entry decode, string compares — an order of magnitude more
   instructions than the hash probe — plus whatever block-cache traffic
   the scan performs (charged by the format itself). *)
let charge_scan t =
  match t.kernel with
  | None -> ()
  | Some k ->
      if Option.is_some k.Mach.Kernel.sys.Mach.Sched.current then
        Mach.Ktext.exec_in k.Mach.Kernel.ktext
          (Mach.Ktext.text k.Mach.Kernel.ktext)
          ~offset:0x1800 ~bytes:320

(* Fold a component to the mount's case rules: the name-cache key, so
   "File" and "file" share one entry on a case-folding format. *)
let fold m name =
  if (Vnode.limits m).fl_case_sensitive then name
  else String.lowercase_ascii name

let check_name t sem m name =
  let limits = Vnode.limits m in
  if String.length name > limits.fl_max_name then Error E_name_too_long
  else if limits.fl_eight_dot_three && not sem.sem_long_names then
    (* both sides speak 8.3: let the format validate *)
    Ok name
  else begin
    (* a case-sensitive client on a case-folding format loses case
       distinctions: a compromise with no consistent answer.  Only a
       name that actually folds is compromised, and each distinct name
       counts once per mount — not once per walk. *)
    if
      sem.sem_case_sensitive
      && (not limits.fl_case_sensitive)
      && String.lowercase_ascii name <> name
      && Vnode.note_folding m ~folded:(String.lowercase_ascii name)
    then compromise t;
    (* a long-name client on FAT simply cannot store the name *)
    if limits.fl_eight_dot_three then
      match Fat.valid_name name with
      | Ok _ -> Ok name
      | Error e -> Error e
    else Ok name
  end

(* --- name-cache glue ----------------------------------------------------- *)

let cache_store t m ~dir ~name value =
  if t.cache_on then begin
    Namecache.insert t.cache ~mount:(Vnode.mount_id m) ~dir ~name value;
    match (value, chk t) with
    | Namecache.Pos fid, Some (c, sp) ->
        Check.ncache_stored c ~space:sp ~mount:(Vnode.mount_id m) ~dir ~name
          ~file:fid
    | _ -> ()
  end

let cache_invalidate t m ~dir ~name =
  Namecache.invalidate t.cache ~mount:(Vnode.mount_id m) ~dir ~name;
  match chk t with
  | Some (c, sp) ->
      Check.ncache_invalidated c ~space:sp ~mount:(Vnode.mount_id m) ~dir ~name
  | None -> ()

let cache_find t m ~dir ~name =
  if not t.cache_on then None
  else begin
    charge_probe t;
    let r = Namecache.find t.cache ~mount:(Vnode.mount_id m) ~dir ~name in
    (match (r, chk t) with
    | Some _, Some (c, sp) ->
        Check.ncache_hit c ~space:sp ~mount:(Vnode.mount_id m) ~dir ~name
    | _ -> ());
    r
  end

(* --- path walk ----------------------------------------------------------- *)

(* One walk step: [dir] must be a directory (uniform across formats —
   this is the VFS's check, not the physical file system's), the name
   must satisfy the mount's limits, then the cache answers or the
   format's lookup fills it. *)
let lookup_component t sem m dir name =
  if not (Vnode.is_dir dir) then Error E_not_dir
  else
    let* name = check_name t sem m name in
    let folded = fold m name in
    let did = Vnode.id dir in
    let raw () =
      charge_scan t;
      match Vnode.lookup dir name with
      | Ok fid ->
          cache_store t m ~dir:did ~name:folded (Namecache.Pos fid);
          Ok (Vnode.intern m fid)
      | Error E_not_found ->
          cache_store t m ~dir:did ~name:folded Namecache.Neg;
          Error E_not_found
      | Error e -> Error e
    in
    match cache_find t m ~dir:did ~name:folded with
    | Some (Namecache.Pos fid) -> (
        match Vnode.find m fid with
        | Some v when not (Vnode.reclaimed v) -> Ok v
        | Some _ | None ->
            (* stale entry (the shadow checker has flagged it): heal the
               cache and fall back to the real lookup *)
            cache_invalidate t m ~dir:did ~name:folded;
            raw ())
    | Some Namecache.Neg -> Error E_not_found
    | None -> raw ()

let walk t sem m parts =
  let rec go dir = function
    | [] -> Ok dir
    | name :: rest ->
        let* v = lookup_component t sem m dir name in
        go v rest
  in
  go (Vnode.root m) parts

let find_mount_point t point = List.assoc_opt point t.mount_table

let resolve t sem ~path =
  match components path with
  | [] -> Ok Root
  | point :: rest -> (
      match find_mount_point t point with
      | None -> Error E_not_found
      | Some m ->
          let* v = walk t sem m rest in
          Ok (File v))

let resolve_parent t sem ~path =
  match components path with
  | [] -> Error E_bad_name
  | [ point ] ->
      (* a top-level name is a mount point, not a file: it cannot be
         created or removed through the file interface *)
      if List.mem_assoc point t.mount_table then Error E_bad_name
      else Error E_not_found
  | point :: rest -> (
      match find_mount_point t point with
      | None -> Error E_not_found
      | Some m -> (
          match List.rev rest with
          | [] -> Error E_bad_name
          | leaf :: rev_parents ->
              let* dir = walk t sem m (List.rev rev_parents) in
              if not (Vnode.is_dir dir) then Error E_not_dir
              else
                let* leaf = check_name t sem m leaf in
                Ok (m, dir, leaf)))

(* --- operations ---------------------------------------------------------- *)

let root_stat = { st_id = 0; st_size = 0; st_is_dir = true; st_blocks = 0 }

let stat t sem ~path =
  let* n = resolve t sem ~path in
  match n with Root -> Ok root_stat | File v -> Vnode.stat v

let readdir t sem ~path =
  let* n = resolve t sem ~path in
  match n with
  | Root -> Ok (List.sort compare (List.map fst t.mount_table))
  | File v -> Vnode.readdir v

let create_node t sem ~path ~is_dir =
  let* m, dir, leaf = resolve_parent t sem ~path in
  let* fid = Vnode.create dir leaf ~is_dir in
  let folded = fold m leaf in
  (* any negative entry for this name is now false; prime a positive *)
  cache_invalidate t m ~dir:(Vnode.id dir) ~name:folded;
  cache_store t m ~dir:(Vnode.id dir) ~name:folded (Namecache.Pos fid);
  Ok fid

let mkdir t sem ~path = create_node t sem ~path ~is_dir:true
let create_file t sem ~path = create_node t sem ~path ~is_dir:false

let unlink t sem ~path =
  let* m, dir, leaf = resolve_parent t sem ~path in
  let victim =
    match Vnode.lookup dir leaf with Ok fid -> Some fid | Error _ -> None
  in
  let* () = Vnode.remove dir leaf in
  cache_invalidate t m ~dir:(Vnode.id dir) ~name:(fold m leaf);
  (match victim with Some fid -> Vnode.reclaim m fid | None -> ());
  Ok ()

let rename t sem ~src ~dst =
  let* sm, sdir, sleaf = resolve_parent t sem ~path:src in
  let* dm, ddir, dleaf = resolve_parent t sem ~path:dst in
  if Vnode.mount_id sm <> Vnode.mount_id dm then Error (E_io "cross-mount rename")
  else
    let* () = Vnode.rename ~src:sdir ~dst:ddir sleaf dleaf in
    cache_invalidate t sm ~dir:(Vnode.id sdir) ~name:(fold sm sleaf);
    cache_invalidate t dm ~dir:(Vnode.id ddir) ~name:(fold dm dleaf);
    Ok ()

let sync t =
  List.iter (fun (_, m) -> (Vnode.pfs m).pfs_sync ()) t.mount_table

let recover t =
  (* the whole incarnation is dead: every cached name and every interned
     vnode with it (recovery can rewind unacknowledged creates, and
     file ids will be reused) *)
  Namecache.clear t.cache;
  (match chk t with
  | Some (c, sp) -> Check.ncache_cleared c ~space:sp
  | None -> ());
  List.fold_left
    (fun acc (_, m) ->
      Vnode.reclaim_all m;
      merge_recovery acc ((Vnode.pfs m).pfs_recover ()))
    clean_recovery t.mount_table

(* --- name-cache controls (A/B and tests) --------------------------------- *)

let namecache_on t = t.cache_on

let set_namecache t on =
  if not on then begin
    Namecache.clear t.cache;
    match chk t with
    | Some (c, sp) -> Check.ncache_cleared c ~space:sp
    | None -> ()
  end;
  t.cache_on <- on

let cache_stats t = Namecache.stats t.cache
