open Fs_types

(* On-disk layout (all offsets relative to [start], 512-byte blocks):
     block 0            boot sector
     blocks 1..f        the FAT: 16-bit entries, entry c at byte 2c
     blocks f+1..r      root directory: 32-byte entries
     blocks r+1..end    data clusters, one block per cluster
   Directory entry (32 bytes):
     0..7   name, space padded      8..10  extension, space padded
     11     attribute (0x10 = dir)  12..15 size, little endian
     16..17 first cluster, LE       18..31 reserved
   FAT entry values: 0 free, 0xffff end of chain, else next cluster.
   Clusters are numbered from 2, as in real FAT. *)

let block_size = 512
let dirents_per_block = block_size / 32
let magic = "FAT1"

type geom = {
  start : int;
  total : int;
  fat_start : int;
  fat_blocks : int;
  root_start : int;
  root_blocks : int;
  data_start : int;
  clusters : int;
}

type t = {
  cache : Block_cache.t;
  g : geom;
  (* where each file's directory entry lives: cluster -> (block, slot) *)
  entries : (int, int * int) Hashtbl.t;
}

let root_id = 1

let limits =
  {
    fl_format = "fat";
    fl_max_name = 12;
    fl_case_sensitive = false;
    fl_preserves_case = false;
    fl_eight_dot_three = true;
    fl_journalled = false;
  }

(* --- name handling ----------------------------------------------------- *)

let valid_char c =
  (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '-'

let valid_name name =
  let name = String.uppercase_ascii name in
  let base, ext =
    match String.rindex_opt name '.' with
    | Some i -> (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))
    | None -> (name, "")
  in
  if base = "" || String.contains base '.' || String.contains ext '.' then
    Error E_bad_name
  else if String.length base > 8 || String.length ext > 3 then
    Error E_name_too_long
  else if
    String.for_all valid_char base
    && (ext = "" || String.for_all valid_char ext)
  then Ok (if ext = "" then base else base ^ "." ^ ext)
  else Error E_bad_name

let pack_name name =
  (* [name] is already validated/upcased *)
  let base, ext =
    match String.rindex_opt name '.' with
    | Some i -> (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))
    | None -> (name, "")
  in
  let pad s n = s ^ String.make (n - String.length s) ' ' in
  pad base 8 ^ pad ext 3

let unpack_name raw =
  let base = String.trim (String.sub raw 0 8) in
  let ext = String.trim (String.sub raw 8 3) in
  if ext = "" then base else base ^ "." ^ ext

(* --- low-level accessors ----------------------------------------------- *)

let get16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set16 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff))

let get32 b off =
  get16 b off lor (get16 b (off + 2) lsl 16)

let set32 b off v =
  set16 b off (v land 0xffff);
  set16 b (off + 2) ((v lsr 16) land 0xffff)

let fat_get t cluster =
  let byte = cluster * 2 in
  let block = t.g.start + t.g.fat_start + (byte / block_size) in
  let b = Block_cache.read t.cache block in
  get16 b (byte mod block_size)

let fat_set t cluster v =
  let byte = cluster * 2 in
  let block = t.g.start + t.g.fat_start + (byte / block_size) in
  let b = Block_cache.read t.cache block in
  set16 b (byte mod block_size) v;
  Block_cache.write t.cache block b

let eof = 0xffff

let alloc_cluster t =
  let rec scan c =
    if c >= t.g.clusters + 2 then Error E_no_space
    else if fat_get t c = 0 then begin
      fat_set t c eof;
      Ok c
    end
    else scan (c + 1)
  in
  scan 2

let cluster_block t c = t.g.start + t.g.data_start + (c - 2)

(* chain as a list of clusters *)
let chain t first =
  let rec walk c acc n =
    if c = eof || c = 0 || n > t.g.clusters then List.rev acc
    else walk (fat_get t c) (c :: acc) (n + 1)
  in
  walk first [] 0

let free_chain t first =
  List.iter (fun c -> fat_set t c 0) (chain t first)

(* --- directory access --------------------------------------------------- *)

(* blocks of a directory, in order *)
let dir_blocks t dir =
  if dir = root_id then
    List.init t.g.root_blocks (fun i -> t.g.start + t.g.root_start + i)
  else List.map (cluster_block t) (chain t dir)

type dirent = {
  de_block : int;
  de_slot : int;
  de_name : string;
  de_attr : int;
  de_size : int;
  de_cluster : int;
}

let read_dirent b block slot =
  let off = slot * 32 in
  let first = Bytes.get b off in
  if first = '\000' || first = '\xe5' then None
  else
    Some
      {
        de_block = block;
        de_slot = slot;
        de_name = unpack_name (Bytes.sub_string b off 11);
        de_attr = Char.code (Bytes.get b (off + 11));
        de_size = get32 b (off + 12);
        de_cluster = get16 b (off + 16);
      }

let iter_dirents t dir f =
  List.iter
    (fun block ->
      let b = Block_cache.read t.cache block in
      for slot = 0 to dirents_per_block - 1 do
        match read_dirent b block slot with
        | Some de -> f de
        | None -> ()
      done)
    (dir_blocks t dir)

let find_dirent t dir name =
  let found = ref None in
  iter_dirents t dir (fun de ->
      if !found = None && de.de_name = name then found := Some de);
  !found

let write_dirent t ~block ~slot ~name ~attr ~size ~cluster =
  let b = Block_cache.read t.cache block in
  let off = slot * 32 in
  Bytes.blit_string (pack_name name) 0 b off 11;
  Bytes.set b (off + 11) (Char.chr attr);
  set32 b (off + 12) size;
  set16 b (off + 16) cluster;
  Block_cache.write t.cache block b;
  Hashtbl.replace t.entries cluster (block, slot)

let clear_dirent t ~block ~slot =
  let b = Block_cache.read t.cache block in
  Bytes.set b (slot * 32) '\xe5';
  Block_cache.write t.cache block b

(* a free slot in the directory, extending subdirectories when full *)
let free_slot t dir =
  let result = ref None in
  List.iter
    (fun block ->
      if !result = None then begin
        let b = Block_cache.read t.cache block in
        for slot = 0 to dirents_per_block - 1 do
          if !result = None then
            let first = Bytes.get b (slot * 32) in
            if first = '\000' || first = '\xe5' then result := Some (block, slot)
        done
      end)
    (dir_blocks t dir);
  match !result with
  | Some bs -> Ok bs
  | None ->
      if dir = root_id then Error E_no_space  (* fixed root, as in FAT *)
      else begin
        match alloc_cluster t with
        | Error e -> Error e
        | Ok c ->
            (match List.rev (chain t dir) with
            | last :: _ -> fat_set t last c
            | [] -> fat_set t dir c);
            let block = cluster_block t c in
            Block_cache.write t.cache block (Bytes.make block_size '\000');
            Ok (block, 0)
      end

(* --- mkfs / mount ------------------------------------------------------- *)

let default_blocks = 8192

let geom_of ~start ~blocks =
  let clusters_guess = blocks - 1 in
  let fat_blocks = ((clusters_guess + 2) * 2 + block_size - 1) / block_size in
  let root_blocks = 8 in
  let data_start = 1 + fat_blocks + root_blocks in
  {
    start;
    total = blocks;
    fat_start = 1;
    fat_blocks;
    root_start = 1 + fat_blocks;
    root_blocks;
    data_start;
    clusters = blocks - data_start;
  }

let mkfs disk ?(start = 0) ?(blocks = default_blocks) () =
  let g = geom_of ~start ~blocks in
  let boot = Bytes.make block_size '\000' in
  Bytes.blit_string magic 0 boot 0 4;
  set32 boot 4 g.total;
  set16 boot 8 g.fat_blocks;
  set16 boot 10 g.root_blocks;
  Machine.Disk.write_now disk ~block:start boot;
  let zero = Bytes.make block_size '\000' in
  for i = 1 to g.data_start - 1 do
    Machine.Disk.write_now disk ~block:(start + i) zero
  done

let rec mount cache ?(start = 0) () =
  let boot = Block_cache.read cache start in
  if Bytes.sub_string boot 0 4 <> magic then Error (E_io "not a FAT volume")
  else begin
    let total = get32 boot 4 in
    let g = geom_of ~start ~blocks:total in
    let t = { cache; g; entries = Hashtbl.create 64 } in
    (* prime the cluster -> directory-entry map *)
    let rec scan_dir dir =
      iter_dirents t dir (fun de ->
          Hashtbl.replace t.entries de.de_cluster (de.de_block, de.de_slot);
          if de.de_attr land 0x10 <> 0 then scan_dir de.de_cluster)
    in
    scan_dir root_id;
    Ok (ops t)
  end

(* --- pfs operations ----------------------------------------------------- *)

and stat_of t id =
  if id = root_id then
    Ok
      {
        st_id = root_id;
        st_size = t.g.root_blocks * block_size;
        st_is_dir = true;
        st_blocks = t.g.root_blocks;
      }
  else
    match Hashtbl.find_opt t.entries id with
    | None -> Error E_bad_handle
    | Some (block, slot) -> (
        let b = Block_cache.read t.cache block in
        match read_dirent b block slot with
        | None -> Error E_bad_handle
        | Some de ->
            Ok
              {
                st_id = id;
                st_size = de.de_size;
                st_is_dir = de.de_attr land 0x10 <> 0;
                st_blocks = List.length (chain t id);
              })

and set_size t id size =
  match Hashtbl.find_opt t.entries id with
  | None -> Error E_bad_handle
  | Some (block, slot) ->
      let b = Block_cache.read t.cache block in
      set32 b ((slot * 32) + 12) size;
      Block_cache.write t.cache block b;
      Ok ()

and ensure_dir t id =
  let* st = stat_of t id in
  if st.st_is_dir then Ok () else Error E_not_dir

and read_file t id ~off ~len =
  let* st = stat_of t id in
  if st.st_is_dir then Error E_is_dir
  else begin
    let len = max 0 (min len (st.st_size - off)) in
    if len = 0 then Ok Bytes.empty
    else begin
      let out = Bytes.make len '\000' in
      let clusters = Array.of_list (chain t id) in
      let rec copy pos =
        if pos < len then begin
          let fpos = off + pos in
          let ci = fpos / block_size in
          if ci >= Array.length clusters then Ok out  (* sparse tail *)
          else begin
            let b = Block_cache.read t.cache (cluster_block t clusters.(ci)) in
            let boff = fpos mod block_size in
            let n = min (block_size - boff) (len - pos) in
            Bytes.blit b boff out pos n;
            copy (pos + n)
          end
        end
        else Ok out
      in
      copy 0
    end
  end

and write_file t id ~off data =
  let* st = stat_of t id in
  if st.st_is_dir then Error E_is_dir
  else begin
    let len = Bytes.length data in
    let needed_blocks = (off + len + block_size - 1) / block_size in
    (* grow the chain as needed *)
    let rec grow () =
      let cs = chain t id in
      if List.length cs >= max 1 needed_blocks then Ok cs
      else
        match alloc_cluster t with
        | Error e -> Error e
        | Ok c ->
            (match List.rev cs with
            | last :: _ -> fat_set t last c
            | [] -> assert false);
            grow ()
    in
    let* cs = grow () in
    let clusters = Array.of_list cs in
    let rec copy pos =
      if pos < len then begin
        let fpos = off + pos in
        let ci = fpos / block_size in
        let block = cluster_block t clusters.(ci) in
        let boff = fpos mod block_size in
        let n = min (block_size - boff) (len - pos) in
        let b =
          if n = block_size then Bytes.make block_size '\000'
          else Block_cache.read t.cache block
        in
        Bytes.blit data pos b boff n;
        Block_cache.write t.cache block b;
        copy (pos + n)
      end
    in
    copy 0;
    let new_size = max st.st_size (off + len) in
    let* () = set_size t id new_size in
    Ok len
  end

(* FAT registers only the operations its layout supports; the zero-copy
   pool entries, recovery and the transaction hook all fall back to the
   VOP defaults (copy-path reads, clean recovery, no journal). *)
and ops t =
  vop_compile
    {
    (vop_null ~limits ~root:root_id) with
    vp_lookup =
      Some (fun ~dir name ->
        let* () = ensure_dir t dir in
        let* name = valid_name name in
        match find_dirent t dir name with
        | Some de -> Ok de.de_cluster
        | None -> Error E_not_found);
    vp_create =
      Some (fun ~dir name ~is_dir ->
        let* () = ensure_dir t dir in
        let* name = valid_name name in
        match find_dirent t dir name with
        | Some _ -> Error E_exists
        | None ->
            let* block, slot = free_slot t dir in
            let* c = alloc_cluster t in
            if is_dir then begin
              let db = cluster_block t c in
              Block_cache.write t.cache db (Bytes.make block_size '\000')
            end;
            write_dirent t ~block ~slot ~name
              ~attr:(if is_dir then 0x10 else 0x00)
              ~size:0 ~cluster:c;
            Ok c);
    vp_remove =
      Some (fun ~dir name ->
        let* () = ensure_dir t dir in
        let* name = valid_name name in
        match find_dirent t dir name with
        | None -> Error E_not_found
        | Some de ->
            let* () =
              if de.de_attr land 0x10 <> 0 then begin
                let empty = ref true in
                iter_dirents t de.de_cluster (fun _ -> empty := false);
                if !empty then Ok () else Error E_dir_not_empty
              end
              else Ok ()
            in
            free_chain t de.de_cluster;
            Hashtbl.remove t.entries de.de_cluster;
            clear_dirent t ~block:de.de_block ~slot:de.de_slot;
            Ok ());
    vp_readdir =
      Some (fun ~dir ->
        let* () = ensure_dir t dir in
        let acc = ref [] in
        iter_dirents t dir (fun de -> acc := de.de_name :: !acc);
        Ok (List.sort compare !acc));
    vp_stat = Some (fun id -> stat_of t id);
    vp_read = Some (fun id ~off ~len -> read_file t id ~off ~len);
    vp_write = Some (fun id ~off data -> write_file t id ~off data);
    vp_truncate =
      Some (fun id ~len ->
        let* st = stat_of t id in
        if st.st_is_dir then Error E_is_dir
        else if len > st.st_size then Error E_no_space
        else begin
          (* keep enough clusters for [len], free the rest *)
          let keep = max 1 ((len + block_size - 1) / block_size) in
          let cs = chain t id in
          let rec cut i = function
            | [] -> ()
            | c :: rest ->
                if i = keep - 1 then begin
                  fat_set t c eof;
                  List.iter (fun x -> fat_set t x 0) rest
                end
                else cut (i + 1) rest
          in
          cut 0 cs;
          set_size t id len
        end);
    vp_rename =
      Some (fun ~src_dir name ~dst_dir new_name ->
        let* () = ensure_dir t src_dir in
        let* () = ensure_dir t dst_dir in
        let* name = valid_name name in
        let* new_name = valid_name new_name in
        match find_dirent t src_dir name with
        | None -> Error E_not_found
        | Some de -> (
            match find_dirent t dst_dir new_name with
            | Some _ -> Error E_exists
            | None ->
                let* block, slot = free_slot t dst_dir in
                write_dirent t ~block ~slot ~name:new_name ~attr:de.de_attr
                  ~size:de.de_size ~cluster:de.de_cluster;
                clear_dirent t ~block:de.de_block ~slot:de.de_slot;
                Ok ()));
    vp_sync = Some (fun () -> Block_cache.flush t.cache);
    vp_free_blocks =
      Some
        (fun () ->
          let free = ref 0 in
          for c = 2 to t.g.clusters + 1 do
            if fat_get t c = 0 then incr free
          done;
          !free);
    }
