(** The personality-neutral file server.

    A separate user-level task exposing generic file services over
    {!Mach.Rpc}, with the traits the paper calls out: an extended vnode
    architecture underneath ({!Vfs} over FAT/HPFS/JFS), heavy use of
    ports to manage open files (one port per open file), and
    mapped-buffer data sharing with clients as an alternative to copying
    reads.

    {!Client} is the stub library personalities link against; its calls
    run from the calling thread's task and block for the RPC round trip
    (and any disk I/O the server performs). *)

open Fs_types

type t

val start :
  Mach.Kernel.t -> Mk_services.Runtime.t -> Vfs.t -> ?server_threads:int ->
  unit -> t
(** Create the file-server task and its service thread(s). *)

val restart : t -> Mach.Ktypes.port
(** Bring a crashed instance back up: the open-file table is lost (as a
    real crash would lose it — stale handles return [E_bad_handle]),
    pool pages pinned by in-flight zero-copy replies are reclaimed, the
    mounted volumes run crash recovery ({!Vfs.recover} — journal replay
    plus invariant scan where the format supports them), a fresh service
    port is allocated and new serve threads started.  Returns the new
    port, for re-registration; the supervisor's [restart] closure is the
    intended caller. *)

val set_retry :
  t -> ?attempts:int -> ?deadline:int -> ?backoff:int ->
  resolve:(unit -> Mach.Ktypes.port option) -> unit -> unit
(** Route all {!Client} stub calls through {!Mach.Rpc.call_retry}:
    [resolve] (typically a name-service lookup) finds the current
    service port before each attempt, so clients survive a crash-and-
    restart under supervision. *)

val clear_retry : t -> unit

val port : t -> Mach.Ktypes.port

(** The current incarnation's heartbeat port: a dedicated thread answers
    {!Mach.Health.H_ping} from the serve loops' beat, so the
    supervisor's watchdog can tell a wedged server from a busy one.
    Reallocated (with a fresh beat) on every {!restart}. *)
val health_port : t -> Mach.Ktypes.port
val task : t -> Mach.Ktypes.task
val vfs : t -> Vfs.t
val open_files : t -> int
val requests_served : t -> int

val last_recovery : t -> Fs_types.recover_report option
(** The merged recovery report from the most recent {!restart}. *)

val map_file :
  t -> Vfs.semantics -> Mach.Ktypes.task -> path:string ->
  (int * int, fs_error) result
(** Memory-map a file into the task: the returned [(address, size)] range
    is backed by the file server acting as the file's external pager —
    first touch of each page performs the (simulated) file read, dirty
    evictions write back through the file system.  The "aggressive memory
    mapping techniques to buffer file data" of the paper's file server. *)

val mapped_pageins : t -> int
val mapped_pageouts : t -> int

module Client : sig
  type handle

  val open_ :
    t -> Vfs.semantics -> path:string -> ?create:bool -> unit ->
    (handle, fs_error) result
  (** Opening returns a dedicated port for the file; the server deposits
      a send right in the caller's port space. *)

  val close : t -> handle -> unit
  val read : t -> handle -> bytes:int -> (bytes, fs_error) result
  (** Copying read at the handle's position (advances it). *)

  val read_mapped : t -> handle -> bytes:int -> (int, fs_error) result
  (** Mapped-buffer read: the first call maps the server's buffer object
      into the client (one map operation); subsequent reads avoid the
      data copy.  Returns bytes made available. *)

  val read_zc : t -> handle -> bytes:int -> (bytes, fs_error) result
  (** Zero-copy read: the server assembles whole blocks into block-cache
      pool pages and the reply COW-remaps those pages into the client —
      the data never crosses the message as a copy.  The pool pages stay
      pinned until the next request on the handle (or close).  Falls
      back to the copying path when the position is unaligned, the pool
      is exhausted, or the format cannot serve it. *)

  val write_zc : t -> handle -> bytes -> (int, fs_error) result
  (** Zero-copy write: the data is staged in a fresh page-aligned buffer
      which the request donates to the server by remap-move. *)

  val write : t -> handle -> bytes -> (int, fs_error) result
  val seek : t -> handle -> pos:int -> unit
  val stat : t -> Vfs.semantics -> path:string -> (stat, fs_error) result
  val mkdir : t -> Vfs.semantics -> path:string -> (unit, fs_error) result
  val readdir :
    t -> Vfs.semantics -> path:string -> (string list, fs_error) result
  val unlink : t -> Vfs.semantics -> path:string -> (unit, fs_error) result
  val rename :
    t -> Vfs.semantics -> src:string -> dst:string -> (unit, fs_error) result
  val sync : t -> unit
end
