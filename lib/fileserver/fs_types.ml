(* Common file-system types shared by the physical file systems, the
   vnode layer and the file server. *)

type fs_error =
  | E_not_found
  | E_exists
  | E_no_space
  | E_name_too_long
  | E_bad_name
  | E_not_dir
  | E_is_dir
  | E_dir_not_empty
  | E_bad_handle
  | E_read_only
  | E_io of string

let fs_error_to_string = function
  | E_not_found -> "not found"
  | E_exists -> "exists"
  | E_no_space -> "no space"
  | E_name_too_long -> "name too long"
  | E_bad_name -> "bad name"
  | E_not_dir -> "not a directory"
  | E_is_dir -> "is a directory"
  | E_dir_not_empty -> "directory not empty"
  | E_bad_handle -> "bad handle"
  | E_read_only -> "read-only"
  | E_io s -> "I/O error: " ^ s

type file_id = int

type stat = {
  st_id : file_id;
  st_size : int;
  st_is_dir : bool;
  st_blocks : int;
}

(* Semantics profile of a physical file system: the constraints the
   on-disk format imposes on the logical layer (the paper's point about
   FAT's 8.3 names). *)
type format_limits = {
  fl_format : string;
  fl_max_name : int;
  fl_case_sensitive : bool;
  fl_preserves_case : bool;
  fl_eight_dot_three : bool;
  fl_journalled : bool;
}

(* What a physical file system reports after crash recovery: journal
   replay volume plus any fsck-style invariant violations found in the
   recovered image.  A clean recovery has an empty findings list. *)
type recover_report = {
  rr_journal_txns : int;
  rr_journal_blocks : int;
  rr_fsck_findings : string list;
}

let clean_recovery =
  { rr_journal_txns = 0; rr_journal_blocks = 0; rr_fsck_findings = [] }

let merge_recovery a b =
  {
    rr_journal_txns = a.rr_journal_txns + b.rr_journal_txns;
    rr_journal_blocks = a.rr_journal_blocks + b.rr_journal_blocks;
    rr_fsck_findings = a.rr_fsck_findings @ b.rr_fsck_findings;
  }

(* The physical-file-system operations record — the extended vnode
   architecture's per-format plug. *)
type pfs = {
  pfs_limits : format_limits;
  pfs_root : file_id;
  pfs_lookup : dir:file_id -> string -> (file_id, fs_error) result;
  pfs_create : dir:file_id -> string -> is_dir:bool -> (file_id, fs_error) result;
  pfs_remove : dir:file_id -> string -> (unit, fs_error) result;
  pfs_readdir : dir:file_id -> (string list, fs_error) result;
  pfs_stat : file_id -> (stat, fs_error) result;
  pfs_read : file_id -> off:int -> len:int -> (bytes, fs_error) result;
  (* Zero-copy read path: assemble whole blocks into mapped-out cache
     pool pages and return [(pool_addr, map_bytes, data)], where
     [map_bytes] is the page-rounded extent to remap into the client.
     [Ok None] means the format (or the pool) cannot serve the request
     zero-copy and the caller should fall back to [pfs_read]. *)
  pfs_map_pool : Mach.Ktypes.task -> unit;
  pfs_read_paged :
    file_id -> off:int -> len:int ->
    ((int * int * bytes) option, fs_error) result;
  pfs_release_paged : addr:int -> bytes:int -> unit;
  pfs_write : file_id -> off:int -> bytes -> (int, fs_error) result;
  pfs_truncate : file_id -> len:int -> (unit, fs_error) result;
  pfs_rename :
    src_dir:file_id -> string -> dst_dir:file_id -> string ->
    (unit, fs_error) result;
  pfs_sync : unit -> unit;
  pfs_free_blocks : unit -> int;
  (* Crash recovery after a supervised restart: reclaim incarnation
     state (mapout pool), replay the journal if the format has one, and
     scan the recovered image for invariant violations. *)
  pfs_recover : unit -> recover_report;
}

let ( let* ) = Result.bind

(* --- the VOP vector layer ----------------------------------------------- *)

(* Journal transaction hook.  A format that journals supplies [txn_run]
   (begin / commit-or-rollback around the body) and the VOP compiler
   wraps every mutating entry of the compiled vector in it — crash
   consistency becomes a property of the operation vector, the way
   DragonFly hangs journaling off the VOP dispatch layer, instead of a
   private feature of one format's internals. *)
type txn = {
  txn_run : 'a. (unit -> ('a, fs_error) result) -> ('a, fs_error) result;
}

let txn_none = { txn_run = (fun f -> f ()) }

(* What a physical file system registers: a partial operation vector.
   [None] entries fall back to the defaults in [vop_compile] (DragonFly's
   vop_default / vfs_calc_vnodeops arrangement), so a format only writes
   the operations its on-disk layout actually supports — FAT registers
   no zero-copy or recovery entries at all. *)
type vop_partial = {
  vp_limits : format_limits;
  vp_root : file_id;
  vp_lookup : (dir:file_id -> string -> (file_id, fs_error) result) option;
  vp_create :
    (dir:file_id -> string -> is_dir:bool -> (file_id, fs_error) result) option;
  vp_remove : (dir:file_id -> string -> (unit, fs_error) result) option;
  vp_readdir : (dir:file_id -> (string list, fs_error) result) option;
  vp_stat : (file_id -> (stat, fs_error) result) option;
  vp_read : (file_id -> off:int -> len:int -> (bytes, fs_error) result) option;
  vp_map_pool : (Mach.Ktypes.task -> unit) option;
  vp_read_paged :
    (file_id -> off:int -> len:int ->
     ((int * int * bytes) option, fs_error) result)
    option;
  vp_release_paged : (addr:int -> bytes:int -> unit) option;
  vp_write : (file_id -> off:int -> bytes -> (int, fs_error) result) option;
  vp_truncate : (file_id -> len:int -> (unit, fs_error) result) option;
  vp_rename :
    (src_dir:file_id -> string -> dst_dir:file_id -> string ->
     (unit, fs_error) result)
    option;
  vp_sync : (unit -> unit) option;
  vp_free_blocks : (unit -> int) option;
  vp_recover : (unit -> recover_report) option;
  vp_txn : txn option;
}

let vop_null ~limits ~root =
  {
    vp_limits = limits;
    vp_root = root;
    vp_lookup = None;
    vp_create = None;
    vp_remove = None;
    vp_readdir = None;
    vp_stat = None;
    vp_read = None;
    vp_map_pool = None;
    vp_read_paged = None;
    vp_release_paged = None;
    vp_write = None;
    vp_truncate = None;
    vp_rename = None;
    vp_sync = None;
    vp_free_blocks = None;
    vp_recover = None;
    vp_txn = None;
  }

(* Compile a partial vector into the complete per-mount [pfs]: missing
   core operations become uniform E_io errors, missing optional
   operations become benign defaults (no-op sync, clean recovery, copy
   fallback for the zero-copy read path), and — when the format supplied
   a transaction hook — every mutating entry is wrapped in it. *)
let vop_compile (p : vop_partial) : pfs =
  let fmt = p.vp_limits.fl_format in
  let unsupported op = Error (E_io (Printf.sprintf "%s: no %s vop" fmt op)) in
  let dfl v d = Option.value v ~default:d in
  let base =
    {
      pfs_limits = p.vp_limits;
      pfs_root = p.vp_root;
      pfs_lookup = dfl p.vp_lookup (fun ~dir:_ _ -> unsupported "lookup");
      pfs_create =
        dfl p.vp_create (fun ~dir:_ _ ~is_dir:_ -> unsupported "create");
      pfs_remove = dfl p.vp_remove (fun ~dir:_ _ -> unsupported "remove");
      pfs_readdir = dfl p.vp_readdir (fun ~dir:_ -> unsupported "readdir");
      pfs_stat = dfl p.vp_stat (fun _ -> unsupported "stat");
      pfs_read = dfl p.vp_read (fun _ ~off:_ ~len:_ -> unsupported "read");
      pfs_map_pool = dfl p.vp_map_pool (fun _ -> ());
      pfs_read_paged = dfl p.vp_read_paged (fun _ ~off:_ ~len:_ -> Ok None);
      pfs_release_paged = dfl p.vp_release_paged (fun ~addr:_ ~bytes:_ -> ());
      pfs_write = dfl p.vp_write (fun _ ~off:_ _ -> unsupported "write");
      pfs_truncate = dfl p.vp_truncate (fun _ ~len:_ -> unsupported "truncate");
      pfs_rename =
        dfl p.vp_rename (fun ~src_dir:_ _ ~dst_dir:_ _ ->
            unsupported "rename");
      pfs_sync = dfl p.vp_sync (fun () -> ());
      pfs_free_blocks = dfl p.vp_free_blocks (fun () -> 0);
      pfs_recover = dfl p.vp_recover (fun () -> clean_recovery);
    }
  in
  match p.vp_txn with
  | None -> base
  | Some txn ->
      {
        base with
        pfs_create =
          (fun ~dir name ~is_dir ->
            txn.txn_run (fun () -> base.pfs_create ~dir name ~is_dir));
        pfs_remove =
          (fun ~dir name -> txn.txn_run (fun () -> base.pfs_remove ~dir name));
        pfs_write =
          (fun id ~off data ->
            txn.txn_run (fun () -> base.pfs_write id ~off data));
        pfs_truncate =
          (fun id ~len -> txn.txn_run (fun () -> base.pfs_truncate id ~len));
        pfs_rename =
          (fun ~src_dir name ~dst_dir new_name ->
            txn.txn_run (fun () ->
                base.pfs_rename ~src_dir name ~dst_dir new_name));
      }
