(* Common file-system types shared by the physical file systems, the
   vnode layer and the file server. *)

type fs_error =
  | E_not_found
  | E_exists
  | E_no_space
  | E_name_too_long
  | E_bad_name
  | E_not_dir
  | E_is_dir
  | E_dir_not_empty
  | E_bad_handle
  | E_read_only
  | E_io of string

let fs_error_to_string = function
  | E_not_found -> "not found"
  | E_exists -> "exists"
  | E_no_space -> "no space"
  | E_name_too_long -> "name too long"
  | E_bad_name -> "bad name"
  | E_not_dir -> "not a directory"
  | E_is_dir -> "is a directory"
  | E_dir_not_empty -> "directory not empty"
  | E_bad_handle -> "bad handle"
  | E_read_only -> "read-only"
  | E_io s -> "I/O error: " ^ s

type file_id = int

type stat = {
  st_id : file_id;
  st_size : int;
  st_is_dir : bool;
  st_blocks : int;
}

(* Semantics profile of a physical file system: the constraints the
   on-disk format imposes on the logical layer (the paper's point about
   FAT's 8.3 names). *)
type format_limits = {
  fl_format : string;
  fl_max_name : int;
  fl_case_sensitive : bool;
  fl_preserves_case : bool;
  fl_eight_dot_three : bool;
  fl_journalled : bool;
}

(* What a physical file system reports after crash recovery: journal
   replay volume plus any fsck-style invariant violations found in the
   recovered image.  A clean recovery has an empty findings list. *)
type recover_report = {
  rr_journal_txns : int;
  rr_journal_blocks : int;
  rr_fsck_findings : string list;
}

let clean_recovery =
  { rr_journal_txns = 0; rr_journal_blocks = 0; rr_fsck_findings = [] }

let merge_recovery a b =
  {
    rr_journal_txns = a.rr_journal_txns + b.rr_journal_txns;
    rr_journal_blocks = a.rr_journal_blocks + b.rr_journal_blocks;
    rr_fsck_findings = a.rr_fsck_findings @ b.rr_fsck_findings;
  }

(* The physical-file-system operations record — the extended vnode
   architecture's per-format plug. *)
type pfs = {
  pfs_limits : format_limits;
  pfs_root : file_id;
  pfs_lookup : dir:file_id -> string -> (file_id, fs_error) result;
  pfs_create : dir:file_id -> string -> is_dir:bool -> (file_id, fs_error) result;
  pfs_remove : dir:file_id -> string -> (unit, fs_error) result;
  pfs_readdir : dir:file_id -> (string list, fs_error) result;
  pfs_stat : file_id -> (stat, fs_error) result;
  pfs_read : file_id -> off:int -> len:int -> (bytes, fs_error) result;
  (* Zero-copy read path: assemble whole blocks into mapped-out cache
     pool pages and return [(pool_addr, map_bytes, data)], where
     [map_bytes] is the page-rounded extent to remap into the client.
     [Ok None] means the format (or the pool) cannot serve the request
     zero-copy and the caller should fall back to [pfs_read]. *)
  pfs_map_pool : Mach.Ktypes.task -> unit;
  pfs_read_paged :
    file_id -> off:int -> len:int ->
    ((int * int * bytes) option, fs_error) result;
  pfs_release_paged : addr:int -> bytes:int -> unit;
  pfs_write : file_id -> off:int -> bytes -> (int, fs_error) result;
  pfs_truncate : file_id -> len:int -> (unit, fs_error) result;
  pfs_rename :
    src_dir:file_id -> string -> dst_dir:file_id -> string ->
    (unit, fs_error) result;
  pfs_sync : unit -> unit;
  pfs_free_blocks : unit -> int;
  (* Crash recovery after a supervised restart: reclaim incarnation
     state (mapout pool), replay the journal if the format has one, and
     scan the recovered image for invariant violations. *)
  pfs_recover : unit -> recover_report;
}

let ( let* ) = Result.bind
