(** Write-ahead journal over a reserved ring of disk blocks.

    A transaction is the set of block images mutated by one file-system
    operation.  {!commit} writes header+data record pairs followed by a
    commit record, in FIFO disk order, and blocks the calling thread
    only on the closing barrier — the commit record is the durability
    point, after which the caller applies the same images to the
    write-back cache (home locations).

    Every record occupies one ring slot and one sequence number with
    [slot = seq mod ring-size], so the ring always holds a contiguous
    suffix of record history.  Slots are reused only past a checkpoint:
    the engine durably flushes the home cache, then writes a checkpoint
    record carrying "checkpointed through sequence S".  Recovery replays
    committed transactions with sequences above the newest checkpoint
    and fences the result behind a fresh checkpoint, so replay is
    idempotent across repeated crashes. *)

type t

type recovery = {
  rv_scanned : int;  (** journal slots scanned *)
  rv_replayed_txns : int;
  rv_replayed_blocks : int;
  rv_discarded : int;
      (** transactions dropped: no commit record, or a record failed its
          checksum (torn or rotted journal write) *)
}

val clean_scan : recovery

val attach :
  Mach.Kernel.t ->
  Machine.Disk.t ->
  start:int ->
  blocks:int ->
  note_write:(unit -> unit) ->
  home_write:(int -> bytes -> unit) ->
  flush_home:(unit -> unit) ->
  t * recovery
(** Bind an engine to the ring at [start] and run recovery immediately:
    scan, replay committed-but-uncheckpointed transactions through
    [home_write], durably flush, and fence with a checkpoint.
    [note_write] is called once per journal-record write (stats);
    [flush_home] must make the home cache durable (flush + barrier).
    @raise Invalid_argument if the ring has fewer than 8 blocks. *)

val commit : t -> (int * bytes) list -> unit
(** Durably journal one transaction's (block, image) writes.  Blocks the
    calling thread once, on the barrier after the commit record.  The
    caller is responsible for then applying the images to the cache.
    Operations larger than the ring are committed in bounded batches
    (write-ahead ordering kept; whole-operation atomicity is not). *)

val recover : t -> recovery
(** Re-run the recovery scan (used when a supervised restart hands the
    engine a freshly invalidated cache). *)

val records_written : t -> int
val txns_committed : t -> int
val ring_blocks : t -> int
