open Fs_types
open Mach.Ktypes

type open_file = {
  of_port : port;  (* one port per open file *)
  of_vn : Vnode.t;  (* referenced for the life of the handle *)
  mutable of_pos : int;
  mutable of_mapped : bool;
  mutable of_zc : (int * int) option;
      (* outstanding zero-copy reply: (pool addr, mapped bytes), pinned
         until the next request on this handle or close *)
}

(* Client-side resilience policy: when set, stub calls go through
   [Rpc.call_retry] — re-resolving the service port before each attempt
   — instead of a bare call against a port that may have died. *)
type retry = {
  rt_resolve : unit -> port option;
  rt_attempts : int;
  rt_deadline : int;
  rt_backoff : int;
}

type t = {
  kernel : Mach.Kernel.t;
  runtime : Mk_services.Runtime.t;
  fs_task : task;
  mutable fs_port : port;  (* replaced when a crashed server restarts *)
  fs_server_threads : int;
  mutable fs_generation : int;  (* bumped per restart, names the threads *)
  fs_vfs : Vfs.t;
  opens : (int, open_file) Hashtbl.t;  (* keyed by the file port's id *)
  buffer_obj : vm_object;  (* shared mapped-read buffer *)
  mutable served : int;
  mutable m_pageins : int;
  mutable m_pageouts : int;
  mutable fs_retry : retry option;
  mutable fs_last_recovery : recover_report option;  (* set per restart *)
  mutable fs_beat : Mach.Health.beat;  (* fresh per incarnation *)
  mutable fs_health : port;  (* heartbeat port, reallocated per restart *)
}

type payload +=
  | FS_open of { o_sem : Vfs.semantics; o_path : string; o_create : bool }
  | FS_close of int
  | FS_read of { r_handle : int; r_bytes : int }
  | FS_read_mapped of { rm_handle : int; rm_bytes : int }
  | FS_write of { w_handle : int; w_bytes : bytes }
  | FS_seek of { s_handle : int; s_pos : int }
  | FS_path_op of { p_sem : Vfs.semantics; p_op : string; p_path : string; p_path2 : string }
  | FS_sync
  | FS_read_zc of { rz_handle : int; rz_bytes : int }
  | FS_write_zc of { wz_handle : int; wz_bytes : bytes }
  | FS_r_handle of int
  | FS_r_data of bytes
  | FS_r_len of int
  | FS_r_stat of stat
  | FS_r_names of string list
  | FS_r_unit
  | FS_r_err of fs_error

(* request selectors, for stubs *)
let op_open = 10
let op_close = 11
let op_read = 12
let op_read_mapped = 13
let op_write = 14
let op_seek = 15
let op_path = 16
let op_sync = 17
let op_read_zc = 18
let op_write_zc = 19

let charge t ~offset ~bytes =
  Mach.Ktext.exec_in t.kernel.Mach.Kernel.ktext t.fs_task.text ~offset ~bytes

(* the per-operation server work beyond the physical file system: vnode
   lookup, open-file table, union-semantics checks *)
let charge_vnode t = charge t ~offset:0x800 ~bytes:640
let charge_open_table t = charge t ~offset:0xc00 ~bytes:256
let charge_union t = charge t ~offset:0x1000 ~bytes:448

let handle_lookup t h =
  match Hashtbl.find_opt t.opens h with
  | Some f when not f.of_port.dead ->
      (* the open-table discipline: a handle whose file was unlinked
         fails here, before any operation reaches the dead vnode *)
      if Vnode.reclaimed f.of_vn then Error E_bad_handle else Ok f
  | Some _ | None -> Error E_bad_handle

let do_open t sem path create =
  charge_vnode t;
  charge_union t;
  let resolved =
    match Vfs.resolve t.fs_vfs sem ~path with
    | Ok x -> Ok x
    | Error E_not_found when create -> (
        match Vfs.create_file t.fs_vfs sem ~path with
        | Ok _id -> Vfs.resolve t.fs_vfs sem ~path
        | Error e -> Error e)
    | Error e -> Error e
  in
  match resolved with
  | Error e -> FS_r_err e
  | Ok Vfs.Root -> FS_r_err E_is_dir
  | Ok (Vfs.File vn) -> (
      match Vnode.stat vn with
      | Error e -> FS_r_err e
      | Ok st when st.st_is_dir -> FS_r_err E_is_dir
      | Ok _ ->
          charge_open_table t;
          let sys = t.kernel.Mach.Kernel.sys in
          let fport =
            Mach.Port.allocate sys ~receiver:t.fs_task
              ~name:(Printf.sprintf "file:%s" path)
          in
          Vnode.ref_ vn;
          Hashtbl.replace t.opens fport.port_id
            { of_port = fport; of_vn = vn; of_pos = 0;
              of_mapped = false; of_zc = None };
          FS_r_handle fport.port_id)

let do_path_op t sem op path path2 =
  charge_vnode t;
  charge_union t;
  match op with
  | "stat" -> (
      match Vfs.stat t.fs_vfs sem ~path with
      | Ok st -> FS_r_stat st
      | Error e -> FS_r_err e)
  | "mkdir" -> (
      match Vfs.mkdir t.fs_vfs sem ~path with
      | Ok (_ : file_id) -> FS_r_unit
      | Error e -> FS_r_err e)
  | "readdir" -> (
      match Vfs.readdir t.fs_vfs sem ~path with
      | Ok names -> FS_r_names names
      | Error e -> FS_r_err e)
  | "unlink" -> (
      match Vfs.unlink t.fs_vfs sem ~path with
      | Ok () -> FS_r_unit
      | Error e -> FS_r_err e)
  | "rename" -> (
      match Vfs.rename t.fs_vfs sem ~src:path ~dst:path2 with
      | Ok () -> FS_r_unit
      | Error e -> FS_r_err e)
  | _ -> FS_r_err (E_io ("unknown op " ^ op))

(* Pool pages backing an earlier zero-copy reply stay pinned until the
   next request on the handle proves the client is done with them. *)
let release_zc f =
  match f.of_zc with
  | Some (addr, bytes) ->
      f.of_zc <- None;
      Vnode.release_paged f.of_vn ~addr ~bytes
  | None -> ()

let handle t (msg : message) : message_builder =
  t.served <- t.served + 1;
  let reply ?(bytes = 32) payload =
    simple_message ~op:msg.msg_op ~inline_bytes:bytes ~payload ()
  in
  match msg.msg_payload with
  | FS_open { o_sem; o_path; o_create } ->
      reply (do_open t o_sem o_path o_create)
  | FS_close h -> (
      charge_open_table t;
      match handle_lookup t h with
      | Ok f ->
          release_zc f;
          Vnode.unref f.of_vn;
          Hashtbl.remove t.opens h;
          Mach.Port.destroy t.kernel.Mach.Kernel.sys f.of_port;
          reply FS_r_unit
      | Error e -> (
          (* a reclaimed handle still releases its table entry *)
          (match Hashtbl.find_opt t.opens h with
          | Some f ->
              release_zc f;
              Vnode.unref f.of_vn;
              Hashtbl.remove t.opens h;
              if not f.of_port.dead then
                Mach.Port.destroy t.kernel.Mach.Kernel.sys f.of_port
          | None -> ());
          reply (FS_r_err e)))
  | FS_read { r_handle; r_bytes } -> (
      charge_open_table t;
      match handle_lookup t r_handle with
      | Error e -> reply (FS_r_err e)
      | Ok f -> (
          match Vnode.read f.of_vn ~off:f.of_pos ~len:r_bytes with
          | Ok data ->
              f.of_pos <- f.of_pos + Bytes.length data;
              (* reply copies the data back inline *)
              reply ~bytes:(Bytes.length data + 32) (FS_r_data data)
          | Error e -> reply (FS_r_err e)))
  | FS_read_mapped { rm_handle; rm_bytes } -> (
      charge_open_table t;
      match handle_lookup t rm_handle with
      | Error e -> reply (FS_r_err e)
      | Ok f -> (
          match Vnode.read f.of_vn ~off:f.of_pos ~len:rm_bytes with
          | Ok data ->
              f.of_pos <- f.of_pos + Bytes.length data;
              (* the data stays in the shared buffer object: map it into
                 the client on first use instead of copying *)
              let sys = t.kernel.Mach.Kernel.sys in
              (if not f.of_mapped then begin
                 f.of_mapped <- true;
                 match msg.msg_sender with
                 | Some client ->
                     ignore
                       (Mach.Vm.map_object sys client t.buffer_obj
                          ~bytes:(64 * 1024) ~prot:prot_ro ()
                         : int)
                 | None -> ()
               end);
              reply (FS_r_len (Bytes.length data))
          | Error e -> reply (FS_r_err e)))
  | FS_write { w_handle; w_bytes } -> (
      charge_open_table t;
      match handle_lookup t w_handle with
      | Error e -> reply (FS_r_err e)
      | Ok f -> (
          match Vnode.write f.of_vn ~off:f.of_pos w_bytes with
          | Ok n ->
              f.of_pos <- f.of_pos + n;
              reply (FS_r_len n)
          | Error e -> reply (FS_r_err e)))
  | FS_seek { s_handle; s_pos } -> (
      charge_open_table t;
      match handle_lookup t s_handle with
      | Ok f ->
          f.of_pos <- max 0 s_pos;
          reply FS_r_unit
      | Error e -> reply (FS_r_err e))
  | FS_read_zc { rz_handle; rz_bytes } -> (
      charge_open_table t;
      match handle_lookup t rz_handle with
      | Error e -> reply (FS_r_err e)
      | Ok f -> (
          release_zc f;
          Vnode.map_pool f.of_vn t.fs_task;
          match
            Vnode.read_paged f.of_vn ~off:f.of_pos ~len:rz_bytes
          with
          | Ok (Some (addr, map_bytes, data)) ->
              f.of_pos <- f.of_pos + Bytes.length data;
              f.of_zc <- Some (addr, map_bytes);
              (* the bytes ride out by COW remap of the pool pages; only
                 the 32-byte header is copied through the message *)
              simple_message ~op:msg.msg_op ~inline_bytes:32
                ~payload:(FS_r_data data)
                ~ool_vec:[ (addr, map_bytes, Cow) ]
                ()
          | Ok None -> (
              (* pool exhausted or unaligned position: copy path *)
              match Vnode.read f.of_vn ~off:f.of_pos ~len:rz_bytes with
              | Ok data ->
                  f.of_pos <- f.of_pos + Bytes.length data;
                  reply ~bytes:(Bytes.length data + 32) (FS_r_data data)
              | Error e -> reply (FS_r_err e))
          | Error e -> reply (FS_r_err e)))
  | FS_write_zc { wz_handle; wz_bytes } ->
      charge_open_table t;
      (* the client's pages arrived by remap-move (no copy); [wz_bytes]
         carries the same contents for the simulation's ground truth *)
      let result =
        match handle_lookup t wz_handle with
        | Error e -> FS_r_err e
        | Ok f -> (
            release_zc f;
            match Vnode.write f.of_vn ~off:f.of_pos wz_bytes with
            | Ok n ->
                f.of_pos <- f.of_pos + n;
                FS_r_len n
            | Error e -> FS_r_err e)
      in
      let sys = t.kernel.Mach.Kernel.sys in
      List.iter
        (fun r ->
          if r.ool_mode = Move then
            Mach.Vm.deallocate sys t.fs_task ~addr:r.ool_addr)
        msg.msg_ool;
      reply result
  | FS_path_op { p_sem; p_op; p_path; p_path2 } ->
      reply (do_path_op t p_sem p_op p_path p_path2)
  | FS_sync ->
      Vfs.sync t.fs_vfs;
      reply FS_r_unit
  | _ -> reply (FS_r_err (E_io "bad request"))

let start (kernel : Mach.Kernel.t) runtime fs_vfs ?(server_threads = 1) () =
  let sys = kernel.Mach.Kernel.sys in
  Mach.Sched.with_uncharged sys (fun () ->
      let fs_task =
        Mach.Kernel.task_create kernel ~name:"file-server" ~personality:"pn"
          ~text_bytes:(64 * 1024) ~data_bytes:(32 * 1024) ()
      in
      Mk_services.Runtime.attach runtime fs_task;
      let fs_port = Mach.Port.allocate sys ~receiver:fs_task ~name:"file-service" in
      let buffer_obj =
        Mach.Vm.object_create sys ~tag:"fs-shared-buffers" ~bytes:(64 * 1024) ()
      in
      let t =
        {
          kernel;
          runtime;
          fs_task;
          fs_port;
          fs_server_threads = server_threads;
          fs_generation = 0;
          fs_vfs;
          opens = Hashtbl.create 32;
          buffer_obj;
          served = 0;
          m_pageins = 0;
          m_pageouts = 0;
          fs_retry = None;
          fs_last_recovery = None;
          fs_beat = Mach.Health.beat ();
          fs_health =
            Mach.Port.allocate sys ~receiver:fs_task ~name:"file-health";
        }
      in
      for i = 1 to server_threads do
        let serving = t.fs_port in
        let beat = t.fs_beat in
        ignore
          (Mach.Kernel.thread_spawn kernel fs_task
             ~name:(Printf.sprintf "fs-serve-%d" i) (fun () ->
               Mach.Rpc.serve sys ~beat serving (handle t))
            : thread)
      done;
      (* the health thread answers pings off the beat alone: it stays
         responsive while the serve threads are wedged, which is exactly
         what lets the supervisor's watchdog see the wedge *)
      let hp = t.fs_health in
      let beat = t.fs_beat in
      ignore
        (Mach.Kernel.thread_spawn kernel fs_task ~name:"fs-health" (fun () ->
             Mach.Rpc.serve sys hp (Mach.Health.handler beat))
          : thread);
      t)

(* Bring a crashed instance back: volatile state (the open-file table)
   is gone, the service port is reallocated, the mounted volumes run
   crash recovery (journal replay + invariant scan where the format has
   them), fresh serve threads start.  Clients holding old handles get
   [E_bad_handle] and must re-open. *)
let restart t =
  let sys = t.kernel.Mach.Kernel.sys in
  Mach.Sched.with_uncharged sys (fun () ->
      Hashtbl.iter
        (fun _ f ->
          (* unpin pool pages backing in-flight zero-copy replies — the
             clients died with the incarnation, nobody will release them *)
          release_zc f;
          Vnode.unref f.of_vn;
          if not f.of_port.dead then Mach.Port.destroy sys f.of_port)
        t.opens;
      Hashtbl.reset t.opens;
      t.fs_last_recovery <- Some (Vfs.recover t.fs_vfs);
      t.fs_generation <- t.fs_generation + 1;
      let fs_port =
        Mach.Port.allocate sys ~receiver:t.fs_task ~name:"file-service"
      in
      t.fs_port <- fs_port;
      (* a fresh beat per incarnation: a wedged old serve thread's stale
         busy-since stamp must not get the replacement killed on its
         first heartbeat *)
      t.fs_beat <- Mach.Health.beat ();
      if not t.fs_health.dead then Mach.Port.destroy sys t.fs_health;
      t.fs_health <-
        Mach.Port.allocate sys ~receiver:t.fs_task ~name:"file-health";
      let beat = t.fs_beat in
      for i = 1 to t.fs_server_threads do
        ignore
          (Mach.Kernel.thread_spawn t.kernel t.fs_task
             ~name:(Printf.sprintf "fs-serve-%d.%d" t.fs_generation i)
             (fun () -> Mach.Rpc.serve sys ~beat fs_port (handle t))
            : thread)
      done;
      let hp = t.fs_health in
      ignore
        (Mach.Kernel.thread_spawn t.kernel t.fs_task
           ~name:(Printf.sprintf "fs-health.%d" t.fs_generation) (fun () ->
             Mach.Rpc.serve sys hp (Mach.Health.handler beat))
          : thread);
      fs_port)

let set_retry t ?(attempts = 4) ?(deadline = 100_000) ?(backoff = 1_000)
    ~resolve () =
  t.fs_retry <-
    Some
      {
        rt_resolve = resolve;
        rt_attempts = attempts;
        rt_deadline = deadline;
        rt_backoff = backoff;
      }

let clear_retry t = t.fs_retry <- None

let port t = t.fs_port
let health_port t = t.fs_health
let task t = t.fs_task
let vfs t = t.fs_vfs
let open_files t = Hashtbl.length t.opens
let requests_served t = t.served
let last_recovery t = t.fs_last_recovery

(* The file server as an external memory manager: a mapped file's pages
   are read from (and written back to) the physical file system on
   demand.  The cost of each page-in/out is the server's vnode work plus
   whatever disk traffic the block cache needs. *)
let map_file t sem task ~path =
  charge_vnode t;
  match Vfs.resolve t.fs_vfs sem ~path with
  | Error e -> Error e
  | Ok Vfs.Root -> Error E_is_dir
  | Ok (Vfs.File vn) -> (
      match Vnode.stat vn with
      | Error e -> Error e
      | Ok st when st.st_is_dir -> Error E_is_dir
      | Ok st ->
          let sys = t.kernel.Mach.Kernel.sys in
          let size = max page_size (pages_of_bytes st.st_size * page_size) in
          let backing =
            {
              bs_name = "file:" ^ path;
              bs_page_in =
                (fun _obj idx k ->
                  t.m_pageins <- t.m_pageins + 1;
                  charge_vnode t;
                  ignore
                    (Vnode.read vn ~off:(idx * page_size) ~len:page_size);
                  k ());
              bs_page_out =
                (fun _obj idx k ->
                  t.m_pageouts <- t.m_pageouts + 1;
                  charge_vnode t;
                  ignore
                    (Vnode.write vn ~off:(idx * page_size)
                       (Bytes.make page_size '\000'));
                  k ());
            }
          in
          let obj =
            Mach.Vm.object_create sys ~backing ~tag:("map:" ^ path)
              ~bytes:size ()
          in
          let addr = Mach.Vm.map_object sys task obj ~bytes:size () in
          Ok (addr, st.st_size))

let mapped_pageins t = t.m_pageins
let mapped_pageouts t = t.m_pageouts

module Client = struct
  type handle = int

  let rpc_msg t ~op ~bytes ?(ool_vec = []) payload =
    let sys = t.kernel.Mach.Kernel.sys in
    let mb = simple_message ~op ~inline_bytes:bytes ~payload ~ool_vec () in
    match t.fs_retry with
    | None -> Mach.Rpc.call sys t.fs_port mb
    | Some r ->
        Mach.Rpc.call_retry sys ~attempts:r.rt_attempts
          ~deadline:r.rt_deadline ~backoff:r.rt_backoff
          ~resolve:r.rt_resolve mb

  let rpc t ~op ~bytes ?ool_vec payload =
    match rpc_msg t ~op ~bytes ?ool_vec payload with
    | Ok reply -> reply.msg_payload
    | Error err -> FS_r_err (E_io (kern_return_to_string err))

  let open_ t sem ~path ?(create = false) () =
    match
      rpc t ~op:op_open
        ~bytes:(64 + String.length path)
        (FS_open { o_sem = sem; o_path = path; o_create = create })
    with
    | FS_r_handle h -> Ok h
    | FS_r_err e -> Error e
    | _ -> Error (E_io "bad reply")

  let close t h = ignore (rpc t ~op:op_close ~bytes:32 (FS_close h))

  let read t h ~bytes =
    match
      rpc t ~op:op_read ~bytes:40 (FS_read { r_handle = h; r_bytes = bytes })
    with
    | FS_r_data data -> Ok data
    | FS_r_err e -> Error e
    | _ -> Error (E_io "bad reply")

  (* Zero-copy read: the reply's data pages arrive by COW remap instead
     of an inline copy.  The client reads them where they landed (the
     faults break the sharing page by page) and then drops the mapping,
     which lets the server unpin the pool pages on the next request. *)
  let read_zc t h ~bytes =
    match
      rpc_msg t ~op:op_read_zc ~bytes:40
        (FS_read_zc { rz_handle = h; rz_bytes = bytes })
    with
    | Error err -> Error (E_io (kern_return_to_string err))
    | Ok reply -> (
        match reply.msg_payload with
        | FS_r_data data ->
            let sys = t.kernel.Mach.Kernel.sys in
            let task = (Mach.Sched.self ()).t_task in
            List.iter
              (fun r ->
                if not r.ool_copied then begin
                  Mach.Vm.touch sys task ~addr:r.ool_addr ~bytes:r.ool_bytes ();
                  Mach.Vm.deallocate sys task ~addr:r.ool_addr
                end)
              reply.msg_ool;
            Ok data
        | FS_r_err e -> Error e
        | _ -> Error (E_io "bad reply"))

  (* Zero-copy write: fill a fresh page-aligned buffer and donate it to
     the server by remap-move.  The donated range becomes zero-fill in
     this task, so it is dropped rather than reused. *)
  let write_zc t h data =
    let sys = t.kernel.Mach.Kernel.sys in
    let task = (Mach.Sched.self ()).t_task in
    let len = Bytes.length data in
    let map_bytes = max page_size (pages_of_bytes len * page_size) in
    let buf = Mach.Vm.allocate sys task ~bytes:map_bytes () in
    Mach.Vm.touch sys task ~addr:buf ~write:true ~bytes:len ();
    let result =
      match
        rpc t ~op:op_write_zc ~bytes:72
          ~ool_vec:[ (buf, map_bytes, Move) ]
          (FS_write_zc { wz_handle = h; wz_bytes = data })
      with
      | FS_r_len n -> Ok n
      | FS_r_err e -> Error e
      | _ -> Error (E_io "bad reply")
    in
    Mach.Vm.deallocate sys task ~addr:buf;
    result

  let read_mapped t h ~bytes =
    match
      rpc t ~op:op_read_mapped ~bytes:40
        (FS_read_mapped { rm_handle = h; rm_bytes = bytes })
    with
    | FS_r_len n -> Ok n
    | FS_r_err e -> Error e
    | _ -> Error (E_io "bad reply")

  let write t h data =
    match
      rpc t ~op:op_write
        ~bytes:(Bytes.length data + 40)
        (FS_write { w_handle = h; w_bytes = data })
    with
    | FS_r_len n -> Ok n
    | FS_r_err e -> Error e
    | _ -> Error (E_io "bad reply")

  let seek t h ~pos =
    ignore (rpc t ~op:op_seek ~bytes:40 (FS_seek { s_handle = h; s_pos = pos }))

  let path_op t sem op ~path ?(path2 = "") () =
    rpc t ~op:op_path
      ~bytes:(64 + String.length path + String.length path2)
      (FS_path_op { p_sem = sem; p_op = op; p_path = path; p_path2 = path2 })

  let stat t sem ~path =
    match path_op t sem "stat" ~path () with
    | FS_r_stat st -> Ok st
    | FS_r_err e -> Error e
    | _ -> Error (E_io "bad reply")

  let mkdir t sem ~path =
    match path_op t sem "mkdir" ~path () with
    | FS_r_unit -> Ok ()
    | FS_r_err e -> Error e
    | _ -> Error (E_io "bad reply")

  let readdir t sem ~path =
    match path_op t sem "readdir" ~path () with
    | FS_r_names names -> Ok names
    | FS_r_err e -> Error e
    | _ -> Error (E_io "bad reply")

  let unlink t sem ~path =
    match path_op t sem "unlink" ~path () with
    | FS_r_unit -> Ok ()
    | FS_r_err e -> Error e
    | _ -> Error (E_io "bad reply")

  let rename t sem ~src ~dst =
    match path_op t sem "rename" ~path:src ~path2:dst () with
    | FS_r_unit -> Ok ()
    | FS_r_err e -> Error e
    | _ -> Error (E_io "bad reply")

  let sync t = ignore (rpc t ~op:op_sync ~bytes:32 FS_sync)
end
