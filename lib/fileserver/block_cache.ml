(* Slots live in a hash table for lookup and on an intrusive circular
   doubly-linked LRU list (with sentinel) for eviction: a hit relinks in
   O(1), and the victim is always the sentinel's predecessor — no O(n)
   scan over the whole cache on every miss. *)
type slot = {
  mutable s_block : int;
  mutable data : bytes;
  mutable dirty : bool;
  mutable prev : slot;
  mutable next : slot;
}

type t = {
  kernel : Mach.Kernel.t;
  disk : Machine.Disk.t;
  capacity : int;
  slots : (int, slot) Hashtbl.t;
  lru : slot;  (* sentinel: [lru.next] = most recent, [lru.prev] = victim *)
  buf_region : Machine.Layout.region;  (* cache memory, for data costing *)
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

let create (kernel : Mach.Kernel.t) disk ?(capacity = 256) () =
  let layout = kernel.Mach.Kernel.machine.Machine.layout in
  let bs = (Machine.Disk.geometry disk).Machine.Disk.block_size in
  let name =
    Printf.sprintf "block-cache:%s" (Machine.Disk.name disk)
  in
  let buf_region =
    match Machine.Layout.find layout name with
    | Some r -> r
    | None ->
        Machine.Layout.alloc layout ~name ~kind:Machine.Layout.Data
          ~size:(capacity * bs)
  in
  let rec sentinel =
    { s_block = -1; data = Bytes.empty; dirty = false; prev = sentinel;
      next = sentinel }
  in
  {
    kernel;
    disk;
    capacity;
    slots = Hashtbl.create (capacity * 2);
    lru = sentinel;
    buf_region;
    hits = 0;
    misses = 0;
    writebacks = 0;
  }

let block_size t = (Machine.Disk.geometry t.disk).Machine.Disk.block_size

let unlink s =
  s.prev.next <- s.next;
  s.next.prev <- s.prev

let push_front t s =
  s.next <- t.lru.next;
  s.prev <- t.lru;
  t.lru.next.prev <- s;
  t.lru.next <- s

let touch t s =
  unlink s;
  push_front t s

(* the hash-probe itself: a touch of the cache's index structure *)
let charge_lookup t =
  Machine.execute t.kernel.Mach.Kernel.machine
    [
      Machine.Footprint.load
        ~addr:(t.buf_region.Machine.Layout.base + 16) ~bytes:32;
    ]

let data_addr t block =
  t.buf_region.Machine.Layout.base + (block mod t.capacity * block_size t)

let charge_data t block ~write =
  let addr = data_addr t block in
  let op =
    if write then Machine.Footprint.store ~addr ~bytes:(block_size t)
    else Machine.Footprint.load ~addr ~bytes:(block_size t)
  in
  Machine.execute t.kernel.Mach.Kernel.machine [ op ]

let in_thread (t : t) =
  Option.is_some t.kernel.Mach.Kernel.sys.Mach.Sched.current

let evict_if_full t =
  if Hashtbl.length t.slots >= t.capacity then begin
    let victim = t.lru.prev in
    if victim != t.lru then begin
      if victim.dirty then begin
        t.writebacks <- t.writebacks + 1;
        if in_thread t then
          Machine.Disk.write t.disk ~block:victim.s_block
            (Bytes.copy victim.data) (fun () -> ())
        else Machine.Disk.write_now t.disk ~block:victim.s_block
            (Bytes.copy victim.data)
      end;
      unlink victim;
      Hashtbl.remove t.slots victim.s_block
    end
  end

let insert t block data ~dirty =
  let s =
    { s_block = block; data; dirty; prev = t.lru; next = t.lru }
  in
  push_front t s;
  Hashtbl.replace t.slots block s

let disk_read_blocking t block =
  if in_thread t then begin
    let sys = t.kernel.Mach.Kernel.sys in
    let th = Mach.Sched.self () in
    let result = ref None in
    Machine.Disk.read t.disk ~block ~count:1 (fun data ->
        result := Some data;
        Mach.Sched.wake sys th);
    let rec wait () =
      match !result with
      | Some data -> data
      | None ->
          ignore (Mach.Sched.block "disk-read" : Mach.Ktypes.kern_return);
          wait ()
    in
    wait ()
  end
  else Machine.Disk.read_now t.disk ~block ~count:1

let read t block =
  charge_lookup t;
  match Hashtbl.find_opt t.slots block with
  | Some slot ->
      t.hits <- t.hits + 1;
      touch t slot;
      charge_data t block ~write:false;
      Bytes.copy slot.data
  | None ->
      t.misses <- t.misses + 1;
      let data = disk_read_blocking t block in
      evict_if_full t;
      insert t block (Bytes.copy data) ~dirty:false;
      charge_data t block ~write:false;
      data

let write t block data =
  if Bytes.length data <> block_size t then
    invalid_arg "Block_cache.write: bad block length";
  charge_lookup t;
  charge_data t block ~write:true;
  match Hashtbl.find_opt t.slots block with
  | Some slot ->
      t.hits <- t.hits + 1;
      slot.data <- Bytes.copy data;
      slot.dirty <- true;
      touch t slot
  | None ->
      t.misses <- t.misses + 1;
      evict_if_full t;
      insert t block (Bytes.copy data) ~dirty:true

let flush t =
  Hashtbl.iter
    (fun block slot ->
      if slot.dirty then begin
        slot.dirty <- false;
        t.writebacks <- t.writebacks + 1;
        if in_thread t then
          Machine.Disk.write t.disk ~block (Bytes.copy slot.data) (fun () -> ())
        else Machine.Disk.write_now t.disk ~block (Bytes.copy slot.data)
      end)
    t.slots

let lru_block t =
  let victim = t.lru.prev in
  if victim == t.lru then None else Some victim.s_block

let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks
