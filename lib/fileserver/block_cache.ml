(* Slots live in a hash table for lookup and on an intrusive circular
   doubly-linked LRU list (with sentinel) for eviction: a hit relinks in
   O(1), and the victim is always the sentinel's predecessor — no O(n)
   scan over the whole cache on every miss. *)
type slot = {
  mutable s_block : int;
  mutable data : bytes;
  mutable dirty : bool;
  mutable prev : slot;
  mutable next : slot;
}

(* Pages the cache lends to zero-copy replies.  A read that goes out by
   remap assembles whole blocks into a pool page and COW-maps that page
   into the client instead of copying the bytes through a message.  A
   pinned page is never handed out again until released; reusing an
   unpinned page that is still mapped out is exactly the lifetime bug
   Machcheck's remap sanitizer reports. *)
type pool_slot = { mutable p_out : bool; mutable p_pinned : bool }

type pool = {
  pool_base : int;  (* base address in the owning task's map *)
  pool_slots : pool_slot array;
  mutable pool_next : int;  (* roving ring pointer, like the kbuf arena *)
}

type t = {
  kernel : Mach.Kernel.t;
  disk : Machine.Disk.t;
  capacity : int;
  slots : (int, slot) Hashtbl.t;
  lru : slot;  (* sentinel: [lru.next] = most recent, [lru.prev] = victim *)
  buf_region : Machine.Layout.region;  (* cache memory, for data costing *)
  mutable pool : pool option;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

let create (kernel : Mach.Kernel.t) disk ?(capacity = 256) () =
  let layout = kernel.Mach.Kernel.machine.Machine.layout in
  let bs = (Machine.Disk.geometry disk).Machine.Disk.block_size in
  let name =
    Printf.sprintf "block-cache:%s" (Machine.Disk.name disk)
  in
  let buf_region =
    match Machine.Layout.find layout name with
    | Some r -> r
    | None ->
        Machine.Layout.alloc layout ~name ~kind:Machine.Layout.Data
          ~size:(capacity * bs)
  in
  let rec sentinel =
    { s_block = -1; data = Bytes.empty; dirty = false; prev = sentinel;
      next = sentinel }
  in
  {
    kernel;
    disk;
    capacity;
    slots = Hashtbl.create (capacity * 2);
    lru = sentinel;
    buf_region;
    pool = None;
    hits = 0;
    misses = 0;
    writebacks = 0;
  }

let block_size t = (Machine.Disk.geometry t.disk).Machine.Disk.block_size

let unlink s =
  s.prev.next <- s.next;
  s.next.prev <- s.prev

let push_front t s =
  s.next <- t.lru.next;
  s.prev <- t.lru;
  t.lru.next.prev <- s;
  t.lru.next <- s

let touch t s =
  unlink s;
  push_front t s

(* the hash-probe itself: a touch of the cache's index structure *)
let charge_lookup t =
  Machine.execute t.kernel.Mach.Kernel.machine
    [
      Machine.Footprint.load
        ~addr:(t.buf_region.Machine.Layout.base + 16) ~bytes:32;
    ]

let data_addr t block =
  t.buf_region.Machine.Layout.base + (block mod t.capacity * block_size t)

let charge_data t block ~write =
  let addr = data_addr t block in
  let op =
    if write then Machine.Footprint.store ~addr ~bytes:(block_size t)
    else Machine.Footprint.load ~addr ~bytes:(block_size t)
  in
  Machine.execute t.kernel.Mach.Kernel.machine [ op ]

let in_thread (t : t) =
  Option.is_some t.kernel.Mach.Kernel.sys.Mach.Sched.current

let evict_if_full t =
  if Hashtbl.length t.slots >= t.capacity then begin
    let victim = t.lru.prev in
    if victim != t.lru then begin
      if victim.dirty then begin
        t.writebacks <- t.writebacks + 1;
        if in_thread t then
          Machine.Disk.write t.disk ~block:victim.s_block
            (Bytes.copy victim.data) (fun () -> ())
        else Machine.Disk.write_now t.disk ~block:victim.s_block
            (Bytes.copy victim.data)
      end;
      unlink victim;
      Hashtbl.remove t.slots victim.s_block
    end
  end

let insert t block data ~dirty =
  let s =
    { s_block = block; data; dirty; prev = t.lru; next = t.lru }
  in
  push_front t s;
  Hashtbl.replace t.slots block s

let disk_read_blocking t block =
  if in_thread t then begin
    let sys = t.kernel.Mach.Kernel.sys in
    let th = Mach.Sched.self () in
    let result = ref None in
    Machine.Disk.read t.disk ~block ~count:1 (fun data ->
        result := Some data;
        Mach.Sched.wake sys th);
    let rec wait () =
      match !result with
      | Some data -> data
      | None ->
          ignore (Mach.Sched.block "disk-read" : Mach.Ktypes.kern_return);
          wait ()
    in
    wait ()
  end
  else Machine.Disk.read_now t.disk ~block ~count:1

let read t block =
  charge_lookup t;
  match Hashtbl.find_opt t.slots block with
  | Some slot ->
      t.hits <- t.hits + 1;
      touch t slot;
      charge_data t block ~write:false;
      Bytes.copy slot.data
  | None ->
      t.misses <- t.misses + 1;
      let data = disk_read_blocking t block in
      evict_if_full t;
      insert t block (Bytes.copy data) ~dirty:false;
      charge_data t block ~write:false;
      data

let write t block data =
  if Bytes.length data <> block_size t then
    invalid_arg "Block_cache.write: bad block length";
  charge_lookup t;
  charge_data t block ~write:true;
  match Hashtbl.find_opt t.slots block with
  | Some slot ->
      t.hits <- t.hits + 1;
      slot.data <- Bytes.copy data;
      slot.dirty <- true;
      touch t slot
  | None ->
      t.misses <- t.misses + 1;
      evict_if_full t;
      insert t block (Bytes.copy data) ~dirty:true

let flush t =
  Hashtbl.iter
    (fun block slot ->
      if slot.dirty then begin
        slot.dirty <- false;
        t.writebacks <- t.writebacks + 1;
        if in_thread t then
          Machine.Disk.write t.disk ~block (Bytes.copy slot.data) (fun () -> ())
        else Machine.Disk.write_now t.disk ~block (Bytes.copy slot.data)
      end)
    t.slots

(* Blocking barrier: returns once every write submitted so far has
   reached the media (and any reorder-held writes have landed).  Outside
   a thread everything was written synchronously, so the barrier
   completes immediately unless the device is mid-request. *)
let barrier_wait t =
  if in_thread t then begin
    let sys = t.kernel.Mach.Kernel.sys in
    let th = Mach.Sched.self () in
    let arrived = ref false in
    Machine.Disk.barrier t.disk (fun () ->
        arrived := true;
        Mach.Sched.wake sys th);
    while not !arrived do
      ignore (Mach.Sched.block "disk-barrier" : Mach.Ktypes.kern_return)
    done
  end
  else Machine.Disk.barrier t.disk (fun () -> ())

let flush_wait t =
  flush t;
  barrier_wait t

let lru_block t =
  let victim = t.lru.prev in
  if victim == t.lru then None else Some victim.s_block

let dirty_blocks t =
  Hashtbl.fold (fun _ s acc -> if s.dirty then acc + 1 else acc) t.slots 0

let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks
let kernel t = t.kernel
let disk t = t.disk

(* --- mapout pool --------------------------------------------------------- *)

let pool_pages = 16

let map_pool t task =
  match t.pool with
  | Some _ -> ()
  | None ->
      let sys = t.kernel.Mach.Kernel.sys in
      let base =
        Mach.Vm.allocate sys task
          ~bytes:(pool_pages * Mach.Ktypes.page_size) ()
      in
      t.pool <-
        Some
          {
            pool_base = base;
            pool_slots =
              Array.init pool_pages (fun _ ->
                  { p_out = false; p_pinned = false });
            pool_next = 0;
          }

let pool_acquire t ~pages ~pin =
  match t.pool with
  | None -> None
  | Some p ->
      let n = Array.length p.pool_slots in
      if pages <= 0 || pages > n then None
      else begin
        (* ring scan for [pages] consecutive slots, none pinned *)
        let found = ref None in
        let cursor = ref p.pool_next in
        let tries = ref 0 in
        while !found = None && !tries < n do
          let s = !cursor mod n in
          if s + pages <= n then begin
            let ok = ref true in
            for i = s to s + pages - 1 do
              if p.pool_slots.(i).p_pinned then ok := false
            done;
            if !ok then found := Some s
          end;
          incr cursor;
          incr tries
        done;
        match !found with
        | None -> None  (* every candidate run holds a pinned page *)
        | Some s ->
            p.pool_next <- s + pages;
            let sys = t.kernel.Mach.Kernel.sys in
            let tag =
              Printf.sprintf "block-cache:%s" (Machine.Disk.name t.disk)
            in
            for i = s to s + pages - 1 do
              let slot = p.pool_slots.(i) in
              let addr = p.pool_base + (i * Mach.Ktypes.page_size) in
              if slot.p_out then
                (* still mapped out from an earlier reply, but not pinned:
                   the reuse the checker is there to catch *)
                Mach.Mcheck.cache_reused sys ~addr ~tag;
              slot.p_out <- true;
              slot.p_pinned <- pin;
              Mach.Mcheck.cache_mapped_out sys ~addr ~pinned:pin
            done;
            Some (p.pool_base + (s * Mach.Ktypes.page_size))
      end

let pool_fill t ~dst block =
  let data = read t block in
  Machine.execute t.kernel.Mach.Kernel.machine
    [ Machine.Footprint.store ~addr:dst ~bytes:(block_size t) ];
  data

let pool_release t ~addr ~pages =
  match t.pool with
  | None -> ()
  | Some p ->
      let sys = t.kernel.Mach.Kernel.sys in
      let first = (addr - p.pool_base) / Mach.Ktypes.page_size in
      for i = first to first + pages - 1 do
        if i >= 0 && i < Array.length p.pool_slots then begin
          let slot = p.pool_slots.(i) in
          slot.p_out <- false;
          slot.p_pinned <- false;
          Mach.Mcheck.cache_unmapped sys
            ~addr:(p.pool_base + (i * Mach.Ktypes.page_size))
        end
      done

let pool_pinned t =
  match t.pool with
  | None -> 0
  | Some p ->
      Array.fold_left
        (fun acc s -> if s.p_pinned then acc + 1 else acc)
        0 p.pool_slots

(* Forget every mapout from a dead incarnation.  The pages belonged to
   replies that no longer have a client (the server's ports died with
   it), so unmapping them is reclamation, not a lifetime violation. *)
let pool_reset t =
  match t.pool with
  | None -> ()
  | Some p ->
      let sys = t.kernel.Mach.Kernel.sys in
      Array.iteri
        (fun i slot ->
          if slot.p_out then
            Mach.Mcheck.cache_unmapped sys
              ~addr:(p.pool_base + (i * Mach.Ktypes.page_size));
          slot.p_out <- false;
          slot.p_pinned <- false)
        p.pool_slots;
      p.pool_next <- 0

(* Drop every slot without writeback — used on the journalled recovery
   path, where the journal (not the dirty cache) is the truth and stale
   cached copies would mask replayed blocks. *)
let invalidate t =
  Hashtbl.reset t.slots;
  t.lru.next <- t.lru;
  t.lru.prev <- t.lru;
  pool_reset t
