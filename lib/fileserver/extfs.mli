(** Extent/inode file-system core.

    The shared machinery behind the {!Hpfs} and {!Jfs} formats: a
    superblock, a data-block allocation bitmap, a fixed inode table whose
    inodes hold up to six extents, directories stored as ordinary file
    data, and (optionally) a write-ahead {!Journal} — journalled configs
    run every mutating operation as a transaction: mutated blocks are
    buffered in an overlay, durably journalled (checksummed records plus
    a commit record and a barrier) at the operation's success, and only
    then applied to the write-back cache.  That is the cost and the
    crash-consistency difference JFS brings: a power cut at any write
    loses no acknowledged operation, and recovery replays the journal at
    mount.

    Format-specific behaviour (name length, case rules, journalling) is
    injected through {!config}; the two public formats are thin wrappers
    choosing a config. *)

open Fs_types

type config = {
  cfg_format : string;
  cfg_max_name : int;
  cfg_case_sensitive : bool;
  cfg_journalled : bool;
}

val mkfs :
  Machine.Disk.t -> config -> ?start:int -> ?blocks:int -> ?inodes:int ->
  unit -> unit

val mount : Block_cache.t -> config -> ?start:int -> unit -> (pfs, fs_error) result

val max_extents : int
(** Extents per inode — exceeding this under fragmentation yields
    [E_no_space], a genuine format constraint. *)

val journal_writes : Block_cache.t -> int
(** Journal-record writes observed through this cache (for tests and the
    driver ablation). *)

val last_recovery : Block_cache.t -> Journal.recovery option
(** The most recent journal recovery scan run against this cache
    (mount-time or supervised-restart), if any. *)

val fsck : Block_cache.t -> config -> ?start:int -> unit -> string list
(** Standalone invariant scan: extent ranges, cross-linked blocks,
    bitmap-vs-extent agreement, strict directory parsing, dangling and
    duplicate entries, reference counts, sizes against held blocks.
    Returns one human-readable finding per violation; a consistent
    volume returns []. *)
