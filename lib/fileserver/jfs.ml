let config =
  {
    Extfs.cfg_format = "jfs";
    cfg_max_name = 255;
    cfg_case_sensitive = true;
    cfg_journalled = true;
  }

let mkfs disk ?start ?blocks () = Extfs.mkfs disk config ?start ?blocks ()
let mount cache ?start () = Extfs.mount cache config ?start ()
let fsck cache ?start () = Extfs.fsck cache config ?start ()
let last_recovery = Extfs.last_recovery
