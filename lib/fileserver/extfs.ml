open Fs_types

(* On-disk layout (512-byte blocks, offsets relative to [start]):
     block 0          superblock
     bitmap           one bit per data block
     inode table      64-byte inodes
     journal          (journalled configs) ring of record blocks
     data             extents live here
   Inode (64 bytes):
     0      flags: bit0 used, bit1 directory
     4..7   size (LE32)
     8..55  six extents of (start LE32, len LE32), block numbers relative
            to data_start
   Directory data: a sequence of entries
     [2B total entry length][4B inode][2B name length][name bytes]
   terminated by a zero entry length. *)

let block_size = 512
let inode_size = 64
let max_extents = 6
let magic = "EXT1"

type config = {
  cfg_format : string;
  cfg_max_name : int;
  cfg_case_sensitive : bool;
  cfg_journalled : bool;
}

type geom = {
  start : int;
  total : int;
  bitmap_start : int;
  bitmap_blocks : int;
  itable_start : int;
  itable_blocks : int;
  inodes : int;
  journal_start : int;
  journal_blocks : int;
  data_start : int;
  data_blocks : int;
}

type t = {
  cache : Block_cache.t;
  cfg : config;
  g : geom;
  journal : Journal.t option;  (* Some iff the config is journalled *)
  (* Transaction overlay: while an operation is open, mutated blocks are
     buffered here instead of the cache, so nothing (not even an
     eviction) can reach the disk before the journal commit.  On success
     the overlay is journalled, then applied to the cache; on error it
     is simply dropped — operation-level rollback. *)
  mutable txn : (int * bytes) list option;  (* newest first *)
}

(* journal write counters per cache, for observability *)
let journal_counters : (Block_cache.t * int ref) list ref = ref []

let journal_counter cache =
  match List.find_opt (fun (c, _) -> c == cache) !journal_counters with
  | Some (_, r) -> r
  | None ->
      let r = ref 0 in
      journal_counters := (cache, r) :: !journal_counters;
      r

let journal_writes cache = !(journal_counter cache)

(* last recovery scan per cache, for observability *)
let recoveries : (Block_cache.t * Journal.recovery) list ref = ref []

let set_recovery cache rv =
  recoveries :=
    (cache, rv) :: List.filter (fun (c, _) -> c != cache) !recoveries

let last_recovery cache =
  Option.map snd (List.find_opt (fun (c, _) -> c == cache) !recoveries)

let get16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set16 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff))

let get32 b off = get16 b off lor (get16 b (off + 2) lsl 16)

let set32 b off v =
  set16 b off (v land 0xffff);
  set16 b (off + 2) ((v lsr 16) land 0xffff)

(* --- geometry ----------------------------------------------------------- *)

let geom_of cfg ~start ~blocks ~inodes =
  let bitmap_blocks = (blocks + (block_size * 8) - 1) / (block_size * 8) in
  let itable_blocks = (inodes * inode_size + block_size - 1) / block_size in
  let journal_blocks = if cfg.cfg_journalled then 64 else 0 in
  let data_start = 1 + bitmap_blocks + itable_blocks + journal_blocks in
  {
    start;
    total = blocks;
    bitmap_start = 1;
    bitmap_blocks;
    itable_start = 1 + bitmap_blocks;
    itable_blocks;
    inodes;
    journal_start = 1 + bitmap_blocks + itable_blocks;
    journal_blocks;
    data_start;
    data_blocks = blocks - data_start;
  }

(* --- block access through the transaction overlay ----------------------- *)

let cache_read t block =
  match t.txn with
  | Some ov -> (
      match List.assoc_opt block ov with
      | Some d -> Bytes.copy d
      | None -> Block_cache.read t.cache block)
  | None -> Block_cache.read t.cache block

let cache_write t block data =
  match t.txn with
  | Some ov ->
      t.txn <- Some ((block, Bytes.copy data) :: List.remove_assoc block ov)
  | None -> Block_cache.write t.cache block data

let meta_write t block data = cache_write t block data

(* Run one mutating operation as a journal transaction.  On [Ok] the
   overlay is committed (journal records + barrier, the durability
   point) and applied to the write-back cache; on [Error] or an
   exception the overlay is discarded and the volume is untouched.
   Non-journalled configs run the operation directly. *)
let in_txn t f =
  match t.journal with
  | None -> f ()
  | Some _ when t.txn <> None -> f ()  (* nested: join the open txn *)
  | Some j -> (
      t.txn <- Some [];
      match f () with
      | exception e ->
          t.txn <- None;
          raise e
      | Error _ as r ->
          t.txn <- None;
          r
      | Ok _ as r ->
          let ov =
            match t.txn with Some o -> List.rev o | None -> []
          in
          t.txn <- None;
          if ov <> [] then begin
            Journal.commit j ov;
            List.iter (fun (b, d) -> Block_cache.write t.cache b d) ov
          end;
          r)

(* --- bitmap -------------------------------------------------------------- *)

let bitmap_locate t data_block =
  let bit = data_block in
  let block = t.g.start + t.g.bitmap_start + (bit / (block_size * 8)) in
  let byte = bit / 8 mod block_size in
  let mask = 1 lsl (bit mod 8) in
  (block, byte, mask)

let block_used t data_block =
  let block, byte, mask = bitmap_locate t data_block in
  let b = cache_read t block in
  Char.code (Bytes.get b byte) land mask <> 0

let set_block t data_block used =
  let block, byte, mask = bitmap_locate t data_block in
  let b = cache_read t block in
  let v = Char.code (Bytes.get b byte) in
  let v = if used then v lor mask else v land lnot mask in
  Bytes.set b byte (Char.chr (v land 0xff));
  meta_write t block b

(* first free data block at or after [from] *)
let find_free t ~from =
  let rec scan i =
    if i >= t.g.data_blocks then None
    else if not (block_used t i) then Some i
    else scan (i + 1)
  in
  match scan from with Some i -> Some i | None -> if from > 0 then scan 0 else None

(* --- inodes -------------------------------------------------------------- *)

type inode = {
  ino : int;
  mutable i_used : bool;
  mutable i_dir : bool;
  mutable i_size : int;
  mutable i_extents : (int * int) list;  (* (start, len), data-relative *)
}

let inode_location t ino =
  let byte = ino * inode_size in
  (t.g.start + t.g.itable_start + (byte / block_size), byte mod block_size)

let read_inode t ino =
  if ino < 0 || ino >= t.g.inodes then Error E_bad_handle
  else begin
    let block, off = inode_location t ino in
    let b = cache_read t block in
    let flags = get32 b off in
    let extents = ref [] in
    for i = max_extents - 1 downto 0 do
      let s = get32 b (off + 8 + (i * 8)) in
      let l = get32 b (off + 12 + (i * 8)) in
      if l > 0 then extents := (s, l) :: !extents
    done;
    Ok
      {
        ino;
        i_used = flags land 1 <> 0;
        i_dir = flags land 2 <> 0;
        i_size = get32 b (off + 4);
        i_extents = !extents;
      }
  end

let write_inode t (i : inode) =
  let block, off = inode_location t i.ino in
  let b = cache_read t block in
  set32 b off ((if i.i_used then 1 else 0) lor if i.i_dir then 2 else 0);
  set32 b (off + 4) i.i_size;
  List.iteri
    (fun idx (s, l) ->
      set32 b (off + 8 + (idx * 8)) s;
      set32 b (off + 12 + (idx * 8)) l)
    i.i_extents;
  for idx = List.length i.i_extents to max_extents - 1 do
    set32 b (off + 8 + (idx * 8)) 0;
    set32 b (off + 12 + (idx * 8)) 0
  done;
  meta_write t block b

let alloc_inode t ~dir =
  let rec scan ino =
    if ino >= t.g.inodes then Error E_no_space
    else
      match read_inode t ino with
      | Error e -> Error e
      | Ok i ->
          if not i.i_used then begin
            i.i_used <- true;
            i.i_dir <- dir;
            i.i_size <- 0;
            i.i_extents <- [];
            write_inode t i;
            Ok i
          end
          else scan (ino + 1)
  in
  scan 0

(* grow the inode by one data block; extends the last extent when the
   next block is adjacent, otherwise opens a new extent *)
let grow_one t (i : inode) =
  let from =
    match List.rev i.i_extents with (s, l) :: _ -> s + l | [] -> 0
  in
  match find_free t ~from with
  | None -> Error E_no_space
  | Some blk ->
      set_block t blk true;
      let rec extend = function
        | [] -> Some [ (blk, 1) ]
        | [ (s, l) ] when s + l = blk -> Some [ (s, l + 1) ]
        | [ last ] ->
            if List.length i.i_extents >= max_extents then None
            else Some [ last; (blk, 1) ]
        | e :: rest -> Option.map (fun r -> e :: r) (extend rest)
      in
      (match extend i.i_extents with
      | None ->
          set_block t blk false;
          Error E_no_space  (* extent table exhausted: fragmentation *)
      | Some extents ->
          i.i_extents <- extents;
          write_inode t i;
          Ok ())

let nth_block t (i : inode) n =
  let rec walk n = function
    | [] -> None
    | (s, l) :: rest -> if n < l then Some (s + n) else walk (n - l) rest
  in
  Option.map (fun d -> t.g.start + t.g.data_start + d) (walk n i.i_extents)

let blocks_held (i : inode) =
  List.fold_left (fun acc (_, l) -> acc + l) 0 i.i_extents

let free_inode t (i : inode) =
  List.iter
    (fun (s, l) ->
      for b = s to s + l - 1 do
        set_block t b false
      done)
    i.i_extents;
  i.i_used <- false;
  i.i_dir <- false;
  i.i_size <- 0;
  i.i_extents <- [];
  write_inode t i

(* --- file data ----------------------------------------------------------- *)

let read_data t (i : inode) ~off ~len =
  let len = max 0 (min len (i.i_size - off)) in
  let out = Bytes.make len '\000' in
  let rec copy pos =
    if pos < len then begin
      let fpos = off + pos in
      match nth_block t i (fpos / block_size) with
      | None -> ()  (* hole *)
      | Some block ->
          let b = cache_read t block in
          let boff = fpos mod block_size in
          let n = min (block_size - boff) (len - pos) in
          Bytes.blit b boff out pos n;
          copy (pos + n)
    end
  in
  copy 0;
  out

(* Zero-copy read: land whole blocks in cache pool pages so the file
   server can COW-remap them into the client instead of copying the
   bytes through the reply message.  The data still comes back as bytes
   (the simulation's ground truth); the pool pages carry the cost. *)
let read_paged t (i : inode) ~off ~len =
  let page_size = Mach.Ktypes.page_size in
  let len = max 0 (min len (i.i_size - off)) in
  if len = 0 || off mod block_size <> 0 then None
  else begin
    let pages = (len + page_size - 1) / page_size in
    match Block_cache.pool_acquire t.cache ~pages ~pin:true with
    | None -> None  (* pool unmapped or exhausted: copy path *)
    | Some base ->
        let out = Bytes.make len '\000' in
        let rec fill pos =
          if pos < len then begin
            let fpos = off + pos in
            (match nth_block t i (fpos / block_size) with
            | None -> ()  (* hole: the pool page is already zero *)
            | Some block ->
                let b = Block_cache.pool_fill t.cache ~dst:(base + pos) block in
                Bytes.blit b 0 out pos (min block_size (len - pos)));
            fill (pos + block_size)
          end
        in
        fill 0;
        Some (base, pages * page_size, out)
  end

let write_data t (i : inode) ~off data =
  let len = Bytes.length data in
  let needed = (off + len + block_size - 1) / block_size in
  let rec ensure () =
    if blocks_held i >= needed then Ok ()
    else
      match grow_one t i with Ok () -> ensure () | Error e -> Error e
  in
  let* () = ensure () in
  let rec copy pos =
    if pos < len then begin
      let fpos = off + pos in
      match nth_block t i (fpos / block_size) with
      | None -> assert false
      | Some block ->
          let boff = fpos mod block_size in
          let n = min (block_size - boff) (len - pos) in
          let b =
            if n = block_size then Bytes.make block_size '\000'
            else cache_read t block
          in
          Bytes.blit data pos b boff n;
          cache_write t block b;
          copy (pos + n)
    end
  in
  copy 0;
  if off + len > i.i_size then begin
    i.i_size <- off + len;
    write_inode t i
  end;
  Ok len

(* --- directories ---------------------------------------------------------- *)

let canon t name =
  if t.cfg.cfg_case_sensitive then name else String.lowercase_ascii name

let valid_name t name =
  if name = "" || String.contains name '/' || String.contains name '\000' then
    Error E_bad_name
  else if String.length name > t.cfg.cfg_max_name then Error E_name_too_long
  else Ok name

let dir_entries t (i : inode) =
  let data = read_data t i ~off:0 ~len:i.i_size in
  let rec parse off acc =
    if off + 8 > Bytes.length data then List.rev acc
    else
      let total = get16 data off in
      if total = 0 then List.rev acc
      else
        let ino = get32 data (off + 2) in
        let nlen = get16 data (off + 6) in
        let name = Bytes.sub_string data (off + 8) nlen in
        parse (off + total) ((name, ino) :: acc)
  in
  parse 0 []

let write_entries t (i : inode) entries =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, ino) ->
      let nlen = String.length name in
      let total = 8 + nlen in
      let b = Bytes.make total '\000' in
      set16 b 0 total;
      set32 b 2 ino;
      set16 b 6 nlen;
      Bytes.blit_string name 0 b 8 nlen;
      Buffer.add_bytes buf b)
    entries;
  Buffer.add_string buf "\000\000\000\000\000\000\000\000";
  let data = Buffer.to_bytes buf in
  let* (_ : int) = write_data t i ~off:0 data in
  i.i_size <- Bytes.length data;
  write_inode t i;
  Ok ()

let find_in_dir t (i : inode) name =
  let cname = canon t name in
  List.find_opt (fun (n, _) -> canon t n = cname) (dir_entries t i)

(* --- fsck ----------------------------------------------------------------- *)

(* Full invariant scan of the volume, trusting nothing: extent ranges,
   cross-links, bitmap-vs-extents agreement, strict directory-entry
   parsing, dangling and duplicate entries, reference counts, and sizes
   against held blocks.  Every violation is one human-readable finding;
   a consistent volume yields none. *)
let fsck_scan t =
  let findings = ref [] in
  let add fmt = Printf.ksprintf (fun s -> findings := s :: !findings) fmt in
  let sb = cache_read t t.g.start in
  if Bytes.sub_string sb 0 4 <> magic then add "superblock: bad magic";
  let claims = Array.make t.g.data_blocks 0 in
  let inodes = Array.make t.g.inodes None in
  for ino = 0 to t.g.inodes - 1 do
    match read_inode t ino with
    | Error _ -> add "inode %d: unreadable" ino
    | Ok i ->
        if i.i_used then begin
          inodes.(ino) <- Some i;
          List.iter
            (fun (s, l) ->
              if s < 0 || l <= 0 || s + l > t.g.data_blocks then
                add "inode %d: extent (%d,%d) out of range" ino s l
              else
                for b = s to s + l - 1 do
                  claims.(b) <- claims.(b) + 1
                done)
            i.i_extents;
          if i.i_size < 0 || i.i_size > blocks_held i * block_size then
            add "inode %d: size %d exceeds %d held bytes" ino i.i_size
              (blocks_held i * block_size)
        end
  done;
  Array.iteri
    (fun b c -> if c > 1 then add "block %d: cross-linked (%d claims)" b c)
    claims;
  (* bitmap vs extents, one bitmap block at a time *)
  for bb = 0 to t.g.bitmap_blocks - 1 do
    let b = cache_read t (t.g.start + t.g.bitmap_start + bb) in
    for byte = 0 to block_size - 1 do
      let v = Char.code (Bytes.get b byte) in
      for bit = 0 to 7 do
        let db = (bb * block_size * 8) + (byte * 8) + bit in
        if db < t.g.data_blocks then begin
          let used = v land (1 lsl bit) <> 0 in
          if used && claims.(db) = 0 then
            add "block %d: allocated but unreferenced" db
          else if (not used) && claims.(db) > 0 then
            add "block %d: in use but free in bitmap" db
        end
      done
    done
  done;
  (* directory walk from the root, with strict entry parsing *)
  let refs = Array.make t.g.inodes 0 in
  let visited = Array.make t.g.inodes false in
  let rec walk ino =
    if not visited.(ino) then begin
      visited.(ino) <- true;
      match inodes.(ino) with
      | Some i when i.i_dir ->
          let data = read_data t i ~off:0 ~len:i.i_size in
          let seen = Hashtbl.create 8 in
          let rec parse off =
            if off + 8 > Bytes.length data then ()
            else
              let total = get16 data off in
              if total = 0 then ()
              else if total < 8 || off + total > Bytes.length data then
                add "dir %d: torn entry at offset %d" ino off
              else begin
                let e_ino = get32 data (off + 2) in
                let nlen = get16 data (off + 6) in
                if nlen <> total - 8 || nlen = 0 then
                  add "dir %d: malformed entry at offset %d" ino off
                else begin
                  let name = Bytes.sub_string data (off + 8) nlen in
                  (match valid_name t name with
                  | Error _ -> add "dir %d: invalid name %S" ino name
                  | Ok _ -> ());
                  let cname = canon t name in
                  if Hashtbl.mem seen cname then
                    add "dir %d: duplicate entry %S" ino name
                  else Hashtbl.add seen cname ();
                  if e_ino < 0 || e_ino >= t.g.inodes || inodes.(e_ino) = None
                  then add "dir %d: entry %S references free inode %d" ino name e_ino
                  else begin
                    refs.(e_ino) <- refs.(e_ino) + 1;
                    match inodes.(e_ino) with
                    | Some c when c.i_dir -> walk e_ino
                    | _ -> ()
                  end
                end;
                parse (off + total)
              end
          in
          parse 0
      | Some _ | None -> ()
    end
  in
  (match inodes.(0) with
  | Some i when i.i_dir -> walk 0
  | _ -> add "root inode missing or not a directory");
  Array.iteri
    (fun ino u ->
      match u with
      | Some _ when ino <> 0 ->
          if refs.(ino) = 0 then
            add "inode %d: orphaned (no directory entry)" ino
          else if refs.(ino) > 1 then
            add "inode %d: referenced %d times" ino refs.(ino)
      | _ -> ())
    inodes;
  List.rev !findings

(* --- recovery ------------------------------------------------------------- *)

(* Supervised-restart recovery.  Journalled volumes drop the dead
   incarnation's cache entirely (the journal, not dirty memory, is the
   truth), replay, and scan; non-journalled volumes keep their cache —
   invalidating it would lose acknowledged writes that have no journal
   copy — and just reclaim the mapout pool before scanning. *)
let recover t =
  match t.journal with
  | None ->
      Block_cache.pool_reset t.cache;
      {
        rr_journal_txns = 0;
        rr_journal_blocks = 0;
        rr_fsck_findings = fsck_scan t;
      }
  | Some j ->
      Block_cache.invalidate t.cache;
      let rv = Journal.recover j in
      set_recovery t.cache rv;
      {
        rr_journal_txns = rv.Journal.rv_replayed_txns;
        rr_journal_blocks = rv.Journal.rv_replayed_blocks;
        rr_fsck_findings = fsck_scan t;
      }

(* --- mkfs / mount ---------------------------------------------------------- *)

let default_blocks = 8192
let default_inodes = 512

let mkfs disk cfg ?(start = 0) ?(blocks = default_blocks)
    ?(inodes = default_inodes) () =
  let g = geom_of cfg ~start ~blocks ~inodes in
  let sb = Bytes.make block_size '\000' in
  Bytes.blit_string magic 0 sb 0 4;
  set32 sb 4 blocks;
  set32 sb 8 inodes;
  Machine.Disk.write_now disk ~block:start sb;
  let zero = Bytes.make block_size '\000' in
  for b = 1 to g.data_start - 1 do
    Machine.Disk.write_now disk ~block:(start + b) zero
  done;
  (* inode 0: the root directory, initially empty *)
  let root = Bytes.make block_size '\000' in
  set32 root 0 3;  (* used + dir *)
  Machine.Disk.write_now disk ~block:(start + g.itable_start) root

let ensure_inode t ino ~want_dir =
  let* i = read_inode t ino in
  if not i.i_used then Error E_bad_handle
  else
    match want_dir with
    | Some true when not i.i_dir -> Error E_not_dir
    | Some false when i.i_dir -> Error E_is_dir
    | Some _ | None -> Ok i

(* Register the operation vector.  The mutating entries are written as
   plain un-journalled bodies: [vop_compile] wraps each of them in the
   transaction hook below, so journaling lives at the VOP layer rather
   than inside every operation. *)
let ops t =
  let root = 0 in
  let limits =
    {
      fl_format = t.cfg.cfg_format;
      fl_max_name = t.cfg.cfg_max_name;
      fl_case_sensitive = t.cfg.cfg_case_sensitive;
      fl_preserves_case = true;
      fl_eight_dot_three = false;
      fl_journalled = t.cfg.cfg_journalled;
    }
  in
  vop_compile
    {
      (vop_null ~limits ~root) with
      vp_txn = Some { txn_run = (fun f -> in_txn t f) };
      vp_lookup =
        Some
          (fun ~dir name ->
            let* name = valid_name t name in
            let* d = ensure_inode t dir ~want_dir:(Some true) in
            match find_in_dir t d name with
            | Some (_, ino) -> Ok ino
            | None -> Error E_not_found);
      vp_create =
        Some
          (fun ~dir name ~is_dir ->
            let* name = valid_name t name in
            let* d = ensure_inode t dir ~want_dir:(Some true) in
            match find_in_dir t d name with
            | Some _ -> Error E_exists
            | None ->
                let* i = alloc_inode t ~dir:is_dir in
                let* () =
                  write_entries t d (dir_entries t d @ [ (name, i.ino) ])
                in
                Ok i.ino);
      vp_remove =
        Some
          (fun ~dir name ->
            let* name = valid_name t name in
            let* d = ensure_inode t dir ~want_dir:(Some true) in
            match find_in_dir t d name with
            | None -> Error E_not_found
            | Some (ename, ino) ->
                let* i = ensure_inode t ino ~want_dir:None in
                let* () =
                  if i.i_dir && dir_entries t i <> [] then Error E_dir_not_empty
                  else Ok ()
                in
                free_inode t i;
                write_entries t d
                  (List.filter (fun (n, _) -> n <> ename) (dir_entries t d)));
      vp_readdir =
        Some
          (fun ~dir ->
            let* d = ensure_inode t dir ~want_dir:(Some true) in
            Ok (List.sort compare (List.map fst (dir_entries t d))));
      vp_stat =
        Some
          (fun ino ->
            let* i = ensure_inode t ino ~want_dir:None in
            Ok
              {
                st_id = ino;
                st_size = i.i_size;
                st_is_dir = i.i_dir;
                st_blocks = blocks_held i;
              });
      vp_read =
        Some
          (fun ino ~off ~len ->
            let* i = ensure_inode t ino ~want_dir:(Some false) in
            Ok (read_data t i ~off ~len));
      vp_map_pool = Some (fun task -> Block_cache.map_pool t.cache task);
      vp_read_paged =
        Some
          (fun ino ~off ~len ->
            let* i = ensure_inode t ino ~want_dir:(Some false) in
            Ok (read_paged t i ~off ~len));
      vp_release_paged =
        Some
          (fun ~addr ~bytes ->
            Block_cache.pool_release t.cache ~addr
              ~pages:(Mach.Ktypes.pages_of_bytes bytes));
      vp_write =
        Some
          (fun ino ~off data ->
            let* i = ensure_inode t ino ~want_dir:(Some false) in
            write_data t i ~off data);
      vp_truncate =
        Some
          (fun ino ~len ->
            let* i = ensure_inode t ino ~want_dir:(Some false) in
            if len > i.i_size then Error E_no_space
            else begin
              i.i_size <- len;
              write_inode t i;
              Ok ()
            end);
      vp_rename =
        Some
          (fun ~src_dir name ~dst_dir new_name ->
            let* name = valid_name t name in
            let* new_name = valid_name t new_name in
            let* sd = ensure_inode t src_dir ~want_dir:(Some true) in
            match find_in_dir t sd name with
            | None -> Error E_not_found
            | Some (ename, ino) ->
                let* dd = ensure_inode t dst_dir ~want_dir:(Some true) in
                (match find_in_dir t dd new_name with
                | Some _ -> Error E_exists
                | None ->
                    if src_dir = dst_dir then
                      write_entries t sd
                        (List.map
                           (fun (n, x) ->
                             if n = ename then (new_name, x) else (n, x))
                           (dir_entries t sd))
                    else
                      let* () =
                        write_entries t sd
                          (List.filter
                             (fun (n, _) -> n <> ename)
                             (dir_entries t sd))
                      in
                      write_entries t dd
                        (dir_entries t dd @ [ (new_name, ino) ])));
      vp_sync = Some (fun () -> Block_cache.flush t.cache);
      vp_free_blocks =
        Some
          (fun () ->
            let free = ref 0 in
            for b = 0 to t.g.data_blocks - 1 do
              if not (block_used t b) then incr free
            done;
            !free);
      vp_recover = Some (fun () -> recover t);
    }

let mount cache cfg ?(start = 0) () =
  let sb = Block_cache.read cache start in
  if Bytes.sub_string sb 0 4 <> magic then
    Error (E_io ("not a " ^ cfg.cfg_format ^ " volume"))
  else begin
    let blocks = get32 sb 4 in
    let inodes = get32 sb 8 in
    let g = geom_of cfg ~start ~blocks ~inodes in
    let journal =
      if cfg.cfg_journalled && g.journal_blocks > 0 then begin
        (* attaching runs recovery: committed-but-unapplied transactions
           from a previous incarnation replay into the cache before the
           first operation can observe the volume *)
        let j, rv =
          Journal.attach (Block_cache.kernel cache) (Block_cache.disk cache)
            ~start:(start + g.journal_start) ~blocks:g.journal_blocks
            ~note_write:(fun () -> incr (journal_counter cache))
            ~home_write:(fun b d -> Block_cache.write cache b d)
            ~flush_home:(fun () -> Block_cache.flush_wait cache)
        in
        set_recovery cache rv;
        Some j
      end
      else None
    in
    Ok (ops { cache; cfg; g; journal; txn = None })
  end

(* Standalone invariant scan for tools and the crash-point enumerator:
   mounts nothing, journals nothing, reads through the given cache. *)
let fsck cache cfg ?(start = 0) () =
  let sb = Block_cache.read cache start in
  if Bytes.sub_string sb 0 4 <> magic then [ "superblock: bad magic" ]
  else begin
    let blocks = get32 sb 4 in
    let inodes = get32 sb 8 in
    let g = geom_of cfg ~start ~blocks ~inodes in
    fsck_scan { cache; cfg; g; journal = None; txn = None }
  end
