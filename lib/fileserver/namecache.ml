(* Name cache: path-component lookup results keyed by (mount, parent
   directory, case-folded component), after DragonFly's namecache.  A
   positive entry short-circuits the per-format directory scan to one
   hash probe; a negative entry short-circuits repeated lookups of names
   that do not exist (the common "try each suffix" pattern).  Entries
   live on an intrusive LRU bounded by [capacity]; the VFS invalidates
   on create/unlink/rename and drops the whole cache on recovery.

   Pure host-side data structure: hit/miss accounting only, no simulated
   cost and no checker glue — the VFS charges the probe and feeds
   Machcheck. *)

type value = Pos of Fs_types.file_id | Neg

type entry = {
  e_mount : int;
  e_dir : Fs_types.file_id;
  e_name : string;
  e_value : value;
  mutable prev : entry;
  mutable next : entry;
}

type stats = {
  cs_capacity : int;
  cs_entries : int;
  cs_hits : int;
  cs_neg_hits : int;
  cs_misses : int;
  cs_insertions : int;
  cs_evictions : int;
  cs_invalidations : int;
}

type t = {
  capacity : int;
  tbl : (int * Fs_types.file_id * string, entry) Hashtbl.t;
  lru : entry;  (* sentinel: next = most recent, prev = least recent *)
  mutable hits : int;
  mutable neg_hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable on_evict : mount:int -> dir:Fs_types.file_id -> name:string -> unit;
}

let create ?(capacity = 512) () =
  let rec sentinel =
    { e_mount = -1; e_dir = -1; e_name = ""; e_value = Neg;
      prev = sentinel; next = sentinel }
  in
  {
    capacity = max 2 capacity;
    tbl = Hashtbl.create (2 * capacity);
    lru = sentinel;
    hits = 0;
    neg_hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    invalidations = 0;
    on_evict = (fun ~mount:_ ~dir:_ ~name:_ -> ());
  }

let set_on_evict t f = t.on_evict <- f

let unlink e =
  e.prev.next <- e.next;
  e.next.prev <- e.prev

let push_front t e =
  e.next <- t.lru.next;
  e.prev <- t.lru;
  t.lru.next.prev <- e;
  t.lru.next <- e

let find t ~mount ~dir ~name =
  match Hashtbl.find_opt t.tbl (mount, dir, name) with
  | Some e ->
      (match e.e_value with
      | Pos _ -> t.hits <- t.hits + 1
      | Neg -> t.neg_hits <- t.neg_hits + 1);
      unlink e;
      push_front t e;
      Some e.e_value
  | None ->
      t.misses <- t.misses + 1;
      None

let remove_entry t e =
  unlink e;
  Hashtbl.remove t.tbl (e.e_mount, e.e_dir, e.e_name)

let insert t ~mount ~dir ~name value =
  (match Hashtbl.find_opt t.tbl (mount, dir, name) with
  | Some old -> remove_entry t old
  | None -> ());
  if Hashtbl.length t.tbl >= t.capacity then begin
    let victim = t.lru.prev in
    if victim != t.lru then begin
      t.evictions <- t.evictions + 1;
      remove_entry t victim;
      t.on_evict ~mount:victim.e_mount ~dir:victim.e_dir ~name:victim.e_name
    end
  end;
  let e =
    { e_mount = mount; e_dir = dir; e_name = name; e_value = value;
      prev = t.lru; next = t.lru }
  in
  push_front t e;
  Hashtbl.replace t.tbl (mount, dir, name) e;
  t.insertions <- t.insertions + 1

let invalidate t ~mount ~dir ~name =
  match Hashtbl.find_opt t.tbl (mount, dir, name) with
  | Some e ->
      t.invalidations <- t.invalidations + 1;
      remove_entry t e
  | None -> ()

let clear t =
  let n = Hashtbl.length t.tbl in
  if n > 0 then begin
    t.invalidations <- t.invalidations + n;
    Hashtbl.reset t.tbl;
    t.lru.next <- t.lru;
    t.lru.prev <- t.lru
  end

let entries t = Hashtbl.length t.tbl

let stats t =
  {
    cs_capacity = t.capacity;
    cs_entries = Hashtbl.length t.tbl;
    cs_hits = t.hits;
    cs_neg_hits = t.neg_hits;
    cs_misses = t.misses;
    cs_insertions = t.insertions;
    cs_evictions = t.evictions;
    cs_invalidations = t.invalidations;
  }
