open Ktypes

type semaphore = {
  s_id : int;  (* process-unique: the wait-for graph's resource key *)
  s_name : string;
  mutable s_value : int;
  s_waiters : thread Queue.t;
}

type mutex = { m_sem : semaphore; mutable m_owner : thread option }
type event = { e_id : int; e_name : string; e_waiters : thread Queue.t }

let next_sync_id = ref 0

let fresh_sync_id () =
  incr next_sync_id;
  !next_sync_id

let sem_res s = "sem:" ^ string_of_int s.s_id
let evt_res e = "evt:" ^ string_of_int e.e_id

let trap_around (sys : Sched.t) inner =
  let th = Sched.self () in
  let frame = th.stack_base in
  let k = sys.ktext in
  Ktext.exec_in k th.t_task.text ~offset:0x100 ~bytes:144;
  Ktext.exec k ~frame [ Ktext.trap_entry k; Ktext.syscall_dispatch k ];
  let r = inner th frame in
  Ktext.exec k ~frame [ Ktext.trap_exit k ];
  r

let wake_one (sys : Sched.t) q =
  let rec loop () =
    match Queue.take_opt q with
    | None -> false
    | Some th -> (
        match th.state with
        | Th_blocked _ ->
            Sched.wake sys th;
            true
        | Th_runnable | Th_running | Th_terminated -> loop ())
  in
  loop ()

let semaphore_create (sys : Sched.t) ~name ~value =
  Ktext.exec sys.ktext [ Ktext.sync_fast sys.ktext ];
  { s_id = fresh_sync_id (); s_name = name; s_value = value;
    s_waiters = Queue.create () }

let semaphore_wait (sys : Sched.t) s =
  trap_around sys (fun th frame ->
      let k = sys.ktext in
      Ktext.exec k ~frame [ Ktext.sync_fast k ];
      let rec wait () =
        if s.s_value > 0 then begin
          s.s_value <- s.s_value - 1;
          Kern_success
        end
        else begin
          Ktext.exec k ~frame [ Ktext.sync_block k ];
          Queue.add th s.s_waiters;
          Mcheck.block_on sys th ~res:(sem_res s)
            ~rdesc:("sem(" ^ s.s_name ^ ")") ~holders:[];
          let r = Sched.block ("sem-wait:" ^ s.s_name) in
          Mcheck.unblock sys th;
          match r with Kern_success -> wait () | err -> err
        end
      in
      wait ())

let semaphore_wait_timeout (sys : Sched.t) s ~timeout =
  trap_around sys (fun th frame ->
      let k = sys.ktext in
      Ktext.exec k ~frame [ Ktext.sync_fast k ];
      if s.s_value > 0 then begin
        s.s_value <- s.s_value - 1;
        Kern_success
      end
      else begin
        let settled = ref false in
        Machine.Event_queue.schedule sys.machine.Machine.events
          ~at:(Machine.now sys.machine + max 1 timeout)
          (fun () ->
            if not !settled then begin
              Ktext.exec sys.ktext
                [ Ktext.irq_entry sys.ktext; Ktext.timer_service sys.ktext ];
              Sched.wake sys ~result:Kern_timed_out th
            end);
        let rec wait () =
          if s.s_value > 0 then begin
            s.s_value <- s.s_value - 1;
            settled := true;
            Kern_success
          end
          else begin
            Ktext.exec k ~frame [ Ktext.sync_block k ];
            Queue.add th s.s_waiters;
            Mcheck.block_on sys th ~res:(sem_res s)
              ~rdesc:("sem(" ^ s.s_name ^ ")") ~holders:[];
            let r = Sched.block ("sem-wait-deadline:" ^ s.s_name) in
            Mcheck.unblock sys th;
            match r with
            | Kern_success -> wait ()
            | err ->
                settled := true;
                err
          end
        in
        wait ()
      end)

let semaphore_signal (sys : Sched.t) s =
  trap_around sys (fun _th frame ->
      let k = sys.ktext in
      Ktext.exec k ~frame [ Ktext.sync_fast k ];
      s.s_value <- s.s_value + 1;
      ignore (wake_one sys s.s_waiters : bool))

let semaphore_value s = s.s_value
let semaphore_waiters s = Queue.length s.s_waiters

let mutex_create sys ~name =
  { m_sem = semaphore_create sys ~name ~value:1; m_owner = None }

let mutex_lock (sys : Sched.t) m =
  let r = semaphore_wait sys m.m_sem in
  if r = Kern_success then begin
    let th = Sched.self () in
    m.m_owner <- Some th;
    Mcheck.acquired sys th ~res:(sem_res m.m_sem)
  end;
  r

(* Wrong-holder unlocks raise *before* any state changes: the owner edge
   in the wait-for graph stays with the true holder, and the semaphore
   is not signalled on behalf of a thread that never held it. *)
let mutex_unlock (sys : Sched.t) m =
  let th = Sched.self () in
  (match m.m_owner with
  | Some owner when owner.tid = th.tid ->
      m.m_owner <- None;
      Mcheck.released sys ~res:(sem_res m.m_sem)
  | Some _ | None -> raise (Kern_error Kern_invalid_argument));
  semaphore_signal sys m.m_sem

let mutex_locked m = Option.is_some m.m_owner

let event_create (sys : Sched.t) ~name =
  Ktext.exec sys.ktext [ Ktext.sync_fast sys.ktext ];
  { e_id = fresh_sync_id (); e_name = name; e_waiters = Queue.create () }

let event_wait (sys : Sched.t) e =
  trap_around sys (fun th frame ->
      Ktext.exec sys.ktext ~frame [ Ktext.sync_block sys.ktext ];
      Queue.add th e.e_waiters;
      Mcheck.block_on sys th ~res:(evt_res e)
        ~rdesc:("event(" ^ e.e_name ^ ")") ~holders:[];
      let r = Sched.block ("event-wait:" ^ e.e_name) in
      Mcheck.unblock sys th;
      r)

let event_signal (sys : Sched.t) e =
  trap_around sys (fun _th frame ->
      Ktext.exec sys.ktext ~frame [ Ktext.sync_fast sys.ktext ];
      ignore (wake_one sys e.e_waiters : bool))

let event_broadcast (sys : Sched.t) e =
  trap_around sys (fun _th frame ->
      Ktext.exec sys.ktext ~frame [ Ktext.sync_fast sys.ktext ];
      while wake_one sys e.e_waiters do
        ()
      done)

let event_waiters e = Queue.length e.e_waiters

let uncontended_cost (sys : Sched.t) =
  Ktext.exec sys.ktext [ Ktext.sync_fast sys.ktext ]
