(** Threads, tasks and the scheduler.

    Simulated threads are OCaml-5 effect-based coroutines: a thread body
    performs {!block} / {!yield} effects at kernel interaction points and
    the scheduler resumes it later.  Every dispatch of a different thread
    charges the scheduler-pick and context-switch chunks; crossing an
    address space additionally charges the pmap switch and flushes the
    TLB — the costs at the heart of the paper's evaluation.

    On a multi-CPU machine ([Config.ncpus] > 1) every CPU owns a run
    queue and a message queue, after DragonFly BSD's LWKT design: only
    the owning CPU mutates a thread's scheduling state, and cross-CPU
    wakeups, migrations and teardowns travel as asynchronous messages
    delivered when the target CPU next dispatches (one IPI per
    empty->nonempty queue transition).  The simulation interleaves CPUs
    conservatively: the runnable CPU furthest behind in simulated time
    dispatches next, and an idle CPU that is strictly behind steals the
    newest unbound thread from the most loaded queue.  With one CPU all
    of this machinery is inert and the scheduler behaves — cycle for
    cycle — like the original uniprocessor one.

    The [t] value is the kernel's core state: per-CPU queues, id
    counters, task list, the virtual-address arena and the physical page
    pool used by {!Vm}. *)

open Ktypes

(** Cross-CPU scheduler message (exposed for tests/diagnosis). *)
type xmsg =
  | X_wake of { xth : thread; xresult : kern_return; sent_at : float }
  | X_migrate of { xth : thread; sent_at : float }
  | X_teardown of { xtid : int; sent_at : float }

type percpu = {
  pc_id : int;
  pc_runq : thread Queue.t;
  pc_ipiq : xmsg Queue.t;
  mutable pc_last : thread option;  (* last thread dispatched here *)
  mutable pc_switches : int;
  mutable pc_steals : int;  (* threads this CPU stole while idle *)
  mutable pc_xmsgs : int;  (* cross-CPU messages processed here *)
}

type t = {
  machine : Machine.t;
  ktext : Ktext.t;
  percpu : percpu array;
  mutable active : int;  (* CPU currently dispatching; 0 on a uniprocessor *)
  mutable current : thread option;
  mutable next_task_id : int;
  mutable next_thread_id : int;
  mutable next_port_id : int;
  mutable next_obj_id : int;
  mutable next_map_id : int;
  mutable tasks : task list;
  mutable vnext : int;  (* next free virtual address *)
  mutable page_limit : int;  (* physical frames available for paging *)
  mutable pages_resident : int;
  resident_fifo : (vm_object * int) Queue.t;
  mutable default_backing : backing_store option;
  mutable switches : int;
  mutable charge_switches : bool;
  mutable fault_count : int;
  mutable pagein_count : int;
  mutable pageout_count : int;
  mutable reply_cache_hits : int;  (* Ipc.call reused the cached port *)
  mutable reply_cache_misses : int;  (* Ipc.call had to allocate one *)
  mutable faults : Fault.t option;  (* fault-injection plan, None = off *)
  mutable retry_attempts : int;  (* re-issues performed by call_retry *)
  mutable checks : Check.t option;  (* Machcheck attachment, None = off *)
  mutable check_space : int;  (* this boot's id space at the checker *)
}

val create : Machine.t -> Ktext.t -> t
(** If a checker is globally installed ([Check.install]), the new system
    attaches itself to it; otherwise checking is off and every hook costs
    one [None] match.  One [percpu] slot is built per machine CPU. *)

val ncpus : t -> int

val enable_checks : t -> Check.t -> unit
(** Attach Machcheck to an already-booted system: registers a fresh id
    space for the scheduler's rights/deadlock events and attaches the
    buffer sanitizer to the kernel text's free list. *)

val task_create :
  t -> name:string -> ?personality:string -> ?text_bytes:int ->
  ?data_bytes:int -> unit -> task
(** Allocate a task: an address map, a port space, a text region and a
    data (stack) region. *)

val task_halt : t -> task -> unit
(** Terminate every thread of the task and mark it halted. *)

val thread_spawn :
  t -> task -> name:string -> ?affinity:int -> ?bound:bool ->
  (unit -> unit) -> thread
(** Create a runnable thread executing the body.  [affinity] homes it on
    that CPU's run queue (default: the CPU the creator is running on);
    [bound] pins it there — a bound thread is never stolen or migrated. *)

val self : unit -> thread
(** Current thread; must be called from inside a thread body.
    @raise Failure outside thread context. *)

val block : string -> kern_return
(** Block the calling thread; returns the [wake_result] set by the waker
    ([Kern_success] by default, [Kern_timed_out] for timer wakeups). *)

val yield : unit -> unit

val wake : t -> ?result:kern_return -> thread -> unit
(** Make a blocked thread runnable.  When the waker runs on the thread's
    owning CPU this is a plain enqueue; otherwise it posts an [X_wake]
    message (plus an IPI if the target's queue was empty) and the owning
    CPU flips the thread runnable at its next dispatch.  No-op for
    running/terminated threads. *)

val migrate : t -> thread -> cpu:int -> unit
(** Re-home a thread on another CPU.  Runnable threads leave their old
    queue immediately and arrive by [X_migrate] message; blocked and
    running threads simply change affinity (taking effect at the next
    wake or reschedule point).  Bound threads never move. *)

val enqueue_waiter : thread -> thread Queue.t -> unit
(** Add the thread to a wait queue unless it is already present — a
    spuriously woken waiter (timeout, fault injection) may still be
    queued, and duplicating it would distort queue accounting. *)

val dequeue_waiter : thread -> thread Queue.t -> unit
(** Remove every entry for the thread from a wait queue (used when a
    blocked operation gives up, so a later wake cannot target it). *)

val terminate : t -> thread -> unit
(** Kill a thread.  Killing a thread homed on another CPU additionally
    posts an [X_teardown] message so the owning CPU pays the reap cost. *)

val run : t -> unit
(** Drive the system: dispatch runnable threads (across every CPU); when
    none are runnable and no messages are in flight, advance the machine
    clock to the next device event; stop when neither threads nor events
    remain. *)

val run_until : t -> (unit -> bool) -> bool
(** Like {!run} but stops early once the predicate holds between
    dispatches; returns whether the predicate held. *)

val alive_threads : t -> int

val total_steals : t -> int
(** Work-stealing grabs performed by idle CPUs, summed over CPUs. *)

val total_xmsgs : t -> int
(** Cross-CPU scheduler messages processed, summed over CPUs. *)

val virtual_alloc : t -> bytes:int -> int
(** Carve a range from the global virtual arena (all address spaces share
    one arena so that coerced memory naturally has one address). *)

val with_uncharged : t -> (unit -> 'a) -> 'a
(** Run a setup action with context-switch charging disabled (boot-time
    plumbing that should not perturb measurements). *)
