(** Threads, tasks and the scheduler.

    Simulated threads are OCaml-5 effect-based coroutines: a thread body
    performs {!block} / {!yield} effects at kernel interaction points and
    the scheduler resumes it later.  Every dispatch of a different thread
    charges the scheduler-pick and context-switch chunks; crossing an
    address space additionally charges the pmap switch and flushes the
    TLB — the costs at the heart of the paper's evaluation.

    The [t] value is the kernel's core state: run queue, id counters,
    task list, the virtual-address arena and the physical page pool used
    by {!Vm}. *)

open Ktypes

type t = {
  machine : Machine.t;
  ktext : Ktext.t;
  runq : thread Queue.t;
  mutable current : thread option;
  mutable last_dispatched : thread option;
  mutable next_task_id : int;
  mutable next_thread_id : int;
  mutable next_port_id : int;
  mutable next_obj_id : int;
  mutable next_map_id : int;
  mutable tasks : task list;
  mutable vnext : int;  (* next free virtual address *)
  mutable page_limit : int;  (* physical frames available for paging *)
  mutable pages_resident : int;
  resident_fifo : (vm_object * int) Queue.t;
  mutable default_backing : backing_store option;
  mutable switches : int;
  mutable charge_switches : bool;
  mutable fault_count : int;
  mutable pagein_count : int;
  mutable pageout_count : int;
  mutable reply_cache_hits : int;  (* Ipc.call reused the cached port *)
  mutable reply_cache_misses : int;  (* Ipc.call had to allocate one *)
  mutable faults : Fault.t option;  (* fault-injection plan, None = off *)
  mutable retry_attempts : int;  (* re-issues performed by call_retry *)
  mutable checks : Check.t option;  (* Machcheck attachment, None = off *)
  mutable check_space : int;  (* this boot's id space at the checker *)
}

val create : Machine.t -> Ktext.t -> t
(** If a checker is globally installed ([Check.install]), the new system
    attaches itself to it; otherwise checking is off and every hook costs
    one [None] match. *)

val enable_checks : t -> Check.t -> unit
(** Attach Machcheck to an already-booted system: registers a fresh id
    space for the scheduler's rights/deadlock events and attaches the
    buffer sanitizer to the kernel text's free list. *)

val task_create :
  t -> name:string -> ?personality:string -> ?text_bytes:int ->
  ?data_bytes:int -> unit -> task
(** Allocate a task: an address map, a port space, a text region and a
    data (stack) region. *)

val task_halt : t -> task -> unit
(** Terminate every thread of the task and mark it halted. *)

val thread_spawn : t -> task -> name:string -> (unit -> unit) -> thread
(** Create a runnable thread executing the body. *)

val self : unit -> thread
(** Current thread; must be called from inside a thread body.
    @raise Failure outside thread context. *)

val block : string -> kern_return
(** Block the calling thread; returns the [wake_result] set by the waker
    ([Kern_success] by default, [Kern_timed_out] for timer wakeups). *)

val yield : unit -> unit

val wake : t -> ?result:kern_return -> thread -> unit
(** Make a blocked thread runnable.  No-op for running/terminated
    threads. *)

val enqueue_waiter : thread -> thread Queue.t -> unit
(** Add the thread to a wait queue unless it is already present — a
    spuriously woken waiter (timeout, fault injection) may still be
    queued, and duplicating it would distort queue accounting. *)

val dequeue_waiter : thread -> thread Queue.t -> unit
(** Remove every entry for the thread from a wait queue (used when a
    blocked operation gives up, so a later wake cannot target it). *)

val terminate : t -> thread -> unit

val run : t -> unit
(** Drive the system: dispatch runnable threads; when none are runnable,
    advance the machine clock to the next device event; stop when neither
    threads nor events remain. *)

val run_until : t -> (unit -> bool) -> bool
(** Like {!run} but stops early once the predicate holds between
    dispatches; returns whether the predicate held. *)

val alive_threads : t -> int
val virtual_alloc : t -> bytes:int -> int
(** Carve a range from the global virtual arena (all address spaces share
    one arena so that coerced memory naturally has one address). *)

val with_uncharged : t -> (unit -> 'a) -> 'a
(** Run a setup action with context-switch charging disabled (boot-time
    plumbing that should not perturb measurements). *)
