(** The IBM Microkernel: Mach 3.0 facilities plus the additions the paper
    describes (RPC rework, synchronizers, clocks and timers, I/O support,
    coerced memory), executing against the {!Machine} cost model. *)

module Ktypes = Ktypes
module Ktext = Ktext
module Backoff = Backoff
module Fault = Fault
module Health = Health
module Check = Check
module Mcheck = Mcheck
module Sched = Sched
module Port = Port
module Vm = Vm
module Ipc = Ipc
module Rpc = Rpc
module Sync = Sync
module Clock = Clock
module Io = Io
module Host = Host
module Trap = Trap
module Kernel = Kernel
