(** Health traps: per-server progress state for heartbeat monitoring.

    A supervised server exposes a {!beat} — stamped by its RPC serve
    loop ([Rpc.serve ~beat]) — and a dedicated health port whose thread
    answers {!H_ping} with {!H_pong} straight from the beat.  The
    supervisor's deadline-bounded ping then distinguishes the three
    failure shapes: a dead port (crash — the dead-name watch fires), a
    ping timeout (whole task wedged), and a pong whose [hp_busy_since]
    is stale (main loop wedged mid-request: the per-request watchdog). *)

open Ktypes

type beat = {
  mutable hb_served : int;
  mutable hb_busy_since : int;  (* -1 when idle *)
}

val beat : unit -> beat

type payload +=
  | H_ping
  | H_pong of { hp_served : int; hp_busy_since : int }

val op_ping : int

val ping_msg : unit -> message_builder

val handler : beat -> message -> message_builder
(** The heartbeat handler a health thread serves — answers from the beat
    without ever blocking ([@machlint.no_block]). *)
