open Ktypes

let null_backing =
  {
    bs_name = "null";
    bs_page_in = (fun _ _ k -> k ());
    bs_page_out = (fun _ _ k -> k ());
  }

let set_default_backing (sys : Sched.t) bs = sys.default_backing <- Some bs

let object_create (sys : Sched.t) ?backing ?(tag = "anon") ~bytes () =
  let obj =
    {
      obj_id = sys.next_obj_id;
      obj_size = pages_of_bytes bytes * page_size;
      obj_pages = Hashtbl.create 8;
      obj_backing = backing;
      obj_shadow_of = None;
      obj_tag = tag;
      obj_unmap_hook = None;
    }
  in
  sys.next_obj_id <- sys.next_obj_id + 1;
  obj

let find_entry map addr =
  List.find_opt
    (fun e -> addr >= e.ent_start && addr < e.ent_start + e.ent_size)
    map.entries

let overlaps_entry map start size =
  List.exists
    (fun e -> start < e.ent_start + e.ent_size && e.ent_start < start + size)
    map.entries

let insert_entry (sys : Sched.t) map entry =
  Ktext.exec sys.ktext [ Ktext.vm_map_enter sys.ktext ];
  map.entries <-
    List.sort (fun a b -> compare a.ent_start b.ent_start) (entry :: map.entries)

let get_page obj idx =
  match Hashtbl.find_opt obj.obj_pages idx with
  | Some p -> p
  | None ->
      let p =
        { pg_resident = false; pg_dirty = false; pg_wired = false;
          pg_written_back = false; pg_stamp = 0 }
      in
      Hashtbl.replace obj.obj_pages idx p;
      p

(* The object that actually owns page [idx]: walk the shadow chain to
   the first object holding a private copy (or the chain's bottom).
   Remap re-shares lengthen chains only across sender write epochs, so
   walks stay short. *)
let rec chain_owner obj idx =
  if Hashtbl.mem obj.obj_pages idx then obj
  else match obj.obj_shadow_of with
    | Some src -> chain_owner src idx
    | None -> obj

let backing_of (sys : Sched.t) obj =
  match obj.obj_backing with Some bs -> Some bs | None -> sys.default_backing

(* Evict one page to make room: FIFO scan for a resident, unwired page.
   Dirty pages go out through the pager asynchronously (the disk queue
   delays subsequent page-ins, which is how thrashing hurts). *)
let rec evict_one (sys : Sched.t) =
  match Queue.take_opt sys.resident_fifo with
  | None -> ()  (* nothing evictable: allow transient overcommit *)
  | Some (obj, idx) -> (
      match Hashtbl.find_opt obj.obj_pages idx with
      | Some p when p.pg_resident && not p.pg_wired ->
          p.pg_resident <- false;
          sys.pages_resident <- sys.pages_resident - 1;
          Ktext.exec sys.ktext [ Ktext.pageout_path sys.ktext ];
          if p.pg_dirty then begin
            p.pg_dirty <- false;
            p.pg_written_back <- true;
            sys.pageout_count <- sys.pageout_count + 1;
            match backing_of sys obj with
            | Some bs -> bs.bs_page_out obj idx (fun () -> ())
            | None -> ()
          end
      | Some _ | None -> evict_one sys)

let zero_fill_cost (sys : Sched.t) addr =
  (* clearing a frame: one store per line over the page *)
  let rec build off acc =
    if off >= page_size then acc
    else
      build (off + 32) (Machine.Footprint.store ~addr:(addr + off) ~bytes:32 :: acc)
  in
  Machine.execute sys.machine (build 0 [])

let page_in (sys : Sched.t) obj idx =
  sys.pagein_count <- sys.pagein_count + 1;
  match backing_of sys obj with
  | None -> ()
  | Some bs -> (
      match sys.current with
      | None -> bs.bs_page_in obj idx (fun () -> ())
      | Some _ ->
          let th = Sched.self () in
          let done_ = ref false in
          bs.bs_page_in obj idx (fun () ->
              done_ := true;
              Sched.wake sys th);
          if not !done_ then ignore (Sched.block "page-in" : kern_return))

let make_resident (sys : Sched.t) obj idx ~addr ~fill =
  let p = get_page obj idx in
  if not p.pg_resident then begin
    if sys.pages_resident >= sys.page_limit then evict_one sys;
    Ktext.exec sys.ktext [ Ktext.vm_page_insert sys.ktext ];
    (match fill with
    | `Zero -> zero_fill_cost sys addr
    | `Pager -> page_in sys obj idx
    | `None -> ());
    p.pg_resident <- true;
    sys.pages_resident <- sys.pages_resident + 1;
    Queue.add (obj, idx) sys.resident_fifo
  end;
  p

(* Resolve a fault at [addr] within [entry]. *)
let fault (sys : Sched.t) entry addr ~write =
  sys.fault_count <- sys.fault_count + 1;
  Ktext.exec sys.ktext [ Ktext.vm_fault_path sys.ktext ];
  let obj = entry.ent_obj in
  let idx = (entry.ent_offset + (addr - entry.ent_start)) / page_size in
  let page_addr = addr / page_size * page_size in
  if write && entry.ent_cow then begin
    let had_private = Hashtbl.mem obj.obj_pages idx in
    (* copy the page from the shadow source into a private page *)
    let src_stamp =
      match obj.obj_shadow_of with
      | Some src when not had_private ->
          let owner = chain_owner src idx in
          let sp = Hashtbl.find_opt owner.obj_pages idx in
          let src_resident =
            match sp with Some p -> p.pg_resident | None -> false
          in
          if not src_resident then
            ignore
              (make_resident sys owner idx ~addr:page_addr
                 ~fill:(if (match sp with Some p -> p.pg_written_back | None -> false)
                        || owner.obj_backing <> None
                        then `Pager else `Zero)
                : page);
          (* physical copy of the source page; cost uses a shifted pseudo
             source address so both sides stream through the D-cache *)
          Ktext.copy sys.ktext ~src:(page_addr lxor 0x0200_0000) ~dst:page_addr
            ~bytes:page_size;
          (match Hashtbl.find_opt owner.obj_pages idx with
          | Some sp -> sp.pg_stamp
          | None -> 0)
      | Some _ | None ->
          (* an anonymous page under copy protection (or a re-break of a
             page already private): push the old contents aside and take
             a private copy *)
          Ktext.copy sys.ktext ~src:(page_addr lxor 0x0100_0000) ~dst:page_addr
            ~bytes:page_size;
          (match Hashtbl.find_opt obj.obj_pages idx with
          | Some p -> p.pg_stamp
          | None -> 0)
    in
    let p = make_resident sys obj idx ~addr:page_addr ~fill:`None in
    p.pg_dirty <- true;
    p.pg_stamp <- src_stamp
  end
  else begin
    match obj.obj_shadow_of with
    | Some _ when not (Hashtbl.mem obj.obj_pages idx) ->
        (* read-through along the COW shadow chain to the page's owner *)
        let owner = chain_owner obj idx in
        let sp = Hashtbl.find_opt owner.obj_pages idx in
        let fill =
          match sp with
          | Some p when p.pg_written_back -> `Pager
          | Some _ | None ->
              if owner.obj_backing <> None then `Pager else `Zero
        in
        ignore (make_resident sys owner idx ~addr:page_addr ~fill : page)
    | Some _ | None ->
        let p = get_page obj idx in
        let fill =
          if p.pg_written_back || obj.obj_backing <> None then `Pager
          else `Zero
        in
        let p = make_resident sys obj idx ~addr:page_addr ~fill in
        if write then p.pg_dirty <- true
  end

let page_present (sys : Sched.t) entry addr ~write =
  ignore sys;
  let obj = entry.ent_obj in
  let idx = (entry.ent_offset + (addr - entry.ent_start)) / page_size in
  if write && entry.ent_cow then
    (* a COW entry needs a private dirty page before writes are cheap *)
    match Hashtbl.find_opt obj.obj_pages idx with
    | Some p -> p.pg_resident && p.pg_dirty
    | None -> false
  else
    match Hashtbl.find_opt obj.obj_pages idx with
    | Some p when p.pg_resident -> true
    | Some _ -> false
    | None -> (
        (* shadow read-through counts as present if the owner's copy is in *)
        match obj.obj_shadow_of with
        | Some _ -> (
            let owner = chain_owner obj idx in
            match Hashtbl.find_opt owner.obj_pages idx with
            | Some p -> p.pg_resident
            | None -> false)
        | None -> false)

let allocate (sys : Sched.t) task ~bytes ?(eager = false) () =
  let size = pages_of_bytes bytes * page_size in
  let addr = Sched.virtual_alloc sys ~bytes:size in
  let obj =
    object_create sys ~tag:(task.task_name ^ ".anon") ~bytes:size ()
  in
  let entry =
    {
      ent_start = addr;
      ent_size = size;
      ent_obj = obj;
      ent_offset = 0;
      ent_prot = prot_rw;
      ent_cow = false;
      ent_eager = eager;
      ent_coerced = false;
    }
  in
  insert_entry sys task.vm entry;
  if eager then
    for i = 0 to (size / page_size) - 1 do
      ignore
        (make_resident sys obj i ~addr:(addr + (i * page_size)) ~fill:`Zero
          : page)
    done;
  addr

let map_object (sys : Sched.t) task obj ?at ?(offset = 0) ~bytes
    ?(prot = prot_rw) ?(cow = false) ?(coerced = false) () =
  let size = pages_of_bytes bytes * page_size in
  let addr =
    match at with
    | Some a ->
        if overlaps_entry task.vm a size then raise (Kern_error Kern_no_space);
        a
    | None -> Sched.virtual_alloc sys ~bytes:size
  in
  let entry =
    {
      ent_start = addr;
      ent_size = size;
      ent_obj = obj;
      ent_offset = offset;
      ent_prot = prot;
      ent_cow = cow;
      ent_eager = false;
      ent_coerced = coerced;
    }
  in
  insert_entry sys task.vm entry;
  addr

let allocate_coerced (sys : Sched.t) tasks ~bytes =
  let size = pages_of_bytes bytes * page_size in
  let obj = object_create sys ~tag:"coerced" ~bytes:size () in
  let addr = Sched.virtual_alloc sys ~bytes:size in
  List.iter
    (fun task ->
      ignore
        (map_object sys task obj ~at:addr ~bytes:size ~coerced:true () : int))
    tasks;
  addr

let release_entry_pages (sys : Sched.t) entry =
  let obj = entry.ent_obj in
  let first = entry.ent_offset / page_size in
  let last = (entry.ent_offset + entry.ent_size - 1) / page_size in
  for idx = first to last do
    match Hashtbl.find_opt obj.obj_pages idx with
    | Some p when p.pg_resident ->
        p.pg_resident <- false;
        sys.pages_resident <- sys.pages_resident - 1
    | Some _ | None -> ()
  done

let deallocate (sys : Sched.t) task ~addr =
  match find_entry task.vm addr with
  | None -> raise (Kern_error Kern_invalid_argument)
  | Some entry ->
      Ktext.exec sys.ktext [ Ktext.vm_map_enter sys.ktext ];
      (* the range is leaving this map: any moved-out bookkeeping for it
         is now moot, and a mapped-out object tells its owner *)
      Mcheck.remap_clear sys task ~addr:entry.ent_start ~bytes:entry.ent_size;
      (match entry.ent_obj.obj_unmap_hook with
      | Some hook ->
          entry.ent_obj.obj_unmap_hook <- None;
          hook ()
      | None -> ());
      (* only unshared anonymous entries release pages; coerced/shared
         objects stay resident for their other mappings *)
      if not entry.ent_coerced then release_entry_pages sys entry;
      task.vm.entries <-
        List.filter (fun e -> e.ent_start <> entry.ent_start) task.vm.entries

let touch (sys : Sched.t) task ~addr ?(write = false) ~bytes () =
  if bytes > 0 then begin
    match find_entry task.vm addr with
    | None -> raise (Kern_error Kern_invalid_argument)
    | Some entry ->
        if addr + bytes > entry.ent_start + entry.ent_size then
          raise (Kern_error Kern_invalid_argument);
        if write && not entry.ent_prot.write then
          raise (Kern_error Kern_protection_failure);
        if write then Mcheck.remap_write sys task ~addr ~bytes;
        let first = addr / page_size and last = (addr + bytes - 1) / page_size in
        for pg = first to last do
          let a = pg * page_size in
          let a = max a addr in
          if not (page_present sys entry a ~write) then fault sys entry a ~write
          else if write then begin
            let idx = (entry.ent_offset + (a - entry.ent_start)) / page_size in
            match Hashtbl.find_opt entry.ent_obj.obj_pages idx with
            | Some p -> p.pg_dirty <- true
            | None -> ()
          end
        done;
        let op =
          if write then Machine.Footprint.store ~addr ~bytes
          else Machine.Footprint.load ~addr ~bytes
        in
        Machine.execute sys.machine [ op ]
  end

let shadow_object (sys : Sched.t) orig ~tag =
  let obj =
    {
      obj_id = sys.next_obj_id;
      obj_size = orig.obj_size;
      obj_pages = Hashtbl.create 8;
      obj_backing = None;
      obj_shadow_of = Some orig;
      obj_tag = tag;
      obj_unmap_hook = None;
    }
  in
  sys.next_obj_id <- sys.next_obj_id + 1;
  obj

let virtual_copy (sys : Sched.t) ~src_task ~addr ~bytes ~dst_task =
  match find_entry src_task.vm addr with
  | None -> raise (Kern_error Kern_invalid_argument)
  | Some src_entry ->
      let pages = pages_of_bytes bytes in
      Ktext.exec_n sys.ktext pages (Ktext.virtual_copy_per_page sys.ktext);
      let first =
        (src_entry.ent_offset + (addr - src_entry.ent_start)) / page_size
      in
      (* Mach semantics: the SOURCE side is also copy-protected — the
         sender's next write to the range must break, which is the
         hidden cost of the virtual-copy strategy under buffer reuse.
         Freeze the sender's object and redirect the entry onto a shadow
         of it, so the break lands in a private page and the receiver
         keeps seeing the snapshot; an entry still frozen from the last
         send (no write broke a page) shares the same snapshot instead
         of growing the chain. *)
      let base =
        match src_entry.ent_obj.obj_shadow_of with
        | Some under
          when src_entry.ent_cow
               && Hashtbl.length src_entry.ent_obj.obj_pages = 0 ->
            under
        | Some _ | None ->
            let orig = src_entry.ent_obj in
            src_entry.ent_obj <- shadow_object sys orig ~tag:"ool-src-shadow";
            src_entry.ent_cow <- true;
            orig
      in
      for idx = first to first + pages - 1 do
        match Hashtbl.find_opt base.obj_pages idx with
        | Some p -> p.pg_dirty <- false  (* re-protect *)
        | None -> ()
      done;
      let dst_shadow = shadow_object sys base ~tag:"ool-shadow" in
      map_object sys dst_task dst_shadow ~offset:(first * page_size)
        ~bytes:(pages * page_size) ~cow:true ()

(* --- Zero-copy remap ---------------------------------------------------- *)
(* Large page-aligned payloads cross the task boundary by map
   manipulation: [remap_move] donates the pages outright, [remap_cow]
   shares them copy-on-write.  Both charge one map-entry chunk plus a
   TLB shootdown — never a per-byte copy loop. *)

let require_page_aligned ~addr ~bytes =
  if not (page_aligned ~addr ~bytes) then
    raise (Kern_error Kern_invalid_argument)

let entry_covering map ~addr ~bytes =
  match find_entry map addr with
  | Some e when addr + bytes <= e.ent_start + e.ent_size -> e
  | Some _ | None -> raise (Kern_error Kern_invalid_argument)

(* Rebuild the source map so [addr, addr+bytes) is served by
   [range_entry], preserving any head/tail remainder of the clipped
   original entry.  Pure list surgery: the cost is the remap chunk the
   callers charge. *)
let replace_range map entry ~addr ~bytes ~range_entry =
  let head =
    if addr > entry.ent_start then
      Some { entry with ent_size = addr - entry.ent_start }
    else None
  in
  let tail =
    let range_end = addr + bytes
    and ent_end = entry.ent_start + entry.ent_size in
    if range_end < ent_end then
      Some
        { entry with
          ent_start = range_end;
          ent_size = ent_end - range_end;
          ent_offset = entry.ent_offset + (range_end - entry.ent_start);
        }
    else None
  in
  map.entries <-
    List.sort
      (fun a b -> compare a.ent_start b.ent_start)
      ((range_entry :: Option.to_list head)
      @ Option.to_list tail
      @ List.filter (fun e -> e != entry) map.entries)

let shootdown (sys : Sched.t) ~addr ~bytes =
  Machine.Cpu.tlb_shootdown sys.machine.Machine.cpu ~addr
    ~pages:(bytes / page_size)

let remap_move (sys : Sched.t) ~src_task ~addr ~bytes ~dst_task =
  require_page_aligned ~addr ~bytes;
  let entry = entry_covering src_task.vm ~addr ~bytes in
  let orig = entry.ent_obj in
  let first = (entry.ent_offset + (addr - entry.ent_start)) / page_size in
  Ktext.exec1 sys.ktext (Ktext.vm_remap_entry sys.ktext);
  Mcheck.remap_moved sys src_task ~addr ~bytes;
  (* the receiver maps the donated object over the moved range *)
  let dst_addr =
    map_object sys dst_task orig ~offset:(first * page_size) ~bytes ()
  in
  (* the sender's range becomes fresh zero-fill memory *)
  let fresh =
    object_create sys ~tag:(src_task.task_name ^ ".moved-out") ~bytes ()
  in
  let range_entry =
    {
      ent_start = addr;
      ent_size = bytes;
      ent_obj = fresh;
      ent_offset = 0;
      ent_prot = entry.ent_prot;
      ent_cow = false;
      ent_eager = false;
      ent_coerced = false;
    }
  in
  replace_range src_task.vm entry ~addr ~bytes ~range_entry;
  shootdown sys ~addr ~bytes;
  dst_addr

let remap_cow (sys : Sched.t) ~src_task ~addr ~bytes ~dst_task =
  require_page_aligned ~addr ~bytes;
  let entry = entry_covering src_task.vm ~addr ~bytes in
  Ktext.exec1 sys.ktext (Ktext.vm_remap_entry sys.ktext);
  let src_offset = entry.ent_offset + (addr - entry.ent_start) in
  let base, dst_offset =
    match entry.ent_obj.obj_shadow_of with
    | Some under
      when entry.ent_cow && Hashtbl.length entry.ent_obj.obj_pages = 0 ->
        (* still frozen since the last remap (no write broke a page):
           share the same snapshot instead of growing the shadow chain *)
        (under, src_offset)
    | Some _ | None ->
        (* freeze the range: the sender's entry becomes a shadow of the
           original, so its next write breaks into a private page and the
           receiver keeps seeing the snapshot *)
        let orig = entry.ent_obj in
        let src_shadow = shadow_object sys orig ~tag:"remap-cow-src" in
        let range_entry =
          {
            ent_start = addr;
            ent_size = bytes;
            ent_obj = src_shadow;
            ent_offset = src_offset;
            ent_prot = entry.ent_prot;
            ent_cow = true;
            ent_eager = false;
            ent_coerced = false;
          }
        in
        replace_range src_task.vm entry ~addr ~bytes ~range_entry;
        (orig, src_offset)
  in
  let dst_shadow = shadow_object sys base ~tag:"remap-cow-dst" in
  let dst_addr =
    map_object sys dst_task dst_shadow ~offset:dst_offset ~bytes ~cow:true ()
  in
  shootdown sys ~addr ~bytes;
  dst_addr

let set_unmap_hook obj hook = obj.obj_unmap_hook <- Some hook

(* --- Page stamps -------------------------------------------------------- *)
(* The simulator carries no real memory contents; a one-word stamp per
   page stands in for them so transfer correctness (COW isolation,
   move-leaves-zero) is testable.  Reading or writing a stamp performs
   the same fault work a real access would. *)

let write_stamp (sys : Sched.t) task ~addr stamp =
  touch sys task ~addr ~write:true ~bytes:1 ();
  match find_entry task.vm addr with
  | None -> ()
  | Some e ->
      let idx = (e.ent_offset + (addr - e.ent_start)) / page_size in
      (get_page e.ent_obj idx).pg_stamp <- stamp

let read_stamp (sys : Sched.t) task ~addr =
  touch sys task ~addr ~bytes:1 ();
  match find_entry task.vm addr with
  | None -> 0
  | Some e -> (
      let idx = (e.ent_offset + (addr - e.ent_start)) / page_size in
      let owner = chain_owner e.ent_obj idx in
      match Hashtbl.find_opt owner.obj_pages idx with
      | Some p -> p.pg_stamp
      | None -> 0)

let resident_pages (sys : Sched.t) = sys.pages_resident

let committed_bytes task =
  List.fold_left
    (fun acc e ->
      if e.ent_eager then acc + e.ent_size
      else
        let first = e.ent_offset / page_size in
        let last = (e.ent_offset + e.ent_size - 1) / page_size in
        let resident = ref 0 in
        for idx = first to last do
          match Hashtbl.find_opt e.ent_obj.obj_pages idx with
          | Some p when p.pg_resident -> incr resident
          | Some _ | None -> ()
        done;
        acc + (!resident * page_size))
    0 task.vm.entries

let entry_count task = List.length task.vm.entries

let page_faults (sys : Sched.t) = sys.fault_count
let page_ins (sys : Sched.t) = sys.pagein_count
let page_outs (sys : Sched.t) = sys.pageout_count
