(** The assembled IBM Microkernel: boot, component handles, and the
    system run loop. *)

open Ktypes

type t = {
  machine : Machine.t;
  ktext : Ktext.t;
  sys : Sched.t;
  io : Io.t;
}

val boot : Machine.t -> t
(** Lay out kernel text/data, initialize the scheduler, size the page
    pool. *)

val run : t -> unit
(** Run until no thread is runnable and no event is pending. *)

val run_until : t -> (unit -> bool) -> bool

val task_create :
  t -> name:string -> ?personality:string -> ?text_bytes:int ->
  ?data_bytes:int -> unit -> task

val thread_spawn :
  t -> task -> name:string -> ?affinity:int -> ?bound:bool ->
  (unit -> unit) -> thread

val tasks : t -> task list

val pp_tasks : Format.formatter -> t -> unit
(** One line per task: name, personality, threads, memory. *)
