(* Shared retry-backoff schedule.

   Both [Ipc.call_retry] and [Rpc.call_retry] — and the supervisor's
   restart pacing — used to grow their wait by unbounded doubling, and
   every retrier doubled in lockstep: when a server died under load, all
   of its clients slept the same schedule and stampeded it the instant
   it came back.  A policy here caps the exponential and perturbs each
   waiter's schedule with deterministic jitter from the same drand48
   generator the fault planner uses, keyed on a caller-supplied seed
   (thread id, entry index), so replays stay bit-exact while distinct
   waiters spread out. *)

type policy = { bo_base : int; bo_cap : int; bo_seed : int }

let default_cap_factor = 64

let policy ?cap ?(seed = 0) ~base () =
  let base = max 1 base in
  (* the cap scales with the base — six doublings — so a caller sizing
     its base to span a known outage keeps its reach, while the old
     unbounded doubling (which could sleep past any recovery) is gone *)
  let cap =
    match cap with Some c -> max 1 c | None -> base * default_cap_factor
  in
  { bo_base = base; bo_cap = cap; bo_seed = seed }

(* drand48 step, as in [Fault]: bit-exact, process-independent. *)
let lcg state = (state * 0x5DEECE66D + 0xB) land 0xFFFF_FFFF_FFFF

(* Capped exponential: base * 2^(attempt-1), saturating at the cap
   without ever overflowing on large attempt numbers. *)
let raw_delay p ~attempt =
  let rec go n acc =
    if n <= 1 || acc >= p.bo_cap then acc else go (n - 1) (acc * 2)
  in
  min p.bo_cap (go (max 1 attempt) p.bo_base)

let delay p ~attempt =
  let wait = raw_delay p ~attempt in
  (* jitter in [0, wait/4): two generator steps mix seed and attempt so
     consecutive attempts of one waiter decorrelate too *)
  let span = max 1 (wait / 4) in
  let s = lcg (lcg ((p.bo_seed * 31) + attempt) land 0xFFFF_FFFF_FFFF) in
  wait + (s lsr 17) mod span
