(* Core kernel data structures.

   The microkernel's objects — tasks, threads, ports, messages, address
   maps — reference each other cyclically (a thread belongs to a task, a
   task holds a port space full of ports, a port remembers blocked
   threads), so they are defined in a single recursive knot here and
   manipulated by the sibling modules.  Nothing in this module charges
   simulated cost; it is pure representation. *)

(* Result codes, following Mach's kern_return_t. *)
type kern_return =
  | Kern_success
  | Kern_invalid_name
  | Kern_invalid_right
  | Kern_invalid_argument
  | Kern_no_space
  | Kern_protection_failure
  | Kern_port_dead
  | Kern_timed_out
  | Kern_not_receiver
  | Kern_resource_shortage
  | Kern_aborted
  | Kern_unavailable
      (* the service exists but is degraded (crash-looping, demoted by
         the supervisor): fail fast instead of letting clients hang *)

let kern_return_to_string = function
  | Kern_success -> "KERN_SUCCESS"
  | Kern_invalid_name -> "KERN_INVALID_NAME"
  | Kern_invalid_right -> "KERN_INVALID_RIGHT"
  | Kern_invalid_argument -> "KERN_INVALID_ARGUMENT"
  | Kern_no_space -> "KERN_NO_SPACE"
  | Kern_protection_failure -> "KERN_PROTECTION_FAILURE"
  | Kern_port_dead -> "KERN_PORT_DEAD"
  | Kern_timed_out -> "KERN_TIMED_OUT"
  | Kern_not_receiver -> "KERN_NOT_RECEIVER"
  | Kern_resource_shortage -> "KERN_RESOURCE_SHORTAGE"
  | Kern_aborted -> "KERN_ABORTED"
  | Kern_unavailable -> "KERN_UNAVAILABLE"

exception Kern_error of kern_return

type right = Receive_right | Send_right | Send_once_right

type protection = { read : bool; write : bool; execute : bool }

let prot_rw = { read = true; write = true; execute = false }
let prot_ro = { read = true; write = false; execute = false }
let prot_rx = { read = true; write = false; execute = true }

(* Message payloads carry real semantic content between clients and
   servers.  The type is extensible so that each server (file server,
   name service, personalities...) declares its own request/reply
   constructors without the microkernel knowing about them. *)
type payload = ..

type payload +=
  | P_unit
  | P_int of int
  | P_string of string
  | P_bytes of bytes
  | P_error of kern_return

type thread_state =
  | Th_runnable
  | Th_running
  | Th_blocked of string  (* wait reason, for diagnosis *)
  | Th_terminated

type cont_state =
  | Not_started
  | Paused_unit of (unit, unit) Effect.Deep.continuation
      (* suspended at a yield *)
  | Paused_result of (kern_return, unit) Effect.Deep.continuation
      (* suspended at a block; resumes with the waker's result *)
  | Finished

type thread = {
  tid : int;
  mutable tname : string;
  t_task : task;
  mutable state : thread_state;
  mutable cont : cont_state;
  mutable body : unit -> unit;
  mutable priority : int;
  mutable stack_base : int;  (* kernel-visible stack address, for costing *)
  mutable wake_result : kern_return;
      (* result seen by a blocked thread when woken (e.g. timeout) *)
  mutable reply_port_cache : port option;
      (* per-thread cached reply port, reused across Ipc.call round trips
         instead of allocate/destroy per interaction *)
  mutable affinity : int;
      (* CPU whose run queue owns this thread; only that CPU mutates the
         thread's scheduling state directly, everyone else sends messages *)
  mutable bound : bool;  (* pinned to [affinity]: never stolen or migrated *)
}

and task = {
  task_id : int;
  mutable task_name : string;
  mutable threads : thread list;
  mutable namespace : (int, right_entry) Hashtbl.t;  (* port space *)
  mutable next_name : int;
  vm : vm_map;
  text : Machine.Layout.region;
  data : Machine.Layout.region;
  mutable libraries : (string * Machine.Layout.region) list;
  mutable task_self : port option;
  mutable halted : bool;
  mutable personality : string;  (* informational: which OS owns it *)
}

and right_entry = { re_port : port; mutable re_right : right; mutable re_refs : int }

and port = {
  port_id : int;
  mutable pname : string;
  mutable dead : bool;
  mutable receiver : task option;
  (* Mach 3.0 IPC: queued messages and blocked receivers/senders. *)
  msg_queue : message Queue.t;
  mutable q_limit : int;
  waiting_receivers : thread Queue.t;
  waiting_senders : thread Queue.t;
  (* IBM RPC rework: synchronous exchanges, no message queue. *)
  pending_calls : rpc_exchange Queue.t;
  waiting_servers : thread Queue.t;
  (* dead-name notification: run when the port is destroyed, so a
     supervisor can learn that a server it watches has crashed *)
  mutable dead_watchers : (unit -> unit) list;
}

and message = {
  msg_op : int;  (* operation/selector id *)
  msg_inline_bytes : int;
  msg_payload : payload;
  msg_reply_to : port option;  (* Mach 3.0 only; removed in the rework *)
  msg_ool : ool_region list;
  msg_rights : (port * right) list;
  mutable msg_kbuf : int;  (* kernel buffer address while in transit *)
  msg_sender : task option;  (* for out-of-line mapping at receive time *)
}

(* How an out-of-line region crosses the task boundary.  [Copy] is the
   rework's physical copy (per-byte cost); [Move] donates the sender's
   pages to the receiver, leaving the sender zero-filled; [Cow] maps the
   pages into the receiver copy-on-write.  Move/Cow are charged per map
   entry plus a TLB shootdown, never per byte. *)
and ool_mode = Copy | Move | Cow

and ool_region = {
  ool_addr : int;
  ool_bytes : int;
  ool_mode : ool_mode;
  mutable ool_copied : bool;  (* physical copy already materialised *)
}

and rpc_exchange = {
  rx_client : thread;
  rx_request : message;
  mutable rx_reply : message option;
  mutable rx_server : thread option;
  mutable rx_abandoned : bool;
      (* the client gave up (timeout / abort): the server must neither
         process nor wake it — the thread has moved on to other waits *)
}

and vm_map = {
  map_id : int;
  mutable entries : vm_entry list;  (* sorted by start address *)
  mutable map_pmap_loaded : bool;
}

and vm_entry = {
  ent_start : int;
  ent_size : int;
  mutable ent_obj : vm_object;  (* remap/freeze may redirect the entry *)
  ent_offset : int;  (* offset of entry start within the object *)
  mutable ent_prot : protection;
  mutable ent_cow : bool;  (* writes must copy into a private page *)
  ent_eager : bool;  (* committed (OS/2 style) rather than lazy *)
  ent_coerced : bool;  (* shared at the same address everywhere *)
}

and vm_object = {
  obj_id : int;
  mutable obj_size : int;  (* bytes *)
  obj_pages : (int, page) Hashtbl.t;  (* page index within object *)
  mutable obj_backing : backing_store option;
  mutable obj_shadow_of : vm_object option;  (* COW source *)
  mutable obj_tag : string;  (* diagnostic: who owns this memory *)
  mutable obj_unmap_hook : (unit -> unit) option;
      (* run when the last mapping of this object is torn down; the file
         server uses it to unpin cache pages it has mapped out *)
}

and page = {
  mutable pg_resident : bool;
  mutable pg_dirty : bool;
  mutable pg_wired : bool;
  mutable pg_written_back : bool;  (* has ever been paged out *)
  mutable pg_stamp : int;
      (* abstract page contents: the simulator carries no real bytes, so
         transfer correctness (COW breaks, move-leaves-zero) is asserted
         over this one-word summary.  0 = zero-filled. *)
}

and backing_store = {
  bs_name : string;
  bs_page_in : vm_object -> int -> (unit -> unit) -> unit;
      (* [bs_page_in obj index k] arranges for page [index] to become
         available and calls [k] when the (simulated) I/O completes. *)
  bs_page_out : vm_object -> int -> (unit -> unit) -> unit;
}

type message_builder = {
  mb_op : int;
  mb_inline_bytes : int;
  mb_inline_src : int option;  (* sender buffer address, for copy costing *)
  mb_payload : payload;
  mb_ool : (int * int * ool_mode) list;  (* (addr, bytes, mode) vector *)
  mb_rights : (port * right) list;
}

let simple_message ?(op = 0) ?(inline_bytes = 0) ?inline_src
    ?(payload = P_unit) ?(ool = []) ?(ool_vec = []) ?(rights = []) () =
  {
    mb_op = op;
    mb_inline_bytes = inline_bytes;
    mb_inline_src = inline_src;
    mb_payload = payload;
    mb_ool = List.map (fun (a, b) -> (a, b, Copy)) ool @ ool_vec;
    mb_rights = rights;
  }

let page_size = 4096
let page_of_addr addr = addr / page_size
let pages_of_bytes bytes = (bytes + page_size - 1) / page_size

(* Payloads at or above this size, when page-aligned, are worth moving
   by remap instead of physical copy; below it the map manipulation and
   shootdown cost more than the copy loop. *)
let remap_threshold = page_size

let page_aligned ~addr ~bytes =
  addr mod page_size = 0 && bytes mod page_size = 0 && bytes > 0
