(** Clocks and timers.

    Mach 3.0's time management "was very limited"; the IBM Microkernel
    added a comprehensive component.  Here: a readable cycle clock,
    blocking sleeps, one-shot and periodic timers driven by the machine's
    event queue, each expiry charging the timer-interrupt path. *)

open Ktypes

type timer

val get_time : Sched.t -> int
(** Current time in cycles; a cheap trap. *)

val sleep_for : Sched.t -> cycles:int -> kern_return
(** Block the calling thread for the given number of cycles. *)

val arm_oneshot : Sched.t -> after:int -> (unit -> unit) -> timer
(** Fire the callback once, [after] cycles from now (interrupt context:
    the callback must not block). *)

val arm_periodic : Sched.t -> every:int -> ?count:int -> (unit -> unit) -> timer
(** Fire every [every] cycles, [count] times (default: forever). *)

val cancel : timer -> unit
val fired : timer -> int

val with_deadline : Sched.t -> cycles:int -> (unit -> 'a) -> 'a
(** Run [f] with a timeout: if the calling thread is still blocked when
    [cycles] elapse, it is woken with [Kern_timed_out] so the blocked
    operation can bail out.  The timer is disarmed when [f] returns or
    raises.  Must be called from thread context. *)
