open Ktypes

(* Cross-CPU scheduler messages, after DragonFly BSD's LWKT discipline:
   per-CPU scheduling state is owned by its CPU, and every cross-CPU
   mutation — wakeup, migration, teardown — travels as an asynchronous
   message on the target CPU's queue, delivered when that CPU next runs
   its dispatcher.  An IPI is raised only on the queue's empty->nonempty
   transition, so bursts of messages share one interrupt. *)
type xmsg =
  | X_wake of { xth : thread; xresult : kern_return; sent_at : float }
  | X_migrate of { xth : thread; sent_at : float }
  | X_teardown of { xtid : int; sent_at : float }

type percpu = {
  pc_id : int;
  pc_runq : thread Queue.t;
  pc_ipiq : xmsg Queue.t;
  mutable pc_last : thread option;  (* last thread dispatched here *)
  mutable pc_switches : int;
  mutable pc_steals : int;  (* threads this CPU stole while idle *)
  mutable pc_xmsgs : int;  (* cross-CPU messages processed here *)
}

type t = {
  machine : Machine.t;
  ktext : Ktext.t;
  percpu : percpu array;
  mutable active : int;  (* CPU currently dispatching; 0 on a uniprocessor *)
  mutable current : thread option;
  mutable next_task_id : int;
  mutable next_thread_id : int;
  mutable next_port_id : int;
  mutable next_obj_id : int;
  mutable next_map_id : int;
  mutable tasks : task list;
  mutable vnext : int;
  mutable page_limit : int;
  mutable pages_resident : int;
  resident_fifo : (vm_object * int) Queue.t;
  mutable default_backing : backing_store option;
  mutable switches : int;
  mutable charge_switches : bool;
  mutable fault_count : int;
  mutable pagein_count : int;
  mutable pageout_count : int;
  mutable reply_cache_hits : int;  (* Ipc.call reused the cached port *)
  mutable reply_cache_misses : int;  (* Ipc.call had to allocate one *)
  mutable faults : Fault.t option;  (* fault-injection plan, None = off *)
  mutable retry_attempts : int;  (* re-issues performed by call_retry *)
  mutable checks : Check.t option;  (* Machcheck attachment, None = off *)
  mutable check_space : int;  (* this boot's id space at the checker *)
}

type _ Effect.t +=
  | E_self : thread Effect.t
  | E_block : string -> kern_return Effect.t
  | E_yield : unit Effect.t

(* Processing one scheduler message costs the receiver a short fixed
   dispatch (decode + state update), on top of the per-batch interrupt
   entry priced at [Config.ipi_cycles]. *)
let xmsg_cycles = 32

let create machine ktext =
  let used = Machine.Layout.used_bytes machine.Machine.layout in
  let total = machine.Machine.config.Machine.Config.memory_bytes in
  {
    machine;
    ktext;
    percpu =
      Array.init (Machine.ncpus machine) (fun i ->
          {
            pc_id = i;
            pc_runq = Queue.create ();
            pc_ipiq = Queue.create ();
            pc_last = None;
            pc_switches = 0;
            pc_steals = 0;
            pc_xmsgs = 0;
          });
    active = 0;
    current = None;
    next_task_id = 1;
    next_thread_id = 1;
    next_port_id = 1;
    next_obj_id = 1;
    next_map_id = 1;
    tasks = [];
    vnext = 0x4000_0000;
    page_limit = (total - used) / page_size;
    pages_resident = 0;
    resident_fifo = Queue.create ();
    default_backing = None;
    switches = 0;
    charge_switches = true;
    fault_count = 0;
    pagein_count = 0;
    pageout_count = 0;
    reply_cache_hits = 0;
    reply_cache_misses = 0;
    faults = None;
    retry_attempts = 0;
    checks = (match Check.installed () with Some c -> Some c | None -> None);
    check_space =
      (match Check.installed () with Some c -> Check.new_space c | None -> 0);
  }

let ncpus t = Array.length t.percpu

let enable_checks t chk =
  t.checks <- Some chk;
  t.check_space <- Check.new_space chk;
  Ktext.set_checks t.ktext chk

let virtual_alloc t ~bytes =
  let bytes = pages_of_bytes bytes * page_size in
  let addr = t.vnext in
  t.vnext <- t.vnext + bytes;
  addr

let task_create t ~name ?(personality = "pn") ?(text_bytes = 16 * 1024)
    ?(data_bytes = 16 * 1024) () =
  let alloc n kind size =
    Machine.Layout.alloc t.machine.Machine.layout ~name:n ~kind ~size
  in
  let text = alloc (name ^ ".text") Machine.Layout.Code text_bytes in
  let data = alloc (name ^ ".data") Machine.Layout.Data data_bytes in
  (* text and stacks are wired: shrink the pageable pool accordingly *)
  t.page_limit <- t.page_limit - pages_of_bytes (text_bytes + data_bytes);
  let task =
    {
      task_id = t.next_task_id;
      task_name = name;
      threads = [];
      namespace = Hashtbl.create 16;
      next_name = 1;
      vm = { map_id = t.next_map_id; entries = []; map_pmap_loaded = false };
      text;
      data;
      libraries = [];
      task_self = None;
      halted = false;
      personality;
    }
  in
  t.next_task_id <- t.next_task_id + 1;
  t.next_map_id <- t.next_map_id + 1;
  t.tasks <- task :: t.tasks;
  task

let thread_spawn t task ~name ?affinity ?(bound = false) body =
  if task.halted then raise (Kern_error Kern_invalid_argument);
  let affinity =
    match affinity with
    | None -> t.active  (* children start where their creator runs *)
    | Some a ->
        if a < 0 || a >= Array.length t.percpu then
          invalid_arg "Sched.thread_spawn: no such CPU";
        a
  in
  let slot = List.length task.threads mod 6 in
  let th =
    {
      tid = t.next_thread_id;
      tname = name;
      t_task = task;
      state = Th_runnable;
      cont = Not_started;
      body;
      priority = 0;
      stack_base = task.data.Machine.Layout.base + 1024 + (slot * 2048);
      wake_result = Kern_success;
      reply_port_cache = None;
      affinity;
      bound;
    }
  in
  t.next_thread_id <- t.next_thread_id + 1;
  task.threads <- th :: task.threads;
  Queue.add th t.percpu.(affinity).pc_runq;
  th

let self () =
  try Effect.perform E_self
  with Effect.Unhandled _ -> failwith "Sched.self: not in thread context"

let block reason = Effect.perform (E_block reason)
let yield () = Effect.perform E_yield

(* Post a message on [target]'s queue; ring the doorbell only when the
   queue was empty (LWKT batching: one IPI covers a burst). *)
let post_xmsg t ~target msg =
  let pc = t.percpu.(target) in
  let was_empty = Queue.is_empty pc.pc_ipiq in
  Queue.add msg pc.pc_ipiq;
  if was_empty then Machine.ipi t.machine ~target

let wake t ?(result = Kern_success) th =
  match th.state with
  | Th_blocked _ ->
      if Array.length t.percpu = 1 || th.affinity = t.active then begin
        (* the waker runs on the thread's owning CPU: plain enqueue *)
        th.wake_result <- result;
        th.state <- Th_runnable;
        Queue.add th t.percpu.(th.affinity).pc_runq
      end
      else begin
        (* cross-CPU: the owning CPU flips the thread runnable when it
           drains its message queue; we never touch its run queue *)
        post_xmsg t ~target:th.affinity
          (X_wake
             {
               xth = th;
               xresult = result;
               sent_at = Machine.Cpu.now_exact t.machine.Machine.cpu;
             });
        match t.checks with
        | None -> ()
        | Some c ->
            Check.remote_wake_sent c ~space:t.check_space ~tid:th.tid
      end
  | Th_runnable | Th_running | Th_terminated -> ()

(* Thread wait-queue hygiene.  A waiter belongs in a port's queue at
   most once: a spurious wake (a timeout, fault injection, an abort)
   resumes the thread while its entry is still queued, and blindly
   re-adding it would leave stale duplicates that distort the queue
   accounting. *)
let enqueue_waiter th q =
  if not (Queue.fold (fun seen w -> seen || w == th) false q) then
    Queue.add th q

let dequeue_waiter th q =
  let keep = Queue.create () in
  Queue.iter (fun w -> if w != th then Queue.add w keep) q;
  Queue.clear q;
  Queue.transfer keep q

let terminate t th =
  let was_live = match th.state with Th_terminated -> false | _ -> true in
  (match th.state with
  | Th_terminated -> ()
  | Th_running | Th_runnable | Th_blocked _ ->
      th.state <- Th_terminated;
      th.cont <- Finished);
  th.t_task.threads <- List.filter (fun x -> x.tid <> th.tid) th.t_task.threads;
  (* remote teardown: the kill takes effect immediately (the victim can
     never run again — its owning CPU skips terminated queue entries),
     but the owning CPU still pays to reap the thread when it next
     drains its messages *)
  if was_live && Array.length t.percpu > 1 && th.affinity <> t.active then
    post_xmsg t ~target:th.affinity
      (X_teardown
         {
           xtid = th.tid;
           sent_at = Machine.Cpu.now_exact t.machine.Machine.cpu;
         });
  match t.checks with
  | None -> ()
  | Some c -> Check.thread_gone c ~space:t.check_space ~tid:th.tid

let task_halt t task =
  task.halted <- true;
  List.iter (fun th -> terminate t th) task.threads;
  task.threads <- [];
  (* The kernel reclaims the port space with the task: account the
     residual rights through Machcheck instead of dropping them. *)
  match t.checks with
  | None -> ()
  | Some c ->
      ignore
        (Check.task_teardown c ~space:t.check_space ~task:task.task_id
           ~tname:task.task_name
          : int);
      Hashtbl.reset task.namespace

(* Move a thread to another CPU's run queue.  A running thread migrates
   itself at its next reschedule point; a blocked thread simply re-homes
   (its eventual wake routes to the new CPU); a runnable thread leaves
   its old queue now and arrives by message.  Bound threads never
   move. *)
let migrate t th ~cpu =
  if cpu < 0 || cpu >= Array.length t.percpu then
    invalid_arg "Sched.migrate: no such CPU";
  if cpu <> th.affinity && not th.bound then
    match th.state with
    | Th_terminated -> ()
    | Th_running | Th_blocked _ -> th.affinity <- cpu
    | Th_runnable ->
        dequeue_waiter th t.percpu.(th.affinity).pc_runq;
        th.affinity <- cpu;
        post_xmsg t ~target:cpu
          (X_migrate
             { xth = th; sent_at = Machine.Cpu.now_exact t.machine.Machine.cpu })

let charge_dispatch t (pc : percpu) th =
  if t.charge_switches then begin
    let k = t.ktext in
    Ktext.exec1 k ~frame:th.stack_base (Ktext.sched_pick k);
    match pc.pc_last with
    | Some prev when prev.tid = th.tid -> ()
    | Some prev ->
        Ktext.exec1 k ~frame:th.stack_base (Ktext.context_switch k);
        if prev.t_task.task_id <> th.t_task.task_id then begin
          Ktext.exec1 k ~frame:th.stack_base (Ktext.pmap_switch k);
          Machine.Cpu.execute_item t.machine.Machine.cpu
            Machine.Footprint.Switch_address_space
        end
    | None -> Ktext.exec1 k ~frame:th.stack_base (Ktext.context_switch k)
  end

let handler t th : (unit, unit) Effect.Deep.handler =
  {
    retc =
      (fun () ->
        th.state <- Th_terminated;
        th.cont <- Finished;
        th.t_task.threads <-
          List.filter (fun x -> x.tid <> th.tid) th.t_task.threads;
        match t.checks with
        | None -> ()
        | Some c -> Check.thread_gone c ~space:t.check_space ~tid:th.tid);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | E_self ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                Effect.Deep.continue k th)
        | E_block reason ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                th.wake_result <- Kern_success;
                th.state <- Th_blocked reason;
                th.cont <- Paused_result k)
        | E_yield ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                th.state <- Th_runnable;
                th.cont <- Paused_unit k;
                (* a self-migrated thread deschedules onto its new CPU *)
                Queue.add th t.percpu.(th.affinity).pc_runq)
        | _ -> None);
  }

let step t i th =
  t.active <- i;
  Machine.set_active t.machine i;
  let pc = t.percpu.(i) in
  charge_dispatch t pc th;
  t.switches <- t.switches + 1;
  pc.pc_switches <- pc.pc_switches + 1;
  t.current <- Some th;
  pc.pc_last <- Some th;
  th.state <- Th_running;
  (match th.cont with
  | Not_started ->
      let body = th.body in
      Effect.Deep.match_with body () (handler t th)
  | Paused_result k ->
      th.cont <- Not_started;
      Effect.Deep.continue k th.wake_result
  | Paused_unit k ->
      th.cont <- Not_started;
      Effect.Deep.continue k ()
  | Finished -> ());
  t.current <- None

(* Deliver every pending message to CPU [i]: one interrupt entry per
   batch, a short decode per message, and the receiver's clock can never
   observe a message before its send time.  Runs at interrupt level: it
   must never call anything that can put the current thread to sleep. *)
let[@machlint.no_block] drain_ipiq t i =
  let pc = t.percpu.(i) in
  if not (Queue.is_empty pc.pc_ipiq) then begin
    let cpu = Machine.nth_cpu t.machine i in
    Machine.Cpu.execute_item cpu
      (Machine.Footprint.Stall
         t.machine.Machine.config.Machine.Config.ipi_cycles);
    while not (Queue.is_empty pc.pc_ipiq) do
      let msg = Queue.pop pc.pc_ipiq in
      let sent_at =
        match msg with
        | X_wake { sent_at; _ }
        | X_migrate { sent_at; _ }
        | X_teardown { sent_at; _ } ->
            sent_at
      in
      if Machine.Cpu.now_exact cpu < sent_at then
        Machine.Cpu.advance_to cpu (int_of_float (Float.ceil sent_at));
      Machine.Cpu.execute_item cpu (Machine.Footprint.Stall xmsg_cycles);
      pc.pc_xmsgs <- pc.pc_xmsgs + 1;
      match msg with
      | X_wake { xth; xresult; _ } -> (
          match xth.state with
          | Th_blocked _ ->
              xth.wake_result <- xresult;
              xth.state <- Th_runnable;
              (* enqueue where the thread is homed *now*: a migration
                 during flight redirects the delivery *)
              Queue.add xth t.percpu.(xth.affinity).pc_runq;
              (match t.checks with
              | None -> ()
              | Some c ->
                  Check.remote_wake_delivered c ~space:t.check_space
                    ~tid:xth.tid)
          | Th_runnable | Th_running | Th_terminated -> ())
      | X_migrate { xth; _ } -> (
          match xth.state with
          | Th_runnable -> enqueue_waiter xth t.percpu.(xth.affinity).pc_runq
          | Th_blocked _ | Th_running | Th_terminated -> ())
      | X_teardown _ -> ()  (* reap accounting only: cost charged above *)
    done
  end

let has_runnable pc =
  Queue.fold (fun acc th -> acc || th.state = Th_runnable) false pc.pc_runq

let runnable_count pc =
  Queue.fold (fun n th -> if th.state = Th_runnable then n + 1 else n) 0
    pc.pc_runq

(* Remove the newest stealable entry — runnable and not bound — from the
   tail end of a run queue (older entries are about to run anyway). *)
let steal_from pc =
  let arr = Array.of_seq (Queue.to_seq pc.pc_runq) in
  let idx = ref (-1) in
  Array.iteri
    (fun i th -> if th.state = Th_runnable && not th.bound then idx := i)
    arr;
  if !idx < 0 then None
  else begin
    Queue.clear pc.pc_runq;
    Array.iteri (fun i th -> if i <> !idx then Queue.add th pc.pc_runq) arr;
    Some arr.(!idx)
  end

(* Dispatch the highest-priority runnable thread; FIFO among equals, so
   a queue of default-priority threads pops in exactly the old order.
   Elevated priorities exist for protocol threads (netisrs): a server's
   drain loop must not sit behind the user thread that just woke on the
   same CPU, or rings back up behind the co-located producer. *)
let rec pop_runnable q =
  match Queue.take_opt q with
  | None -> None
  | Some th -> (
      match th.state with
      | Th_runnable ->
          let hi =
            Queue.fold
              (fun m t ->
                if t.state = Th_runnable && t.priority > m then t.priority
                else m)
              th.priority q
          in
          if hi <= th.priority then Some th
          else begin
            (* pull the first runnable at priority [hi] out of the
               queue; everything else keeps its relative order *)
            let out = Queue.create () in
            let chosen = ref None in
            Queue.add th out;
            Queue.iter
              (fun t ->
                match !chosen with
                | None when t.state = Th_runnable && t.priority = hi ->
                    chosen := Some t
                | None | Some _ -> Queue.add t out)
              q;
            Queue.clear q;
            Queue.transfer out q;
            !chosen
          end
      | Th_running | Th_blocked _ | Th_terminated -> pop_runnable q)

(* Choose the next CPU to dispatch: the conservative sequential
   interleaving runs whichever CPU with work is furthest behind in
   simulated time (deterministic: ties break to the lowest index).
   Before choosing, every CPU drains its message queue; an idle CPU
   strictly behind the choice steals the newest unbound thread from the
   most loaded run queue (>= 2 waiting) and dispatches it itself. *)
let rec select t =
  let n = Array.length t.percpu in
  for i = 0 to n - 1 do
    drain_ipiq t i
  done;
  let clock i = Machine.Cpu.now_exact (Machine.nth_cpu t.machine i) in
  let best = ref (-1) and bestclk = ref infinity in
  for i = n - 1 downto 0 do
    if has_runnable t.percpu.(i) then begin
      let c = clock i in
      if c <= !bestclk then begin
        best := i;
        bestclk := c
      end
    end
  done;
  if !best < 0 then None
  else begin
    let stole = ref false in
    if n > 1 then begin
      let thief = ref (-1) and thiefclk = ref !bestclk in
      for i = n - 1 downto 0 do
        if not (has_runnable t.percpu.(i)) then begin
          let c = clock i in
          if c < !thiefclk then begin
            thief := i;
            thiefclk := c
          end
        end
      done;
      if !thief >= 0 then begin
        let victim = ref (-1) and vcount = ref 1 in
        for i = n - 1 downto 0 do
          let c = runnable_count t.percpu.(i) in
          if c >= 2 && c >= !vcount then begin
            victim := i;
            vcount := c
          end
        done;
        if !victim >= 0 then
          match steal_from t.percpu.(!victim) with
          | None -> ()
          | Some th ->
              (* affinity follows the thief; the thief pays the
                 cross-CPU queue touch (coherence traffic both ways) *)
              th.affinity <- !thief;
              let pc = t.percpu.(!thief) in
              pc.pc_steals <- pc.pc_steals + 1;
              Machine.Cpu.execute_item
                (Machine.nth_cpu t.machine !thief)
                (Machine.Footprint.Stall
                   (2
                   * t.machine.Machine.config
                       .Machine.Config.coherence_miss_cycles));
              Queue.add th pc.pc_runq;
              stole := true
      end
    end;
    if !stole then select t  (* the thief is now eligible; re-rank *)
    else
      match pop_runnable t.percpu.(!best).pc_runq with
      | Some th -> Some (!best, th)
      | None -> select t  (* queue held only stale entries; re-rank *)
  end

let rec run t =
  match select t with
  | Some (i, th) ->
      step t i th;
      run t
  | None ->
      if Machine.advance_to_next_event t.machine then begin
        t.active <- 0;  (* device events deliver on the boot CPU *)
        run t
      end
      else ()

let run_until t pred =
  let rec loop () =
    if pred () then true
    else
      match select t with
      | Some (i, th) ->
          step t i th;
          loop ()
      | None ->
          if Machine.advance_to_next_event t.machine then begin
            t.active <- 0;
            loop ()
          end
          else pred ()
  in
  loop ()

let alive_threads t =
  List.fold_left
    (fun acc task ->
      acc
      + List.length
          (List.filter (fun th -> th.state <> Th_terminated) task.threads))
    0 t.tasks

let total_steals t =
  Array.fold_left (fun acc pc -> acc + pc.pc_steals) 0 t.percpu

let total_xmsgs t =
  Array.fold_left (fun acc pc -> acc + pc.pc_xmsgs) 0 t.percpu

let with_uncharged t f =
  let saved = t.charge_switches in
  t.charge_switches <- false;
  Fun.protect ~finally:(fun () -> t.charge_switches <- saved) f
