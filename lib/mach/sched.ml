open Ktypes

type t = {
  machine : Machine.t;
  ktext : Ktext.t;
  runq : thread Queue.t;
  mutable current : thread option;
  mutable last_dispatched : thread option;
  mutable next_task_id : int;
  mutable next_thread_id : int;
  mutable next_port_id : int;
  mutable next_obj_id : int;
  mutable next_map_id : int;
  mutable tasks : task list;
  mutable vnext : int;
  mutable page_limit : int;
  mutable pages_resident : int;
  resident_fifo : (vm_object * int) Queue.t;
  mutable default_backing : backing_store option;
  mutable switches : int;
  mutable charge_switches : bool;
  mutable fault_count : int;
  mutable pagein_count : int;
  mutable pageout_count : int;
  mutable reply_cache_hits : int;  (* Ipc.call reused the cached port *)
  mutable reply_cache_misses : int;  (* Ipc.call had to allocate one *)
  mutable faults : Fault.t option;  (* fault-injection plan, None = off *)
  mutable retry_attempts : int;  (* re-issues performed by call_retry *)
  mutable checks : Check.t option;  (* Machcheck attachment, None = off *)
  mutable check_space : int;  (* this boot's id space at the checker *)
}

type _ Effect.t +=
  | E_self : thread Effect.t
  | E_block : string -> kern_return Effect.t
  | E_yield : unit Effect.t

let create machine ktext =
  let used = Machine.Layout.used_bytes machine.Machine.layout in
  let total = machine.Machine.config.Machine.Config.memory_bytes in
  {
    machine;
    ktext;
    runq = Queue.create ();
    current = None;
    last_dispatched = None;
    next_task_id = 1;
    next_thread_id = 1;
    next_port_id = 1;
    next_obj_id = 1;
    next_map_id = 1;
    tasks = [];
    vnext = 0x4000_0000;
    page_limit = (total - used) / page_size;
    pages_resident = 0;
    resident_fifo = Queue.create ();
    default_backing = None;
    switches = 0;
    charge_switches = true;
    fault_count = 0;
    pagein_count = 0;
    pageout_count = 0;
    reply_cache_hits = 0;
    reply_cache_misses = 0;
    faults = None;
    retry_attempts = 0;
    checks = (match Check.installed () with Some c -> Some c | None -> None);
    check_space =
      (match Check.installed () with Some c -> Check.new_space c | None -> 0);
  }

let enable_checks t chk =
  t.checks <- Some chk;
  t.check_space <- Check.new_space chk;
  Ktext.set_checks t.ktext chk

let virtual_alloc t ~bytes =
  let bytes = pages_of_bytes bytes * page_size in
  let addr = t.vnext in
  t.vnext <- t.vnext + bytes;
  addr

let task_create t ~name ?(personality = "pn") ?(text_bytes = 16 * 1024)
    ?(data_bytes = 16 * 1024) () =
  let alloc n kind size =
    Machine.Layout.alloc t.machine.Machine.layout ~name:n ~kind ~size
  in
  let text = alloc (name ^ ".text") Machine.Layout.Code text_bytes in
  let data = alloc (name ^ ".data") Machine.Layout.Data data_bytes in
  (* text and stacks are wired: shrink the pageable pool accordingly *)
  t.page_limit <- t.page_limit - pages_of_bytes (text_bytes + data_bytes);
  let task =
    {
      task_id = t.next_task_id;
      task_name = name;
      threads = [];
      namespace = Hashtbl.create 16;
      next_name = 1;
      vm = { map_id = t.next_map_id; entries = []; map_pmap_loaded = false };
      text;
      data;
      libraries = [];
      task_self = None;
      halted = false;
      personality;
    }
  in
  t.next_task_id <- t.next_task_id + 1;
  t.next_map_id <- t.next_map_id + 1;
  t.tasks <- task :: t.tasks;
  task

let thread_spawn t task ~name body =
  if task.halted then raise (Kern_error Kern_invalid_argument);
  let slot = List.length task.threads mod 6 in
  let th =
    {
      tid = t.next_thread_id;
      tname = name;
      t_task = task;
      state = Th_runnable;
      cont = Not_started;
      body;
      priority = 0;
      stack_base = task.data.Machine.Layout.base + 1024 + (slot * 2048);
      wake_result = Kern_success;
      reply_port_cache = None;
    }
  in
  t.next_thread_id <- t.next_thread_id + 1;
  task.threads <- th :: task.threads;
  Queue.add th t.runq;
  th

let self () =
  try Effect.perform E_self
  with Effect.Unhandled _ -> failwith "Sched.self: not in thread context"

let block reason = Effect.perform (E_block reason)
let yield () = Effect.perform E_yield

let wake t ?(result = Kern_success) th =
  match th.state with
  | Th_blocked _ ->
      th.wake_result <- result;
      th.state <- Th_runnable;
      Queue.add th t.runq
  | Th_runnable | Th_running | Th_terminated -> ()

(* Thread wait-queue hygiene.  A waiter belongs in a port's queue at
   most once: a spurious wake (a timeout, fault injection, an abort)
   resumes the thread while its entry is still queued, and blindly
   re-adding it would leave stale duplicates that distort the queue
   accounting. *)
let enqueue_waiter th q =
  if not (Queue.fold (fun seen w -> seen || w == th) false q) then
    Queue.add th q

let dequeue_waiter th q =
  let keep = Queue.create () in
  Queue.iter (fun w -> if w != th then Queue.add w keep) q;
  Queue.clear q;
  Queue.transfer keep q

let terminate t th =
  (match th.state with
  | Th_terminated -> ()
  | Th_running | Th_runnable | Th_blocked _ ->
      th.state <- Th_terminated;
      th.cont <- Finished);
  th.t_task.threads <- List.filter (fun x -> x.tid <> th.tid) th.t_task.threads;
  match t.checks with
  | None -> ()
  | Some c -> Check.thread_gone c ~space:t.check_space ~tid:th.tid

let task_halt t task =
  task.halted <- true;
  List.iter (fun th -> terminate t th) task.threads;
  task.threads <- [];
  (* The kernel reclaims the port space with the task: account the
     residual rights through Machcheck instead of dropping them. *)
  match t.checks with
  | None -> ()
  | Some c ->
      ignore
        (Check.task_teardown c ~space:t.check_space ~task:task.task_id
           ~tname:task.task_name
          : int);
      Hashtbl.reset task.namespace

let charge_dispatch t th =
  if t.charge_switches then begin
    let k = t.ktext in
    Ktext.exec1 k ~frame:th.stack_base (Ktext.sched_pick k);
    match t.last_dispatched with
    | Some prev when prev.tid = th.tid -> ()
    | Some prev ->
        Ktext.exec1 k ~frame:th.stack_base (Ktext.context_switch k);
        if prev.t_task.task_id <> th.t_task.task_id then begin
          Ktext.exec1 k ~frame:th.stack_base (Ktext.pmap_switch k);
          Machine.Cpu.execute_item t.machine.Machine.cpu
            Machine.Footprint.Switch_address_space
        end
    | None -> Ktext.exec1 k ~frame:th.stack_base (Ktext.context_switch k)
  end

let handler t th : (unit, unit) Effect.Deep.handler =
  {
    retc =
      (fun () ->
        th.state <- Th_terminated;
        th.cont <- Finished;
        th.t_task.threads <-
          List.filter (fun x -> x.tid <> th.tid) th.t_task.threads;
        match t.checks with
        | None -> ()
        | Some c -> Check.thread_gone c ~space:t.check_space ~tid:th.tid);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | E_self ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                Effect.Deep.continue k th)
        | E_block reason ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                th.wake_result <- Kern_success;
                th.state <- Th_blocked reason;
                th.cont <- Paused_result k)
        | E_yield ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                th.state <- Th_runnable;
                th.cont <- Paused_unit k;
                Queue.add th t.runq)
        | _ -> None);
  }

let step t th =
  charge_dispatch t th;
  t.switches <- t.switches + 1;
  t.current <- Some th;
  t.last_dispatched <- Some th;
  th.state <- Th_running;
  (match th.cont with
  | Not_started ->
      let body = th.body in
      Effect.Deep.match_with body () (handler t th)
  | Paused_result k ->
      th.cont <- Not_started;
      Effect.Deep.continue k th.wake_result
  | Paused_unit k ->
      th.cont <- Not_started;
      Effect.Deep.continue k ()
  | Finished -> ());
  t.current <- None

let rec next_runnable t =
  match Queue.take_opt t.runq with
  | None -> None
  | Some th -> (
      match th.state with
      | Th_runnable -> Some th
      | Th_running | Th_blocked _ | Th_terminated -> next_runnable t)

let rec run t =
  match next_runnable t with
  | Some th ->
      step t th;
      run t
  | None -> if Machine.advance_to_next_event t.machine then run t else ()

let run_until t pred =
  let rec loop () =
    if pred () then true
    else
      match next_runnable t with
      | Some th ->
          step t th;
          loop ()
      | None -> if Machine.advance_to_next_event t.machine then loop () else pred ()
  in
  loop ()

let alive_threads t =
  List.fold_left
    (fun acc task ->
      acc
      + List.length
          (List.filter (fun th -> th.state <> Th_terminated) task.threads))
    0 t.tasks

let with_uncharged t f =
  let saved = t.charge_switches in
  t.charge_switches <- false;
  Fun.protect ~finally:(fun () -> t.charge_switches <- saved) f
