(** The IBM RPC rework of Mach IPC.

    The changes the paper enumerates: no reply ports, synchronous
    delivery and reply, threads block to send/receive, no message
    queuing (calls queue as blocked threads, not buffered messages),
    data too large for the message body passed by reference with a
    single physical copy from sender to receiver, simplified stubs and
    server loops, [mach_msg] removed.

    A call hands off directly to a waiting server thread; the scheduler
    charges the two address-space switches of the round trip, which is
    where Table 2's bus-cycle and CPI story comes from. *)

open Ktypes

val call :
  Sched.t -> port -> ?reply_bytes:int -> ?deadline:int -> message_builder ->
  (message, kern_return) result
(** Synchronous call from the current thread: request crosses with one
    physical copy, the caller blocks, the reply (of [reply_bytes] inline
    size, default whatever the server builds) crosses back with one
    copy.  With [deadline] the call is abandoned after that many cycles
    ([Error Kern_timed_out]); an abandoned exchange is marked so a
    server that later picks it up neither processes it nor wakes the
    client out of an unrelated wait. *)

val call_retry :
  Sched.t -> ?attempts:int -> ?deadline:int -> ?backoff:int ->
  resolve:(unit -> port option) -> message_builder ->
  (message, kern_return) result
(** Bounded-retry client call for surviving server crashes: re-resolve
    the destination via [resolve] (a name-service lookup) before every
    attempt, call with [deadline] cycles (default 100k), and on a
    retryable failure ([Kern_port_dead], [Kern_timed_out],
    [Kern_aborted]) back off on the shared {!Backoff} schedule — base
    [backoff] cycles (default 1k), doubling to [64 * backoff]
    with per-thread jitter — and try again, up to [attempts] total tries
    (default 4).  Gives up with the last error.  Re-issues are counted
    in [sys.retry_attempts] and charged as a user-level retry stub. *)

val receive : Sched.t -> port -> (rpc_exchange, kern_return) result
(** Server side: block until a call arrives. *)

val reply : Sched.t -> rpc_exchange -> message_builder -> unit
(** Complete an exchange: copy the reply to the client and wake it. *)

val reply_receive :
  Sched.t -> rpc_exchange -> message_builder -> port ->
  (rpc_exchange, kern_return) result
(** Reply to one exchange and receive the next in a single kernel entry —
    the primitive a synchronous-handoff server loop runs on. *)

val serve :
  Sched.t -> ?beat:Health.beat -> port -> (message -> message_builder) -> unit
(** Simple server loop: receive, handle, reply, forever — exiting only
    when the *service* port dies.  A single client's failure (abort,
    timeout) is absorbed and the loop keeps going; a handler raising
    [Kern_error] produces a [P_error] reply.  Honours the system's
    fault plan: an injected crash abandons the exchange in hand and
    destroys the service port; an injected wedge holds the request in
    hand for the scripted cycles before continuing.  With [beat] the
    loop stamps the server's {!Health.beat} — busy-since on dequeue,
    served count on reply — feeding the supervisor's watchdog. *)

val waiting_servers : port -> int
val pending_calls : port -> int
