(** Ports and port rights.

    Ports are the kernel's capabilities: right entries live in a task's
    port space and name either the receive right (exactly one task) or
    send rights.  Both IPC implementations (the Mach 3.0 [mach_msg] path
    and the IBM RPC rework) move messages between ports; the name service
    above the kernel exists precisely because these names are local to a
    port space. *)

open Ktypes

val allocate : Sched.t -> receiver:task -> name:string -> port
(** Create a port, depositing the receive right in [receiver]'s port
    space.  Charges the port-allocation path. *)

val insert_right : Sched.t -> task -> port -> right -> int
(** Give [task] a right to [port]; returns the name in [task]'s space.
    If the task already holds a right to the port the same name is
    reused with a bumped reference count; the held right is only ever
    upgraded (receive > send > send-once), never weakened. *)

val request_notification : Sched.t -> port -> (unit -> unit) -> unit
(** Dead-name notification: run the callback when the port is destroyed
    (immediately if it is already dead).  The supervision machinery uses
    this to learn that a watched server has crashed. *)

val lookup : task -> int -> right_entry option
(** Translate a name in the task's space. *)

val lookup_port : task -> port -> int option
(** Reverse lookup: the task's name for a port, if any. *)

val deallocate_right : Sched.t -> task -> int -> kern_return
(** Drop one reference; the entry dies at zero.  Freeing a name the
    space does not hold returns [Kern_invalid_name] and is reported to
    an attached Machcheck instance as a double-free. *)

val move_right : Sched.t -> from:task -> into:task -> port -> kern_return
(** Move one reference of [from]'s right to [port] into [into]'s space
    (consuming the source reference) — the explicit, checkable form of
    handing a capability to another task. *)

val destroy : Sched.t -> port -> unit
(** Mark the port dead and wake every blocked sender/receiver/server/
    client with [Kern_port_dead].  The receive right dies with the port:
    the receiver's namespace entry is removed (it previously lingered as
    a dangling dead-port name). *)

val rights_held : task -> int
(** Number of live right entries in the task's space. *)
