(** Kernel code and data placement, and the cost chunks of every kernel
    path.

    Each kernel routine the simulation models — trap entry, the RPC send
    path, the old [mach_msg] path, the scheduler, the VM fault handler —
    is a [chunk]: a stretch of instruction bytes at a fixed offset inside
    a kernel text region plus the data traffic it performs.  Executing a
    path replays its chunks through the CPU model, so instruction counts,
    cache behaviour and bus traffic arise from placement and size, not
    from hard-coded results.

    Chunk offsets are chosen the way a real (un-cache-coloured) kernel
    link map falls out: page-aligned subsystems whose hot lines partially
    alias in a small 2-way I-cache.  The short trap path is conflict-free;
    the much longer RPC and [mach_msg] paths alias with user stubs and
    with each other — which is exactly the paper's explanation for the
    RPC CPI ("misses on the I-cache"). *)

type t

type chunk

val create : Machine.t -> t

val machine : t -> Machine.t

val text : t -> Machine.Layout.region
(** Core kernel text. *)

val ipc_text : t -> Machine.Layout.region
(** The Mach 3.0 [mach_msg] code. *)

val data : t -> Machine.Layout.region
(** Kernel data structures. *)

val exec : t -> ?frame:int -> chunk list -> unit
(** Replay the chunks; [frame] is the current kernel stack frame address
    (defaults to a fixed scratch frame). *)

val exec1 : t -> ?frame:int -> chunk -> unit
(** Replay a single chunk without building a list — the allocation-free
    form the IPC hot paths use. *)

val exec_n : t -> ?frame:int -> int -> chunk -> unit
(** Replay one chunk [n] times (per-page loops and the like). *)

val copy : t -> src:int -> dst:int -> bytes:int -> unit
(** Physical data copy: executes the copy-loop code per 32-byte line plus
    the load/store traffic.  The primitive behind the IBM RPC's
    by-reference parameter passing. *)

val buffer_alloc : t -> bytes:int -> int
(** Reserve a kernel message buffer from the [kernel.msg-buffers] free
    list.  Small sizes are served LIFO from per-size quick lists (each
    hit counts as a recycle in {!buffer_stats}); other requests fall
    back to next-fit over 32-byte granule extents.  The returned address
    plus [bytes] never exceeds the region; true exhaustion flushes the
    quick lists and, as a last resort, resets the arena (counted as a
    reset in {!buffer_stats}). *)

val buffer_free : t -> int -> unit
(** Return a buffer to the free list (coalescing with neighbours).
    Unknown or stale addresses are ignored by the allocator, but a
    release of an already-released buffer is reported to an attached
    Machcheck instance as a double-release. *)

val buffer_use : t -> int -> unit
(** Tell an attached Machcheck instance that a kernel path is touching
    this buffer, so use-after-release can be flagged.  No-cost no-op
    when no checker is attached. *)

val set_checks : t -> Check.t -> unit
(** Attach Machcheck's buffer-lifetime sanitizer to this kernel's
    message-buffer free list.  [create] self-attaches to
    [Check.installed ()] if a checker is globally installed. *)

type buffer_stats = {
  bs_allocs : int;
  bs_frees : int;
  bs_recycles : int;  (** allocations served by reusing a freed buffer *)
  bs_resets : int;  (** whole-arena resets forced by exhaustion *)
  bs_in_use_bytes : int;
  bs_peak_bytes : int;
  bs_capacity_bytes : int;
}

val buffer_stats : t -> buffer_stats

val buffer_region : t -> Machine.Layout.region
(** The [kernel.msg-buffers] region itself (bounds checking in tests). *)

val chunk_bytes : chunk -> int

(** {1 Trap path} *)

val user_stub : t -> chunk
(** The user-level system call stub; fetched from the *caller's* text
    region, see {!exec_in}. *)

val trap_entry : t -> chunk
val syscall_dispatch : t -> chunk
val thread_self_service : t -> chunk
val generic_service : t -> chunk
(** A typical in-kernel service routine body (used by the monolithic OS
    and by kernel services other than [thread_self]). *)

val trap_exit : t -> chunk

(** {1 IBM RPC path} *)

val rpc_entry : t -> chunk
(** The rework's simplified kernel entry for RPC traps. *)

val rpc_send : t -> chunk
val rpc_reply : t -> chunk
val cap_translate : t -> chunk
val rpc_handoff : t -> chunk

(** {1 Mach 3.0 mach_msg path} *)

val mach_msg_entry : t -> chunk
val msg_copyin : t -> chunk
val msg_copyout : t -> chunk
val right_transfer : t -> chunk
val msg_enqueue : t -> chunk
val msg_dequeue : t -> chunk
val receive_path : t -> chunk
val reply_port_setup : t -> chunk

(** The cheap path taken when a thread's cached reply port is reused
    instead of allocated and destroyed per interaction. *)
val reply_port_reuse : t -> chunk
val mach_msg_exit : t -> chunk
val port_alloc_path : t -> chunk
val port_dealloc_path : t -> chunk
val virtual_copy_per_page : t -> chunk
(** Map-manipulation cost per page of out-of-line data (the Mach 3.0
    virtual-copy strategy replaced by physical copy in the rework). *)

(** {1 Scheduler, VM, interrupts, devices} *)

val sched_pick : t -> chunk
val context_switch : t -> chunk
val pmap_switch : t -> chunk
val vm_fault_path : t -> chunk
val vm_map_enter : t -> chunk

val vm_remap_entry : t -> chunk
(** Per-map-entry cost of the zero-copy remap path (clip/split source
    entry, enter into the destination map, adjust protections) — charged
    once per region regardless of byte count. *)

val vm_page_insert : t -> chunk
val pageout_path : t -> chunk
val irq_entry : t -> chunk
val irq_reflect : t -> chunk
val dma_setup : t -> chunk
val timer_service : t -> chunk
val sync_fast : t -> chunk
val sync_block : t -> chunk

val notify_path : t -> chunk
(** Dead-name notification delivery when a watched port dies. *)

val fault_inject : t -> chunk
(** Fault-plan bookkeeping, charged only when a fault is injected. *)

val exec_in :
  t -> Machine.Layout.region -> offset:int -> bytes:int -> unit
(** Fetch a stretch of some other region's code (user stubs, server
    loops) through the same CPU. *)
