open Ktypes

type timer = { mutable cancelled : bool; mutable fired : int }

let get_time (sys : Sched.t) =
  (match sys.current with
  | Some th ->
      let k = sys.ktext in
      Ktext.exec_in k th.t_task.text ~offset:0x100 ~bytes:144;
      Ktext.exec k ~frame:th.stack_base
        [ Ktext.trap_entry k; Ktext.timer_service k; Ktext.trap_exit k ]
  | None -> ());
  Machine.now sys.machine

let sleep_for (sys : Sched.t) ~cycles =
  let th = Sched.self () in
  let k = sys.ktext in
  Ktext.exec_in k th.t_task.text ~offset:0x100 ~bytes:144;
  Ktext.exec k ~frame:th.stack_base
    [ Ktext.trap_entry k; Ktext.timer_service k ];
  Machine.Event_queue.schedule sys.machine.Machine.events
    ~at:(Machine.now sys.machine + max 1 cycles)
    (fun () ->
      Ktext.exec sys.ktext [ Ktext.irq_entry sys.ktext; Ktext.timer_service sys.ktext ];
      Sched.wake sys th);
  let r = Sched.block "sleep" in
  Ktext.exec k ~frame:th.stack_base [ Ktext.trap_exit k ];
  r

let arm_oneshot (sys : Sched.t) ~after f =
  let t = { cancelled = false; fired = 0 } in
  Machine.Event_queue.schedule sys.machine.Machine.events
    ~at:(Machine.now sys.machine + max 1 after)
    (fun () ->
      if not t.cancelled then begin
        Ktext.exec sys.ktext
          [ Ktext.irq_entry sys.ktext; Ktext.timer_service sys.ktext ];
        t.fired <- t.fired + 1;
        f ()
      end);
  t

let arm_periodic (sys : Sched.t) ~every ?count f =
  let t = { cancelled = false; fired = 0 } in
  let every = max 1 every in
  let rec arm () =
    Machine.Event_queue.schedule sys.machine.Machine.events
      ~at:(Machine.now sys.machine + every)
      (fun () ->
        if
          (not t.cancelled)
          && match count with Some c -> t.fired < c | None -> true
        then begin
          Ktext.exec sys.ktext
            [ Ktext.irq_entry sys.ktext; Ktext.timer_service sys.ktext ];
          t.fired <- t.fired + 1;
          f ();
          (match count with
          | Some c when t.fired >= c -> ()
          | Some _ | None -> arm ())
        end)
  in
  arm ();
  t

let cancel t = t.cancelled <- true
let fired t = t.fired

let with_deadline (sys : Sched.t) ~cycles f =
  let th = Sched.self () in
  (* [live] guards the expiry: once the body finished (or raised), a
     later firing must not wake the thread out of some unrelated wait. *)
  let live = ref true in
  let t =
    arm_oneshot sys ~after:cycles (fun () ->
        if !live then Sched.wake sys ~result:Kern_timed_out th)
  in
  Fun.protect
    ~finally:(fun () ->
      live := false;
      cancel t)
    f
