(** Virtual memory: objects, maps, faults, paging and coerced memory.

    The design follows Mach 3.0 — page-oriented, lazy, copy-on-write,
    with memory objects optionally backed by an external pager — plus the
    two extensions the paper describes: {e coerced memory} (shared memory
    that appears at the same address in every address space, required by
    OS/2 semantics) and eager, commitment-oriented allocation (what the
    OS/2 personality's byte-granularity manager asks for underneath).

    Physical residency is accounted against a global frame pool sized by
    the machine's memory; exceeding it triggers FIFO eviction through the
    default pager.  A faulting thread blocks for the duration of the
    simulated page-in I/O, which is what makes the 16 MB Table 1 machine
    page visibly under the graphics working sets. *)

open Ktypes

val object_create :
  Sched.t -> ?backing:backing_store -> ?tag:string -> bytes:int -> unit ->
  vm_object

val allocate :
  Sched.t -> task -> bytes:int -> ?eager:bool -> unit -> int
(** Anonymous memory in the task's map; returns the base address.
    [eager] commits (makes resident) every page immediately. *)

val map_object :
  Sched.t -> task -> vm_object -> ?at:int -> ?offset:int -> bytes:int ->
  ?prot:protection -> ?cow:bool -> ?coerced:bool -> unit -> int
(** Map [bytes] of the object into the task's map; returns the mapped
    base address (fresh from the arena unless [at] is given).
    @raise Kern_error [Kern_no_space] when [at] overlaps an entry. *)

val allocate_coerced : Sched.t -> task list -> bytes:int -> int
(** One object mapped at the same address in every listed task — the
    paper's coerced memory.  Additional tasks can be attached later with
    {!map_object} [~at:addr ~coerced:true]. *)

val deallocate : Sched.t -> task -> addr:int -> unit
(** Remove the entry containing [addr] and release its resident pages.
    @raise Kern_error [Kern_invalid_argument] when nothing is mapped. *)

val touch :
  Sched.t -> task -> addr:int -> ?write:bool -> bytes:int -> unit -> unit
(** Access memory: resolves faults page by page (zero-fill, COW copy or
    pager I/O — the calling thread blocks for I/O) and charges the data
    traffic through the cache model.
    @raise Kern_error [Kern_protection_failure] on a write to read-only
    memory, [Kern_invalid_argument] on an unmapped address. *)

val virtual_copy :
  Sched.t -> src_task:task -> addr:int -> bytes:int -> dst_task:task -> int
(** The Mach 3.0 out-of-line transfer: map a copy-on-write shadow of the
    source range into the destination, paying the per-page map
    manipulation now and the copy on first write.  Returns the address in
    the destination map. *)

val remap_move :
  Sched.t -> src_task:task -> addr:int -> bytes:int -> dst_task:task -> int
(** Zero-copy donation: the receiver maps the sender's pages over
    [addr, addr+bytes) and the sender's range becomes fresh zero-fill
    memory.  Charged one map-entry chunk plus a TLB shootdown — never
    per byte.  Returns the address in the destination map.
    @raise Kern_error [Kern_invalid_argument] unless the range is
    page-aligned and covered by a single map entry. *)

val remap_cow :
  Sched.t -> src_task:task -> addr:int -> bytes:int -> dst_task:task -> int
(** Zero-copy sharing: both sides end up shadowing a frozen snapshot of
    the range, so a later write on either side breaks into a private
    page and can never be observed by the other.  Same cost shape and
    alignment requirements as {!remap_move}. *)

val set_unmap_hook : vm_object -> (unit -> unit) -> unit
(** Arrange for [hook] to run when a mapping of this object is torn down
    by {!deallocate} (used by the file server to unpin cache pages that
    are mapped out to a client).  One-shot: the hook is cleared before
    it runs. *)

val write_stamp : Sched.t -> task -> addr:int -> int -> unit
val read_stamp : Sched.t -> task -> addr:int -> int
(** Page-content stamps: the simulator carries no real bytes, so a
    one-word stamp per page stands in for contents when tests assert
    transfer correctness.  Both perform the access (faults, COW breaks,
    cache traffic) that a real one-word load/store at [addr] would. *)

val find_entry : vm_map -> int -> vm_entry option

val resident_pages : Sched.t -> int
val committed_bytes : task -> int
(** Eager entries count in full; lazy entries count their resident
    pages. *)

val entry_count : task -> int

val set_default_backing : Sched.t -> backing_store -> unit

val null_backing : backing_store
(** A backing store with no latency and no effect — for unit tests. *)

val page_faults : Sched.t -> int
val page_ins : Sched.t -> int
val page_outs : Sched.t -> int
(** Counters since boot (stored globally per scheduler). *)
