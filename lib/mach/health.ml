(* Health traps: the per-server progress state a reincarnation service
   pings.

   A [beat] is two words the server's RPC loop stamps for free:
   requests completed, and when the request in hand began (-1 when
   idle).  A dedicated health thread serves pings off a separate health
   port and answers from the beat alone, so it stays responsive while
   the main loop is wedged — and the pong's [busy_since] is exactly what
   a per-request watchdog needs to see the wedge.  A dead health port
   (or a ping timeout) means the whole task is gone, which the
   supervisor's dead-name watch already covers. *)

open Ktypes

type beat = {
  mutable hb_served : int;  (* requests completed by the main loop *)
  mutable hb_busy_since : int;  (* global-cycle stamp of the request in
                                   hand; -1 when the loop is idle *)
}

let beat () = { hb_served = 0; hb_busy_since = -1 }

type payload +=
  | H_ping
  | H_pong of { hp_served : int; hp_busy_since : int }

let op_ping = 0x6a

let ping_msg () = simple_message ~op:op_ping ~inline_bytes:16 ~payload:H_ping ()

(* The heartbeat handler: reads the beat, builds the pong.  It runs on
   the health thread between a dequeue and a reply and must never park
   that thread — a blocking health handler is indistinguishable from the
   wedge it exists to detect. *)
let[@machlint.no_block] handler (b : beat) (req : message) =
  match req.msg_payload with
  | H_ping ->
      simple_message ~op:op_ping ~inline_bytes:16
        ~payload:
          (H_pong { hp_served = b.hb_served; hp_busy_since = b.hb_busy_since })
        ()
  | _ -> simple_message ~payload:(P_error Kern_invalid_argument) ()
