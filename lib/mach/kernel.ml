open Ktypes

type t = {
  machine : Machine.t;
  ktext : Ktext.t;
  sys : Sched.t;
  io : Io.t;
}

let boot machine =
  let ktext = Ktext.create machine in
  let sys = Sched.create machine ktext in
  let io = Io.create sys in
  { machine; ktext; sys; io }

let run t = Sched.run t.sys
let run_until t pred = Sched.run_until t.sys pred

let task_create t ~name ?personality ?text_bytes ?data_bytes () =
  Sched.task_create t.sys ~name ?personality ?text_bytes ?data_bytes ()

let thread_spawn t task ~name ?affinity ?bound body =
  Sched.thread_spawn t.sys task ~name ?affinity ?bound body
let tasks t = List.rev t.sys.Sched.tasks

let pp_tasks ppf t =
  let pp_task ppf task =
    Format.fprintf ppf "task %-24s personality=%-6s threads=%d entries=%d"
      task.task_name task.personality
      (List.length task.threads)
      (Vm.entry_count task)
  in
  Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list pp_task) (tasks t)
