type dloc =
  | Kdata of int  (* offset into the kernel data region *)
  | Frame of int  (* offset from the current kernel stack frame *)

type chunk = {
  ck_region : [ `Core | `Ipc ];
  ck_offset : int;
  ck_bytes : int;
  ck_loads : (dloc * int) list;
  ck_stores : (dloc * int) list;
}

type buffer_stats = {
  bs_allocs : int;
  bs_frees : int;
  bs_recycles : int;
  bs_resets : int;
  bs_in_use_bytes : int;
  bs_peak_bytes : int;
  bs_capacity_bytes : int;
}

type t = {
  machine : Machine.t;
  text : Machine.Layout.region;
  ipc_text : Machine.Layout.region;
  data : Machine.Layout.region;
  buffers : Machine.Layout.region;
  percpu : Machine.Layout.region option;
      (* SMP only: per-CPU replicas of the hot kernel data structures
         (run queue, port/message bookkeeping, timer state), one 4 KB
         window per CPU.  The scheduler rework keeps each CPU's kernel
         state CPU-local — cross-CPU changes travel as messages — so
         [Kdata] traffic resolves into the executing CPU's window and
         never ping-pongs coherence.  [None] on a uniprocessor: there
         [Kdata] stays in [data] and the address stream is bit-for-bit
         the pre-SMP one. *)
  scratch_frame : int;
  (* kernel message-buffer free list: extents of (offset, size) within
     [buffers], sorted by offset, plus live reservations by address.
     [buf_next] is the next-fit roving pointer. *)
  mutable buf_free : (int * int) list;
  mutable buf_next : int;
  buf_live : (int, int) Hashtbl.t;
  (* size-class quick lists: freed small buffers parked by rounded size
     for LIFO reuse, the way kalloc front-ends the VM allocator.  A hit
     here is a recycle; the extents only see small frees when the quick
     lists are flushed under pressure.  Keyed by (cpu, size): on an SMP
     machine each CPU recycles the buffers it freed, objcache-style, so
     a warm message buffer never migrates to another CPU's cache via
     the free list (on one CPU the key degenerates to the size). *)
  buf_quick : (int * int, int list ref) Hashtbl.t;
  mutable buf_allocs : int;
  mutable buf_frees : int;
  mutable buf_recycles : int;
  mutable buf_resets : int;
  mutable buf_in_use : int;
  mutable buf_peak : int;
  (* Machcheck attachment: the buffer-lifetime sanitizer mirrors this
     free list.  None = off, and every hook below is a single match. *)
  mutable kt_checks : Check.t option;
  mutable kt_space : int;
}

let create (m : Machine.t) =
  let alloc name kind size = Machine.Layout.alloc m.layout ~name ~kind ~size in
  let text = alloc "kernel.text" Machine.Layout.Code (64 * 1024) in
  let ipc_text = alloc "kernel.ipc-text" Machine.Layout.Code (48 * 1024) in
  let data = alloc "kernel.data" Machine.Layout.Data (64 * 1024) in
  let buffers = alloc "kernel.msg-buffers" Machine.Layout.Data (64 * 1024) in
  let ncpus = m.Machine.config.Machine.Config.ncpus in
  let percpu =
    if ncpus > 1 then
      Some (alloc "kernel.percpu-data" Machine.Layout.Data (ncpus * 4096))
    else None
  in
  {
    machine = m;
    text;
    ipc_text;
    data;
    buffers;
    percpu;
    scratch_frame = data.Machine.Layout.base + (60 * 1024);
    buf_free = [ (0, buffers.Machine.Layout.size) ];
    buf_next = 0;
    buf_live = Hashtbl.create 64;
    buf_quick = Hashtbl.create 16;
    buf_allocs = 0;
    buf_frees = 0;
    buf_recycles = 0;
    buf_resets = 0;
    buf_in_use = 0;
    buf_peak = 0;
    kt_checks = (match Check.installed () with Some c -> Some c | None -> None);
    kt_space = (match Check.installed () with Some c -> Check.new_space c | None -> 0);
  }

let set_checks t chk =
  t.kt_checks <- Some chk;
  t.kt_space <- Check.new_space chk

let machine t = t.machine
let text t = t.text
let ipc_text t = t.ipc_text
let data t = t.data

let chunk ?(region = `Core) ~offset ~bytes ?(loads = []) ?(stores = []) () =
  { ck_region = region; ck_offset = offset; ck_bytes = bytes;
    ck_loads = loads; ck_stores = stores }

let chunk_bytes c = c.ck_bytes

(* --- Chunk table ------------------------------------------------------ *)
(* Offsets are within the owning text region; the core region and the
   ipc region are page-aligned, so (offset mod 4096) determines I-cache
   set placement on the 8 KB 2-way Pentium cache. *)

(* Trap path: chosen so its pieces occupy disjoint set ranges — the hot
   trap path of a tuned kernel stays cache-resident. *)
let c_trap_entry =
  chunk ~offset:0x0100 ~bytes:560
    ~stores:[ (Frame 0, 128) ]  (* push register frame *)
    ~loads:[ (Kdata 0x040, 16) ] ()

let c_syscall_dispatch =
  chunk ~offset:0x0c00 ~bytes:192 ~loads:[ (Kdata 0x080, 32) ] ()

let c_thread_self_service =
  chunk ~offset:0x0800 ~bytes:560
    ~loads:[ (Kdata 0x100, 32) ]
    ~stores:[ (Frame 128, 96) ] ()

let c_generic_service =
  chunk ~offset:0x0a30 ~bytes:448
    ~loads:[ (Kdata 0x140, 64) ]
    ~stores:[ (Frame 128, 32) ] ()

let c_trap_exit =
  chunk ~offset:0x0400 ~bytes:416 ~loads:[ (Frame 0, 128) ] ()

(* IBM RPC path: the rework's lighter kernel entry plus send/reply
   bodies.  Offsets deliberately alias user stubs and each other mod
   4 KB (0x1100 = 0x100, 0x1400/0x1500 = 0x400/0x500, 0x2400 = 0x400),
   the way an unlaid-out kernel link map falls out; this is the source
   of the RPC path's steady-state I-cache misses. *)
let c_rpc_entry =
  chunk ~offset:0x1100 ~bytes:384 ~stores:[ (Frame 0, 96) ]
    ~loads:[ (Kdata 0x040, 16) ] ()

let c_rpc_send =
  chunk ~offset:0x1500 ~bytes:512
    ~loads:[ (Kdata 0x200, 96) ]
    ~stores:[ (Kdata 0x240, 256); (Frame 160, 64) ] ()

let c_rpc_reply =
  chunk ~offset:0x1400 ~bytes:448
    ~loads:[ (Kdata 0x240, 96) ]
    ~stores:[ (Kdata 0x280, 192) ] ()

let c_cap_translate =
  chunk ~offset:0x1f00 ~bytes:160 ~loads:[ (Kdata 0x300, 64) ] ()

let c_rpc_handoff =
  chunk ~offset:0x1c00 ~bytes:288
    ~loads:[ (Kdata 0x340, 32) ]
    ~stores:[ (Kdata 0x360, 96) ] ()

(* Scheduler and switch machinery. *)
let c_sched_pick =
  chunk ~offset:0x2100 ~bytes:192 ~loads:[ (Kdata 0x400, 96) ] ()

let c_context_switch =
  chunk ~offset:0x2400 ~bytes:288
    ~stores:[ (Frame 0, 224) ]  (* save outgoing register state *)
    ~loads:[ (Frame 256, 224) ]  (* load incoming state *) ()

let c_pmap_switch =
  chunk ~offset:0x2900 ~bytes:160 ~loads:[ (Kdata 0x480, 32) ] ()

(* VM paths. *)
let c_vm_fault =
  chunk ~offset:0x3000 ~bytes:1280
    ~loads:[ (Kdata 0x500, 128) ]
    ~stores:[ (Kdata 0x580, 64); (Frame 0, 64) ] ()

let c_vm_map_enter =
  chunk ~offset:0x3800 ~bytes:512
    ~loads:[ (Kdata 0x600, 64) ]
    ~stores:[ (Kdata 0x640, 64) ] ()

let c_vm_page_insert =
  chunk ~offset:0x3a00 ~bytes:256 ~stores:[ (Kdata 0x680, 32) ] ()

(* Zero-copy remap: clip/split the source map entry, enter the object
   into the destination map, adjust protections.  Charged once per map
   entry regardless of how many bytes it covers — that independence from
   byte count is the whole point of the remap path (the per-page cost is
   the TLB shootdown the caller charges at the machine layer). *)
let c_vm_remap_entry =
  chunk ~offset:0x3c00 ~bytes:480
    ~loads:[ (Kdata 0x600, 64); (Kdata 0x680, 32) ]
    ~stores:[ (Kdata 0x640, 64) ] ()

let c_pageout =
  chunk ~offset:0x3e00 ~bytes:640
    ~loads:[ (Kdata 0x6c0, 96) ]
    ~stores:[ (Kdata 0x700, 64) ] ()

(* Interrupts, I/O, timers, synchronizers. *)
let c_irq_entry =
  chunk ~offset:0x4100 ~bytes:384 ~stores:[ (Frame 0, 96) ] ()

let c_irq_reflect =
  chunk ~offset:0x4300 ~bytes:512
    ~loads:[ (Kdata 0x740, 32) ]
    ~stores:[ (Kdata 0x760, 32) ] ()

let c_dma_setup =
  chunk ~offset:0x4600 ~bytes:448
    ~loads:[ (Kdata 0x7a0, 32) ]
    ~stores:[ (Kdata 0x7c0, 48) ] ()

let c_timer_service =
  chunk ~offset:0x4900 ~bytes:384
    ~loads:[ (Kdata 0x800, 48) ]
    ~stores:[ (Kdata 0x820, 16) ] ()

let c_sync_fast =
  chunk ~offset:0x4b00 ~bytes:224
    ~loads:[ (Kdata 0x840, 16) ]
    ~stores:[ (Kdata 0x850, 16) ] ()

let c_sync_block =
  chunk ~offset:0x4d00 ~bytes:320
    ~loads:[ (Kdata 0x860, 32) ]
    ~stores:[ (Kdata 0x880, 32) ] ()

(* Dead-name notification delivery: walk the port's watcher list and
   post each notification (the supervision machinery rides on this). *)
let c_notify =
  chunk ~offset:0x5100 ~bytes:224
    ~loads:[ (Kdata 0x8a0, 32) ]
    ~stores:[ (Kdata 0x8c0, 32) ] ()

(* Fault-injection bookkeeping: only charged when a plan actually
   injects something, so a disabled plan perturbs no measurement. *)
let c_fault_inject =
  chunk ~offset:0x5300 ~bytes:160 ~loads:[ (Kdata 0x8e0, 16) ] ()

(* The copy loop: one fetch of the loop body per 32-byte line moved. *)
let c_copy_loop = chunk ~offset:0x2300 ~bytes:32 ()

(* The user-level system-call stub shape (lives in each task's text; the
   offset here is within *that* region). *)
let c_user_stub =
  chunk ~offset:0x0100 ~bytes:128 ~stores:[ (Frame 512, 64) ] ()

(* --- Mach 3.0 mach_msg path (the code the rework deleted) ------------- *)
(* Substantially larger text, heavier queue manipulation, and reply-port
   management on every interaction. *)

let ipc ~offset ~bytes ?(loads = []) ?(stores = []) () =
  chunk ~region:`Ipc ~offset ~bytes ~loads ~stores ()

let c_mach_msg_entry =
  ipc ~offset:0x0100 ~bytes:2304
    ~loads:[ (Kdata 0x900, 192) ]
    ~stores:[ (Frame 0, 192); (Kdata 0x940, 96) ] ()

let c_msg_copyin =
  ipc ~offset:0x0c00 ~bytes:1536
    ~loads:[ (Kdata 0x980, 96) ]
    ~stores:[ (Kdata 0x9c0, 96) ] ()

let c_right_transfer =
  ipc ~offset:0x1400 ~bytes:1024
    ~loads:[ (Kdata 0xa00, 96) ]
    ~stores:[ (Kdata 0xa40, 96) ] ()

let c_msg_enqueue =
  ipc ~offset:0x1900 ~bytes:1280
    ~loads:[ (Kdata 0xa80, 128) ]
    ~stores:[ (Kdata 0xac0, 192) ] ()

let c_reply_port_setup =
  ipc ~offset:0x1f00 ~bytes:1152
    ~loads:[ (Kdata 0xb00, 64) ]
    ~stores:[ (Kdata 0xb40, 64) ] ()

(* The per-thread reply-port cache hit: a table lookup and a liveness
   check instead of allocate/setup/deallocate on every interaction. *)
let c_reply_port_reuse =
  ipc ~offset:0x5600 ~bytes:160 ~loads:[ (Kdata 0xb00, 32) ] ()

let c_msg_dequeue =
  ipc ~offset:0x2500 ~bytes:1280
    ~loads:[ (Kdata 0xac0, 128) ]
    ~stores:[ (Kdata 0xa80, 64) ] ()

let c_msg_copyout =
  ipc ~offset:0x2b00 ~bytes:1536
    ~loads:[ (Kdata 0x9c0, 96) ]
    ~stores:[ (Kdata 0x980, 96) ] ()

let c_receive_path =
  ipc ~offset:0x3200 ~bytes:2048
    ~loads:[ (Kdata 0xb80, 192) ]
    ~stores:[ (Frame 0, 160); (Kdata 0xbc0, 96) ] ()

let c_mach_msg_exit =
  ipc ~offset:0x3b00 ~bytes:896 ~loads:[ (Frame 0, 192) ] ()

let c_port_alloc =
  ipc ~offset:0x4000 ~bytes:2048
    ~loads:[ (Kdata 0xc00, 128) ]
    ~stores:[ (Kdata 0xc40, 192) ] ()

let c_port_dealloc =
  ipc ~offset:0x4900 ~bytes:1536
    ~loads:[ (Kdata 0xc40, 128) ]
    ~stores:[ (Kdata 0xc00, 96) ] ()

let c_virtual_copy_per_page =
  ipc ~offset:0x4f00 ~bytes:1216
    ~loads:[ (Kdata 0xc80, 96) ]
    ~stores:[ (Kdata 0xcc0, 96) ] ()

(* --- Execution --------------------------------------------------------- *)

let region_of t = function `Core -> t.text | `Ipc -> t.ipc_text

let resolve t cpu ~frame = function
  | Kdata off -> (
      match t.percpu with
      | None -> t.data.Machine.Layout.base + off
      | Some r -> r.Machine.Layout.base + (Machine.Cpu.id cpu * 4096) + off)
  | Frame off -> frame + off

(* Chunk replay runs on every kernel interaction the simulation models;
   it drives the CPU's direct execution entry points instead of building
   Footprint lists, so a warm path allocates nothing on the host. *)

let rec run_loads t cpu frame = function
  | [] -> ()
  | (loc, bytes) :: rest ->
      Machine.Cpu.load cpu ~addr:(resolve t cpu ~frame loc) ~bytes;
      run_loads t cpu frame rest

let rec run_stores t cpu frame = function
  | [] -> ()
  | (loc, bytes) :: rest ->
      Machine.Cpu.store cpu ~addr:(resolve t cpu ~frame loc) ~bytes;
      run_stores t cpu frame rest

let exec_chunk t ~frame c =
  let cpu = t.machine.Machine.cpu in
  Machine.Cpu.fetch cpu (region_of t c.ck_region) ~offset:c.ck_offset
    ~bytes:c.ck_bytes;
  run_loads t cpu frame c.ck_loads;
  run_stores t cpu frame c.ck_stores

let exec1 t ?frame c =
  exec_chunk t ~frame:(Option.value ~default:t.scratch_frame frame) c

let exec t ?frame chunks =
  let frame = Option.value ~default:t.scratch_frame frame in
  List.iter (fun c -> exec_chunk t ~frame c) chunks

let exec_n t ?frame n c =
  let frame = Option.value ~default:t.scratch_frame frame in
  for _ = 1 to max 0 n do
    exec_chunk t ~frame c
  done

let copy t ~src ~dst ~bytes =
  if bytes > 0 then begin
    let cpu = t.machine.Machine.cpu in
    let lines = (bytes + 31) / 32 in
    for i = 0 to lines - 1 do
      let off = i * 32 in
      let n = min 32 (bytes - off) in
      Machine.Cpu.fetch cpu t.text ~offset:c_copy_loop.ck_offset
        ~bytes:c_copy_loop.ck_bytes;
      Machine.Cpu.load cpu ~addr:(src + off) ~bytes:n;
      Machine.Cpu.store cpu ~addr:(dst + off) ~bytes:n
    done
  end

(* --- Kernel message buffers -------------------------------------------- *)
(* Two-level allocator over the 64 KB [kernel.msg-buffers] region,
   32-byte granules.  Small frees park on per-size quick lists and are
   handed back LIFO (a recycle); everything else lives in a sorted,
   coalescing extent list served next-fit.  Every handed-out buffer
   satisfies [base <= addr && addr + bytes <= base + size].  Under
   pressure the quick lists are flushed back into the extents; if the
   region is still genuinely exhausted (callers leaked, or sustained
   queueing outran receives) the arena is reset wholesale — outstanding
   buffers alias from then on, which only perturbs cache costing, never
   correctness — and the reset is counted so benchmarks can assert it
   never happens under normal load. *)

let granule = 32

(* Frees at or below this size park on a size-class quick list for LIFO
   reuse instead of going straight back into the extents — the analogue
   of Mach's kmsg zone, which serves small messages from a per-size zone
   and sends large ones to the general allocator.  Message-sized buffers
   dominate IPC traffic, so almost every alloc after warm-up is a
   quick-list hit — counted as a recycle.  Larger buffers (bulk-data
   bounces) keep the roving next-fit behaviour and stay cold in the
   D-cache, as a hardware buffer ring behaves. *)
let quick_max = 512

(* Which CPU's quick list to use: the one executing right now.  On a
   uniprocessor this is always CPU 0, so the key is just the size. *)
let quick_cpu t = Machine.Cpu.id t.machine.Machine.cpu

let buffer_reset t =
  t.buf_free <- [ (0, t.buffers.Machine.Layout.size) ];
  t.buf_next <- 0;
  Hashtbl.reset t.buf_live;
  Hashtbl.reset t.buf_quick;
  t.buf_in_use <- 0;
  match t.kt_checks with
  | None -> ()
  | Some c -> Check.buf_reset c ~space:t.kt_space

(* Next-fit within the sorted extent list: first hole at or after [from]
   that can hold [need] bytes.  The roving pointer makes transient
   buffers cycle through the region (cold in the D-cache, as a hardware
   buffer ring behaves) instead of hammering one warm address. *)
let alloc_from t ~need ~from =
  let rec go acc = function
    | [] -> None
    | (off, sz) :: rest ->
        let start = if off >= from then off else from in
        if start + need <= off + sz then begin
          let acc = if start > off then (off, start - off) :: acc else acc in
          let rest =
            if off + sz > start + need then
              (start + need, off + sz - start - need) :: rest
            else rest
          in
          Some (start, List.rev_append acc rest)
        end
        else go ((off, sz) :: acc) rest
  in
  go [] t.buf_free

(* Coalescing insertion into the sorted extent list. *)
let insert_extent free ~off ~size =
  let rec insert = function
    | [] -> [ (off, size) ]
    | (o, s) :: rest when off + size < o -> (off, size) :: (o, s) :: rest
    | (o, s) :: rest when off + size = o -> (off, size + s) :: rest
    | (o, s) :: rest when o + s = off -> (
        match rest with
        | (o2, s2) :: rest' when off + size = o2 -> (o, s + size + s2) :: rest'
        | _ -> (o, s + size) :: rest)
    | extent :: rest -> extent :: insert rest
  in
  insert free

(* Return every parked quick-list buffer to the extents (coalescing), so
   a large request can claim space the size classes were hoarding. *)
let flush_quick t =
  let any = Hashtbl.length t.buf_quick > 0 in
  Hashtbl.iter
    (fun (_cpu, size) offs ->
      List.iter
        (fun off -> t.buf_free <- insert_extent t.buf_free ~off ~size)
        !offs)
    t.buf_quick;
  Hashtbl.reset t.buf_quick;
  any

let finish_alloc t ~off ~need ~recycled =
  let addr = t.buffers.Machine.Layout.base + off in
  Hashtbl.replace t.buf_live addr need;
  t.buf_allocs <- t.buf_allocs + 1;
  if recycled then t.buf_recycles <- t.buf_recycles + 1;
  t.buf_in_use <- t.buf_in_use + need;
  if t.buf_in_use > t.buf_peak then t.buf_peak <- t.buf_in_use;
  (match t.kt_checks with
  | None -> ()
  | Some c -> Check.buf_allocated c ~space:t.kt_space ~addr ~bytes:need);
  addr

let rec buffer_alloc t ~bytes =
  let size = t.buffers.Machine.Layout.size in
  let need = min ((max granule bytes + granule - 1) / granule * granule) size in
  let qkey = (quick_cpu t, need) in
  match Hashtbl.find_opt t.buf_quick qkey with
  | Some ({ contents = off :: rest } as offs) ->
      (* size-class hit: LIFO reuse of the most recently freed buffer *)
      offs := rest;
      if rest = [] then Hashtbl.remove t.buf_quick qkey;
      finish_alloc t ~off ~need ~recycled:true
  | _ -> (
      let found =
        match alloc_from t ~need ~from:t.buf_next with
        | Some _ as r -> r
        | None -> alloc_from t ~need ~from:0  (* wrap *)
      in
      match found with
      | Some (off, free') ->
          t.buf_free <- free';
          t.buf_next <- off + need;
          finish_alloc t ~off ~need ~recycled:false
      | None ->
          if flush_quick t then buffer_alloc t ~bytes
          else begin
            t.buf_resets <- t.buf_resets + 1;
            buffer_reset t;
            buffer_alloc t ~bytes
          end)

let buffer_use t addr =
  (* A kernel path is about to read or write [addr]: let the sanitizer
     flag it if the buffer was already released. *)
  match t.kt_checks with
  | None -> ()
  | Some c -> Check.buf_used c ~space:t.kt_space ~addr

let buffer_free t addr =
  (match t.kt_checks with
  | None -> ()
  | Some c -> Check.buf_released c ~space:t.kt_space ~addr);
  match Hashtbl.find_opt t.buf_live addr with
  | None -> ()  (* stale handle from before a reset, or never allocated *)
  | Some size ->
      Hashtbl.remove t.buf_live addr;
      t.buf_frees <- t.buf_frees + 1;
      t.buf_in_use <- t.buf_in_use - size;
      let off = addr - t.buffers.Machine.Layout.base in
      if size <= quick_max then begin
        let qkey = (quick_cpu t, size) in
        match Hashtbl.find_opt t.buf_quick qkey with
        | Some offs -> offs := off :: !offs
        | None -> Hashtbl.replace t.buf_quick qkey (ref [ off ])
      end
      else t.buf_free <- insert_extent t.buf_free ~off ~size

let buffer_stats t =
  {
    bs_allocs = t.buf_allocs;
    bs_frees = t.buf_frees;
    bs_recycles = t.buf_recycles;
    bs_resets = t.buf_resets;
    bs_in_use_bytes = t.buf_in_use;
    bs_peak_bytes = t.buf_peak;
    bs_capacity_bytes = t.buffers.Machine.Layout.size;
  }

let buffer_region t = t.buffers

let exec_in t region ~offset ~bytes =
  Machine.Cpu.fetch t.machine.Machine.cpu region ~offset ~bytes

(* --- Accessors --------------------------------------------------------- *)

let user_stub _ = c_user_stub
let trap_entry _ = c_trap_entry
let syscall_dispatch _ = c_syscall_dispatch
let thread_self_service _ = c_thread_self_service
let generic_service _ = c_generic_service
let trap_exit _ = c_trap_exit
let rpc_send _ = c_rpc_send
let rpc_reply _ = c_rpc_reply
let cap_translate _ = c_cap_translate
let rpc_entry _ = c_rpc_entry
let rpc_handoff _ = c_rpc_handoff
let mach_msg_entry _ = c_mach_msg_entry
let msg_copyin _ = c_msg_copyin
let msg_copyout _ = c_msg_copyout
let right_transfer _ = c_right_transfer
let msg_enqueue _ = c_msg_enqueue
let msg_dequeue _ = c_msg_dequeue
let receive_path _ = c_receive_path
let reply_port_setup _ = c_reply_port_setup
let reply_port_reuse _ = c_reply_port_reuse
let mach_msg_exit _ = c_mach_msg_exit
let port_alloc_path _ = c_port_alloc
let port_dealloc_path _ = c_port_dealloc
let virtual_copy_per_page _ = c_virtual_copy_per_page
let sched_pick _ = c_sched_pick
let context_switch _ = c_context_switch
let pmap_switch _ = c_pmap_switch
let vm_fault_path _ = c_vm_fault
let vm_map_enter _ = c_vm_map_enter
let vm_remap_entry _ = c_vm_remap_entry
let vm_page_insert _ = c_vm_page_insert
let pageout_path _ = c_pageout
let irq_entry _ = c_irq_entry
let irq_reflect _ = c_irq_reflect
let dma_setup _ = c_dma_setup
let timer_service _ = c_timer_service
let sync_fast _ = c_sync_fast
let sync_block _ = c_sync_block
let notify_path _ = c_notify
let fault_inject _ = c_fault_inject
