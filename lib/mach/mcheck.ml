(* Machcheck glue: translates kernel objects ({!Ktypes}) into the
   integer/string events the standalone {!Check} library records.  Every
   entry point is a no-op costing one [None] match when no checker is
   attached — the [Fault] pattern — and charges no simulated cycles when
   one is. *)

open Ktypes

let right_of = function
  | Receive_right -> Check.R_receive
  | Send_right -> Check.R_send
  | Send_once_right -> Check.R_send_once

let tlabel (th : thread) = th.t_task.task_name ^ "." ^ th.tname

let on (sys : Sched.t) f =
  match sys.checks with None -> () | Some c -> f c sys.check_space

(* --- rights sanitizer --------------------------------------------------- *)

let right_allocated sys (task : task) (port : port) =
  on sys (fun c space ->
      Check.right_allocated c ~space ~task:task.task_id ~tname:task.task_name
        ~port:port.port_id ~pname:port.pname)

let right_inserted sys (task : task) (port : port) ~right ~now =
  on sys (fun c space ->
      Check.right_inserted c ~space ~task:task.task_id ~tname:task.task_name
        ~port:port.port_id ~pname:port.pname ~right:(right_of right)
        ~now:(right_of now))

let right_deallocated sys (task : task) (port : port) =
  on sys (fun c space ->
      Check.right_deallocated c ~space ~task:task.task_id ~port:port.port_id)

let dealloc_missing sys (task : task) ~name =
  on sys (fun c space ->
      Check.dealloc_missing c ~space ~task:task.task_id ~tname:task.task_name
        ~name)

let right_moved sys ~from_task ~to_task (port : port) right ~now =
  on sys (fun c space ->
      Check.right_moved c ~space ~from_task:from_task.task_id
        ~from_name:from_task.task_name ~to_task:to_task.task_id
        ~to_name:to_task.task_name ~port:port.port_id ~pname:port.pname
        ~right:(right_of right) ~now:(right_of now))

let port_destroyed sys (port : port) =
  on sys (fun c space -> Check.port_destroyed c ~space ~port:port.port_id)

let live_rights sys (task : task) =
  match sys.Sched.checks with
  | None -> 0
  | Some c -> Check.live_rights c ~space:sys.Sched.check_space ~task:task.task_id

let dead_rights sys (task : task) =
  match sys.Sched.checks with
  | None -> 0
  | Some c -> Check.dead_rights c ~space:sys.Sched.check_space ~task:task.task_id

(* --- deadlock detector -------------------------------------------------- *)

(* The threads of a port's receiving task: the holders that could
   unblock a sender waiting for queue room or a caller waiting for its
   RPC to be served. *)
let receiver_tids (port : port) =
  match port.receiver with
  | None -> []
  | Some task -> List.map (fun th -> th.tid) task.threads

let block_on sys (th : thread) ~res ~rdesc ~holders =
  on sys (fun c space ->
      Check.blocked_on c ~space ~tid:th.tid ~tname:(tlabel th)
        ~cpu:sys.Sched.active ~res ~rdesc ~holders)

let unblock sys (th : thread) =
  on sys (fun c space -> Check.unblocked c ~space ~tid:th.tid)

let retarget sys (th : thread) ~holders =
  on sys (fun c space -> Check.retarget c ~space ~tid:th.tid ~holders)

let acquired sys (th : thread) ~res =
  on sys (fun c space -> Check.acquired c ~space ~tid:th.tid ~res)

let released sys ~res = on sys (fun c space -> Check.released c ~space ~res)

(* --- buffer-lifetime sanitizer ------------------------------------------ *)

let buf_use (sys : Sched.t) addr =
  if addr <> 0 then Ktext.buffer_use sys.ktext addr

(* --- remap-ownership sanitizer ------------------------------------------ *)

let remap_moved sys (task : task) ~addr ~bytes =
  on sys (fun c space ->
      Check.remap_moved c ~space ~task:task.task_id ~tname:task.task_name
        ~addr ~bytes)

let remap_write sys (task : task) ~addr ~bytes =
  on sys (fun c space ->
      Check.remap_write c ~space ~task:task.task_id ~addr ~bytes)

let remap_clear sys (task : task) ~addr ~bytes =
  on sys (fun c space ->
      Check.remap_clear c ~space ~task:task.task_id ~addr ~bytes)

let cache_mapped_out sys ~addr ~pinned =
  on sys (fun c space -> Check.cache_mapped_out c ~space ~addr ~pinned)

let cache_unmapped sys ~addr =
  on sys (fun c space -> Check.cache_unmapped c ~space ~addr)

let cache_reused sys ~addr ~tag =
  on sys (fun c space -> Check.cache_reused c ~space ~addr ~tag)
