(** The Mach 3.0 IPC implementation ([mach_msg]).

    Queued, asynchronous message passing with reply ports: a send copies
    the inline body into a kernel buffer, transfers port rights, sets up
    copy-on-write shadows for out-of-line regions, and enqueues; a
    receive dequeues and copies out.  A client/server interaction is two
    full messages plus reply-port management.  This is the code the IBM
    project rewrote into {!Rpc}; both are kept so the 2–10× improvement
    claim can be measured (experiment E3). *)

open Ktypes

val send :
  Sched.t -> port -> ?reply_to:port -> message_builder -> kern_return
(** Asynchronous send from the current thread's task.  Blocks while the
    destination queue is full. *)

val receive : Sched.t -> port -> (message, kern_return) result
(** Blocking receive into the current thread's task.  Charges copy-out of
    the inline body and maps out-of-line regions copy-on-write (their copy
    cost lands on first touch, per Mach's virtual-copy strategy). *)

val call :
  Sched.t -> ?deadline:int -> port -> message_builder ->
  (message, kern_return) result
(** The classic client round trip: send the request carrying a reply
    port, receive on it.  The reply port comes from a per-thread cache —
    allocated on first use (or after the cached port dies) and reused on
    every later call, replacing the per-interaction allocate/destroy tax
    with a cheap lookup.  With [deadline] the round trip is abandoned
    after that many cycles ([Error Kern_timed_out]); any failed call
    retires the cached reply port so a late reply cannot be mistaken for
    the answer to the next call. *)

val call_retry :
  Sched.t -> ?attempts:int -> ?deadline:int -> ?backoff:int ->
  resolve:(unit -> port option) -> message_builder ->
  (message, kern_return) result
(** Bounded-retry client call for surviving server crashes: re-resolve
    the destination via [resolve] (a name-service lookup) before every
    attempt, call with [deadline] cycles (default 100k), and on a
    retryable failure ([Kern_port_dead], [Kern_timed_out],
    [Kern_aborted]) back off — [backoff] cycles (default 1k), doubling
    each round — and try again, up to [attempts] total tries (default
    4).  Gives up with the last error.  Re-issues are counted in
    [sys.retry_attempts] and charged as a user-level retry stub. *)

val reply_cache_hits : Sched.t -> int
(** Calls that reused the calling thread's cached reply port. *)

val reply_cache_misses : Sched.t -> int
(** Calls that had to allocate a reply port (first call of a thread, or
    cached port found dead). *)

val serve_one : Sched.t -> port -> (message -> message_builder) -> kern_return
(** Server side of one interaction: receive a request, run the handler,
    send its result to the request's reply port.  A handler raising
    [Kern_error] produces a [P_error] reply instead of propagating. *)

val serve : Sched.t -> port -> (message -> message_builder) -> unit
(** Serve forever, exiting only when the *service* port dies.  Per-call
    failures — a dead client reply port, a full reply queue, a handler
    error — are absorbed and the loop keeps going.  Honours the
    system's fault plan: an injected crash abandons the request in hand
    and destroys the service port. *)

val queued : port -> int
