open Ktypes

let default_buf task = task.data.Machine.Layout.base + 0x3800

let wake_one (sys : Sched.t) q =
  let rec loop () =
    match Queue.take_opt q with
    | None -> ()
    | Some th -> (
        match th.state with
        | Th_blocked _ -> Sched.wake sys th
        | Th_runnable | Th_running | Th_terminated -> loop ())
  in
  loop ()

let copy_request (sys : Sched.t) port client (mb : message_builder) =
  let k = sys.ktext in
  match port.receiver with
  | Some server_task ->
      let src = Option.value ~default:(default_buf client) mb.mb_inline_src in
      Ktext.copy k ~src ~dst:(default_buf server_task) ~bytes:mb.mb_inline_bytes;
      (* by-reference large data: one physical copy, sender to receiver *)
      List.iter
        (fun (addr, bytes) ->
          Ktext.copy k ~src:addr ~dst:(default_buf server_task) ~bytes)
        mb.mb_ool
  | None -> ()

let call (sys : Sched.t) port ?reply_bytes:_ (mb : message_builder) =
  let th = Sched.self () in
  let client = th.t_task in
  let frame = th.stack_base in
  let k = sys.ktext in
  (* client stub and the rework's light kernel entry *)
  Ktext.exec_in k client.text ~offset:0x100 ~bytes:128;
  Ktext.exec k ~frame
    [ Ktext.rpc_entry k; Ktext.syscall_dispatch k; Ktext.rpc_send k;
      Ktext.cap_translate k ];
  if port.dead then begin
    Ktext.exec1 k ~frame (Ktext.trap_exit k);
    Error Kern_port_dead
  end
  else begin
    copy_request sys port client mb;
    List.iter
      (fun (_r : port * right) -> Ktext.exec1 k ~frame (Ktext.cap_translate k))
      mb.mb_rights;
    let msg =
      {
        msg_op = mb.mb_op;
        msg_inline_bytes = mb.mb_inline_bytes;
        msg_payload = mb.mb_payload;
        msg_reply_to = None;
        msg_ool =
          List.map
            (fun (addr, bytes) ->
              { ool_addr = addr; ool_bytes = bytes; ool_copied = true })
            mb.mb_ool;
        msg_rights = mb.mb_rights;
        msg_kbuf = 0;
        msg_sender = Some client;
      }
    in
    let rx =
      { rx_client = th; rx_request = msg; rx_reply = None; rx_server = None }
    in
    Queue.add rx port.pending_calls;
    Ktext.exec1 k ~frame (Ktext.rpc_handoff k);
    wake_one sys port.waiting_servers;
    match Sched.block "rpc-call" with
    | Kern_success -> (
        (* resumed by the server's reply; return to user *)
        Ktext.exec1 k ~frame (Ktext.trap_exit k);
        match rx.rx_reply with
        | Some reply -> Ok reply
        | None -> Error Kern_aborted)
    | err ->
        Ktext.exec1 k ~frame (Ktext.trap_exit k);
        Error err
  end

(* Dequeue a call, blocking while none is pending; charges the dequeue
   handoff, the return to user and the demultiplexing stub. *)
let dequeue (sys : Sched.t) port th frame =
  let k = sys.ktext in
  let server = th.t_task in
  let rec get () =
    match Queue.take_opt port.pending_calls with
    | Some rx ->
        rx.rx_server <- Some th;
        Ktext.exec k ~frame [ Ktext.rpc_handoff k; Ktext.trap_exit k ];
        Ktext.exec_in k server.text ~offset:0x140 ~bytes:192;
        Ok rx
    | None ->
        if port.dead then begin
          Ktext.exec1 k ~frame (Ktext.trap_exit k);
          Error Kern_port_dead
        end
        else begin
          Queue.add th port.waiting_servers;
          match Sched.block "rpc-receive" with
          | Kern_success -> get ()
          | err ->
              Ktext.exec1 k ~frame (Ktext.trap_exit k);
              Error err
        end
  in
  get ()

let receive (sys : Sched.t) port =
  let th = Sched.self () in
  let server = th.t_task in
  let frame = th.stack_base in
  let k = sys.ktext in
  (* server loop head and kernel entry *)
  Ktext.exec_in k server.text ~offset:0x000 ~bytes:128;
  Ktext.exec k ~frame [ Ktext.rpc_entry k; Ktext.syscall_dispatch k ];
  dequeue sys port th frame

let finish_reply (sys : Sched.t) rx (mb : message_builder) server =
  let k = sys.ktext in
  let client = rx.rx_client.t_task in
  let src = Option.value ~default:(default_buf server) mb.mb_inline_src in
  Ktext.copy k ~src ~dst:(default_buf client) ~bytes:mb.mb_inline_bytes;
  rx.rx_reply <-
    Some
      {
        msg_op = mb.mb_op;
        msg_inline_bytes = mb.mb_inline_bytes;
        msg_payload = mb.mb_payload;
        msg_reply_to = None;
        msg_ool = [];
        msg_rights = mb.mb_rights;
        msg_kbuf = 0;
        msg_sender = Some server;
      };
  Sched.wake sys rx.rx_client

let reply (sys : Sched.t) rx (mb : message_builder) =
  let th = Sched.self () in
  let server = th.t_task in
  let frame = th.stack_base in
  let k = sys.ktext in
  Ktext.exec k ~frame
    [ Ktext.rpc_entry k; Ktext.syscall_dispatch k; Ktext.rpc_reply k ];
  finish_reply sys rx mb server;
  Ktext.exec1 k ~frame (Ktext.rpc_handoff k)

let reply_receive (sys : Sched.t) rx (mb : message_builder) port =
  let th = Sched.self () in
  let server = th.t_task in
  let frame = th.stack_base in
  let k = sys.ktext in
  (* one kernel entry covers the reply and the next receive — the
     combined primitive a synchronous-handoff kernel lives on *)
  Ktext.exec k ~frame
    [ Ktext.rpc_entry k; Ktext.syscall_dispatch k; Ktext.rpc_reply k ];
  finish_reply sys rx mb server;
  dequeue sys port th frame

let serve (sys : Sched.t) port handler =
  match receive sys port with
  | Error _ -> ()
  | Ok first ->
      let rec loop rx =
        let mb = handler rx.rx_request in
        match reply_receive sys rx mb port with
        | Ok next -> loop next
        | Error _ -> ()
      in
      loop first

let waiting_servers port = Queue.length port.waiting_servers
let pending_calls port = Queue.length port.pending_calls
