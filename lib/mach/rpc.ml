open Ktypes

let default_buf task = task.data.Machine.Layout.base + 0x3800

let wake_one (sys : Sched.t) q =
  let rec loop () =
    match Queue.take_opt q with
    | None -> ()
    | Some th -> (
        match th.state with
        | Th_blocked _ -> Sched.wake sys th
        | Th_runnable | Th_running | Th_terminated -> loop ())
  in
  loop ()

(* Fault-plan consultation; bookkeeping is charged only when a decision
   actually injects something (see Ipc for the same pattern). *)
let fault_on_send (sys : Sched.t) port =
  match sys.faults with
  | None -> Fault.M_pass
  | Some plan -> (
      match Fault.on_send plan ~port:port.pname with
      | Fault.M_pass -> Fault.M_pass
      | d ->
          Ktext.exec1 sys.ktext (Ktext.fault_inject sys.ktext);
          d)

let fault_on_request (sys : Sched.t) port =
  match sys.faults with
  | None -> Fault.S_continue
  | Some plan -> (
      match Fault.on_request plan ~port:port.pname with
      | Fault.S_continue -> Fault.S_continue
      | d ->
          Ktext.exec1 sys.ktext (Ktext.fault_inject sys.ktext);
          d)

(* Drop one exchange from a port's pending queue (the client abandoned
   it before any server picked it up). *)
let remove_pending port rx =
  let keep = Queue.create () in
  Queue.iter (fun r -> if r != rx then Queue.add r keep) port.pending_calls;
  Queue.clear port.pending_calls;
  Queue.transfer keep port.pending_calls

(* Page-aligned payloads at or above the threshold are cheaper to remap
   than to copy; a [Copy] request silently upgrades to [Cow] (never
   [Move] — the caller may still own the buffer).  Explicit modes are
   honoured as given. *)
let select_mode (addr, bytes, mode) =
  match mode with
  | Copy when page_aligned ~addr ~bytes && bytes >= remap_threshold ->
      (addr, bytes, Cow)
  | _ -> (addr, bytes, mode)

(* Transfer one out-of-line region and return the receiver's view of it.
   [Copy] is the rework's physical copy (per-byte, lands in the
   receiver's scratch buffer); [Move]/[Cow] remap pages and rewrite the
   region address to where they appeared in the receiver's map. *)
let transfer_ool (sys : Sched.t) ~src_task ~dst_task (addr, bytes, mode) =
  match mode with
  | Copy ->
      Ktext.copy sys.Sched.ktext ~src:addr ~dst:(default_buf dst_task) ~bytes;
      { ool_addr = addr; ool_bytes = bytes; ool_mode = Copy; ool_copied = true }
  | Move ->
      let dst = Vm.remap_move sys ~src_task ~addr ~bytes ~dst_task in
      { ool_addr = dst; ool_bytes = bytes; ool_mode = Move; ool_copied = true }
  | Cow ->
      let dst = Vm.remap_cow sys ~src_task ~addr ~bytes ~dst_task in
      { ool_addr = dst; ool_bytes = bytes; ool_mode = Cow; ool_copied = false }

let copy_request (sys : Sched.t) port client (mb : message_builder) =
  let k = sys.ktext in
  match port.receiver with
  | Some server_task ->
      let src = Option.value ~default:(default_buf client) mb.mb_inline_src in
      Ktext.copy k ~src ~dst:(default_buf server_task) ~bytes:mb.mb_inline_bytes;
      (* by-reference large data: one physical copy — or, when the region
         qualifies, a zero-copy remap — sender to receiver *)
      List.map
        (fun r ->
          transfer_ool sys ~src_task:client ~dst_task:server_task
            (select_mode r))
        mb.mb_ool
  | None -> []

let call (sys : Sched.t) port ?reply_bytes:_ ?deadline (mb : message_builder) =
  let th = Sched.self () in
  let client = th.t_task in
  let frame = th.stack_base in
  let k = sys.ktext in
  (* client stub and the rework's light kernel entry *)
  Ktext.exec_in k client.text ~offset:0x100 ~bytes:128;
  Ktext.exec k ~frame
    [ Ktext.rpc_entry k; Ktext.syscall_dispatch k; Ktext.rpc_send k;
      Ktext.cap_translate k ];
  if port.dead then begin
    Ktext.exec1 k ~frame (Ktext.trap_exit k);
    Error Kern_port_dead
  end
  else begin
    let ool = copy_request sys port client mb in
    List.iter
      (fun (_r : port * right) -> Ktext.exec1 k ~frame (Ktext.cap_translate k))
      mb.mb_rights;
    let msg =
      {
        msg_op = mb.mb_op;
        msg_inline_bytes = mb.mb_inline_bytes;
        msg_payload = mb.mb_payload;
        msg_reply_to = None;
        msg_ool = ool;
        msg_rights = mb.mb_rights;
        msg_kbuf = 0;
        msg_sender = Some client;
      }
    in
    let rx =
      {
        rx_client = th;
        rx_request = msg;
        rx_reply = None;
        rx_server = None;
        rx_abandoned = false;
      }
    in
    let exchange () =
      (match fault_on_send sys port with
      | Fault.M_drop ->
          (* lost on the wire: nothing is queued, the client just waits
             (only a deadline gets it back) *)
          ()
      | (Fault.M_delay _ | Fault.M_pass) as fate ->
          (match fate with
          | Fault.M_delay cycles -> ignore (Clock.sleep_for sys ~cycles)
          | _ -> ());
          Queue.add rx port.pending_calls;
          Ktext.exec1 k ~frame (Ktext.rpc_handoff k);
          wake_one sys port.waiting_servers);
      (* wait-for edge towards the serving task; narrowed to the exact
         server thread once one picks the exchange up (see [dequeue]) *)
      Mcheck.block_on sys th
        ~res:("rpc:" ^ string_of_int port.port_id)
        ~rdesc:("rpc-call(" ^ port.pname ^ ")")
        ~holders:(Mcheck.receiver_tids port);
      let r = Sched.block "rpc-call" in
      Mcheck.unblock sys th;
      match r with
      | Kern_success -> (
          (* resumed by the server's reply; return to user *)
          Ktext.exec1 k ~frame (Ktext.trap_exit k);
          match rx.rx_reply with
          | Some reply ->
              (* rights carried by the reply land in the client's space *)
              List.iter
                (fun ((p, r) : port * right) ->
                  ignore (Port.insert_right sys client p r : int))
                reply.msg_rights;
              Ok reply
          | None -> Error Kern_aborted)
      | err ->
          Ktext.exec1 k ~frame (Ktext.trap_exit k);
          Error err
    in
    let result =
      match deadline with
      | None -> exchange ()
      | Some cycles -> Clock.with_deadline sys ~cycles (fun () -> exchange ())
    in
    (match result with
    | Ok _ -> ()
    | Error _ ->
        (* the client has moved on: a server must neither process this
           exchange nor wake the thread out of some unrelated wait *)
        rx.rx_abandoned <- true;
        remove_pending port rx);
    result
  end

let call_retry (sys : Sched.t) ?(attempts = 4) ?(deadline = 100_000)
    ?(backoff = 1_000) ~resolve mb =
  let th = Sched.self () in
  let policy = Backoff.policy ~seed:th.tid ~base:backoff () in
  let retryable = function
    | Kern_port_dead | Kern_timed_out | Kern_aborted -> true
    | _ -> false
  in
  let rec go n last_err =
    if n > attempts then Error last_err
    else begin
      if n > 1 then begin
        sys.retry_attempts <- sys.retry_attempts + 1;
        (* user-level retry stub: back off, then re-resolve the name *)
        Ktext.exec_in sys.ktext th.t_task.text ~offset:0x1c0 ~bytes:96;
        ignore (Clock.sleep_for sys ~cycles:(Backoff.delay policy ~attempt:(n - 1)))
      end;
      match resolve () with
      | None -> go (n + 1) Kern_invalid_name
      | Some port -> (
          match call sys port ~deadline mb with
          | Ok reply -> Ok reply
          | Error err when retryable err -> go (n + 1) err
          | Error err -> Error err)
    end
  in
  go 1 Kern_port_dead

(* Dequeue a call, blocking while none is pending; charges the dequeue
   handoff, the return to user and the demultiplexing stub. *)
let dequeue (sys : Sched.t) port th frame =
  let k = sys.ktext in
  let server = th.t_task in
  let rec get () =
    match Queue.take_opt port.pending_calls with
    | Some rx when rx.rx_abandoned -> get ()  (* client gave up: drop it *)
    | Some rx ->
        Sched.dequeue_waiter th port.waiting_servers;
        rx.rx_server <- Some th;
        (* the client now waits on this exact thread, not the whole task *)
        Mcheck.retarget sys rx.rx_client ~holders:[ th.tid ];
        (* rights carried by the request land in the server's space *)
        List.iter
          (fun ((p, r) : port * right) ->
            ignore (Port.insert_right sys server p r : int))
          rx.rx_request.msg_rights;
        Ktext.exec k ~frame [ Ktext.rpc_handoff k; Ktext.trap_exit k ];
        Ktext.exec_in k server.text ~offset:0x140 ~bytes:192;
        Ok rx
    | None ->
        if port.dead then begin
          Sched.dequeue_waiter th port.waiting_servers;
          Ktext.exec1 k ~frame (Ktext.trap_exit k);
          Error Kern_port_dead
        end
        else begin
          Sched.enqueue_waiter th port.waiting_servers;
          (* served by any future caller: node only, no holder edge *)
          Mcheck.block_on sys th
            ~res:("rpcq:" ^ string_of_int port.port_id)
            ~rdesc:("rpc-receive(" ^ port.pname ^ ")")
            ~holders:[];
          let r = Sched.block "rpc-receive" in
          Mcheck.unblock sys th;
          match r with
          | Kern_success -> get ()
          | err ->
              Sched.dequeue_waiter th port.waiting_servers;
              Ktext.exec1 k ~frame (Ktext.trap_exit k);
              Error err
        end
  in
  get ()

let receive (sys : Sched.t) port =
  let th = Sched.self () in
  let server = th.t_task in
  let frame = th.stack_base in
  let k = sys.ktext in
  (* server loop head and kernel entry *)
  Ktext.exec_in k server.text ~offset:0x000 ~bytes:128;
  Ktext.exec k ~frame [ Ktext.rpc_entry k; Ktext.syscall_dispatch k ];
  dequeue sys port th frame

let finish_reply (sys : Sched.t) rx (mb : message_builder) server =
  let k = sys.ktext in
  let client = rx.rx_client.t_task in
  let src = Option.value ~default:(default_buf server) mb.mb_inline_src in
  Ktext.copy k ~src ~dst:(default_buf client) ~bytes:mb.mb_inline_bytes;
  (* out-of-line reply data rides the same mode-aware path, server to
     client (the file server's zero-copy reads reply with Cow regions) *)
  let ool =
    List.map
      (fun r ->
        transfer_ool sys ~src_task:server ~dst_task:client (select_mode r))
      mb.mb_ool
  in
  rx.rx_reply <-
    Some
      {
        msg_op = mb.mb_op;
        msg_inline_bytes = mb.mb_inline_bytes;
        msg_payload = mb.mb_payload;
        msg_reply_to = None;
        msg_ool = ool;
        msg_rights = mb.mb_rights;
        msg_kbuf = 0;
        msg_sender = Some server;
      };
  (* a timed-out client is blocked in some unrelated wait by now: waking
     it would corrupt that wait, so the late reply is simply dropped *)
  if not rx.rx_abandoned then Sched.wake sys rx.rx_client

let reply (sys : Sched.t) rx (mb : message_builder) =
  let th = Sched.self () in
  let server = th.t_task in
  let frame = th.stack_base in
  let k = sys.ktext in
  Ktext.exec k ~frame
    [ Ktext.rpc_entry k; Ktext.syscall_dispatch k; Ktext.rpc_reply k ];
  finish_reply sys rx mb server;
  Ktext.exec1 k ~frame (Ktext.rpc_handoff k)

let reply_receive (sys : Sched.t) rx (mb : message_builder) port =
  let th = Sched.self () in
  let server = th.t_task in
  let frame = th.stack_base in
  let k = sys.ktext in
  (* one kernel entry covers the reply and the next receive — the
     combined primitive a synchronous-handoff kernel lives on *)
  Ktext.exec k ~frame
    [ Ktext.rpc_entry k; Ktext.syscall_dispatch k; Ktext.rpc_reply k ];
  finish_reply sys rx mb server;
  dequeue sys port th frame

(* Run the handler; a server bug surfacing as [Kern_error] becomes an
   error reply instead of tearing the whole server down. *)
let run_handler handler msg =
  try handler msg with Kern_error err -> simple_message ~payload:(P_error err) ()

(* The server loop exits only when the *service* port dies.  One client
   aborting its call (or any other per-exchange failure) must not take
   the server down for everyone else. *)
let serve (sys : Sched.t) ?beat port handler =
  let busy () =
    Option.iter
      (fun (b : Health.beat) ->
        b.Health.hb_busy_since <- Machine.global_now sys.machine)
      beat
  in
  let idle () =
    Option.iter
      (fun (b : Health.beat) ->
        b.Health.hb_served <- b.Health.hb_served + 1;
        b.Health.hb_busy_since <- -1)
      beat
  in
  let rec next () =
    if port.dead then ()
    else
      match receive sys port with
      | Error Kern_port_dead -> ()
      | Error _ -> next ()
      | Ok rx -> step rx
  and step rx =
    busy ();
    match fault_on_request sys port with
    | Fault.S_crash ->
        (* simulated crash mid-request: the exchange is abandoned (the
           client must time out) and the receive right dies *)
        Port.destroy sys port
    | Fault.S_kill ->
        (* scripted port kill: the call in hand is answered, then the
           service port is torn down *)
        reply sys rx (run_handler handler rx.rx_request);
        Port.destroy sys port
    | (Fault.S_continue | Fault.S_wedge _) as d ->
        (match d with
        | Fault.S_wedge cycles ->
            (* live-but-stuck: the request is held, the beat's busy
               stamp ages, and only a watchdog can tell *)
            ignore (Clock.sleep_for sys ~cycles)
        | _ -> ());
        if port.dead then ()
        else begin
          let mb = run_handler handler rx.rx_request in
          idle ();
          match reply_receive sys rx mb port with
          | Ok nxt -> step nxt
          | Error Kern_port_dead -> ()
          | Error _ -> next ()
        end
  in
  next ()

let waiting_servers port = Queue.length port.waiting_servers
let pending_calls port = Queue.length port.pending_calls
