(* Deterministic, seeded fault injection.

   A plan is pure decision state: the IPC/RPC layers consult it at their
   hook points (a message about to be sent, a request about to be
   served) and apply whatever it decides — this module never touches
   ports, threads or the clock, so the same plan driven by the same
   sequence of events always produces the same faults.  Determinism
   comes from a 48-bit linear congruential generator (the classic
   drand48 multiplier) rather than [Random], so replays are bit-exact
   across runs and independent of anything else in the process. *)

type action =
  | Kill_port          (* destroy the service port after answering *)
  | Crash_server       (* destroy the port and abandon the in-flight request *)
  | Drop_message       (* lose the message in transit *)
  | Delay_message of int  (* hold the message for this many cycles *)

type message_decision = M_pass | M_drop | M_delay of int
type server_decision = S_continue | S_kill | S_crash

type rule = {
  ru_port : string;
  ru_at : int;  (* fire on the Nth event observed on the port, 1-based *)
  ru_action : action;
  mutable ru_fired : bool;
}

type t = {
  f_seed : int;
  mutable f_state : int;
  mutable f_request_rules : rule list;  (* keyed on the request counter *)
  mutable f_send_rules : rule list;  (* keyed on the send counter *)
  mutable f_port_filter : string option;  (* rates apply only to this port *)
  mutable f_crash_ppm : int;
  mutable f_drop_ppm : int;
  mutable f_delay_ppm : int;
  mutable f_delay_cycles : int;
  f_requests_seen : (string, int) Hashtbl.t;
  f_sends_seen : (string, int) Hashtbl.t;
  mutable f_crashes : int;
  mutable f_kills : int;
  mutable f_drops : int;
  mutable f_delays : int;
  mutable f_trace : (int * string * string) list;  (* newest first *)
  mutable f_events : int;
}

let create ?(seed = 1) () =
  {
    f_seed = seed;
    f_state = seed land 0xFFFF_FFFF_FFFF;
    f_request_rules = [];
    f_send_rules = [];
    f_port_filter = None;
    f_crash_ppm = 0;
    f_drop_ppm = 0;
    f_delay_ppm = 0;
    f_delay_cycles = 5_000;
    f_requests_seen = Hashtbl.create 8;
    f_sends_seen = Hashtbl.create 8;
    f_crashes = 0;
    f_kills = 0;
    f_drops = 0;
    f_delays = 0;
    f_trace = [];
    f_events = 0;
  }

let seed t = t.f_seed

(* drand48: state' = state * 0x5DEECE66D + 0xB mod 2^48 *)
let next t =
  t.f_state <- (t.f_state * 0x5DEECE66D + 0xB) land 0xFFFF_FFFF_FFFF;
  t.f_state

(* A fresh draw in [0, 1_000_000): compared against parts-per-million
   rates.  Uses the generator's high bits, which carry the entropy. *)
let draw_ppm t = next t lsr 17 mod 1_000_000

let at_request t ~port ~n action =
  (match action with
  | Kill_port | Crash_server -> ()
  | Drop_message | Delay_message _ ->
      invalid_arg "Fault.at_request: message actions belong to at_send");
  t.f_request_rules <-
    { ru_port = port; ru_at = n; ru_action = action; ru_fired = false }
    :: t.f_request_rules

let at_send t ~port ~n action =
  (match action with
  | Drop_message | Delay_message _ -> ()
  | Kill_port | Crash_server ->
      invalid_arg "Fault.at_send: server actions belong to at_request");
  t.f_send_rules <-
    { ru_port = port; ru_at = n; ru_action = action; ru_fired = false }
    :: t.f_send_rules

let set_rates t ?port ?crash_ppm ?drop_ppm ?delay_ppm ?delay_cycles () =
  t.f_port_filter <- port;
  Option.iter (fun v -> t.f_crash_ppm <- v) crash_ppm;
  Option.iter (fun v -> t.f_drop_ppm <- v) drop_ppm;
  Option.iter (fun v -> t.f_delay_ppm <- v) delay_ppm;
  Option.iter (fun v -> t.f_delay_cycles <- v) delay_cycles

let bump table port =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt table port) in
  Hashtbl.replace table port n;
  n

let record t ~port what =
  t.f_events <- t.f_events + 1;
  t.f_trace <- (t.f_events, port, what) :: t.f_trace

let rates_apply t ~port =
  match t.f_port_filter with None -> true | Some p -> p = port

let fired_rule rules ~port ~n =
  List.find_opt
    (fun r -> (not r.ru_fired) && r.ru_port = port && r.ru_at = n)
    rules

let on_request t ~port =
  let n = bump t.f_requests_seen port in
  match fired_rule t.f_request_rules ~port ~n with
  | Some ({ ru_action = Kill_port; _ } as r) ->
      r.ru_fired <- true;
      t.f_kills <- t.f_kills + 1;
      record t ~port "kill";
      S_kill
  | Some ({ ru_action = Crash_server; _ } as r) ->
      r.ru_fired <- true;
      t.f_crashes <- t.f_crashes + 1;
      record t ~port "crash";
      S_crash
  | Some _ | None ->
      if
        t.f_crash_ppm > 0 && rates_apply t ~port
        && draw_ppm t < t.f_crash_ppm
      then begin
        t.f_crashes <- t.f_crashes + 1;
        record t ~port "crash";
        S_crash
      end
      else S_continue

let on_send t ~port =
  let n = bump t.f_sends_seen port in
  match fired_rule t.f_send_rules ~port ~n with
  | Some ({ ru_action = Drop_message; _ } as r) ->
      r.ru_fired <- true;
      t.f_drops <- t.f_drops + 1;
      record t ~port "drop";
      M_drop
  | Some ({ ru_action = Delay_message cycles; _ } as r) ->
      r.ru_fired <- true;
      t.f_delays <- t.f_delays + 1;
      record t ~port "delay";
      M_delay cycles
  | Some _ | None ->
      if not (rates_apply t ~port) then M_pass
      else if t.f_drop_ppm > 0 && draw_ppm t < t.f_drop_ppm then begin
        t.f_drops <- t.f_drops + 1;
        record t ~port "drop";
        M_drop
      end
      else if t.f_delay_ppm > 0 && draw_ppm t < t.f_delay_ppm then begin
        t.f_delays <- t.f_delays + 1;
        record t ~port "delay";
        M_delay t.f_delay_cycles
      end
      else M_pass

let injected_crashes t = t.f_crashes
let injected_kills t = t.f_kills
let injected_drops t = t.f_drops
let injected_delays t = t.f_delays
let trace t = List.rev t.f_trace
