(* Deterministic, seeded fault injection.

   A plan is pure decision state: the IPC/RPC layers consult it at their
   hook points (a message about to be sent, a request about to be
   served) and apply whatever it decides — this module never touches
   ports, threads or the clock, so the same plan driven by the same
   sequence of events always produces the same faults.  Determinism
   comes from a 48-bit linear congruential generator (the classic
   drand48 multiplier) rather than [Random], so replays are bit-exact
   across runs and independent of anything else in the process. *)

type action =
  | Kill_port          (* destroy the service port after answering *)
  | Crash_server       (* destroy the port and abandon the in-flight request *)
  | Wedge_server of int  (* live-but-stuck: hold this request for N cycles *)
  | Drop_message       (* lose the message in transit *)
  | Delay_message of int  (* hold the message for this many cycles *)
  | Power_cut          (* disk: freeze the media at this write *)
  | Torn_write         (* disk: only a prefix of this write lands *)
  | Bit_rot            (* disk: flip one bit of this write *)
  | Reorder            (* disk: hold this write past later ones *)

type message_decision = M_pass | M_drop | M_delay of int
type server_decision = S_continue | S_kill | S_crash | S_wedge of int

(* Disk decisions carry raw PRNG entropy; the device maps it into range
   (torn length, bit index, hold window) so the plan stays device-agnostic. *)
type disk_decision =
  | D_pass
  | D_power_cut
  | D_torn of int
  | D_bit_rot of int
  | D_reorder of int

type rule = {
  ru_port : string;
  ru_at : int;  (* fire on the Nth event observed on the port, 1-based *)
  ru_action : action;
  mutable ru_fired : bool;
}

type t = {
  f_seed : int;
  mutable f_state : int;
  mutable f_request_rules : rule list;  (* keyed on the request counter *)
  mutable f_send_rules : rule list;  (* keyed on the send counter *)
  mutable f_disk_rules : rule list;  (* keyed on the per-disk write counter *)
  mutable f_port_filter : string option;  (* rates apply only to this port *)
  mutable f_crash_ppm : int;
  mutable f_wedge_ppm : int;
  mutable f_wedge_cycles : int;
  mutable f_drop_ppm : int;
  mutable f_delay_ppm : int;
  mutable f_delay_cycles : int;
  mutable f_disk_filter : string option;  (* disk rates apply only here *)
  mutable f_power_cut_ppm : int;
  mutable f_torn_ppm : int;
  mutable f_bit_rot_ppm : int;
  mutable f_reorder_ppm : int;
  f_requests_seen : (string, int) Hashtbl.t;
  f_sends_seen : (string, int) Hashtbl.t;
  f_disk_seen : (string, int) Hashtbl.t;
  mutable f_crashes : int;
  mutable f_kills : int;
  mutable f_wedges : int;
  mutable f_drops : int;
  mutable f_delays : int;
  mutable f_power_cuts : int;
  mutable f_torn : int;
  mutable f_bit_rot : int;
  mutable f_reorders : int;
  mutable f_trace : (int * string * string) list;  (* newest first *)
  mutable f_events : int;
}

let create ?(seed = 1) () =
  {
    f_seed = seed;
    f_state = seed land 0xFFFF_FFFF_FFFF;
    f_request_rules = [];
    f_send_rules = [];
    f_disk_rules = [];
    f_port_filter = None;
    f_crash_ppm = 0;
    f_wedge_ppm = 0;
    f_wedge_cycles = 2_000_000;
    f_drop_ppm = 0;
    f_delay_ppm = 0;
    f_delay_cycles = 5_000;
    f_disk_filter = None;
    f_power_cut_ppm = 0;
    f_torn_ppm = 0;
    f_bit_rot_ppm = 0;
    f_reorder_ppm = 0;
    f_requests_seen = Hashtbl.create 8;
    f_sends_seen = Hashtbl.create 8;
    f_disk_seen = Hashtbl.create 8;
    f_crashes = 0;
    f_kills = 0;
    f_wedges = 0;
    f_drops = 0;
    f_delays = 0;
    f_power_cuts = 0;
    f_torn = 0;
    f_bit_rot = 0;
    f_reorders = 0;
    f_trace = [];
    f_events = 0;
  }

let seed t = t.f_seed

(* drand48: state' = state * 0x5DEECE66D + 0xB mod 2^48 *)
let next t =
  t.f_state <- (t.f_state * 0x5DEECE66D + 0xB) land 0xFFFF_FFFF_FFFF;
  t.f_state

(* A fresh draw in [0, 1_000_000): compared against parts-per-million
   rates.  Uses the generator's high bits, which carry the entropy. *)
let draw_ppm t = next t lsr 17 mod 1_000_000

let at_request t ~port ~n action =
  (match action with
  | Kill_port | Crash_server | Wedge_server _ -> ()
  | Drop_message | Delay_message _ ->
      invalid_arg "Fault.at_request: message actions belong to at_send"
  | Power_cut | Torn_write | Bit_rot | Reorder ->
      invalid_arg "Fault.at_request: disk actions belong to at_disk_write");
  t.f_request_rules <-
    { ru_port = port; ru_at = n; ru_action = action; ru_fired = false }
    :: t.f_request_rules

let at_send t ~port ~n action =
  (match action with
  | Drop_message | Delay_message _ -> ()
  | Kill_port | Crash_server | Wedge_server _ ->
      invalid_arg "Fault.at_send: server actions belong to at_request"
  | Power_cut | Torn_write | Bit_rot | Reorder ->
      invalid_arg "Fault.at_send: disk actions belong to at_disk_write");
  t.f_send_rules <-
    { ru_port = port; ru_at = n; ru_action = action; ru_fired = false }
    :: t.f_send_rules

let at_disk_write t ~disk ~n action =
  (match action with
  | Power_cut | Torn_write | Bit_rot | Reorder -> ()
  | Kill_port | Crash_server | Wedge_server _ | Drop_message
  | Delay_message _ ->
      invalid_arg "Fault.at_disk_write: only disk actions apply here");
  t.f_disk_rules <-
    { ru_port = disk; ru_at = n; ru_action = action; ru_fired = false }
    :: t.f_disk_rules

let set_rates t ?port ?crash_ppm ?wedge_ppm ?wedge_cycles ?drop_ppm ?delay_ppm
    ?delay_cycles () =
  t.f_port_filter <- port;
  Option.iter (fun v -> t.f_crash_ppm <- v) crash_ppm;
  Option.iter (fun v -> t.f_wedge_ppm <- v) wedge_ppm;
  Option.iter (fun v -> t.f_wedge_cycles <- v) wedge_cycles;
  Option.iter (fun v -> t.f_drop_ppm <- v) drop_ppm;
  Option.iter (fun v -> t.f_delay_ppm <- v) delay_ppm;
  Option.iter (fun v -> t.f_delay_cycles <- v) delay_cycles

let set_disk_rates t ?disk ?power_cut_ppm ?torn_ppm ?bit_rot_ppm ?reorder_ppm
    () =
  t.f_disk_filter <- disk;
  Option.iter (fun v -> t.f_power_cut_ppm <- v) power_cut_ppm;
  Option.iter (fun v -> t.f_torn_ppm <- v) torn_ppm;
  Option.iter (fun v -> t.f_bit_rot_ppm <- v) bit_rot_ppm;
  Option.iter (fun v -> t.f_reorder_ppm <- v) reorder_ppm

let bump table port =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt table port) in
  Hashtbl.replace table port n;
  n

let record t ~port what =
  t.f_events <- t.f_events + 1;
  t.f_trace <- (t.f_events, port, what) :: t.f_trace

let rates_apply t ~port =
  match t.f_port_filter with None -> true | Some p -> p = port

let fired_rule rules ~port ~n =
  List.find_opt
    (fun r -> (not r.ru_fired) && r.ru_port = port && r.ru_at = n)
    rules

let on_request t ~port =
  let n = bump t.f_requests_seen port in
  match fired_rule t.f_request_rules ~port ~n with
  | Some ({ ru_action = Kill_port; _ } as r) ->
      r.ru_fired <- true;
      t.f_kills <- t.f_kills + 1;
      record t ~port "kill";
      S_kill
  | Some ({ ru_action = Crash_server; _ } as r) ->
      r.ru_fired <- true;
      t.f_crashes <- t.f_crashes + 1;
      record t ~port "crash";
      S_crash
  | Some ({ ru_action = Wedge_server cycles; _ } as r) ->
      r.ru_fired <- true;
      t.f_wedges <- t.f_wedges + 1;
      record t ~port "wedge";
      S_wedge cycles
  | Some _ | None ->
      if
        t.f_crash_ppm > 0 && rates_apply t ~port
        && draw_ppm t < t.f_crash_ppm
      then begin
        t.f_crashes <- t.f_crashes + 1;
        record t ~port "crash";
        S_crash
      end
      else if
        t.f_wedge_ppm > 0 && rates_apply t ~port
        && draw_ppm t < t.f_wedge_ppm
      then begin
        t.f_wedges <- t.f_wedges + 1;
        record t ~port "wedge";
        S_wedge t.f_wedge_cycles
      end
      else S_continue

let on_send t ~port =
  let n = bump t.f_sends_seen port in
  match fired_rule t.f_send_rules ~port ~n with
  | Some ({ ru_action = Drop_message; _ } as r) ->
      r.ru_fired <- true;
      t.f_drops <- t.f_drops + 1;
      record t ~port "drop";
      M_drop
  | Some ({ ru_action = Delay_message cycles; _ } as r) ->
      r.ru_fired <- true;
      t.f_delays <- t.f_delays + 1;
      record t ~port "delay";
      M_delay cycles
  | Some _ | None ->
      if not (rates_apply t ~port) then M_pass
      else if t.f_drop_ppm > 0 && draw_ppm t < t.f_drop_ppm then begin
        t.f_drops <- t.f_drops + 1;
        record t ~port "drop";
        M_drop
      end
      else if t.f_delay_ppm > 0 && draw_ppm t < t.f_delay_ppm then begin
        t.f_delays <- t.f_delays + 1;
        record t ~port "delay";
        M_delay t.f_delay_cycles
      end
      else M_pass

(* Entropy handed to the disk alongside a decision: positive 32 bits
   from the generator's high end. *)
let draw_raw t = next t lsr 16

let disk_rates_apply t ~disk =
  match t.f_disk_filter with None -> true | Some d -> d = disk

let on_disk_write t ~disk =
  let n = bump t.f_disk_seen disk in
  match fired_rule t.f_disk_rules ~port:disk ~n with
  | Some ({ ru_action = Power_cut; _ } as r) ->
      r.ru_fired <- true;
      t.f_power_cuts <- t.f_power_cuts + 1;
      record t ~port:disk "power-cut";
      D_power_cut
  | Some ({ ru_action = Torn_write; _ } as r) ->
      r.ru_fired <- true;
      t.f_torn <- t.f_torn + 1;
      record t ~port:disk "torn-write";
      D_torn (draw_raw t)
  | Some ({ ru_action = Bit_rot; _ } as r) ->
      r.ru_fired <- true;
      t.f_bit_rot <- t.f_bit_rot + 1;
      record t ~port:disk "bit-rot";
      D_bit_rot (draw_raw t)
  | Some ({ ru_action = Reorder; _ } as r) ->
      r.ru_fired <- true;
      t.f_reorders <- t.f_reorders + 1;
      record t ~port:disk "reorder";
      D_reorder (draw_raw t)
  | Some _ | None ->
      if not (disk_rates_apply t ~disk) then D_pass
      else if t.f_power_cut_ppm > 0 && draw_ppm t < t.f_power_cut_ppm then begin
        t.f_power_cuts <- t.f_power_cuts + 1;
        record t ~port:disk "power-cut";
        D_power_cut
      end
      else if t.f_torn_ppm > 0 && draw_ppm t < t.f_torn_ppm then begin
        t.f_torn <- t.f_torn + 1;
        record t ~port:disk "torn-write";
        D_torn (draw_raw t)
      end
      else if t.f_bit_rot_ppm > 0 && draw_ppm t < t.f_bit_rot_ppm then begin
        t.f_bit_rot <- t.f_bit_rot + 1;
        record t ~port:disk "bit-rot";
        D_bit_rot (draw_raw t)
      end
      else if t.f_reorder_ppm > 0 && draw_ppm t < t.f_reorder_ppm then begin
        t.f_reorders <- t.f_reorders + 1;
        record t ~port:disk "reorder";
        D_reorder (draw_raw t)
      end
      else D_pass

let injected_crashes t = t.f_crashes
let injected_kills t = t.f_kills
let injected_wedges t = t.f_wedges
let injected_drops t = t.f_drops
let injected_delays t = t.f_delays
let injected_power_cuts t = t.f_power_cuts
let injected_torn_writes t = t.f_torn
let injected_bit_rot t = t.f_bit_rot
let injected_reorders t = t.f_reorders

let injected_disk_faults t =
  t.f_power_cuts + t.f_torn + t.f_bit_rot + t.f_reorders

let trace t = List.rev t.f_trace
