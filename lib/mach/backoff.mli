(** Capped exponential backoff with deterministic jitter.

    The one retry schedule shared by {!Ipc.call_retry},
    {!Rpc.call_retry} and the supervisor's restart pacing.  The raw
    schedule is [base * 2^(attempt-1)] saturating at [cap] (default
    [base * 64], i.e. six doublings — no more unbounded doubling that
    sleeps past any plausible recovery); on top of it each waiter gets
    jitter in [0, wait/4) from a drand48 generator keyed on [seed] and
    the attempt number — deterministic for replay, but different seeds
    (thread ids, supervision entries) spread their retries instead of
    stampeding a reincarnating server in lockstep. *)

type policy

val default_cap_factor : int
(** 64: without an explicit [cap] the schedule saturates at
    [base * 64]. *)

val policy : ?cap:int -> ?seed:int -> base:int -> unit -> policy

val raw_delay : policy -> attempt:int -> int
(** The capped exponential alone (attempt is 1-based), without jitter. *)

val delay : policy -> attempt:int -> int
(** [raw_delay] plus the seeded jitter for this attempt. *)
