open Ktypes

let allocate (sys : Sched.t) ~receiver ~name =
  Ktext.exec1 sys.ktext (Ktext.port_alloc_path sys.ktext);
  let port =
    {
      port_id = sys.next_port_id;
      pname = name;
      dead = false;
      receiver = Some receiver;
      msg_queue = Queue.create ();
      q_limit = 5;
      waiting_receivers = Queue.create ();
      waiting_senders = Queue.create ();
      pending_calls = Queue.create ();
      waiting_servers = Queue.create ();
      dead_watchers = [];
    }
  in
  sys.next_port_id <- sys.next_port_id + 1;
  let entry = { re_port = port; re_right = Receive_right; re_refs = 1 } in
  Hashtbl.replace receiver.namespace receiver.next_name entry;
  receiver.next_name <- receiver.next_name + 1;
  Mcheck.right_allocated sys receiver port;
  port

let find_entry task port =
  Hashtbl.fold
    (fun name entry acc ->
      match acc with
      | Some _ -> acc
      | None -> if entry.re_port == port then Some (name, entry) else None)
    task.namespace None

(* Rights form a strict hierarchy: a receive right subsumes a send
   right, which subsumes a send-once right.  Inserting a right a task
   already holds must never weaken the entry — only upgrade it. *)
let right_order = function
  | Receive_right -> 2
  | Send_right -> 1
  | Send_once_right -> 0

let insert_right (sys : Sched.t) task port right =
  Ktext.exec1 sys.ktext (Ktext.cap_translate sys.ktext);
  match find_entry task port with
  | Some (name, entry) ->
      entry.re_refs <- entry.re_refs + 1;
      if right_order right > right_order entry.re_right then
        entry.re_right <- right;
      Mcheck.right_inserted sys task port ~right ~now:entry.re_right;
      name
  | None ->
      let name = task.next_name in
      task.next_name <- task.next_name + 1;
      Hashtbl.replace task.namespace name
        { re_port = port; re_right = right; re_refs = 1 };
      Mcheck.right_inserted sys task port ~right ~now:right;
      name

let lookup task name = Hashtbl.find_opt task.namespace name

let lookup_port task port =
  Option.map fst (find_entry task port)

let deallocate_right (sys : Sched.t) task name =
  Ktext.exec1 sys.ktext (Ktext.cap_translate sys.ktext);
  match Hashtbl.find_opt task.namespace name with
  | None ->
      (* the task freed a name it no longer holds: report the misuse
         through Machcheck instead of just failing silently *)
      Mcheck.dealloc_missing sys task ~name;
      Kern_invalid_name
  | Some entry ->
      entry.re_refs <- entry.re_refs - 1;
      if entry.re_refs <= 0 then Hashtbl.remove task.namespace name;
      Mcheck.right_deallocated sys task entry.re_port;
      Kern_success

(* Move one reference of a right between port spaces: the sender's
   reference is consumed, the destination gains one.  This is the
   checkable form of handing a capability to another task (the implicit
   transfers in [Ipc]/[Rpc] message rights go through [insert_right] on
   the receive side). *)
let move_right (sys : Sched.t) ~from ~into port =
  Ktext.exec1 sys.ktext (Ktext.cap_translate sys.ktext);
  match find_entry from port with
  | None -> Kern_invalid_name
  | Some (name, entry) ->
      let right = entry.re_right in
      entry.re_refs <- entry.re_refs - 1;
      if entry.re_refs <= 0 then Hashtbl.remove from.namespace name;
      let now =
        match find_entry into port with
        | Some (_, e) ->
            e.re_refs <- e.re_refs + 1;
            if right_order right > right_order e.re_right then
              e.re_right <- right;
            e.re_right
        | None ->
            let n = into.next_name in
            into.next_name <- into.next_name + 1;
            Hashtbl.replace into.namespace n
              { re_port = port; re_right = right; re_refs = 1 };
            right
      in
      Mcheck.right_moved sys ~from_task:from ~to_task:into port right ~now;
      Kern_success

let request_notification (sys : Sched.t) port f =
  Ktext.exec1 sys.ktext (Ktext.notify_path sys.ktext);
  if port.dead then f ()
  else port.dead_watchers <- f :: port.dead_watchers

let drain_wakeall sys q =
  Queue.iter (fun th -> Sched.wake sys ~result:Kern_port_dead th) q;
  Queue.clear q

let destroy (sys : Sched.t) port =
  if not port.dead then begin
    Ktext.exec1 sys.ktext (Ktext.port_dealloc_path sys.ktext);
    port.dead <- true;
    Mcheck.port_destroyed sys port;
    (* The receive right dies with the port: drop the receiver's
       namespace entry rather than leaving a dangling dead-port name —
       the residue that made restarted servers look leaky. *)
    (match port.receiver with
    | Some task -> (
        match find_entry task port with
        | Some (name, entry) ->
            Hashtbl.remove task.namespace name;
            for _ = 1 to entry.re_refs do
              Mcheck.right_deallocated sys task port
            done
        | None -> ())
    | None -> ());
    port.receiver <- None;
    (* queued messages die with the port: release their kernel buffers *)
    Queue.iter
      (fun msg -> if msg.msg_kbuf <> 0 then Ktext.buffer_free sys.ktext msg.msg_kbuf)
      port.msg_queue;
    Queue.clear port.msg_queue;
    drain_wakeall sys port.waiting_receivers;
    drain_wakeall sys port.waiting_senders;
    drain_wakeall sys port.waiting_servers;
    Queue.iter
      (fun rx ->
        if not rx.rx_abandoned then
          Sched.wake sys ~result:Kern_port_dead rx.rx_client)
      port.pending_calls;
    Queue.clear port.pending_calls;
    (* deliver dead-name notifications last, once the port is fully
       drained, so a supervisor restarting the server sees clean state *)
    let watchers = port.dead_watchers in
    port.dead_watchers <- [];
    List.iter
      (fun f ->
        Ktext.exec1 sys.ktext (Ktext.notify_path sys.ktext);
        f ())
      watchers
  end

let rights_held task = Hashtbl.length task.namespace
