(** Deterministic, seeded fault-injection plans.

    A plan scripts failures — kill a named port, crash a server at its
    Nth request, drop or delay a message — and/or injects them at random
    parts-per-million rates from a seeded generator.  The plan itself is
    pure decision state: {!Ipc} and {!Rpc} consult it at their hook
    points and apply what it decides, so the same plan driven by the
    same event sequence replays identically (the regression tests and
    the [fault-sweep] benchmark depend on this).

    Install a plan by setting [sys.Sched.faults]; with no plan installed
    the hook points charge nothing and change no behaviour. *)

type action =
  | Kill_port  (** destroy the service port after answering the request *)
  | Crash_server
      (** destroy the service port and abandon the in-flight request
          (the client never gets a reply and must time out) *)
  | Wedge_server of int
      (** live-but-stuck: the server holds this request for the given
          number of cycles before continuing.  The port stays alive, so
          only a watchdog — not a dead-name notification — sees it *)
  | Drop_message  (** lose the message in transit *)
  | Delay_message of int  (** hold the message for this many cycles *)
  | Power_cut  (** disk: freeze the media at this write *)
  | Torn_write  (** disk: only a prefix of this write lands *)
  | Bit_rot  (** disk: flip one bit of this write *)
  | Reorder  (** disk: hold this write past later ones *)

type message_decision = M_pass | M_drop | M_delay of int
type server_decision = S_continue | S_kill | S_crash | S_wedge of int

(** Disk decisions carry raw entropy from the plan's generator; the
    device maps it into range (torn length, bit index, hold window). *)
type disk_decision =
  | D_pass
  | D_power_cut
  | D_torn of int
  | D_bit_rot of int
  | D_reorder of int

type t

val create : ?seed:int -> unit -> t
val seed : t -> int

val at_request : t -> port:string -> n:int -> action -> unit
(** Script a server fault on the [n]th request (1-based) observed on the
    named port.  Only {!Kill_port}, {!Crash_server} and {!Wedge_server}
    are valid here.  @raise Invalid_argument for message actions. *)

val at_send : t -> port:string -> n:int -> action -> unit
(** Script a message fault on the [n]th send (1-based) observed towards
    the named port.  Only {!Drop_message} and {!Delay_message} are valid
    here.  @raise Invalid_argument for server actions. *)

val at_disk_write : t -> disk:string -> n:int -> action -> unit
(** Script a storage fault on the [n]th write (1-based) reaching the
    named disk's media while powered.  Only the disk actions
    ({!Power_cut}, {!Torn_write}, {!Bit_rot}, {!Reorder}) are valid
    here.  @raise Invalid_argument for IPC actions. *)

val set_rates :
  t -> ?port:string -> ?crash_ppm:int -> ?wedge_ppm:int ->
  ?wedge_cycles:int -> ?drop_ppm:int -> ?delay_ppm:int ->
  ?delay_cycles:int -> unit -> unit
(** Random injection rates in parts per million per event, drawn from
    the seeded generator.  [port] restricts the rates to one port name
    (scripted rules always name their own port). *)

val set_disk_rates :
  t -> ?disk:string -> ?power_cut_ppm:int -> ?torn_ppm:int ->
  ?bit_rot_ppm:int -> ?reorder_ppm:int -> unit -> unit
(** Random storage-fault rates per media write, drawn from the same
    seeded generator.  [disk] restricts the rates to one device name. *)

val on_send : t -> port:string -> message_decision
(** Hook point: a message is about to be sent to the named port. *)

val on_request : t -> port:string -> server_decision
(** Hook point: a server is about to handle a request from the named
    port. *)

val on_disk_write : t -> disk:string -> disk_decision
(** Hook point: a write request is reaching the named disk's media. *)

val injected_crashes : t -> int
val injected_kills : t -> int
val injected_wedges : t -> int
val injected_drops : t -> int
val injected_delays : t -> int
val injected_power_cuts : t -> int
val injected_torn_writes : t -> int
val injected_bit_rot : t -> int
val injected_reorders : t -> int

val injected_disk_faults : t -> int
(** Sum of all four storage-fault counters. *)

val trace : t -> (int * string * string) list
(** Every injected fault in order: (event number, port, fault kind).
    Two plans with the same seed driven by the same event sequence have
    equal traces. *)
