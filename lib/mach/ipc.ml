open Ktypes

let default_buf task = task.data.Machine.Layout.base + 0x3800

let wake_one (sys : Sched.t) q =
  let rec loop () =
    match Queue.take_opt q with
    | None -> ()
    | Some th -> (
        match th.state with
        | Th_blocked _ -> Sched.wake sys th
        | Th_runnable | Th_running | Th_terminated -> loop ())
  in
  loop ()

let user_entry (sys : Sched.t) task frame =
  let k = sys.ktext in
  Ktext.exec_in k task.text ~offset:0x100 ~bytes:144;
  Ktext.exec k ~frame
    [ Ktext.trap_entry k; Ktext.syscall_dispatch k; Ktext.mach_msg_entry k ]

let user_exit (sys : Sched.t) frame =
  let k = sys.ktext in
  Ktext.exec k ~frame [ Ktext.mach_msg_exit k; Ktext.trap_exit k ]

let send (sys : Sched.t) port ?reply_to (mb : message_builder) =
  let th = Sched.self () in
  let sender = th.t_task in
  let frame = th.stack_base in
  user_entry sys sender frame;
  if port.dead then begin
    user_exit sys frame;
    Kern_port_dead
  end
  else begin
    let k = sys.ktext in
    (* copy the inline body into a kernel buffer *)
    Ktext.exec1 k ~frame (Ktext.msg_copyin k);
    let kbuf = Ktext.buffer_alloc k ~bytes:(max 64 mb.mb_inline_bytes) in
    let src = Option.value ~default:(default_buf sender) mb.mb_inline_src in
    Ktext.copy k ~src ~dst:kbuf ~bytes:mb.mb_inline_bytes;
    (* transfer rights one by one *)
    List.iter
      (fun (_right : port * right) ->
        Ktext.exec1 k ~frame (Ktext.right_transfer k))
      mb.mb_rights;
    (match reply_to with
    | Some _ -> Ktext.exec1 k ~frame (Ktext.right_transfer k)
    | None -> ());
    let msg =
      {
        msg_op = mb.mb_op;
        msg_inline_bytes = mb.mb_inline_bytes;
        msg_payload = mb.mb_payload;
        msg_reply_to = reply_to;
        msg_ool =
          List.map
            (fun (addr, bytes) -> { ool_addr = addr; ool_bytes = bytes; ool_copied = false })
            mb.mb_ool;
        msg_rights = mb.mb_rights;
        msg_kbuf = kbuf;
        msg_sender = Some sender;
      }
    in
    (* block while the queue is full (classic mach_msg behaviour) *)
    let rec wait_for_room () =
      if port.dead then Kern_port_dead
      else if Queue.length port.msg_queue >= port.q_limit then begin
        Queue.add th port.waiting_senders;
        match Sched.block "msg-send-queue-full" with
        | Kern_success -> wait_for_room ()
        | err -> err
      end
      else Kern_success
    in
    match wait_for_room () with
    | Kern_success ->
        Ktext.exec1 k ~frame (Ktext.msg_enqueue k);
        Queue.add msg port.msg_queue;
        wake_one sys port.waiting_receivers;
        user_exit sys frame;
        Kern_success
    | err ->
        (* message never entered a queue: release its kernel buffer *)
        Ktext.buffer_free k kbuf;
        user_exit sys frame;
        err
  end

let receive (sys : Sched.t) port =
  let th = Sched.self () in
  let receiver = th.t_task in
  let frame = th.stack_base in
  user_entry sys receiver frame;
  let k = sys.ktext in
  Ktext.exec1 k ~frame (Ktext.receive_path k);
  let rec get () =
    match Queue.take_opt port.msg_queue with
    | Some msg -> Ok msg
    | None ->
        if port.dead then Error Kern_port_dead
        else begin
          Queue.add th port.waiting_receivers;
          match Sched.block "msg-receive" with
          | Kern_success -> get ()
          | err -> Error err
        end
  in
  match get () with
  | Error err ->
      user_exit sys frame;
      Error err
  | Ok msg ->
      Ktext.exec k ~frame [ Ktext.msg_dequeue k; Ktext.msg_copyout k ];
      Ktext.copy k ~src:msg.msg_kbuf ~dst:(default_buf receiver)
        ~bytes:msg.msg_inline_bytes;
      (* the inline body has landed in the receiver: the kernel buffer
         goes back on the free list so sustained traffic can't exhaust
         the msg-buffers region *)
      Ktext.buffer_free k msg.msg_kbuf;
      msg.msg_kbuf <- 0;
      List.iter
        (fun (_right : port * right) ->
          Ktext.exec1 k ~frame (Ktext.right_transfer k))
        msg.msg_rights;
      (* out-of-line data arrives as a lazy copy-on-write mapping *)
      let msg =
        match msg.msg_sender with
        | Some sender when msg.msg_ool <> [] ->
            let ool =
              List.map
                (fun r ->
                  let addr =
                    Vm.virtual_copy sys ~src_task:sender ~addr:r.ool_addr
                      ~bytes:r.ool_bytes ~dst_task:receiver
                  in
                  { r with ool_addr = addr })
                msg.msg_ool
            in
            { msg with msg_ool = ool }
        | Some _ | None -> msg
      in
      wake_one sys port.waiting_senders;
      user_exit sys frame;
      Ok msg

(* The classic round trip.  Reply-port management was a per-interaction
   tax the paper laments; the cache below keeps one reply port per
   thread and reuses it while it stays alive, charging the far cheaper
   lookup path instead of allocate/setup/destroy. *)
let reply_port_for (sys : Sched.t) th =
  let k = sys.ktext in
  let client = th.t_task in
  match th.reply_port_cache with
  | Some rp when not rp.dead ->
      sys.reply_cache_hits <- sys.reply_cache_hits + 1;
      Ktext.exec1 k ~frame:th.stack_base (Ktext.reply_port_reuse k);
      rp
  | Some _ | None ->
      sys.reply_cache_misses <- sys.reply_cache_misses + 1;
      let rp = Port.allocate sys ~receiver:client ~name:"reply" in
      Ktext.exec1 k ~frame:th.stack_base (Ktext.reply_port_setup k);
      th.reply_port_cache <- Some rp;
      rp

let call (sys : Sched.t) port mb =
  let th = Sched.self () in
  let reply_port = reply_port_for sys th in
  match send sys port ~reply_to:reply_port mb with
  | Kern_success -> receive sys reply_port
  | err -> Error err

let reply_cache_hits (sys : Sched.t) = sys.reply_cache_hits
let reply_cache_misses (sys : Sched.t) = sys.reply_cache_misses

let serve_one (sys : Sched.t) port handler =
  match receive sys port with
  | Error err -> err
  | Ok msg -> (
      let reply = handler msg in
      match msg.msg_reply_to with
      | Some rp -> send sys rp reply
      | None -> Kern_success)

let serve (sys : Sched.t) port handler =
  let rec loop () =
    match serve_one sys port handler with
    | Kern_success -> loop ()
    | Kern_port_dead | _ -> ()
  in
  loop ()

let queued port = Queue.length port.msg_queue
