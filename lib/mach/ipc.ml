open Ktypes

let default_buf task = task.data.Machine.Layout.base + 0x3800

let wake_one (sys : Sched.t) q =
  let rec loop () =
    match Queue.take_opt q with
    | None -> ()
    | Some th -> (
        match th.state with
        | Th_blocked _ -> Sched.wake sys th
        | Th_runnable | Th_running | Th_terminated -> loop ())
  in
  loop ()

(* Fault-plan consultation.  A disabled plan costs nothing; an injected
   decision charges the fault-bookkeeping chunk so perturbation shows up
   in the measurements only when faults actually fire. *)
let fault_on_send (sys : Sched.t) port =
  match sys.faults with
  | None -> Fault.M_pass
  | Some plan -> (
      match Fault.on_send plan ~port:port.pname with
      | Fault.M_pass -> Fault.M_pass
      | d ->
          Ktext.exec1 sys.ktext (Ktext.fault_inject sys.ktext);
          d)

let fault_on_request (sys : Sched.t) port =
  match sys.faults with
  | None -> Fault.S_continue
  | Some plan -> (
      match Fault.on_request plan ~port:port.pname with
      | Fault.S_continue -> Fault.S_continue
      | d ->
          Ktext.exec1 sys.ktext (Ktext.fault_inject sys.ktext);
          d)

let user_entry (sys : Sched.t) task frame =
  let k = sys.ktext in
  Ktext.exec_in k task.text ~offset:0x100 ~bytes:144;
  Ktext.exec k ~frame
    [ Ktext.trap_entry k; Ktext.syscall_dispatch k; Ktext.mach_msg_entry k ]

let user_exit (sys : Sched.t) frame =
  let k = sys.ktext in
  Ktext.exec k ~frame [ Ktext.mach_msg_exit k; Ktext.trap_exit k ]

let send (sys : Sched.t) port ?reply_to (mb : message_builder) =
  let th = Sched.self () in
  let sender = th.t_task in
  let frame = th.stack_base in
  user_entry sys sender frame;
  if port.dead then begin
    user_exit sys frame;
    Kern_port_dead
  end
  else begin
    let k = sys.ktext in
    (* copy the inline body into a kernel buffer *)
    Ktext.exec1 k ~frame (Ktext.msg_copyin k);
    let kbuf = Ktext.buffer_alloc k ~bytes:(max 64 mb.mb_inline_bytes) in
    let src = Option.value ~default:(default_buf sender) mb.mb_inline_src in
    Ktext.copy k ~src ~dst:kbuf ~bytes:mb.mb_inline_bytes;
    (* transfer rights one by one *)
    List.iter
      (fun (_right : port * right) ->
        Ktext.exec1 k ~frame (Ktext.right_transfer k))
      mb.mb_rights;
    (match reply_to with
    | Some _ -> Ktext.exec1 k ~frame (Ktext.right_transfer k)
    | None -> ());
    let msg =
      {
        msg_op = mb.mb_op;
        msg_inline_bytes = mb.mb_inline_bytes;
        msg_payload = mb.mb_payload;
        msg_reply_to = reply_to;
        msg_ool =
          List.map
            (fun (addr, bytes, mode) ->
              { ool_addr = addr; ool_bytes = bytes; ool_mode = mode;
                ool_copied = false })
            mb.mb_ool;
        msg_rights = mb.mb_rights;
        msg_kbuf = kbuf;
        msg_sender = Some sender;
      }
    in
    (* block while the queue is full (classic mach_msg behaviour).  The
       thread goes onto [waiting_senders] at most once per wait: a
       spurious wake (timeout, fault injection) resumes it while its
       entry is still queued, and re-adding blindly would leave stale
       duplicates behind.  On any non-success exit the entry is removed
       so a later wake cannot target a thread that already gave up. *)
    let rec wait_for_room () =
      if port.dead then begin
        Sched.dequeue_waiter th port.waiting_senders;
        Kern_port_dead
      end
      else if Queue.length port.msg_queue >= port.q_limit then begin
        Sched.enqueue_waiter th port.waiting_senders;
        (* wait-for edge: room opens up only if the receiving task runs *)
        Mcheck.block_on sys th
          ~res:("room:" ^ string_of_int port.port_id)
          ~rdesc:("send-room(" ^ port.pname ^ ")")
          ~holders:(Mcheck.receiver_tids port);
        let r = Sched.block "msg-send-queue-full" in
        Mcheck.unblock sys th;
        match r with
        | Kern_success -> wait_for_room ()
        | err ->
            Sched.dequeue_waiter th port.waiting_senders;
            err
      end
      else begin
        Sched.dequeue_waiter th port.waiting_senders;
        Kern_success
      end
    in
    match fault_on_send sys port with
    | Fault.M_drop ->
        (* the wire ate the message: the sender believes it succeeded *)
        Ktext.buffer_free k kbuf;
        user_exit sys frame;
        Kern_success
    | (Fault.M_delay _ | Fault.M_pass) as fate -> (
        (match fate with
        | Fault.M_delay cycles -> ignore (Clock.sleep_for sys ~cycles)
        | _ -> ());
        match wait_for_room () with
        | Kern_success ->
            Ktext.exec1 k ~frame (Ktext.msg_enqueue k);
            Queue.add msg port.msg_queue;
            wake_one sys port.waiting_receivers;
            user_exit sys frame;
            Kern_success
        | err ->
            (* message never entered a queue: release its kernel buffer *)
            Ktext.buffer_free k kbuf;
            user_exit sys frame;
            err)
  end

let receive (sys : Sched.t) port =
  let th = Sched.self () in
  let receiver = th.t_task in
  let frame = th.stack_base in
  user_entry sys receiver frame;
  let k = sys.ktext in
  Ktext.exec1 k ~frame (Ktext.receive_path k);
  let rec get () =
    match Queue.take_opt port.msg_queue with
    | Some msg ->
        Sched.dequeue_waiter th port.waiting_receivers;
        Ok msg
    | None ->
        if port.dead then begin
          Sched.dequeue_waiter th port.waiting_receivers;
          Error Kern_port_dead
        end
        else begin
          Sched.enqueue_waiter th port.waiting_receivers;
          (* a receive can be satisfied by any future sender: no holder
             edge, but the node must exist so a kill can be audited *)
          Mcheck.block_on sys th
            ~res:("msgq:" ^ string_of_int port.port_id)
            ~rdesc:("receive(" ^ port.pname ^ ")")
            ~holders:[];
          let r = Sched.block "msg-receive" in
          Mcheck.unblock sys th;
          match r with
          | Kern_success -> get ()
          | err ->
              Sched.dequeue_waiter th port.waiting_receivers;
              Error err
        end
  in
  match get () with
  | Error err ->
      user_exit sys frame;
      Error err
  | Ok msg ->
      Ktext.exec k ~frame [ Ktext.msg_dequeue k; Ktext.msg_copyout k ];
      Mcheck.buf_use sys msg.msg_kbuf;
      Ktext.copy k ~src:msg.msg_kbuf ~dst:(default_buf receiver)
        ~bytes:msg.msg_inline_bytes;
      (* the inline body has landed in the receiver: the kernel buffer
         goes back on the free list so sustained traffic can't exhaust
         the msg-buffers region *)
      Ktext.buffer_free k msg.msg_kbuf;
      msg.msg_kbuf <- 0;
      (* carried rights land in the receiver's port space *)
      List.iter
        (fun ((p, r) : port * right) ->
          Ktext.exec1 k ~frame (Ktext.right_transfer k);
          ignore (Port.insert_right sys receiver p r : int))
        msg.msg_rights;
      (* out-of-line data: [Copy] arrives as the classic lazy
         copy-on-write mapping; [Move]/[Cow] take the zero-copy remap
         path (per map entry plus a shootdown, never per page) *)
      let msg =
        match msg.msg_sender with
        | Some sender when msg.msg_ool <> [] ->
            let ool =
              List.map
                (fun r ->
                  let addr =
                    match r.ool_mode with
                    | Copy ->
                        Vm.virtual_copy sys ~src_task:sender ~addr:r.ool_addr
                          ~bytes:r.ool_bytes ~dst_task:receiver
                    | Move ->
                        Vm.remap_move sys ~src_task:sender ~addr:r.ool_addr
                          ~bytes:r.ool_bytes ~dst_task:receiver
                    | Cow ->
                        Vm.remap_cow sys ~src_task:sender ~addr:r.ool_addr
                          ~bytes:r.ool_bytes ~dst_task:receiver
                  in
                  { r with ool_addr = addr })
                msg.msg_ool
            in
            { msg with msg_ool = ool }
        | Some _ | None -> msg
      in
      wake_one sys port.waiting_senders;
      user_exit sys frame;
      Ok msg

(* The classic round trip.  Reply-port management was a per-interaction
   tax the paper laments; the cache below keeps one reply port per
   thread and reuses it while it stays alive, charging the far cheaper
   lookup path instead of allocate/setup/destroy. *)
let reply_port_for (sys : Sched.t) th =
  let k = sys.ktext in
  let client = th.t_task in
  match th.reply_port_cache with
  | Some rp when not rp.dead ->
      sys.reply_cache_hits <- sys.reply_cache_hits + 1;
      Ktext.exec1 k ~frame:th.stack_base (Ktext.reply_port_reuse k);
      rp
  | Some _ | None ->
      sys.reply_cache_misses <- sys.reply_cache_misses + 1;
      let rp = Port.allocate sys ~receiver:client ~name:"reply" in
      Ktext.exec1 k ~frame:th.stack_base (Ktext.reply_port_setup k);
      th.reply_port_cache <- Some rp;
      rp

let call (sys : Sched.t) ?deadline port mb =
  let th = Sched.self () in
  let reply_port = reply_port_for sys th in
  let exchange () =
    match send sys port ~reply_to:reply_port mb with
    | Kern_success -> receive sys reply_port
    | err -> Error err
  in
  let result =
    match deadline with
    | None -> exchange ()
    | Some cycles -> Clock.with_deadline sys ~cycles (fun () -> exchange ())
  in
  (match result with
  | Ok _ -> ()
  | Error _ ->
      (* the interaction may still be in flight — a late reply landing on
         the cached port would be mistaken for the answer to the *next*
         call.  Retire the port so stale replies die with it. *)
      Port.destroy sys reply_port;
      th.reply_port_cache <- None);
  result

let call_retry (sys : Sched.t) ?(attempts = 4) ?(deadline = 100_000)
    ?(backoff = 1_000) ~resolve mb =
  let th = Sched.self () in
  let policy = Backoff.policy ~seed:th.tid ~base:backoff () in
  let retryable = function
    | Kern_port_dead | Kern_timed_out | Kern_aborted -> true
    | _ -> false
  in
  let rec go n last_err =
    if n > attempts then Error last_err
    else begin
      if n > 1 then begin
        sys.retry_attempts <- sys.retry_attempts + 1;
        (* user-level retry stub: back off, then re-resolve the name *)
        Ktext.exec_in sys.ktext th.t_task.text ~offset:0x1c0 ~bytes:96;
        ignore (Clock.sleep_for sys ~cycles:(Backoff.delay policy ~attempt:(n - 1)))
      end;
      match resolve () with
      | None -> go (n + 1) Kern_invalid_name
      | Some port -> (
          match call sys ~deadline port mb with
          | Ok reply -> Ok reply
          | Error err when retryable err -> go (n + 1) err
          | Error err -> Error err)
    end
  in
  go 1 Kern_port_dead

let reply_cache_hits (sys : Sched.t) = sys.reply_cache_hits
let reply_cache_misses (sys : Sched.t) = sys.reply_cache_misses

(* Run the handler; a server bug surfacing as [Kern_error] becomes an
   error reply instead of tearing the whole server down. *)
let run_handler handler msg =
  try handler msg with Kern_error err -> simple_message ~payload:(P_error err) ()

let serve_one (sys : Sched.t) port handler =
  match receive sys port with
  | Error err -> err
  | Ok msg -> (
      let reply = run_handler handler msg in
      match msg.msg_reply_to with
      | Some rp -> send sys rp reply
      | None -> Kern_success)

(* The server loop exits only when the *service* port dies.  A dead
   client reply port, a full reply queue, or a spurious wake must not
   take the server down with it — one dead client would kill the
   service for everyone. *)
let serve (sys : Sched.t) port handler =
  let rec loop () =
    if port.dead then ()
    else
      match receive sys port with
      | Error Kern_port_dead -> ()
      | Error _ -> loop ()
      | Ok msg -> (
          match fault_on_request sys port with
          | Fault.S_crash ->
              (* simulated server crash mid-request: the request is
                 abandoned (the client must time out) and the receive
                 right dies with the server *)
              Port.destroy sys port
          | Fault.S_kill ->
              (* scripted port kill: the request in hand is answered,
                 then the service port is torn down *)
              (match msg.msg_reply_to with
              | Some rp -> ignore (send sys rp (run_handler handler msg))
              | None -> ());
              Port.destroy sys port
          | (Fault.S_continue | Fault.S_wedge _) as d ->
              (match d with
              | Fault.S_wedge cycles ->
                  (* live-but-stuck: hold the request, stay receivable *)
                  ignore (Clock.sleep_for sys ~cycles)
              | _ -> ());
              let reply = run_handler handler msg in
              (match msg.msg_reply_to with
              | Some rp -> ignore (send sys rp reply)
              | None -> ());
              loop ())
  in
  loop ()

let queued port = Queue.length port.msg_queue
