type t = {
  config : Config.t;
  id : int;  (* processor index within the machine, 0 = boot CPU *)
  bus : Bus.t;  (* shared with every sibling CPU; inert when alone *)
  perf : Perf.t;
  icache : Cache.t;
  dcache : Cache.t;
  tlb : Tlb.t;
  mutable clock : float;
}

let create ?(id = 0) ?bus (c : Config.t) =
  {
    config = c;
    id;
    bus = (match bus with Some b -> b | None -> Bus.create ~ncpus:1);
    perf = Perf.create ();
    icache = Cache.create c.icache;
    dcache = Cache.create c.dcache;
    tlb = Tlb.create ~entries:c.tlb_entries ~page_size:c.page_size;
    clock = 0.;
  }

let config t = t.config
let id t = t.id
let bus t = t.bus
let perf t = t.perf
let icache t = t.icache
let dcache t = t.dcache
let tlb t = t.tlb

(* The clock accumulates in float so sub-cycle charges (the 0.5-cycle
   store penalty) are never lost; reads round to nearest rather than
   truncate, so repeated read-diff measurements carry no systematic
   downward drift. *)
let now t = int_of_float (Float.round t.clock)
let now_exact t = t.clock

let charge t cycles =
  Perf.add_cycles t.perf cycles;
  t.clock <- t.clock +. cycles

let charge_bus t n =
  Perf.add_bus_cycles t.perf n

(* A bus transaction on an SMP machine may find the bus held by a
   sibling CPU; the stall shows up both in the cycle clock and in the
   dedicated counter.  Never called on a 1-CPU machine. *)
let charge_bus_smp t n =
  charge_bus t n;
  let stall = Bus.acquire t.bus ~now:t.clock ~bus_cycles:n in
  if stall > 0. then begin
    Perf.bus_stall t.perf stall;
    t.clock <- t.clock +. stall;
    Perf.add_cycles t.perf stall
  end

(* Walk the lines of [addr..addr+bytes), consulting [cache]; each miss
   costs a line fill.  TLB is consulted once per page touched.  This is
   the innermost hot path of the whole simulator: it must not allocate.
   The SMP additions (coherence directory, bus arbitration) are guarded
   so a 1-CPU machine runs the exact pre-SMP sequence. *)
let lines_and_pages t cache addr bytes ~is_icache =
  let c = t.config in
  let smp = Bus.ncpus t.bus > 1 in
  let line = if is_icache then c.icache.line else c.dcache.line in
  let first_line = addr / line and last_line = (addr + max bytes 1 - 1) / line in
  for l = first_line to last_line do
    let a = l * line in
    (* Cache.access both probes and installs: after a coherence transfer
       the line lives in this cache too, so it runs unconditionally. *)
    let hit = Cache.access cache a in
    if
      smp && not is_icache
      && Bus.note_access t.bus ~cpu:t.id ~line:a ~write:false
    then begin
      (* another CPU wrote this line since we last held it: whatever the
         local tag said, the copy is stale.  One cache-to-cache transfer
         replaces the memory line fill. *)
      Perf.dcache_access t.perf ~hit:false;
      Perf.coherence_miss t.perf;
      charge t (float_of_int c.coherence_miss_cycles);
      charge_bus_smp t c.line_fill_bus_cycles
    end
    else begin
      if is_icache then Perf.icache_access t.perf ~hit
      else Perf.dcache_access t.perf ~hit;
      if not hit then begin
        charge t (float_of_int c.line_fill_cycles);
        if smp then charge_bus_smp t c.line_fill_bus_cycles
        else charge_bus t c.line_fill_bus_cycles
      end
    end
  done;
  let first_page = addr / c.page_size
  and last_page = (addr + max bytes 1 - 1) / c.page_size in
  for p = first_page to last_page do
    if not (Tlb.access t.tlb (p * c.page_size)) then begin
      Perf.tlb_miss t.perf;
      charge t (float_of_int c.tlb_miss_cycles);
      if smp then charge_bus_smp t c.tlb_miss_bus_cycles
      else charge_bus t c.tlb_miss_bus_cycles
    end
  done

(* Direct execution entry points.  [Footprint.item] lists describe the
   same traffic declaratively, but building them allocates; the kernel
   cost-replay paths (Ktext) call these instead. *)

let fetch t (region : Layout.region) ~offset ~bytes =
  if offset + bytes > region.Layout.size then
    invalid_arg
      (Printf.sprintf "Cpu.fetch: %d+%d exceeds region %S (%d bytes)" offset
         bytes region.Layout.name region.Layout.size);
  let c = t.config in
  let addr = region.Layout.base + offset in
  let instructions = max 1 (bytes / c.bytes_per_instruction) in
  Perf.add_instructions t.perf instructions;
  charge t (float_of_int instructions *. c.base_cpi);
  lines_and_pages t t.icache addr bytes ~is_icache:true

let load t ~addr ~bytes = lines_and_pages t t.dcache addr bytes ~is_icache:false

let store t ~addr ~bytes =
  lines_and_pages t t.dcache addr bytes ~is_icache:false;
  (* write-through: every stored word is a bus write *)
  let c = t.config in
  let words = max 1 ((bytes + 3) / 4) in
  if Bus.ncpus t.bus > 1 then begin
    (* take ownership of every written line in the coherence directory;
       sibling CPUs holding these lines will pay a transfer next touch *)
    let line = c.dcache.line in
    let first_line = addr / line
    and last_line = (addr + max bytes 1 - 1) / line in
    for l = first_line to last_line do
      ignore (Bus.note_access t.bus ~cpu:t.id ~line:(l * line) ~write:true : bool)
    done;
    charge_bus_smp t (words * c.write_bus_cycles)
  end
  else charge_bus t (words * c.write_bus_cycles);
  charge t (float_of_int words *. 0.5)

(* A remap that edits live mappings must invalidate stale translations
   before either side runs again.  Priced as one IPI-class operation
   (same order as an address-space switch) plus a short per-page
   [invlpg]; deliberately independent of the bytes remapped. *)
let tlb_shootdown t ~addr ~pages =
  let c = t.config in
  Perf.tlb_shootdown t.perf;
  charge t (float_of_int c.address_space_switch_cycles);
  for p = 0 to pages - 1 do
    Tlb.invalidate t.tlb (addr + (p * c.page_size));
    charge t 2.
  done

let execute_item t (item : Footprint.item) =
  let c = t.config in
  match item with
  | Fetch { region; offset; bytes } -> fetch t region ~offset ~bytes
  | Load { addr; bytes } -> load t ~addr ~bytes
  | Store { addr; bytes } -> store t ~addr ~bytes
  | Uncached_read { bytes; _ } ->
      let words = max 1 ((bytes + 3) / 4) in
      charge_bus t (words * c.write_bus_cycles);
      charge t (float_of_int (words * c.write_bus_cycles))
  | Uncached_write { bytes; _ } ->
      let words = max 1 ((bytes + 3) / 4) in
      charge_bus t (words * c.write_bus_cycles);
      charge t (float_of_int words)
  | Switch_address_space ->
      Perf.address_space_switch t.perf;
      Tlb.flush t.tlb;
      charge t (float_of_int c.address_space_switch_cycles)
  | Stall n -> charge t (float_of_int n)

let execute t fp = List.iter (execute_item t) fp

let advance_to t time =
  let time = float_of_int time in
  if time > t.clock then t.clock <- time

let flush_caches t =
  Cache.flush t.icache;
  Cache.flush t.dcache;
  Tlb.flush t.tlb
