(** The simulated processor: replays {!Footprint.t} values against the
    cache and TLB models and charges {!Perf} counters and the cycle clock.

    One [Cpu.t] models one processor.  The clock only moves when footprints
    execute or when {!advance_to} skips idle time to the next device
    event. *)

type t

val create : ?id:int -> ?bus:Bus.t -> Config.t -> t
(** [id] is the processor index within its machine (default 0); [bus] is
    the shared bus — when omitted a private 1-CPU bus is built, which
    makes every SMP effect inert. *)

val config : t -> Config.t
val id : t -> int
val bus : t -> Bus.t
val perf : t -> Perf.t
val icache : t -> Cache.t
val dcache : t -> Cache.t
val tlb : t -> Tlb.t

val now : t -> int
(** Current time in cycles, rounded to nearest.  The clock itself
    accumulates in float so sub-cycle charges (e.g. the 0.5-cycle store
    penalty) are never lost to truncation. *)

val now_exact : t -> float
(** The unrounded clock. *)

val execute : t -> Footprint.t -> unit
val execute_item : t -> Footprint.item -> unit

(** {1 Direct execution}

    The same cost charging as {!execute}, without building footprint
    lists — the kernel-path replay (Ktext) uses these so a warm
    simulated hot path performs no host allocation. *)

val fetch : t -> Layout.region -> offset:int -> bytes:int -> unit
val load : t -> addr:int -> bytes:int -> unit
val store : t -> addr:int -> bytes:int -> unit

val tlb_shootdown : t -> addr:int -> pages:int -> unit
(** Charge one TLB shootdown covering [pages] pages starting at [addr]:
    an IPI-class fixed cost plus a per-page invalidate.  The zero-copy
    remap paths call this instead of paying per byte. *)

val advance_to : t -> int -> unit
(** Idle (no instructions, no bus traffic) until the given cycle time.
    A no-op if the time is in the past. *)

val flush_caches : t -> unit
(** Invalidate I-cache, D-cache and TLB (cold-start measurement aid). *)
