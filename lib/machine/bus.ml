(* The shared memory bus.  One instance is shared by every CPU of a
   machine; with a single CPU it is completely inert (every entry point
   returns immediately), so the uniprocessor cost model is bit-for-bit
   what it was before SMP existed.

   Two effects are modelled, both deliberately simple and deterministic:

   - {b occupancy}: the bus moves a bounded number of bus cycles per
     unit of time.  Demand is accounted into fixed windows of the cycle
     clock; while a window's aggregate demand stays under its capacity
     the write buffers and the arbiter hide everything, and once a
     window oversubscribes, each further transaction stalls for the
     capacity it could not get.  Window accounting is insensitive to
     the order CPUs replay their time slices in (the conservative
     scheduler interleaves whole slices, so a lagging CPU may issue a
     transaction with an earlier clock than one already booked — an
     absolute busy-until timeline would misread that skew as a stall).

   - {b coherence}: a write-invalidate directory of last writers, one
     entry per cache line.  A CPU touching a line that another CPU wrote
     since it last held it pays a cache-to-cache transfer (the snoop
     hit); a read leaves the line shared-clean, a write takes ownership.

   The directory is host-side bookkeeping (a hashtable over line
   addresses); it charges nothing on a 1-CPU machine and is never
   consulted there. *)

(* Capacity window: aggregate demand accounting quantum.  Big enough
   that one CPU's burst (a message copy is ~0.5 K bus cycles) does not
   oversubscribe a window on its own, small enough that saturation
   registers promptly. *)
let window = 8192.

type t = {
  ncpus : int;
  occupied : (int, float) Hashtbl.t;  (* window index -> bus cycles booked *)
  writers : (int, int) Hashtbl.t;  (* line address -> last-writing cpu *)
  mutable transactions : int;
  mutable contended : int;  (* transactions that found the bus busy *)
}

let create ~ncpus =
  if ncpus < 1 then invalid_arg "Bus.create: need at least one CPU";
  {
    ncpus;
    occupied = Hashtbl.create (if ncpus > 1 then 1024 else 1);
    writers = Hashtbl.create (if ncpus > 1 then 4096 else 1);
    transactions = 0;
    contended = 0;
  }

let ncpus t = t.ncpus
let transactions t = t.transactions
let contended t = t.contended

(* Book [bus_cycles] of demand into the window holding [now] (the
   requesting CPU's clock); returns the stall the CPU must absorb.
   Demand under the window's capacity is free; the overflow a
   transaction pushes past capacity comes back as its stall, so total
   stall in a window telescopes to exactly (demand - capacity).
   Uniprocessor machines never stall and never book demand. *)
let acquire t ~now ~bus_cycles =
  if t.ncpus = 1 then 0.
  else begin
    t.transactions <- t.transactions + 1;
    let w = int_of_float (now /. window) in
    let before =
      match Hashtbl.find_opt t.occupied w with Some b -> b | None -> 0.
    in
    let c = float_of_int bus_cycles in
    Hashtbl.replace t.occupied w (before +. c);
    let stall =
      Float.max 0. (before +. c -. window) -. Float.max 0. (before -. window)
    in
    if stall > 0. then t.contended <- t.contended + 1;
    stall
  end

(* Coherence directory.  [note_access] returns [true] when the access is
   a coherence miss: the line's last writer is a different CPU, so the
   local copy (if any) is stale and the data crosses the bus. *)
let note_access t ~cpu ~line ~write =
  if t.ncpus = 1 then false
  else
    let miss =
      match Hashtbl.find_opt t.writers line with
      | Some w -> w <> cpu
      | None -> false
    in
    (if write then Hashtbl.replace t.writers line cpu
     else if miss then
       (* read of a dirty remote line: the transfer leaves it shared
          clean, so the next reader pays nothing *)
       Hashtbl.remove t.writers line);
    miss

let reset t =
  Hashtbl.reset t.occupied;
  Hashtbl.reset t.writers;
  t.transactions <- 0;
  t.contended <- 0
