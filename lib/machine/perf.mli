(** Simulated performance counters.

    These mirror the Pentium counter readings the paper uses in Table 2:
    retired instructions, elapsed cycles, bus cycles, plus the cache and
    TLB events that explain them.  Counters accumulate monotonically; use
    {!snapshot} and {!diff} to measure a window, exactly as one programs
    real counter hardware around a measured loop. *)

type t

type snapshot = {
  instructions : int;
  cycles : int;
  bus_cycles : int;
  icache_hits : int;
  icache_misses : int;
  dcache_hits : int;
  dcache_misses : int;
  tlb_misses : int;
  address_space_switches : int;
  interrupts : int;
}

val create : unit -> t

val zero : snapshot

(* Incrementers used by the CPU model. *)

val add_instructions : t -> int -> unit
val add_cycles : t -> float -> unit
val add_bus_cycles : t -> int -> unit
val icache_access : t -> hit:bool -> unit
val dcache_access : t -> hit:bool -> unit
val tlb_miss : t -> unit
val address_space_switch : t -> unit

val tlb_shootdown : t -> unit
(** Count one remap-driven TLB shootdown (IPI + invalidate round). *)

val tlb_shootdowns : t -> int
(** Shootdowns so far.  Kept outside {!snapshot} — the remap benches
    read it directly rather than through window diffs. *)

(** {2 SMP counters}

    Per-CPU coherence, bus-arbitration and inter-processor-interrupt
    events.  Like {!tlb_shootdowns} they live outside {!snapshot}: the
    SMP benches read them directly, and single-CPU snapshot diffs stay
    byte-identical to the pre-SMP model. *)

val coherence_miss : t -> unit
val coherence_misses : t -> int

val bus_stall : t -> float -> unit
(** Cycles this CPU spent waiting for the shared bus (the cycles also
    land in the ordinary cycle clock via the CPU's charge path). *)

val bus_stall_cycles : t -> int

val ipi_sent : t -> unit
val ipis_sent : t -> int
val ipi_received : t -> unit
val ipis_received : t -> int

val interrupt : t -> unit

val snapshot : t -> snapshot
val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the per-window delta. *)

val cpi : snapshot -> float
(** Cycles per instruction; [nan] when no instructions retired. *)

val cycles : t -> int
(** Current cycle clock (total cycles accumulated, rounded to nearest). *)

val cycles_exact : t -> float
(** The unrounded cycle accumulator. *)

val pp : Format.formatter -> snapshot -> unit
