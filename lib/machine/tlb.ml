type t = {
  page_size : int;
  pages : int array;  (* -1 = invalid *)
  stamps : int array;
  mutable tick : int;
}

let create ~entries ~page_size =
  assert (entries > 0);
  {
    page_size;
    pages = Array.make entries (-1);
    stamps = Array.make entries 0;
    tick = 0;
  }

let access t vaddr =
  let page = vaddr / t.page_size in
  t.tick <- t.tick + 1;
  let n = Array.length t.pages in
  let rec find i = if i >= n then None else if t.pages.(i) = page then Some i else find (i + 1) in
  match find 0 with
  | Some i ->
      t.stamps.(i) <- t.tick;
      true
  | None ->
      let victim = ref 0 in
      for i = 1 to n - 1 do
        if t.stamps.(i) < t.stamps.(!victim) then victim := i
      done;
      t.pages.(!victim) <- page;
      t.stamps.(!victim) <- t.tick;
      false

let invalidate t vaddr =
  let page = vaddr / t.page_size in
  for i = 0 to Array.length t.pages - 1 do
    if t.pages.(i) = page then t.pages.(i) <- -1
  done

let flush t = Array.fill t.pages 0 (Array.length t.pages) (-1)
let entries t = Array.length t.pages

let resident t =
  Array.fold_left (fun acc p -> if p >= 0 then acc + 1 else acc) 0 t.pages
