(** Simulated hardware substrate.

    This library stands in for the 133 MHz Pentium / PowerPC 604 testbeds
    of the paper: one or more processors with a microarchitectural cost
    model (instruction retirement, set-associative I/D caches, TLB,
    write-through stores, bus-transaction accounting, Pentium-style
    performance counters), a shared memory bus with a write-invalidate
    coherence directory, a physical address-space layout, a discrete-event
    queue, an interrupt controller and standard devices.  Everything above
    — the microkernel, the servers, the monolithic comparator — executes
    by submitting {!Footprint.t} values to the active CPU.

    With [Config.ncpus = 1] (the default) the machine is byte-identical
    to the pre-SMP uniprocessor model: the bus never arbitrates, the
    coherence directory stays empty, and no IPIs exist. *)

module Config = Config
module Perf = Perf
module Cache = Cache
module Tlb = Tlb
module Layout = Layout
module Footprint = Footprint
module Bus = Bus
module Cpu = Cpu
module Event_queue = Event_queue
module Irq = Irq
module Disk = Disk
module Framebuffer = Framebuffer

(** The assembled machine: processors over one shared bus, layout, event
    queue, interrupt controller, one disk and one frame buffer.

    [cpu] is the {e active} CPU — the one whose context is currently
    executing; the scheduler repoints it at each dispatch.  Code that
    charges costs through [machine.cpu] therefore bills the processor
    that is actually running.  Devices are wired to [cpus.(0)] (the boot
    CPU) and deliver their completions on its timeline. *)
type t = {
  config : Config.t;
  mutable cpu : Cpu.t;
  cpus : Cpu.t array;
  bus : Bus.t;
  mutable active : int;
  layout : Layout.t;
  events : Event_queue.t;
  irq : Irq.t;
  disk : Disk.t;
  framebuffer : Framebuffer.t;
}

val disk_irq_line : int
val timer_irq_line : int

val create : ?disk_geometry:Disk.geometry -> Config.t -> t

val ncpus : t -> int
val nth_cpu : t -> int -> Cpu.t

val set_active : t -> int -> unit
(** Make CPU [i] the active one: subsequent charges through [t.cpu] land
    on its clock and counters. *)

val active : t -> int

val now : t -> int
(** Current cycle time of the {e active} CPU. *)

val global_now : t -> int
(** Wall-clock of the whole machine: the furthest-ahead CPU's clock.
    Equal to {!now} on a uniprocessor. *)

val execute : t -> Footprint.t -> unit

val ipi : t -> target:int -> unit
(** Raise an inter-processor interrupt from the active CPU to [target]:
    a fixed [Config.ipi_cycles] send cost on the sender, an interrupt
    counted on the target.  Delivery semantics (message-queue drain)
    belong to the scheduler layer. *)

val advance_to_next_event : t -> bool
(** When every CPU is idle, jump the boot CPU's clock to the earliest
    pending event and fire everything due (device events are delivered
    on the boot CPU).  Sets the active CPU to 0.  [false] when no event
    is pending (a deadlocked or finished system). *)

val run_events : t -> unit
(** Fire any events due at or before the current time. *)

val pp_inventory : Format.formatter -> t -> unit
(** Print the physical layout — the machine-level part of Figure 1. *)
